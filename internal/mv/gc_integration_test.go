package mv

// Engine-level garbage collection behaviour: cooperative collection bounds
// version-chain growth, disabling it lets chains grow, and aborted inserts
// are unlinked promptly.

import (
	"testing"

	"repro/internal/storage"
)

func chainLength(tbl *storage.Table, key uint64) int {
	n := 0
	for v := tbl.Index(0).Lookup(key).Head(); v != nil; v = v.Next(0) {
		if v.Key(0) == key {
			n++
		}
	}
	return n
}

func TestCooperativeGCBoundsChains(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1, GCEvery: 8, GCQuota: 64})
	t.Cleanup(func() { e.Close() })
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Buckets: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.LoadRow(tbl, testPayload(1, 0))
	for i := 1; i <= 500; i++ {
		tx := e.Begin(Optimistic, ReadCommitted)
		if err := writeVal(t, tx, tbl, 1, uint64(i)); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	// Cooperative rounds ran every 8 transactions: the chain must be far
	// shorter than the 501 versions ever created.
	if n := chainLength(tbl, 1); n > 100 {
		t.Fatalf("chain length %d with cooperative GC; growth unbounded", n)
	}
	// A final explicit sweep leaves exactly the live version.
	for e.CollectGarbage(0) > 0 {
	}
	if n := chainLength(tbl, 1); n != 1 {
		t.Fatalf("chain length %d after full GC, want 1", n)
	}
}

func TestDisabledGCGrowsChains(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1, GCEvery: -1})
	t.Cleanup(func() { e.Close() })
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Buckets: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.LoadRow(tbl, testPayload(1, 0))
	const updates = 100
	for i := 1; i <= updates; i++ {
		tx := e.Begin(Optimistic, ReadCommitted)
		if err := writeVal(t, tx, tbl, 1, uint64(i)); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	if n := chainLength(tbl, 1); n != updates+1 {
		t.Fatalf("chain length %d with GC disabled, want %d", n, updates+1)
	}
	// Visibility still correct despite the long chain.
	tx := e.Begin(Optimistic, ReadCommitted)
	if v, _ := readVal(t, tx, tbl, 1); v != updates {
		t.Fatalf("value = %d, want %d", v, updates)
	}
	mustCommit(t, tx)
}

func TestAbortedInsertCollected(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1, GCEvery: -1})
	t.Cleanup(func() { e.Close() })
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Buckets: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin(Optimistic, ReadCommitted)
	if err := tx.Insert(tbl, testPayload(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if n := chainLength(tbl, 1); n != 1 {
		t.Fatalf("aborted insert not linked? chain=%d", n)
	}
	// Aborted garbage needs no watermark: one sweep removes it.
	if n := e.CollectGarbage(0); n != 1 {
		t.Fatalf("reclaimed %d, want 1", n)
	}
	if n := chainLength(tbl, 1); n != 0 {
		t.Fatalf("chain length %d after GC, want 0", n)
	}
}

func TestGCRespectsLongSnapshot(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1, GCEvery: -1})
	t.Cleanup(func() { e.Close() })
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Buckets: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.LoadRow(tbl, testPayload(1, 0))
	snap := e.Begin(Optimistic, SnapshotIsolation)
	if v, _ := readVal(t, snap, tbl, 1); v != 0 {
		t.Fatal("snapshot read failed")
	}
	for i := 1; i <= 10; i++ {
		tx := e.Begin(Optimistic, ReadCommitted)
		if err := writeVal(t, tx, tbl, 1, uint64(i)); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	// The snapshot pins the watermark at its begin timestamp: only versions
	// that ended before it are collectable — none here (the snapshot's
	// version is the oldest and still visible to it).
	if n := e.CollectGarbage(0); n != 0 {
		t.Fatalf("GC reclaimed %d versions under an active snapshot", n)
	}
	if v, _ := readVal(t, snap, tbl, 1); v != 0 {
		t.Fatal("snapshot lost its version")
	}
	mustCommit(t, snap)
	total := 0
	for {
		n := e.CollectGarbage(0)
		if n == 0 {
			break
		}
		total += n
	}
	if total != 10 {
		t.Fatalf("reclaimed %d after snapshot ended, want 10", total)
	}
}
