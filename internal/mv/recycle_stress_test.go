package mv

// Recycle-safety stress: transaction and version objects are pooled, so the
// dangerous interleavings are (a) a visibility check holding a txn.Txn
// pointer while the object is Reset for a new transaction, and (b) a scan
// holding a *storage.Version while the garbage collector recycles it. The
// test hammers commit/abort/recycle with concurrent readers and cooperative
// GC on a tiny hot table, using self-verifying payloads so any use-after-
// reset surfaces as a checksum mismatch (and any data race trips -race).

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
)

const stressMagic = 0x9E3779B97F4A7C15

// stressRow builds a self-verifying 24-byte payload.
func stressRow(key, val uint64) []byte {
	p := make([]byte, 24)
	binary.LittleEndian.PutUint64(p, key)
	binary.LittleEndian.PutUint64(p[8:], val)
	binary.LittleEndian.PutUint64(p[16:], key^val^stressMagic)
	return p
}

func stressRowOK(p []byte) bool {
	if len(p) != 24 {
		return false
	}
	k := binary.LittleEndian.Uint64(p)
	v := binary.LittleEndian.Uint64(p[8:])
	return binary.LittleEndian.Uint64(p[16:]) == k^v^stressMagic
}

func TestRecycleStress(t *testing.T) {
	const (
		rows    = 64
		workers = 8
		iters   = 4000
	)
	e := NewEngine(Config{GCEvery: 1, GCQuota: 128})
	defer e.Close()
	tbl, err := e.CreateTable(storage.TableSpec{
		Name: "hot",
		Indexes: []storage.IndexSpec{
			{Name: "pk", Key: func(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }, Buckets: rows},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < rows; k++ {
		e.LoadRow(tbl, stressRow(k, k))
	}

	var corrupt atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*2654435761 + 1))
			scheme := Optimistic
			if w%2 == 1 {
				scheme = Pessimistic
			}
			for i := 0; i < iters; i++ {
				key := rng.Uint64() % rows
				switch i % 4 {
				case 0, 1: // read-modify-write, sometimes deliberately aborted
					tx := e.Begin(scheme, ReadCommitted)
					newVal := rng.Uint64()
					_, err := tx.UpdateWhere(tbl, 0, key, nil, func(old []byte) []byte {
						if !stressRowOK(old) {
							corrupt.Add(1)
						}
						return stressRow(key, newVal)
					})
					if err != nil || rng.Intn(8) == 0 {
						tx.Abort()
						continue
					}
					_ = tx.Commit()
				case 2: // snapshot scan validating every visible payload
					tx := e.Begin(scheme, SnapshotIsolation)
					ok := true
					for j := 0; j < 8; j++ {
						k := rng.Uint64() % rows
						err := tx.Scan(tbl, 0, k, nil, func(v *storage.Version) bool {
							if !stressRowOK(v.Payload) || binary.LittleEndian.Uint64(v.Payload) != k {
								corrupt.Add(1)
							}
							return true // walk the whole version chain
						})
						if err != nil {
							ok = false
							break
						}
					}
					if !ok {
						tx.Abort()
						continue
					}
					_ = tx.Commit()
				case 3: // repeatable-read point reads (lock paths on MV/L)
					tx := e.Begin(scheme, RepeatableRead)
					v, found, err := tx.Lookup(tbl, 0, key, nil)
					if err != nil {
						tx.Abort()
						continue
					}
					if found && !stressRowOK(v.Payload) {
						corrupt.Add(1)
					}
					_ = tx.Commit()
				}
			}
		}(w)
	}
	wg.Wait()

	if n := corrupt.Load(); n != 0 {
		t.Fatalf("%d corrupt payloads observed: use-after-reset on a pooled object", n)
	}
	// Drain remaining garbage so the recycling pipeline is fully exercised,
	// then confirm the pools actually cycled — otherwise this test proved
	// nothing about reuse safety.
	for e.Collector().Pending() > 0 {
		if e.CollectGarbage(0) == 0 {
			break
		}
	}
	s := e.Stats()
	if s.TxRecycled == 0 {
		t.Fatal("no transaction objects were recycled during the stress run")
	}
	if s.VersionsRecycled == 0 {
		t.Fatal("no version objects were recycled during the stress run")
	}
	if s.Commits == 0 || s.Aborts == 0 {
		t.Fatalf("stress mix degenerate: commits=%d aborts=%d", s.Commits, s.Aborts)
	}
}

// TestRecycledTxIdentity pins the revalidation contract: after an engine
// recycles a Tx, the old handle's txn object carries a new identity, and the
// old transaction's ID is never resurrected.
func TestRecycledTxIdentity(t *testing.T) {
	e, tbl := newTestEngine(t)
	tx := e.Begin(Optimistic, ReadCommitted)
	oldT := tx.T
	oldID := oldT.ID()
	if err := tx.Insert(tbl, testPayload(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Churn transactions until the engine hands the same object out again.
	for i := 0; i < 100000; i++ {
		tx2 := e.Begin(Optimistic, ReadCommitted)
		reused := tx2.T == oldT
		_ = tx2.Commit()
		if reused {
			if tx2.T.ID() == oldID {
				t.Fatal("recycled txn reused an old ID")
			}
			if _, ok := e.TxnTable().Lookup(oldID); ok {
				t.Fatal("terminated transaction still resolvable by old ID")
			}
			return
		}
	}
	t.Skip("engine never recycled the transaction object (pool pressure)")
}
