package mv

// White-box tests of the visibility case analyses (Tables 1 and 2): craft
// version words and writer-transaction states directly and check the
// outcome, including the speculative cases that return commit dependencies.

import (
	"testing"

	"repro/internal/field"
	"repro/internal/storage"
	"repro/internal/txn"
)

func visEngine(t *testing.T) (*Engine, *Tx) {
	t.Helper()
	e := NewEngine(Config{DeadlockInterval: -1})
	t.Cleanup(func() { e.Close() })
	e.Oracle().AdvanceTo(100) // make room for synthetic timestamps below 100
	reader := e.Begin(Optimistic, SnapshotIsolation)
	return e, reader
}

// registerTxn creates a synthetic transaction in the given state.
func registerTxn(e *Engine, id uint64, state txn.State, end uint64) *txn.Txn {
	tb := txn.New(id, id)
	if end != 0 {
		tb.SetEnd(end)
	}
	tb.SetState(state)
	e.TxnTable().Register(tb)
	return tb
}

func mkVersion(begin, end uint64) *storage.Version {
	return storage.NewVersion([]byte{1}, 1, begin, end)
}

func TestVisibilityPlainTimestamps(t *testing.T) {
	e, r := visEngine(t)
	v := mkVersion(field.FromTS(10), field.FromTS(20))
	cases := []struct {
		rt   uint64
		want bool
	}{
		{5, false},  // before begin
		{10, true},  // at begin
		{15, true},  // inside
		{19, true},  // last instant
		{20, false}, // at end (valid time is [begin, end))
		{25, false}, // after end
	}
	for _, c := range cases {
		out := e.checkVisibility(r.T, v, c.rt)
		if out.visible != c.want || out.dep != nil {
			t.Fatalf("rt=%d: visible=%v dep=%v, want %v/nil", c.rt, out.visible, out.dep, c.want)
		}
	}
}

func TestVisibilityLatestVersion(t *testing.T) {
	e, r := visEngine(t)
	v := mkVersion(field.FromTS(10), field.FromTS(field.Infinity))
	if out := e.checkVisibility(r.T, v, 50); !out.visible {
		t.Fatal("latest version invisible")
	}
	// Read-locked latest version (lock word, no writer): still visible.
	v.SetEnd(field.Lock(field.NoWriter, 3, false))
	if out := e.checkVisibility(r.T, v, 50); !out.visible {
		t.Fatal("read-locked latest version invisible")
	}
}

// Table 1, Begin = TB in Active state: visible only to TB itself and only
// for its latest version.
func TestVisibilityBeginActive(t *testing.T) {
	e, r := visEngine(t)
	tb := registerTxn(e, 7, txn.Active, 0)
	v := mkVersion(field.FromTxID(tb.ID()), field.FromTS(field.Infinity))
	if out := e.checkVisibility(r.T, v, 50); out.visible {
		t.Fatal("other transaction's uncommitted version visible")
	}
	// The creator sees its own latest version...
	creator := &Tx{e: e, T: tb, scheme: Optimistic, iso: ReadCommitted}
	if out := e.checkVisibility(creator.T, v, 50); !out.visible {
		t.Fatal("creator cannot see own version")
	}
	// ...but not once it has deleted it (End holds its own ID).
	v.SetEnd(field.Lock(tb.ID(), 0, false))
	if out := e.checkVisibility(creator.T, v, 50); out.visible {
		t.Fatal("creator sees own deleted version")
	}
}

// Table 1, Begin = TB in Preparing state: use TB's end timestamp as the
// tentative begin time; a true outcome is a speculative read with a commit
// dependency on TB.
func TestVisibilityBeginPreparing(t *testing.T) {
	e, r := visEngine(t)
	tb := registerTxn(e, 8, txn.Preparing, 40)
	v := mkVersion(field.FromTxID(tb.ID()), field.FromTS(field.Infinity))
	// rt below TB's end: test false, no dependency.
	if out := e.checkVisibility(r.T, v, 30); out.visible || out.dep != nil {
		t.Fatalf("rt=30: got %+v, want invisible/no dep", out)
	}
	// rt above TB's end: speculative read, dependency on TB.
	out := e.checkVisibility(r.T, v, 50)
	if !out.visible || out.dep != tb {
		t.Fatalf("rt=50: got visible=%v dep=%v, want speculative read on TB", out.visible, out.dep)
	}
}

// Table 1, Begin = TB Committed (begin not yet finalized): use TB's end, no
// dependency.
func TestVisibilityBeginCommitted(t *testing.T) {
	e, r := visEngine(t)
	tb := registerTxn(e, 9, txn.Committed, 40)
	v := mkVersion(field.FromTxID(tb.ID()), field.FromTS(field.Infinity))
	if out := e.checkVisibility(r.T, v, 50); !out.visible || out.dep != nil {
		t.Fatalf("got %+v, want visible with no dep", out)
	}
	if out := e.checkVisibility(r.T, v, 30); out.visible {
		t.Fatal("visible before committed begin")
	}
}

// Table 1, Begin = TB Aborted: garbage, invisible.
func TestVisibilityBeginAborted(t *testing.T) {
	e, r := visEngine(t)
	tb := registerTxn(e, 10, txn.Aborted, 0)
	v := mkVersion(field.FromTxID(tb.ID()), field.FromTS(field.Infinity))
	if out := e.checkVisibility(r.T, v, 50); out.visible {
		t.Fatal("aborted creator's version visible")
	}
}

// Table 2, End = TE Active: the old version remains visible.
func TestVisibilityEndActive(t *testing.T) {
	e, r := visEngine(t)
	te := registerTxn(e, 11, txn.Active, 0)
	v := mkVersion(field.FromTS(10), field.Lock(te.ID(), 0, false))
	if out := e.checkVisibility(r.T, v, 50); !out.visible || out.dep != nil {
		t.Fatalf("got %+v, want visible (uncommitted update)", out)
	}
}

// Table 2, End = TE Preparing: TS > RT means visible regardless of TE's
// fate; TS < RT means speculatively ignore with a dependency on TE.
func TestVisibilityEndPreparing(t *testing.T) {
	e, r := visEngine(t)
	te := registerTxn(e, 12, txn.Preparing, 40)
	v := mkVersion(field.FromTS(10), field.Lock(te.ID(), 0, false))
	if out := e.checkVisibility(r.T, v, 30); !out.visible || out.dep != nil {
		t.Fatalf("rt=30 (TS>RT): got %+v, want visible/no dep", out)
	}
	out := e.checkVisibility(r.T, v, 50)
	if out.visible || out.dep != te {
		t.Fatalf("rt=50 (TS<RT): got visible=%v dep=%v, want speculative ignore on TE", out.visible, out.dep)
	}
}

// Table 2, End = TE Committed (end not yet finalized): use TE's end.
func TestVisibilityEndCommitted(t *testing.T) {
	e, r := visEngine(t)
	te := registerTxn(e, 13, txn.Committed, 40)
	v := mkVersion(field.FromTS(10), field.Lock(te.ID(), 0, false))
	if out := e.checkVisibility(r.T, v, 30); !out.visible {
		t.Fatal("rt=30: invisible below TE's end")
	}
	if out := e.checkVisibility(r.T, v, 50); out.visible {
		t.Fatal("rt=50: visible past TE's end")
	}
}

// Table 2, End = TE Aborted: visible — any post-abort overwriter gets an
// end timestamp after our read time.
func TestVisibilityEndAborted(t *testing.T) {
	e, r := visEngine(t)
	te := registerTxn(e, 14, txn.Aborted, 0)
	v := mkVersion(field.FromTS(10), field.Lock(te.ID(), 0, false))
	if out := e.checkVisibility(r.T, v, 50); !out.visible {
		t.Fatal("version with aborted updater invisible")
	}
}

// End = our own ID: the old version of our own update is invisible to us.
func TestVisibilityEndSelf(t *testing.T) {
	e, r := visEngine(t)
	v := mkVersion(field.FromTS(10), field.Lock(r.T.ID(), 0, false))
	if out := e.checkVisibility(r.T, v, 50); out.visible {
		t.Fatal("own-updated old version visible to updater")
	}
}

// isVisible registers the dependency that checkVisibility reports, and
// resolves flipped outcomes when the target has already aborted.
func TestIsVisibleDependencyRegistration(t *testing.T) {
	e, r := visEngine(t)
	te := registerTxn(e, 15, txn.Preparing, 40)
	v := mkVersion(field.FromTS(10), field.Lock(te.ID(), 0, false))
	vis, err := r.isVisible(v, 50)
	if err != nil || vis {
		t.Fatalf("got vis=%v err=%v, want speculative ignore", vis, err)
	}
	if r.T.CommitDepCount() != 1 {
		t.Fatalf("CommitDepCount = %d, want 1", r.T.CommitDepCount())
	}
	// TE commits: the dependency resolves and the reader can commit.
	te.SetState(txn.Committed)
	te.ResolveDependents(true, e.TxnTable())
	if r.T.CommitDepCount() != 0 {
		t.Fatal("dependency not resolved")
	}
}

func TestIsVisibleSpeculationDisabled(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1, DisableSpeculation: true})
	t.Cleanup(func() { e.Close() })
	e.Oracle().AdvanceTo(100)
	r := e.Begin(Optimistic, SnapshotIsolation)
	te := registerTxn(e, 16, txn.Preparing, 40)
	v := mkVersion(field.FromTS(10), field.Lock(te.ID(), 0, false))
	if _, err := r.isVisible(v, 50); err != ErrSpeculationDisabled {
		t.Fatalf("err = %v, want ErrSpeculationDisabled", err)
	}
}
