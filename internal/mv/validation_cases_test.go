package mv

// TestFigure3ValidationOutcomes drives the four validation cases of
// Figure 3 end-to-end against a serializable optimistic transaction T:
//
//	V1: visible at T's start and end            -> reads pass, no phantom
//	V2: visible at start, replaced during T      -> read validation fails
//	V3: created and deleted during T's lifetime  -> invisible throughout, pass
//	V4: created during T, visible at end         -> phantom, validation fails

import (
	"testing"
)

func TestFigure3V1StableReadPasses(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	tx := e.Begin(Optimistic, Serializable)
	if v, ok := readVal(t, tx, tbl, 1); !ok || v != 10 {
		t.Fatal("read failed")
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("V1 case: commit = %v, want success", err)
	}
}

func TestFigure3V2InvalidatedReadFails(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	tx := e.Begin(Optimistic, Serializable)
	if _, ok := readVal(t, tx, tbl, 1); !ok {
		t.Fatal("read failed")
	}
	// V2 is replaced during T's lifetime.
	up := e.Begin(Optimistic, ReadCommitted)
	if err := writeVal(t, up, tbl, 1, 20); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, up)
	if err := tx.Commit(); err != ErrValidation {
		t.Fatalf("V2 case: commit = %v, want ErrValidation", err)
	}
}

func TestFigure3V3TransientVersionPasses(t *testing.T) {
	e, tbl := newTestEngine(t)
	tx := e.Begin(Optimistic, Serializable)
	// T scans for key 2: nothing there.
	if _, ok := readVal(t, tx, tbl, 2); ok {
		t.Fatal("unexpected row")
	}
	// V3 comes into existence and disappears again during T's lifetime.
	ins := e.Begin(Optimistic, ReadCommitted)
	if err := ins.Insert(tbl, testPayload(2, 22)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, ins)
	del := e.Begin(Optimistic, ReadCommitted)
	if n, err := del.DeleteWhere(tbl, 0, 2, nil); err != nil || n != 1 {
		t.Fatalf("delete n=%d err=%v", n, err)
	}
	mustCommit(t, del)
	// V3 is not visible at T's end, so it is not a phantom.
	if err := tx.Commit(); err != nil {
		t.Fatalf("V3 case: commit = %v, want success", err)
	}
}

func TestFigure3V4PhantomFails(t *testing.T) {
	e, tbl := newTestEngine(t)
	tx := e.Begin(Optimistic, Serializable)
	if _, ok := readVal(t, tx, tbl, 2); ok {
		t.Fatal("unexpected row")
	}
	// V4 comes into existence during T and survives to T's end.
	ins := e.Begin(Optimistic, ReadCommitted)
	if err := ins.Insert(tbl, testPayload(2, 22)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, ins)
	if err := tx.Commit(); err != ErrValidation {
		t.Fatalf("V4 case: commit = %v, want ErrValidation (phantom)", err)
	}
}

// Repeatable read validates reads but not scans: V4's phantom is admitted.
func TestRepeatableReadAdmitsPhantoms(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	tx := e.Begin(Optimistic, RepeatableRead)
	if _, ok := readVal(t, tx, tbl, 1); !ok {
		t.Fatal("read failed")
	}
	if _, ok := readVal(t, tx, tbl, 2); ok {
		t.Fatal("unexpected row")
	}
	ins := e.Begin(Optimistic, ReadCommitted)
	if err := ins.Insert(tbl, testPayload(2, 22)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, ins)
	// The phantom does not fail repeatable read; the stable read of key 1
	// still validates.
	if err := tx.Commit(); err != nil {
		t.Fatalf("repeatable read commit = %v, want success", err)
	}
}

// A serializable transaction whose own updates replaced its reads still
// validates: its write locks prove no other transaction intervened.
func TestValidationOwnUpdatesPass(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	tx := e.Begin(Optimistic, Serializable)
	if _, ok := readVal(t, tx, tbl, 1); !ok {
		t.Fatal("read failed")
	}
	if err := writeVal(t, tx, tbl, 1, 20); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit after read-then-own-update = %v", err)
	}
}

// Own inserts are not phantoms for the inserting transaction.
func TestValidationOwnInsertNotPhantom(t *testing.T) {
	e, tbl := newTestEngine(t)
	tx := e.Begin(Optimistic, Serializable)
	if _, ok := readVal(t, tx, tbl, 5); ok {
		t.Fatal("unexpected row")
	}
	if err := tx.Insert(tbl, testPayload(5, 50)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit = %v; own insert flagged as phantom", err)
	}
}

// A version deleted during T whose deleter aborts is still visible at T's
// end: read validation passes (Table 2's Aborted row).
func TestValidationSurvivesAbortedUpdater(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	tx := e.Begin(Optimistic, Serializable)
	if _, ok := readVal(t, tx, tbl, 1); !ok {
		t.Fatal("read failed")
	}
	up := e.Begin(Optimistic, ReadCommitted)
	if err := writeVal(t, up, tbl, 1, 20); err != nil {
		t.Fatal(err)
	}
	if err := up.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit = %v, want success after updater aborted", err)
	}
}
