package mv

import (
	"errors"

	"repro/internal/wal"
)

// ErrDegraded is returned by mutation entry points after a latched log
// failure flipped the engine into degraded read-only mode. It aliases
// wal.ErrDegraded so errors.Is matches across packages.
var ErrDegraded = wal.ErrDegraded

var (
	// ErrTxDone is returned when operating on a committed or aborted
	// transaction.
	ErrTxDone = errors.New("mv: transaction already finished")
	// ErrWriteConflict is a write-write conflict: the first-writer-wins rule
	// (Section 2.6) forces the second writer to abort.
	ErrWriteConflict = errors.New("mv: write-write conflict")
	// ErrValidation is returned at commit when an optimistic transaction
	// fails read validation or phantom detection (Section 3.2).
	ErrValidation = errors.New("mv: validation failed")
	// ErrReadLockFailed is returned when a read lock cannot be acquired:
	// the counter is saturated, NoMoreReadLocks is set, or the write-locking
	// transaction no longer accepts wait-for dependencies (Section 4.2.1).
	ErrReadLockFailed = errors.New("mv: read lock acquisition failed")
	// ErrPhantomRisk is returned when a serializable pessimistic transaction
	// cannot impose a phantom-preventing wait-for dependency (the inserting
	// transaction has NoMoreWaitFors set or is already committing).
	ErrPhantomRisk = errors.New("mv: cannot prevent potential phantom")
	// ErrWaitForRefused is returned when a wait-for dependency cannot be
	// installed because the target refuses new dependencies.
	ErrWaitForRefused = errors.New("mv: wait-for dependency refused")
	// ErrSpeculationDisabled is returned when speculative reads/ignores are
	// disabled (ablation mode) and visibility would require one.
	ErrSpeculationDisabled = errors.New("mv: speculation disabled")
	// ErrAborted mirrors txn.ErrAborted: the transaction was told to abort
	// by a failed commit dependency or the deadlock detector.
	ErrAborted = errors.New("mv: transaction aborted")
	// ErrReadOnlyTx is returned when a mutation is attempted on a read-only
	// snapshot transaction (BeginReadOnly).
	ErrReadOnlyTx = errors.New("mv: read-only transaction cannot write")
	// ErrDuplicateKey is returned by Insert when another version of the same
	// primary key is, or may yet become, the latest: the key visibly exists,
	// or a concurrent transaction is inserting it (first writer wins). The
	// insert has doomed the transaction — it must abort.
	ErrDuplicateKey = errors.New("mv: duplicate primary key")
)
