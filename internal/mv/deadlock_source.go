package mv

import (
	"repro/internal/deadlock"
	"repro/internal/field"
	"repro/internal/txn"
)

// detectorSource adapts the engine to the deadlock detector (Section 4.4).
type detectorSource Engine

// Snapshot builds the wait-for graph in the paper's three steps: nodes for
// transactions blocked on wait-for dependencies, explicit edges from
// WaitingTxnLists, and implicit edges from read-locked versions (a wait-for
// dependency on a read-locked version stands for dependencies on every
// transaction holding a read lock on it, recovered from read sets).
//
// The walk is epoch-pinned: a reader pin taken before the table iteration
// keeps the GC watermark below every transaction observed during the walk
// (removal stamps are drawn after the pin, so the graveyard cannot drain
// them), which means no collected pointer can be recycled mid-iteration.
// Without the pin a Txn could be Reset to a new identity between collection
// and the Blocked/Waiters reads; identity revalidation downstream kept that
// benign (worst case a spurious abort of the wrong incarnation was
// prevented by RunOnce's StillBlocked recheck), but the pin removes the
// window entirely. If the pin table is full the walk proceeds unpinned,
// degrading to the old benign behavior.
func (s *detectorSource) Snapshot() *deadlock.Graph {
	e := (*Engine)(s)
	g := deadlock.NewGraph()

	if slot := e.pins.Acquire(e.oracle.Current()); slot >= 0 {
		defer e.pins.Release(slot)
	}

	var txs []*txn.Txn
	e.txns.ForEach(func(t *txn.Txn) { txs = append(txs, t) })

	// Step 1: nodes are transactions that completed normal processing and
	// are blocked by wait-for dependencies.
	for _, t := range txs {
		if t.Blocked() {
			g.AddNode(t.ID())
		}
	}

	for _, t := range txs {
		if !g.Contains(t.ID()) {
			continue
		}
		// Step 2: explicit dependencies. Every transaction in t's
		// WaitingTxnList waits for t.
		for _, wid := range t.Waiters() {
			g.AddEdge(wid, t.ID())
		}
		// Step 3: implicit dependencies. If a version read-locked by t is
		// write locked by a blocked transaction T2, T2 waits for t's lock
		// release — unless T2 is t itself. A read-then-update of one row
		// leaves t holding both locks on the version until precommit, when
		// releaseSelfWriteReadLocks drains the dependency; a self-edge here
		// would turn that transient into a one-node "cycle" and abort a
		// perfectly healthy transaction.
		for _, v := range t.SnapshotReadLocks() {
			w := v.End()
			if field.IsLock(w) && field.HasWriter(w) && field.Writer(w) != t.ID() {
				g.AddEdge(field.Writer(w), t.ID())
			}
		}
	}
	return g
}

// StillBlocked re-verifies that a cycle participant is really still blocked.
func (s *detectorSource) StillBlocked(id uint64) bool {
	e := (*Engine)(s)
	t, ok := e.txns.Lookup(id)
	return ok && t.Blocked()
}

// EndTimestampOf returns the transaction's end timestamp, falling back to
// its ID (begin timestamp) when it has not precommitted — transactions
// blocked on wait-fors never have an end timestamp yet, and IDs preserve the
// same age order.
func (s *detectorSource) EndTimestampOf(id uint64) uint64 {
	e := (*Engine)(s)
	t, ok := e.txns.Lookup(id)
	if !ok {
		return 0
	}
	if end := t.End(); end != 0 {
		return end
	}
	return t.ID()
}

// Abort asks a deadlock victim to abort; its wait loop observes AbortNow.
func (s *detectorSource) Abort(id uint64) {
	e := (*Engine)(s)
	if t, ok := e.txns.Lookup(id); ok {
		t.RequestAbort()
	}
}
