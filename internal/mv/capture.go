package mv

import (
	"repro/internal/field"
	"repro/internal/storage"
)

// Capture streams a transactionally consistent snapshot of the given tables
// to fn and returns the stable timestamp S it was taken at: the snapshot
// contains the effects of exactly the committed transactions with end
// timestamp at most S. It is the checkpoint scan (paper Section 4 lineage:
// continuous checkpointing of committed versions).
//
// S is the engine's quiescence watermark — the same expression the garbage
// collector uses (oldest active begin timestamp, bounded by reader pins).
// Every transaction with end timestamp <= S has fully left the commit path:
// its redo record is queued in the log (commit appends before the
// transaction leaves the transaction table) and its version words are
// finalized timestamps, so a version's visibility at S is decided by plain
// word comparisons with no transaction-state chasing.
//
// The scan runs under a reader pin at the current clock (the registered
// fallback when the pin table is full), which keeps traversal memory-safe:
// versions unlinked after the pin cannot be recycled until it is released.
// Versions retired *before* the pin may already be gone; that is harmless
// for recovery, because a version visible at S can only have been retired by
// a later committed transaction (end > S) whose redo record is in the
// retained log tail — replay re-materializes exactly those rows. The
// checkpoint is therefore a subset of the S-snapshot whose missing rows are
// all re-created by tail replay; see docs/durability.md.
//
// The payload passed to fn is valid only during the callback. An error from
// fn aborts the capture and is returned.
func (e *Engine) Capture(tables []*storage.Table, fn func(t *storage.Table, key uint64, payload []byte) error) (uint64, error) {
	// Publish a provisional pin BEFORE drawing the stable timestamp, mirroring
	// BeginReadOnly: the pin bounds every future watermark computation.
	pin := e.oracle.Current()
	slot := e.pins.Acquire(pin)
	var release func()
	if slot >= 0 {
		release = func() { e.pins.Release(slot) }
	} else {
		// Pin table full: a registered snapshot transaction bounds the
		// watermark the same way through its begin timestamp.
		tx := e.Begin(Optimistic, SnapshotIsolation)
		tx.readOnly = true
		release = func() { _ = tx.Abort() }
	}
	defer release()

	s := e.pins.Min(e.txns.OldestBegin(e.oracle.Current()))
	for _, t := range tables {
		if err := e.captureTable(t, s, fn); err != nil {
			return 0, err
		}
	}
	return s, nil
}

// captureTable scans table t's primary index (ordinal 0) and emits every
// version visible at s.
func (e *Engine) captureTable(t *storage.Table, s uint64, fn func(t *storage.Table, key uint64, payload []byte) error) error {
	emitChain := func(head *storage.Version) error {
		for v := head; v != nil; v = v.Next(0) {
			if !visibleAt(v, s) {
				continue
			}
			if err := fn(t, v.Key(0), v.Payload); err != nil {
				return err
			}
		}
		return nil
	}
	switch ix := t.Index(0).(type) {
	case *storage.HashIndex:
		// "To scan a table, one simply scans all buckets of any index on the
		// table" (Section 2.1).
		for i := 0; i < ix.NumBuckets(); i++ {
			if err := emitChain(ix.BucketAt(i).Head()); err != nil {
				return err
			}
		}
		return nil
	default:
		cur, err := t.Index(0).ScanRange(0, ^uint64(0))
		if err != nil {
			return err
		}
		for {
			b, _, ok := cur.Next()
			if !ok {
				return nil
			}
			if err := emitChain(b.Head()); err != nil {
				return err
			}
		}
	}
}

// visibleAt reports whether version v belongs to the committed snapshot at
// stable timestamp s. Because every transaction with end timestamp <= s has
// finalized its version words (see Capture), any word still holding a
// transaction ID or lock belongs to a transaction that will commit or abort
// strictly after s, and resolves the same way a later timestamp would.
func visibleAt(v *storage.Version, s uint64) bool {
	b := v.Begin()
	if !field.IsTS(b) || field.TS(b) > s {
		// Created after s, by a still-active transaction, or aborted
		// (Infinity > s always).
		return false
	}
	e := v.End()
	if field.IsTS(e) && field.TS(e) <= s {
		return false // replaced or deleted at or before s
	}
	// A lock-word End belongs to a transaction ending after s: visible.
	return true
}
