package mv

// Wait-for deadlock construction and resolution (Section 4.4): two
// serializable pessimistic transactions each insert into a bucket the other
// has scanned, imposing mutual phantom-prevention wait-for dependencies.
// Both block before precommit; the detector aborts the younger one.

import (
	"testing"
	"time"

	"repro/internal/storage"
)

// distinctBuckets returns two keys routed to different buckets of tbl's
// primary index.
func distinctBuckets(tbl *storage.Table, from uint64) (uint64, uint64) {
	ix := tbl.Index(0)
	a := from
	for b := a + 1; ; b++ {
		if ix.Lookup(a) != ix.Lookup(b) {
			return a, b
		}
	}
}

func TestWaitForDeadlockDetectedAndBroken(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: time.Millisecond})
	t.Cleanup(func() { e.Close() })
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Buckets: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	keyA, keyB := distinctBuckets(tbl, 1)

	t1 := e.Begin(Pessimistic, Serializable)
	t2 := e.Begin(Pessimistic, Serializable)

	// Each inserts its own key...
	if err := t1.Insert(tbl, testPayload(keyA, 1)); err != nil {
		t.Fatal(err)
	}
	if err := t2.Insert(tbl, testPayload(keyB, 2)); err != nil {
		t.Fatal(err)
	}
	// ...then scans the other's bucket, finding the other's uncommitted
	// insert: a potential phantom, so each imposes a wait-for dependency on
	// the other (Section 4.2.2).
	if _, ok := readVal(t, t1, tbl, keyB); ok {
		t.Fatal("t1 saw t2's uncommitted insert")
	}
	if _, ok := readVal(t, t2, tbl, keyA); ok {
		t.Fatal("t2 saw t1's uncommitted insert")
	}
	if t1.T.WaitForCount() != 1 || t2.T.WaitForCount() != 1 {
		t.Fatalf("wait-for counts = %d/%d, want 1/1",
			t1.T.WaitForCount(), t2.T.WaitForCount())
	}

	// Both commit concurrently: a cycle. The detector must abort exactly
	// one; the survivor commits.
	errs := make(chan error, 2)
	go func() { errs <- t1.Commit() }()
	go func() { errs <- t2.Commit() }()
	var failures, successes int
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				failures++
			} else {
				successes++
			}
		case <-time.After(10 * time.Second):
			t.Fatal("deadlock not broken within 10s")
		}
	}
	if failures != 1 || successes != 1 {
		t.Fatalf("failures=%d successes=%d, want exactly one victim", failures, successes)
	}
	if e.Stats().DeadlockVictims != 1 {
		t.Fatalf("DeadlockVictims = %d", e.Stats().DeadlockVictims)
	}
}

func TestCooperativeDeadlockDetection(t *testing.T) {
	// Same construction, background detector disabled: DetectDeadlocks()
	// resolves it synchronously.
	e := NewEngine(Config{DeadlockInterval: -1})
	t.Cleanup(func() { e.Close() })
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Buckets: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	keyA, keyB := distinctBuckets(tbl, 1)

	t1 := e.Begin(Pessimistic, Serializable)
	t2 := e.Begin(Pessimistic, Serializable)
	if err := t1.Insert(tbl, testPayload(keyA, 1)); err != nil {
		t.Fatal(err)
	}
	if err := t2.Insert(tbl, testPayload(keyB, 2)); err != nil {
		t.Fatal(err)
	}
	readVal(t, t1, tbl, keyB)
	readVal(t, t2, tbl, keyA)

	errs := make(chan error, 2)
	go func() { errs <- t1.Commit() }()
	go func() { errs <- t2.Commit() }()

	// Let both reach their wait, then run detection until a victim falls.
	deadline := time.Now().Add(5 * time.Second)
	victims := 0
	for victims == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
		victims = e.DetectDeadlocks()
	}
	if victims != 1 {
		t.Fatalf("DetectDeadlocks found %d victims", victims)
	}
	var failures int
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			failures++
		}
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1", failures)
	}
}

// A read-then-update of one row by a single transaction is not a deadlock.
// The eager update of its own read-locked version leaves the transaction
// with a transient wait-for dependency (drained by precommit), during which
// the detector sees a version both read-locked by the transaction and
// write-locked by it; that must not become a one-node cycle.
func TestSelfReadLockUpdateNotVictimized(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1})
	t.Cleanup(func() { e.Close() })
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Buckets: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.LoadRow(tbl, testPayload(1, 10))

	tx := e.Begin(Pessimistic, Serializable)
	v, ok, err := tx.Lookup(tbl, 0, 1, nil) // serializable read: read-locks v
	if err != nil || !ok {
		t.Fatal("lookup failed")
	}
	if err := tx.Update(tbl, v, testPayload(1, 11)); err != nil {
		t.Fatal(err)
	}
	// The transaction now waits (until precommit) for the read locks found
	// on v — its own. The detector must not treat that as a cycle.
	if tx.T.WaitForCount() != 1 {
		t.Fatalf("WaitForCount = %d, want the eager-update dependency", tx.T.WaitForCount())
	}
	for i := 0; i < 10; i++ {
		if n := e.DetectDeadlocks(); n != 0 {
			t.Fatalf("detector victimized a lone read-then-update transaction (%d victims)", n)
		}
	}
	mustCommit(t, tx)
	if e.Stats().DeadlockVictims != 0 {
		t.Fatalf("DeadlockVictims = %d, want 0", e.Stats().DeadlockVictims)
	}
}

// No false deadlocks: two transactions with a one-directional dependency
// both commit.
func TestNoFalseDeadlock(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: time.Millisecond})
	t.Cleanup(func() { e.Close() })
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Buckets: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	keyA, _ := distinctBuckets(tbl, 1)

	ser := e.Begin(Pessimistic, Serializable)
	ins := e.Begin(Pessimistic, ReadCommitted)
	// ser scans keyA's bucket (locks it); ins inserts there and must wait
	// for ser — one edge, no cycle.
	if _, ok := readVal(t, ser, tbl, keyA); ok {
		t.Fatal("unexpected row")
	}
	if err := ins.Insert(tbl, testPayload(keyA, 9)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ins.Commit() }()
	time.Sleep(20 * time.Millisecond) // give the detector time to run
	select {
	case err := <-done:
		t.Fatalf("ins committed before ser finished: %v", err)
	default:
	}
	mustCommit(t, ser)
	if err := <-done; err != nil {
		t.Fatalf("ins aborted without a deadlock: %v", err)
	}
	if e.Stats().DeadlockVictims != 0 {
		t.Fatalf("false deadlock: %d victims", e.Stats().DeadlockVictims)
	}
}
