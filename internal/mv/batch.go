package mv

// TxBatch amortizes transaction startup costs over a stream of transactions
// executed sequentially by a single worker (a TATP-style client loop). Two
// global touches are batched away:
//
//   - The timestamp oracle: one Oracle.NextN draw reserves a block of n ids,
//     handed out locally; the paper's single critical section (Section 6) is
//     hit once per block instead of once per Begin.
//   - The transaction table: sub-transactions begin unregistered and only
//     register lazily, just before the first action that publishes their ID
//     (write, bucket lock, commit dependency). Read-only sub-transactions in
//     a read-mostly stream therefore never touch the table at all; their
//     snapshots are protected by the batch's reader pin, which the GC
//     watermark respects (see gc.ReaderPins).
//
// A batch is single-goroutine: at most one sub-transaction may be active at
// a time, and it must be finished (Commit or Abort) before the next Begin.
// Close releases the pin; sub-transactions already finished need nothing
// further, and the ids left unused in the current block are simply never
// issued.
type TxBatch struct {
	e      *Engine
	scheme Scheme
	iso    Isolation
	// next and limit delimit the unissued remainder of the reserved block.
	next, limit uint64
	blockN      uint64
	// pin is the reader-pin slot covering the block's snapshots, or -1 when
	// the pin table overflowed (Begin then degrades to plain Begins until a
	// slot frees up; see reserve).
	pin int
}

// BeginBatch prepares a batch that draws ids in blocks of n. All
// sub-transactions share the scheme and isolation level.
func (e *Engine) BeginBatch(scheme Scheme, iso Isolation, n int) *TxBatch {
	if n < 1 {
		n = 1
	}
	b := &TxBatch{e: e, scheme: scheme, iso: iso, blockN: uint64(n), pin: -1}
	b.reserve()
	return b
}

// reserve pins the watermark and draws a fresh id block. The pin is
// published BEFORE the block draw so every id in the block (a sub-
// transaction's begin timestamp and snapshot) is at or above the pin; the
// previous pin, if any, protects no live sub-transaction by the time
// reserve runs (the batch is between sub-transactions) and is released
// after the new one is in place.
//
// On pin-table overflow no block is drawn at all: a pre-reserved id goes
// stale as the counter advances, and with no pin to hold the watermark, a
// later sub-transaction registering with that stale begin timestamp could
// start BELOW the watermark — versions its snapshot needs might already be
// recycled. Begin then falls back to plain Begins (fresh id, eager
// registration), which are safe by construction.
func (b *TxBatch) reserve() {
	pin := b.e.oracle.Current()
	slot := b.e.pins.Acquire(pin)
	if b.pin >= 0 {
		b.e.pins.Release(b.pin)
	}
	b.pin = slot
	if slot < 0 {
		b.e.pinOverflows.Add(1)
		b.next, b.limit = 0, 0
		return
	}
	start := b.e.funnel.NextN(b.blockN)
	b.next, b.limit = start, start+b.blockN
}

// Begin starts the next sub-transaction. The previous one must be finished.
func (b *TxBatch) Begin() *Tx {
	if b.next >= b.limit {
		b.reserve()
		if b.pin < 0 {
			return b.e.Begin(b.scheme, b.iso)
		}
	}
	id := b.next
	b.next++
	tx := b.e.getTx(id, id, b.scheme, b.iso)
	return tx
}

// Close releases the batch's reader pin. Every sub-transaction must already
// be finished. The batch must not be used afterwards.
func (b *TxBatch) Close() {
	if b.pin >= 0 {
		b.e.pins.Release(b.pin)
		b.pin = -1
	}
	b.next = b.limit
}
