package mv

// Tests for the batched Begin/Commit path: block timestamp draws, lazy
// transaction-table registration, and correctness of writes issued through
// a batch.

import (
	"encoding/binary"
	"sync"
	"testing"
)

func TestBatchAmortizesOracleAndRegistration(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1})
	defer e.Close()
	tbl := roTable(t, e, 16)

	const blockN = 64
	const txns = 100 // spans two blocks
	before := e.Oracle().Current()
	b := e.BeginBatch(Optimistic, ReadCommitted, blockN)
	for i := 0; i < txns; i++ {
		tx := b.Begin()
		if tx.registered {
			t.Fatal("read sub-transaction registered eagerly")
		}
		if n := e.TxnTable().Len(); n != 0 {
			t.Fatalf("txn table has %d entries during a read sub-txn", n)
		}
		v, ok, err := tx.Lookup(tbl, 0, uint64(i)%16, nil)
		if err != nil || !ok || !stressRowOK(v.Payload) {
			t.Fatalf("lookup: ok=%v err=%v", ok, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	// 100 transactions span two blocks, so the counter moved by exactly two
	// block draws and nothing else (reads never draw an end timestamp).
	delta := e.Oracle().Current() - before
	if delta != 2*blockN {
		t.Fatalf("counter delta = %d, want %d (two block draws)", delta, 2*blockN)
	}
}

func TestBatchWritersRegisterLazilyAndCommit(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1})
	defer e.Close()
	tbl := roTable(t, e, 16)

	b := e.BeginBatch(Optimistic, ReadCommitted, 32)
	defer b.Close()

	tx := b.Begin()
	v, _, err := tx.Lookup(tbl, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tx.registered {
		t.Fatal("registered before first write")
	}
	if err := tx.Update(tbl, v, stressRow(3, 777)); err != nil {
		t.Fatal(err)
	}
	if !tx.registered {
		t.Fatal("write did not register the sub-transaction")
	}
	if n := e.TxnTable().Len(); n != 1 {
		t.Fatalf("txn table has %d entries during the writer, want 1", n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := e.TxnTable().Len(); n != 0 {
		t.Fatalf("txn table has %d entries after commit", n)
	}

	// The write is durable within the engine and ids stay unique: a second
	// sub-transaction and a plain transaction both see it.
	tx2 := b.Begin()
	got, _, err := tx2.Lookup(tbl, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if val := binary.LittleEndian.Uint64(got.Payload[8:]); val != 777 {
		t.Fatalf("batch reader sees %d, want 777", val)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	plain := e.Begin(Optimistic, ReadCommitted)
	got, _, err = plain.Lookup(tbl, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if val := binary.LittleEndian.Uint64(got.Payload[8:]); val != 777 {
		t.Fatalf("plain reader sees %d, want 777", val)
	}
	if err := plain.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchAbortAndSerializableSubTxn(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1})
	defer e.Close()
	tbl := roTable(t, e, 16)

	// Serializable optimistic sub-txns exercise the validation path (which
	// draws an end timestamp) from a lazily-registered start.
	b := e.BeginBatch(Optimistic, Serializable, 8)
	defer b.Close()
	tx := b.Begin()
	v, _, err := tx.Lookup(tbl, 0, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(tbl, v, stressRow(5, 1)); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if n := e.TxnTable().Len(); n != 0 {
		t.Fatalf("txn table has %d entries after abort", n)
	}

	tx2 := b.Begin()
	got, _, err := tx2.Lookup(tbl, 0, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if val := binary.LittleEndian.Uint64(got.Payload[8:]); val != 5 {
		t.Fatalf("aborted write leaked: %d, want 5", val)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchPinOverflowFallsBackToPlainBegins pins the overflow semantics:
// with every reader-pin slot occupied, a batch must NOT hand out ids from a
// pre-drawn block (with no pin holding the watermark, a stale id could
// register below it); it degrades to plain Begins with fresh ids, and
// resumes block mode once a slot frees up.
func TestBatchPinOverflowFallsBackToPlainBegins(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1})
	defer e.Close()
	tbl := roTable(t, e, 8)

	// Occupy every pin slot with fast-lane readers; the first fallback
	// (registered) reader signals the table is full.
	var pinned []*Tx
	for {
		tx := e.BeginReadOnly()
		if tx.pin < 0 {
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			break
		}
		pinned = append(pinned, tx)
	}

	b := e.BeginBatch(Optimistic, SnapshotIsolation, 32)
	defer b.Close()
	before := e.Oracle().Current()
	tx := b.Begin()
	if !tx.registered {
		t.Fatal("overflow sub-transaction is unregistered (unprotected snapshot)")
	}
	if tx.T.ID() <= before {
		t.Fatalf("overflow sub-transaction got a stale id %d (counter was %d)", tx.T.ID(), before)
	}
	if _, ok, err := tx.Lookup(tbl, 0, 1, nil); err != nil || !ok {
		t.Fatalf("lookup: ok=%v err=%v", ok, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Free the pins: the batch should resume block mode.
	for _, ro := range pinned {
		if err := ro.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	tx2 := b.Begin()
	if tx2.registered {
		t.Fatal("batch did not resume lazy block mode after pins freed")
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchConcurrentWithWriters runs one batch per worker against plain
// update traffic with aggressive recycling; -race and the self-verifying
// payloads catch pin/watermark mistakes.
func TestBatchConcurrentWithWriters(t *testing.T) {
	const (
		rows    = 32
		batches = 3
		writers = 2
		iters   = 2000
	)
	e := NewEngine(Config{GCEvery: 1, GCQuota: 128, DeadlockInterval: -1})
	defer e.Close()
	tbl := roTable(t, e, rows)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := uint64((w*iters + i) % rows)
				tx := e.Begin(Pessimistic, ReadCommitted)
				if _, err := tx.UpdateWhere(tbl, 0, k, nil, func(old []byte) []byte {
					return stressRow(k, binary.LittleEndian.Uint64(old[8:])+1)
				}); err != nil {
					tx.Abort()
					continue
				}
				_ = tx.Commit()
			}
		}(w)
	}
	for bi := 0; bi < batches; bi++ {
		wg.Add(1)
		go func(bi int) {
			defer wg.Done()
			b := e.BeginBatch(Optimistic, SnapshotIsolation, 64)
			defer b.Close()
			for i := 0; i < iters; i++ {
				k := uint64((bi*iters + i) % rows)
				tx := b.Begin()
				v, ok, err := tx.Lookup(tbl, 0, k, nil)
				if err != nil || !ok {
					t.Errorf("batch lookup: ok=%v err=%v", ok, err)
					tx.Abort()
					return
				}
				if !stressRowOK(v.Payload) {
					t.Error("batch reader saw a corrupt payload")
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("batch commit: %v", err)
					return
				}
			}
		}(bi)
	}
	wg.Wait()
}
