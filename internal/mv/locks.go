package mv

import (
	"repro/internal/field"
	"repro/internal/storage"
	"repro/internal/txn"
)

// acquireReadLock takes a read lock on version v for tx (Section 4.2.1).
// Read locks are only ever taken on latest versions. If v is write locked
// and this is the first read lock, the write locker acquires a wait-for
// dependency: it may not precommit until the lock is released.
func (tx *Tx) acquireReadLock(v *storage.Version) error {
	for {
		w := v.End()
		if field.IsTS(w) {
			if field.TS(w) != field.Infinity {
				// The version was committed-replaced between the visibility
				// check and lock acquisition; it is no longer the latest.
				return ErrReadLockFailed
			}
			if v.CASEnd(w, field.Lock(field.NoWriter, 1, false)) {
				tx.recordReadLock(v)
				return nil
			}
			continue
		}
		// Lock word.
		if field.NoMoreReadLocks(w) || field.Readers(w) == field.MaxReadLocks {
			return ErrReadLockFailed
		}
		writer := field.Writer(w)
		if writer != field.NoWriter && writer != tx.T.ID() && field.Readers(w) == 0 {
			// First read lock on a write-locked version: force the writer
			// to wait on V before it can precommit.
			te, ok := tx.e.txns.Lookup(writer)
			if !ok {
				continue // writer finalizing; word about to change
			}
			if te.ID() != writer {
				continue // object recycled: writer terminated; reread
			}
			if te.State() == txn.Aborted {
				// The writer aborted; no dependency needed, the lock word
				// will be reset or stolen. Just take the read lock.
				if v.CASEnd(w, field.WithReaders(w, 1)) {
					tx.recordReadLock(v)
					return nil
				}
				continue
			}
			if !te.AddWaitFor() {
				// The writer no longer accepts wait-for dependencies (it is
				// about to precommit): the lock cannot guarantee stability.
				return ErrReadLockFailed
			}
			if v.CASEnd(w, field.WithReaders(w, 1)) {
				tx.recordReadLock(v)
				return nil
			}
			// Lost the race; undo the dependency and retry.
			te.ReleaseWaitFor()
			continue
		}
		if v.CASEnd(w, field.WithReaders(w, field.Readers(w)+1)) {
			tx.recordReadLock(v)
			return nil
		}
	}
}

func (tx *Tx) recordReadLock(v *storage.Version) {
	tx.tookLocks = true
	tx.T.RecordReadLock(v)
}

// releaseReadLock drops one read lock (Section 4.2.1). Releasing the last
// read lock on a write-locked version atomically sets NoMoreReadLocks — so
// the writer's commit cannot be postponed again — and then releases the
// writer's wait-for dependency.
func (tx *Tx) releaseReadLock(v *storage.Version) {
	for {
		w := v.End()
		if !field.IsLock(w) {
			return // already finalized (defensive; cannot happen while we hold a lock)
		}
		r := field.Readers(w)
		if r <= 0 {
			return // defensive
		}
		if field.HasWriter(w) && r == 1 {
			nw := field.WithNoMore(field.WithReaders(w, 0), true)
			if v.CASEnd(w, nw) {
				if te, ok := tx.e.txns.Lookup(field.Writer(w)); ok {
					te.ReleaseWaitFor()
				}
				return
			}
			continue
		}
		nw := field.WithReaders(w, r-1)
		if !field.HasWriter(nw) && field.Readers(nw) == 0 {
			// Fully unlocked: restore the canonical infinity timestamp.
			// This also clears a stale NoMoreReadLocks flag left behind by
			// an aborted writer, so future read locks are possible again.
			nw = field.FromTS(field.Infinity)
		}
		if v.CASEnd(w, nw) {
			return
		}
	}
}

// releaseAllReadLocks releases every read lock held by tx. Called after
// precommit (the end timestamp must be drawn while the locks are held) and
// on abort.
func (tx *Tx) releaseAllReadLocks() {
	if !tx.tookLocks {
		return
	}
	tx.tookLocks = false
	tx.readLockBuf = tx.T.DrainReadLocks(tx.readLockBuf)
	for _, v := range tx.readLockBuf {
		tx.releaseReadLock(v)
	}
	clear(tx.readLockBuf)
	tx.readLockBuf = tx.readLockBuf[:0]
}

// releaseSelfWriteReadLocks releases the read locks tx holds on versions tx
// itself write-locked (read-then-update of one row). Called before
// WaitWaitFors: installWriteLock charged tx a wait-for dependency for the
// read locks it found on the version, and when those locks are tx's own the
// dependency can never drain while they are held to precommit — the
// transaction would wait on itself. Stability needs no read lock once tx
// owns the write lock: a competing writer hits ErrWriteConflict, and the
// version's End can only ever become tx's own end timestamp. Read locks on
// versions locked by OTHER writers (or by no writer) stay held through the
// end-timestamp draw.
func (tx *Tx) releaseSelfWriteReadLocks() {
	if !tx.tookLocks || len(tx.writeSet) == 0 {
		return
	}
	tx.readLockBuf = tx.T.DrainReadLocks(tx.readLockBuf)
	for _, v := range tx.readLockBuf {
		w := v.End()
		if field.IsLock(w) && field.Writer(w) == tx.T.ID() {
			tx.releaseReadLock(v)
		} else {
			tx.T.RecordReadLock(v)
		}
	}
	clear(tx.readLockBuf)
	tx.readLockBuf = tx.readLockBuf[:0]
}

// installWriteLock atomically stores tx's ID in V's End word, the combined
// "write lock + updater identity" of Section 2.6. It returns whether the
// version was read locked at that instant (the caller then owes itself a
// wait-for dependency) and an error on write-write conflict.
func (tx *Tx) installWriteLock(v *storage.Version) (wasReadLocked bool, err error) {
	for {
		w := v.End()
		if field.IsTS(w) {
			if field.TS(w) != field.Infinity {
				// A committed update already ended this version: it is not
				// the latest.
				return false, ErrWriteConflict
			}
			if v.CASEnd(w, field.Lock(tx.T.ID(), 0, false)) {
				return false, nil
			}
			continue
		}
		writer := field.Writer(w)
		if writer == field.NoWriter {
			// Read locked only. Eager update: allowed, but tx cannot
			// precommit until the read locks drain.
			if field.Readers(w) > 0 && tx.e.cfg.DisableEagerUpdates {
				return false, ErrWriteConflict
			}
			if v.CASEnd(w, field.WithWriter(w, tx.T.ID())) {
				return field.Readers(w) > 0, nil
			}
			continue
		}
		if writer == tx.T.ID() {
			// Double update of the same old version within one transaction:
			// the correct target is our new version; treat as a conflict.
			return false, ErrWriteConflict
		}
		te, ok := tx.e.txns.Lookup(writer)
		if !ok {
			continue // finalizing; reread
		}
		st := te.State()
		if te.ID() != writer {
			continue // object recycled: writer terminated; reread the word
		}
		switch st {
		case txn.Aborted:
			// The updater aborted: V is still the latest version and its
			// write lock can be stolen (Section 2.6).
			if v.CASEnd(w, field.WithWriter(w, tx.T.ID())) {
				return field.Readers(w) > 0, nil
			}
			continue
		case txn.Terminated:
			continue
		default:
			// Active, Preparing or Committed: a later, not-yet-finalized
			// version exists. First-writer-wins: tx must abort.
			return false, ErrWriteConflict
		}
	}
}

// lockBucket takes a bucket lock for a serializable pessimistic scan
// (Section 4.1.2). Locks are idempotent per transaction. The holder list
// publishes the transaction's ID (inserters look holders up to register
// wait-for dependencies), so a lazily-begun transaction registers first.
func (tx *Tx) lockBucket(b *storage.Bucket) {
	for _, held := range tx.bucketLocks {
		if held == b {
			return
		}
	}
	tx.ensureRegistered()
	tx.e.blt.Acquire(b, tx.T.ID())
	tx.bucketLocks = append(tx.bucketLocks, b)
}

// releaseBucketLocks releases all bucket locks at the end of normal
// processing.
func (tx *Tx) releaseBucketLocks() {
	for _, b := range tx.bucketLocks {
		tx.e.blt.Release(b, tx.T.ID())
	}
	clear(tx.bucketLocks)
	tx.bucketLocks = tx.bucketLocks[:0]
}

// rangeLockRef records one range lock held by the transaction for release at
// the end of normal processing.
type rangeLockRef struct {
	rl     *storage.RangeLockTable
	lo, hi uint64
}

// lockRange takes a range lock on an ordered index for a serializable
// pessimistic scan — the predicate-shaped analogue of lockBucket. Locks
// covered by an already-held range are skipped. The holder list publishes
// the transaction's ID (inserters look holders up to register wait-for
// dependencies), so a lazily-begun transaction registers first.
func (tx *Tx) lockRange(rl *storage.RangeLockTable, lo, hi uint64) {
	for _, held := range tx.rangeLocks {
		if held.rl == rl && held.lo <= lo && hi <= held.hi {
			return
		}
	}
	tx.ensureRegistered()
	rl.Acquire(lo, hi, tx.T.ID())
	tx.rangeLocks = append(tx.rangeLocks, rangeLockRef{rl, lo, hi})
}

// releaseRangeLocks releases all range locks at the end of normal
// processing.
func (tx *Tx) releaseRangeLocks() {
	for _, h := range tx.rangeLocks {
		h.rl.Release(h.lo, h.hi, tx.T.ID())
	}
	clear(tx.rangeLocks)
	tx.rangeLocks = tx.rangeLocks[:0]
}

// insertDeps is called when tx links a new version with the given key into
// index ix: if the key is covered by serializable scan locks — bucket locks
// on a hash index, range locks on an ordered one — tx takes a wait-for
// dependency on each holder: it may insert eagerly, but cannot precommit
// before the scanners complete (Section 4.2.2).
func (tx *Tx) insertDeps(ix storage.Index, key uint64) error {
	if rl := ix.RangeLocks(); rl != nil {
		if rl.Active() == 0 {
			return nil
		}
		if tx.e.cfg.DisableEagerUpdates {
			return ErrWriteConflict
		}
		return tx.holderDeps(rl.AppendHolders(tx.holders[:0], key))
	}
	b := ix.Lookup(key)
	if b.LockCount() == 0 {
		return nil
	}
	if tx.e.cfg.DisableEagerUpdates {
		return ErrWriteConflict
	}
	return tx.holderDeps(tx.e.blt.AppendHolders(tx.holders[:0], b))
}

// holderDeps installs one wait-for dependency per scan-lock holder; holders
// must alias tx.holders (the reusable scratch buffer).
func (tx *Tx) holderDeps(holders []uint64) error {
	tx.holders = holders
	for _, hid := range tx.holders {
		if hid == tx.T.ID() {
			continue // our own scan lock; our inserts are visible to us
		}
		holder, ok := tx.e.txns.Lookup(hid)
		if !ok {
			continue // holder finished
		}
		if holder.ID() != hid {
			continue // object recycled: holder finished
		}
		if !tx.T.AddWaitFor() {
			return ErrWaitForRefused
		}
		if !holder.RegisterWaiter(tx.T.ID()) {
			// The holder already released its outgoing dependencies (it has
			// precommitted); it no longer needs phantom protection.
			tx.T.ReleaseWaitFor()
		}
	}
	return nil
}

// imposePhantomDep is called when a serializable pessimistic scan encounters
// an invisible version created by a still-active transaction TU: if TU
// commits before tx completes, the version becomes a phantom. tx registers a
// wait-for dependency on TU's behalf — TU may not precommit until tx has
// completed (Section 4.2.2).
func (tx *Tx) imposePhantomDep(tu *txn.Txn) error {
	if tu.ID() == tx.T.ID() {
		return nil
	}
	if !tu.AddWaitFor() {
		// TU is already precommitting; we cannot delay it, so we cannot
		// guarantee phantom avoidance.
		return ErrPhantomRisk
	}
	if !tx.T.RegisterWaiter(tu.ID()) {
		tu.ReleaseWaitFor() // we are past release (cannot happen while active)
	}
	return nil
}
