package mv_test

// Read-path benchmark: the pooled-transaction hot path with zero writes.
// Unlike the root-level figure benchmarks this one pins the MV engine alone
// (no scheme sweep), so it is the fastest way to spot regressions in
// Begin/Scan/Commit overhead.

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func BenchmarkPureRead(b *testing.B) {
	db, err := core.Open(core.Config{Scheme: core.MVOptimistic})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const rows = 10000
	tbl, err := workload.Table(db, rows)
	if err != nil {
		b.Fatal(err)
	}
	workload.Load(db, tbl, rows)
	h := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: rows}, R: 10, W: 0}
	var seed atomic.Int64
	b.ReportAllocs()
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			tx := db.Begin(core.WithIsolation(core.ReadCommitted))
			if _, err := h.Run(tx, rng); err != nil {
				tx.Abort()
				continue
			}
			_ = tx.Commit()
		}
	})
}
