package mv

import (
	"repro/internal/field"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Commit drives the transaction through the end of normal processing, the
// preparation phase, and postprocessing (Sections 2.4, 3.2-3.3, 4.3).
//
// Pessimistic steps: wait for incoming wait-for dependencies, precommit,
// then release read, bucket and range locks (the end timestamp must be
// drawn while the locks are still held — see the ordering comment below).
// Optimistic steps: validate reads and scans after precommit. Both: wait
// for commit dependencies, write the redo log record, switch to Committed,
// propagate the end timestamp into the version words, report to dependents,
// and hand old versions to the garbage collector.
//
// A non-nil error means the transaction aborted; the abort has already been
// fully processed.
func (tx *Tx) Commit() error {
	_, err := tx.CommitTS()
	return err
}

// CommitTS commits like Commit and additionally returns the transaction's
// end timestamp — its serialization point, the value history checkers
// replay in (see internal/check). The timestamp is captured inside the
// commit itself because the Tx and its txn.Txn are recycled objects:
// reading T.End() after Commit returns races with the pool handing the
// object to another goroutine's Begin. A zero timestamp with a nil error
// is a fast commit — the transaction wrote nothing, held no locks and
// needed no validation, so its commit point is unordered with respect to
// every other transaction (fastCommittable).
//
//mvlint:noalloc
func (tx *Tx) CommitTS() (uint64, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	if tx.fastCommittable() {
		return 0, tx.commitFast()
	}

	if tx.T.AbortRequested() {
		tx.e.cascadingAborts.Add(1)
		tx.abortInternal()
		return 0, ErrAborted
	}

	// Drop read locks on our own updated versions first — they fund a
	// wait-for dependency on ourselves that could never drain below.
	tx.releaseSelfWriteReadLocks()

	// Wait until incoming wait-for dependencies drain; this also flips
	// NoMoreWaitFors so no new ones can be installed. The deadlock detector
	// may break this wait by setting AbortNow. Read, bucket and range locks
	// are still held here: a blocked holder is a detector node, its waiters
	// have explicit edges, and versions it read-locked contribute the
	// implicit edges, so any cycle this creates is found and broken.
	if err := tx.T.WaitWaitFors(); err != nil {
		tx.e.cascadingAborts.Add(1)
		tx.abortInternal()
		return 0, ErrAborted
	}

	// Precommit: acquire the end timestamp and enter the Preparing state.
	// The draw goes through the combining funnel — concurrent committers
	// share one fetch-and-add — which preserves the lock-ordering argument
	// below because the funnel linearizes each draw inside its own call: a
	// transaction our locks delay cannot enter the funnel (let alone share a
	// batch with us) until its wait drains, which happens only after this
	// draw returns. See ts.Funnel. Pessimistic committers are holding read,
	// bucket and range locks here, so they take the no-yield path; lockless
	// optimistic committers may open the combining window.
	// The state flip precedes the draw, and the order is load-bearing. The
	// visibility code treats a writer observed Active as "its end timestamp,
	// whenever it is drawn, will exceed my read time" — true only if the
	// writer could not have drawn an end timestamp yet. Flipping to
	// Preparing first makes the observation sound: a validator that catches
	// us Active knows our draw is entirely in its future (and therefore
	// larger than its own, already-drawn timestamp); one that catches us
	// Preparing with no end yet published simply rereads until the store
	// below lands. The old order (draw, then flip) left a window where a
	// concurrent serializable validator saw state Active on an inserter
	// already holding a smaller end timestamp, concluded "no phantom
	// possible", and committed a scan that missed the insert — a phantom in
	// end-timestamp order that TestFunnelHistorySerializable catches at
	// GOMAXPROCS >= 4.
	tx.T.SetState(txn.Preparing)
	var end uint64
	if !tx.tookLocks && len(tx.bucketLocks) == 0 && len(tx.rangeLocks) == 0 {
		end = tx.e.funnel.Next()
	} else {
		end = tx.e.funnel.NextLocked()
	}
	tx.T.SetEnd(end)

	// End of normal processing: release read locks, bucket locks and range
	// locks — strictly AFTER the end timestamp draw. The order is
	// load-bearing for "serializable in end-timestamp order": every
	// transaction our locks delayed (an eager updater of a version we
	// read-locked, an inserter into a range or bucket we scan-locked)
	// acquires its end timestamp only after its wait drains, and the wait
	// drains only here, so its end timestamp exceeds ours and our reads
	// stay valid as of our own end. Releasing before the draw (the previous
	// order) left a window in which the delayed writer won the oracle race
	// and serialized BEFORE the scan it was delayed by — a phantom in
	// commit order that the range-aware history checker
	// (check.ValidateIndexed, TestRangeHistorySerializable) detects.
	// Purely optimistic transactions hold no locks.
	tx.releaseAllReadLocks()
	tx.releaseBucketLocks()
	tx.releaseRangeLocks()

	// Release outgoing wait-for dependencies: transactions that inserted
	// into our locked buckets (or whose commits we delayed for phantom
	// protection) may now precommit (Section 4.2.2).
	tx.T.ReleaseWaiters(tx.e.txns)

	// Preparation phase. Pessimistic transactions need no validation —
	// that is taken care of by locks (Section 4.3.2).
	if tx.scheme == Optimistic {
		if err := tx.validate(end); err != nil {
			tx.e.validationFails.Add(1)
			tx.abortInternal()
			return 0, err
		}
	}

	// Wait for outstanding commit dependencies (often already resolved).
	if err := tx.T.WaitCommitDeps(); err != nil {
		tx.e.cascadingAborts.Add(1)
		tx.abortInternal()
		return 0, ErrAborted
	}

	// Write the redo record. Commit ordering is determined by end
	// timestamps carried in the records (Section 3.2). The record and its
	// entries are owned by the Tx and reused across recycles: Append encodes
	// them before returning, so nothing escapes.
	if tx.e.cfg.Log != nil && len(tx.writeSet) > 0 {
		rec := &tx.walRec
		rec.TxID = tx.T.ID()
		rec.EndTS = end
		rec.Ops = rec.Ops[:0]
		for i := range tx.writeSet {
			wr := &tx.writeSet[i]
			e := wal.Entry{Table: wr.table.Name, Op: wr.op, Key: wr.key}
			if wr.newV != nil {
				e.Payload = wr.newV.Payload
			}
			rec.Ops = append(rec.Ops, e)
		}
		if err := tx.e.cfg.Log.Append(rec); err != nil {
			// The in-flight commit fails, and the engine flips read-only: a
			// log that cannot accept records cannot back any future
			// acknowledgement either. The end timestamp travels with the
			// error: after a power loss the record may still sit below the
			// surviving torn tail, and crash harnesses need the timestamp to
			// place such an unknown-outcome transaction when recovery proves
			// it durable.
			tx.e.degrade(err)
			tx.abortInternal()
			return end, err
		}
	}

	// The commit point: updates become visible to other transactions when
	// the state changes to Committed (Section 3).
	tx.T.SetState(txn.Committed)

	// Postprocessing: propagate the end timestamp into the Begin fields of
	// new versions and the End fields of old versions (Section 3.3).
	//mvlint:ignore noalloc panic-path constant from inlined field.FromTS; only materializes if the 63-bit timestamp invariant is already broken
	endWord := field.FromTS(end)
	for i := range tx.writeSet {
		wr := &tx.writeSet[i]
		if wr.newV != nil {
			wr.newV.SetBegin(endWord)
		}
		if wr.old != nil {
			tx.finalizeEnd(wr.old, endWord)
		}
	}

	// Report to dependents, then leave the transaction table.
	tx.T.ResolveDependents(true, tx.e.txns)
	tx.T.SetState(txn.Terminated)
	if tx.registered {
		tx.e.txns.Remove(tx.T.ID())
	}

	// Old versions are now superseded; assign them to the garbage
	// collector.
	for i := range tx.writeSet {
		wr := &tx.writeSet[i]
		if wr.old != nil {
			tx.e.gc.Retire(wr.table, wr.old)
		}
	}

	tx.done = true
	tx.e.commits.Add(1)
	tx.e.finishTx(tx)
	return end, nil
}

// fastCommittable reports whether the transaction can commit without
// drawing an end timestamp. A transaction that wrote nothing, holds no read
// or bucket locks, and needs no validation never publishes an end timestamp
// anywhere: no version word names it, no bucket-lock holder list contains
// it, and it can receive neither wait-for dependencies nor dependents (both
// require its ID to have been published). Its commit point is therefore
// unordered with respect to every other transaction, and the oracle draw —
// the paper's single shared critical section — can be skipped entirely.
//
// Read-only fast-lane transactions always qualify (they cannot write or take
// locks); so do read-committed/snapshot read transactions from the regular
// and batch Begin paths. Optimistic repeatable-read/serializable readers do
// not: validation compares against an end timestamp (Section 3.2).
func (tx *Tx) fastCommittable() bool {
	if len(tx.writeSet) > 0 || tx.tookLocks || len(tx.bucketLocks) > 0 || len(tx.rangeLocks) > 0 {
		return false
	}
	if tx.scheme == Optimistic && (tx.iso == RepeatableRead || tx.iso == Serializable) {
		return false
	}
	return true
}

// commitFast commits a transaction that fastCommittable approved: no end
// timestamp, no preparation phase, no postprocessing. Outstanding commit
// dependencies from speculative reads are still honored.
//
//mvlint:noalloc
func (tx *Tx) commitFast() error {
	if tx.T.AbortRequested() {
		tx.e.cascadingAborts.Add(1)
		tx.abortInternal()
		return ErrAborted
	}
	if err := tx.T.WaitCommitDeps(); err != nil {
		tx.e.cascadingAborts.Add(1)
		tx.abortInternal()
		return ErrAborted
	}
	tx.T.SetState(txn.Terminated)
	if tx.registered {
		tx.e.txns.Remove(tx.T.ID())
	}
	tx.done = true
	tx.e.commits.Add(1)
	tx.e.fastCommits.Add(1)
	tx.e.finishTx(tx)
	return nil
}

// finalizeEnd replaces tx's write lock on v with the commit timestamp. All
// read locks have necessarily drained: the last releaser set NoMoreReadLocks
// and new readers cannot install wait-for dependencies after precommit.
//
//mvlint:noalloc
func (tx *Tx) finalizeEnd(v *storage.Version, endWord uint64) {
	for {
		w := v.End()
		if !field.IsLock(w) || field.Writer(w) != tx.T.ID() {
			return
		}
		if v.CASEnd(w, endWord) {
			return
		}
	}
}

// Abort rolls the transaction back explicitly.
func (tx *Tx) Abort() error {
	if tx.done {
		return ErrTxDone
	}
	tx.abortInternal()
	return nil
}

// abortInternal performs the abort transition and postprocessing: new
// versions are made invisible (Begin = infinity), write locks on old
// versions are reset (unless another transaction already detected the abort
// and took over the version), dependents are told to abort, and garbage is
// handed to the collector.
func (tx *Tx) abortInternal() {
	tx.T.SetState(txn.Aborted)

	tx.releaseAllReadLocks()
	tx.releaseBucketLocks()
	tx.releaseRangeLocks()
	tx.T.ReleaseWaiters(tx.e.txns)

	infWord := field.FromTS(field.Infinity)
	for i := range tx.writeSet {
		wr := &tx.writeSet[i]
		if wr.newV != nil {
			// Make the version invisible to everyone (Section 3.3).
			wr.newV.SetBegin(infWord)
		}
		if wr.old != nil {
			tx.resetEnd(wr.old)
		}
	}

	// Cascade: dependents must also abort (Section 2.7).
	tx.T.ResolveDependents(false, tx.e.txns)
	tx.T.SetState(txn.Terminated)
	if tx.registered {
		tx.e.txns.Remove(tx.T.ID())
	}

	// The new versions are garbage immediately; unlink them.
	for i := range tx.writeSet {
		wr := &tx.writeSet[i]
		if wr.newV != nil {
			tx.e.gc.Retire(wr.table, wr.newV)
		}
	}

	tx.done = true
	tx.e.aborts.Add(1)
	tx.e.finishTx(tx)
}

// resetEnd attempts to restore v's End word to infinity after an abort,
// preserving any read locks. If another transaction has already detected the
// abort and taken over the write lock, the word is left unchanged
// (Section 3.3).
func (tx *Tx) resetEnd(v *storage.Version) {
	for {
		w := v.End()
		if !field.IsLock(w) || field.Writer(w) != tx.T.ID() {
			return
		}
		var nw uint64
		if field.Readers(w) > 0 {
			nw = field.WithWriter(w, field.NoWriter)
		} else {
			nw = field.FromTS(field.Infinity)
		}
		if v.CASEnd(w, nw) {
			return
		}
	}
}

// validate implements the preparation-phase checks of an optimistic
// transaction (Section 3.2): read stability for repeatable read and above,
// phantom detection for serializable.
func (tx *Tx) validate(end uint64) error {
	if tx.iso != RepeatableRead && tx.iso != Serializable {
		return nil
	}
	for _, v := range tx.readSet {
		ok, err := tx.stillVisible(v, end)
		if err != nil {
			return err
		}
		if !ok {
			return ErrValidation
		}
	}
	if tx.iso != Serializable {
		return nil
	}
	// Phantom detection: repeat every scan looking for versions that came
	// into existence during the transaction's lifetime and are visible as of
	// its end (Figure 3's V4 case).
	for i := range tx.scanSet {
		if err := tx.rescan(&tx.scanSet[i], end); err != nil {
			return err
		}
	}
	return nil
}

// rescan repeats one recorded scan at the end timestamp. Point scans walk
// the key's bucket (re-looked-up, so a key — or, on an ordered index, a
// whole skip-list node — created after the original scan is still found);
// range scans re-run the cursor over [lo, hi].
func (tx *Tx) rescan(sc *scanRecord, end uint64) error {
	ord := sc.ix.Ord()
	check := func(v *storage.Version) error {
		if sc.pred != nil && !sc.pred(v.Payload) {
			return nil
		}
		bw := v.Begin()
		if !field.IsTS(bw) && field.TxID(bw) == tx.T.ID() {
			return nil // our own creation is not a phantom
		}
		visEnd, err := tx.isVisible(v, end)
		if err != nil {
			return err
		}
		if !visEnd {
			return nil
		}
		visStart, err := tx.isVisible(v, tx.T.Begin())
		if err != nil {
			return err
		}
		if !visStart {
			return ErrValidation // phantom
		}
		return nil
	}
	if sc.ix.Ordered() {
		cur, err := sc.ix.ScanRange(sc.lo, sc.hi)
		if err != nil {
			return err
		}
		for {
			b, _, ok := cur.Next()
			if !ok {
				return nil
			}
			for v := b.Head(); v != nil; v = v.Next(ord) {
				if err := check(v); err != nil {
					return err
				}
			}
		}
	}
	b := sc.ix.Lookup(sc.lo)
	for v := b.Head(); v != nil; v = v.Next(ord) {
		if v.Key(ord) != sc.lo {
			continue
		}
		if err := check(v); err != nil {
			return err
		}
	}
	return nil
}

// stillVisible checks that a read-set version remains visible at the end
// timestamp. Versions the transaction itself updated or deleted pass: the
// write lock proves no other transaction changed them after the read.
func (tx *Tx) stillVisible(v *storage.Version, end uint64) (bool, error) {
	bw := v.Begin()
	if !field.IsTS(bw) && field.TxID(bw) == tx.T.ID() {
		// Our own insert, possibly updated/deleted again by us.
		return true, nil
	}
	for {
		w := v.End()
		if field.IsTS(w) {
			return end < field.TS(w), nil
		}
		writer := field.Writer(w)
		if writer == field.NoWriter || writer == tx.T.ID() {
			return true, nil
		}
		te, ok := tx.e.txns.Lookup(writer)
		if !ok {
			continue // finalizing; reread
		}
		st := te.State()
		teEnd := te.End()
		if te.ID() != writer {
			continue // object recycled: TE terminated; reread the word
		}
		switch st {
		case txn.Active:
			// An uncommitted update: if it ever commits its end timestamp
			// will exceed ours, so our read remains valid.
			return true, nil
		case txn.Preparing, txn.Committed:
			if teEnd == 0 {
				continue
			}
			// If TE's end precedes ours and TE commits, the version was
			// replaced inside our lifetime. We cannot take an
			// "abort-dependency", so fail conservatively even if TE is
			// still preparing.
			return end < teEnd, nil
		case txn.Aborted:
			return true, nil
		default:
			continue
		}
	}
}
