package mv

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gc"
	"repro/internal/storage"
)

func newOrderedTestEngine(t *testing.T) (*Engine, *storage.Table) {
	t.Helper()
	e := NewEngine(Config{DeadlockInterval: -1})
	tbl, err := e.CreateTable(storage.TableSpec{
		Name: "t",
		Indexes: []storage.IndexSpec{
			{Name: "pk", Key: payloadKey, Ordered: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, tbl
}

// collectRange runs a range scan and returns the visible keys in scan order.
func collectRange(t *testing.T, tx *Tx, tbl *storage.Table, lo, hi uint64) []uint64 {
	t.Helper()
	var keys []uint64
	err := tx.ScanRange(tbl, 0, lo, hi, nil, func(v *storage.Version) bool {
		keys = append(keys, payloadKey(v.Payload))
		return true
	})
	if err != nil {
		t.Fatalf("ScanRange: %v", err)
	}
	return keys
}

func TestScanRangeAllSchemesAndLevels(t *testing.T) {
	for _, scheme := range []Scheme{Optimistic, Pessimistic} {
		for _, level := range []Isolation{ReadCommitted, SnapshotIsolation, RepeatableRead, Serializable} {
			t.Run(scheme.String()+"/"+level.String(), func(t *testing.T) {
				e, tbl := newOrderedTestEngine(t)
				for k := uint64(0); k < 100; k++ {
					e.LoadRow(tbl, testPayload(k, k*10))
				}
				tx := e.Begin(scheme, level)
				keys := collectRange(t, tx, tbl, 10, 19)
				if len(keys) != 10 {
					t.Fatalf("got %d keys, want 10: %v", len(keys), keys)
				}
				for i, k := range keys {
					if k != uint64(10+i) {
						t.Fatalf("keys out of order: %v", keys)
					}
				}
				// Early stop.
				n := 0
				if err := tx.ScanRange(tbl, 0, 0, 99, nil, func(*storage.Version) bool {
					n++
					return n < 3
				}); err != nil {
					t.Fatal(err)
				}
				if n != 3 {
					t.Fatalf("early stop visited %d", n)
				}
				mustCommit(t, tx)
			})
		}
	}
}

func TestScanRangeUnordered(t *testing.T) {
	e, tbl := newTestEngine(t) // hash index
	tx := e.Begin(Optimistic, ReadCommitted)
	err := tx.ScanRange(tbl, 0, 0, 10, nil, func(*storage.Version) bool { return true })
	if !errors.Is(err, storage.ErrUnordered) {
		t.Fatalf("err = %v, want ErrUnordered", err)
	}
	tx.Abort()
}

// TestRangePhantomOptimisticAbort: an optimistic serializable range scan
// must fail validation when a concurrent transaction commits an insert
// inside the scanned range during the scanner's lifetime (Section 3.2's
// phantom rescan, generalized to ranges).
func TestRangePhantomOptimisticAbort(t *testing.T) {
	e, tbl := newOrderedTestEngine(t)
	for k := uint64(0); k < 30; k += 2 {
		e.LoadRow(tbl, testPayload(k, k))
	}

	t1 := e.Begin(Optimistic, Serializable)
	if got := collectRange(t, t1, tbl, 10, 20); len(got) != 6 {
		t.Fatalf("initial scan saw %v", got)
	}

	// A concurrent insert of a brand-new key (15) inside the range commits.
	t2 := e.Begin(Optimistic, ReadCommitted)
	if err := t2.Insert(tbl, testPayload(15, 999)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, t2)

	if err := t1.Commit(); !errors.Is(err, ErrValidation) {
		t.Fatalf("commit = %v, want ErrValidation (phantom)", err)
	}

	// Control: an insert outside the scanned range does not abort the scan.
	t3 := e.Begin(Optimistic, Serializable)
	_ = collectRange(t, t3, tbl, 10, 20)
	t4 := e.Begin(Optimistic, ReadCommitted)
	if err := t4.Insert(tbl, testPayload(55, 1)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, t4)
	mustCommit(t, t3)
}

// TestRangePhantomPessimisticBlocks: a pessimistic serializable range scan
// takes a range lock; a concurrent insert into the range may proceed eagerly
// but its commit must wait until the scanner completes (Section 4.2.2's
// bucket-lock protocol, predicate-shaped).
func TestRangePhantomPessimisticBlocks(t *testing.T) {
	e, tbl := newOrderedTestEngine(t)
	for k := uint64(0); k < 30; k += 2 {
		e.LoadRow(tbl, testPayload(k, k))
	}

	t1 := e.Begin(Pessimistic, Serializable)
	if got := collectRange(t, t1, tbl, 10, 20); len(got) != 6 {
		t.Fatalf("initial scan saw %v", got)
	}

	t2 := e.Begin(Pessimistic, ReadCommitted)
	if err := t2.Insert(tbl, testPayload(15, 999)); err != nil {
		t.Fatal(err)
	}

	committed := make(chan error, 1)
	go func() { committed <- t2.Commit() }()

	select {
	case err := <-committed:
		t.Fatalf("inserter committed (%v) while the range was locked", err)
	case <-time.After(50 * time.Millisecond):
		// Blocked, as required.
	}

	mustCommit(t, t1)
	select {
	case err := <-committed:
		if err != nil {
			t.Fatalf("inserter failed after scanner finished: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("inserter still blocked after the scanner committed")
	}

	// The phantom is now visible to new transactions.
	t3 := e.Begin(Pessimistic, ReadCommitted)
	if got := collectRange(t, t3, tbl, 10, 20); len(got) != 7 {
		t.Fatalf("after insert: %v", got)
	}
	mustCommit(t, t3)
}

// TestRangeReadStability: repeatable-read range scans stabilize every row
// read — optimistic scans validate, pessimistic scans read-lock — so a
// concurrent update of a scanned row either fails the scanner's validation
// (MV/O) or waits for its locks (MV/L).
func TestRangeReadStability(t *testing.T) {
	t.Run("MVO", func(t *testing.T) {
		e, tbl := newOrderedTestEngine(t)
		for k := uint64(0); k < 10; k++ {
			e.LoadRow(tbl, testPayload(k, k))
		}
		t1 := e.Begin(Optimistic, RepeatableRead)
		_ = collectRange(t, t1, tbl, 0, 9)
		t2 := e.Begin(Optimistic, ReadCommitted)
		if err := writeVal(t, t2, tbl, 5, 500); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, t2)
		if err := t1.Commit(); !errors.Is(err, ErrValidation) {
			t.Fatalf("commit = %v, want ErrValidation (read instability)", err)
		}
	})
	t.Run("MVL", func(t *testing.T) {
		e, tbl := newOrderedTestEngine(t)
		for k := uint64(0); k < 10; k++ {
			e.LoadRow(tbl, testPayload(k, k))
		}
		t1 := e.Begin(Pessimistic, RepeatableRead)
		_ = collectRange(t, t1, tbl, 0, 9) // read locks every latest version
		t2 := e.Begin(Pessimistic, ReadCommitted)
		if err := writeVal(t, t2, tbl, 5, 500); err != nil {
			t.Fatal(err) // eager update allowed; commit must wait
		}
		committed := make(chan error, 1)
		go func() { committed <- t2.Commit() }()
		select {
		case err := <-committed:
			t.Fatalf("updater committed (%v) under a read lock", err)
		case <-time.After(50 * time.Millisecond):
		}
		mustCommit(t, t1)
		if err := <-committed; err != nil {
			t.Fatalf("updater failed after reader finished: %v", err)
		}
	})
}

// TestOrderedRecycleStress hammers an ordered table with point updates,
// inserts of new keys, range scans and cooperative GC, under both schemes,
// with self-verifying payloads. Run with -race: it exercises skip-list
// publication, node-chain recycling and range-scan visibility concurrently.
func TestOrderedRecycleStress(t *testing.T) {
	const (
		baseRows = 64
		workers  = 8
		iters    = 2000
	)
	e := NewEngine(Config{GCEvery: 1, GCQuota: 128, DeadlockInterval: -1})
	defer e.Close()
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "hot",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Ordered: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < baseRows; k++ {
		e.LoadRow(tbl, stressRow(k, k))
	}

	var bad atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			for i := 0; i < iters; i++ {
				scheme := Optimistic
				if w%2 == 0 {
					scheme = Pessimistic
				}
				switch rng.Intn(4) {
				case 0: // serializable range scan
					tx := e.Begin(scheme, Serializable)
					lo := rng.Uint64() % baseRows
					err := tx.ScanRange(tbl, 0, lo, lo+8, nil, func(v *storage.Version) bool {
						if !stressRowOK(v.Payload) {
							bad.Add(1)
						}
						return true
					})
					if err != nil {
						tx.Abort()
						continue
					}
					_ = tx.Commit()
				case 1: // snapshot range scan on the read-only fast lane
					tx := e.BeginReadOnly()
					err := tx.ScanRange(tbl, 0, 0, baseRows+16, nil, func(v *storage.Version) bool {
						if !stressRowOK(v.Payload) {
							bad.Add(1)
						}
						return true
					})
					if err != nil {
						tx.Abort()
						continue
					}
					_ = tx.Commit()
				case 2: // point update (new version into an existing node)
					tx := e.Begin(scheme, ReadCommitted)
					k := rng.Uint64() % baseRows
					if _, err := tx.UpdateWhere(tbl, 0, k, nil, func(old []byte) []byte {
						return stressRow(k, rng.Uint64())
					}); err != nil {
						tx.Abort()
						continue
					}
					_ = tx.Commit()
				case 3: // insert+delete of a transient key (new skip node)
					tx := e.Begin(scheme, ReadCommitted)
					k := baseRows + rng.Uint64()%16
					if err := tx.Insert(tbl, stressRow(k, k)); err != nil {
						tx.Abort()
						continue
					}
					if err := tx.Commit(); err != nil {
						continue
					}
					tx = e.Begin(scheme, ReadCommitted)
					if _, err := tx.DeleteWhere(tbl, 0, k, nil); err != nil {
						tx.Abort()
						continue
					}
					_ = tx.Commit()
				}
			}
		}(w)
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d corrupted payloads observed", n)
	}
	// Survivors must still verify.
	tx := e.BeginReadOnly()
	err = tx.ScanRange(tbl, 0, 0, baseRows+16, nil, func(v *storage.Version) bool {
		if !stressRowOK(v.Payload) {
			t.Error("corrupt survivor")
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	stats := e.Stats()
	if stats.VersionsRecycled == 0 {
		t.Log("warning: no versions recycled during stress (pool not exercised)")
	}
}

// TestReaderPinOverflow: the self-sized striped pin table overflows into
// the registered fallback once every slot is pinned, and recovers when slots
// free up.
func TestReaderPinOverflow(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1})
	defer e.Close()
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Ordered: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.LoadRow(tbl, testPayload(1, 1))

	total := e.pins.Slots()
	if total < gc.DefaultPinSlots {
		t.Fatalf("pin table capacity %d below the documented floor %d", total, gc.DefaultPinSlots)
	}
	readers := make([]*Tx, 0, total+1)
	for i := 0; i < total; i++ {
		readers = append(readers, e.BeginReadOnly())
	}
	s := e.Stats()
	if s.ReadOnlyBegins != uint64(total) || s.PinOverflows != 0 {
		t.Fatalf("fast-lane begins = %d, overflows = %d; want %d, 0", s.ReadOnlyBegins, s.PinOverflows, total)
	}
	over := e.BeginReadOnly() // table full: registered fallback
	readers = append(readers, over)
	s = e.Stats()
	if s.ReadOnlyBegins != uint64(total) || s.PinOverflows != 1 {
		t.Fatalf("after overflow: begins = %d, overflows = %d; want %d, 1", s.ReadOnlyBegins, s.PinOverflows, total)
	}
	if got := e.PinTableOverflows(); got != 1 {
		t.Fatalf("PinTableOverflows = %d, want 1", got)
	}
	// The overflow reader still works, just registered.
	if v, ok := readVal(t, over, tbl, 1); !ok || v != 1 {
		t.Fatalf("overflow reader read %d,%v", v, ok)
	}
	for _, tx := range readers {
		mustCommit(t, tx)
	}
	// Slots freed: the fast lane is available again.
	r := e.BeginReadOnly()
	if got := e.Stats().ReadOnlyBegins; got != uint64(total)+1 {
		t.Fatalf("ReadOnlyBegins = %d, want %d", got, total+1)
	}
	mustCommit(t, r)
}
