package mv

// Speculative reads through the Preparing window (Sections 2.5 and 2.7),
// made deterministic by holding a transaction in its Preparing state with a
// blocking synchronous log sink.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// gateWriter blocks Write calls until released.
type gateWriter struct {
	mu       sync.Mutex
	cond     *sync.Cond
	released bool
}

func newGateWriter() *gateWriter {
	g := &gateWriter{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *gateWriter) Write(p []byte) (int, error) {
	g.mu.Lock()
	for !g.released {
		g.cond.Wait()
	}
	g.mu.Unlock()
	return len(p), nil
}

func (g *gateWriter) Release() {
	g.mu.Lock()
	g.released = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

func TestSpeculativeReadOfPreparingVersion(t *testing.T) {
	gate := newGateWriter()
	log := wal.Open(wal.Config{Sink: gate, Synchronous: true, BatchSize: 1})
	e := NewEngine(Config{DeadlockInterval: -1, Log: log})
	t.Cleanup(func() {
		gate.Release()
		e.Close()
	})
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Buckets: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.LoadRow(tbl, testPayload(1, 10))

	// The writer updates and commits; the synchronous log append blocks it
	// in the Preparing state.
	writer := e.Begin(Optimistic, ReadCommitted)
	if err := writeVal(t, writer, tbl, 1, 20); err != nil {
		t.Fatal(err)
	}
	writerDone := make(chan error, 1)
	go func() { writerDone <- writer.Commit() }()
	deadline := time.Now().Add(5 * time.Second)
	for writer.T.State() != txn.Preparing {
		if time.Now().After(deadline) {
			t.Fatal("writer never reached Preparing")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// A read-committed reader (logical read time = current > writer's end
	// timestamp) speculatively reads the new version and acquires a commit
	// dependency on the writer (Table 1, Preparing row). It also
	// speculatively ignores the old version (Table 2, Preparing row).
	reader := e.Begin(Optimistic, ReadCommitted)
	v, ok := readVal(t, reader, tbl, 1)
	if !ok || v != 20 {
		t.Fatalf("speculative read = %d,%v, want 20", v, ok)
	}
	if reader.T.CommitDepCount() == 0 {
		t.Fatal("no commit dependency registered for the speculative read")
	}

	// The reader's commit must wait for the writer.
	readerDone := make(chan error, 1)
	go func() { readerDone <- reader.Commit() }()
	select {
	case err := <-readerDone:
		t.Fatalf("reader committed before its dependency resolved: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	// Release the log: the writer commits, the dependency resolves, the
	// reader commits.
	gate.Release()
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	if err := <-readerDone; err != nil {
		t.Fatalf("reader: %v", err)
	}
}

func TestSpeculativeIgnoreOldVersion(t *testing.T) {
	// A snapshot reader whose begin predates the writer's end timestamp
	// must still see the OLD version while the writer prepares — with no
	// dependency, because the old version is visible whether or not the
	// writer commits (Table 2: TS > RT).
	gate := newGateWriter()
	log := wal.Open(wal.Config{Sink: gate, Synchronous: true, BatchSize: 1})
	e := NewEngine(Config{DeadlockInterval: -1, Log: log})
	t.Cleanup(func() {
		gate.Release()
		e.Close()
	})
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Buckets: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.LoadRow(tbl, testPayload(1, 10))

	snap := e.Begin(Optimistic, SnapshotIsolation) // begins before the writer's end

	writer := e.Begin(Optimistic, ReadCommitted)
	if err := writeVal(t, writer, tbl, 1, 20); err != nil {
		t.Fatal(err)
	}
	writerDone := make(chan error, 1)
	go func() { writerDone <- writer.Commit() }()
	deadline := time.Now().Add(5 * time.Second)
	for writer.T.State() != txn.Preparing {
		if time.Now().After(deadline) {
			t.Fatal("writer never reached Preparing")
		}
		time.Sleep(100 * time.Microsecond)
	}

	if v, ok := readVal(t, snap, tbl, 1); !ok || v != 10 {
		t.Fatalf("snapshot read during prepare = %d,%v, want 10", v, ok)
	}
	if snap.T.CommitDepCount() != 0 {
		t.Fatal("snapshot reader should not depend on the preparing writer")
	}
	if err := snap.Commit(); err != nil {
		t.Fatalf("snapshot commit: %v", err)
	}
	gate.Release()
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
}

func TestCascadingAbortThroughSpeculativeRead(t *testing.T) {
	// A reader that speculatively read a version of a transaction that then
	// aborts must abort too (Section 2.7: cascading aborts are possible).
	// Force the abort by failing validation: the writer is serializable and
	// its read gets invalidated while it is held in Preparing... simpler
	// and deterministic: use RequestAbort on the writer mid-prepare is not
	// possible (AbortNow is polled at wait points the writer has passed).
	// Instead, the reader speculates on a transaction blocked in its
	// *wait-for* phase and the deadlock detector kills it. Simplest fully
	// deterministic construction: writer blocked in synchronous log append
	// cannot abort anymore (it has passed validation), so speculate on a
	// validation-failing serializable writer instead, checking the reader's
	// AbortNow flag.
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	e.LoadRow(tbl, testPayload(2, 20))

	// Writer: serializable optimistic; reads key 2, updates key 1.
	writer := e.Begin(Optimistic, Serializable)
	if _, ok := readVal(t, writer, tbl, 2); !ok {
		t.Fatal("writer read failed")
	}
	if err := writeVal(t, writer, tbl, 1, 11); err != nil {
		t.Fatal(err)
	}
	// Invalidate the writer's read so its validation will fail.
	spoiler := e.Begin(Optimistic, ReadCommitted)
	if err := writeVal(t, spoiler, tbl, 2, 21); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, spoiler)

	// Sample the update eagerly with a speculative updater: another
	// transaction may update an uncommitted version once its creator has
	// completed normal processing. Here we only verify the cascade: commit
	// the writer (it fails validation and aborts) and check that a
	// dependent registered beforehand is told to abort.
	dep := e.Begin(Optimistic, ReadCommitted)
	if res := writer.T.RegisterDependent(dep.T); res != txn.DepAdded {
		t.Fatalf("RegisterDependent = %v", res)
	}
	if err := writer.Commit(); err != ErrValidation {
		t.Fatalf("writer commit = %v, want ErrValidation", err)
	}
	if !dep.T.AbortRequested() {
		t.Fatal("dependent not told to abort after cascade")
	}
	if err := dep.Commit(); err != ErrAborted {
		t.Fatalf("dependent commit = %v, want ErrAborted", err)
	}
	if e.Stats().CascadingAborts == 0 {
		t.Fatal("cascading abort not counted")
	}
}
