// Package mv implements the paper's multiversion storage engine with both
// concurrency control schemes: optimistic (MV/O, Section 3) and pessimistic
// (MV/L, Section 4). The two schemes are mutually compatible — optimistic
// and pessimistic transactions can run concurrently against the same engine
// (Section 4.5) — and all four isolation levels of Section 2 are supported.
package mv

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/deadlock"
	"repro/internal/gc"
	"repro/internal/iso"
	"repro/internal/storage"
	"repro/internal/ts"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Scheme selects the concurrency control method for a transaction.
type Scheme int

const (
	// Optimistic transactions validate their reads and scans at commit
	// (MV/O).
	Optimistic Scheme = iota
	// Pessimistic transactions take record and bucket locks (MV/L).
	Pessimistic
)

func (s Scheme) String() string {
	if s == Pessimistic {
		return "MV/L"
	}
	return "MV/O"
}

// Isolation is a transaction isolation level (Section 2), shared with the
// single-version engine through package iso.
type Isolation = iso.Level

const (
	// ReadCommitted reads the latest committed version (logical read time =
	// current time). No validation or read locks.
	ReadCommitted = iso.ReadCommitted
	// SnapshotIsolation reads as of the transaction's begin time. No
	// validation or locks.
	SnapshotIsolation = iso.SnapshotIsolation
	// RepeatableRead guarantees read stability but not phantom avoidance.
	RepeatableRead = iso.RepeatableRead
	// Serializable guarantees read stability and phantom avoidance.
	Serializable = iso.Serializable
)

// Config controls engine construction.
type Config struct {
	// Log, when non-nil, receives a redo record for every committing
	// transaction with writes.
	Log *wal.Log
	// DeadlockInterval is the wait-for deadlock detection period. Zero means
	// the default (2ms); negative disables the background detector (the
	// cooperative RunOnce path remains available).
	DeadlockInterval time.Duration
	// GCEvery runs a cooperative garbage collection round every N finished
	// transactions (default 64). Negative disables cooperative GC.
	GCEvery int
	// GCQuota caps versions examined per cooperative round (default 256).
	GCQuota int
	// DisableSpeculation turns off speculative reads and speculative ignores
	// (ablation): visibility outcomes that would require a commit dependency
	// abort instead.
	DisableSpeculation bool
	// DisableEagerUpdates turns off the eager-update optimization (ablation
	// of Section 4.2): updating a read-locked version or inserting into a
	// locked bucket aborts instead of installing a wait-for dependency.
	DisableEagerUpdates bool
}

// Stats aggregates engine-wide counters.
type Stats struct {
	Commits         uint64
	Aborts          uint64
	WriteConflicts  uint64
	ValidationFails uint64
	LockFailures    uint64
	DeadlockVictims uint64
	// CascadingAborts counts aborts forced on a transaction from outside:
	// failed commit dependencies and deadlock victimhood.
	CascadingAborts  uint64
	SpeculativeReads uint64
	VersionsRetired  uint64
	VersionsReclaims uint64
}

// Engine is a multiversion main-memory storage engine.
type Engine struct {
	cfg    Config
	oracle ts.Oracle
	txns   *txn.Table
	gc     *gc.Collector
	blt    *storage.BucketLockTable
	det    *deadlock.Detector

	tablesMu sync.RWMutex
	tables   map[string]*storage.Table

	sinceGC atomic.Int64

	commits          atomic.Uint64
	aborts           atomic.Uint64
	writeConflicts   atomic.Uint64
	validationFails  atomic.Uint64
	lockFailures     atomic.Uint64
	cascadingAborts  atomic.Uint64
	speculativeReads atomic.Uint64
}

// NewEngine constructs an engine. Call Close when done to stop background
// workers.
func NewEngine(cfg Config) *Engine {
	if cfg.GCEvery == 0 {
		cfg.GCEvery = 64
	}
	if cfg.GCQuota == 0 {
		cfg.GCQuota = 256
	}
	e := &Engine{
		cfg:    cfg,
		txns:   txn.NewTable(),
		blt:    storage.NewBucketLockTable(),
		tables: make(map[string]*storage.Table),
	}
	e.gc = gc.NewCollector(func() uint64 {
		return e.txns.OldestBegin(e.oracle.Current())
	})
	interval := cfg.DeadlockInterval
	if interval == 0 {
		interval = 2 * time.Millisecond
	}
	if interval > 0 {
		e.det = deadlock.NewDetector((*detectorSource)(e), interval)
		e.det.Start()
	}
	return e
}

// Close stops background workers and closes the log if one was attached.
func (e *Engine) Close() error {
	if e.det != nil {
		e.det.Stop()
	}
	if e.cfg.Log != nil {
		return e.cfg.Log.Close()
	}
	return nil
}

// CreateTable registers a new table.
func (e *Engine) CreateTable(spec storage.TableSpec) (*storage.Table, error) {
	t, err := storage.NewTable(spec)
	if err != nil {
		return nil, err
	}
	e.tablesMu.Lock()
	defer e.tablesMu.Unlock()
	e.tables[spec.Name] = t
	return t, nil
}

// Table returns a table by name.
func (e *Engine) Table(name string) (*storage.Table, bool) {
	e.tablesMu.RLock()
	defer e.tablesMu.RUnlock()
	t, ok := e.tables[name]
	return t, ok
}

// LoadRow inserts a committed row directly, bypassing transaction machinery.
// It is used for initial bulk loading (single-threaded).
func (e *Engine) LoadRow(t *storage.Table, payload []byte) {
	tstamp := e.oracle.Next()
	v := storage.NewVersion(payload, t.NumIndexes(), tstamp, infinityWord)
	t.Insert(v)
}

// Oracle exposes the timestamp oracle (tests and diagnostics).
func (e *Engine) Oracle() *ts.Oracle { return &e.oracle }

// TxnTable exposes the transaction table (tests and diagnostics).
func (e *Engine) TxnTable() *txn.Table { return e.txns }

// Collector exposes the garbage collector.
func (e *Engine) Collector() *gc.Collector { return e.gc }

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats {
	retired, reclaimed := e.gc.Stats()
	s := Stats{
		Commits:          e.commits.Load(),
		Aborts:           e.aborts.Load(),
		WriteConflicts:   e.writeConflicts.Load(),
		ValidationFails:  e.validationFails.Load(),
		LockFailures:     e.lockFailures.Load(),
		CascadingAborts:  e.cascadingAborts.Load(),
		SpeculativeReads: e.speculativeReads.Load(),
		VersionsRetired:  retired,
		VersionsReclaims: reclaimed,
	}
	if e.det != nil {
		s.DeadlockVictims = e.det.Victims()
	}
	return s
}

// Begin starts a transaction under the given scheme and isolation level.
func (e *Engine) Begin(scheme Scheme, iso Isolation) *Tx {
	id := e.oracle.Next()
	t := txn.New(id, id)
	e.txns.Register(t)
	return &Tx{e: e, T: t, scheme: scheme, iso: iso}
}

func (e *Engine) finishTx(tx *Tx) {
	if e.cfg.GCEvery > 0 && e.sinceGC.Add(1)%int64(e.cfg.GCEvery) == 0 {
		e.gc.Collect(e.cfg.GCQuota)
	}
}

// CollectGarbage runs a bounded garbage collection round and returns the
// number of versions reclaimed.
func (e *Engine) CollectGarbage(limit int) int { return e.gc.Collect(limit) }

// DetectDeadlocks runs one synchronous deadlock detection pass; it returns
// the number of victims aborted. Useful when the background detector is
// disabled.
func (e *Engine) DetectDeadlocks() int {
	src := (*detectorSource)(e)
	d := deadlock.NewDetector(src, time.Hour)
	return d.RunOnce()
}
