// Package mv implements the paper's multiversion storage engine with both
// concurrency control schemes: optimistic (MV/O, Section 3) and pessimistic
// (MV/L, Section 4). The two schemes are mutually compatible — optimistic
// and pessimistic transactions can run concurrently against the same engine
// (Section 4.5) — and all four isolation levels of Section 2 are supported.
package mv

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/deadlock"
	"repro/internal/gc"
	"repro/internal/iso"
	"repro/internal/storage"
	"repro/internal/ts"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Scheme selects the concurrency control method for a transaction.
type Scheme int

const (
	// Optimistic transactions validate their reads and scans at commit
	// (MV/O).
	Optimistic Scheme = iota
	// Pessimistic transactions take record and bucket locks (MV/L).
	Pessimistic
)

func (s Scheme) String() string {
	if s == Pessimistic {
		return "MV/L"
	}
	return "MV/O"
}

// Isolation is a transaction isolation level (Section 2), shared with the
// single-version engine through package iso.
type Isolation = iso.Level

const (
	// ReadCommitted reads the latest committed version (logical read time =
	// current time). No validation or read locks.
	ReadCommitted = iso.ReadCommitted
	// SnapshotIsolation reads as of the transaction's begin time. No
	// validation or locks.
	SnapshotIsolation = iso.SnapshotIsolation
	// RepeatableRead guarantees read stability but not phantom avoidance.
	RepeatableRead = iso.RepeatableRead
	// Serializable guarantees read stability and phantom avoidance.
	Serializable = iso.Serializable
)

// Config controls engine construction.
type Config struct {
	// Log, when non-nil, receives a redo record for every committing
	// transaction with writes.
	Log *wal.Log
	// DeadlockInterval is the wait-for deadlock detection period. Zero means
	// the default (2ms); negative disables the background detector (the
	// cooperative RunOnce path remains available).
	DeadlockInterval time.Duration
	// GCEvery runs a cooperative garbage collection round every N finished
	// transactions (default 64). Negative disables cooperative GC.
	GCEvery int
	// GCQuota caps versions examined per cooperative round (default 256).
	GCQuota int
	// DisableSpeculation turns off speculative reads and speculative ignores
	// (ablation): visibility outcomes that would require a commit dependency
	// abort instead.
	DisableSpeculation bool
	// DisableEagerUpdates turns off the eager-update optimization (ablation
	// of Section 4.2): updating a read-locked version or inserting into a
	// locked bucket aborts instead of installing a wait-for dependency.
	DisableEagerUpdates bool
}

// Stats aggregates engine-wide counters.
type Stats struct {
	Commits         uint64
	Aborts          uint64
	WriteConflicts  uint64
	ValidationFails uint64
	LockFailures    uint64
	DeadlockVictims uint64
	// CascadingAborts counts aborts forced on a transaction from outside:
	// failed commit dependencies and deadlock victimhood.
	CascadingAborts  uint64
	SpeculativeReads uint64
	VersionsRetired  uint64
	VersionsReclaims uint64
	// TxRecycled counts Begins served from the transaction-object pool.
	TxRecycled uint64
	// VersionsRecycled counts version allocations served from the version
	// pool (recycled by the garbage collector after quiescence).
	VersionsRecycled uint64
	// ReadOnlyBegins counts transactions started on the registration-free
	// read-only fast lane (BeginReadOnly with a pin slot available).
	ReadOnlyBegins uint64
	// PinOverflows counts fast-lane attempts that found every reader-pin
	// slot occupied and fell back to a registered transaction.
	PinOverflows uint64
	// FastCommits counts commits that skipped the end-timestamp draw: the
	// transaction wrote nothing, held no locks, and needed no validation.
	FastCommits uint64
	// IndexNodesSwept counts ordered-index skip-list nodes unlinked from
	// their towers after their last version was garbage collected.
	IndexNodesSwept uint64
	// IndexNodesFreed counts swept nodes that passed quiescence and were
	// reset into the node reuse pool.
	IndexNodesFreed uint64
}

// Engine is a multiversion main-memory storage engine.
type Engine struct {
	cfg    Config
	oracle ts.Oracle
	// funnel combines concurrent oracle draws (transaction IDs, end
	// timestamps, batch blocks) into shared fetch-and-adds; see ts.Funnel.
	funnel *ts.Funnel
	txns   *txn.Table
	gc     *gc.Collector
	blt    *storage.BucketLockTable
	det    *deadlock.Detector

	// pins publishes the read times of transactions the transaction table
	// cannot see — read-only fast-lane readers, lazily-registered batch
	// transactions, and the deadlock detector's iteration epoch — so the GC
	// watermark never passes them. See gc.ReaderPins for the protocol.
	pins gc.ReaderPins

	// nodeEpoch guards skip-list node reuse against the one class of readers
	// the watermark cannot see: the garbage collector's own index traversals
	// (Collect's unlinks run outside any transaction). Collectors pin it for
	// the duration of a round; node freeing requires the watermark to pass
	// the unlink stamp AND the epoch to be clear. Transactions need no pin —
	// every cursor or bucket pointer they hold is covered by their begin
	// timestamp (registered) or reader pin (fast lane), which bounds the
	// watermark. See docs/indexes.md, "Node reclamation".
	nodeEpoch gc.Epoch

	tablesMu sync.RWMutex
	tables   map[string]*storage.Table

	sinceGC atomic.Int64

	// vpool recycles version objects. Versions enter it only through the
	// garbage collector's quiescence-gated free list (see gc.SetRecycler).
	vpool storage.VersionPool

	// txPool recycles Tx (and embedded txn.Txn) objects. Finished
	// transactions park in the graveyard first and move to the pool only
	// once the GC watermark passes their removal timestamp, so no concurrent
	// visibility check can still hold the txn.Txn pointer when it is Reset.
	txPool sync.Pool
	gravMu sync.Mutex
	// graveyard is a FIFO of parked transactions: entries [gravHead:] are
	// live, drained in stamp order as the watermark advances.
	graveyard  []deadTx
	gravHead   int
	txRecycled atomic.Uint64

	roBegins     atomic.Uint64
	pinOverflows atomic.Uint64
	fastCommits  atomic.Uint64
	nodesSwept   atomic.Uint64
	nodesFreed   atomic.Uint64

	commits          atomic.Uint64
	aborts           atomic.Uint64
	writeConflicts   atomic.Uint64
	validationFails  atomic.Uint64
	lockFailures     atomic.Uint64
	cascadingAborts  atomic.Uint64
	speculativeReads atomic.Uint64

	// degraded latches after a log append fails for any reason other than a
	// clean shutdown: the engine can no longer promise durability, so new
	// writes fail fast with ErrDegraded while reads keep serving.
	degraded     atomic.Bool
	degradeMu    sync.Mutex
	degradeCause error
}

// deadTx is a finished transaction awaiting quiescence before reuse.
type deadTx struct {
	tx *Tx
	// stamp is the timestamp counter at the moment the transaction left the
	// transaction table; once the watermark (oldest active begin) exceeds
	// it, no transaction that could have looked the object up remains.
	stamp uint64
}

// graveyardCap bounds the parked-transaction list. On overflow (cooperative
// GC disabled, or the watermark lagging far behind under heavy
// oversubscription) the incoming object is simply not parked — the runtime
// garbage collector frees it instead. Dropping is O(1) and always safe; it
// only costs pool efficiency. The cap is sized for throughput × worst-case
// watermark lag (a scheduling quantum on an oversubscribed box).
const graveyardCap = 32768

// NewEngine constructs an engine. Call Close when done to stop background
// workers.
func NewEngine(cfg Config) *Engine {
	if cfg.GCEvery == 0 {
		cfg.GCEvery = 64
	}
	if cfg.GCQuota == 0 {
		cfg.GCQuota = 256
	}
	e := &Engine{
		cfg:    cfg,
		txns:   txn.NewTable(),
		blt:    storage.NewBucketLockTable(),
		tables: make(map[string]*storage.Table),
	}
	e.funnel = ts.NewFunnel(&e.oracle)
	e.pins.Init(0) // the pin table self-sizes from runtime.NumCPU
	e.nodeEpoch.Init(0)
	e.gc = gc.NewCollector(func() uint64 {
		// Load the clock FIRST, then sweep the table minima and the reader
		// pins: gc.ReaderPins relies on this order to guarantee the
		// watermark never passes an unregistered reader's snapshot.
		cur := e.oracle.Current()
		return e.pins.Min(e.txns.OldestBegin(cur))
	})
	e.gc.SetRecycler(e.oracle.Current, e.vpool.Put)
	interval := cfg.DeadlockInterval
	if interval == 0 {
		interval = 2 * time.Millisecond
	}
	if interval > 0 {
		e.det = deadlock.NewDetector((*detectorSource)(e), interval)
		e.det.Start()
	}
	return e
}

// degrade latches the engine into read-only mode after a log failure. A
// clean log shutdown (wal.ErrClosed) is not a disk fault and does not
// degrade: Close-then-write is a caller bug, not a durability event.
func (e *Engine) degrade(err error) {
	if err == nil || errors.Is(err, wal.ErrClosed) {
		return
	}
	e.degradeMu.Lock()
	if e.degradeCause == nil {
		e.degradeCause = err
	}
	e.degradeMu.Unlock()
	e.degraded.Store(true)
}

// Degraded returns the latched log failure that flipped the engine
// read-only, or nil while the engine is healthy. While degraded, mutations
// fail fast with ErrDegraded; reads and read-only snapshots keep serving.
func (e *Engine) Degraded() error {
	if !e.degraded.Load() {
		return nil
	}
	e.degradeMu.Lock()
	defer e.degradeMu.Unlock()
	return e.degradeCause
}

// Close stops background workers and closes the log if one was attached.
func (e *Engine) Close() error {
	if e.det != nil {
		e.det.Stop()
	}
	if e.cfg.Log != nil {
		return e.cfg.Log.Close()
	}
	return nil
}

// CreateTable registers a new table.
func (e *Engine) CreateTable(spec storage.TableSpec) (*storage.Table, error) {
	t, err := storage.NewTable(spec)
	if err != nil {
		return nil, err
	}
	e.tablesMu.Lock()
	defer e.tablesMu.Unlock()
	e.tables[spec.Name] = t
	return t, nil
}

// Table returns a table by name.
func (e *Engine) Table(name string) (*storage.Table, bool) {
	e.tablesMu.RLock()
	defer e.tablesMu.RUnlock()
	t, ok := e.tables[name]
	return t, ok
}

// LoadRow inserts a committed row directly, bypassing transaction machinery.
// It is used for initial bulk loading (single-threaded).
func (e *Engine) LoadRow(t *storage.Table, payload []byte) {
	tstamp := e.oracle.Next()
	v := e.vpool.GetIn(t.Arena(), payload, t.NumIndexes(), tstamp, infinityWord)
	t.Insert(v)
}

// Oracle exposes the timestamp oracle (tests and diagnostics).
func (e *Engine) Oracle() *ts.Oracle { return &e.oracle }

// FunnelStats returns the oracle combining funnel's counters: every
// transaction-ID, end-timestamp, and batch-block draw flows through the
// funnel, so Physical is the engine's total oracle fetch-and-add count
// (excluding bulk loads and recovery).
func (e *Engine) FunnelStats() ts.FunnelStats { return e.funnel.Stats() }

// PinTableOverflows returns how many reader-pin acquisitions found the
// striped pin table full (each fell back to a watermark-visible slow path:
// registration for read-only begins, plain Begins for batches).
func (e *Engine) PinTableOverflows() uint64 { return e.pins.Overflows() }

// TxnTable exposes the transaction table (tests and diagnostics).
func (e *Engine) TxnTable() *txn.Table { return e.txns }

// Collector exposes the garbage collector.
func (e *Engine) Collector() *gc.Collector { return e.gc }

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats {
	retired, reclaimed := e.gc.Stats()
	s := Stats{
		Commits:          e.commits.Load(),
		Aborts:           e.aborts.Load(),
		WriteConflicts:   e.writeConflicts.Load(),
		ValidationFails:  e.validationFails.Load(),
		LockFailures:     e.lockFailures.Load(),
		CascadingAborts:  e.cascadingAborts.Load(),
		SpeculativeReads: e.speculativeReads.Load(),
		VersionsRetired:  retired,
		VersionsReclaims: reclaimed,
		TxRecycled:       e.txRecycled.Load(),
		VersionsRecycled: e.vpool.Reuses(),
		ReadOnlyBegins:   e.roBegins.Load(),
		PinOverflows:     e.pinOverflows.Load(),
		FastCommits:      e.fastCommits.Load(),
		IndexNodesSwept:  e.nodesSwept.Load(),
		IndexNodesFreed:  e.nodesFreed.Load(),
	}
	if e.det != nil {
		s.DeadlockVictims = e.det.Victims()
	}
	return s
}

// Begin starts a transaction under the given scheme and isolation level.
// Transaction objects are pooled: the returned Tx must not be used after
// Commit or Abort returns (both report ErrTxDone on accidental reuse before
// the object is recycled, but a recycled object belongs to a new
// transaction).
//
//mvlint:noalloc
func (e *Engine) Begin(scheme Scheme, iso Isolation) *Tx {
	id := e.funnel.Next()
	tx := e.getTx(id, id, scheme, iso)
	tx.registered = true
	e.txns.Register(tx.T)
	return tx
}

// getTx prepares a transaction object (pooled when possible) with the given
// identity; the caller decides how (and whether) it is registered.
func (e *Engine) getTx(id, begin uint64, scheme Scheme, iso Isolation) *Tx {
	var tx *Tx
	if pooled, ok := e.txPool.Get().(*Tx); ok {
		tx = pooled
		tx.T.Reset(id, begin)
		e.txRecycled.Add(1)
	} else {
		tx = &Tx{T: txn.New(id, begin)}
	}
	tx.e = e
	tx.scheme = scheme
	tx.iso = iso
	tx.done = false
	tx.tookLocks = false
	tx.readOnly = false
	tx.registered = false
	tx.pin = -1
	return tx
}

// BeginReadOnly starts a registration-free read-only snapshot transaction:
// it reads the oracle without incrementing it and never enters the
// transaction table, so the only shared state it touches is one reader-pin
// slot. Combined with the end-timestamp elision in Commit, a read-only
// transaction performs zero shared-counter increments.
//
// The returned Tx reads a consistent snapshot (snapshot isolation, which for
// a read-only transaction equals serializability) and rejects every mutation
// with ErrReadOnlyTx. When all pin slots are occupied the engine falls back
// to a registered snapshot transaction with identical semantics (the
// fallback draws one timestamp).
//
//mvlint:noalloc
func (e *Engine) BeginReadOnly() *Tx {
	// Publish a provisional pin BEFORE choosing the snapshot time; see
	// gc.ReaderPins for why this ordering makes the watermark safe.
	pin := e.oracle.Current()
	slot := e.pins.Acquire(pin)
	if slot < 0 {
		e.pinOverflows.Add(1)
		tx := e.Begin(Optimistic, SnapshotIsolation)
		tx.readOnly = true
		return tx
	}
	rt := e.oracle.Current() // >= pin; the pin covers everything we can read
	tx := e.getTx(txn.Anonymous, rt, Optimistic, SnapshotIsolation)
	tx.readOnly = true
	tx.pin = slot
	e.roBegins.Add(1)
	return tx
}

// finishTx runs after a transaction has fully committed or aborted and left
// the transaction table: it drops the transaction's references, parks the
// object for recycling, and triggers cooperative garbage collection.
func (e *Engine) finishTx(tx *Tx) {
	clear(tx.readSet)
	tx.readSet = tx.readSet[:0]
	clear(tx.scanSet)
	tx.scanSet = tx.scanSet[:0]
	clear(tx.writeSet)
	tx.writeSet = tx.writeSet[:0]
	clear(tx.bucketLocks)
	tx.bucketLocks = tx.bucketLocks[:0]
	clear(tx.rangeLocks)
	tx.rangeLocks = tx.rangeLocks[:0]
	clear(tx.walRec.Ops)
	tx.walRec.Ops = tx.walRec.Ops[:0]
	tx.holders = tx.holders[:0]

	if tx.pin >= 0 {
		e.pins.Release(tx.pin)
		tx.pin = -1
	}
	if !tx.registered {
		// The transaction never entered the table and never published its ID
		// (unregistered transactions cannot write, lock buckets, or register
		// dependencies), so no stale pointer to it can exist: it is reusable
		// immediately, no quiescence wait needed.
		e.txPool.Put(tx)
	} else {
		stamp := e.oracle.Current()
		e.gravMu.Lock()
		if len(e.graveyard)-e.gravHead < graveyardCap {
			e.graveyard = append(e.graveyard, deadTx{tx, stamp})
		}
		e.gravMu.Unlock()
	}

	if e.cfg.GCEvery > 0 && e.sinceGC.Add(1)%int64(e.cfg.GCEvery) == 0 {
		e.collect(e.cfg.GCQuota)
	}
}

// collect runs one garbage collection round, sweeps dead ordered-index
// nodes, and then recycles parked transaction objects and quiesced nodes.
// The round is epoch-pinned: Collect's index unlinks (and the sweep's
// predecessor searches) traverse skip lists outside any transaction, so the
// watermark cannot vouch for them — the pin keeps concurrent rounds from
// resetting a node this round can still reach.
func (e *Engine) collect(limit int) int {
	slot := e.nodeEpoch.Enter()
	n := e.gc.Collect(limit)
	e.sweepIndexNodes(limit)
	e.nodeEpoch.Exit(slot)
	wm := e.gc.Watermark()
	e.drainGraveyard(wm)
	e.freeIndexNodes(wm, limit)
	return n
}

// forEachOrderedIndex invokes fn on every ordered index of every table.
func (e *Engine) forEachOrderedIndex(fn func(ix *storage.OrderedIndex)) {
	e.tablesMu.RLock()
	defer e.tablesMu.RUnlock()
	for _, t := range e.tables {
		for ord := 0; ord < t.NumIndexes(); ord++ {
			if oix, ok := t.Index(ord).(*storage.OrderedIndex); ok {
				fn(oix)
			}
		}
	}
}

// sweepIndexNodes unlinks marked skip-list nodes, stamping them with the
// clock read after the unlinks: any transaction that can still reach a node
// loaded its pointer before the unlink, so its begin timestamp was drawn
// before the stamp and bounds the watermark below it until the transaction
// finishes.
func (e *Engine) sweepIndexNodes(limit int) {
	e.forEachOrderedIndex(func(ix *storage.OrderedIndex) {
		if n := ix.SweepNodes(e.oracle.Current, limit); n > 0 {
			e.nodesSwept.Add(uint64(n))
		}
	})
}

// freeIndexNodes resets swept nodes into the reuse pool once (a) the
// watermark passed their unlink stamp — no transaction that could hold the
// node remains — and (b) the collector epoch is clear — no concurrent GC
// round is mid-traversal. The epoch check runs per entry inside the
// reclamation lock, ordering it after the unlink stores (see gc.Epoch).
func (e *Engine) freeIndexNodes(wm uint64, limit int) {
	if wm == 0 {
		return // no GC round has published a watermark yet
	}
	e.forEachOrderedIndex(func(ix *storage.OrderedIndex) {
		// The epoch check is evaluated lazily once per drain (Clear scans
		// the whole pin table): the first call runs inside FreeDead under
		// the reclamation lock, after the drain observed its entries, which
		// is the ordering the safety argument needs — and it covers every
		// entry of the same drain, since all their unlinks happen-before
		// the queue read.
		clear := -1
		quiesced := func(stamp uint64) bool {
			if stamp >= wm {
				return false
			}
			if clear < 0 {
				if e.nodeEpoch.Clear() {
					clear = 1
				} else {
					clear = 0
				}
			}
			return clear == 1
		}
		if n := ix.FreeNodes(quiesced, limit); n > 0 {
			e.nodesFreed.Add(uint64(n))
		}
	})
}

// drainGraveyard moves parked transactions whose removal stamp is below the
// watermark into the reuse pool: every transaction that could have looked
// them up in the transaction table has itself terminated.
func (e *Engine) drainGraveyard(wm uint64) {
	if wm == 0 {
		return // no GC round has published a watermark yet
	}
	e.gravMu.Lock()
	h := e.gravHead
	for h < len(e.graveyard) && e.graveyard[h].stamp < wm {
		e.txPool.Put(e.graveyard[h].tx)
		e.graveyard[h] = deadTx{}
		h++
	}
	e.gravHead = h
	if h == len(e.graveyard) {
		e.graveyard = e.graveyard[:0]
		e.gravHead = 0
	} else if h > 1024 && h > len(e.graveyard)/2 {
		// Compact occasionally so the backing array doesn't creep.
		n := copy(e.graveyard, e.graveyard[h:])
		clear(e.graveyard[n:])
		e.graveyard = e.graveyard[:n]
		e.gravHead = 0
	}
	e.gravMu.Unlock()
}

// CollectGarbage runs a bounded garbage collection round and returns the
// number of versions reclaimed.
func (e *Engine) CollectGarbage(limit int) int { return e.collect(limit) }

// DetectDeadlocks runs one synchronous deadlock detection pass; it returns
// the number of victims aborted. Useful when the background detector is
// disabled.
func (e *Engine) DetectDeadlocks() int {
	src := (*detectorSource)(e)
	d := deadlock.NewDetector(src, time.Hour)
	return d.RunOnce()
}
