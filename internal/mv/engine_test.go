package mv

import (
	"encoding/binary"
	"testing"

	"repro/internal/storage"
)

// testPayload builds a payload with a uint64 key followed by a uint64 value.
func testPayload(key, val uint64) []byte {
	p := make([]byte, 16)
	binary.LittleEndian.PutUint64(p, key)
	binary.LittleEndian.PutUint64(p[8:], val)
	return p
}

func payloadKey(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }
func payloadVal(p []byte) uint64 { return binary.LittleEndian.Uint64(p[8:]) }

func newTestEngine(t *testing.T) (*Engine, *storage.Table) {
	t.Helper()
	e := NewEngine(Config{DeadlockInterval: -1}) // cooperative detection in tests
	tbl, err := e.CreateTable(storage.TableSpec{
		Name: "t",
		Indexes: []storage.IndexSpec{
			{Name: "pk", Key: payloadKey, Buckets: 1 << 10},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, tbl
}

func mustCommit(t *testing.T, tx *Tx) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// readVal looks up key and returns its value; found=false if invisible.
func readVal(t *testing.T, tx *Tx, tbl *storage.Table, key uint64) (uint64, bool) {
	t.Helper()
	v, ok, err := tx.Lookup(tbl, 0, key, nil)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if !ok {
		return 0, false
	}
	return payloadVal(v.Payload), true
}

func writeVal(t *testing.T, tx *Tx, tbl *storage.Table, key, val uint64) error {
	t.Helper()
	_, err := tx.UpdateWhere(tbl, 0, key, nil, func([]byte) []byte {
		return testPayload(key, val)
	})
	return err
}

func TestInsertCommitRead(t *testing.T) {
	for _, scheme := range []Scheme{Optimistic, Pessimistic} {
		t.Run(scheme.String(), func(t *testing.T) {
			e, tbl := newTestEngine(t)
			tx := e.Begin(scheme, Serializable)
			if err := tx.Insert(tbl, testPayload(1, 100)); err != nil {
				t.Fatal(err)
			}
			// Visible to self before commit.
			if v, ok := readVal(t, tx, tbl, 1); !ok || v != 100 {
				t.Fatalf("self-read = %d,%v", v, ok)
			}
			// Invisible to others before commit.
			other := e.Begin(scheme, ReadCommitted)
			if _, ok := readVal(t, other, tbl, 1); ok {
				t.Fatal("uncommitted insert visible to other txn")
			}
			mustCommit(t, other)
			mustCommit(t, tx)
			// Visible after commit.
			after := e.Begin(scheme, ReadCommitted)
			if v, ok := readVal(t, after, tbl, 1); !ok || v != 100 {
				t.Fatalf("post-commit read = %d,%v", v, ok)
			}
			mustCommit(t, after)
		})
	}
}

func TestUpdateCreatesNewVersion(t *testing.T) {
	for _, scheme := range []Scheme{Optimistic, Pessimistic} {
		t.Run(scheme.String(), func(t *testing.T) {
			e, tbl := newTestEngine(t)
			e.LoadRow(tbl, testPayload(1, 10))

			// Snapshot reader begins before the update.
			snap := e.Begin(scheme, SnapshotIsolation)
			if v, ok := readVal(t, snap, tbl, 1); !ok || v != 10 {
				t.Fatalf("snapshot read before update = %d,%v", v, ok)
			}

			up := e.Begin(scheme, ReadCommitted)
			if err := writeVal(t, up, tbl, 1, 20); err != nil {
				t.Fatal(err)
			}
			mustCommit(t, up)

			// The old snapshot still sees 10 (version isolation)...
			if v, ok := readVal(t, snap, tbl, 1); !ok || v != 10 {
				t.Fatalf("snapshot read after update = %d,%v, want 10", v, ok)
			}
			mustCommit(t, snap)
			// ...while a fresh reader sees 20.
			fresh := e.Begin(scheme, ReadCommitted)
			if v, ok := readVal(t, fresh, tbl, 1); !ok || v != 20 {
				t.Fatalf("fresh read = %d,%v, want 20", v, ok)
			}
			mustCommit(t, fresh)
		})
	}
}

func TestDeleteHidesRecord(t *testing.T) {
	for _, scheme := range []Scheme{Optimistic, Pessimistic} {
		t.Run(scheme.String(), func(t *testing.T) {
			e, tbl := newTestEngine(t)
			e.LoadRow(tbl, testPayload(5, 55))
			tx := e.Begin(scheme, ReadCommitted)
			n, err := tx.DeleteWhere(tbl, 0, 5, nil)
			if err != nil || n != 1 {
				t.Fatalf("delete: n=%d err=%v", n, err)
			}
			// Deleted row invisible to self.
			if _, ok := readVal(t, tx, tbl, 5); ok {
				t.Fatal("deleted row visible to deleter")
			}
			mustCommit(t, tx)
			after := e.Begin(scheme, ReadCommitted)
			if _, ok := readVal(t, after, tbl, 5); ok {
				t.Fatal("deleted row visible after commit")
			}
			mustCommit(t, after)
		})
	}
}

func TestAbortRollsBack(t *testing.T) {
	for _, scheme := range []Scheme{Optimistic, Pessimistic} {
		t.Run(scheme.String(), func(t *testing.T) {
			e, tbl := newTestEngine(t)
			e.LoadRow(tbl, testPayload(1, 10))
			tx := e.Begin(scheme, ReadCommitted)
			if err := writeVal(t, tx, tbl, 1, 99); err != nil {
				t.Fatal(err)
			}
			if err := tx.Insert(tbl, testPayload(2, 22)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Abort(); err != nil {
				t.Fatal(err)
			}
			after := e.Begin(scheme, ReadCommitted)
			if v, ok := readVal(t, after, tbl, 1); !ok || v != 10 {
				t.Fatalf("post-abort read = %d,%v, want 10", v, ok)
			}
			if _, ok := readVal(t, after, tbl, 2); ok {
				t.Fatal("aborted insert visible")
			}
			mustCommit(t, after)
		})
	}
}

func TestWriteWriteConflictFirstWriterWins(t *testing.T) {
	for _, scheme := range []Scheme{Optimistic, Pessimistic} {
		t.Run(scheme.String(), func(t *testing.T) {
			e, tbl := newTestEngine(t)
			e.LoadRow(tbl, testPayload(1, 10))
			t1 := e.Begin(scheme, ReadCommitted)
			t2 := e.Begin(scheme, ReadCommitted)
			if err := writeVal(t, t1, tbl, 1, 11); err != nil {
				t.Fatal(err)
			}
			// Second writer must get a write-write conflict.
			if err := writeVal(t, t2, tbl, 1, 12); err != ErrWriteConflict {
				t.Fatalf("second write err = %v, want ErrWriteConflict", err)
			}
			if err := t2.Abort(); err != nil {
				t.Fatal(err)
			}
			mustCommit(t, t1)
			after := e.Begin(scheme, ReadCommitted)
			if v, _ := readVal(t, after, tbl, 1); v != 11 {
				t.Fatalf("value = %d, want 11", v)
			}
			mustCommit(t, after)
		})
	}
}

func TestUpdateAfterAbortedWriterSteals(t *testing.T) {
	for _, scheme := range []Scheme{Optimistic, Pessimistic} {
		t.Run(scheme.String(), func(t *testing.T) {
			e, tbl := newTestEngine(t)
			e.LoadRow(tbl, testPayload(1, 10))
			t1 := e.Begin(scheme, ReadCommitted)
			if err := writeVal(t, t1, tbl, 1, 11); err != nil {
				t.Fatal(err)
			}
			if err := t1.Abort(); err != nil {
				t.Fatal(err)
			}
			// After t1's abort the version is updatable again.
			t2 := e.Begin(scheme, ReadCommitted)
			if err := writeVal(t, t2, tbl, 1, 12); err != nil {
				t.Fatalf("update after abort: %v", err)
			}
			mustCommit(t, t2)
			after := e.Begin(scheme, ReadCommitted)
			if v, _ := readVal(t, after, tbl, 1); v != 12 {
				t.Fatalf("value = %d, want 12", v)
			}
			mustCommit(t, after)
		})
	}
}

func TestReadCommittedSeesLatest(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	rc := e.Begin(Optimistic, ReadCommitted)
	if v, _ := readVal(t, rc, tbl, 1); v != 10 {
		t.Fatalf("first read = %d", v)
	}
	up := e.Begin(Optimistic, ReadCommitted)
	if err := writeVal(t, up, tbl, 1, 20); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, up)
	// Read committed re-reads at current time: sees the new value.
	if v, _ := readVal(t, rc, tbl, 1); v != 20 {
		t.Fatalf("second read = %d, want 20 (read committed)", v)
	}
	mustCommit(t, rc)
}

func TestSnapshotIsolationStableReads(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	si := e.Begin(Optimistic, SnapshotIsolation)
	if v, _ := readVal(t, si, tbl, 1); v != 10 {
		t.Fatalf("first read = %d", v)
	}
	up := e.Begin(Optimistic, ReadCommitted)
	if err := writeVal(t, up, tbl, 1, 20); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, up)
	if v, _ := readVal(t, si, tbl, 1); v != 10 {
		t.Fatalf("second read = %d, want 10 (snapshot)", v)
	}
	mustCommit(t, si)
}

func TestOptimisticRepeatableReadValidationFails(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	rr := e.Begin(Optimistic, RepeatableRead)
	if v, _ := readVal(t, rr, tbl, 1); v != 10 {
		t.Fatalf("read = %d", v)
	}
	// Concurrent committed update invalidates rr's read.
	up := e.Begin(Optimistic, ReadCommitted)
	if err := writeVal(t, up, tbl, 1, 20); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, up)
	if err := rr.Commit(); err != ErrValidation {
		t.Fatalf("commit err = %v, want ErrValidation", err)
	}
}

func TestOptimisticSerializablePhantomDetected(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	ser := e.Begin(Optimistic, Serializable)
	// Scan for key 2: nothing there yet.
	if _, ok := readVal(t, ser, tbl, 2); ok {
		t.Fatal("unexpected row")
	}
	// Another transaction inserts a matching row and commits.
	ins := e.Begin(Optimistic, ReadCommitted)
	if err := ins.Insert(tbl, testPayload(2, 22)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, ins)
	// The rescan at validation finds the phantom.
	if err := ser.Commit(); err != ErrValidation {
		t.Fatalf("commit err = %v, want ErrValidation (phantom)", err)
	}
}

func TestPessimisticReadLockBlocksWriterCommit(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	// Reader takes a read lock.
	reader := e.Begin(Pessimistic, RepeatableRead)
	if v, _ := readVal(t, reader, tbl, 1); v != 10 {
		t.Fatal("read failed")
	}
	// Writer eagerly updates the read-locked version...
	writer := e.Begin(Pessimistic, ReadCommitted)
	if err := writeVal(t, writer, tbl, 1, 20); err != nil {
		t.Fatalf("eager update: %v", err)
	}
	// ...but cannot precommit until the reader releases. Run the commit in
	// a goroutine and verify it is blocked.
	committed := make(chan error, 1)
	go func() { committed <- writer.Commit() }()
	select {
	case err := <-committed:
		t.Fatalf("writer committed while read lock held: %v", err)
	default:
	}
	// Reader finishes; writer must now commit.
	mustCommit(t, reader)
	if err := <-committed; err != nil {
		t.Fatalf("writer commit after release: %v", err)
	}
	after := e.Begin(Pessimistic, ReadCommitted)
	if v, _ := readVal(t, after, tbl, 1); v != 20 {
		t.Fatalf("value = %d, want 20", v)
	}
	mustCommit(t, after)
}

func TestPessimisticSerializablePreventsPhantom(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	ser := e.Begin(Pessimistic, Serializable)
	// Scan key 2's bucket: takes a bucket lock.
	if _, ok := readVal(t, ser, tbl, 2); ok {
		t.Fatal("unexpected row")
	}
	// A concurrent insert into the locked bucket succeeds eagerly but the
	// inserter cannot commit until ser completes.
	ins := e.Begin(Pessimistic, ReadCommitted)
	if err := ins.Insert(tbl, testPayload(2, 22)); err != nil {
		t.Fatal(err)
	}
	committed := make(chan error, 1)
	go func() { committed <- ins.Commit() }()
	select {
	case err := <-committed:
		t.Fatalf("inserter committed under bucket lock: %v", err)
	default:
	}
	// ser still must not see the phantom, then commits, releasing ins.
	if _, ok := readVal(t, ser, tbl, 2); ok {
		t.Fatal("phantom visible to serializable scan")
	}
	mustCommit(t, ser)
	if err := <-committed; err != nil {
		t.Fatalf("inserter commit: %v", err)
	}
}

func TestMixedSchemesShareEngine(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	// Pessimistic reader locks; optimistic writer must honor the lock
	// (peaceful coexistence, Section 4.5).
	reader := e.Begin(Pessimistic, RepeatableRead)
	if v, _ := readVal(t, reader, tbl, 1); v != 10 {
		t.Fatal("read failed")
	}
	writer := e.Begin(Optimistic, ReadCommitted)
	if err := writeVal(t, writer, tbl, 1, 20); err != nil {
		t.Fatalf("optimistic eager update: %v", err)
	}
	committed := make(chan error, 1)
	go func() { committed <- writer.Commit() }()
	select {
	case err := <-committed:
		t.Fatalf("optimistic writer ignored read lock: %v", err)
	default:
	}
	mustCommit(t, reader)
	if err := <-committed; err != nil {
		t.Fatalf("optimistic writer commit: %v", err)
	}
}

func TestGarbageCollectionReclaims(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 0))
	for i := 1; i <= 50; i++ {
		tx := e.Begin(Optimistic, ReadCommitted)
		if err := writeVal(t, tx, tbl, 1, uint64(i)); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	// With no active transactions, everything but the latest version is
	// garbage.
	total := 0
	for i := 0; i < 10; i++ {
		total += e.CollectGarbage(0)
	}
	if total != 50 {
		t.Fatalf("reclaimed %d versions, want 50", total)
	}
	// The chain should now contain exactly one version.
	n := 0
	ix := tbl.Index(0)
	for v := ix.Lookup(1).Head(); v != nil; v = v.Next(0) {
		if payloadKey(v.Payload) == 1 {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("chain has %d versions, want 1", n)
	}
	after := e.Begin(Optimistic, ReadCommitted)
	if v, _ := readVal(t, after, tbl, 1); v != 50 {
		t.Fatalf("value after GC = %d, want 50", v)
	}
	mustCommit(t, after)
}

func TestGCBlockedByActiveSnapshot(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 0))
	snap := e.Begin(Optimistic, SnapshotIsolation)
	if v, _ := readVal(t, snap, tbl, 1); v != 0 {
		t.Fatal("snapshot read failed")
	}
	up := e.Begin(Optimistic, ReadCommitted)
	if err := writeVal(t, up, tbl, 1, 1); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, up)
	// The old version is still visible to snap: GC must not reclaim it.
	if n := e.CollectGarbage(0); n != 0 {
		t.Fatalf("GC reclaimed %d versions while snapshot active", n)
	}
	if v, _ := readVal(t, snap, tbl, 1); v != 0 {
		t.Fatal("snapshot read changed")
	}
	mustCommit(t, snap)
	if n := e.CollectGarbage(0); n != 1 {
		t.Fatalf("GC reclaimed %d versions after snapshot ended, want 1", n)
	}
}

func TestSpeculativeReadCommitDependency(t *testing.T) {
	// A reader that encounters a Preparing writer's version speculatively
	// reads it and commits only after the writer commits.
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))

	writer := e.Begin(Optimistic, ReadCommitted)
	if err := writeVal(t, writer, tbl, 1, 20); err != nil {
		t.Fatal(err)
	}
	// Drive the writer manually into Preparing: we emulate the window by
	// using a second engine-level transaction... simplest: commit in a
	// goroutine while a reader races. This is inherently timing dependent,
	// so instead verify the dependency machinery directly elsewhere; here
	// just check end-to-end that racing readers never see torn state.
	done := make(chan error, 1)
	go func() { done <- writer.Commit() }()
	for i := 0; i < 100; i++ {
		r := e.Begin(Optimistic, ReadCommitted)
		v, ok := readVal(t, r, tbl, 1)
		if ok && v != 10 && v != 20 {
			t.Fatalf("torn read: %d", v)
		}
		if err := r.Commit(); err != nil && err != ErrAborted {
			t.Fatalf("reader commit: %v", err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	tx := e.Begin(Optimistic, ReadCommitted)
	if err := writeVal(t, tx, tbl, 1, 20); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	tx2 := e.Begin(Optimistic, ReadCommitted)
	tx2.Abort()
	s := e.Stats()
	if s.Commits != 1 || s.Aborts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
