package mv

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
)

// churnEngine is an engine tuned for reclamation tests: GC after every
// transaction, background detector off.
func churnEngine(t *testing.T) (*Engine, *storage.Table) {
	t.Helper()
	e := NewEngine(Config{DeadlockInterval: -1, GCEvery: 1, GCQuota: 1 << 20})
	tbl, err := e.CreateTable(storage.TableSpec{
		Name: "t",
		Indexes: []storage.IndexSpec{
			{Name: "pk", Key: payloadKey, Ordered: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, tbl
}

func insertKey(t *testing.T, e *Engine, tbl *storage.Table, k uint64) {
	t.Helper()
	tx := e.Begin(Pessimistic, ReadCommitted)
	if err := tx.Insert(tbl, testPayload(k, k)); err != nil {
		t.Fatalf("insert %d: %v", k, err)
	}
	mustCommit(t, tx)
}

func deleteKey(t *testing.T, e *Engine, tbl *storage.Table, k uint64) {
	t.Helper()
	tx := e.Begin(Pessimistic, ReadCommitted)
	if _, err := tx.DeleteWhere(tbl, 0, k, nil); err != nil {
		t.Fatalf("delete %d: %v", k, err)
	}
	mustCommit(t, tx)
}

// TestOrderedNodeChurnBounded is the acceptance churn test: a delete-heavy,
// ever-shifting key domain must leave the ordered index holding O(live keys)
// skip-list nodes, not one node per key ever inserted.
func TestOrderedNodeChurnBounded(t *testing.T) {
	e, tbl := churnEngine(t)
	const (
		window = 100
		total  = 4000
	)
	for i := 0; i < total; i++ {
		insertKey(t, e, tbl, uint64(i))
		if i >= window {
			deleteKey(t, e, tbl, uint64(i-window))
		}
	}
	// Drain: dummy transactions advance the watermark past the last deletes
	// while GC rounds mark, sweep, and free the nodes.
	for i := 0; i < 8; i++ {
		tx := e.Begin(Optimistic, SnapshotIsolation)
		mustCommit(t, tx)
		e.CollectGarbage(1 << 20)
	}

	ix := tbl.Index(0).(*storage.OrderedIndex)
	if keys := ix.Keys(); keys > window+16 {
		t.Fatalf("Keys() = %d after churn, want ~%d (live window): nodes are leaking", keys, window)
	}
	marked, dead, pooled, created, reused, freed := ix.NodeStats()
	t.Logf("keys=%d marked=%d dead=%d pooled=%d created=%d reused=%d freed=%d",
		ix.Keys(), marked, dead, pooled, created, reused, freed)
	if created > total/2 {
		t.Fatalf("allocated %d nodes for %d inserts over a %d-key window: reuse is not working", created, total, window)
	}
	if reused == 0 || freed == 0 {
		t.Fatalf("reused=%d freed=%d: reclamation never completed", reused, freed)
	}
	// Physical retention (dead + pooled) must also be bounded.
	if dead+pooled > total/2 {
		t.Fatalf("dead=%d pooled=%d nodes retained", dead, pooled)
	}
	st := e.Stats()
	if st.IndexNodesSwept == 0 || st.IndexNodesFreed == 0 {
		t.Fatalf("engine stats: swept=%d freed=%d", st.IndexNodesSwept, st.IndexNodesFreed)
	}

	// Deleted keys are gone; live window reads correctly across schemes.
	tx := e.Begin(Optimistic, SnapshotIsolation)
	keys := collectRange(t, tx, tbl, 0, total)
	if len(keys) != window {
		t.Fatalf("scan found %d keys, want %d", len(keys), window)
	}
	for i, k := range keys {
		if k != uint64(total-window+i) {
			t.Fatalf("scan keys = %v..., want the last %d", keys[:min(8, len(keys))], window)
		}
	}
	mustCommit(t, tx)
}

// TestOrderedNodeRevival checks GetOrCreate revival of a concurrently
// deleted key: after a key's node is marked (and even swept), re-inserting
// the key must produce a fresh, reachable chain.
func TestOrderedNodeRevival(t *testing.T) {
	e, tbl := churnEngine(t)
	ix := tbl.Index(0).(*storage.OrderedIndex)
	for round := 0; round < 50; round++ {
		k := uint64(7) // same key dies and revives every round
		insertKey(t, e, tbl, k)
		deleteKey(t, e, tbl, k)
		// A couple of GC rounds: mark, then sweep (free needs quiescence).
		e.CollectGarbage(1 << 20)
		e.CollectGarbage(1 << 20)
		// Revive: the key must be insertable and readable again.
		insertKey(t, e, tbl, k)
		tx := e.Begin(Optimistic, SnapshotIsolation)
		if keys := collectRange(t, tx, tbl, k, k); len(keys) != 1 {
			t.Fatalf("round %d: revived key reads %v, want [7]", round, keys)
		}
		mustCommit(t, tx)
		deleteKey(t, e, tbl, k)
	}
	if ix.Keys() != 0 {
		// The final delete may not have been collected yet; drain and recheck.
		for i := 0; i < 6; i++ {
			tx := e.Begin(Optimistic, SnapshotIsolation)
			mustCommit(t, tx)
			e.CollectGarbage(1 << 20)
		}
	}
	if keys := ix.Keys(); keys != 0 {
		t.Fatalf("Keys() = %d after final delete, want 0", keys)
	}
}

// TestScanRangeReclaimChurnRace interleaves range cursors with concurrent
// key deletion, reclamation, and revival; -race checks the sweep/free
// publication protocol, and the assertions check cursor correctness
// (ascending, in-range keys only).
func TestScanRangeReclaimChurnRace(t *testing.T) {
	for _, scheme := range []Scheme{Optimistic, Pessimistic} {
		t.Run(scheme.String(), func(t *testing.T) {
			e := NewEngine(Config{DeadlockInterval: -1, GCEvery: 4, GCQuota: 1 << 16})
			defer e.Close()
			tbl, err := e.CreateTable(storage.TableSpec{
				Name:    "t",
				Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Ordered: true}},
			})
			if err != nil {
				t.Fatal(err)
			}
			const (
				stripes = 4    // writer-private key stripes
				domain  = 1024 // keys per stripe cycle
				iters   = 1500
			)
			var fail atomic.Bool
			var wg sync.WaitGroup
			// Writers: each owns keys k with k%stripes == w; insert then
			// delete, cycling the domain (constant revival of node keys).
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters && !fail.Load(); i++ {
						k := uint64((i%domain)*stripes + w)
						tx := e.Begin(scheme, ReadCommitted)
						if err := tx.Insert(tbl, testPayload(k, k)); err != nil {
							tx.Abort()
							continue
						}
						if tx.Commit() != nil {
							continue
						}
						tx = e.Begin(scheme, ReadCommitted)
						if _, err := tx.DeleteWhere(tbl, 0, k, nil); err != nil {
							tx.Abort()
							continue
						}
						tx.Commit()
					}
				}(w)
			}
			// Scanners: snapshot transactions (registered and read-only
			// fast-lane) walking the whole domain; keys must ascend and stay
			// in range.
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					lo, hi := uint64(0), uint64(domain*stripes)
					for i := 0; i < iters/4 && !fail.Load(); i++ {
						var tx *Tx
						if r == 0 {
							tx = e.Begin(Optimistic, SnapshotIsolation)
						} else {
							tx = e.BeginReadOnly()
						}
						prev := int64(-1)
						err := tx.ScanRange(tbl, 0, lo, hi, nil, func(v *storage.Version) bool {
							k := payloadKey(v.Payload)
							if k > hi || int64(k) <= prev {
								t.Errorf("scan yielded key %d after %d (hi %d)", k, prev, hi)
								fail.Store(true)
								return false
							}
							prev = int64(k)
							return true
						})
						if err != nil && !errors.Is(err, ErrAborted) {
							t.Errorf("scan: %v", err)
							fail.Store(true)
						}
						tx.Commit()
					}
				}(r)
			}
			wg.Wait()
		})
	}
}

// TestInsertDepsFailureDoomsTx: since Insert links the new version before
// consulting scan locks, a failed lock check must doom the transaction — a
// caller that ignores the error and commits anyway must get ErrAborted, not
// a durable row the API reported as failed.
func TestInsertDepsFailureDoomsTx(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1, DisableEagerUpdates: true})
	t.Cleanup(func() { e.Close() })
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Ordered: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A serializable pessimistic scan of an empty range holds a range lock.
	scanner := e.Begin(Pessimistic, Serializable)
	if keys := collectRange(t, scanner, tbl, 0, 100); len(keys) != 0 {
		t.Fatalf("unexpected rows: %v", keys)
	}
	// With eager updates disabled, inserting into the locked range fails —
	// after the version was linked, so the transaction must be doomed.
	ins := e.Begin(Pessimistic, ReadCommitted)
	if err := ins.Insert(tbl, testPayload(5, 5)); err != ErrWriteConflict {
		t.Fatalf("insert into locked range: err = %v, want ErrWriteConflict", err)
	}
	if err := ins.Commit(); err != ErrAborted {
		t.Fatalf("commit after failed insert: err = %v, want ErrAborted", err)
	}
	mustCommit(t, scanner)
	// The failed insert must not be visible.
	tx := e.Begin(Optimistic, SnapshotIsolation)
	if keys := collectRange(t, tx, tbl, 0, 100); len(keys) != 0 {
		t.Fatalf("failed insert became visible: %v", keys)
	}
	mustCommit(t, tx)
}

// TestRangeLockPublicationRace is the regression test for the range-lock
// publication/phantom window: inserters must never miss a just-acquired
// range lock (RangeLockTable.Acquire publishes the active counter inside
// the critical section) AND serializable scanners must never miss an
// already-linked insert (Insert links before consulting scan locks). The
// invariant: a writer inserts or deletes a two-row pair atomically, so a
// serializable MV/L scan must always see an even number of pair rows.
func TestRangeLockPublicationRace(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1, GCEvery: 8, GCQuota: 1 << 16})
	defer e.Close()
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Ordered: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		pairs = 4
		iters = 800
	)
	var fail atomic.Bool
	var wg sync.WaitGroup
	// Pair writers: writer p owns keys {2p, 2p+1}; each iteration inserts
	// both in one transaction, then deletes both in one transaction.
	for p := 0; p < pairs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			k0, k1 := uint64(2*p), uint64(2*p+1)
			for i := 0; i < iters && !fail.Load(); i++ {
				tx := e.Begin(Pessimistic, ReadCommitted)
				if tx.Insert(tbl, testPayload(k0, 1)) != nil || tx.Insert(tbl, testPayload(k1, 1)) != nil {
					tx.Abort()
					continue
				}
				if tx.Commit() != nil {
					continue
				}
				for !fail.Load() {
					tx = e.Begin(Pessimistic, ReadCommitted)
					n0, err0 := tx.DeleteWhere(tbl, 0, k0, nil)
					if err0 != nil {
						tx.Abort()
						continue
					}
					n1, err1 := tx.DeleteWhere(tbl, 0, k1, nil)
					if err1 != nil {
						tx.Abort()
						continue
					}
					if n0 != 1 || n1 != 1 {
						t.Errorf("pair %d: deleted %d+%d rows, want 1+1", p, n0, n1)
						fail.Store(true)
					}
					if tx.Commit() == nil {
						break
					}
				}
			}
		}(p)
	}
	// Serializable pessimistic scanners: range-lock the whole domain and
	// count each pair's rows; an odd pair is a phantom.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counts := make([]int, pairs)
			for i := 0; i < iters && !fail.Load(); i++ {
				for j := range counts {
					counts[j] = 0
				}
				tx := e.Begin(Pessimistic, Serializable)
				err := tx.ScanRange(tbl, 0, 0, 2*pairs-1, nil, func(v *storage.Version) bool {
					counts[payloadKey(v.Payload)/2]++
					return true
				})
				if err != nil {
					tx.Abort()
					continue
				}
				if tx.Commit() != nil {
					continue
				}
				for j, c := range counts {
					if c%2 != 0 {
						t.Errorf("pair %d: scan saw %d rows (phantom: insert/delete is pairwise-atomic)", j, c)
						fail.Store(true)
					}
				}
			}
		}()
	}
	wg.Wait()
}
