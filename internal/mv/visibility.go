package mv

import (
	"runtime"

	"repro/internal/field"
	"repro/internal/storage"
	"repro/internal/txn"
)

// infinityWord is the End word of a latest version with no locks.
var infinityWord = field.FromTS(field.Infinity)

// visOutcome is the result of a visibility test. When dep is non-nil the
// outcome is speculative: it holds only if dep commits, so the caller must
// register a commit dependency before relying on it (Section 2.7).
type visOutcome struct {
	visible bool
	dep     *txn.Txn
}

// checkVisibility decides whether version v is visible to transaction self
// at logical read time rt, implementing the case analyses of Tables 1 and 2.
// It never blocks: when a Begin or End word holds the ID of a transaction in
// flux, the outcome is speculative (dep is set) or the word is reread.
//
// self may be a reader that is absent from the transaction table (a
// read-only fast-lane transaction, ID txn.Anonymous): real IDs start at 1,
// so the own-write comparisons below are trivially false for it and every
// other case is resolved purely through the writer's table entry.
//
//mvlint:noalloc
func (e *Engine) checkVisibility(self *txn.Txn, v *storage.Version, rt uint64) visOutcome {
	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt%64 == 0 {
			// The owner is between finalizing the word and leaving the
			// transaction table; give it a chance to finish.
			runtime.Gosched()
		}

		bw := v.Begin()
		var beginTS uint64
		var dep *txn.Txn

		if field.IsTS(bw) {
			beginTS = field.TS(bw)
		} else {
			tbID := field.TxID(bw)
			if tbID == self.ID() {
				// Table 1, Active & TB = T: our own new version is visible
				// only if it is our latest — End is infinity, possibly with
				// read locks (a lock word with no writer). If we updated or
				// deleted it again, the End word holds our ID and the
				// version is invisible to us.
				ew := v.End()
				if field.IsTS(ew) {
					return visOutcome{visible: field.TS(ew) == field.Infinity}
				}
				return visOutcome{visible: !field.HasWriter(ew)}
			}
			tb, ok := e.txns.Lookup(tbID)
			if !ok {
				// Terminated or not found: TB finalized the word; reread.
				continue
			}
			st := tb.State()
			tstamp := tb.End()
			if tb.ID() != tbID {
				// The object was recycled for a new transaction, so TB has
				// terminated and finalized the word; reread.
				continue
			}
			switch st {
			case txn.Active:
				// Uncommitted version of another transaction: invisible.
				return visOutcome{}
			case txn.Preparing:
				// V's begin timestamp will be TB's end timestamp if TB
				// commits. Test with it; a true outcome is a speculative
				// read requiring a commit dependency on TB.
				if tstamp == 0 {
					continue // end timestamp not yet published; reread
				}
				beginTS = tstamp
				dep = tb
			case txn.Committed:
				// Committed but Begin not yet finalized: use TB's end
				// timestamp; no dependency needed.
				if tstamp == 0 {
					continue
				}
				beginTS = tstamp
			case txn.Aborted:
				// Garbage version.
				return visOutcome{}
			default: // Terminated
				continue
			}
		}

		if rt < beginTS {
			// Begins after the read time: invisible. No dependency: the
			// speculative-read rule only applies when the test is true.
			return visOutcome{}
		}

		// The valid time begins at or before rt; now check the End word
		// (Table 2).
		ew := v.End()
		if field.IsTS(ew) {
			return visOutcome{visible: rt < field.TS(ew), dep: depIf(rt < field.TS(ew), dep)}
		}
		// Lock word. With no write lock the version is the latest: its end
		// is infinity regardless of read locks.
		if !field.HasWriter(ew) {
			return visOutcome{visible: true, dep: dep}
		}
		teID := field.Writer(ew)
		if teID == self.ID() {
			// We updated or deleted this version ourselves: the old version
			// is invisible to us (we see the new one).
			return visOutcome{}
		}
		te, ok := e.txns.Lookup(teID)
		if !ok {
			continue // TE finalized the word; reread
		}
		teState := te.State()
		teEnd := te.End()
		if te.ID() != teID {
			continue // object recycled: TE terminated; reread the word
		}
		switch teState {
		case txn.Active:
			// Another transaction's uncommitted update: the old version is
			// still the visible one.
			return visOutcome{visible: true, dep: dep}
		case txn.Preparing:
			tstamp := teEnd
			if tstamp == 0 {
				continue
			}
			if tstamp > rt {
				// Even if TE commits, V remains visible at rt; if TE aborts
				// any later updater gets a larger end timestamp. Visible
				// either way — no dependency on TE.
				return visOutcome{visible: true, dep: dep}
			}
			// TS < RT: if TE commits V is invisible, if TE aborts it is
			// visible. Speculatively ignore V with a commit dependency on
			// TE.
			return visOutcome{visible: false, dep: te}
		case txn.Committed:
			tstamp := teEnd
			if tstamp == 0 {
				continue
			}
			return visOutcome{visible: rt < tstamp, dep: depIf(rt < tstamp, dep)}
		case txn.Aborted:
			// Table 2: V is visible. Any transaction that updates V after
			// TE's abort acquires an end timestamp after our read time, so a
			// racing overwrite cannot make V invisible at rt.
			return visOutcome{visible: true, dep: dep}
		default: // Terminated
			continue
		}
	}
}

func depIf(visible bool, dep *txn.Txn) *txn.Txn {
	if visible {
		return dep
	}
	return nil
}

// isVisible runs the visibility test and registers any required commit
// dependency. If the dependency target already resolved, the test is rerun
// against its final state. The error is non-nil when the transaction must
// abort (speculation disabled, or a dependency cascade).
//
//mvlint:noalloc
func (tx *Tx) isVisible(v *storage.Version, rt uint64) (bool, error) {
	for {
		out := tx.e.checkVisibility(tx.T, v, rt)
		if out.dep == nil {
			return out.visible, nil
		}
		if tx.e.cfg.DisableSpeculation {
			// Ablation: without speculation the transaction cannot proceed
			// past an unresolved writer.
			return false, ErrSpeculationDisabled
		}
		if tx.readOnly && !tx.registered {
			// An anonymous reader cannot take a commit dependency: resolution
			// would look it up in the transaction table. The window is tiny —
			// dep is mid-Preparing, and it can never wait on us (we hold no
			// locks and receive no dependencies) — so wait it out and rerun
			// the test against the final state.
			runtime.Gosched()
			continue
		}
		// A lazily-begun transaction must be in the table before the target
		// records our ID as a dependent.
		tx.ensureRegistered()
		switch out.dep.RegisterDependent(tx.T) {
		case txn.DepAdded:
			tx.e.speculativeReads.Add(1)
			return out.visible, nil
		case txn.DepCommitted:
			// Already committed: the speculative outcome is now definite.
			return out.visible, nil
		case txn.DepAborted:
			// The target aborted; the visibility outcome flips or the
			// version is garbage. Re-run against the final state.
			continue
		}
	}
}
