package mv

// TestFigure1Scenario replays the paper's Figure 1: transaction 75 transfers
// $20 from Larry's account to John's. While the transaction is active, its
// ID sits in the End fields of the old versions (as a write lock) and in the
// Begin fields of the new versions; after it commits with end timestamp 100,
// postprocessing replaces both with 100 (the red values in the figure).

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/field"
	"repro/internal/storage"
)

func accountRow(name string, amount uint64) []byte {
	p := make([]byte, 16)
	copy(p, name)
	binary.LittleEndian.PutUint64(p[8:], amount)
	return p
}

func accountName(p []byte) string {
	return string(bytes.TrimRight(p[:8], "\x00"))
}

func accountAmount(p []byte) uint64 { return binary.LittleEndian.Uint64(p[8:]) }

// nameKey hashes on the first letter, like the figure's toy hash function.
func nameKey(p []byte) uint64 { return uint64(p[0]) }

func TestFigure1Scenario(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1})
	t.Cleanup(func() { e.Close() })
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "accounts",
		Indexes: []storage.IndexSpec{{Name: "name", Key: nameKey, Buckets: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Figure 1's committed state: (John, 110) and (Larry, 170) are the
	// latest versions; Jane has (Jane, 150).
	e.LoadRow(tbl, accountRow("John", 110))
	e.LoadRow(tbl, accountRow("Jane", 150))
	e.LoadRow(tbl, accountRow("Larry", 170))

	// Transaction 75 transfers $20 from Larry to John.
	tx75 := e.Begin(Optimistic, Serializable)
	johnOld, ok, err := tx75.Lookup(tbl, 0, nameKey([]byte("J")), func(p []byte) bool {
		return accountName(p) == "John"
	})
	if err != nil || !ok {
		t.Fatalf("John lookup: ok=%v err=%v", ok, err)
	}
	larryOld, ok, err := tx75.Lookup(tbl, 0, nameKey([]byte("L")), func(p []byte) bool {
		return accountName(p) == "Larry"
	})
	if err != nil || !ok {
		t.Fatalf("Larry lookup: ok=%v err=%v", ok, err)
	}
	if err := tx75.Update(tbl, johnOld, accountRow("John", 130)); err != nil {
		t.Fatal(err)
	}
	if err := tx75.Update(tbl, larryOld, accountRow("Larry", 150)); err != nil {
		t.Fatal(err)
	}

	// Mid-flight, exactly as in the figure: the old versions' End fields
	// hold transaction 75's ID (a write lock identifying the updater)...
	for _, old := range []*storage.Version{johnOld, larryOld} {
		w := old.End()
		if !field.IsLock(w) || field.Writer(w) != tx75.T.ID() {
			t.Fatalf("old version End = %x, want lock word with tx75's ID", w)
		}
	}
	// ...and the new versions' Begin fields hold its ID too. Find the new
	// John version in bucket J.
	var johnNew *storage.Version
	for v := tbl.Index(0).Lookup(nameKey([]byte("J"))).Head(); v != nil; v = v.Next(0) {
		if accountName(v.Payload) == "John" && accountAmount(v.Payload) == 130 {
			johnNew = v
		}
	}
	if johnNew == nil {
		t.Fatal("new John version not linked into bucket J")
	}
	if bw := johnNew.Begin(); field.IsTS(bw) || field.TxID(bw) != tx75.T.ID() {
		t.Fatalf("new version Begin = %x, want tx75's ID", johnNew.Begin())
	}
	if ew := johnNew.End(); !field.IsTS(ew) || field.TS(ew) != field.Infinity {
		t.Fatalf("new version End = %x, want infinity", johnNew.End())
	}

	// Jane's version is untouched.
	jane, ok, err := tx75.Lookup(tbl, 0, nameKey([]byte("J")), func(p []byte) bool {
		return accountName(p) == "Jane"
	})
	if err != nil || !ok || accountAmount(jane.Payload) != 150 {
		t.Fatal("Jane's version disturbed")
	}

	// A concurrent reader still sees the old balances (the transfer is
	// uncommitted).
	reader := e.Begin(Optimistic, ReadCommitted)
	j, _, _ := reader.Lookup(tbl, 0, nameKey([]byte("J")), func(p []byte) bool {
		return accountName(p) == "John"
	})
	if accountAmount(j.Payload) != 110 {
		t.Fatalf("concurrent reader sees %d, want 110", accountAmount(j.Payload))
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}

	// Commit: transaction 75 gets its end timestamp and postprocessing
	// propagates it into the Begin and End fields (the figure's red 100s).
	if err := tx75.Commit(); err != nil {
		t.Fatal(err)
	}
	endTS := tx75.T.End()
	if bw := johnNew.Begin(); !field.IsTS(bw) || field.TS(bw) != endTS {
		t.Fatalf("new version Begin = %x, want timestamp %d", johnNew.Begin(), endTS)
	}
	for _, old := range []*storage.Version{johnOld, larryOld} {
		if ew := old.End(); !field.IsTS(ew) || field.TS(ew) != endTS {
			t.Fatalf("old version End = %x, want timestamp %d", old.End(), endTS)
		}
	}

	// The money moved.
	after := e.Begin(Optimistic, ReadCommitted)
	j2, _, _ := after.Lookup(tbl, 0, nameKey([]byte("J")), func(p []byte) bool {
		return accountName(p) == "John"
	})
	l2, _, _ := after.Lookup(tbl, 0, nameKey([]byte("L")), func(p []byte) bool {
		return accountName(p) == "Larry"
	})
	if accountAmount(j2.Payload) != 130 || accountAmount(l2.Payload) != 150 {
		t.Fatalf("post-commit balances John=%d Larry=%d, want 130/150",
			accountAmount(j2.Payload), accountAmount(l2.Payload))
	}
	if err := after.Commit(); err != nil {
		t.Fatal(err)
	}
}
