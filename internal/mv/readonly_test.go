package mv

// Tests for the registration-free read-only fast lane: zero oracle
// increments, no transaction-table entry, write rejection, reader-pin
// lifecycle, and — under -race with aggressive recycling — snapshot
// consistency while writers commit, abort, and recycle underneath.

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/field"
	"repro/internal/storage"
	"repro/internal/txn"
)

func roTable(t *testing.T, e *Engine, rows uint64) *storage.Table {
	t.Helper()
	tbl, err := e.CreateTable(storage.TableSpec{
		Name: "t",
		Indexes: []storage.IndexSpec{
			{Name: "pk", Key: func(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }, Buckets: int(rows)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < rows; k++ {
		e.LoadRow(tbl, stressRow(k, k))
	}
	return tbl
}

func TestReadOnlyZeroIncrementsAndNoRegistration(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1})
	defer e.Close()
	tbl := roTable(t, e, 16)

	before := e.Oracle().Current()
	for i := 0; i < 100; i++ {
		tx := e.BeginReadOnly()
		if !tx.ReadOnly() {
			t.Fatal("BeginReadOnly returned a non-read-only tx")
		}
		if tx.T.ID() != txn.Anonymous {
			t.Fatalf("fast-lane tx has ID %d, want anonymous", tx.T.ID())
		}
		if n := e.TxnTable().Len(); n != 0 {
			t.Fatalf("read-only tx registered: table has %d entries", n)
		}
		v, ok, err := tx.Lookup(tbl, 0, uint64(i)%16, nil)
		if err != nil || !ok {
			t.Fatalf("lookup: ok=%v err=%v", ok, err)
		}
		if !stressRowOK(v.Payload) {
			t.Fatal("corrupt payload")
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if after := e.Oracle().Current(); after != before {
		t.Fatalf("read-only txns moved the shared counter: %d -> %d", before, after)
	}
	s := e.Stats()
	if s.ReadOnlyBegins != 100 {
		t.Fatalf("ReadOnlyBegins = %d, want 100", s.ReadOnlyBegins)
	}
	if s.FastCommits != 100 {
		t.Fatalf("FastCommits = %d, want 100", s.FastCommits)
	}
	if s.Commits != 100 {
		t.Fatalf("Commits = %d, want 100", s.Commits)
	}
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1})
	defer e.Close()
	tbl := roTable(t, e, 4)

	tx := e.BeginReadOnly()
	if err := tx.Insert(tbl, stressRow(99, 99)); err != ErrReadOnlyTx {
		t.Fatalf("Insert = %v, want ErrReadOnlyTx", err)
	}
	v, _, err := tx.Lookup(tbl, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(tbl, v, stressRow(1, 2)); err != ErrReadOnlyTx {
		t.Fatalf("Update = %v, want ErrReadOnlyTx", err)
	}
	if err := tx.Delete(tbl, v); err != ErrReadOnlyTx {
		t.Fatalf("Delete = %v, want ErrReadOnlyTx", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != ErrTxDone {
		t.Fatalf("second Commit = %v, want ErrTxDone", err)
	}
}

// TestReadOnlySnapshotIgnoresLaterCommits pins the snapshot semantics: a
// fast-lane reader must not observe writes committed after its begin.
func TestReadOnlySnapshotIgnoresLaterCommits(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1})
	defer e.Close()
	tbl := roTable(t, e, 4)

	ro := e.BeginReadOnly()

	// Commit an update after the reader began.
	w := e.Begin(Optimistic, ReadCommitted)
	v, _, err := w.Lookup(tbl, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Update(tbl, v, stressRow(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	got, ok, err := ro.Lookup(tbl, 0, 1, nil)
	if err != nil || !ok {
		t.Fatalf("reader lookup: ok=%v err=%v", ok, err)
	}
	if val := binary.LittleEndian.Uint64(got.Payload[8:]); val != 1 {
		t.Fatalf("reader saw post-snapshot value %d, want 1", val)
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}

	// A fresh reader sees the new value.
	ro2 := e.BeginReadOnly()
	got, _, err = ro2.Lookup(tbl, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if val := binary.LittleEndian.Uint64(got.Payload[8:]); val != 100 {
		t.Fatalf("fresh reader saw %d, want 100", val)
	}
	if err := ro2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestVisibilityReaderAbsentFromTable unit-tests checkVisibility for a
// reader with no transaction-table entry (the paper's case analyses assume
// the reader is registered; the fast lane is not).
func TestVisibilityReaderAbsentFromTable(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1})
	defer e.Close()
	anon := txn.New(txn.Anonymous, 0)

	// Committed version [10, 20): visible only inside the interval.
	v := storage.NewVersion([]byte("x"), 1, field.FromTS(10), field.FromTS(20))
	for rt, want := range map[uint64]bool{9: false, 10: true, 19: true, 20: false} {
		out := e.checkVisibility(anon, v, rt)
		if out.visible != want || out.dep != nil {
			t.Fatalf("rt=%d: visible=%v dep=%v, want %v/nil", rt, out.visible, out.dep, want)
		}
	}

	// Latest committed version [10, inf): visible at any rt >= 10.
	v2 := storage.NewVersion([]byte("x"), 1, field.FromTS(10), field.FromTS(field.Infinity))
	if out := e.checkVisibility(anon, v2, 15); !out.visible {
		t.Fatal("latest version invisible to anonymous reader")
	}

	// Uncommitted version of an active writer: invisible to the anonymous
	// reader (and the ID can never collide with txn.Anonymous).
	w := e.Begin(Optimistic, ReadCommitted)
	v3 := storage.NewVersion([]byte("x"), 1, field.FromTxID(w.T.ID()), field.FromTS(field.Infinity))
	if out := e.checkVisibility(anon, v3, e.Oracle().Current()); out.visible {
		t.Fatal("active writer's uncommitted version visible to anonymous reader")
	}
	// Version write-locked by an active writer: still visible (Table 2).
	v4 := storage.NewVersion([]byte("x"), 1, field.FromTS(1), field.Lock(w.T.ID(), 0, false))
	if out := e.checkVisibility(anon, v4, e.Oracle().Current()); !out.visible {
		t.Fatal("write-locked latest version invisible to anonymous reader")
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestReadOnlySnapshotStress is the fast-lane variant of TestRecycleStress:
// writers transfer value between the two halves of a row pair (keeping each
// pair's sum constant) with commits, aborts, and aggressive recycling, while
// fast-lane readers assert that every snapshot shows a consistent pair sum
// and self-verifying payloads. Run with -race.
func TestReadOnlySnapshotStress(t *testing.T) {
	const (
		pairs   = 16
		writers = 4
		readers = 4
		iters   = 3000
	)
	e := NewEngine(Config{GCEvery: 1, GCQuota: 128, DeadlockInterval: -1})
	defer e.Close()
	tbl, err := e.CreateTable(storage.TableSpec{
		Name: "acct",
		Indexes: []storage.IndexSpec{
			{Name: "pk", Key: func(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }, Buckets: 2 * pairs},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Row 2i and 2i+1 form a pair whose values always sum to 1000.
	for k := uint64(0); k < 2*pairs; k++ {
		e.LoadRow(tbl, stressRow(k, 500))
	}

	var fail atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 31337))
			for i := 0; i < iters && !fail.Load(); i++ {
				pair := rng.Uint64() % pairs
				a, b := 2*pair, 2*pair+1
				amount := rng.Uint64() % 50
				tx := e.Begin(Optimistic, SnapshotIsolation)
				va, oka, err1 := tx.Lookup(tbl, 0, a, nil)
				vb, okb, err2 := tx.Lookup(tbl, 0, b, nil)
				if err1 != nil || err2 != nil || !oka || !okb {
					tx.Abort()
					continue
				}
				valA := binary.LittleEndian.Uint64(va.Payload[8:])
				valB := binary.LittleEndian.Uint64(vb.Payload[8:])
				if valA < amount {
					tx.Abort()
					continue
				}
				if tx.Update(tbl, va, stressRow(a, valA-amount)) != nil ||
					tx.Update(tbl, vb, stressRow(b, valB+amount)) != nil {
					tx.Abort()
					continue
				}
				if rng.Intn(8) == 0 {
					tx.Abort() // exercise abort postprocessing under readers
					continue
				}
				_ = tx.Commit()
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) * 7919))
			for i := 0; i < iters && !fail.Load(); i++ {
				pair := rng.Uint64() % pairs
				a, b := 2*pair, 2*pair+1
				tx := e.BeginReadOnly()
				va, oka, err1 := tx.Lookup(tbl, 0, a, nil)
				vb, okb, err2 := tx.Lookup(tbl, 0, b, nil)
				if err1 != nil || err2 != nil {
					t.Errorf("reader error: %v %v", err1, err2)
					fail.Store(true)
					tx.Abort()
					return
				}
				if !oka || !okb {
					t.Error("reader lost a row")
					fail.Store(true)
					tx.Abort()
					return
				}
				if !stressRowOK(va.Payload) || !stressRowOK(vb.Payload) {
					t.Error("reader saw a corrupt payload (use-after-recycle)")
					fail.Store(true)
					tx.Abort()
					return
				}
				sum := binary.LittleEndian.Uint64(va.Payload[8:]) + binary.LittleEndian.Uint64(vb.Payload[8:])
				if sum != 1000 {
					t.Errorf("inconsistent snapshot: pair %d sums to %d, want 1000", pair, sum)
					fail.Store(true)
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("read-only commit: %v", err)
					fail.Store(true)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	// All pins released: the watermark must be free to reach the clock again.
	e.CollectGarbage(1 << 20)
	if got := e.Collector().Watermark(); got != e.Oracle().Current() {
		t.Fatalf("watermark %d stuck below clock %d after all pins released", got, e.Oracle().Current())
	}
}
