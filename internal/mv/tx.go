package mv

import (
	"runtime"

	"repro/internal/field"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Pred is a residual predicate evaluated on candidate payloads during an
// index scan (the Pr of Section 3.1). A nil Pred matches everything. The
// payload must not be modified or retained.
type Pred func(payload []byte) bool

// scanRecord remembers enough about a scan to repeat it during validation
// (the ScanSet of Section 3). Point scans store lo == hi == key; range scans
// on ordered indexes store the inclusive bounds.
type scanRecord struct {
	table  *storage.Table
	ix     storage.Index
	lo, hi uint64
	pred   Pred
}

// writeRec is one WriteSet entry: pointers to the old and new versions of an
// update, the old version of a delete, or the new version of an insert.
type writeRec struct {
	table *storage.Table
	old   *storage.Version
	newV  *storage.Version
	op    wal.Op
	key   uint64 // primary-index key, for the log record
}

// Tx is a multiversion transaction. It is owned by a single goroutine; other
// transactions interact with it only through its embedded txn.Txn.
//
// Tx objects are pooled by the engine: Begin may return a recycled object,
// and a Tx must not be touched after Commit or Abort returns. All scratch
// slices below keep their backing arrays across recycles, so a steady-state
// transaction allocates nothing.
type Tx struct {
	// T is the scheme-independent transaction object (states, timestamps,
	// dependencies). Exposed for tests and the facade.
	T *txn.Txn

	e      *Engine
	scheme Scheme
	iso    Isolation
	done   bool

	// readOnly marks a snapshot reader from BeginReadOnly: every mutation
	// fails with ErrReadOnlyTx, and (unless registered, the pin-overflow
	// fallback) the transaction has no table entry and ID 0.
	readOnly bool
	// registered is true once the transaction has an entry in the
	// transaction table. Batch transactions start unregistered and register
	// lazily, just before the first action that publishes their ID.
	registered bool
	// pin is the reader-pin slot protecting an unregistered transaction's
	// snapshot from the garbage collector, or -1. Owned by the transaction
	// for the read-only fast lane; batch transactions are covered by their
	// batch's pin instead.
	pin int

	readSet     []*storage.Version
	scanSet     []scanRecord
	writeSet    []writeRec
	bucketLocks []*storage.Bucket
	rangeLocks  []rangeLockRef

	// walRec is the reusable redo record; wal.Append encodes it before
	// returning, so the record and its Ops never escape the commit call.
	walRec wal.Record
	// holders is the scratch buffer for bucket-lock holder snapshots.
	holders []uint64
	// readLockBuf is the scratch buffer for draining read locks.
	readLockBuf []*storage.Version

	// tookLocks is an owner-only fast path: true once the transaction has
	// acquired any read lock (the locks themselves live on T so the
	// deadlock detector can see them).
	tookLocks bool
}

// Scheme returns the transaction's concurrency control scheme.
func (tx *Tx) Scheme() Scheme { return tx.scheme }

// Iso returns the transaction's isolation level.
func (tx *Tx) Iso() Isolation { return tx.iso }

// ReadOnly reports whether the transaction is a read-only snapshot reader.
func (tx *Tx) ReadOnly() bool { return tx.readOnly }

// ensureRegistered enters a lazily-begun transaction into the transaction
// table. It must be called before the first action that publishes the
// transaction's ID into shared state — installing a write lock, linking a
// new version, acquiring a bucket lock, or registering a commit dependency —
// because other transactions resolve such IDs through the table. Until then
// the transaction is invisible by construction and its snapshot is covered
// by a reader pin, so deferring registration is free.
func (tx *Tx) ensureRegistered() {
	if tx.registered {
		return
	}
	tx.registered = true
	tx.e.txns.Register(tx.T)
}

// readTime returns the logical read time for the next read (Sections 3.1,
// 3.4, 4.3.1): optimistic transactions read as of their begin time except at
// read committed; pessimistic transactions read the latest version (current
// time) except under snapshot isolation.
func (tx *Tx) readTime() uint64 {
	if tx.scheme == Optimistic {
		if tx.iso == ReadCommitted {
			return tx.e.oracle.Current()
		}
		return tx.T.Begin()
	}
	if tx.iso == SnapshotIsolation {
		return tx.T.Begin()
	}
	return tx.e.oracle.Current()
}

func (tx *Tx) checkUsable() error {
	if tx.done {
		return ErrTxDone
	}
	if tx.T.AbortRequested() {
		return ErrAborted
	}
	return nil
}

// isLatest reports whether v is the latest version of its record: its End
// word is infinity or a lock word (uncommitted writer and/or read locks).
func isLatest(v *storage.Version) bool {
	w := v.End()
	return field.IsLock(w) || field.TS(w) == field.Infinity
}

// Scan iterates the versions in index indexOrd matching key and pred that
// are visible to tx, applying the isolation level's bookkeeping: optimistic
// serializable scans are recorded for phantom rescans; pessimistic
// serializable scans bucket-lock; repeatable-read and serializable reads are
// read-locked (pessimistic) or read-set tracked (optimistic). fn returning
// false stops the scan. If Scan returns a non-nil error the transaction must
// be aborted.
func (tx *Tx) Scan(t *storage.Table, indexOrd int, key uint64, pred Pred, fn func(v *storage.Version) bool) error {
	return tx.scan(t, indexOrd, key, pred, false, func(v *storage.Version) (bool, error) {
		return fn(v), nil
	})
}

func (tx *Tx) scan(t *storage.Table, indexOrd int, key uint64, pred Pred, forUpdate bool, fn func(*storage.Version) (bool, error)) error {
	if err := tx.checkUsable(); err != nil {
		return err
	}
	ix := t.Index(indexOrd)
	ser := tx.iso == Serializable
	if ser {
		if tx.scheme == Optimistic {
			// Register the scan so it can be repeated during validation
			// (start-scan step of Section 3.1).
			tx.scanSet = append(tx.scanSet, scanRecord{t, ix, key, key, pred})
		} else if rl := ix.RangeLocks(); rl != nil {
			// An ordered index cannot bucket-lock a key that was never
			// inserted (there is no bucket); point scans lock the
			// degenerate range [key, key] for phantom protection instead.
			tx.lockRange(rl, key, key)
		} else {
			// Bucket lock for phantom protection (Section 4.1.2).
			tx.lockBucket(ix.Lookup(key))
		}
	}
	rt := tx.readTime()
	b := ix.Lookup(key)
	if b == nil {
		return nil // ordered index, key never inserted
	}
	for v := b.Head(); v != nil; v = v.Next(indexOrd) {
		if v.Key(indexOrd) != key {
			continue
		}
		if pred != nil && !pred(v.Payload) {
			continue
		}
		cont, err := tx.visit(v, rt, ser, forUpdate, fn)
		if err != nil {
			return err
		}
		if !cont {
			break
		}
	}
	return nil
}

// ScanRange iterates the versions with index keys in [lo, hi] (inclusive)
// visible to tx, in ascending key order, applying the same isolation
// bookkeeping as Scan: optimistic serializable range scans are recorded and
// repeated at validation (phantom rescan); pessimistic serializable scans
// take a range lock that forces inserters into the range to wait; repeatable
// read stabilizes every row read. The index must be Ordered or
// storage.ErrUnordered is returned. fn returning false stops the scan; a
// non-nil error means the transaction must be aborted.
func (tx *Tx) ScanRange(t *storage.Table, indexOrd int, lo, hi uint64, pred Pred, fn func(v *storage.Version) bool) error {
	return tx.scanRange(t, indexOrd, lo, hi, pred, false, func(v *storage.Version) (bool, error) {
		return fn(v), nil
	})
}

func (tx *Tx) scanRange(t *storage.Table, indexOrd int, lo, hi uint64, pred Pred, forUpdate bool, fn func(*storage.Version) (bool, error)) error {
	if err := tx.checkUsable(); err != nil {
		return err
	}
	ix := t.Index(indexOrd)
	if !ix.Ordered() {
		return storage.ErrUnordered
	}
	if lo > hi {
		return nil
	}
	ser := tx.iso == Serializable
	if ser {
		if tx.scheme == Optimistic {
			tx.scanSet = append(tx.scanSet, scanRecord{t, ix, lo, hi, pred})
		} else {
			tx.lockRange(ix.RangeLocks(), lo, hi)
		}
	}
	rt := tx.readTime()
	cur, err := ix.ScanRange(lo, hi)
	if err != nil {
		return err
	}
	for {
		b, _, ok := cur.Next()
		if !ok {
			return nil
		}
		for v := b.Head(); v != nil; v = v.Next(indexOrd) {
			if pred != nil && !pred(v.Payload) {
				continue
			}
			cont, err := tx.visit(v, rt, ser, forUpdate, fn)
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
	}
}

// visit applies the visibility test and per-row isolation bookkeeping to one
// candidate version (shared by point and range scans): invisible versions
// feed the pessimistic phantom guard; visible ones are read-set tracked
// (optimistic) or read-locked (pessimistic) at repeatable read and above,
// then handed to fn. The returned bool is whether the scan should continue.
func (tx *Tx) visit(v *storage.Version, rt uint64, ser, forUpdate bool, fn func(*storage.Version) (bool, error)) (bool, error) {
	vis, err := tx.isVisible(v, rt)
	if err != nil {
		return false, err
	}
	if !vis {
		if ser && tx.scheme == Pessimistic {
			// A version satisfying the predicate but not visible may be an
			// uncommitted insert: a potential phantom (Section 4.2.2).
			if err := tx.phantomGuard(v, rt); err != nil {
				return false, err
			}
		}
		return true, nil
	}
	if !forUpdate && (tx.iso == RepeatableRead || ser) {
		if tx.scheme == Optimistic {
			tx.readSet = append(tx.readSet, v)
		} else if isLatest(v) {
			// Read locks are only needed on latest versions; older
			// versions have immutable valid intervals (Section 4.1.1).
			if err := tx.acquireReadLock(v); err != nil {
				tx.e.lockFailures.Add(1)
				return false, err
			}
		} else {
			// Visible at rt yet already committed-replaced: the replacer
			// drew its end timestamp after our read time was taken, so this
			// observation is stale as of our own (still larger) end
			// timestamp and no read lock can stabilize it — the same
			// "replaced between visibility check and lock acquisition"
			// condition acquireReadLock reports. Pessimistic read stability
			// is lock-based, not validation-based, so the only sound
			// outcome is to abort. (Pessimistic snapshot-isolation reads at
			// the begin timestamp never take this branch: they do not
			// require stability at the end timestamp.)
			tx.e.lockFailures.Add(1)
			return false, ErrReadLockFailed
		}
	}
	return fn(v)
}

// phantomGuard handles an invisible, predicate-matching version during a
// serializable pessimistic scan. If the version is an uncommitted insert by
// an active transaction TU, tx imposes a wait-for dependency so TU cannot
// commit (and create a phantom) before tx completes. If TU is already
// committing, the phantom can no longer be prevented and tx aborts.
func (tx *Tx) phantomGuard(v *storage.Version, rt uint64) error {
	for {
		bw := v.Begin()
		var effBegin uint64
		if field.IsTS(bw) {
			effBegin = field.TS(bw)
			if effBegin == field.Infinity {
				return nil // aborted garbage
			}
		} else {
			tbID := field.TxID(bw)
			if tbID == tx.T.ID() {
				return nil // our own insert
			}
			tb, ok := tx.e.txns.Lookup(tbID)
			if !ok {
				continue // finalizing; reread
			}
			st := tb.State()
			tbEnd := tb.End()
			if tb.ID() != tbID {
				continue // object recycled: TB terminated; reread the word
			}
			switch st {
			case txn.Active:
				return tx.imposePhantomDep(tb)
			case txn.Preparing, txn.Committed:
				effBegin = tbEnd
				if effBegin == 0 {
					continue
				}
			case txn.Aborted:
				return nil
			default:
				continue
			}
		}
		if effBegin <= rt {
			// The version began at or before our read time: it is invisible
			// because it already ended, which will remain true at our end
			// timestamp. Not a phantom.
			return nil
		}
		// The version begins after our read time. If it has already ended
		// with a committed timestamp it cannot be visible at our (larger)
		// end timestamp either; otherwise it would surface as a phantom and
		// we cannot delay its creator any more.
		ew := v.End()
		if field.IsTS(ew) && field.TS(ew) != field.Infinity {
			return nil
		}
		return ErrPhantomRisk
	}
}

// Lookup returns the first visible version matching key and pred in index
// indexOrd, applying the same bookkeeping as Scan.
func (tx *Tx) Lookup(t *storage.Table, indexOrd int, key uint64, pred Pred) (*storage.Version, bool, error) {
	var found *storage.Version
	err := tx.Scan(t, indexOrd, key, pred, func(v *storage.Version) bool {
		found = v
		return false
	})
	if err != nil {
		return nil, false, err
	}
	return found, found != nil, nil
}

// Insert creates a brand-new record version and links it into every index of
// the table. The version becomes visible to others only when tx commits.
func (tx *Tx) Insert(t *storage.Table, payload []byte) error {
	if err := tx.checkUsable(); err != nil {
		return err
	}
	if tx.readOnly {
		return ErrReadOnlyTx
	}
	if tx.e.degraded.Load() {
		return ErrDegraded
	}
	tx.ensureRegistered()
	v := tx.e.vpool.GetIn(t.Arena(), payload, t.NumIndexes(), field.FromTxID(tx.T.ID()), infinityWord)
	t.Insert(v)
	tx.writeSet = append(tx.writeSet, writeRec{t, nil, v, wal.OpInsert, v.Key(0)})
	// Primary-key uniqueness. The check runs AFTER the version is linked,
	// for the same symmetry argument as the scan-lock check below: two
	// concurrent inserters of one key each link first, so at least one of
	// them finds the other's version when it checks. Checking before
	// linking leaves an interleaving — check, check, link, link — in which
	// both commit and the key has two latest versions forever (the churn
	// suites catch this as a row visible twice in one snapshot scan). A
	// failed check dooms the transaction: the version is already linked and
	// staged.
	if err := tx.insertUniqueCheck(t, v); err != nil {
		tx.T.RequestAbort()
		return err
	}
	// Inserting under a serializable scan lock (bucket or range) is allowed,
	// but then tx cannot precommit until the lock holders have completed
	// (Section 4.2.2). This applies to optimistic transactions too: honoring
	// scan locks is what lets the two schemes coexist (Section 4.5).
	//
	// The lock check runs AFTER the version is linked: a concurrent
	// serializable scanner either finds our version (and delays us through
	// phantomGuard) or completed its lock acquisition before our check and
	// we find the lock here. Checking before linking leaves an interleaving
	// — check, scanner locks and scans, link — in which neither side sees
	// the other and the scanner's phantom protection silently fails. A
	// failed check dooms the transaction (the version is already linked and
	// staged, so committing anyway would apply a write the API reported as
	// failed); abort postprocessing makes the linked version garbage.
	for ord := 0; ord < t.NumIndexes(); ord++ {
		ix := t.Index(ord)
		if err := tx.insertDeps(ix, v.Key(ix.Ord())); err != nil {
			tx.T.RequestAbort()
			return err
		}
	}
	return nil
}

// insertUniqueCheck scans the primary-index chain of self's key for another
// version that is — or may yet become — the latest: a committed live
// version (the key visibly exists), a committed version whose delete or
// update is still in flight or rolled back (if the ender aborts the version
// stays latest), or another transaction's in-flight insert (first writer
// wins; Section 2.6's uniqueness rule). Versions the transaction itself is
// ending are skipped: a delete-then-reinsert of one key inside one
// transaction is legal, and if the transaction aborts its insert vanishes
// with it. Words naming transactions in flux are reread, as in
// checkVisibility.
func (tx *Tx) insertUniqueCheck(t *storage.Table, self *storage.Version) error {
	ix := t.Index(0)
	ord := ix.Ord()
	key := self.Key(ord)
	for v := ix.Lookup(key).Head(); v != nil; v = v.Next(ord) {
		if v == self || v.Key(ord) != key {
			continue
		}
		conflict, err := tx.versionMayStayLatest(v)
		if err != nil {
			return err
		}
		if conflict {
			return ErrDuplicateKey
		}
	}
	return nil
}

// versionMayStayLatest classifies one existing version for
// insertUniqueCheck.
func (tx *Tx) versionMayStayLatest(v *storage.Version) (bool, error) {
	for attempt := 0; ; attempt++ {
		if attempt > 0 && attempt%64 == 0 {
			runtime.Gosched()
		}
		bw := v.Begin()
		if !field.IsTS(bw) {
			// Uncommitted (or finalizing) creation.
			creator := field.TxID(bw)
			if creator == tx.T.ID() {
				// Our own earlier insert in this transaction: a duplicate
				// unless we re-deleted it (its End then carries our write
				// lock).
				ew := v.End()
				if field.IsTS(ew) {
					return field.TS(ew) == field.Infinity, nil
				}
				return !field.HasWriter(ew), nil
			}
			tb, ok := tx.e.txns.Lookup(creator)
			if !ok {
				continue // finalizing; reread
			}
			st := tb.State()
			if tb.ID() != creator {
				continue // object recycled; reread
			}
			switch st {
			case txn.Aborted:
				return false, nil // garbage version
			case txn.Active, txn.Preparing, txn.Committed:
				// A concurrent insert of the same key that may (or did)
				// commit: the earlier writer wins.
				return true, nil
			default: // Terminated
				continue
			}
		}
		if field.TS(bw) == field.Infinity {
			return false, nil // aborted insert: garbage awaiting collection
		}
		// Committed creation; the End word decides whether it is still (or
		// may remain) the latest.
		ew := v.End()
		if field.IsTS(ew) {
			return field.TS(ew) == field.Infinity, nil
		}
		if !field.HasWriter(ew) {
			return true, nil // read locks only: a live latest version
		}
		ender := field.Writer(ew)
		if ender == tx.T.ID() {
			return false, nil // we are deleting/updating it ourselves
		}
		te, ok := tx.e.txns.Lookup(ender)
		if !ok {
			continue // finalizing; reread
		}
		st := te.State()
		tstamp := te.End()
		if te.ID() != ender {
			continue // object recycled; reread
		}
		switch st {
		case txn.Committed:
			if tstamp == 0 {
				continue
			}
			return false, nil // the delete/update committed: version is dead
		case txn.Aborted:
			return true, nil // ender rolled back: version stays latest
		case txn.Active, txn.Preparing:
			// In-flight delete/update: if it aborts the version stays
			// latest, so the insert cannot proceed safely.
			return true, nil
		default: // Terminated
			continue
		}
	}
}

// Update replaces old (a version obtained from Lookup/Scan in this
// transaction) with a new version carrying newPayload. On a write-write
// conflict the first-writer-wins rule applies and ErrWriteConflict is
// returned; the transaction must then abort.
func (tx *Tx) Update(t *storage.Table, old *storage.Version, newPayload []byte) error {
	if err := tx.checkUsable(); err != nil {
		return err
	}
	if tx.readOnly {
		return ErrReadOnlyTx
	}
	if tx.e.degraded.Load() {
		return ErrDegraded
	}
	tx.ensureRegistered()
	wasReadLocked, err := tx.installWriteLock(old)
	if err != nil {
		tx.e.writeConflicts.Add(1)
		return err
	}
	if wasReadLocked {
		// Eager update of a read-locked version: tx waits (at precommit)
		// until all read locks on the version are released (Section 4.2.1).
		tx.T.AddWaitFor()
	}
	nv := tx.e.vpool.GetIn(t.Arena(), newPayload, t.NumIndexes(), field.FromTxID(tx.T.ID()), infinityWord)
	t.Insert(nv)
	tx.writeSet = append(tx.writeSet, writeRec{t, old, nv, wal.OpUpdate, nv.Key(0)})
	// Scan-lock check after linking, for the same reason as Insert: the
	// new version must be reachable before we decide no scanner needs a
	// wait-for dependency from us. Failure dooms the transaction — the
	// write is already staged.
	for ord := 0; ord < t.NumIndexes(); ord++ {
		ix := t.Index(ord)
		if err := tx.insertDeps(ix, nv.Key(ix.Ord())); err != nil {
			tx.T.RequestAbort()
			return err
		}
	}
	return nil
}

// Delete removes the record whose latest version is old: an update that
// creates no new version (Section 3.1).
func (tx *Tx) Delete(t *storage.Table, old *storage.Version) error {
	if err := tx.checkUsable(); err != nil {
		return err
	}
	if tx.readOnly {
		return ErrReadOnlyTx
	}
	if tx.e.degraded.Load() {
		return ErrDegraded
	}
	tx.ensureRegistered()
	wasReadLocked, err := tx.installWriteLock(old)
	if err != nil {
		tx.e.writeConflicts.Add(1)
		return err
	}
	if wasReadLocked {
		tx.T.AddWaitFor()
	}
	tx.writeSet = append(tx.writeSet, writeRec{t, old, nil, wal.OpDelete, t.Index(0).Key(old.Payload)})
	return nil
}

// UpdateWhere scans index indexOrd for visible versions matching key and
// pred and replaces each with mut(old payload). It returns the number of
// rows updated. Update-intent scans take no read locks and record no reads:
// the write lock itself stabilizes the version (Section 3.1's
// check-updatability path).
func (tx *Tx) UpdateWhere(t *storage.Table, indexOrd int, key uint64, pred Pred, mut func(old []byte) []byte) (int, error) {
	n := 0
	err := tx.scan(t, indexOrd, key, pred, true, func(v *storage.Version) (bool, error) {
		if err := tx.Update(t, v, mut(v.Payload)); err != nil {
			return false, err
		}
		n++
		return true, nil
	})
	return n, err
}

// DeleteWhere scans index indexOrd for visible versions matching key and
// pred and deletes each. It returns the number of rows deleted.
func (tx *Tx) DeleteWhere(t *storage.Table, indexOrd int, key uint64, pred Pred) (int, error) {
	n := 0
	err := tx.scan(t, indexOrd, key, pred, true, func(v *storage.Version) (bool, error) {
		if err := tx.Delete(t, v); err != nil {
			return false, err
		}
		n++
		return true, nil
	})
	return n, err
}
