package mv

// Primary-key uniqueness (Section 2.6): an insert must not create a second
// latest version of an existing key. The deterministic cases below pin the
// link-then-check protocol; TestSecondaryChurnRaceMV exercises the racing
// variant (two update-miss re-inserters of a deleted key) under -race.

import (
	"testing"

	"repro/internal/storage"
)

func uniqueEngine(t *testing.T) (*Engine, *storage.Table) {
	t.Helper()
	e := NewEngine(Config{DeadlockInterval: -1})
	t.Cleanup(func() { e.Close() })
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Buckets: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, tbl
}

func TestInsertDuplicateOfCommittedKey(t *testing.T) {
	e, tbl := uniqueEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	tx := e.Begin(Optimistic, SnapshotIsolation)
	if err := tx.Insert(tbl, testPayload(1, 11)); err != ErrDuplicateKey {
		t.Fatalf("insert of existing key: err = %v, want ErrDuplicateKey", err)
	}
	if err := tx.Commit(); err != ErrAborted {
		t.Fatalf("commit after duplicate insert: err = %v, want ErrAborted", err)
	}
	// The original row is intact.
	r := e.Begin(Optimistic, SnapshotIsolation)
	if val, ok := readVal(t, r, tbl, 1); !ok || val != 10 {
		t.Fatalf("row 1 = (%d, %v), want (10, true)", val, ok)
	}
	mustCommit(t, r)
}

func TestInsertDuplicateOfUncommittedInsert(t *testing.T) {
	e, tbl := uniqueEngine(t)
	t1 := e.Begin(Optimistic, SnapshotIsolation)
	if err := t1.Insert(tbl, testPayload(7, 1)); err != nil {
		t.Fatal(err)
	}
	// First writer wins: the second inserter of the same key is doomed even
	// though t1 has not committed.
	t2 := e.Begin(Optimistic, SnapshotIsolation)
	if err := t2.Insert(tbl, testPayload(7, 2)); err != ErrDuplicateKey {
		t.Fatalf("concurrent insert: err = %v, want ErrDuplicateKey", err)
	}
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, t1)
	r := e.Begin(Optimistic, SnapshotIsolation)
	if val, ok := readVal(t, r, tbl, 7); !ok || val != 1 {
		t.Fatalf("row 7 = (%d, %v), want (1, true)", val, ok)
	}
	mustCommit(t, r)
}

func TestInsertAfterAbortedInsert(t *testing.T) {
	e, tbl := uniqueEngine(t)
	t1 := e.Begin(Optimistic, SnapshotIsolation)
	if err := t1.Insert(tbl, testPayload(3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	// The aborted insert's version is garbage, not a conflict.
	t2 := e.Begin(Optimistic, SnapshotIsolation)
	if err := t2.Insert(tbl, testPayload(3, 2)); err != nil {
		t.Fatalf("insert after aborted insert: %v", err)
	}
	mustCommit(t, t2)
}

func TestInsertAfterCommittedDelete(t *testing.T) {
	e, tbl := uniqueEngine(t)
	e.LoadRow(tbl, testPayload(5, 1))
	d := e.Begin(Pessimistic, ReadCommitted)
	if n, err := d.DeleteWhere(tbl, 0, 5, nil); err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	mustCommit(t, d)
	tx := e.Begin(Optimistic, SnapshotIsolation)
	if err := tx.Insert(tbl, testPayload(5, 2)); err != nil {
		t.Fatalf("re-insert of deleted key: %v", err)
	}
	mustCommit(t, tx)
	r := e.Begin(Optimistic, SnapshotIsolation)
	if val, ok := readVal(t, r, tbl, 5); !ok || val != 2 {
		t.Fatalf("row 5 = (%d, %v), want (2, true)", val, ok)
	}
	mustCommit(t, r)
}

func TestDeleteReinsertSameTxn(t *testing.T) {
	e, tbl := uniqueEngine(t)
	e.LoadRow(tbl, testPayload(9, 1))
	tx := e.Begin(Pessimistic, ReadCommitted)
	if n, err := tx.DeleteWhere(tbl, 0, 9, nil); err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	// Our own in-flight delete does not block our own re-insert.
	if err := tx.Insert(tbl, testPayload(9, 2)); err != nil {
		t.Fatalf("same-txn re-insert: %v", err)
	}
	// But a second insert of the key we just created is a duplicate.
	if err := tx.Insert(tbl, testPayload(9, 3)); err != ErrDuplicateKey {
		t.Fatalf("same-txn double insert: err = %v, want ErrDuplicateKey", err)
	}
	if err := tx.Commit(); err != ErrAborted {
		t.Fatalf("commit after duplicate insert: err = %v, want ErrAborted", err)
	}
}

func TestInsertBlockedByInFlightDelete(t *testing.T) {
	e, tbl := uniqueEngine(t)
	e.LoadRow(tbl, testPayload(4, 1))
	d := e.Begin(Pessimistic, ReadCommitted)
	if n, err := d.DeleteWhere(tbl, 0, 4, nil); err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	// The delete may still abort, leaving the old version latest — a
	// concurrent insert must not gamble on it.
	tx := e.Begin(Optimistic, SnapshotIsolation)
	if err := tx.Insert(tbl, testPayload(4, 2)); err != ErrDuplicateKey {
		t.Fatalf("insert over in-flight delete: err = %v, want ErrDuplicateKey", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, d)
}
