package mv

// Record-lock edge cases of Section 4.1.1/4.2.1: counter saturation, the
// NoMoreReadLocks starvation guard, lock-word transitions under eager
// updates, and the eager-update ablation.

import (
	"testing"

	"repro/internal/field"
	"repro/internal/storage"
)

func lookupVersion(t *testing.T, e *Engine, tbl *storage.Table, key uint64) *storage.Version {
	t.Helper()
	tx := e.Begin(Optimistic, ReadCommitted)
	v, ok, err := tx.Lookup(tbl, 0, key, nil)
	if err != nil || !ok {
		t.Fatalf("lookup: ok=%v err=%v", ok, err)
	}
	mustCommit(t, tx)
	return v
}

func TestReadLockCounterSaturation(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	// 255 pessimistic repeatable-read transactions hold read locks.
	var holders []*Tx
	for i := 0; i < field.MaxReadLocks; i++ {
		tx := e.Begin(Pessimistic, RepeatableRead)
		if _, ok := readVal(t, tx, tbl, 1); !ok {
			t.Fatalf("holder %d read failed", i)
		}
		holders = append(holders, tx)
	}
	v := lookupVersion(t, e, tbl, 1)
	if got := field.Readers(v.End()); got != field.MaxReadLocks {
		t.Fatalf("Readers = %d, want %d", got, field.MaxReadLocks)
	}
	// The 256th read lock fails; the transaction must abort (Section
	// 4.1.1: "If so, the transaction aborts").
	extra := e.Begin(Pessimistic, RepeatableRead)
	if _, _, err := extra.Lookup(tbl, 0, 1, nil); err != ErrReadLockFailed {
		t.Fatalf("saturated lock: err = %v, want ErrReadLockFailed", err)
	}
	extra.Abort()
	// Releasing the holders restores the canonical unlocked word.
	for _, h := range holders {
		mustCommit(t, h)
	}
	if w := v.End(); !field.IsTS(w) || field.TS(w) != field.Infinity {
		t.Fatalf("End = %x after release, want infinity timestamp", w)
	}
	up := e.Begin(Pessimistic, ReadCommitted)
	if err := writeVal(t, up, tbl, 1, 20); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, up)
}

func TestNoMoreReadLocksGuard(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))

	reader := e.Begin(Pessimistic, RepeatableRead)
	if _, ok := readVal(t, reader, tbl, 1); !ok {
		t.Fatal("read failed")
	}
	// Eager update: the writer write-locks the read-locked version and owes
	// a wait-for.
	writer := e.Begin(Pessimistic, ReadCommitted)
	if err := writeVal(t, writer, tbl, 1, 20); err != nil {
		t.Fatal(err)
	}
	v := lookupVersion(t, e, tbl, 1)
	if !field.HasWriter(v.End()) || field.Readers(v.End()) != 1 {
		t.Fatalf("lock word = %x, want writer + 1 reader", v.End())
	}
	// The reader releases the last read lock: ReadLockCount goes to zero
	// and NoMoreReadLocks is set atomically, so the writer's commit cannot
	// be postponed again (Section 4.2.1).
	mustCommit(t, reader)
	w := v.End()
	if !field.IsLock(w) || field.Readers(w) != 0 || !field.NoMoreReadLocks(w) {
		t.Fatalf("lock word = %x, want 0 readers + NoMoreReadLocks", w)
	}
	// A late reader cannot take a new read lock on this version.
	late := e.Begin(Pessimistic, RepeatableRead)
	if _, _, err := late.Lookup(tbl, 0, 1, nil); err != ErrReadLockFailed {
		t.Fatalf("late read lock: err = %v, want ErrReadLockFailed", err)
	}
	late.Abort()
	mustCommit(t, writer)
}

func TestEagerUpdateAblation(t *testing.T) {
	e := NewEngine(Config{DeadlockInterval: -1, DisableEagerUpdates: true})
	t.Cleanup(func() { e.Close() })
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Buckets: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.LoadRow(tbl, testPayload(1, 10))

	reader := e.Begin(Pessimistic, RepeatableRead)
	if _, ok := readVal(t, reader, tbl, 1); !ok {
		t.Fatal("read failed")
	}
	// With eager updates disabled, updating a read-locked version aborts
	// instead of installing a wait-for dependency.
	writer := e.Begin(Pessimistic, ReadCommitted)
	if err := writeVal(t, writer, tbl, 1, 20); err != ErrWriteConflict {
		t.Fatalf("err = %v, want ErrWriteConflict (ablation)", err)
	}
	writer.Abort()
	mustCommit(t, reader)

	// Inserts into locked buckets likewise abort.
	ser := e.Begin(Pessimistic, Serializable)
	if _, ok := readVal(t, ser, tbl, 2); ok {
		t.Fatal("unexpected row")
	}
	ins := e.Begin(Pessimistic, ReadCommitted)
	if err := ins.Insert(tbl, testPayload(2, 22)); err != ErrWriteConflict {
		t.Fatalf("insert into locked bucket: err = %v, want ErrWriteConflict", err)
	}
	ins.Abort()
	mustCommit(t, ser)
}

func TestWriteLockReleasedOnAbortPreservesReadLocks(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	reader := e.Begin(Pessimistic, RepeatableRead)
	if _, ok := readVal(t, reader, tbl, 1); !ok {
		t.Fatal("read failed")
	}
	writer := e.Begin(Pessimistic, ReadCommitted)
	if err := writeVal(t, writer, tbl, 1, 20); err != nil {
		t.Fatal(err)
	}
	// The writer aborts: the write lock is cleared but the read lock
	// remains.
	if err := writer.Abort(); err != nil {
		t.Fatal(err)
	}
	v := lookupVersion(t, e, tbl, 1)
	w := v.End()
	if !field.IsLock(w) || field.HasWriter(w) || field.Readers(w) != 1 {
		t.Fatalf("lock word after abort = %x, want 1 reader, no writer", w)
	}
	mustCommit(t, reader)
	// Fully released: back to an infinity timestamp.
	if w := v.End(); !field.IsTS(w) || field.TS(w) != field.Infinity {
		t.Fatalf("End = %x after all releases, want infinity", w)
	}
}

func TestBucketLockReleasedOnAbort(t *testing.T) {
	e, tbl := newTestEngine(t)
	ser := e.Begin(Pessimistic, Serializable)
	if _, ok := readVal(t, ser, tbl, 7); ok {
		t.Fatal("unexpected row")
	}
	b := tbl.Index(0).Lookup(7)
	if b.LockCount() != 1 {
		t.Fatalf("LockCount = %d during scan", b.LockCount())
	}
	if err := ser.Abort(); err != nil {
		t.Fatal(err)
	}
	if b.LockCount() != 0 {
		t.Fatalf("LockCount = %d after abort", b.LockCount())
	}
}

// Double update of the same version within one transaction is rejected (the
// correct target is the transaction's own new version).
func TestDoubleUpdateSameVersionRejected(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 10))
	tx := e.Begin(Optimistic, ReadCommitted)
	v, ok, err := tx.Lookup(tbl, 0, 1, nil)
	if err != nil || !ok {
		t.Fatal("lookup failed")
	}
	if err := tx.Update(tbl, v, testPayload(1, 11)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(tbl, v, testPayload(1, 12)); err != ErrWriteConflict {
		t.Fatalf("double update err = %v, want ErrWriteConflict", err)
	}
	tx.Abort()
}

// Updating through the fresh handle (the transaction's own new version)
// works: the paper's "if TB has updated a record multiple times, only the
// latest version is visible to it".
func TestRepeatedUpdateThroughLatest(t *testing.T) {
	e, tbl := newTestEngine(t)
	e.LoadRow(tbl, testPayload(1, 0))
	tx := e.Begin(Optimistic, ReadCommitted)
	for i := 1; i <= 5; i++ {
		if err := writeVal(t, tx, tbl, 1, uint64(i)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if v, ok := readVal(t, tx, tbl, 1); !ok || v != uint64(i) {
			t.Fatalf("self-read after update %d = %d,%v", i, v, ok)
		}
	}
	mustCommit(t, tx)
	after := e.Begin(Optimistic, ReadCommitted)
	if v, _ := readVal(t, after, tbl, 1); v != 5 {
		t.Fatalf("final value = %d, want 5", v)
	}
	mustCommit(t, after)
}
