package mv

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
)

// Non-unique secondary ordered index tests: many rows share one secondary
// key (the row's group, derived from its value), so one skip-list node
// carries a chain of versions of DISTINCT records, duplicate chains grow
// and drain as updates migrate rows between groups, and the PR 4 node
// reclamation protocol must cope with nodes whose chains refill from other
// rows while they are marked. This closes the roadmap's "secondary ordered
// indexes with non-unique keys at scale — work but untested" note.

const secGroups = 4

// secGroupKey maps a payload to its group: a deliberately tiny key space so
// chains hold many rows.
func secGroupKey(p []byte) uint64 { return payloadVal(p) % secGroups }

func secondaryEngine(t *testing.T) (*Engine, *storage.Table) {
	t.Helper()
	e := NewEngine(Config{GCEvery: 1, GCQuota: 1 << 20})
	tbl, err := e.CreateTable(storage.TableSpec{
		Name: "t",
		Indexes: []storage.IndexSpec{
			{Name: "pk", Key: payloadKey, Buckets: 1 << 10},
			{Name: "grp", Key: secGroupKey, Ordered: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, tbl
}

// TestSecondaryDuplicateChains: sequential sanity for the non-unique index
// shape — rows pile onto one secondary key, scans see each row exactly
// once, and updates relocate rows between duplicate chains.
func TestSecondaryDuplicateChains(t *testing.T) {
	e, tbl := secondaryEngine(t)
	const rows = 64
	for k := uint64(0); k < rows; k++ {
		e.LoadRow(tbl, testPayload(k, k)) // group k%4
	}
	tx := e.Begin(Optimistic, SnapshotIsolation)
	perGroup := make(map[uint64]int)
	err := tx.ScanRange(tbl, 1, 0, secGroups-1, nil, func(v *storage.Version) bool {
		perGroup[secGroupKey(v.Payload)]++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for g := uint64(0); g < secGroups; g++ {
		if perGroup[g] != rows/secGroups {
			t.Fatalf("group %d holds %d rows, want %d (per-group: %v)", g, perGroup[g], rows/secGroups, perGroup)
		}
	}
	mustCommit(t, tx)

	// Move every row of group 0 into group 1: chain 0 drains, chain 1
	// doubles.
	tx = e.Begin(Pessimistic, ReadCommitted)
	moved := 0
	for k := uint64(0); k < rows; k += secGroups {
		n, err := tx.UpdateWhere(tbl, 0, k, nil, func(old []byte) []byte {
			return testPayload(payloadKey(old), payloadVal(old)+1)
		})
		if err != nil {
			t.Fatal(err)
		}
		moved += n
	}
	if moved != rows/secGroups {
		t.Fatalf("moved %d rows", moved)
	}
	mustCommit(t, tx)

	tx = e.Begin(Optimistic, SnapshotIsolation)
	count := func(g uint64) int {
		n := 0
		if err := tx.Scan(tbl, 1, g, nil, func(*storage.Version) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if g0, g1 := count(0), count(1); g0 != 0 || g1 != 2*rows/secGroups {
		t.Fatalf("after migration: group0=%d group1=%d", g0, g1)
	}
	mustCommit(t, tx)
}

// TestSecondaryChurnRaceMV is the concurrent churn stress: writers migrate
// rows between duplicate chains (update), kill and revive rows
// (delete/insert), and readers range-scan the whole secondary index —
// while cooperative GC (GCEvery=1) continuously retires versions, drains
// chains, and runs the mark/sweep/free node protocol underneath. -race
// checks the publication protocol; the final assertions check that no row
// was lost or duplicated and that the node population stayed bounded by
// the tiny group domain.
func TestSecondaryChurnRaceMV(t *testing.T) {
	e, tbl := secondaryEngine(t)
	const (
		rows    = 48
		writers = 4
		readers = 2
	)
	opsEach := 400
	if testing.Short() {
		opsEach = 100
	}
	for k := uint64(0); k < rows; k++ {
		e.LoadRow(tbl, testPayload(k, k))
	}

	var wg sync.WaitGroup
	var aborted atomic.Uint64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*571 + 1))
			for i := 0; i < opsEach; i++ {
				k := uint64(rng.Intn(rows))
				tx := e.Begin(Pessimistic, ReadCommitted)
				var err error
				if rng.Intn(4) == 0 {
					// Delete; a later iteration's update-miss re-inserts.
					_, err = tx.DeleteWhere(tbl, 0, k, nil)
				} else {
					var n int
					n, err = tx.UpdateWhere(tbl, 0, k, nil, func(old []byte) []byte {
						return testPayload(payloadKey(old), rng.Uint64())
					})
					if err == nil && n == 0 {
						err = tx.Insert(tbl, testPayload(k, rng.Uint64()))
					}
				}
				if err != nil {
					tx.Abort()
					aborted.Add(1)
					continue
				}
				if tx.Commit() != nil {
					aborted.Add(1)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)*977 + 5))
			for i := 0; i < opsEach; i++ {
				tx := e.Begin(Optimistic, SnapshotIsolation)
				seen := make(map[uint64]bool)
				lo := uint64(rng.Intn(secGroups))
				err := tx.ScanRange(tbl, 1, lo, secGroups-1, nil, func(v *storage.Version) bool {
					k := payloadKey(v.Payload)
					if seen[k] {
						t.Errorf("row %d visible twice in one snapshot scan", k)
					}
					seen[k] = true
					if g := secGroupKey(v.Payload); g < lo || g >= secGroups {
						t.Errorf("row %d in group %d leaked into [%d, %d]", k, g, lo, secGroups-1)
					}
					return true
				})
				if err != nil {
					tx.Abort()
					continue
				}
				mustCommit(t, tx)
			}
		}(r)
	}
	wg.Wait()

	// Drain GC so chains, versions and nodes settle.
	for i := 0; i < 8; i++ {
		tx := e.Begin(Optimistic, SnapshotIsolation)
		mustCommit(t, tx)
		e.CollectGarbage(1 << 20)
	}

	// Every surviving row appears in exactly one group chain.
	tx := e.Begin(Optimistic, SnapshotIsolation)
	live := make(map[uint64]int)
	if err := tx.ScanRange(tbl, 1, 0, secGroups-1, nil, func(v *storage.Version) bool {
		live[payloadKey(v.Payload)]++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for k, n := range live {
		if n != 1 {
			t.Fatalf("row %d appears %d times across secondary chains", k, n)
		}
	}
	// Cross-check against the primary index.
	for k := uint64(0); k < rows; k++ {
		_, ok, err := tx.Lookup(tbl, 0, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok != (live[k] == 1) {
			t.Fatalf("row %d: pk visible=%v, secondary visible=%v", k, ok, live[k] == 1)
		}
	}
	mustCommit(t, tx)

	ix := tbl.Index(1).(*storage.OrderedIndex)
	if keys := ix.Keys(); keys > secGroups {
		t.Fatalf("secondary index holds %d live keys, domain is %d", keys, secGroups)
	}
	marked, dead, pooled, created, reused, freed := ix.NodeStats()
	t.Logf("secondary nodes: marked=%d dead=%d pooled=%d created=%d reused=%d freed=%d aborts=%d",
		marked, dead, pooled, created, reused, freed, aborted.Load())
	// The group domain is 4; nodes die only when a whole chain drains, so
	// physical retention must stay tiny regardless of the churn volume.
	if dead+pooled > 64 {
		t.Fatalf("dead=%d pooled=%d secondary nodes retained", dead, pooled)
	}

	// Drain phase: delete every row so each duplicate chain empties row by
	// row — the node must survive while ANY row remains and die (mark →
	// sweep → free) only when the whole chain drains.
	for k := uint64(0); k < rows; k++ {
		tx := e.Begin(Pessimistic, ReadCommitted)
		if _, err := tx.DeleteWhere(tbl, 0, k, nil); err != nil {
			t.Fatalf("drain delete %d: %v", k, err)
		}
		mustCommit(t, tx)
	}
	for i := 0; i < 8; i++ {
		tx := e.Begin(Optimistic, SnapshotIsolation)
		mustCommit(t, tx)
		e.CollectGarbage(1 << 20)
	}
	if keys := ix.Keys(); keys != 0 {
		t.Fatalf("secondary index still holds %d keys after all rows deleted", keys)
	}
	if _, _, _, _, _, freedAfter := ix.NodeStats(); freedAfter == 0 {
		t.Fatal("no secondary node completed the drain→mark→sweep→free cycle")
	}

	// Revival with duplicates: reload rows; chains refill (reusing pooled
	// nodes) and scans see everything again.
	reviveTx := e.Begin(Pessimistic, ReadCommitted)
	for k := uint64(0); k < rows; k++ {
		if err := reviveTx.Insert(tbl, testPayload(k, k)); err != nil {
			t.Fatalf("revive insert %d: %v", k, err)
		}
	}
	mustCommit(t, reviveTx)
	tx = e.Begin(Optimistic, SnapshotIsolation)
	n := 0
	if err := tx.ScanRange(tbl, 1, 0, secGroups-1, nil, func(*storage.Version) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("revived scan found %d rows, want %d", n, rows)
	}
	mustCommit(t, tx)
}
