// Package tatp implements the Telecommunication Application Transaction
// Processing benchmark used in Section 5.3: four tables with two indexes
// each, seven short transaction types in the standard 35/10/35/2/14/2/2 mix
// (80% read-only, 16% update, 2% insert, 2% delete), and the non-uniform
// subscriber-ID distribution the specification prescribes.
package tatp

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/workload"
)

// Payload layouts. All integers little endian. Strings from the TATP schema
// are represented by fixed-width binary fields of the same size, which
// preserves row widths and update costs without string handling overhead.
//
// SUBSCRIBER:   s_id(8) sub_nbr(8, derived) bits(2) hexes(5) byte2(10)
//
//	msc_location(4) vlr_location(4)                      = 41
//
// ACCESS_INFO:  s_id(8) ai_type(1) data1(1) data2(1) data3(3) data4(5) = 19
// SPECIAL_FAC:  s_id(8) sf_type(1) is_active(1) error_cntrl(1)
//
//	data_a(1) data_b(5)                                  = 17
//
// CALL_FWD:     s_id(8) sf_type(1) start_time(1) end_time(1) numberx(8) = 19
const (
	subscriberSize = 41
	accessInfoSize = 19
	specialFacSize = 17
	callFwdSize    = 19
)

// SubNbr derives the "string" subscriber number key from s_id: the benchmark
// stores the 15-digit decimal representation; we model the separate index
// with an independent 64-bit mix of s_id.
func SubNbr(sID uint64) uint64 {
	k := sID
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}

// Key accessors.
func subSID(p []byte) uint64    { return binary.LittleEndian.Uint64(p) }
func subNbrKey(p []byte) uint64 { return SubNbr(binary.LittleEndian.Uint64(p)) }
func aiSID(p []byte) uint64     { return binary.LittleEndian.Uint64(p) }
func aiComposite(p []byte) uint64 {
	return binary.LittleEndian.Uint64(p)<<2 | uint64(p[8]-1)
}
func sfSID(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }
func sfComposite(p []byte) uint64 {
	return binary.LittleEndian.Uint64(p)<<2 | uint64(p[8]-1)
}
func cfSIDSF(p []byte) uint64 {
	return binary.LittleEndian.Uint64(p)<<2 | uint64(p[8]-1)
}
func cfComposite(p []byte) uint64 {
	return binary.LittleEndian.Uint64(p)<<4 | uint64(p[8]-1)<<2 | uint64(p[9]/8)
}

// Index ordinals.
const (
	// Subscriber indexes: by s_id and by sub_nbr.
	SubBySID, SubByNbr = 0, 1
	// Access info indexes: by (s_id, ai_type) and by s_id.
	AIByComposite, AIBySID = 0, 1
	// Special facility indexes: by (s_id, sf_type) and by s_id.
	SFByComposite, SFBySID = 0, 1
	// Call forwarding indexes: by (s_id, sf_type, start_time) and by
	// (s_id, sf_type).
	CFByComposite, CFBySIDSF = 0, 1
)

// DB bundles the four tables.
type DB struct {
	Database   *core.Database
	Subscriber *core.Table
	AccessInfo *core.Table
	SpecialFac *core.Table
	CallFwd    *core.Table
	// Subscribers is the population size.
	Subscribers uint64
	// Dist is the non-uniform s_id distribution.
	Dist workload.NURand
}

// CreateTables builds the four-table schema with two indexes per table
// (Section 5.3: "four tables with two indexes on each table").
func CreateTables(db *core.Database, subscribers uint64) (*DB, error) {
	buckets := func(rowsPerSub float64) int {
		b := int(float64(subscribers) * rowsPerSub)
		if b < 1024 {
			b = 1024
		}
		return b
	}
	sub, err := db.CreateTable(core.TableSpec{Name: "subscriber", Indexes: []core.IndexSpec{
		{Name: "s_id", Key: subSID, Buckets: buckets(1)},
		{Name: "sub_nbr", Key: subNbrKey, Buckets: buckets(1)},
	}})
	if err != nil {
		return nil, err
	}
	ai, err := db.CreateTable(core.TableSpec{Name: "access_info", Indexes: []core.IndexSpec{
		{Name: "s_id_ai", Key: aiComposite, Buckets: buckets(2.5)},
		{Name: "s_id", Key: aiSID, Buckets: buckets(1)},
	}})
	if err != nil {
		return nil, err
	}
	sf, err := db.CreateTable(core.TableSpec{Name: "special_facility", Indexes: []core.IndexSpec{
		{Name: "s_id_sf", Key: sfComposite, Buckets: buckets(2.5)},
		{Name: "s_id", Key: sfSID, Buckets: buckets(1)},
	}})
	if err != nil {
		return nil, err
	}
	cf, err := db.CreateTable(core.TableSpec{Name: "call_forwarding", Indexes: []core.IndexSpec{
		{Name: "s_id_sf_st", Key: cfComposite, Buckets: buckets(4)},
		{Name: "s_id_sf", Key: cfSIDSF, Buckets: buckets(2.5)},
	}})
	if err != nil {
		return nil, err
	}
	return &DB{
		Database:    db,
		Subscriber:  sub,
		AccessInfo:  ai,
		SpecialFac:  sf,
		CallFwd:     cf,
		Subscribers: subscribers,
		Dist:        workload.NewNURand(subscribers),
	}, nil
}

// Load populates the database per the TATP specification: every subscriber
// has 1-4 access-info rows, 1-4 special-facility rows, and each
// special-facility row has 0-3 call-forwarding rows.
func (d *DB) Load(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for s := uint64(1); s <= d.Subscribers; s++ {
		d.Database.LoadRow(d.Subscriber, subscriberRow(s, rng))
		nAI := 1 + rng.Intn(4)
		aiTypes := rng.Perm(4)[:nAI]
		for _, t := range aiTypes {
			d.Database.LoadRow(d.AccessInfo, accessInfoRow(s, byte(t+1), rng))
		}
		nSF := 1 + rng.Intn(4)
		sfTypes := rng.Perm(4)[:nSF]
		for _, t := range sfTypes {
			d.Database.LoadRow(d.SpecialFac, specialFacRow(s, byte(t+1), rng))
			nCF := rng.Intn(4)
			starts := []byte{0, 8, 16}
			rng.Shuffle(len(starts), func(i, j int) { starts[i], starts[j] = starts[j], starts[i] })
			for c := 0; c < nCF; c++ {
				d.Database.LoadRow(d.CallFwd, callFwdRow(s, byte(t+1), starts[c], rng))
			}
		}
	}
}

func subscriberRow(sID uint64, rng *rand.Rand) []byte {
	p := make([]byte, subscriberSize)
	binary.LittleEndian.PutUint64(p, sID)
	binary.LittleEndian.PutUint64(p[8:], SubNbr(sID))
	for i := 16; i < 33; i++ {
		p[i] = byte(rng.Intn(256))
	}
	binary.LittleEndian.PutUint32(p[33:], rng.Uint32()) // msc_location
	binary.LittleEndian.PutUint32(p[37:], rng.Uint32()) // vlr_location
	return p
}

func accessInfoRow(sID uint64, aiType byte, rng *rand.Rand) []byte {
	p := make([]byte, accessInfoSize)
	binary.LittleEndian.PutUint64(p, sID)
	p[8] = aiType
	for i := 9; i < accessInfoSize; i++ {
		p[i] = byte(rng.Intn(256))
	}
	return p
}

func specialFacRow(sID uint64, sfType byte, rng *rand.Rand) []byte {
	p := make([]byte, specialFacSize)
	binary.LittleEndian.PutUint64(p, sID)
	p[8] = sfType
	// is_active is true in 85% of rows per the spec.
	if rng.Intn(100) < 85 {
		p[9] = 1
	}
	for i := 10; i < specialFacSize; i++ {
		p[i] = byte(rng.Intn(256))
	}
	return p
}

func callFwdRow(sID uint64, sfType, startTime byte, rng *rand.Rand) []byte {
	p := make([]byte, callFwdSize)
	binary.LittleEndian.PutUint64(p, sID)
	p[8] = sfType
	p[9] = startTime
	p[10] = startTime + byte(1+rng.Intn(8)) // end_time
	binary.LittleEndian.PutUint64(p[11:], rng.Uint64())
	return p
}

// Validate performs structural sanity checks after load; used by tests.
func (d *DB) Validate() error {
	tx := d.Database.Begin(core.WithIsolation(core.ReadCommitted))
	// Read-only: abort releases the transaction; there is no commit outcome
	// to check (a deferred Commit would silently drop one if writes ever
	// crept in here — mvlint/errlatch).
	defer func() { _ = tx.Abort() }()
	for s := uint64(1); s <= min(d.Subscribers, 64); s++ {
		row, ok, err := tx.Lookup(d.Subscriber, SubBySID, s, func(p []byte) bool { return subSID(p) == s })
		if err != nil || !ok {
			return fmt.Errorf("tatp: subscriber %d missing (err=%v)", s, err)
		}
		if subSID(row.Payload()) != s {
			return fmt.Errorf("tatp: subscriber %d payload corrupt", s)
		}
		if _, ok, _ = tx.Lookup(d.Subscriber, SubByNbr, SubNbr(s), func(p []byte) bool { return subSID(p) == s }); !ok {
			return fmt.Errorf("tatp: subscriber %d unreachable via sub_nbr", s)
		}
	}
	return nil
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
