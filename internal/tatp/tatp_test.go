package tatp

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

var allSchemes = []core.Scheme{core.SingleVersion, core.MVPessimistic, core.MVOptimistic}

func newTATP(t *testing.T, scheme core.Scheme, subs uint64) *DB {
	t.Helper()
	db, err := core.Open(core.Config{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	td, err := CreateTables(db, subs)
	if err != nil {
		t.Fatal(err)
	}
	td.Load(42)
	t.Cleanup(func() { db.Close() })
	return td
}

func TestLoadAndValidate(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			td := newTATP(t, scheme, 200)
			if err := td.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSubNbrBijective(t *testing.T) {
	seen := make(map[uint64]uint64)
	for s := uint64(1); s <= 100_000; s++ {
		k := SubNbr(s)
		if prev, dup := seen[k]; dup {
			t.Fatalf("SubNbr collision: %d and %d", prev, s)
		}
		seen[k] = s
	}
}

func TestEachTransactionType(t *testing.T) {
	type txnCase struct {
		name string
		fn   func(*core.Tx, *rand.Rand) (int, error)
	}
	for _, scheme := range allSchemes {
		td := newTATP(t, scheme, 500)
		cases := []txnCase{
			{"GET_SUBSCRIBER_DATA", td.GetSubscriberData},
			{"GET_NEW_DESTINATION", td.GetNewDestination},
			{"GET_ACCESS_DATA", td.GetAccessData},
			{"UPDATE_SUBSCRIBER_DATA", td.UpdateSubscriberData},
			{"UPDATE_LOCATION", td.UpdateLocation},
			{"INSERT_CALL_FORWARDING", td.InsertCallForwarding},
			{"DELETE_CALL_FORWARDING", td.DeleteCallForwarding},
		}
		for _, tc := range cases {
			t.Run(scheme.String()+"/"+tc.name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(7))
				commits := 0
				for i := 0; i < 50; i++ {
					tx := td.Database.Begin(core.WithIsolation(core.ReadCommitted))
					_, err := tc.fn(tx, rng)
					if err != nil {
						if !errors.Is(err, errRowExists) {
							t.Fatalf("iteration %d: %v", i, err)
						}
						tx.Abort()
						continue
					}
					if err := tx.Commit(); err != nil {
						t.Fatalf("iteration %d commit: %v", i, err)
					}
					commits++
				}
				if commits == 0 {
					t.Fatal("no transaction of this type ever committed")
				}
			})
		}
	}
}

func TestGetSubscriberAlwaysFinds(t *testing.T) {
	td := newTATP(t, core.MVOptimistic, 300)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		tx := td.Database.Begin()
		reads, err := td.GetSubscriberData(tx, rng)
		if err != nil {
			t.Fatal(err)
		}
		if reads != 1 {
			t.Fatalf("GET_SUBSCRIBER_DATA read %d rows, want 1", reads)
		}
		tx.Commit()
	}
}

func TestInsertDeleteCallForwardingRoundTrip(t *testing.T) {
	td := newTATP(t, core.MVOptimistic, 100)
	rng := rand.New(rand.NewSource(11))
	inserted, deleted := 0, 0
	for i := 0; i < 300; i++ {
		tx := td.Database.Begin()
		_, err := td.InsertCallForwarding(tx, rng)
		if err != nil {
			tx.Abort()
		} else if tx.Commit() == nil {
			inserted++
		}
		tx = td.Database.Begin()
		if _, err := td.DeleteCallForwarding(tx, rng); err != nil {
			tx.Abort()
		} else if tx.Commit() == nil {
			deleted++
		}
	}
	if inserted == 0 || deleted == 0 {
		t.Fatalf("inserted=%d deleted=%d", inserted, deleted)
	}
}

func TestMixWeightsMatchSpec(t *testing.T) {
	td := newTATP(t, core.MVOptimistic, 100)
	mix := td.Mix(core.ReadCommitted)
	weights := map[string]int{}
	total := 0
	for _, m := range mix {
		weights[m.Name] = m.Weight
		total += m.Weight
	}
	if total != 100 {
		t.Fatalf("total weight = %d", total)
	}
	readOnly := weights["GET_SUBSCRIBER_DATA"] + weights["GET_NEW_DESTINATION"] + weights["GET_ACCESS_DATA"]
	if readOnly != 80 {
		t.Fatalf("read-only share = %d%%, want 80%%", readOnly)
	}
	if weights["UPDATE_SUBSCRIBER_DATA"]+weights["UPDATE_LOCATION"] != 16 {
		t.Fatal("update share wrong")
	}
	if weights["INSERT_CALL_FORWARDING"] != 2 || weights["DELETE_CALL_FORWARDING"] != 2 {
		t.Fatal("insert/delete share wrong")
	}
}

func TestMixUnderHarness(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			td := newTATP(t, scheme, 1000)
			res := bench.Run(td.Database, td.Mix(core.ReadCommitted), bench.Options{
				Workers:  4,
				Duration: 100 * time.Millisecond,
				Seed:     5,
			})
			if res.Commits == 0 {
				t.Fatal("no commits")
			}
			if res.AbortRate() > 0.2 {
				t.Fatalf("abort rate %.2f too high for TATP", res.AbortRate())
			}
		})
	}
}
