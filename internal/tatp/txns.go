package tatp

import (
	"encoding/binary"
	"errors"
	"math/rand"

	"repro/internal/bench"
	"repro/internal/core"
)

// errRowExists models the TATP "insert fails if row exists" outcome for
// INSERT_CALL_FORWARDING; the harness counts it as an abort, matching the
// benchmark's failed-transaction accounting.
var errRowExists = errors.New("tatp: call forwarding row exists")

// Lookups of keys the generator may legitimately miss (for example
// DELETE_CALL_FORWARDING of a non-existent row) still commit per the TATP
// specification; "missing" is success with no effect.

func (d *DB) randSID(rng *rand.Rand) uint64 { return d.Dist.Next(rng)%d.Subscribers + 1 }

// GetSubscriberData (35%): read one subscriber row by s_id.
func (d *DB) GetSubscriberData(tx *core.Tx, rng *rand.Rand) (int, error) {
	s := d.randSID(rng)
	reads := 0
	err := tx.Scan(d.Subscriber, SubBySID, s, func(p []byte) bool { return subSID(p) == s },
		func(r core.Row) bool {
			reads++
			return false
		})
	return reads, err
}

// GetNewDestination (10%): read the special facility row for (s_id,
// sf_type); if active, read the call-forwarding rows whose interval covers
// the start time.
func (d *DB) GetNewDestination(tx *core.Tx, rng *rand.Rand) (int, error) {
	s := d.randSID(rng)
	sf := byte(1 + rng.Intn(4))
	start := byte(8 * rng.Intn(3))
	reads := 0
	active := false
	err := tx.Scan(d.SpecialFac, SFByComposite, uint64(s)<<2|uint64(sf-1),
		func(p []byte) bool { return sfSID(p) == s && p[8] == sf },
		func(r core.Row) bool {
			reads++
			active = r.Payload()[9] == 1
			return false
		})
	if err != nil || !active {
		return reads, err
	}
	err = tx.Scan(d.CallFwd, CFBySIDSF, uint64(s)<<2|uint64(sf-1),
		func(p []byte) bool {
			return binary.LittleEndian.Uint64(p) == s && p[8] == sf &&
				p[9] <= start && start < p[10]
		},
		func(r core.Row) bool {
			reads++
			return true
		})
	return reads, err
}

// GetAccessData (35%): read one access-info row by (s_id, ai_type).
func (d *DB) GetAccessData(tx *core.Tx, rng *rand.Rand) (int, error) {
	s := d.randSID(rng)
	ai := byte(1 + rng.Intn(4))
	reads := 0
	err := tx.Scan(d.AccessInfo, AIByComposite, uint64(s)<<2|uint64(ai-1),
		func(p []byte) bool { return aiSID(p) == s && p[8] == ai },
		func(r core.Row) bool {
			reads++
			return false
		})
	return reads, err
}

// UpdateSubscriberData (2%): update bit_1 of a subscriber and data_a of one
// of its special facility rows.
func (d *DB) UpdateSubscriberData(tx *core.Tx, rng *rand.Rand) (int, error) {
	s := d.randSID(rng)
	sf := byte(1 + rng.Intn(4))
	bit := byte(rng.Intn(2))
	if _, err := tx.UpdateWhere(d.Subscriber, SubBySID, s,
		func(p []byte) bool { return subSID(p) == s },
		func(old []byte) []byte {
			nw := append([]byte(nil), old...)
			nw[16] = nw[16]&^1 | bit // bit_1 lives in the low bit of byte 16
			return nw
		}); err != nil {
		return 0, err
	}
	dataA := byte(rng.Intn(256))
	_, err := tx.UpdateWhere(d.SpecialFac, SFByComposite, uint64(s)<<2|uint64(sf-1),
		func(p []byte) bool { return sfSID(p) == s && p[8] == sf },
		func(old []byte) []byte {
			nw := append([]byte(nil), old...)
			nw[10] = dataA
			return nw
		})
	return 0, err
}

// UpdateLocation (14%): update vlr_location of a subscriber found via
// sub_nbr (the secondary index).
func (d *DB) UpdateLocation(tx *core.Tx, rng *rand.Rand) (int, error) {
	s := d.randSID(rng)
	loc := rng.Uint32()
	_, err := tx.UpdateWhere(d.Subscriber, SubByNbr, SubNbr(s),
		func(p []byte) bool { return subSID(p) == s },
		func(old []byte) []byte {
			nw := append([]byte(nil), old...)
			binary.LittleEndian.PutUint32(nw[37:], loc)
			return nw
		})
	return 0, err
}

// InsertCallForwarding (2%): look up the subscriber by sub_nbr, read its
// special facility types, then insert a call-forwarding row; fails if the
// row already exists.
func (d *DB) InsertCallForwarding(tx *core.Tx, rng *rand.Rand) (int, error) {
	s := d.randSID(rng)
	reads := 0
	err := tx.Scan(d.Subscriber, SubByNbr, SubNbr(s),
		func(p []byte) bool { return subSID(p) == s },
		func(r core.Row) bool { reads++; return false })
	if err != nil {
		return reads, err
	}
	var sfTypes []byte
	err = tx.Scan(d.SpecialFac, SFBySID, s,
		func(p []byte) bool { return sfSID(p) == s },
		func(r core.Row) bool {
			reads++
			sfTypes = append(sfTypes, r.Payload()[8])
			return true
		})
	if err != nil {
		return reads, err
	}
	if len(sfTypes) == 0 {
		return reads, nil
	}
	sf := sfTypes[rng.Intn(len(sfTypes))]
	start := byte(8 * rng.Intn(3))
	// The insert fails if a row with this key exists.
	exists := false
	err = tx.Scan(d.CallFwd, CFByComposite, uint64(s)<<4|uint64(sf-1)<<2|uint64(start/8),
		func(p []byte) bool {
			return binary.LittleEndian.Uint64(p) == s && p[8] == sf && p[9] == start
		},
		func(r core.Row) bool { exists = true; return false })
	if err != nil {
		return reads, err
	}
	if exists {
		return reads, errRowExists
	}
	row := callFwdRow(s, sf, start, rng)
	return reads, tx.Insert(d.CallFwd, row)
}

// DeleteCallForwarding (2%): look up the subscriber by sub_nbr and delete a
// call-forwarding row (which may not exist; that is still a success).
func (d *DB) DeleteCallForwarding(tx *core.Tx, rng *rand.Rand) (int, error) {
	s := d.randSID(rng)
	sf := byte(1 + rng.Intn(4))
	start := byte(8 * rng.Intn(3))
	reads := 0
	err := tx.Scan(d.Subscriber, SubByNbr, SubNbr(s),
		func(p []byte) bool { return subSID(p) == s },
		func(r core.Row) bool { reads++; return false })
	if err != nil {
		return reads, err
	}
	_, err = tx.DeleteWhere(d.CallFwd, CFByComposite, uint64(s)<<4|uint64(sf-1)<<2|uint64(start/8),
		func(p []byte) bool {
			return binary.LittleEndian.Uint64(p) == s && p[8] == sf && p[9] == start
		})
	return reads, err
}

// Mix returns the standard TATP transaction mix (Section 5.3: 80% read-only,
// 16% update, 2% insert, 2% delete), running at the given isolation level
// (the paper uses Read Committed).
func (d *DB) Mix(level core.Isolation) []bench.TxType {
	return []bench.TxType{
		{Name: "GET_SUBSCRIBER_DATA", Weight: 35, Isolation: level, Fn: d.GetSubscriberData},
		{Name: "GET_NEW_DESTINATION", Weight: 10, Isolation: level, Fn: d.GetNewDestination},
		{Name: "GET_ACCESS_DATA", Weight: 35, Isolation: level, Fn: d.GetAccessData},
		{Name: "UPDATE_SUBSCRIBER_DATA", Weight: 2, Isolation: level, Fn: d.UpdateSubscriberData},
		{Name: "UPDATE_LOCATION", Weight: 14, Isolation: level, Fn: d.UpdateLocation},
		{Name: "INSERT_CALL_FORWARDING", Weight: 2, Isolation: level, Fn: d.InsertCallForwarding},
		{Name: "DELETE_CALL_FORWARDING", Weight: 2, Isolation: level, Fn: d.DeleteCallForwarding},
	}
}
