package sv

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
	"repro/internal/wal"
)

// Config controls the single-version engine.
type Config struct {
	// Log, when non-nil, receives a redo record per committed writer.
	Log *wal.Log
	// LockTimeout bounds lock waits; expiry aborts the transaction,
	// breaking deadlocks (default 25ms).
	LockTimeout time.Duration
}

// Stats aggregates engine-wide counters.
type Stats struct {
	Commits      uint64
	Aborts       uint64
	LockTimeouts uint64
}

// Engine is the single-version locking storage engine ("1V").
type Engine struct {
	cfg    Config
	txSeq  atomic.Uint64
	endSeq atomic.Uint64

	tablesMu sync.RWMutex
	tables   map[string]*Table

	commits  atomic.Uint64
	aborts   atomic.Uint64
	timeouts atomic.Uint64
}

// NewEngine constructs a single-version engine.
func NewEngine(cfg Config) *Engine {
	if cfg.LockTimeout <= 0 {
		cfg.LockTimeout = 25 * time.Millisecond
	}
	return &Engine{cfg: cfg, tables: make(map[string]*Table)}
}

// Close closes the attached log, if any.
func (e *Engine) Close() error {
	if e.cfg.Log != nil {
		return e.cfg.Log.Close()
	}
	return nil
}

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Commits:      e.commits.Load(),
		Aborts:       e.aborts.Load(),
		LockTimeouts: e.timeouts.Load(),
	}
}

// Table is a single-version table: records linked into one bucket chain per
// index, with the lock table embedded in the buckets.
type Table struct {
	Name    string
	indexes []*index
}

type index struct {
	ord     int
	spec    storage.IndexSpec
	mask    uint64
	buckets []bucket
}

type bucket struct {
	lock keyLock
	head *Record
}

// Record is a single-version record. Payload and chain pointers are read
// under the covering buckets' shared locks and written under exclusive
// locks.
type Record struct {
	payload []byte
	keys    []uint64 // cached index keys, kept in sync with payload
	deleted bool
	next    []*Record
}

// Payload returns the record's current payload. The caller must be holding
// the covering lock (i.e. be inside a scan callback or own the record's
// exclusive lock); the slice must not be modified.
func (r *Record) Payload() []byte { return r.payload }

func mix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}

func (ix *index) bucket(key uint64) *bucket {
	return &ix.buckets[mix(key)&ix.mask]
}

// CreateTable registers a new table.
func (e *Engine) CreateTable(spec storage.TableSpec) (*Table, error) {
	if len(spec.Indexes) == 0 {
		return nil, fmt.Errorf("sv: table %q needs at least one index", spec.Name)
	}
	t := &Table{Name: spec.Name}
	for ord, is := range spec.Indexes {
		if is.Key == nil {
			return nil, fmt.Errorf("sv: table %q index %q has no key function", spec.Name, is.Name)
		}
		n := 1
		for n < is.Buckets {
			n <<= 1
		}
		t.indexes = append(t.indexes, &index{
			ord:     ord,
			spec:    is,
			mask:    uint64(n - 1),
			buckets: make([]bucket, n),
		})
	}
	e.tablesMu.Lock()
	e.tables[spec.Name] = t
	e.tablesMu.Unlock()
	return t, nil
}

// Table returns a table by name.
func (e *Engine) Table(name string) (*Table, bool) {
	e.tablesMu.RLock()
	defer e.tablesMu.RUnlock()
	t, ok := e.tables[name]
	return t, ok
}

// LoadRow inserts a record without locking. Single-threaded bulk load only.
func (e *Engine) LoadRow(t *Table, payload []byte) {
	r := &Record{
		payload: payload,
		keys:    make([]uint64, len(t.indexes)),
		next:    make([]*Record, len(t.indexes)),
	}
	for _, ix := range t.indexes {
		r.keys[ix.ord] = ix.spec.Key(payload)
		b := ix.bucket(r.keys[ix.ord])
		r.next[ix.ord] = b.head
		b.head = r
	}
}

// link adds r to ix's chain; the caller holds the bucket's exclusive lock.
func (ix *index) link(r *Record) {
	b := ix.bucket(r.keys[ix.ord])
	r.next[ix.ord] = b.head
	b.head = r
}

// unlink removes r from ix's chain under key; the caller holds the bucket's
// exclusive lock.
func (ix *index) unlink(r *Record, key uint64) {
	b := ix.bucket(key)
	if b.head == r {
		b.head = r.next[ix.ord]
		return
	}
	for cur := b.head; cur != nil; cur = cur.next[ix.ord] {
		if cur.next[ix.ord] == r {
			cur.next[ix.ord] = r.next[ix.ord]
			return
		}
	}
}
