package sv

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gc"
	"repro/internal/storage"
	"repro/internal/ts"
	"repro/internal/wal"
)

// Config controls the single-version engine.
type Config struct {
	// Log, when non-nil, receives a redo record per committed writer.
	Log *wal.Log
	// LockTimeout bounds lock waits; expiry aborts the transaction,
	// breaking deadlocks (default 25ms).
	LockTimeout time.Duration
	// ReclaimEvery runs a cooperative ordered-index node reclamation round
	// every N finished transactions (default 64). Negative disables
	// cooperative reclamation (ReclaimNodes remains available).
	ReclaimEvery int
	// ReclaimQuota caps nodes swept/freed per cooperative round (default 256).
	ReclaimQuota int
}

// Stats aggregates engine-wide counters.
type Stats struct {
	Commits      uint64
	Aborts       uint64
	LockTimeouts uint64
	// ReadOnlyBegins counts transactions started on the read-only fast lane
	// (BeginReadOnly): no transaction-ID draw, no end-sequence draw.
	ReadOnlyBegins uint64
	// FastCommits counts commits that skipped the end-sequence draw because
	// the transaction wrote nothing.
	FastCommits uint64
	// IndexNodesSwept counts ordered-index skip-list nodes unlinked after
	// their record chain drained.
	IndexNodesSwept uint64
	// IndexNodesFreed counts swept nodes that passed epoch quiescence and
	// were reset into the node reuse pool.
	IndexNodesFreed uint64
}

// Engine is the single-version locking storage engine ("1V").
type Engine struct {
	cfg   Config
	txSeq atomic.Uint64
	// endSeq orders committed writers; draws go through endFunnel so
	// committers whose locked regions overlap in time share one
	// fetch-and-add (the draw still happens while all 2PL locks are held —
	// the funnel linearizes it inside the call; see ts.Funnel).
	endSeq    ts.Oracle
	endFunnel *ts.Funnel

	tablesMu sync.RWMutex
	tables   map[string]*Table

	// nodeEpoch is the reader epoch guarding ordered-index node reuse: the
	// 1V engine has no timestamps, so every skip-list traversal (scans,
	// link/unlink) pins it, and a swept node is reset only once every pin
	// published at or before its unlink has exited. See gc.Epoch.
	nodeEpoch    gc.Epoch
	sinceReclaim atomic.Int64

	commits     atomic.Uint64
	aborts      atomic.Uint64
	timeouts    atomic.Uint64
	roBegins    atomic.Uint64
	fastCommits atomic.Uint64
	nodesSwept  atomic.Uint64
	nodesFreed  atomic.Uint64

	// degraded latches after a log append fails for any reason other than a
	// clean shutdown: new writes fail fast with ErrDegraded, reads keep
	// serving. See the mv engine's identical mechanism.
	degraded     atomic.Bool
	degradeMu    sync.Mutex
	degradeCause error
}

// NewEngine constructs a single-version engine.
func NewEngine(cfg Config) *Engine {
	if cfg.LockTimeout <= 0 {
		cfg.LockTimeout = 25 * time.Millisecond
	}
	if cfg.ReclaimEvery == 0 {
		cfg.ReclaimEvery = 64
	}
	if cfg.ReclaimQuota <= 0 {
		cfg.ReclaimQuota = 256
	}
	e := &Engine{cfg: cfg, tables: make(map[string]*Table)}
	e.endFunnel = ts.NewFunnel(&e.endSeq)
	e.nodeEpoch.Init(0)
	return e
}

// degrade latches the engine read-only after a log failure; a clean log
// shutdown (wal.ErrClosed) does not count.
func (e *Engine) degrade(err error) {
	if err == nil || errors.Is(err, wal.ErrClosed) {
		return
	}
	e.degradeMu.Lock()
	if e.degradeCause == nil {
		e.degradeCause = err
	}
	e.degradeMu.Unlock()
	e.degraded.Store(true)
}

// Degraded returns the latched log failure that flipped the engine
// read-only, or nil while healthy.
func (e *Engine) Degraded() error {
	if !e.degraded.Load() {
		return nil
	}
	e.degradeMu.Lock()
	defer e.degradeMu.Unlock()
	return e.degradeCause
}

// Close closes the attached log, if any.
func (e *Engine) Close() error {
	if e.cfg.Log != nil {
		return e.cfg.Log.Close()
	}
	return nil
}

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Commits:         e.commits.Load(),
		Aborts:          e.aborts.Load(),
		LockTimeouts:    e.timeouts.Load(),
		ReadOnlyBegins:  e.roBegins.Load(),
		FastCommits:     e.fastCommits.Load(),
		IndexNodesSwept: e.nodesSwept.Load(),
		IndexNodesFreed: e.nodesFreed.Load(),
	}
}

// Counters returns the engine's shared sequence counters (transaction IDs
// drawn, end timestamps drawn). The read-only fast lane's contract is that a
// read transaction advances neither.
func (e *Engine) Counters() (txSeq, endSeq uint64) {
	return e.txSeq.Load(), e.endSeq.Current()
}

// FunnelStats returns the end-sequence combining funnel's counters.
// Physical is the number of fetch-and-adds actually issued on the shared
// end-sequence counter.
func (e *Engine) FunnelStats() ts.FunnelStats { return e.endFunnel.Stats() }

// PinTableOverflows reports how many node-epoch pin acquisitions found every
// reader-pin slot occupied (each such entry took the slow registered path).
func (e *Engine) PinTableOverflows() uint64 { return e.nodeEpoch.Overflows() }

// Table is a single-version table: records linked into one chain per index
// key (hash bucket or skip-list node), with the lock machinery embedded in
// the index.
type Table struct {
	Name    string
	indexes []svIndex
	// hashIxs[i] is indexes[i] when it is a hash index, nil otherwise: a
	// concrete-typed fast path that spares the point-access hot loop the
	// interface dispatch (the 1V engine's per-op costs are small enough
	// that an itab check per scan shows up in the profile).
	hashIxs []*hashIndex
}

// svIndex is the single-version analogue of storage.Index: an access method
// over in-place-updated records. The hash implementation embeds a
// reader/writer keyLock per bucket; the ordered implementation locks
// predicate-shaped key ranges in a per-index range-lock manager instead
// (there is no bucket to lock for a key that was never inserted).
type svIndex interface {
	ordinal() int
	ordered() bool
	keyOf(payload []byte) uint64
	// link adds r to the chain for its cached key; the caller holds the
	// covering exclusive lock.
	link(r *Record)
	// unlink removes r from the chain under key; the caller holds the
	// covering exclusive lock.
	unlink(r *Record, key uint64)
}

// hashIndex is the paper's embedded-lock-table hash index: each hash key
// maps to one reader/writer lock covering all records with that hash key,
// which automatically protects against phantoms.
type hashIndex struct {
	ord     int
	spec    storage.IndexSpec
	mask    uint64
	buckets []bucket
}

type bucket struct {
	lock keyLock
	head *Record
}

// orderedIndex is a range-scannable access method: a skip list with one
// record chain per distinct key. Lock coverage is provided by a per-index
// range-lock manager (S ranges for scans, X points for writes) rather than
// per-bucket locks, because phantom protection for ranges must cover keys
// that do not physically exist yet.
//
// Node lifecycle: unlink marks a node whose chain drained (the caller holds
// the X point cover, which serializes against link for the same key); the
// engine's cooperative reclaim round sweeps marked nodes and frees them
// once the reader epoch quiesces. Every traversal of the list — scans and
// link/unlink alike — pins the engine's nodeEpoch (ep), because record
// chains and node keys are plain fields whose reuse must be ordered after
// every reader that could reach the node.
type orderedIndex struct {
	ord  int
	spec storage.IndexSpec
	list storage.SkipList[recordChain]
	rl   svRangeLocks
	ep   *gc.Epoch
}

// recordChain is an ordered-index node value: the head of the key's record
// chain. It is read and written only under a covering range lock.
type recordChain struct {
	head *Record
}

// Record is a single-version record. Payload and chain pointers are read
// under the covering locks (bucket keyLocks for hash indexes, range locks
// for ordered ones) and written under exclusive covers.
type Record struct {
	payload []byte
	keys    []uint64 // cached index keys, kept in sync with payload
	deleted bool
	next    []*Record
}

// Payload returns the record's current payload. The caller must be holding
// the covering lock (i.e. be inside a scan callback or own the record's
// exclusive lock); the slice must not be modified.
func (r *Record) Payload() []byte { return r.payload }

func mix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}

func (ix *hashIndex) ordinal() int              { return ix.ord }
func (ix *hashIndex) ordered() bool             { return false }
func (ix *hashIndex) keyOf(p []byte) uint64     { return ix.spec.Key(p) }
func (ix *hashIndex) bucket(key uint64) *bucket { return &ix.buckets[mix(key)&ix.mask] }

func (ix *hashIndex) link(r *Record) {
	b := ix.bucket(r.keys[ix.ord])
	r.next[ix.ord] = b.head
	b.head = r
}

func (ix *hashIndex) unlink(r *Record, key uint64) {
	b := ix.bucket(key)
	if b.head == r {
		b.head = r.next[ix.ord]
		return
	}
	for cur := b.head; cur != nil; cur = cur.next[ix.ord] {
		if cur.next[ix.ord] == r {
			cur.next[ix.ord] = r.next[ix.ord]
			return
		}
	}
}

func (ix *orderedIndex) ordinal() int          { return ix.ord }
func (ix *orderedIndex) ordered() bool         { return true }
func (ix *orderedIndex) keyOf(p []byte) uint64 { return ix.spec.Key(p) }

// link adds r to its key's chain, reviving a marked node or — if the
// sweeper already unlinked it — retrying with a fresh node. The caller
// holds the X point cover for the key, which serializes chain mutation and
// the emptiness check in unlink; the Revive CAS arbitrates only against the
// asynchronous sweeper.
func (ix *orderedIndex) link(r *Record) {
	slot := ix.ep.Enter()
	for {
		n := ix.list.GetOrCreate(r.keys[ix.ord])
		if !ix.list.Revive(n) {
			continue // node already swept; a fresh node is needed
		}
		r.next[ix.ord] = n.V.head
		n.V.head = r
		break
	}
	ix.ep.Exit(slot)
}

// unlink removes r from its key's chain and marks the node for reclamation
// when the chain drains. The caller holds the X point cover.
func (ix *orderedIndex) unlink(r *Record, key uint64) {
	slot := ix.ep.Enter()
	defer ix.ep.Exit(slot)
	n := ix.list.Get(key)
	if n == nil {
		return
	}
	if n.V.head == r {
		n.V.head = r.next[ix.ord]
	} else {
		for cur := n.V.head; cur != nil; cur = cur.next[ix.ord] {
			if cur.next[ix.ord] == r {
				cur.next[ix.ord] = r.next[ix.ord]
				break
			}
		}
	}
	if n.V.head == nil {
		ix.list.MarkDeleted(n)
	}
}

// CreateTable registers a new table.
func (e *Engine) CreateTable(spec storage.TableSpec) (*Table, error) {
	if len(spec.Indexes) == 0 {
		return nil, fmt.Errorf("sv: table %q needs at least one index", spec.Name)
	}
	t := &Table{Name: spec.Name}
	for ord, is := range spec.Indexes {
		if is.Key == nil {
			return nil, fmt.Errorf("sv: table %q index %q has no key function", spec.Name, is.Name)
		}
		if is.Ordered {
			t.indexes = append(t.indexes, &orderedIndex{ord: ord, spec: is, ep: &e.nodeEpoch})
			t.hashIxs = append(t.hashIxs, nil)
			continue
		}
		n := 1
		for n < is.Buckets {
			n <<= 1
		}
		hix := &hashIndex{
			ord:     ord,
			spec:    is,
			mask:    uint64(n - 1),
			buckets: make([]bucket, n),
		}
		t.indexes = append(t.indexes, hix)
		t.hashIxs = append(t.hashIxs, hix)
	}
	e.tablesMu.Lock()
	e.tables[spec.Name] = t
	e.tablesMu.Unlock()
	return t, nil
}

// Table returns a table by name.
func (e *Engine) Table(name string) (*Table, bool) {
	e.tablesMu.RLock()
	defer e.tablesMu.RUnlock()
	t, ok := e.tables[name]
	return t, ok
}

// maybeReclaim runs a cooperative node reclamation round every
// cfg.ReclaimEvery finished transactions.
func (e *Engine) maybeReclaim() {
	if e.cfg.ReclaimEvery > 0 && e.sinceReclaim.Add(1)%int64(e.cfg.ReclaimEvery) == 0 {
		e.ReclaimNodes(e.cfg.ReclaimQuota)
	}
}

// ReclaimNodes sweeps marked ordered-index nodes out of their skip lists
// and frees swept nodes the reader epoch has quiesced, up to limit of each
// per index. It returns the counts. Safe for concurrent use; normally driven
// cooperatively from Commit/Abort.
func (e *Engine) ReclaimNodes(limit int) (swept, freed int) {
	e.tablesMu.RLock()
	defer e.tablesMu.RUnlock()
	for _, t := range e.tables {
		for _, ix := range t.indexes {
			oix, ok := ix.(*orderedIndex)
			if !ok {
				continue
			}
			if n := oix.list.SweepMarked(e.nodeEpoch.Stamp, limit); n > 0 {
				swept += n
			}
			n := oix.list.FreeDead(e.nodeEpoch.Quiesced, func(c *recordChain) { c.head = nil }, limit)
			freed += n
		}
	}
	if swept > 0 {
		e.nodesSwept.Add(uint64(swept))
	}
	if freed > 0 {
		e.nodesFreed.Add(uint64(freed))
	}
	return swept, freed
}

// LoadRow inserts a record without locking. Single-threaded bulk load only.
func (e *Engine) LoadRow(t *Table, payload []byte) {
	r := &Record{
		payload: payload,
		keys:    make([]uint64, len(t.indexes)),
		next:    make([]*Record, len(t.indexes)),
	}
	for ord, ix := range t.indexes {
		r.keys[ord] = ix.keyOf(payload)
	}
	for _, ix := range t.indexes {
		ix.link(r)
	}
}
