package sv

import (
	"sync"
	"time"
)

// svRangeLocks is a per-ordered-index range lock manager: the single-version
// engine's answer to phantom protection on an access method with no physical
// bucket per key. Scans take a shared lock on the key range [lo, hi] they
// read; writers take an exclusive lock on the point range [k, k] they
// insert, update or delete. Overlapping S/X and X/X requests from different
// transactions conflict; the requester waits with a deadline, and expiry
// aborts the transaction — the same timeout-based deadlock breaking the
// engine's keyLocks use.
//
// Holding an S range to commit (repeatable read and serializable) gives
// both read stability and phantom avoidance: an insert into the scanned
// range blocks until the scanner completes. At read committed the scan
// releases its range when it ends (cursor stability).
//
// Entries also carry the memory-model duty the keyLocks carry for hash
// buckets: a record chain in an ordered index is only read under an S (or X)
// entry covering its key and only written under a conflicting X entry, so
// every read of a chain is ordered after the write that produced it via the
// manager's mutex.
type svRangeLocks struct {
	mu      sync.Mutex
	entries []svRangeEntry
	waitCh  chan struct{}
}

type svRangeEntry struct {
	lo, hi uint64
	txid   uint64
	excl   bool
}

// conflicts reports whether [lo, hi] (excl) collides with an entry of
// another transaction; mu is held.
func (m *svRangeLocks) conflicts(lo, hi, txid uint64, excl bool) bool {
	for i := range m.entries {
		e := &m.entries[i]
		if e.txid == txid {
			continue // recursion and upgrades never self-conflict
		}
		if !excl && !e.excl {
			continue // S/S is compatible
		}
		if e.lo <= hi && lo <= e.hi {
			return true
		}
	}
	return false
}

// acquire takes a lock on [lo, hi], waiting at most timeout for conflicting
// entries to drain.
func (m *svRangeLocks) acquire(lo, hi, txid uint64, excl bool, timeout time.Duration) error {
	var timer *time.Timer
	defer stopTimer(&timer)
	m.mu.Lock()
	for {
		if !m.conflicts(lo, hi, txid, excl) {
			m.entries = append(m.entries, svRangeEntry{lo, hi, txid, excl})
			m.mu.Unlock()
			return nil
		}
		if m.waitCh == nil {
			m.waitCh = make(chan struct{})
		}
		ch := m.waitCh
		m.mu.Unlock()
		if timer == nil {
			if timeout <= 0 {
				return ErrLockTimeout
			}
			timer = time.NewTimer(timeout)
		}
		select {
		case <-ch:
		case <-timer.C:
			return ErrLockTimeout
		}
		m.mu.Lock()
	}
}

// release drops one [lo, hi] entry held by txid and wakes waiters. Releasing
// an entry that is not held is a no-op — including the broadcast: waiters
// are only woken when an entry actually drained, since nothing they could be
// waiting on has changed otherwise. (Unconditional broadcast caused spurious
// wakeup storms at high MPL: every read-committed point scan's release
// re-woke every waiter on the index.)
func (m *svRangeLocks) release(lo, hi, txid uint64, excl bool) {
	m.mu.Lock()
	removed := false
	for i := range m.entries {
		e := m.entries[i]
		if e.txid == txid && e.lo == lo && e.hi == hi && e.excl == excl {
			last := len(m.entries) - 1
			m.entries[i] = m.entries[last]
			m.entries = m.entries[:last]
			removed = true
			break
		}
	}
	if removed && m.waitCh != nil {
		close(m.waitCh)
		m.waitCh = nil
	}
	m.mu.Unlock()
}
