package sv

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/iso"
	"repro/internal/storage"
)

// Non-unique secondary ordered index tests for the 1V engine: records
// relocate between duplicate chains in place (Update unlinks/relinks under
// X covers), whole chains drain and their skip-list nodes go through the
// cooperative reclaim round, and every traversal pins the reader epoch.
// Companion of the MV suite in internal/mv/secondary_test.go; together
// they close the roadmap's "non-unique keys at scale — work but untested"
// note.

const svSecGroups = 4

func svSecGroupKey(p []byte) uint64 { return payloadVal(p) % svSecGroups }

func newSecondaryTestEngine(t *testing.T, timeout time.Duration) (*Engine, *Table) {
	t.Helper()
	e := NewEngine(Config{LockTimeout: timeout, ReclaimEvery: 1, ReclaimQuota: 1 << 20})
	tbl, err := e.CreateTable(storage.TableSpec{
		Name: "t",
		Indexes: []storage.IndexSpec{
			{Name: "pk", Key: payloadKey, Buckets: 1 << 10},
			{Name: "grp", Key: svSecGroupKey, Ordered: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, tbl
}

// TestSVSecondaryRelocation: updates that change the secondary key move the
// record between duplicate chains; scans through both indexes stay
// consistent.
func TestSVSecondaryRelocation(t *testing.T) {
	e, tbl := newSecondaryTestEngine(t, time.Second)
	const rows = 32
	for k := uint64(0); k < rows; k++ {
		e.LoadRow(tbl, testPayload(k, k))
	}
	tx := e.Begin(iso.ReadCommitted)
	moved, err := tx.UpdateWhere(tbl, 1, 0, nil, func(old []byte) []byte {
		return testPayload(payloadKey(old), payloadVal(old)+2) // group 0 → 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if moved != rows/svSecGroups {
		t.Fatalf("moved %d records", moved)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx = e.Begin(iso.ReadCommitted)
	counts := make(map[uint64]int)
	if err := tx.ScanRange(tbl, 1, 0, svSecGroups-1, nil, func(r *Record) bool {
		counts[svSecGroupKey(r.Payload())]++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if counts[0] != 0 || counts[2] != 2*rows/svSecGroups {
		t.Fatalf("groups after relocation: %v", counts)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestSVSecondaryChurnRace: concurrent writers migrate records between
// duplicate chains and delete/re-insert them while readers scan the
// secondary index, with the cooperative reclaim round (ReclaimEvery=1)
// sweeping drained nodes throughout. Locks serialize access (timeouts
// break deadlocks and surface as aborts); -race checks the epoch-gated
// node reuse under many-records-per-key chains.
func TestSVSecondaryChurnRace(t *testing.T) {
	e, tbl := newSecondaryTestEngine(t, 250*time.Millisecond)
	const (
		rows    = 48
		writers = 4
		readers = 2
	)
	opsEach := 300
	if testing.Short() {
		opsEach = 80
	}
	for k := uint64(0); k < rows; k++ {
		e.LoadRow(tbl, testPayload(k, k))
	}

	var wg sync.WaitGroup
	var aborted atomic.Uint64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*331 + 9))
			for i := 0; i < opsEach; i++ {
				k := uint64(rng.Intn(rows))
				tx := e.Begin(iso.ReadCommitted)
				var err error
				if rng.Intn(4) == 0 {
					_, err = tx.DeleteWhere(tbl, 0, k, nil)
				} else {
					var n int
					n, err = tx.UpdateWhere(tbl, 0, k, nil, func(old []byte) []byte {
						return testPayload(payloadKey(old), rng.Uint64())
					})
					if err == nil && n == 0 {
						err = tx.Insert(tbl, testPayload(k, rng.Uint64()))
					}
				}
				if err != nil {
					tx.Abort()
					aborted.Add(1)
					continue
				}
				if tx.Commit() != nil {
					aborted.Add(1)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)*53 + 2))
			for i := 0; i < opsEach; i++ {
				tx := e.Begin(iso.ReadCommitted)
				lo := uint64(rng.Intn(svSecGroups))
				seen := make(map[uint64]bool)
				err := tx.ScanRange(tbl, 1, lo, svSecGroups-1, nil, func(rec *Record) bool {
					k := payloadKey(rec.Payload())
					if seen[k] {
						t.Errorf("record %d scanned twice", k)
					}
					seen[k] = true
					if g := svSecGroupKey(rec.Payload()); g < lo {
						t.Errorf("record %d in group %d leaked into [%d, %d]", k, g, lo, svSecGroups-1)
					}
					return true
				})
				if err != nil {
					tx.Abort()
					aborted.Add(1)
					continue
				}
				if tx.Commit() != nil {
					aborted.Add(1)
				}
			}
		}(r)
	}
	wg.Wait()

	// Settle: the secondary index must agree with the primary row by row.
	tx := e.Begin(iso.RepeatableRead)
	live := make(map[uint64]int)
	if err := tx.ScanRange(tbl, 1, 0, svSecGroups-1, nil, func(r *Record) bool {
		live[payloadKey(r.Payload())]++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for k, n := range live {
		if n != 1 {
			t.Fatalf("record %d appears %d times across secondary chains", k, n)
		}
	}
	for k := uint64(0); k < rows; k++ {
		_, ok, err := tx.Lookup(tbl, 0, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok != (live[k] == 1) {
			t.Fatalf("record %d: pk visible=%v, secondary visible=%v", k, ok, live[k] == 1)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Drain everything; duplicate chains empty record by record and the
	// nodes complete mark → sweep → epoch-quiesce → free.
	for k := uint64(0); k < rows; k++ {
		tx := e.Begin(iso.ReadCommitted)
		if _, err := tx.DeleteWhere(tbl, 0, k, nil); err != nil {
			t.Fatalf("drain delete %d: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("drain commit %d: %v", k, err)
		}
	}
	for i := 0; i < 4; i++ {
		e.ReclaimNodes(1 << 20)
	}
	ix := tbl.indexes[1].(*orderedIndex)
	if keys := ix.list.Len(); keys != 0 {
		t.Fatalf("secondary index holds %d keys after draining all records", keys)
	}
	if created, _, freed := ix.list.Created(), ix.list.Reused(), ix.list.Freed(); freed == 0 || created > 1<<10 {
		t.Fatalf("created=%d freed=%d: reclamation of drained duplicate chains failed", created, freed)
	}
	t.Logf("aborts=%d (lock timeouts breaking deadlocks are expected)", aborted.Load())
}
