package sv

import (
	"errors"
	"testing"
	"time"

	"repro/internal/iso"
	"repro/internal/storage"
)

func newOrderedTestEngine(t *testing.T, timeout time.Duration) (*Engine, *Table) {
	t.Helper()
	e := NewEngine(Config{LockTimeout: timeout})
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Ordered: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, tbl
}

func collectRange(t *testing.T, tx *Tx, tbl *Table, lo, hi uint64) []uint64 {
	t.Helper()
	var keys []uint64
	err := tx.ScanRange(tbl, 0, lo, hi, nil, func(r *Record) bool {
		keys = append(keys, payloadKey(r.Payload()))
		return true
	})
	if err != nil {
		t.Fatalf("ScanRange: %v", err)
	}
	return keys
}

func TestSVScanRangeBasic(t *testing.T) {
	for _, level := range []iso.Level{iso.ReadCommitted, iso.SnapshotIsolation, iso.RepeatableRead, iso.Serializable} {
		t.Run(level.String(), func(t *testing.T) {
			e, tbl := newOrderedTestEngine(t, time.Second)
			for k := uint64(0); k < 100; k++ {
				e.LoadRow(tbl, testPayload(k, k*10))
			}
			tx := e.Begin(level)
			keys := collectRange(t, tx, tbl, 10, 19)
			if len(keys) != 10 {
				t.Fatalf("got %v", keys)
			}
			for i, k := range keys {
				if k != uint64(10+i) {
					t.Fatalf("out of order: %v", keys)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSVScanRangeUnordered(t *testing.T) {
	e, tbl := newTestEngine(t, time.Second)
	tx := e.Begin(iso.ReadCommitted)
	err := tx.ScanRange(tbl, 0, 0, 10, nil, func(*Record) bool { return true })
	if !errors.Is(err, storage.ErrUnordered) {
		t.Fatalf("err = %v, want ErrUnordered", err)
	}
	tx.Abort()
}

// TestSVRangePhantomBlocks: a serializable (or repeatable-read) range scan
// holds a shared range lock to commit, so a concurrent insert into the
// scanned range blocks until the scanner completes — the 1V engine's range
// analogue of its phantom-safe bucket locks.
func TestSVRangePhantomBlocks(t *testing.T) {
	e, tbl := newOrderedTestEngine(t, 2*time.Second)
	for k := uint64(0); k < 30; k += 2 {
		e.LoadRow(tbl, testPayload(k, k))
	}

	t1 := e.Begin(iso.Serializable)
	if got := collectRange(t, t1, tbl, 10, 20); len(got) != 6 {
		t.Fatalf("initial scan: %v", got)
	}

	inserted := make(chan error, 1)
	go func() {
		t2 := e.Begin(iso.ReadCommitted)
		if err := t2.Insert(tbl, testPayload(15, 999)); err != nil {
			t2.Abort()
			inserted <- err
			return
		}
		inserted <- t2.Commit()
	}()

	select {
	case err := <-inserted:
		t.Fatalf("insert into locked range finished early (%v)", err)
	case <-time.After(50 * time.Millisecond):
		// Blocked on the scanner's shared range lock, as required.
	}

	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-inserted:
		if err != nil {
			t.Fatalf("insert failed after scanner release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("insert still blocked after scanner committed")
	}

	t3 := e.Begin(iso.ReadCommitted)
	if got := collectRange(t, t3, tbl, 10, 20); len(got) != 7 {
		t.Fatalf("after insert: %v", got)
	}
	t3.Commit()
}

// TestSVRangeLockTimeout: an insert blocked by a long-held range lock times
// out (the engine's deadlock-breaking discipline applies to range locks).
func TestSVRangeLockTimeout(t *testing.T) {
	e, tbl := newOrderedTestEngine(t, 30*time.Millisecond)
	e.LoadRow(tbl, testPayload(10, 10))
	t1 := e.Begin(iso.Serializable)
	_ = collectRange(t, t1, tbl, 0, 20)
	t2 := e.Begin(iso.ReadCommitted)
	err := t2.Insert(tbl, testPayload(15, 1))
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("err = %v, want ErrLockTimeout", err)
	}
	t2.Abort()
	t1.Commit()
}

// TestSVRangeCursorStabilityRC: at read committed the range lock is released
// when the scan ends, so a subsequent insert does not block.
func TestSVRangeCursorStabilityRC(t *testing.T) {
	e, tbl := newOrderedTestEngine(t, 100*time.Millisecond)
	e.LoadRow(tbl, testPayload(10, 10))
	t1 := e.Begin(iso.ReadCommitted)
	_ = collectRange(t, t1, tbl, 0, 20)
	// t1 is still open but holds no range lock.
	t2 := e.Begin(iso.ReadCommitted)
	if err := t2.Insert(tbl, testPayload(15, 1)); err != nil {
		t.Fatalf("insert blocked by a cursor-stability scan: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	t1.Commit()
}

// TestSVReadOnlyFastLane: BeginReadOnly draws neither the transaction-ID
// sequence nor the end sequence, mutations fail, and reads are stable.
func TestSVReadOnlyFastLane(t *testing.T) {
	e, tbl := newOrderedTestEngine(t, time.Second)
	for k := uint64(0); k < 10; k++ {
		e.LoadRow(tbl, testPayload(k, k))
	}
	txBefore, endBefore := e.Counters()

	ro := e.BeginReadOnly()
	if !ro.ReadOnly() {
		t.Fatal("not read-only")
	}
	if got := collectRange(t, ro, tbl, 0, 9); len(got) != 10 {
		t.Fatalf("scan: %v", got)
	}
	if err := ro.Insert(tbl, testPayload(99, 1)); !errors.Is(err, ErrReadOnlyTx) {
		t.Fatalf("Insert = %v, want ErrReadOnlyTx", err)
	}
	if _, err := ro.UpdateWhere(tbl, 0, 1, nil, func(b []byte) []byte { return b }); !errors.Is(err, ErrReadOnlyTx) {
		t.Fatalf("UpdateWhere = %v, want ErrReadOnlyTx", err)
	}
	if _, err := ro.DeleteWhere(tbl, 0, 1, nil); !errors.Is(err, ErrReadOnlyTx) {
		t.Fatalf("DeleteWhere = %v, want ErrReadOnlyTx", err)
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}

	txAfter, endAfter := e.Counters()
	if txAfter != txBefore || endAfter != endBefore {
		t.Fatalf("read-only txn advanced shared counters: tx %d->%d end %d->%d",
			txBefore, txAfter, endBefore, endAfter)
	}
	s := e.Stats()
	if s.ReadOnlyBegins != 1 || s.FastCommits != 1 {
		t.Fatalf("stats = %+v", s)
	}

	// Read stability: the fast lane holds read locks to commit.
	ro2 := e.BeginReadOnly()
	_ = collectRange(t, ro2, tbl, 0, 9)
	w := e.Begin(iso.ReadCommitted)
	blocked := make(chan error, 1)
	go func() {
		_, err := w.UpdateWhere(tbl, 0, 5, nil, func([]byte) []byte { return testPayload(5, 50) })
		if err != nil {
			w.Abort()
			blocked <- err
			return
		}
		blocked <- w.Commit()
	}()
	select {
	case err := <-blocked:
		t.Fatalf("writer finished (%v) under the reader's range lock", err)
	case <-time.After(50 * time.Millisecond):
	}
	ro2.Commit()
	if err := <-blocked; err != nil {
		t.Fatalf("writer failed after reader release: %v", err)
	}
}
