package sv

import (
	"errors"

	"repro/internal/iso"
	"repro/internal/wal"
)

// Pred is a residual predicate on record payloads; nil matches everything.
type Pred func(payload []byte) bool

var (
	// ErrTxDone is returned when operating on a finished transaction.
	ErrTxDone = errors.New("sv: transaction already finished")
	// ErrConflict is returned when a record changed identity under the
	// transaction (deleted or relocated between lookup and update).
	ErrConflict = errors.New("sv: record conflict")
)

type heldLock struct {
	l    *keyLock
	s, x int
}

type undoKind uint8

const (
	undoInsert undoKind = iota
	undoUpdate
	undoDelete
)

type undoRec struct {
	kind       undoKind
	t          *Table
	r          *Record
	oldPayload []byte
	oldKeys    []uint64
}

// Tx is a single-version transaction: strict two-phase locking with
// cursor-stability reads at read committed, in-place updates with undo.
type Tx struct {
	e    *Engine
	id   uint64
	iso  iso.Level
	done bool

	held   []heldLock
	undo   []undoRec
	writes []wal.Entry
}

// Begin starts a transaction. Snapshot isolation is not expressible in a
// single-version engine; it is upgraded to repeatable read.
func (e *Engine) Begin(level iso.Level) *Tx {
	if level == iso.SnapshotIsolation {
		level = iso.RepeatableRead
	}
	return &Tx{
		e:   e,
		id:  e.txSeq.Add(1),
		iso: level,
	}
}

func (tx *Tx) registered(l *keyLock) *heldLock {
	for i := range tx.held {
		if tx.held[i].l == l {
			return &tx.held[i]
		}
	}
	tx.held = append(tx.held, heldLock{l: l})
	return &tx.held[len(tx.held)-1]
}

// lockS acquires and registers a shared lock held to commit.
func (tx *Tx) lockS(l *keyLock) error {
	if err := l.acquireS(tx.id, tx.e.cfg.LockTimeout); err != nil {
		tx.e.timeouts.Add(1)
		return err
	}
	tx.registered(l).s++
	return nil
}

// lockX acquires and registers an exclusive lock held to commit. A
// transaction that already holds shared locks on the same key upgrades.
func (tx *Tx) lockX(l *keyLock) error {
	heldS := tx.registered(l).s
	if err := l.acquireX(tx.id, heldS, tx.e.cfg.LockTimeout); err != nil {
		tx.e.timeouts.Add(1)
		return err
	}
	tx.registered(l).x++
	return nil
}

func (tx *Tx) releaseAll() {
	for i := range tx.held {
		h := &tx.held[i]
		h.l.releaseBulk(tx.id, h.s, h.x > 0)
	}
	tx.held = nil
}

// Scan iterates the records in index indexOrd whose key equals key and whose
// payload satisfies pred. The bucket's lock covers every record with the
// hash key, so holding it to commit (repeatable read and above) provides
// both read stability and phantom protection; at read committed the lock is
// released when the scan ends (cursor stability). fn must not retain the
// record or its payload beyond the callback unless the isolation level holds
// the lock.
func (tx *Tx) Scan(t *Table, indexOrd int, key uint64, pred Pred, fn func(*Record) bool) error {
	if tx.done {
		return ErrTxDone
	}
	ix := t.indexes[indexOrd]
	b := ix.bucket(key)
	l := &b.lock
	short := tx.iso == iso.ReadCommitted
	if short {
		if err := l.acquireS(tx.id, tx.e.cfg.LockTimeout); err != nil {
			tx.e.timeouts.Add(1)
			return err
		}
		defer l.releaseS(tx.id)
	} else {
		if err := tx.lockS(l); err != nil {
			return err
		}
	}
	for r := b.head; r != nil; r = r.next[indexOrd] {
		if r.deleted || r.keys[indexOrd] != key {
			continue
		}
		if pred != nil && !pred(r.payload) {
			continue
		}
		if !fn(r) {
			break
		}
	}
	return nil
}

// Lookup returns the first matching record.
func (tx *Tx) Lookup(t *Table, indexOrd int, key uint64, pred Pred) (*Record, bool, error) {
	var found *Record
	err := tx.Scan(t, indexOrd, key, pred, func(r *Record) bool {
		found = r
		return false
	})
	if err != nil {
		return nil, false, err
	}
	return found, found != nil, nil
}

// Insert creates a record, exclusively locking and linking it into every
// index bucket it hashes to. Readers of those buckets block until commit.
func (tx *Tx) Insert(t *Table, payload []byte) error {
	if tx.done {
		return ErrTxDone
	}
	r := &Record{
		payload: payload,
		keys:    make([]uint64, len(t.indexes)),
		next:    make([]*Record, len(t.indexes)),
	}
	for _, ix := range t.indexes {
		r.keys[ix.ord] = ix.spec.Key(payload)
	}
	for _, ix := range t.indexes {
		if err := tx.lockX(&ix.bucket(r.keys[ix.ord]).lock); err != nil {
			return err
		}
	}
	for _, ix := range t.indexes {
		ix.link(r)
	}
	tx.undo = append(tx.undo, undoRec{kind: undoInsert, t: t, r: r, oldKeys: append([]uint64(nil), r.keys...)})
	tx.writes = append(tx.writes, wal.Entry{Table: t.Name, Op: wal.OpInsert, Key: r.keys[0], Payload: payload})
	return nil
}

// lockRecordX exclusively locks every bucket covering r, verifying that r's
// identity did not change while the locks were being acquired.
func (tx *Tx) lockRecordX(t *Table, r *Record) ([]uint64, error) {
	keys := append([]uint64(nil), r.keys...)
	for _, ix := range t.indexes {
		if err := tx.lockX(&ix.bucket(keys[ix.ord]).lock); err != nil {
			return nil, err
		}
	}
	for _, ix := range t.indexes {
		if r.keys[ix.ord] != keys[ix.ord] {
			return nil, ErrConflict // relocated concurrently; extremely rare
		}
	}
	if r.deleted {
		return nil, ErrConflict
	}
	return keys, nil
}

// Update overwrites r's payload in place, relocating it between buckets if
// an index key changed.
func (tx *Tx) Update(t *Table, r *Record, newPayload []byte) error {
	if tx.done {
		return ErrTxDone
	}
	oldKeys, err := tx.lockRecordX(t, r)
	if err != nil {
		return err
	}
	newKeys := make([]uint64, len(t.indexes))
	for _, ix := range t.indexes {
		newKeys[ix.ord] = ix.spec.Key(newPayload)
	}
	// Lock destination buckets for any key change before relinking.
	for _, ix := range t.indexes {
		if newKeys[ix.ord] != oldKeys[ix.ord] {
			if err := tx.lockX(&ix.bucket(newKeys[ix.ord]).lock); err != nil {
				return err
			}
		}
	}
	tx.undo = append(tx.undo, undoRec{
		kind:       undoUpdate,
		t:          t,
		r:          r,
		oldPayload: r.payload,
		oldKeys:    oldKeys,
	})
	for _, ix := range t.indexes {
		if newKeys[ix.ord] != oldKeys[ix.ord] {
			ix.unlink(r, oldKeys[ix.ord])
		}
	}
	r.payload = newPayload
	copy(r.keys, newKeys)
	for _, ix := range t.indexes {
		if newKeys[ix.ord] != oldKeys[ix.ord] {
			ix.link(r)
		}
	}
	tx.writes = append(tx.writes, wal.Entry{Table: t.Name, Op: wal.OpUpdate, Key: newKeys[0], Payload: newPayload})
	return nil
}

// Delete marks r deleted; the record is physically unlinked at commit, while
// the exclusive locks are still held.
func (tx *Tx) Delete(t *Table, r *Record) error {
	if tx.done {
		return ErrTxDone
	}
	oldKeys, err := tx.lockRecordX(t, r)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRec{
		kind:       undoDelete,
		t:          t,
		r:          r,
		oldPayload: r.payload,
		oldKeys:    oldKeys,
	})
	r.deleted = true
	tx.writes = append(tx.writes, wal.Entry{Table: t.Name, Op: wal.OpDelete, Key: oldKeys[0]})
	return nil
}

// UpdateWhere updates every matching record with mut(old payload), returning
// the number updated.
func (tx *Tx) UpdateWhere(t *Table, indexOrd int, key uint64, pred Pred, mut func(old []byte) []byte) (int, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	var targets []*Record
	// Hold the bucket lock for the duration regardless of isolation: the
	// scan feeds an update, so cursor stability must extend to the write.
	ix := t.indexes[indexOrd]
	l := &ix.bucket(key).lock
	if err := tx.lockS(l); err != nil {
		return 0, err
	}
	b := ix.bucket(key)
	for r := b.head; r != nil; r = r.next[indexOrd] {
		if r.deleted || r.keys[indexOrd] != key {
			continue
		}
		if pred != nil && !pred(r.payload) {
			continue
		}
		targets = append(targets, r)
	}
	for _, r := range targets {
		if err := tx.Update(t, r, mut(r.payload)); err != nil {
			return 0, err
		}
	}
	return len(targets), nil
}

// DeleteWhere deletes every matching record, returning the number deleted.
func (tx *Tx) DeleteWhere(t *Table, indexOrd int, key uint64, pred Pred) (int, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	var targets []*Record
	ix := t.indexes[indexOrd]
	l := &ix.bucket(key).lock
	if err := tx.lockS(l); err != nil {
		return 0, err
	}
	b := ix.bucket(key)
	for r := b.head; r != nil; r = r.next[indexOrd] {
		if r.deleted || r.keys[indexOrd] != key {
			continue
		}
		if pred != nil && !pred(r.payload) {
			continue
		}
		targets = append(targets, r)
	}
	for _, r := range targets {
		if err := tx.Delete(t, r); err != nil {
			return 0, err
		}
	}
	return len(targets), nil
}

// Commit writes the redo record, physically removes deleted records (still
// under their exclusive locks), and releases all locks.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	endTS := tx.e.endSeq.Add(1)
	if tx.e.cfg.Log != nil && len(tx.writes) > 0 {
		rec := &wal.Record{TxID: tx.id, EndTS: endTS, Ops: tx.writes}
		if err := tx.e.cfg.Log.Append(rec); err != nil {
			tx.rollback()
			return err
		}
	}
	for i := range tx.undo {
		u := &tx.undo[i]
		if u.kind == undoDelete {
			for _, ix := range u.t.indexes {
				ix.unlink(u.r, u.r.keys[ix.ord])
			}
		}
	}
	tx.releaseAll()
	tx.done = true
	tx.e.commits.Add(1)
	return nil
}

// Abort rolls back all changes and releases all locks.
func (tx *Tx) Abort() error {
	if tx.done {
		return ErrTxDone
	}
	tx.rollback()
	return nil
}

func (tx *Tx) rollback() {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := &tx.undo[i]
		switch u.kind {
		case undoInsert:
			for _, ix := range u.t.indexes {
				ix.unlink(u.r, u.r.keys[ix.ord])
			}
		case undoUpdate:
			changed := make([]bool, len(u.t.indexes))
			for _, ix := range u.t.indexes {
				if u.r.keys[ix.ord] != u.oldKeys[ix.ord] {
					changed[ix.ord] = true
					ix.unlink(u.r, u.r.keys[ix.ord])
				}
			}
			u.r.payload = u.oldPayload
			copy(u.r.keys, u.oldKeys)
			for _, ix := range u.t.indexes {
				if changed[ix.ord] {
					ix.link(u.r)
				}
			}
		case undoDelete:
			u.r.deleted = false
		}
	}
	tx.releaseAll()
	tx.done = true
	tx.e.aborts.Add(1)
}
