package sv

import (
	"errors"

	"repro/internal/iso"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Pred is a residual predicate on record payloads; nil matches everything.
type Pred func(payload []byte) bool

var (
	// ErrTxDone is returned when operating on a finished transaction.
	ErrTxDone = errors.New("sv: transaction already finished")
	// ErrConflict is returned when a record changed identity under the
	// transaction (deleted or relocated between lookup and update).
	ErrConflict = errors.New("sv: record conflict")
	// ErrReadOnlyTx is returned when a mutation is attempted on a read-only
	// fast-lane transaction (BeginReadOnly).
	ErrReadOnlyTx = errors.New("sv: read-only transaction cannot write")
)

// ErrDegraded is returned by mutation entry points after a latched log
// failure flipped the engine into degraded read-only mode. It aliases
// wal.ErrDegraded so errors.Is matches across packages.
var ErrDegraded = wal.ErrDegraded

type heldLock struct {
	l    *keyLock
	s, x int
}

// rangeHold is one range-lock entry held to commit.
type rangeHold struct {
	m      *svRangeLocks
	lo, hi uint64
	excl   bool
}

type undoKind uint8

const (
	undoInsert undoKind = iota
	undoUpdate
	undoDelete
)

type undoRec struct {
	kind       undoKind
	t          *Table
	r          *Record
	oldPayload []byte
	oldKeys    []uint64
}

// Tx is a single-version transaction: strict two-phase locking with
// cursor-stability reads at read committed, in-place updates with undo.
type Tx struct {
	e    *Engine
	id   uint64
	iso  iso.Level
	done bool
	// readOnly marks a fast-lane reader from BeginReadOnly: it drew no
	// transaction ID (id 0 — shared locks carry no owner identity, so none
	// is needed), draws no end sequence at commit, and rejects mutations.
	readOnly bool

	held       []heldLock
	heldRanges []rangeHold
	undo       []undoRec
	writes     []wal.Entry
}

// Begin starts a transaction. Snapshot isolation is not expressible in a
// single-version engine; it is upgraded to repeatable read.
func (e *Engine) Begin(level iso.Level) *Tx {
	if level == iso.SnapshotIsolation {
		level = iso.RepeatableRead
	}
	return &Tx{
		e:   e,
		id:  e.txSeq.Add(1),
		iso: level,
	}
}

// BeginReadOnly starts a read-only transaction on the 1V fast lane: it draws
// no transaction ID (shared lock acquisition needs no owner identity) and
// its commit skips the end-sequence draw, so — like the multiversion
// engine's BeginReadOnly — a read transaction performs zero shared-counter
// increments. Reads run at repeatable read (read locks held to commit), the
// strongest consistency a read-only transaction needs in this engine; every
// mutation fails with ErrReadOnlyTx.
//
// Unlike the MV fast lane this does not make reads lock-free: single-version
// records have no timestamps, so even read-only transactions must take
// shared locks for read stability (Section 5.2.1). The fast lane removes the
// two shared counters, not the locks.
func (e *Engine) BeginReadOnly() *Tx {
	e.roBegins.Add(1)
	return &Tx{e: e, iso: iso.RepeatableRead, readOnly: true}
}

// ReadOnly reports whether the transaction is a fast-lane reader.
func (tx *Tx) ReadOnly() bool { return tx.readOnly }

func (tx *Tx) registered(l *keyLock) *heldLock {
	for i := range tx.held {
		if tx.held[i].l == l {
			return &tx.held[i]
		}
	}
	tx.held = append(tx.held, heldLock{l: l})
	return &tx.held[len(tx.held)-1]
}

// lockS acquires and registers a shared lock held to commit.
func (tx *Tx) lockS(l *keyLock) error {
	if err := l.acquireS(tx.id, tx.e.cfg.LockTimeout); err != nil {
		tx.e.timeouts.Add(1)
		return err
	}
	tx.registered(l).s++
	return nil
}

// lockX acquires and registers an exclusive lock held to commit. A
// transaction that already holds shared locks on the same key upgrades.
func (tx *Tx) lockX(l *keyLock) error {
	heldS := tx.registered(l).s
	if err := l.acquireX(tx.id, heldS, tx.e.cfg.LockTimeout); err != nil {
		tx.e.timeouts.Add(1)
		return err
	}
	tx.registered(l).x++
	return nil
}

// lockRange acquires a range lock held to commit on an ordered index.
func (tx *Tx) lockRange(m *svRangeLocks, lo, hi uint64, excl bool) error {
	if err := m.acquire(lo, hi, tx.id, excl, tx.e.cfg.LockTimeout); err != nil {
		tx.e.timeouts.Add(1)
		return err
	}
	tx.heldRanges = append(tx.heldRanges, rangeHold{m, lo, hi, excl})
	return nil
}

func (tx *Tx) releaseAll() {
	for i := range tx.held {
		h := &tx.held[i]
		h.l.releaseBulk(tx.id, h.s, h.x > 0)
	}
	tx.held = nil
	for i := range tx.heldRanges {
		h := &tx.heldRanges[i]
		h.m.release(h.lo, h.hi, tx.id, h.excl)
	}
	tx.heldRanges = nil
}

// Scan iterates the records in index indexOrd whose key equals key and whose
// payload satisfies pred. On a hash index the bucket's lock covers every
// record with the hash key; on an ordered index a range lock on [key, key]
// covers the key whether or not it physically exists. Holding the cover to
// commit (repeatable read and above) provides both read stability and
// phantom protection; at read committed the cover is released when the scan
// ends (cursor stability). fn must not retain the record or its payload
// beyond the callback unless the isolation level holds the lock.
func (tx *Tx) Scan(t *Table, indexOrd int, key uint64, pred Pred, fn func(*Record) bool) error {
	if tx.done {
		return ErrTxDone
	}
	short := tx.iso == iso.ReadCommitted
	if ix := t.hashIxs[indexOrd]; ix != nil {
		b := ix.bucket(key)
		l := &b.lock
		if short {
			if err := l.acquireS(tx.id, tx.e.cfg.LockTimeout); err != nil {
				tx.e.timeouts.Add(1)
				return err
			}
			defer l.releaseS(tx.id)
		} else {
			if err := tx.lockS(l); err != nil {
				return err
			}
		}
		scanChain(b.head, indexOrd, key, pred, fn)
		return nil
	}
	ix := t.indexes[indexOrd].(*orderedIndex)
	if short {
		if err := ix.rl.acquire(key, key, tx.id, false, tx.e.cfg.LockTimeout); err != nil {
			tx.e.timeouts.Add(1)
			return err
		}
		defer ix.rl.release(key, key, tx.id, false)
	} else {
		if err := tx.lockRange(&ix.rl, key, key, false); err != nil {
			return err
		}
	}
	// Pin the reader epoch across the traversal so the node (and its chain)
	// cannot be reset by the reclaimer while we hold pointers into it.
	slot := ix.ep.Enter()
	defer ix.ep.Exit(slot)
	n := ix.list.Get(key)
	if n == nil {
		return nil
	}
	scanChain(n.V.head, indexOrd, key, pred, fn)
	return nil
}

// scanChain walks one record chain, filtering deleted records, key
// mismatches (hash collisions) and the residual predicate.
func scanChain(head *Record, ord int, key uint64, pred Pred, fn func(*Record) bool) {
	for r := head; r != nil; r = r.next[ord] {
		if r.deleted || r.keys[ord] != key {
			continue
		}
		if pred != nil && !pred(r.payload) {
			continue
		}
		if !fn(r) {
			return
		}
	}
}

// ScanRange iterates the records with keys in [lo, hi] (inclusive) in
// ascending key order. The index must be Ordered or storage.ErrUnordered is
// returned. The scan takes a shared range lock on [lo, hi]: held to commit
// at repeatable read and serializable (read stability + phantom avoidance —
// an insert into the range blocks until the scanner completes), released at
// end of scan at read committed (cursor stability).
func (tx *Tx) ScanRange(t *Table, indexOrd int, lo, hi uint64, pred Pred, fn func(*Record) bool) error {
	if tx.done {
		return ErrTxDone
	}
	ix, ok := t.indexes[indexOrd].(*orderedIndex)
	if !ok {
		return storage.ErrUnordered
	}
	if lo > hi {
		return nil
	}
	short := tx.iso == iso.ReadCommitted
	if short {
		if err := ix.rl.acquire(lo, hi, tx.id, false, tx.e.cfg.LockTimeout); err != nil {
			tx.e.timeouts.Add(1)
			return err
		}
		defer ix.rl.release(lo, hi, tx.id, false)
	} else {
		if err := tx.lockRange(&ix.rl, lo, hi, false); err != nil {
			return err
		}
	}
	// Pin the reader epoch for the duration of the cursor walk: swept nodes
	// keep their outgoing pointers until quiescence, so a cursor parked on
	// one continues into the live list; the pin is what defers the reset.
	slot := ix.ep.Enter()
	defer ix.ep.Exit(slot)
	for n := ix.list.Seek(lo); n != nil && n.Key() <= hi; n = n.Next() {
		for r := n.V.head; r != nil; r = r.next[indexOrd] {
			if r.deleted {
				continue
			}
			if pred != nil && !pred(r.payload) {
				continue
			}
			if !fn(r) {
				return nil
			}
		}
	}
	return nil
}

// Lookup returns the first matching record.
func (tx *Tx) Lookup(t *Table, indexOrd int, key uint64, pred Pred) (*Record, bool, error) {
	var found *Record
	err := tx.Scan(t, indexOrd, key, pred, func(r *Record) bool {
		found = r
		return false
	})
	if err != nil {
		return nil, false, err
	}
	return found, found != nil, nil
}

// lockKeyX takes the exclusive cover for key on one index: the bucket lock
// of a hash index, or an X point-range on an ordered one.
func (tx *Tx) lockKeyX(ix svIndex, key uint64) error {
	switch ix := ix.(type) {
	case *hashIndex:
		return tx.lockX(&ix.bucket(key).lock)
	case *orderedIndex:
		return tx.lockRange(&ix.rl, key, key, true)
	}
	return ErrConflict // unreachable
}

// Insert creates a record, exclusively locking its key cover in every index
// and linking it. Readers of those covers block until commit.
func (tx *Tx) Insert(t *Table, payload []byte) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.readOnly {
		return ErrReadOnlyTx
	}
	if tx.e.degraded.Load() {
		return ErrDegraded
	}
	r := &Record{
		payload: payload,
		keys:    make([]uint64, len(t.indexes)),
		next:    make([]*Record, len(t.indexes)),
	}
	for ord, ix := range t.indexes {
		r.keys[ord] = ix.keyOf(payload)
	}
	for ord, ix := range t.indexes {
		if err := tx.lockKeyX(ix, r.keys[ord]); err != nil {
			return err
		}
	}
	for _, ix := range t.indexes {
		ix.link(r)
	}
	tx.undo = append(tx.undo, undoRec{kind: undoInsert, t: t, r: r, oldKeys: append([]uint64(nil), r.keys...)})
	tx.writes = append(tx.writes, wal.Entry{Table: t.Name, Op: wal.OpInsert, Key: r.keys[0], Payload: payload})
	return nil
}

// lockRecordX exclusively locks every cover of r, verifying that r's
// identity did not change while the locks were being acquired.
func (tx *Tx) lockRecordX(t *Table, r *Record) ([]uint64, error) {
	keys := append([]uint64(nil), r.keys...)
	for ord, ix := range t.indexes {
		if err := tx.lockKeyX(ix, keys[ord]); err != nil {
			return nil, err
		}
	}
	for ord := range t.indexes {
		if r.keys[ord] != keys[ord] {
			return nil, ErrConflict // relocated concurrently; extremely rare
		}
	}
	if r.deleted {
		return nil, ErrConflict
	}
	return keys, nil
}

// Update overwrites r's payload in place, relocating it between chains if an
// index key changed.
func (tx *Tx) Update(t *Table, r *Record, newPayload []byte) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.readOnly {
		return ErrReadOnlyTx
	}
	if tx.e.degraded.Load() {
		return ErrDegraded
	}
	oldKeys, err := tx.lockRecordX(t, r)
	if err != nil {
		return err
	}
	newKeys := make([]uint64, len(t.indexes))
	for ord, ix := range t.indexes {
		newKeys[ord] = ix.keyOf(newPayload)
	}
	// Lock destination covers for any key change before relinking.
	for ord, ix := range t.indexes {
		if newKeys[ord] != oldKeys[ord] {
			if err := tx.lockKeyX(ix, newKeys[ord]); err != nil {
				return err
			}
		}
	}
	tx.undo = append(tx.undo, undoRec{
		kind:       undoUpdate,
		t:          t,
		r:          r,
		oldPayload: r.payload,
		oldKeys:    oldKeys,
	})
	for ord, ix := range t.indexes {
		if newKeys[ord] != oldKeys[ord] {
			ix.unlink(r, oldKeys[ord])
		}
	}
	r.payload = newPayload
	copy(r.keys, newKeys)
	for ord, ix := range t.indexes {
		if newKeys[ord] != oldKeys[ord] {
			ix.link(r)
		}
	}
	tx.writes = append(tx.writes, wal.Entry{Table: t.Name, Op: wal.OpUpdate, Key: newKeys[0], Payload: newPayload})
	return nil
}

// Delete marks r deleted; the record is physically unlinked at commit, while
// the exclusive locks are still held.
func (tx *Tx) Delete(t *Table, r *Record) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.readOnly {
		return ErrReadOnlyTx
	}
	if tx.e.degraded.Load() {
		return ErrDegraded
	}
	oldKeys, err := tx.lockRecordX(t, r)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoRec{
		kind:       undoDelete,
		t:          t,
		r:          r,
		oldPayload: r.payload,
		oldKeys:    oldKeys,
	})
	r.deleted = true
	tx.writes = append(tx.writes, wal.Entry{Table: t.Name, Op: wal.OpDelete, Key: oldKeys[0]})
	return nil
}

// collectMatches locks the cover for key shared-held-to-commit (the scan
// feeds an update, so cursor stability must extend to the write) and returns
// the matching records.
func (tx *Tx) collectMatches(t *Table, indexOrd int, key uint64, pred Pred) ([]*Record, error) {
	var targets []*Record
	var head *Record
	switch ix := t.indexes[indexOrd].(type) {
	case *hashIndex:
		b := ix.bucket(key)
		if err := tx.lockS(&b.lock); err != nil {
			return nil, err
		}
		head = b.head
	case *orderedIndex:
		if err := tx.lockRange(&ix.rl, key, key, false); err != nil {
			return nil, err
		}
		slot := ix.ep.Enter()
		if n := ix.list.Get(key); n != nil {
			head = n.V.head
		}
		defer ix.ep.Exit(slot)
	}
	for r := head; r != nil; r = r.next[indexOrd] {
		if r.deleted || r.keys[indexOrd] != key {
			continue
		}
		if pred != nil && !pred(r.payload) {
			continue
		}
		targets = append(targets, r)
	}
	return targets, nil
}

// UpdateWhere updates every matching record with mut(old payload), returning
// the number updated.
func (tx *Tx) UpdateWhere(t *Table, indexOrd int, key uint64, pred Pred, mut func(old []byte) []byte) (int, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	if tx.readOnly {
		return 0, ErrReadOnlyTx
	}
	targets, err := tx.collectMatches(t, indexOrd, key, pred)
	if err != nil {
		return 0, err
	}
	for _, r := range targets {
		if err := tx.Update(t, r, mut(r.payload)); err != nil {
			return 0, err
		}
	}
	return len(targets), nil
}

// DeleteWhere deletes every matching record, returning the number deleted.
func (tx *Tx) DeleteWhere(t *Table, indexOrd int, key uint64, pred Pred) (int, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	if tx.readOnly {
		return 0, ErrReadOnlyTx
	}
	targets, err := tx.collectMatches(t, indexOrd, key, pred)
	if err != nil {
		return 0, err
	}
	for _, r := range targets {
		if err := tx.Delete(t, r); err != nil {
			return 0, err
		}
	}
	return len(targets), nil
}

// Commit writes the redo record, physically removes deleted records (still
// under their exclusive locks), and releases all locks. Transactions that
// wrote nothing — read-only fast-lane transactions always, but also plain
// transactions that only read — skip the end-sequence draw entirely: with no
// redo record to order, the commit point needs no position in the global
// commit order.
func (tx *Tx) Commit() error {
	_, err := tx.CommitTS()
	return err
}

// CommitTS commits like Commit and additionally returns the end sequence
// number drawn for the redo record — the writer's position in the global
// commit order. Transactions that wrote nothing return 0: they draw no end
// sequence, and under strict two-phase locking their serialization point is
// anywhere inside the locked region, so history checkers stamp them
// externally while the locks are still held (see
// internal/core/serializability_test.go).
//
//mvlint:noalloc
func (tx *Tx) CommitTS() (uint64, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	if len(tx.writes) == 0 && len(tx.undo) == 0 {
		tx.releaseAll()
		tx.done = true
		tx.e.commits.Add(1)
		tx.e.fastCommits.Add(1)
		tx.e.maybeReclaim()
		return 0, nil
	}
	// The draw goes through the combining funnel while every 2PL lock is
	// still held (they release in releaseAll below): committers whose
	// locked regions are disjoint are serialized by those locks and reach
	// the funnel strictly after the earlier one's draw returned, so sharing
	// a fetch-and-add never reorders the commit sequence across a lock
	// release. NextLocked because of exactly those held locks: the funnel
	// must not yield inside our locked region. See ts.Funnel.
	endTS := tx.e.endFunnel.NextLocked()
	if tx.e.cfg.Log != nil && len(tx.writes) > 0 {
		rec := &wal.Record{TxID: tx.id, EndTS: endTS, Ops: tx.writes}
		if err := tx.e.cfg.Log.Append(rec); err != nil {
			// The in-flight commit rolls back, and the engine flips
			// read-only: a log that cannot accept records cannot back any
			// future acknowledgement either. The end sequence is returned
			// with the error: after a power loss the record may still sit
			// below the surviving torn tail, and crash harnesses need the
			// timestamp to place such an unknown-outcome transaction when
			// recovery proves it durable.
			tx.e.degrade(err)
			tx.rollback()
			return endTS, err
		}
	}
	for i := range tx.undo {
		u := &tx.undo[i]
		if u.kind == undoDelete {
			for ord, ix := range u.t.indexes {
				ix.unlink(u.r, u.r.keys[ord])
			}
		}
	}
	tx.releaseAll()
	tx.done = true
	tx.e.commits.Add(1)
	tx.e.maybeReclaim()
	return endTS, nil
}

// Abort rolls back all changes and releases all locks.
func (tx *Tx) Abort() error {
	if tx.done {
		return ErrTxDone
	}
	tx.rollback()
	return nil
}

func (tx *Tx) rollback() {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := &tx.undo[i]
		switch u.kind {
		case undoInsert:
			for ord, ix := range u.t.indexes {
				ix.unlink(u.r, u.r.keys[ord])
			}
		case undoUpdate:
			changed := make([]bool, len(u.t.indexes))
			for ord, ix := range u.t.indexes {
				if u.r.keys[ord] != u.oldKeys[ord] {
					changed[ord] = true
					ix.unlink(u.r, u.r.keys[ord])
				}
			}
			u.r.payload = u.oldPayload
			copy(u.r.keys, u.oldKeys)
			for ord, ix := range u.t.indexes {
				if changed[ord] {
					ix.link(u.r)
				}
			}
		case undoDelete:
			u.r.deleted = false
		}
	}
	tx.releaseAll()
	tx.done = true
	tx.e.aborts.Add(1)
	tx.e.maybeReclaim()
}
