package sv

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/iso"
)

func svInsert(t *testing.T, e *Engine, tbl *Table, k uint64) {
	t.Helper()
	tx := e.Begin(iso.ReadCommitted)
	if err := tx.Insert(tbl, testPayload(k, k)); err != nil {
		t.Fatalf("insert %d: %v", k, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit insert %d: %v", k, err)
	}
}

func svDelete(t *testing.T, e *Engine, tbl *Table, k uint64) {
	t.Helper()
	tx := e.Begin(iso.ReadCommitted)
	if _, err := tx.DeleteWhere(tbl, 0, k, nil); err != nil {
		t.Fatalf("delete %d: %v", k, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit delete %d: %v", k, err)
	}
}

// TestSVNodeChurnBounded: the 1V ordered index must also shed skip-list
// nodes when keys die — commit-time physical deletes drain the chain, the
// cooperative reclaim round sweeps the node, and the reader epoch gates the
// reset.
func TestSVNodeChurnBounded(t *testing.T) {
	e, tbl := newOrderedTestEngine(t, 0)
	const (
		window = 100
		total  = 4000
	)
	for i := 0; i < total; i++ {
		svInsert(t, e, tbl, uint64(i))
		if i >= window {
			svDelete(t, e, tbl, uint64(i-window))
		}
	}
	// Drain: a few explicit rounds (each advances the epoch, so the
	// previous round's sweeps quiesce).
	for i := 0; i < 4; i++ {
		e.ReclaimNodes(1 << 20)
	}

	ix := tbl.indexes[0].(*orderedIndex)
	if keys := ix.list.Len(); keys > window+16 {
		t.Fatalf("live nodes = %d after churn, want ~%d: nodes are leaking", keys, window)
	}
	created, reused, freed := ix.list.Created(), ix.list.Reused(), ix.list.Freed()
	t.Logf("live=%d dead=%d pooled=%d created=%d reused=%d freed=%d",
		ix.list.Len(), ix.list.DeadLen(), ix.list.PoolLen(), created, reused, freed)
	if created > total/2 {
		t.Fatalf("allocated %d nodes for %d inserts over a %d-key window", created, total, window)
	}
	if reused == 0 || freed == 0 {
		t.Fatalf("reused=%d freed=%d: reclamation never completed", reused, freed)
	}
	st := e.Stats()
	if st.IndexNodesSwept == 0 || st.IndexNodesFreed == 0 {
		t.Fatalf("engine stats: swept=%d freed=%d", st.IndexNodesSwept, st.IndexNodesFreed)
	}

	// The live window reads back intact.
	tx := e.Begin(iso.ReadCommitted)
	keys := collectRange(t, tx, tbl, 0, total)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(keys) != window {
		t.Fatalf("scan found %d keys, want %d", len(keys), window)
	}
	for i, k := range keys {
		if k != uint64(total-window+i) {
			t.Fatalf("scan window wrong: %v...", keys[:8])
		}
	}
}

// TestSVNodeRevival: re-inserting a key whose node was marked (or already
// swept) must revive or recreate the node.
func TestSVNodeRevival(t *testing.T) {
	e, tbl := newOrderedTestEngine(t, 0)
	for round := 0; round < 50; round++ {
		k := uint64(7)
		svInsert(t, e, tbl, k)
		svDelete(t, e, tbl, k)
		e.ReclaimNodes(1 << 20) // sweep the marked node
		svInsert(t, e, tbl, k)  // revive (or recreate) it
		tx := e.Begin(iso.ReadCommitted)
		got := collectRange(t, tx, tbl, k, k)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != k {
			t.Fatalf("round %d: revived key reads %v, want [7]", round, got)
		}
		svDelete(t, e, tbl, k)
	}
	for i := 0; i < 3; i++ {
		e.ReclaimNodes(1 << 20)
	}
	ix := tbl.indexes[0].(*orderedIndex)
	if n := ix.list.Len(); n != 0 {
		t.Fatalf("live nodes = %d after final delete, want 0", n)
	}
}

// TestSVScanReclaimChurnRace interleaves 1V range scans (epoch-pinned
// cursors) with concurrent deletion, reclamation, and revival under -race.
func TestSVScanReclaimChurnRace(t *testing.T) {
	e, tbl := newOrderedTestEngine(t, 250*time.Millisecond)
	const (
		stripes = 4
		domain  = 512
		iters   = 1200
	)
	var fail atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters && !fail.Load(); i++ {
				k := uint64((i%domain)*stripes + w)
				tx := e.Begin(iso.ReadCommitted)
				if err := tx.Insert(tbl, testPayload(k, k)); err != nil {
					tx.Abort()
					continue
				}
				if tx.Commit() != nil {
					continue
				}
				tx = e.Begin(iso.ReadCommitted)
				if _, err := tx.DeleteWhere(tbl, 0, k, nil); err != nil {
					tx.Abort()
					continue
				}
				tx.Commit()
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lo, hi := uint64(0), uint64(domain*stripes)
			for i := 0; i < iters/6 && !fail.Load(); i++ {
				var tx *Tx
				if r == 0 {
					tx = e.Begin(iso.ReadCommitted) // cursor stability: lock released at scan end
				} else {
					tx = e.BeginReadOnly()
				}
				prev := int64(-1)
				err := tx.ScanRange(tbl, 0, lo, hi, nil, func(rec *Record) bool {
					k := payloadKey(rec.Payload())
					if k > hi || int64(k) <= prev {
						t.Errorf("scan yielded key %d after %d (hi %d)", k, prev, hi)
						fail.Store(true)
						return false
					}
					prev = int64(k)
					return true
				})
				if err != nil {
					tx.Abort()
					continue
				}
				tx.Commit()
			}
		}(r)
	}
	wg.Wait()
}
