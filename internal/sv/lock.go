// Package sv implements the single-version locking engine of Section 5: a
// main-memory optimized variant of traditional single-version locking with
// no central lock manager. A lock table is embedded in every hash index —
// each hash key maps to one reader/writer lock covering all records with
// that hash key, which automatically protects against phantoms. Deadlocks
// are detected and broken by timeouts, as in the paper's implementation.
//
// Updates are performed in place under exclusive locks, with undo records
// for rollback. Read locks are held to commit at repeatable read and
// serializable, and released immediately after the read (cursor stability)
// at read committed — which is why even read-only transactions pay lock
// acquisition costs in this engine (Section 5.2.1).
//
// The lock is a single 64-bit word manipulated by compare-and-swap on the
// fast path — one atomic operation per uncontended acquisition, which is
// what makes lock acquisition cheap enough not to become a bottleneck
// (Section 7: "single-version locking can be implemented efficiently").
// Waiting is the slow path: waiters register on a broadcast channel with a
// deadline.
package sv

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrLockTimeout is returned when a lock cannot be acquired before the
// deadline; the paper breaks deadlocks with timeouts, so the transaction
// must abort and may be retried.
var ErrLockTimeout = errors.New("sv: lock wait timeout (possible deadlock)")

// keyLock is one slot of the partitioned lock table: a reader/writer lock
// with per-transaction recursion, upgrade support and timed waits. It guards
// every record hashing to its bucket and the bucket chain itself.
//
// State word: bits 10..63 hold the exclusive owner's transaction ID (0 =
// none); bits 0..9 hold the shared count. A transaction's recursive shared
// and exclusive holds are tracked by the transaction itself (heldLock), so
// the word needs no recursion counts: upgrades verify that every shared
// hold belongs to the upgrader by comparing the word's count with the
// transaction's own.
type keyLock struct {
	state   atomic.Uint64
	waiters atomic.Int32
	mu      sync.Mutex
	waitCh  chan struct{}
}

const (
	readersBits = 10
	readersMask = 1<<readersBits - 1
	maxReaders  = readersMask
)

func pack(writer uint64, readers uint64) uint64 { return writer<<readersBits | readers }
func unpack(s uint64) (writer, readers uint64)  { return s >> readersBits, s & readersMask }

// acquireS takes one shared hold for txid, waiting at most timeout. A
// transaction holding the exclusive lock may also take shared holds. The
// fast path is a single compare-and-swap; the clock is only consulted when
// the lock is actually contended.
func (l *keyLock) acquireS(txid uint64, timeout time.Duration) error {
	var timer *time.Timer
	defer stopTimer(&timer)
	for {
		s := l.state.Load()
		w, r := unpack(s)
		if (w == 0 || w == txid) && r < maxReaders {
			if l.state.CompareAndSwap(s, s+1) {
				return nil
			}
			continue
		}
		if err := l.waitChange(s, timeout, &timer); err != nil {
			return err
		}
	}
}

// acquireX takes the exclusive lock for txid, waiting at most timeout.
// heldS is the number of shared holds txid already has on this lock; the
// upgrade succeeds only when txid's holds are the only shared holds (two
// concurrent upgraders deadlock and one times out).
func (l *keyLock) acquireX(txid uint64, heldS int, timeout time.Duration) error {
	var timer *time.Timer
	defer stopTimer(&timer)
	for {
		s := l.state.Load()
		w, r := unpack(s)
		if w == txid {
			return nil // reentrant: the transaction tracks its X count
		}
		if w == 0 && r == uint64(heldS) {
			if l.state.CompareAndSwap(s, pack(txid, r)) {
				return nil
			}
			continue
		}
		if err := l.waitChange(s, timeout, &timer); err != nil {
			return err
		}
	}
}

// releaseS drops one shared hold (cursor-stability release).
func (l *keyLock) releaseS(txid uint64) {
	for {
		s := l.state.Load()
		if s&readersMask == 0 {
			return // defensive: nothing to release
		}
		if l.state.CompareAndSwap(s, s-1) {
			l.notify()
			return
		}
	}
}

// releaseBulk drops heldS shared holds and, if heldX, the exclusive lock —
// the commit/abort path releases each lock with a single CAS.
func (l *keyLock) releaseBulk(txid uint64, heldS int, heldX bool) {
	for {
		s := l.state.Load()
		w, r := unpack(s)
		if heldX && w == txid {
			w = 0
		}
		if r >= uint64(heldS) {
			r -= uint64(heldS)
		} else {
			r = 0 // defensive
		}
		if l.state.CompareAndSwap(s, pack(w, r)) {
			l.notify()
			return
		}
	}
}

// heldX reports whether txid holds the exclusive lock.
func (l *keyLock) heldX(txid uint64) bool {
	w, _ := unpack(l.state.Load())
	return w == txid
}

// waitChange blocks until the state word differs from old or the timeout
// (counted from the first wait) expires.
func (l *keyLock) waitChange(old uint64, timeout time.Duration, timer **time.Timer) error {
	l.waiters.Add(1)
	defer l.waiters.Add(-1)
	l.mu.Lock()
	if l.state.Load() != old {
		l.mu.Unlock()
		return nil
	}
	if l.waitCh == nil {
		l.waitCh = make(chan struct{})
	}
	ch := l.waitCh
	l.mu.Unlock()
	if *timer == nil {
		if timeout <= 0 {
			return ErrLockTimeout
		}
		*timer = time.NewTimer(timeout)
	}
	select {
	case <-ch:
		return nil
	case <-(*timer).C:
		return ErrLockTimeout
	}
}

// notify wakes waiters after a release-type transition.
func (l *keyLock) notify() {
	if l.waiters.Load() == 0 {
		return
	}
	l.mu.Lock()
	if l.waitCh != nil {
		close(l.waitCh)
		l.waitCh = nil
	}
	l.mu.Unlock()
}

func stopTimer(t **time.Timer) {
	if *t != nil {
		(*t).Stop()
	}
}
