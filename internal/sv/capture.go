package sv

import "repro/internal/iso"

// Capture streams a transactionally consistent snapshot of the given tables
// to fn and returns the stable sequence number S: the snapshot contains the
// effects of exactly the committed writers with end sequence at most S.
//
// Single-version records carry no timestamps, so consistency comes from the
// lock protocol instead: the capture runs as a read transaction that
// shared-locks every bucket (hash indexes) or the whole key range (ordered
// indexes) of each table's primary index and holds the locks until the scan
// completes — plain strict two-phase locking, which serializes the capture
// against every writer. S is the end-sequence counter read at the end of the
// scan, while all locks are still held: a writer serialized before the
// capture drew its end sequence before releasing the locks the capture then
// acquired (so its sequence is <= S, and its redo record was appended before
// that release), and a writer serialized after blocks on the capture's locks
// until after S is read (so its sequence is > S). Either way the snapshot
// boundary and the log agree.
//
// Like any 1V reader the capture can deadlock with concurrent writers; lock
// timeouts break the cycle, surfacing as an error here. Callers retry.
//
// The payload passed to fn is valid only during the callback.
func (e *Engine) Capture(tables []*Table, fn func(t *Table, key uint64, payload []byte) error) (uint64, error) {
	tx := e.Begin(iso.Serializable)
	defer tx.rollback() // release every lock; the capture writes nothing

	for _, t := range tables {
		emitChain := func(head *Record) error {
			for r := head; r != nil; r = r.next[0] {
				if r.deleted {
					continue
				}
				if err := fn(t, r.keys[0], r.payload); err != nil {
					return err
				}
			}
			return nil
		}
		switch ix := t.indexes[0].(type) {
		case *hashIndex:
			for i := range ix.buckets {
				b := &ix.buckets[i]
				if err := tx.lockS(&b.lock); err != nil {
					return 0, err
				}
				if err := emitChain(b.head); err != nil {
					return 0, err
				}
			}
		case *orderedIndex:
			if err := tx.lockRange(&ix.rl, 0, ^uint64(0), false); err != nil {
				return 0, err
			}
			// Pin the reader epoch for the node walk, as ScanRange does: the
			// range lock stops writers, but node sweeping is asynchronous.
			slot := ix.ep.Enter()
			for n := ix.list.Seek(0); n != nil; n = n.Next() {
				if err := emitChain(n.V.head); err != nil {
					ix.ep.Exit(slot)
					return 0, err
				}
			}
			ix.ep.Exit(slot)
		}
	}
	// All locks are held: no writer is between its end-sequence draw and its
	// lock release, so the counter cleanly splits writers into "captured"
	// and "after the checkpoint".
	return e.endSeq.Current(), nil
}

// AdvanceSequences raises the transaction-ID and end-sequence counters to at
// least past. Recovery calls it so post-recovery transactions order strictly
// after every recovered commit, mirroring ts.Oracle.AdvanceTo on the
// multiversion engines.
func (e *Engine) AdvanceSequences(past uint64) {
	for {
		cur := e.txSeq.Load()
		if cur >= past || e.txSeq.CompareAndSwap(cur, past) {
			break
		}
	}
	e.endSeq.AdvanceTo(past)
}
