package sv

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"repro/internal/iso"
	"repro/internal/storage"
)

func testPayload(key, val uint64) []byte {
	p := make([]byte, 16)
	binary.LittleEndian.PutUint64(p, key)
	binary.LittleEndian.PutUint64(p[8:], val)
	return p
}

func payloadKey(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }
func payloadVal(p []byte) uint64 { return binary.LittleEndian.Uint64(p[8:]) }

func newTestEngine(t *testing.T, timeout time.Duration) (*Engine, *Table) {
	t.Helper()
	e := NewEngine(Config{LockTimeout: timeout})
	tbl, err := e.CreateTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: payloadKey, Buckets: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, tbl
}

func readVal(t *testing.T, tx *Tx, tbl *Table, key uint64) (uint64, bool) {
	t.Helper()
	r, ok, err := tx.Lookup(tbl, 0, key, nil)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if !ok {
		return 0, false
	}
	return payloadVal(r.Payload()), true
}

func TestInsertCommitRead(t *testing.T) {
	e, tbl := newTestEngine(t, 0)
	tx := e.Begin(iso.ReadCommitted)
	if err := tx.Insert(tbl, testPayload(1, 100)); err != nil {
		t.Fatal(err)
	}
	if v, ok := readVal(t, tx, tbl, 1); !ok || v != 100 {
		t.Fatalf("self-read = %d,%v", v, ok)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := e.Begin(iso.ReadCommitted)
	if v, ok := readVal(t, tx2, tbl, 1); !ok || v != 100 {
		t.Fatalf("read = %d,%v", v, ok)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestUncommittedInsertBlocksReaders(t *testing.T) {
	e, tbl := newTestEngine(t, 10*time.Millisecond)
	tx := e.Begin(iso.ReadCommitted)
	if err := tx.Insert(tbl, testPayload(1, 100)); err != nil {
		t.Fatal(err)
	}
	// Another transaction reading the same bucket times out: X lock held.
	r := e.Begin(iso.ReadCommitted)
	if _, _, err := r.Lookup(tbl, 0, 1, nil); err != ErrLockTimeout {
		t.Fatalf("err = %v, want ErrLockTimeout", err)
	}
	r.Abort()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateInPlace(t *testing.T) {
	e, tbl := newTestEngine(t, 0)
	e.LoadRow(tbl, testPayload(1, 10))
	tx := e.Begin(iso.ReadCommitted)
	n, err := tx.UpdateWhere(tbl, 0, 1, nil, func(old []byte) []byte {
		return testPayload(1, payloadVal(old)+5)
	})
	if err != nil || n != 1 {
		t.Fatalf("update n=%d err=%v", n, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := e.Begin(iso.ReadCommitted)
	if v, _ := readVal(t, tx2, tbl, 1); v != 15 {
		t.Fatalf("value = %d, want 15", v)
	}
	tx2.Commit()
}

func TestAbortUndoesEverything(t *testing.T) {
	e, tbl := newTestEngine(t, 0)
	e.LoadRow(tbl, testPayload(1, 10))
	e.LoadRow(tbl, testPayload(2, 20))
	tx := e.Begin(iso.ReadCommitted)
	if _, err := tx.UpdateWhere(tbl, 0, 1, nil, func([]byte) []byte { return testPayload(1, 99) }); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.DeleteWhere(tbl, 0, 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(tbl, testPayload(3, 30)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	tx2 := e.Begin(iso.ReadCommitted)
	if v, _ := readVal(t, tx2, tbl, 1); v != 10 {
		t.Fatalf("update not undone: %d", v)
	}
	if v, ok := readVal(t, tx2, tbl, 2); !ok || v != 20 {
		t.Fatalf("delete not undone: %d,%v", v, ok)
	}
	if _, ok := readVal(t, tx2, tbl, 3); ok {
		t.Fatal("insert not undone")
	}
	tx2.Commit()
}

func TestDeleteCommitUnlinks(t *testing.T) {
	e, tbl := newTestEngine(t, 0)
	e.LoadRow(tbl, testPayload(1, 10))
	tx := e.Begin(iso.ReadCommitted)
	if n, err := tx.DeleteWhere(tbl, 0, 1, nil); err != nil || n != 1 {
		t.Fatalf("delete n=%d err=%v", n, err)
	}
	// Invisible to self after delete.
	if _, ok := readVal(t, tx, tbl, 1); ok {
		t.Fatal("deleted row visible to deleter")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := e.Begin(iso.ReadCommitted)
	if _, ok := readVal(t, tx2, tbl, 1); ok {
		t.Fatal("deleted row visible after commit")
	}
	tx2.Commit()
	// Physically unlinked.
	ix := tbl.indexes[0].(*hashIndex)
	if ix.bucket(1).head != nil && ix.bucket(1).head.keys[0] == 1 {
		t.Fatal("record still linked after delete commit")
	}
}

func TestReadCommittedCursorStability(t *testing.T) {
	e, tbl := newTestEngine(t, 50*time.Millisecond)
	e.LoadRow(tbl, testPayload(1, 10))
	r := e.Begin(iso.ReadCommitted)
	if v, _ := readVal(t, r, tbl, 1); v != 10 {
		t.Fatal("read failed")
	}
	// RC released its lock: a writer can update concurrently.
	w := e.Begin(iso.ReadCommitted)
	if _, err := w.UpdateWhere(tbl, 0, 1, nil, func([]byte) []byte { return testPayload(1, 20) }); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// RC sees the new value on re-read (non-repeatable, by design).
	if v, _ := readVal(t, r, tbl, 1); v != 20 {
		t.Fatalf("re-read = %d, want 20", v)
	}
	r.Commit()
}

func TestRepeatableReadBlocksWriter(t *testing.T) {
	e, tbl := newTestEngine(t, 10*time.Millisecond)
	e.LoadRow(tbl, testPayload(1, 10))
	r := e.Begin(iso.RepeatableRead)
	if v, _ := readVal(t, r, tbl, 1); v != 10 {
		t.Fatal("read failed")
	}
	// Writer blocks on the held S lock and times out.
	w := e.Begin(iso.ReadCommitted)
	_, err := w.UpdateWhere(tbl, 0, 1, nil, func([]byte) []byte { return testPayload(1, 20) })
	if err != ErrLockTimeout {
		t.Fatalf("err = %v, want ErrLockTimeout", err)
	}
	w.Abort()
	r.Commit()
	// After the reader commits, writers proceed.
	w2 := e.Begin(iso.ReadCommitted)
	if _, err := w2.UpdateWhere(tbl, 0, 1, nil, func([]byte) []byte { return testPayload(1, 20) }); err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSerializablePhantomProtection(t *testing.T) {
	e, tbl := newTestEngine(t, 10*time.Millisecond)
	ser := e.Begin(iso.Serializable)
	// Scan an empty hash key: the bucket lock is held to commit.
	if _, ok := readVal(t, ser, tbl, 7); ok {
		t.Fatal("unexpected row")
	}
	// An insert into the same bucket blocks (phantom protection) and times
	// out.
	ins := e.Begin(iso.ReadCommitted)
	if err := ins.Insert(tbl, testPayload(7, 70)); err != ErrLockTimeout {
		t.Fatalf("err = %v, want ErrLockTimeout", err)
	}
	ins.Abort()
	ser.Commit()
}

func TestLockUpgrade(t *testing.T) {
	e, tbl := newTestEngine(t, 0)
	e.LoadRow(tbl, testPayload(1, 10))
	tx := e.Begin(iso.RepeatableRead)
	// Read (S lock) then update (upgrade to X) in the same transaction.
	if v, _ := readVal(t, tx, tbl, 1); v != 10 {
		t.Fatal("read failed")
	}
	if _, err := tx.UpdateWhere(tbl, 0, 1, nil, func([]byte) []byte { return testPayload(1, 11) }); err != nil {
		t.Fatalf("upgrade failed: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockBrokenByTimeout(t *testing.T) {
	e, tbl := newTestEngine(t, 20*time.Millisecond)
	e.LoadRow(tbl, testPayload(1, 10))
	e.LoadRow(tbl, testPayload(2, 20))
	t1 := e.Begin(iso.ReadCommitted)
	t2 := e.Begin(iso.ReadCommitted)
	// t1 X-locks key 1; t2 X-locks key 2.
	if _, err := t1.UpdateWhere(tbl, 0, 1, nil, func([]byte) []byte { return testPayload(1, 11) }); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.UpdateWhere(tbl, 0, 2, nil, func([]byte) []byte { return testPayload(2, 21) }); err != nil {
		t.Fatal(err)
	}
	// Now they each try the other's key: a deadlock, broken by timeout.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, errs[0] = t1.UpdateWhere(tbl, 0, 2, nil, func([]byte) []byte { return testPayload(2, 12) })
	}()
	go func() {
		defer wg.Done()
		_, errs[1] = t2.UpdateWhere(tbl, 0, 1, nil, func([]byte) []byte { return testPayload(1, 22) })
	}()
	wg.Wait()
	if errs[0] != ErrLockTimeout && errs[1] != ErrLockTimeout {
		t.Fatalf("no timeout: %v, %v", errs[0], errs[1])
	}
	t1.Abort()
	t2.Abort()
	if e.Stats().LockTimeouts == 0 {
		t.Fatal("timeout counter not bumped")
	}
}

func TestSecondaryIndexLookup(t *testing.T) {
	e := NewEngine(Config{})
	valKey := func(p []byte) uint64 { return payloadVal(p) }
	tbl, err := e.CreateTable(storage.TableSpec{
		Name: "t2",
		Indexes: []storage.IndexSpec{
			{Name: "pk", Key: payloadKey, Buckets: 64},
			{Name: "val", Key: valKey, Buckets: 64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.LoadRow(tbl, testPayload(1, 100))
	tx := e.Begin(iso.ReadCommitted)
	r, ok, err := tx.Lookup(tbl, 1, 100, nil)
	if err != nil || !ok || payloadKey(r.Payload()) != 1 {
		t.Fatalf("secondary lookup: ok=%v err=%v", ok, err)
	}
	// Update through the secondary index changing the secondary key:
	// the record must relocate.
	if _, err := tx.UpdateWhere(tbl, 1, 100, nil, func([]byte) []byte { return testPayload(1, 200) }); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := e.Begin(iso.ReadCommitted)
	if _, ok, _ := tx2.Lookup(tbl, 1, 100, nil); ok {
		t.Fatal("record still reachable via old secondary key")
	}
	if r, ok, _ := tx2.Lookup(tbl, 1, 200, nil); !ok || payloadKey(r.Payload()) != 1 {
		t.Fatal("record not reachable via new secondary key")
	}
	tx2.Commit()
}

func TestAbortRestoresRelocatedRecord(t *testing.T) {
	e := NewEngine(Config{})
	valKey := func(p []byte) uint64 { return payloadVal(p) }
	tbl, _ := e.CreateTable(storage.TableSpec{
		Name: "t3",
		Indexes: []storage.IndexSpec{
			{Name: "pk", Key: payloadKey, Buckets: 64},
			{Name: "val", Key: valKey, Buckets: 64},
		},
	})
	e.LoadRow(tbl, testPayload(1, 100))
	tx := e.Begin(iso.ReadCommitted)
	if _, err := tx.UpdateWhere(tbl, 1, 100, nil, func([]byte) []byte { return testPayload(1, 200) }); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	tx2 := e.Begin(iso.ReadCommitted)
	if r, ok, _ := tx2.Lookup(tbl, 1, 100, nil); !ok || payloadVal(r.Payload()) != 100 {
		t.Fatal("record not restored to old secondary key after abort")
	}
	if _, ok, _ := tx2.Lookup(tbl, 1, 200, nil); ok {
		t.Fatal("record reachable via aborted secondary key")
	}
	tx2.Commit()
}

func TestConcurrentDisjointWriters(t *testing.T) {
	e, tbl := newTestEngine(t, 0)
	const n = 64
	for i := 0; i < n; i++ {
		e.LoadRow(tbl, testPayload(uint64(i), 0))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				tx := e.Begin(iso.ReadCommitted)
				key := uint64(i)
				if _, err := tx.UpdateWhere(tbl, 0, key, nil, func(old []byte) []byte {
					return testPayload(key, payloadVal(old)+1)
				}); err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	tx := e.Begin(iso.ReadCommitted)
	for i := 0; i < n; i++ {
		if v, _ := readVal(t, tx, tbl, uint64(i)); v != 1 {
			t.Fatalf("key %d = %d, want 1", i, v)
		}
	}
	tx.Commit()
}
