package sv

import (
	"testing"
	"time"
)

// TestSVRangeLockReleaseNoSpuriousWakeup: releasing a range lock that is not
// held must not broadcast to waiters — nothing they could be waiting on has
// changed, and at high MPL the storm of spurious wakeups (every cursor-
// stability release re-woke every waiter) is pure overhead.
func TestSVRangeLockReleaseNoSpuriousWakeup(t *testing.T) {
	var m svRangeLocks
	if err := m.acquire(1, 1, 1, true, time.Second); err != nil {
		t.Fatal(err)
	}

	// A second transaction blocks on the conflicting range and parks on
	// waitCh.
	acquired := make(chan error, 1)
	go func() {
		acquired <- m.acquire(1, 1, 2, true, 2*time.Second)
	}()
	var ch chan struct{}
	for i := 0; i < 2000; i++ {
		m.mu.Lock()
		ch = m.waitCh
		m.mu.Unlock()
		if ch != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if ch == nil {
		t.Fatal("waiter never parked")
	}

	// Releasing locks that are NOT held must leave the wait channel alone.
	m.release(5, 5, 99, false) // wrong range, wrong owner
	m.release(1, 1, 2, true)   // right range, non-holder
	m.release(1, 1, 1, false)  // right owner, wrong mode
	m.mu.Lock()
	same := m.waitCh == ch
	m.mu.Unlock()
	if !same {
		t.Fatal("release of an unheld lock broadcast to waiters")
	}
	select {
	case <-ch:
		t.Fatal("wait channel was closed by an unheld release")
	case err := <-acquired:
		t.Fatalf("waiter acquired the lock early: %v", err)
	default:
	}

	// A real release drains the entry and wakes the waiter.
	m.release(1, 1, 1, true)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("waiter failed after real release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter was not woken by the real release")
	}
	m.release(1, 1, 2, true)
}
