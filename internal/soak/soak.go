// Package soak is the seeded deterministic soak runner behind cmd/mvsoak:
// randomized multi-table bank workloads (internal/workload) composed with
// the crash/fault machinery of the recovery suite, validated end-to-end by
// the multi-table history checker (internal/check) with cross-table
// constraints.
//
// A soak run is a sequence of bounded independent episodes, each a pure
// function of (base seed, episode number, config): open a fresh database,
// run the bank mix under serializable isolation, then validate the
// committed history — reads, range scans through primary and statement
// indexes, conservation of money, ledger referential integrity and
// balanced per-transaction deltas. With Faults enabled, odd episodes run
// against a durable store and are killed at a seeded fault point (torn
// WAL batch, post-flush freeze, mid-checkpoint crash, manifest crash, or
// a chopped log tail), recovered, and validated including commit-outcome
// resolution by marker rows, exactly like the recovery crash suite.
//
// With Workers == 1 an episode is fully deterministic: the same seed
// yields the same committed history (and the same HistoryHash), including
// the crash point — checkpoints run inline on a fixed cadence instead of
// a background goroutine. With more workers the per-worker operation
// streams are still seed-determined but the interleaving is not.
package soak

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/wal"
	"repro/internal/workload"
)

// marksTable holds one unique marker row per transaction, written in the
// same transaction as the bank operations: after a crash, marker presence
// decides an unknown commit outcome (marker durable <=> the whole
// transaction is durable). It also guarantees every transaction is a
// writer, so every engine hands out a non-zero serialization stamp.
const marksTable = "marks"

// FaultChop is the one scenario that is not an armed fault point: the
// store is frozen mid-workload and the log tail is chopped before
// recovery, simulating destroyed acknowledged bytes.
const FaultChop = "chop"

// faultMenu are the seeded crash scenarios of a faulted episode.
var faultMenu = []string{
	ckpt.FaultWALTear,
	ckpt.FaultWALFreeze,
	ckpt.FaultPartWrite,
	ckpt.FaultManifest,
	FaultChop,
}

// Config parameterizes a soak run. Zero values select the documented
// defaults.
type Config struct {
	// Scheme selects the engine (SingleVersion, MVPessimistic, MVOptimistic).
	Scheme core.Scheme
	// Seed is the base seed; every episode derives its own stream from it.
	Seed int64
	// Workers is the number of concurrent transaction streams per episode
	// (default 4). Workers == 1 makes episodes fully deterministic.
	Workers int
	// Episodes bounds the run by episode count; Duration bounds it by wall
	// clock (checked between episodes). If both are zero, 4 episodes run.
	Episodes int
	Duration time.Duration
	// FirstEpisode offsets the episode numbering, so one episode out of a
	// longer run can be replayed in isolation: -first-episode K -episodes 1.
	FirstEpisode int
	// TxnsPerWorker is each worker's transaction budget per episode
	// (default 150).
	TxnsPerWorker int
	// Accounts and InitBalance size the bank (defaults 48 and 1000).
	Accounts    uint64
	InitBalance uint64
	// Faults runs every odd episode against a durable store with a seeded
	// crash + recovery.
	Faults bool
	// Dir is where faulted episodes place their stores (default: the
	// system temp directory). Episode directories are removed on success.
	Dir string
	// Log, when set, receives one line per episode.
	Log func(format string, args ...any)
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.TxnsPerWorker <= 0 {
		cfg.TxnsPerWorker = 150
	}
	if cfg.Accounts < 2 {
		cfg.Accounts = 48
	}
	if cfg.InitBalance == 0 {
		cfg.InitBalance = 1000
	}
	if cfg.Episodes <= 0 && cfg.Duration <= 0 {
		cfg.Episodes = 4
	}
	return cfg
}

// EngineFlag is the cmd/mvsoak -engine spelling of a scheme, used in repro
// command lines.
func EngineFlag(s core.Scheme) string {
	switch s {
	case core.MVOptimistic:
		return "mvo"
	case core.MVPessimistic:
		return "mvl"
	default:
		return "1v"
	}
}

// Result summarizes a run.
type Result struct {
	Episodes int
	Commits  int
	Aborts   int
	// Hash combines the episode history hashes; at Workers == 1 it is a
	// pure function of (Seed, Config).
	Hash uint64
}

// EpisodeResult summarizes one episode.
type EpisodeResult struct {
	Episode int
	Seed    int64
	Fault   string // "" for a clean episode
	Commits int
	Aborts  int
	// Hash fingerprints the validated committed history (see HistoryHash).
	Hash uint64
}

// Violation is a detected correctness failure: a serializability or
// constraint violation from the checker, an in-transaction invariant
// failure, or a durable commit lost by recovery. It carries everything
// needed to replay the offending episode.
type Violation struct {
	Scheme      core.Scheme
	Episode     int
	EpisodeSeed int64
	Fault       string
	BaseSeed    int64
	Workers     int
	Txns        int
	Accounts    uint64
	Faulted     bool
	Err         error
}

// Error implements error; it includes the one-line repro command.
func (v *Violation) Error() string {
	return fmt.Sprintf("soak: engine %s episode %d (episode seed %d, fault %q): %v\nrepro: %s",
		EngineFlag(v.Scheme), v.Episode, v.EpisodeSeed, v.Fault, v.Err, v.Repro())
}

// Unwrap exposes the underlying checker or assertion error.
func (v *Violation) Unwrap() error { return v.Err }

// Repro returns the command replaying exactly the failing episode.
func (v *Violation) Repro() string {
	s := fmt.Sprintf("go run ./cmd/mvsoak -engine %s -seed %d -workers %d -txns %d -accounts %d -first-episode %d -episodes 1",
		EngineFlag(v.Scheme), v.BaseSeed, v.Workers, v.Txns, v.Accounts, v.Episode)
	if v.Faulted {
		s += " -faults"
	}
	return s
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// EpisodeSeed derives episode ep's seed from the base seed.
func EpisodeSeed(base int64, ep int) int64 {
	return int64(mix64(uint64(base) + uint64(ep+1)*0x9e3779b97f4a7c15))
}

// Run executes episodes until the configured bound and returns the
// aggregate result. The returned error is a *Violation for correctness
// failures (with seed and repro command) or a plain error for environment
// failures (store I/O, setup).
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	var res Result
	for n := 0; ; n++ {
		if cfg.Episodes > 0 && n >= cfg.Episodes {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		er, err := RunEpisode(cfg, cfg.FirstEpisode+n)
		res.Episodes++
		res.Commits += er.Commits
		res.Aborts += er.Aborts
		res.Hash = res.Hash*0x100000001b3 ^ er.Hash
		if cfg.Log != nil {
			cfg.Log("episode %d: engine=%s fault=%q commits=%d aborts=%d hash=%016x",
				er.Episode, EngineFlag(cfg.Scheme), er.Fault, er.Commits, er.Aborts, er.Hash)
		}
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// RunEpisode runs exactly one episode (clean or faulted per the config and
// episode parity) and validates its history.
func RunEpisode(cfg Config, ep int) (EpisodeResult, error) {
	cfg = cfg.withDefaults()
	e := &episode{cfg: &cfg, num: ep, seed: EpisodeSeed(cfg.Seed, ep)}
	if cfg.Faults && ep%2 == 1 {
		erng := rand.New(rand.NewSource(e.seed))
		e.fault = faultMenu[erng.Uint64()%uint64(len(faultMenu))]
		e.countdown = 2 + int(erng.Uint64()%12)
		return e.runFaulted()
	}
	return e.runClean()
}

// episode carries one episode's identity and engine objects.
type episode struct {
	cfg       *Config
	num       int
	seed      int64
	fault     string
	countdown int

	db    *core.Database
	bank  *workload.Bank
	marks *core.Table
	store *ckpt.Store        // nil in clean episodes
	cp    *ckpt.Checkpointer // nil in clean episodes
}

// vio wraps a correctness failure with the episode's replay coordinates.
func (e *episode) vio(err error) error {
	return &Violation{
		Scheme:      e.cfg.Scheme,
		Episode:     e.num,
		EpisodeSeed: e.seed,
		Fault:       e.fault,
		BaseSeed:    e.cfg.Seed,
		Workers:     e.cfg.Workers,
		Txns:        e.cfg.TxnsPerWorker,
		Accounts:    e.cfg.Accounts,
		Faulted:     e.cfg.Faults,
		Err:         err,
	}
}

func (e *episode) result(outs []outcome, hash uint64) EpisodeResult {
	r := EpisodeResult{Episode: e.num, Seed: e.seed, Fault: e.fault, Hash: hash}
	r.Commits = len(outs)
	r.Aborts = e.cfg.Workers*e.cfg.TxnsPerWorker - len(outs)
	return r
}

func (e *episode) openSchema(db *core.Database) (*workload.Bank, *core.Table, error) {
	bank, err := workload.OpenBank(db, e.cfg.Accounts, e.cfg.InitBalance)
	if err != nil {
		return nil, nil, err
	}
	marks, err := db.CreateTable(core.TableSpec{
		Name:    marksTable,
		Indexes: []core.IndexSpec{{Name: "pk", Key: workload.RowKey, Buckets: 1 << 10}},
	})
	if err != nil {
		return nil, nil, err
	}
	return bank, marks, nil
}

// idHi bounds the ledger/marker id space for checkpoint partitioning.
func (e *episode) idHi() uint64 { return uint64(e.cfg.Workers+2) << 40 }

// outcome is one committed-as-far-as-we-know transaction.
type outcome struct {
	ft       check.Txn
	marker   uint64
	definite bool
}

// runTxn executes one bank transaction plus its marker insert. committed
// reports whether the commit was acknowledged; a non-nil error is a
// correctness failure (engine aborts return committed=false, err=nil).
func (e *episode) runTxn(rng *rand.Rand, id uint64) (check.Txn, bool, error) {
	tx := e.db.Begin(core.WithIsolation(core.Serializable))
	ft, err := e.bank.RunTxn(tx, rng, id)
	if err != nil {
		if errors.Is(err, workload.ErrReadYourWrites) || errors.Is(err, workload.ErrConservation) {
			// Not a verdict yet. An optimistic reader's in-flight view is
			// conditional: speculative reads take commit dependencies on
			// preparing transactions, and when one of those aborts mid-read
			// the reader observes a mixed state for the moment it takes the
			// abort cascade to reach it. The engine never COMMITS such a
			// view — so let commit decide. Failure means the engine
			// correctly killed a doomed speculation (an ordinary abort);
			// success means the inconsistent reads really serialized, and
			// the episode fails with the in-flight evidence.
			if end, cerr := tx.CommitTS(); cerr != nil || end == 0 {
				return ft, false, nil
			}
			return ft, false, err
		}
		_ = tx.Abort() // the run error is the signal; abort of a doomed txn
		return ft, false, nil
	}
	if err := tx.Insert(e.marks, workload.Row(id, 1)); err != nil {
		_ = tx.Abort()
		return ft, false, nil
	}
	ft.Writes = append(ft.Writes, check.Write{Table: marksTable, Key: id, Value: 1})
	end, err := tx.CommitTS()
	if err != nil {
		return ft, false, nil
	}
	if end == 0 {
		return ft, false, fmt.Errorf("committed writer transaction got a zero serialization stamp")
	}
	ft.EndTS = end
	return ft, true, nil
}

// runWorkers drives the per-episode transaction streams and collects
// committed outcomes. With one worker it runs inline (deterministic),
// interleaving checkpoints every few transactions in faulted episodes;
// with more it spawns goroutines and checkpoints from the coordinator,
// like the recovery crash suite.
func (e *episode) runWorkers() ([]outcome, error) {
	cfg := e.cfg
	frozen := func() bool { return e.store != nil && e.store.Frozen() }

	if cfg.Workers == 1 {
		rng := rand.New(rand.NewSource(EpisodeSeed(e.seed, 1)))
		ckptEvery := cfg.TxnsPerWorker / 5
		if ckptEvery < 10 {
			ckptEvery = 10
		}
		chopAt := -1
		if e.fault == FaultChop {
			chopAt = cfg.TxnsPerWorker / 2
		}
		var outs []outcome
		for i := 0; i < cfg.TxnsPerWorker && !frozen(); i++ {
			if i == chopAt {
				e.store.Freeze()
				break
			}
			if e.cp != nil && i%ckptEvery == ckptEvery-1 {
				_, _ = e.cp.Run() // checkpoint errors (injected faults) are the scenario
				// Drain the checkpoint's async log record now: left pending,
				// it would merge into a later commit's batch or timer-flush on
				// its own depending on scheduling, moving the injected crash
				// point between runs of the same seed.
				_ = e.db.WAL().Flush() // flush errors are the scenario too
			}
			id := uint64(1)<<40 | uint64(i)
			ft, committed, err := e.runTxn(rng, id)
			if err != nil {
				return outs, e.vio(err)
			}
			if committed {
				outs = append(outs, outcome{ft: ft, marker: id, definite: !frozen()})
			}
		}
		return outs, nil
	}

	var (
		mu   sync.Mutex
		outs []outcome
		verr error
	)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(EpisodeSeed(e.seed, worker+1)))
			for i := 0; i < cfg.TxnsPerWorker && !frozen(); i++ {
				id := uint64(worker+1)<<40 | uint64(i)
				ft, committed, err := e.runTxn(rng, id)
				if err != nil {
					mu.Lock()
					if verr == nil {
						verr = err
					}
					mu.Unlock()
					return
				}
				if committed {
					mu.Lock()
					outs = append(outs, outcome{ft: ft, marker: id, definite: !frozen()})
					mu.Unlock()
				}
			}
		}(w)
	}
	if e.store != nil {
		// Coordinator: live checkpoints racing the workload, and the manual
		// freeze for the chop scenario.
		for i := 0; i < 25 && !frozen(); i++ {
			time.Sleep(2 * time.Millisecond)
			if e.cp != nil {
				_, _ = e.cp.Run() // errors (injected faults, lock timeouts) are the scenario
			}
		}
		if e.fault == FaultChop && !frozen() {
			e.store.Freeze()
		}
	}
	wg.Wait()
	if verr != nil {
		return outs, e.vio(verr)
	}
	return outs, nil
}

// readBack appends the closing transaction: a consistent snapshot reading
// every account (point + primary range scan) and every statement prefix,
// so anything the engine or recovery lost, duplicated or reordered shows
// up as a serializability violation of these reads.
func (e *episode) readBack(db *core.Database, b *workload.Bank, endTS uint64) (check.Txn, error) {
	t := check.Txn{EndTS: endTS}
	tx := db.Begin(core.WithIsolation(core.SnapshotIsolation))
	for k := uint64(0); k < b.N; k++ {
		row, ok, err := tx.Lookup(b.Accounts, 0, k, nil)
		if err != nil {
			_ = tx.Abort()
			return t, err
		}
		r := check.Read{Table: workload.BankAccountsTable, Key: k, Found: ok}
		if ok {
			r.Value = workload.RowVal(row.Payload())
		}
		t.Reads = append(t.Reads, r)
	}
	rr := check.RangeRead{Table: workload.BankAccountsTable, Lo: 0, Hi: b.N - 1}
	err := tx.ScanRange(b.Accounts, 0, 0, b.N-1, nil, func(r core.Row) bool {
		rr.Keys = append(rr.Keys, workload.RowKey(r.Payload()))
		return true
	})
	if err != nil {
		_ = tx.Abort()
		return t, err
	}
	t.RangeReads = append(t.RangeReads, rr)
	for a := uint64(0); a < b.N; a++ {
		lo, hi := workload.BankStmtLayout.MustPrefixRange(a)
		srr := check.RangeRead{Table: workload.BankLedgerTable, Index: workload.BankStmtIndex, Lo: lo, Hi: hi}
		err := tx.ScanPrefix(b.Ledger, 1, []uint64{a}, nil, func(r core.Row) bool {
			p := r.Payload()
			id, v := workload.RowKey(p), workload.RowVal(p)
			srr.Keys = append(srr.Keys, workload.BankStmtLayout.MustEncode(a, id))
			t.Reads = append(t.Reads, check.Read{Table: workload.BankLedgerTable, Key: id, Value: v, Found: true})
			return true
		})
		if err != nil {
			_ = tx.Abort()
			return t, err
		}
		t.RangeReads = append(t.RangeReads, srr)
	}
	if err := tx.Commit(); err != nil {
		return t, err
	}
	return t, nil
}

// validate replays the durable history through the multi-table checker
// with the bank's cross-table constraints.
func (e *episode) validate(b *workload.Bank, history []check.Txn) error {
	initial := b.InitialModel()
	initial[marksTable] = map[uint64]uint64{}
	h := &check.History{
		Initial:     initial,
		Txns:        history,
		Indexers:    b.Indexers(),
		Constraints: b.Constraints(),
	}
	return h.Validate()
}

func maxEndTS(outs []outcome) uint64 {
	var m uint64
	for _, o := range outs {
		if o.ft.EndTS > m {
			m = o.ft.EndTS
		}
	}
	return m
}

// runClean is an in-memory episode: run, read back, validate.
func (e *episode) runClean() (EpisodeResult, error) {
	db, err := core.Open(core.Config{Scheme: e.cfg.Scheme, LockTimeout: 50 * time.Millisecond})
	if err != nil {
		return EpisodeResult{Episode: e.num, Seed: e.seed}, err
	}
	defer func() { _ = db.Close() }() // in-memory teardown; nothing durable to lose
	bank, marks, err := e.openSchema(db)
	if err != nil {
		return EpisodeResult{Episode: e.num, Seed: e.seed}, err
	}
	bank.Load(db)
	e.db, e.bank, e.marks = db, bank, marks

	outs, err := e.runWorkers()
	if err != nil {
		return e.result(outs, 0), err
	}
	history := make([]check.Txn, 0, len(outs)+1)
	for _, o := range outs {
		history = append(history, o.ft)
	}
	final, err := e.readBack(db, bank, maxEndTS(outs)+1)
	if err != nil {
		return e.result(outs, 0), err
	}
	history = append(history, final)
	if err := e.validate(bank, history); err != nil {
		return e.result(outs, 0), e.vio(err)
	}
	return e.result(outs, HistoryHash(history)), nil
}

// runFaulted is a durable episode: logged load, pre-crash checkpoint,
// seeded fault, crash, recovery into a fresh database, commit-outcome
// resolution by markers, read-back and validation.
func (e *episode) runFaulted() (EpisodeResult, error) {
	er := EpisodeResult{Episode: e.num, Seed: e.seed, Fault: e.fault}
	parent := e.cfg.Dir
	if parent == "" {
		parent = os.TempDir()
	}
	dir, err := os.MkdirTemp(parent, "mvsoak-ep")
	if err != nil {
		return er, err
	}
	store, err := ckpt.OpenStore(dir)
	if err != nil {
		return er, err
	}
	db, err := core.Open(core.Config{
		Scheme:      e.cfg.Scheme,
		LogSink:     store,
		SyncCommit:  true,
		LockTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		return er, err
	}
	bank, marks, err := e.openSchema(db)
	if err != nil {
		return er, err
	}
	if err := bank.LoadTx(db); err != nil {
		return er, err
	}
	cp := ckpt.New(db, store, []ckpt.TableSpec{
		{Table: bank.Accounts, Partitions: 2, Lo: 0, Hi: bank.N - 1},
		{Table: bank.Ledger, Partitions: 3, Lo: 0, Hi: e.idHi()},
		{Table: marks, Partitions: 2, Lo: 0, Hi: e.idHi()},
	}, ckpt.Options{})
	if _, err := cp.Run(); err != nil {
		return er, fmt.Errorf("pre-crash checkpoint: %w", err)
	}

	f := wal.NewFaults()
	switch e.fault {
	case ckpt.FaultPartWrite:
		f.Arm(e.fault, e.countdown%3)
	case ckpt.FaultManifest:
		f.Arm(e.fault, 0)
	case FaultChop:
		// No armed point: manual freeze mid-workload, tail chopped below.
	default:
		f.Arm(e.fault, e.countdown)
	}
	// Drain any bytes still pending from the load and the pre-crash
	// checkpoint before arming: the fault countdown must start from an
	// empty pipeline or the crash point depends on flusher timing.
	if err := db.WAL().Flush(); err != nil {
		return er, err
	}
	store.SetFaults(f)
	e.db, e.bank, e.marks, e.store, e.cp = db, bank, marks, store, cp

	outs, verr := e.runWorkers()
	if verr != nil {
		return e.result(outs, 0), verr
	}
	if !store.Frozen() {
		// The fault never fired (short episode): crash at the end anyway so
		// every faulted episode exercises recovery.
		store.Freeze()
	}
	_ = db.Close()    // post-crash teardown: the latched fault error is expected
	_ = store.Close() // ditto
	if e.fault == FaultChop {
		if err := store.ChopTail(13); err != nil {
			return e.result(outs, 0), err
		}
	}

	// Recover into a fresh database without a log sink: replaying recovery
	// inserts into a new log would re-append old history.
	store2, err := ckpt.OpenStore(dir)
	if err != nil {
		return e.result(outs, 0), err
	}
	db2, err := core.Open(core.Config{Scheme: e.cfg.Scheme, LockTimeout: 50 * time.Millisecond})
	if err != nil {
		return e.result(outs, 0), err
	}
	defer func() { _ = db2.Close() }() // in-memory teardown
	bank2, marks2, err := e.openSchema(db2)
	if err != nil {
		return e.result(outs, 0), err
	}
	if _, err := recovery.Recover(db2, recovery.TableSet{
		workload.BankAccountsTable: bank2.Accounts,
		workload.BankLedgerTable:   bank2.Ledger,
		marksTable:                 marks2,
	}, store2, recovery.Options{Workers: 2}); err != nil {
		return e.result(outs, 0), e.vio(fmt.Errorf("recovery failed: %w", err))
	}

	// Resolve unknown commit outcomes by marker presence.
	var history []check.Txn
	rtx := db2.Begin(core.WithIsolation(core.SnapshotIsolation))
	var maxEnd uint64
	for _, o := range outs {
		_, durable, err := rtx.Lookup(marks2, 0, o.marker, nil)
		if err != nil {
			_ = rtx.Abort()
			return e.result(outs, 0), err
		}
		if o.definite && !durable && e.fault != FaultChop {
			_ = rtx.Abort()
			return e.result(outs, 0), e.vio(fmt.Errorf(
				"acknowledged txn@%d (marker %#x) lost by recovery", o.ft.EndTS, o.marker))
		}
		if durable {
			history = append(history, o.ft)
			if o.ft.EndTS > maxEnd {
				maxEnd = o.ft.EndTS
			}
		}
	}
	if err := rtx.Commit(); err != nil {
		return e.result(outs, 0), err
	}

	final, err := e.readBack(db2, bank2, maxEnd+1)
	if err != nil {
		return e.result(outs, 0), err
	}
	history = append(history, final)
	if err := e.validate(bank2, history); err != nil {
		return e.result(outs, 0), e.vio(err)
	}
	if err := store2.Close(); err != nil {
		return e.result(outs, 0), err
	}
	if err := os.RemoveAll(dir); err != nil {
		return e.result(outs, 0), err
	}
	res := e.result(outs, HistoryHash(history))
	res.Commits = len(history) - 1 // durable commits only
	return res, nil
}

// HistoryHash fingerprints a committed history: FNV-64a over every
// footprint field in end-timestamp order. Two runs of the same
// single-worker episode produce identical hashes.
func HistoryHash(txns []check.Txn) uint64 {
	ordered := make([]check.Txn, len(txns))
	copy(ordered, txns)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].EndTS < ordered[j].EndTS })
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		_, _ = h.Write([]byte(s))
	}
	for i := range ordered {
		t := &ordered[i]
		u64(t.EndTS)
		u64(uint64(len(t.Reads)))
		for _, r := range t.Reads {
			str(r.Table)
			u64(r.Key)
			u64(r.Value)
			if r.Found {
				u64(1)
			} else {
				u64(0)
			}
		}
		u64(uint64(len(t.Writes)))
		for _, w := range t.Writes {
			str(w.Table)
			u64(uint64(w.Op))
			u64(w.Key)
			u64(w.Value)
		}
		u64(uint64(len(t.RangeReads)))
		for _, rr := range t.RangeReads {
			str(rr.Table)
			str(rr.Index)
			u64(rr.Lo)
			u64(rr.Hi)
			u64(uint64(len(rr.Keys)))
			for _, k := range rr.Keys {
				u64(k)
			}
		}
	}
	return h.Sum64()
}
