package soak_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/soak"
	"repro/internal/workload/seedtest"
)

var soakSchemes = []core.Scheme{core.SingleVersion, core.MVPessimistic, core.MVOptimistic}

// TestSoakDeterministic: with one worker, the same seed produces the same
// committed history — byte-identical history hashes across two full runs,
// including a faulted (crash + recovery) episode.
func TestSoakDeterministic(t *testing.T) {
	for _, scheme := range soakSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := soak.Config{
				Scheme:        scheme,
				Seed:          seedtest.Base(t, 31337),
				Workers:       1,
				Episodes:      2, // episode 0 clean, episode 1 faulted
				TxnsPerWorker: 60,
				Faults:        true,
				Dir:           t.TempDir(),
			}
			r1, err := soak.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := soak.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r1.Hash != r2.Hash || r1.Commits != r2.Commits {
				t.Fatalf("same seed, different runs: %+v vs %+v", r1, r2)
			}
			if r1.Hash == 0 {
				t.Fatal("degenerate run: zero history hash")
			}
		})
	}
}

// TestSoakEpisodeReplay: replaying one episode of a longer run in isolation
// (the repro command's -first-episode path) reproduces its hash.
func TestSoakEpisodeReplay(t *testing.T) {
	cfg := soak.Config{
		Scheme:        core.MVOptimistic,
		Seed:          seedtest.Base(t, 555),
		Workers:       1,
		TxnsPerWorker: 50,
		Faults:        true,
		Dir:           t.TempDir(),
	}
	full, err := soak.RunEpisode(cfg, 3) // odd: faulted
	if err != nil {
		t.Fatal(err)
	}
	replay, err := soak.RunEpisode(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if full.Hash != replay.Hash || full.Fault != replay.Fault {
		t.Fatalf("episode replay diverged: %+v vs %+v", full, replay)
	}
	if full.Fault == "" {
		t.Fatal("odd episode with Faults enabled should have a fault")
	}
}

// TestSoakFaultedConcurrent: a short multi-worker faulted soak is green on
// every engine (run under -race in CI at GOMAXPROCS=4).
func TestSoakFaultedConcurrent(t *testing.T) {
	txns := 80
	if testing.Short() {
		txns = 30
	}
	for _, scheme := range soakSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := soak.Config{
				Scheme:        scheme,
				Seed:          seedtest.Base(t, 2026),
				Workers:       4,
				Episodes:      2,
				TxnsPerWorker: txns,
				Faults:        true,
				Dir:           t.TempDir(),
			}
			res, err := soak.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Commits == 0 {
				t.Fatal("degenerate soak: no commits")
			}
		})
	}
}

// TestViolationRepro: a violation's message carries the seed and the exact
// one-episode repro command.
func TestViolationRepro(t *testing.T) {
	v := &soak.Violation{
		Scheme:      core.MVPessimistic,
		Episode:     7,
		EpisodeSeed: 123456,
		Fault:       "wal.tear",
		BaseSeed:    42,
		Workers:     4,
		Txns:        150,
		Accounts:    48,
		Faulted:     true,
		Err:         errors.New("boom"),
	}
	msg := v.Error()
	want := "go run ./cmd/mvsoak -engine mvl -seed 42 -workers 4 -txns 150 -accounts 48 -first-episode 7 -episodes 1 -faults"
	if !strings.Contains(msg, want) {
		t.Fatalf("violation message lacks repro command:\n%s\nwant substring:\n%s", msg, want)
	}
	if !strings.Contains(msg, "123456") || !strings.Contains(msg, "boom") {
		t.Fatalf("violation message lacks seed or cause: %s", msg)
	}
	if !errors.Is(v, v.Err) {
		t.Fatal("Violation must unwrap to its cause")
	}
}
