// Package p is the errlatch golden corpus: implicitly discarded errors
// from the durability path and transaction outcomes must be flagged;
// explicit discards and handled errors must not.
package p

import (
	"repro/internal/core"
	"repro/internal/wal"
)

// droppedAppend is the PR 7 bug class: the log latches its first failure
// and an unchecked Append is an acknowledged commit that was never durable.
func droppedAppend(l *wal.Log, r *wal.Record) {
	l.Append(r) // want "discarded error from .Log..Append"
}

func droppedInDeferAndGo(l *wal.Log) {
	defer l.Close() // want "discarded error from .Log..Close"
	go l.Flush()    // want "discarded error from .Log..Flush"
}

func handled(l *wal.Log, r *wal.Record) error {
	if err := l.Append(r); err != nil {
		return err
	}
	return l.Flush()
}

// explicit `_ =` is allowed: greppable and visibly deliberate.
func explicitDiscard(l *wal.Log) {
	_ = l.Close()
}

func droppedOutcome(tx *core.Tx) {
	tx.Commit() // want "discarded error from .Tx..Commit"
	tx.Abort()  // want "discarded error from .Tx..Abort"
}

func checkedOutcome(tx *core.Tx) error {
	if err := tx.Commit(); err != nil {
		_ = tx.Abort()
		return err
	}
	return nil
}

// methods of the same names outside the wal/ckpt/engine packages are out of
// scope.
type otherLog struct{}

func (otherLog) Append(b []byte) error { return nil }
func (otherLog) Close() error          { return nil }

func outOfScope(o otherLog) {
	o.Append(nil)
	o.Close()
}
