// Package p is the noalloc golden corpus: annotated functions are verified
// allocation-free against the compiler's own escape analysis.
package p

// sum is allocation-free: everything stays on the stack.
//
//mvlint:noalloc
func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// stackOnly takes the address of a local that does not escape.
//
//mvlint:noalloc
func stackOnly(n int) int {
	v := n * 2
	p := &v
	return *p
}

// leak returns a fresh slice: the make escapes.
//
//mvlint:noalloc
func leak(n int) []byte {
	return make([]byte, n) // want "allocates"
}

// escapes leaks a local through a sink.
//
//mvlint:noalloc
func escapes() *int {
	v := 42 // want "allocates: v escapes to heap"
	return &v
}

// unannotated functions may allocate freely.
func free(n int) []byte {
	return make([]byte, n)
}
