// Package p is the faultpoint golden corpus: fault-point names reaching
// the wal.Faults API must be declared in the annotated registry block.
package p

import "repro/internal/wal"

// The corpus's own central registry.
//
//mvlint:faultregistry
const (
	// FaultDemoTear tears a demo write.
	FaultDemoTear = "demo.tear"
	// FaultDemoSync fails a demo sync.
	FaultDemoSync = "demo.sync"
)

// Aliases propagate the constant value, so they pass membership.
const aliasTear = FaultDemoTear

func arm(f *wal.Faults) {
	f.Arm(FaultDemoTear, 0)
	f.Arm(aliasTear, 1)
	f.Arm("demo.sync", 2)       // a literal with a registered value is fine
	f.Arm("demo.taer", 0)       // want "not declared in the fault registry"
	if f.Fire("demo.missing") { // want "not declared in the fault registry"
		return
	}
	f.Disarm(FaultDemoSync)
}

// Dynamically computed names are out of the rule's reach; the construction
// site's own constant is what gets checked.
func dynamic(f *wal.Faults, point string) {
	f.Fire(point)
}
