// Package p is the lockedoracle golden corpus: each site marked `want`
// must be flagged, everything else must stay silent.
package p

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/ts"
)

type engine struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	funnel *ts.Funnel
	ch     chan int
}

// convoyDraw reconstructs the PR 8 hazard: the end-timestamp draw under the
// commit lock goes through Next, which may open the combining window and
// yield while every other committer is blocked on mu.
func (e *engine) convoyDraw() uint64 {
	e.mu.Lock()
	end := e.funnel.Next() // want "Funnel.Next .window-opening draw. inside a mutex-locked region"
	e.mu.Unlock()
	return end
}

// lockedDraw is the fixed form: NextLocked never opens the window.
func (e *engine) lockedDraw() uint64 {
	e.mu.Lock()
	end := e.funnel.NextLocked()
	e.mu.Unlock()
	return end
}

func (e *engine) sleepUnderLock() {
	e.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep inside a mutex-locked region"
	e.mu.Unlock()
	time.Sleep(time.Millisecond) // after the unlock: fine
}

func (e *engine) goschedUnderRLock() {
	e.rw.RLock()
	runtime.Gosched() // want "runtime.Gosched inside a mutex-locked region"
	e.rw.RUnlock()
}

func (e *engine) channelOps() {
	e.mu.Lock()
	e.ch <- 1   // want "channel send inside a mutex-locked region"
	v := <-e.ch // want "channel receive inside a mutex-locked region"
	_ = v
	select { // want "select .channel wait. inside a mutex-locked region"
	case <-e.ch:
	default:
	}
	e.mu.Unlock()
}

// deferredUnlock: a deferred unlock keeps the region open to function end.
func (e *engine) deferredUnlock() {
	e.mu.Lock()
	defer e.mu.Unlock()
	runtime.Gosched() // want "runtime.Gosched inside a mutex-locked region"
}

// tryLockBody: the body of a successful TryLock runs at raised depth.
func (e *engine) tryLockBody() {
	if e.mu.TryLock() {
		time.Sleep(time.Millisecond) // want "time.Sleep inside a mutex-locked region"
		e.mu.Unlock()
	}
	time.Sleep(time.Millisecond) // TryLock may have failed: fine
}

// branchLocal: a branch that locks and returns does not poison the
// fallthrough path.
func (e *engine) branchLocal(fast bool) {
	if fast {
		e.mu.Lock()
		e.mu.Unlock()
		return
	}
	runtime.Gosched() // no lock held here
}

// closures run in an unknown context: only their own locking is checked.
func (e *engine) closures() func() {
	e.mu.Lock()
	f := func() {
		runtime.Gosched() // closure body scanned at depth zero
		e.mu.Lock()
		time.Sleep(time.Millisecond) // want "time.Sleep inside a mutex-locked region"
		e.mu.Unlock()
	}
	e.mu.Unlock()
	return f
}

// spawned goroutines do not inherit the spawner's locks.
func (e *engine) spawns() {
	e.mu.Lock()
	go func() {
		time.Sleep(time.Millisecond) // new goroutine: fine
	}()
	e.mu.Unlock()
}

// drainLocked is called with e.mu held (the ts.Funnel.combine pattern):
// the annotation starts the scan at depth one.
//
//mvlint:locked
func (e *engine) drainLocked() {
	runtime.Gosched() // want "runtime.Gosched inside a mutex-locked region"
}
