// Package p exercises the suppression mechanics: a waiver with a reason
// suppresses its diagnostic, a stale waiver is itself a diagnostic, and a
// reasonless waiver is malformed.
package p

import (
	"runtime"
	"sync"
)

var mu sync.Mutex

func waived() {
	mu.Lock()
	//mvlint:ignore lockedoracle corpus fixture proving the waiver mechanism
	runtime.Gosched()
	mu.Unlock()
}

func stale() {
	/* want "matches no diagnostic" */ //mvlint:ignore lockedoracle nothing here yields
	mu.Lock()
	mu.Unlock()
}

func malformed() {
	mu.Lock()
	/* want "reason is mandatory" */ //mvlint:ignore lockedoracle
	runtime.Gosched()                // want "runtime.Gosched inside a mutex-locked region"
	mu.Unlock()
}
