// Package p is the padcheck golden corpus: layout claims of annotated
// structs are checked against go/types' real field offsets.
package p

import "sync/atomic"

// good is the canonical padded pair: two hot words on distinct lines,
// total size a multiple of 64.
//
//mvlint:padded
type good struct {
	a atomic.Uint64 //mvlint:cacheline
	_ [56]byte
	b atomic.Uint64 //mvlint:cacheline
	_ [56]byte
}

// badSize forgot its tail padding.
//
//mvlint:padded
type badSize struct { // want "not a multiple of 64"
	a uint64
}

// badAlign's marked field sits mid-line: the preceding field shares its
// cache line. It is also on the same 64-byte line as the other marked
// field, which is the false-sharing the annotation claims cannot happen.
//
//mvlint:padded
type badAlign struct {
	a uint64 //mvlint:cacheline
	b uint64 //mvlint:cacheline // want "not 64-byte aligned" "share one 64-byte line"
	_ [48]byte
}

// unannotated structs are not checked.
type plain struct {
	a uint64
}
