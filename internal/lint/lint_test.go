package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden-corpus convention: a `want "regex"` comment (line or block) on
// line L expects exactly one unsuppressed diagnostic on line L of the same
// file whose message matches the regex; several quoted patterns on one
// comment expect several diagnostics. Every want must be matched and every
// diagnostic must be wanted.
var (
	wantRE = regexp.MustCompile(`(?://|/\*) want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)
	patRE  = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

type wantKey struct {
	file string // basename
	line int
}

func runCorpus(t *testing.T, dir string, analyzers []*Analyzer) *Result {
	t.Helper()
	prog, err := Load([]string{dir})
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	res, err := Run(prog, analyzers)
	if err != nil {
		t.Fatalf("run %s: %v", dir, err)
	}

	wants := make(map[wantKey][]*regexp.Regexp)
	matched := make(map[wantKey][]bool)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			k := wantKey{e.Name(), i + 1}
			for _, p := range patRE.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(p[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, p[1], err)
				}
				wants[k] = append(wants[k], re)
				matched[k] = append(matched[k], false)
			}
		}
	}

	for _, d := range res.Diagnostics {
		if d.Suppressed {
			continue
		}
		k := wantKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		ok := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", k.file, k.line, d.Analyzer, d.Message)
		}
	}
	for k, ms := range matched {
		for i, ok := range ms {
			if !ok {
				t.Errorf("%s:%d: want %q matched no diagnostic", k.file, k.line, wants[k][i])
			}
		}
	}
	return res
}

func TestLockedOracleCorpus(t *testing.T) {
	runCorpus(t, filepath.Join("testdata", "lockedoracle"), []*Analyzer{LockedOracle})
}

func TestErrLatchCorpus(t *testing.T) {
	runCorpus(t, filepath.Join("testdata", "errlatch"), []*Analyzer{ErrLatch})
}

func TestFaultPointCorpus(t *testing.T) {
	runCorpus(t, filepath.Join("testdata", "faultpoint"), []*Analyzer{FaultPoint})
}

func TestPadCheckCorpus(t *testing.T) {
	runCorpus(t, filepath.Join("testdata", "padcheck"), []*Analyzer{PadCheck})
}

func TestNoAllocCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build")
	}
	runCorpus(t, filepath.Join("testdata", "noalloc"), []*Analyzer{NoAlloc})
}

// TestIgnoreMechanics checks the waiver lifecycle over its corpus: the
// waived diagnostic is suppressed but retained with its reason, the stale
// waiver and the reasonless waiver are diagnostics of their own.
func TestIgnoreMechanics(t *testing.T) {
	res := runCorpus(t, filepath.Join("testdata", "ignore"), []*Analyzer{LockedOracle})
	sup := res.Suppressions()
	if len(sup) != 1 {
		t.Fatalf("suppressions = %d, want 1: %v", len(sup), sup)
	}
	if want := "corpus fixture proving the waiver mechanism"; sup[0].Reason != want {
		t.Errorf("suppression reason = %q, want %q", sup[0].Reason, want)
	}
	if !res.Failed() {
		t.Error("corpus has unsuppressed diagnostics; Failed() = false")
	}
}
