// Package lint is mvlint's analysis driver: a stdlib-only static-analysis
// suite that turns this repository's load-bearing prose invariants — the
// ordering comments in ts.Funnel, mv.Commit, sv.CommitTS, the skip-list
// sweeper — into machine-checked rules. The tree is loaded with go/parser
// and type-checked with go/types over importer.ForCompiler(..., "source",
// ...); there are no dependencies outside the standard library.
//
// Each Analyzer encodes one repo invariant (see docs/lint.md for the
// catalogue and the prose each rule mechanizes). Diagnostics are suppressed
// only by an explicit
//
//	//mvlint:ignore <analyzer> <reason>
//
// comment on the diagnostic's line or the line directly above; the reason is
// mandatory, and every suppression in force is listed in the summary output
// so reviews can diff the waiver set.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Diagnostic is one finding: a rule violation at a position. Suppressed
// diagnostics are retained (with the waiver's reason) so the summary can
// list them; they do not fail the run.
type Diagnostic struct {
	Analyzer   string         `json:"analyzer"`
	Pos        token.Position `json:"pos"`
	Message    string         `json:"message"`
	Suppressed bool           `json:"suppressed,omitempty"`
	Reason     string         `json:"reason,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Reporter records one diagnostic for the analyzer that owns it.
type Reporter func(pos token.Position, format string, args ...any)

// An Analyzer is one repo-invariant rule. Run inspects the whole Program —
// most rules iterate prog.Pkgs, but cross-package rules (the fault-point
// registry) and rules that shell out (noalloc's escape-analysis pass) need
// the program-level view.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, report Reporter) error
}

// Analyzers is the mvlint suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockedOracle,
		NoAlloc,
		FaultPoint,
		ErrLatch,
		PadCheck,
	}
}

// ignoreEntry is one parsed //mvlint:ignore comment.
type ignoreEntry struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// Result is the outcome of a Run: every diagnostic (suppressed ones
// included) plus per-analyzer totals.
type Result struct {
	Diagnostics []Diagnostic
}

// Failed reports whether any unsuppressed diagnostic was produced.
func (r *Result) Failed() bool {
	for _, d := range r.Diagnostics {
		if !d.Suppressed {
			return true
		}
	}
	return false
}

// Counts returns per-analyzer (active, suppressed) diagnostic totals.
func (r *Result) Counts() map[string][2]int {
	m := make(map[string][2]int)
	for _, d := range r.Diagnostics {
		c := m[d.Analyzer]
		if d.Suppressed {
			c[1]++
		} else {
			c[0]++
		}
		m[d.Analyzer] = c
	}
	return m
}

// Suppressions returns the suppressed diagnostics, in position order.
func (r *Result) Suppressions() []Diagnostic {
	var s []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Suppressed {
			s = append(s, d)
		}
	}
	return s
}

// Run executes the analyzers over prog, applies //mvlint:ignore waivers, and
// returns every diagnostic sorted by position. Malformed waivers (missing
// analyzer name or reason) and waivers that suppress nothing are themselves
// diagnostics, under the pseudo-analyzer "ignore": a stale suppression is a
// rule quietly not being enforced, which is exactly what mvlint exists to
// prevent.
func Run(prog *Program, analyzers []*Analyzer) (*Result, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		name := a.Name
		report := func(pos token.Position, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Analyzer: name,
				Pos:      pos,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		if err := a.Run(prog, report); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}

	// Surface type-check failures: analyses over a broken package are
	// unreliable, so a package that does not type-check fails the run.
	for _, pkg := range prog.Pkgs {
		for _, err := range pkg.TypeErrors {
			diags = append(diags, Diagnostic{
				Analyzer: "typecheck",
				Pos:      errPosition(prog, err),
				Message:  err.Error(),
			})
		}
	}

	ignores := collectIgnores(prog, &diags)
	for i := range diags {
		d := &diags[i]
		if d.Analyzer == "ignore" || d.Analyzer == "typecheck" {
			continue
		}
		if e := matchIgnore(ignores, d); e != nil {
			d.Suppressed = true
			d.Reason = e.reason
			e.used = true
		}
	}
	for _, byLine := range ignores {
		for _, e := range byLine {
			if !e.used {
				diags = append(diags, Diagnostic{
					Analyzer: "ignore",
					Pos:      e.pos,
					Message: fmt.Sprintf("suppression for %q matches no diagnostic; remove it (a stale waiver is a rule quietly not enforced)",
						e.analyzer),
				})
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return &Result{Diagnostics: diags}, nil
}

// errPosition extracts a position from a go/types error when possible.
func errPosition(prog *Program, err error) token.Position {
	type positioned interface{ Pos() token.Pos }
	if pe, ok := err.(positioned); ok {
		return prog.Fset.Position(pe.Pos())
	}
	return token.Position{}
}

// collectIgnores parses every //mvlint:ignore comment in the program
// (including test files, which syntactic passes may report on). Malformed
// entries become "ignore" diagnostics.
func collectIgnores(prog *Program, diags *[]Diagnostic) map[string]map[int]*ignoreEntry {
	out := make(map[string]map[int]*ignoreEntry)
	add := func(f *ast.File) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//mvlint:ignore")
				if !ok {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{
						Analyzer: "ignore",
						Pos:      pos,
						Message:  "malformed suppression: want //mvlint:ignore <analyzer> <reason>, and the reason is mandatory",
					})
					continue
				}
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*ignoreEntry)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = &ignoreEntry{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      pos,
				}
			}
		}
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			add(f)
		}
		for _, f := range pkg.TestFiles {
			add(f)
		}
	}
	return out
}

// matchIgnore finds a waiver for d: same file, the diagnostic's line or the
// line directly above, matching analyzer name.
func matchIgnore(ignores map[string]map[int]*ignoreEntry, d *Diagnostic) *ignoreEntry {
	byLine := ignores[d.Pos.Filename]
	if byLine == nil {
		return nil
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if e := byLine[line]; e != nil && e.analyzer == d.Analyzer {
			return e
		}
	}
	return nil
}

// hasAnnotation reports whether the comment group carries the given
// //mvlint:<name> marker as a standalone directive comment.
func hasAnnotation(groups []*ast.CommentGroup, name string) bool {
	want := "//mvlint:" + name
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
				return true
			}
		}
	}
	return false
}
