package lint

import (
	"go/ast"
	"go/types"
)

// LockedOracle flags scheduler-yielding operations inside mutex-locked
// regions: calls to ts.Funnel.Next/NextN (which may open the combining
// window and Gosched), runtime.Gosched, time.Sleep, and channel sends,
// receives or selects, performed after a sync.Mutex/RWMutex Lock/RLock (or a
// lock on a type embedding one) with no intervening unlock on the same
// statement path.
//
// This is the invariant behind the Next/NextLocked API split (ts/funnel.go):
// a yield while engine locks are held extends every blocked transaction's
// wait — the PR 8 convoy hazard — and the MV/L and 1V end-timestamp draws
// happen exactly there (mv/commit.go, sv/tx.go). The PR 5 bug class
// (releasing locks before the draw) becomes this rule's mirror image: once
// the draw must sit inside the locked region, the region must not yield.
//
// The analysis is a per-function, path-insensitive sequential scan:
//   - Lock/RLock raises the lock depth, Unlock/RUnlock lowers it; a
//     successful `if mu.TryLock() { ... }` body runs at raised depth.
//   - Depth changes inside a branch do not propagate past it (a branch that
//     locks and returns does not poison the fallthrough path).
//   - Function literals are scanned at depth zero: a closure's execution
//     context is unknown, so only its own locking is checked.
//   - Functions whose contract is "called with locks held" are annotated
//     //mvlint:locked and scanned starting at depth one (ts.Funnel.combine
//     is the canonical case).
var LockedOracle = &Analyzer{
	Name: "lockedoracle",
	Doc:  "no yield (Funnel.Next/NextN, Gosched, Sleep, channel op) inside a held mutex region",
	Run:  runLockedOracle,
}

func runLockedOracle(prog *Program, report Reporter) error {
	for _, pkg := range prog.Pkgs {
		if pkg.Info == nil {
			continue
		}
		s := &lockScan{prog: prog, info: pkg.Info, report: report}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				depth := 0
				if hasAnnotation(funcDoc(fd), "locked") {
					depth = 1
				}
				s.block(fd.Body, depth)
			}
		}
	}
	return nil
}

type lockScan struct {
	prog   *Program
	info   *types.Info
	report Reporter
}

func (s *lockScan) flag(pos ast.Node, what string) {
	s.report(s.prog.Position(pos.Pos()),
		"%s inside a mutex-locked region: a yield here convoys every goroutine blocked on the lock (draw through ts.Funnel.NextLocked, or move the operation outside the locked region)", what)
}

// block scans statements sequentially, threading the lock depth, and
// returns the depth at the end of the block.
func (s *lockScan) block(b *ast.BlockStmt, depth int) int {
	for _, st := range b.List {
		depth = s.stmt(st, depth)
	}
	return depth
}

// stmt scans one statement at the given lock depth and returns the depth
// for the statement that follows it.
func (s *lockScan) stmt(st ast.Stmt, depth int) int {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			fn := calleeFunc(s.info, call)
			switch {
			case s.isMutexOp(fn, "Lock", "RLock"):
				s.exprs(depth, call.Args...)
				return depth + 1
			case s.isMutexOp(fn, "Unlock", "RUnlock"):
				s.exprs(depth, call.Args...)
				return max(depth-1, 0)
			}
		}
		s.exprs(depth, st.X)
	case *ast.SendStmt:
		if depth > 0 {
			s.flag(st, "channel send")
		}
		s.exprs(depth, st.Chan, st.Value)
	case *ast.AssignStmt:
		s.exprs(depth, st.Rhs...)
		s.exprs(depth, st.Lhs...)
	case *ast.ReturnStmt:
		s.exprs(depth, st.Results...)
	case *ast.IncDecStmt:
		s.exprs(depth, st.X)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					s.exprs(depth, vs.Values...)
				}
			}
		}
	case *ast.DeferStmt:
		// A deferred unlock keeps the region open to function end (depth is
		// simply not lowered). The deferred call's arguments are evaluated
		// here and now, at the current depth; the call itself runs at
		// return, outside this scan's model.
		s.exprs(depth, st.Call.Args...)
	case *ast.GoStmt:
		// The new goroutine does not inherit the spawner's locks; argument
		// evaluation happens on the spawning path.
		s.exprs(depth, st.Call.Args...)
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			s.block(lit.Body, 0)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			depth = s.stmt(st.Init, depth)
		}
		s.exprs(depth, st.Cond)
		bodyDepth := depth
		if call, ok := ast.Unparen(st.Cond).(*ast.CallExpr); ok {
			if s.isMutexOp(calleeFunc(s.info, call), "TryLock", "TryRLock") {
				bodyDepth = depth + 1
			}
		}
		s.block(st.Body, bodyDepth)
		if st.Else != nil {
			s.stmt(st.Else, depth)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			depth = s.stmt(st.Init, depth)
		}
		if st.Cond != nil {
			s.exprs(depth, st.Cond)
		}
		if st.Post != nil {
			s.stmt(st.Post, depth)
		}
		s.block(st.Body, depth)
	case *ast.RangeStmt:
		s.exprs(depth, st.X)
		s.block(st.Body, depth)
	case *ast.SwitchStmt:
		if st.Init != nil {
			depth = s.stmt(st.Init, depth)
		}
		if st.Tag != nil {
			s.exprs(depth, st.Tag)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			s.exprs(depth, cc.List...)
			for _, bs := range cc.Body {
				s.stmt(bs, depth)
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			depth = s.stmt(st.Init, depth)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, bs := range cc.Body {
				s.stmt(bs, depth)
			}
		}
	case *ast.SelectStmt:
		if depth > 0 {
			s.flag(st, "select (channel wait)")
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				// The comm clauses are already covered by the select
				// diagnostic; scan them only for nested operations.
				s.stmt(cc.Comm, 0)
			}
			for _, bs := range cc.Body {
				s.stmt(bs, depth)
			}
		}
	case *ast.BlockStmt:
		// A bare block shares the surrounding statement path: its lock
		// transitions persist.
		return s.block(st, depth)
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, depth)
	}
	return depth
}

// exprs scans expressions for yielding operations at the given depth.
// Function literal bodies are scanned separately at depth zero.
func (s *lockScan) exprs(depth int, list ...ast.Expr) {
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				s.block(n.Body, 0)
				return false
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" && depth > 0 {
					s.flag(n, "channel receive")
				}
			case *ast.CallExpr:
				if depth > 0 {
					if what := s.yieldingCall(n); what != "" {
						s.flag(n, what)
					}
				}
			}
			return true
		})
	}
}

// yieldingCall names the yielding operation a call performs, or returns ""
// for a benign call.
func (s *lockScan) yieldingCall(call *ast.CallExpr) string {
	fn := calleeFunc(s.info, call)
	if fn == nil {
		return ""
	}
	switch {
	case isPkgFunc(fn, "runtime", "Gosched"):
		return "runtime.Gosched"
	case isPkgFunc(fn, "time", "Sleep"):
		return "time.Sleep"
	case isMethodOn(fn, []string{"Next", "NextN"}, "Funnel", "internal/ts"):
		return "ts.Funnel." + fn.Name() + " (window-opening draw)"
	}
	return ""
}

// isMutexOp reports whether fn is one of the named methods on sync.Mutex,
// sync.RWMutex or the sync.Locker interface (which covers locks reached
// through embedding: the selection resolves to the sync method itself).
func (s *lockScan) isMutexOp(fn *types.Func, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	tn, _ := recvInfo(fn)
	if tn != "Mutex" && tn != "RWMutex" && tn != "Locker" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}
