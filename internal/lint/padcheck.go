package lint

import (
	"go/ast"
	"go/types"
)

// PadCheck verifies the layout claims of cache-line-padded structs: a type
// annotated //mvlint:padded must have a total size that is a multiple of 64
// bytes (so array elements and pool neighbours cannot share a line), every
// field annotated //mvlint:cacheline must start 64-byte aligned and no two
// such fields may land on the same 64-byte line, and every 64-bit atomic
// field must be 8-byte aligned (the sync/atomic alignment contract on
// 32-bit targets).
//
// These are the prose claims of gc/pins.go ("padded to a cache line so
// neighbouring pins don't false-share"), txn/table.go ("the 64 shard minima
// don't false-share when OldestBegin sweeps them") and ts/funnel.go's
// counter block, checked against go/types' real field offsets for the
// compilation target. A refactor that inserts a field and silently shifts
// the padding now fails the build instead of quietly costing a cache line.
//
// Caveat: Go's allocator guarantees 8/16-byte alignment, not 64 — the
// checks enforce the *relative* separation of hot words, which is what the
// false-sharing arguments rely on (two words >= 64 bytes apart never share
// a line regardless of the object's base address).
var PadCheck = &Analyzer{
	Name: "padcheck",
	Doc:  "//mvlint:padded structs are 64-byte multiples with //mvlint:cacheline fields on distinct lines and 8-aligned atomics",
	Run:  runPadCheck,
}

func runPadCheck(prog *Program, report Reporter) error {
	for _, pkg := range prog.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					stAST, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					groups := []*ast.CommentGroup{ts.Doc, ts.Comment}
					if len(gd.Specs) == 1 {
						groups = append(groups, gd.Doc)
					}
					if !hasAnnotation(groups, "padded") {
						continue
					}
					checkPadded(prog, pkg, ts, stAST, report)
				}
			}
		}
	}
	return nil
}

func checkPadded(prog *Program, pkg *Package, ts *ast.TypeSpec, stAST *ast.StructType, report Reporter) {
	obj := pkg.Info.Defs[ts.Name]
	if obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}

	size := prog.Sizes.Sizeof(st)
	if size%64 != 0 {
		report(prog.Position(ts.Pos()),
			"//mvlint:padded struct %s is %d bytes — not a multiple of 64, so neighbouring elements share a cache line (pad with _ [%d]byte)",
			ts.Name.Name, size, 64-size%64)
	}

	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	offsets := prog.Sizes.Offsetsof(fields)

	// Pair AST fields (which carry the annotations) with type-checker
	// fields by flattened name order; the struct's AST and type fields are
	// in declaration order.
	type lineField struct {
		name string
		off  int64
		pos  ast.Node
	}
	var marked []lineField
	idx := 0
	for _, af := range stAST.Fields.List {
		n := max(len(af.Names), 1)
		annotated := hasAnnotation([]*ast.CommentGroup{af.Doc, af.Comment}, "cacheline")
		for j := 0; j < n && idx < len(fields); j++ {
			if annotated {
				marked = append(marked, lineField{fields[idx].Name(), offsets[idx], af})
			}
			if atomic64Field(fields[idx].Type()) && offsets[idx]%8 != 0 {
				report(prog.Position(af.Pos()),
					"64-bit atomic field %s.%s at offset %d is not 8-byte aligned",
					ts.Name.Name, fields[idx].Name(), offsets[idx])
			}
			idx++
		}
	}

	for i, fl := range marked {
		if fl.off%64 != 0 {
			report(prog.Position(fl.pos.Pos()),
				"//mvlint:cacheline field %s.%s starts at offset %d — not 64-byte aligned, its line is shared with the preceding fields",
				ts.Name.Name, fl.name, fl.off)
		}
		for _, prev := range marked[:i] {
			if prev.off/64 == fl.off/64 {
				report(prog.Position(fl.pos.Pos()),
					"//mvlint:cacheline fields %s.%s (offset %d) and %s.%s (offset %d) share one 64-byte line",
					ts.Name.Name, prev.name, prev.off, ts.Name.Name, fl.name, fl.off)
			}
		}
	}
}

// atomic64Field reports whether t is a 64-bit word the sync/atomic
// alignment contract applies to.
func atomic64Field(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			switch obj.Name() {
			case "Int64", "Uint64":
				return true
			}
		}
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int64, types.Uint64, types.Float64:
			return true
		}
	}
	return false
}
