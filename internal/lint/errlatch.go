package lint

import (
	"go/ast"
	"go/types"
)

// ErrLatch is a scoped errcheck for the durability path: discarding the
// error from a wal/ckpt Append, Flush, Sync, Write, Rotate or Close, or from
// a transaction Commit/CommitTS/Abort, is a diagnostic.
//
// These errors are load-bearing in a specific way most errors are not: the
// log latches its first failure and the engine above it flips read-only
// (docs/durability.md, "Degradation"), so a dropped error here is not a
// missed log line — it is an acknowledged commit that was never durable
// (the exact bug class PR 7 fixed in wal.Append's per-batch outcome
// delivery). A transaction Commit that is not checked is a write path that
// cannot distinguish commit from abort.
//
// Only implicit discards are flagged: a bare call statement, `go call()`, or
// `defer call()`. An explicit `_ = call()` is allowed — it is greppable and
// visibly deliberate at the call site. Test files are not scanned.
var ErrLatch = &Analyzer{
	Name: "errlatch",
	Doc:  "no silently dropped errors from wal/ckpt Append/Flush/Sync/Close or Tx Commit/Abort",
	Run:  runErrLatch,
}

func runErrLatch(prog *Program, report Reporter) error {
	for _, pkg := range prog.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch n := n.(type) {
				case *ast.ExprStmt:
					call, _ = ast.Unparen(n.X).(*ast.CallExpr)
				case *ast.GoStmt:
					call = n.Call
				case *ast.DeferStmt:
					call = n.Call
				}
				if call == nil {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || !latchedErrorMethod(fn) {
					return true
				}
				tn, pp := recvInfo(fn)
				report(prog.Position(call.Pos()),
					"discarded error from (%s).%s — the first durability error latches and must flow up (handle it, or discard explicitly with `_ =` where ignoring is provably safe); receiver declared in %s",
					tn, fn.Name(), pp)
				return true
			})
		}
	}
	return nil
}

// latchedErrorMethod reports whether fn is in errlatch's scope: an
// error-returning durability method on a wal/ckpt type, or Commit/Abort on
// a transaction type.
func latchedErrorMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	// Only methods that actually return an error are in scope (e.g.
	// ckpt.Store.Freeze returns nothing and is fine to call bare).
	res := sig.Results()
	returnsErr := false
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			returnsErr = true
		}
	}
	if !returnsErr {
		return false
	}
	_, pp := recvInfo(fn)
	switch fn.Name() {
	case "Append", "Flush", "Sync", "Close", "Write", "Rotate":
		return pathHasSuffix(pp, "internal/wal") || pathHasSuffix(pp, "internal/ckpt")
	case "Commit", "CommitTS", "Abort":
		return pathHasSuffix(pp, "internal/core") || pathHasSuffix(pp, "internal/mv") ||
			pathHasSuffix(pp, "internal/sv")
	}
	return false
}

func pathHasSuffix(path, suffix string) bool {
	return path == suffix || (len(path) > len(suffix) && path[len(path)-len(suffix)-1] == '/' &&
		path[len(path)-len(suffix):] == suffix)
}
