package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// NoAlloc verifies that functions annotated //mvlint:noalloc contain no
// heap-allocation sites, by running the compiler's escape analysis
// (`go build -gcflags='-m -m'`) over the packages that carry annotations and
// attributing every "escapes to heap" / "moved to heap" diagnostic to the
// annotated function whose body spans it.
//
// This turns the "allocs/op stays byte-identical" bench discipline of PRs
// 3–5 into a static gate that needs no benchmark run: the annotated hot
// paths (mv commit/begin, sv tx, visibility checks, skip-list traversal,
// reader-pin Acquire/Release, arena Get/Put) cannot regrow an allocation
// without failing CI.
//
// Scope is the honest one for a static check: escape analysis attributes
// allocation *sites*, so the rule proves the annotated function introduces
// no allocations of its own (including closures it defines). It does not
// follow calls — a callee that allocates must carry its own annotation —
// and slice growth through append is a runtime event escape analysis cannot
// see (the hot paths pre-size and recycle their slices for exactly that
// reason; the benchmarks remain the transitive check).
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //mvlint:noalloc have no heap-allocation sites (compiler escape analysis)",
	Run:  runNoAlloc,
}

// escapeLine matches one compiler diagnostic: file:line:col: message.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

type noallocFunc struct {
	name      string
	file      string // absolute path
	start     int    // first line of the declaration
	end       int    // last line of the body
	reportPos token.Position
}

func runNoAlloc(prog *Program, report Reporter) error {
	byDir := make(map[string][]noallocFunc)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasAnnotation(funcDoc(fd), "noalloc") {
					continue
				}
				if fd.Body == nil {
					report(prog.Position(fd.Pos()), "//mvlint:noalloc on a bodyless declaration has nothing to verify")
					continue
				}
				start := prog.Position(fd.Pos())
				end := prog.Position(fd.Body.Rbrace)
				abs, err := filepath.Abs(start.Filename)
				if err != nil {
					return err
				}
				byDir[pkg.Dir] = append(byDir[pkg.Dir], noallocFunc{
					name:      funcDisplayName(fd),
					file:      abs,
					start:     start.Line,
					end:       end.Line,
					reportPos: start,
				})
			}
		}
	}
	if len(byDir) == 0 {
		return nil
	}

	dirs := make([]string, 0, len(byDir))
	for d := range byDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	args := []string{"build", "-gcflags=-m -m"}
	for _, d := range dirs {
		rel, err := filepath.Rel(prog.ModRoot, d)
		if err != nil {
			return err
		}
		args = append(args, "./"+filepath.ToSlash(rel))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = prog.ModRoot
	out, err := cmd.CombinedOutput()
	if err != nil && !looksLikeEscapeOutput(string(out)) {
		return fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}

	var funcs []noallocFunc
	for _, fs := range byDir {
		funcs = append(funcs, fs...)
	}

	seen := make(map[string]bool) // dedup: -m -m repeats each site with its explanation
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if strings.HasPrefix(msg, " ") { // indented explanation chain
			continue
		}
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(prog.ModRoot, file)
		}
		lineNo, _ := strconv.Atoi(m[2])
		colNo, _ := strconv.Atoi(m[3])
		key := fmt.Sprintf("%s:%d:%d", file, lineNo, colNo)
		if seen[key] {
			continue
		}
		for _, fn := range funcs {
			if fn.file == file && lineNo >= fn.start && lineNo <= fn.end {
				seen[key] = true
				report(token.Position{Filename: file, Line: lineNo, Column: colNo},
					"//mvlint:noalloc function %s allocates: %s", fn.name, strings.TrimSuffix(msg, ":"))
				break
			}
		}
	}
	return nil
}

// looksLikeEscapeOutput reports whether go build output consists solely of
// escape-analysis diagnostics (the command exits nonzero only on real
// compile errors, but be tolerant of diagnostic-only stderr).
func looksLikeEscapeOutput(out string) bool {
	for _, line := range strings.Split(out, "\n") {
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if escapeLine.MatchString(line) {
			continue
		}
		return false
	}
	return true
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		var b strings.Builder
		if star, ok := t.(*ast.StarExpr); ok {
			b.WriteString("*")
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			b.WriteString(id.Name)
		} else if ix, ok := t.(*ast.IndexExpr); ok {
			if id, ok := ix.X.(*ast.Ident); ok {
				b.WriteString(id.Name)
			}
		} else if ix, ok := t.(*ast.IndexListExpr); ok {
			if id, ok := ix.X.(*ast.Ident); ok {
				b.WriteString(id.Name)
			}
		}
		return "(" + b.String() + ")." + fd.Name.Name
	}
	return fd.Name.Name
}
