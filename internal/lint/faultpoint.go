package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
)

// FaultPoint verifies that every fault-point name reaching the wal.Faults
// registry — the Arm/Disarm sites in crash harnesses and the Fire sites
// inside the durability code — is declared in the single central
// //mvlint:faultregistry const block (wal/faults.go).
//
// The crash suites (PR 6's freeze model, PR 7's byte-granularity disk
// faults) only prove anything when the armed point and the firing point
// agree on a string: a typo'd name arms a fault that never fires, and the
// scenario silently degenerates to a no-crash run that still passes. With
// this rule, a name outside the registry cannot reach the registry's API.
//
// Non-test files are checked with full type information (any constant
// expression is resolved to its value, so aliases like
// ckpt.FaultWALTear = wal.FaultWALTear pass). Test files are scanned
// syntactically — string literals passed to .Arm/.Fire/.Disarm must be
// registry values verbatim. Dynamically computed names (a string flowing
// through a struct field) are out of the rule's reach and are not flagged;
// the construction site's own constant is.
var FaultPoint = &Analyzer{
	Name: "faultpoint",
	Doc:  "every fault-point name passed to wal.Faults Arm/Fire/Disarm is declared in the central fault registry",
	Run:  runFaultPoint,
}

func runFaultPoint(prog *Program, report Reporter) error {
	registry := make(map[string]bool)
	var blocks []token.Position

	for _, pkg := range prog.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST || !hasAnnotation([]*ast.CommentGroup{gd.Doc}, "faultregistry") {
					continue
				}
				blocks = append(blocks, prog.Position(gd.Pos()))
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						c, ok := pkg.Info.Defs[name].(*types.Const)
						if !ok || c.Val().Kind() != constant.String {
							report(prog.Position(name.Pos()),
								"fault registry entry %s is not a string constant", name.Name)
							continue
						}
						registry[constant.StringVal(c.Val())] = true
					}
				}
			}
		}
	}
	for _, pos := range blocks[min(1, len(blocks)):] {
		report(pos, "multiple //mvlint:faultregistry const blocks; the registry must be one central block (first seen at %s)", blocks[0])
	}

	for _, pkg := range prog.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if !isMethodOn(fn, []string{"Arm", "Disarm", "Fire"}, "Faults", "internal/wal") {
					return true
				}
				arg := call.Args[0]
				tv := pkg.Info.Types[arg]
				if tv.Value == nil || tv.Value.Kind() != constant.String {
					return true // dynamic name: checked at its constant's origin
				}
				val := constant.StringVal(tv.Value)
				if len(blocks) == 0 {
					report(prog.Position(arg.Pos()),
						"fault point %q used but no //mvlint:faultregistry const block was found in the analyzed packages", val)
					return true
				}
				if !registry[val] {
					report(prog.Position(arg.Pos()),
						"fault point %q is not declared in the fault registry — a typo'd point arms a fault that never fires and the crash scenario silently passes", val)
				}
				return true
			})
		}

		// Test files: syntactic scan. A string literal passed to a method
		// named Arm/Fire/Disarm must be a registry value verbatim.
		for _, f := range pkg.TestFiles {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Arm", "Disarm", "Fire":
				default:
					return true
				}
				lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				val, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				if len(blocks) > 0 && !registry[val] {
					report(prog.Position(lit.Pos()),
						"fault point literal %q is not declared in the fault registry — use the registry constant so a typo cannot arm a fault that never fires", val)
				}
				return true
			})
		}
	}
	return nil
}
