package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the function or method a call expression invokes,
// or nil when it cannot be resolved (dynamic calls, type conversions,
// builtins, broken packages).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// recvInfo returns the name of the receiver's named base type and its
// package path, or ("", "") for a non-method.
func recvInfo(fn *types.Func) (typeName, pkgPath string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name(), ""
	}
	return obj.Name(), obj.Pkg().Path()
}

// isMethodOn reports whether fn is a method with the given name set on a
// named type from a package whose import path has the given suffix. The
// suffix match (rather than an exact path) lets the rules apply equally to
// the real packages and to golden-corpus fixtures importing them.
func isMethodOn(fn *types.Func, names []string, typeName, pathSuffix string) bool {
	if fn == nil {
		return false
	}
	ok := false
	for _, n := range names {
		if fn.Name() == n {
			ok = true
			break
		}
	}
	if !ok {
		return false
	}
	tn, pp := recvInfo(fn)
	if tn != typeName {
		return false
	}
	return pp == pathSuffix || strings.HasSuffix(pp, "/"+pathSuffix) || strings.HasSuffix(pp, pathSuffix)
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// funcDoc returns the doc comment group of a function declaration.
func funcDoc(fd *ast.FuncDecl) []*ast.CommentGroup {
	return []*ast.CommentGroup{fd.Doc}
}
