package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one directory's worth of analyzed code. Files are the
// non-test files, fully type-checked; TestFiles are parsed but not
// type-checked (test packages would need their own build variants), so only
// syntactic passes — the fault-point literal scan, //mvlint:ignore
// collection — look at them.
type Package struct {
	Dir        string
	ImportPath string
	Files      []*ast.File
	TestFiles  []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	TypeErrors []error
}

// A Program is the loaded analysis target: every package matched by the
// patterns, sharing one FileSet and one source importer.
type Program struct {
	Fset    *token.FileSet
	Pkgs    []*Package
	Sizes   types.Sizes
	ModRoot string // module root directory (where go.mod lives)
}

// Position converts a token.Pos into a Position via the program's FileSet.
func (p *Program) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// Load parses and type-checks the packages matched by patterns. Supported
// patterns are Go-tool-style directory paths relative to the current
// directory: "./..." (recursive, skipping testdata, vendor, hidden and
// underscore directories) and explicit directories like "./internal/mv" —
// explicit paths may name testdata packages, which is how the golden-corpus
// harness loads its fixtures.
func Load(patterns []string) (*Program, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(cwd)
	if err != nil {
		return nil, err
	}

	dirSet := make(map[string]bool)
	var dirs []string
	addDir := func(d string) {
		if !dirSet[d] {
			dirSet[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(cwd, rest)
			err := filepath.WalkDir(base, func(path string, de os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !de.IsDir() {
					return nil
				}
				name := de.Name()
				if path != base && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					addDir(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		d := pat
		if !filepath.IsAbs(d) {
			d = filepath.Join(cwd, d)
		}
		if !hasGoFiles(d) {
			return nil, fmt.Errorf("no Go files in %s", d)
		}
		addDir(d)
	}
	sort.Strings(dirs)

	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	prog := &Program{Fset: token.NewFileSet(), Sizes: sizes, ModRoot: modRoot}
	imp := importer.ForCompiler(prog.Fset, "source", nil)

	for _, dir := range dirs {
		pkg, err := loadDir(prog, imp, dir, modRoot, modPath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			prog.Pkgs = append(prog.Pkgs, pkg)
		}
	}
	return prog, nil
}

// loadDir parses one directory and type-checks its non-test files.
func loadDir(prog *Program, imp types.Importer, dir, modRoot, modPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(modRoot, dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}

	pkg := &Package{Dir: dir, ImportPath: importPath}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    prog.Sizes,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the first error too; TypeErrors already captured it.
	pkg.Pkg, _ = conf.Check(importPath, prog.Fset, pkg.Files, pkg.Info)
	return pkg, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
			return true
		}
	}
	return false
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
