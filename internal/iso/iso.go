// Package iso defines the transaction isolation levels of Section 2, shared
// by the multiversion and single-version engines.
package iso

// Level is a transaction isolation level.
type Level int

const (
	// ReadCommitted guarantees that all versions read are committed. In the
	// MV engine it reads at the current time; in the 1V engine it takes
	// short-duration read locks (cursor stability).
	ReadCommitted Level = iota
	// SnapshotIsolation reads a transaction-consistent snapshot as of the
	// transaction's begin time. Only the MV engine supports it; the 1V
	// engine upgrades it to RepeatableRead.
	SnapshotIsolation
	// RepeatableRead guarantees read stability but not phantom avoidance.
	RepeatableRead
	// Serializable guarantees read stability and phantom avoidance.
	Serializable
)

// String returns the level name as used in the paper.
func (l Level) String() string {
	switch l {
	case ReadCommitted:
		return "ReadCommitted"
	case SnapshotIsolation:
		return "SnapshotIsolation"
	case RepeatableRead:
		return "RepeatableRead"
	case Serializable:
		return "Serializable"
	default:
		return "Unknown"
	}
}
