package core

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/wal"
)

// lockedBuffer is a concurrency-safe sink.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Snapshot() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// With SyncCommit, the redo record is durable (in the sink) before Commit
// returns — no flush required.
func TestSyncCommitDurableBeforeReturn(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			sink := &lockedBuffer{}
			db, err := Open(Config{Scheme: scheme, LogSink: sink, SyncCommit: true, LogBatch: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			tbl, err := db.CreateTable(TableSpec{
				Name:    "t",
				Indexes: []IndexSpec{{Name: "pk", Key: keyOf, Buckets: 64}},
			})
			if err != nil {
				t.Fatal(err)
			}
			tx := db.Begin()
			if err := tx.Insert(tbl, pay(1, 10)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			recs, err := wal.ReadAll(bytes.NewReader(sink.Snapshot()))
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 1 || len(recs[0].Ops) != 1 || recs[0].Ops[0].Op != wal.OpInsert {
				t.Fatalf("log after sync commit: %d records", len(recs))
			}
		})
	}
}

// Aborted transactions and read-only transactions leave nothing in the log.
func TestLogSkipsAbortsAndReadOnly(t *testing.T) {
	sink := &lockedBuffer{}
	db, err := Open(Config{Scheme: MVOptimistic, LogSink: sink, SyncCommit: true, LogBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(TableSpec{
		Name:    "t",
		Indexes: []IndexSpec{{Name: "pk", Key: keyOf, Buckets: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	db.LoadRow(tbl, pay(1, 10))

	// Aborted writer: nothing logged.
	tx := db.Begin()
	if _, err := tx.UpdateWhere(tbl, 0, 1, nil, func([]byte) []byte { return pay(1, 99) }); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	// Read-only transaction: nothing logged.
	tx = db.Begin()
	if _, _, err := tx.Lookup(tbl, 0, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	recs, err := wal.ReadAll(bytes.NewReader(sink.Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("log has %d records, want 0", len(recs))
	}
}
