package core_test

import (
	"encoding/binary"
	"testing"

	"repro/internal/core"
)

func openLoaded(t *testing.T, scheme core.Scheme) (*core.Database, *core.Table) {
	t.Helper()
	db, err := core.Open(core.Config{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	key := func(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }
	tbl, err := db.CreateTable(core.TableSpec{
		Name:    "t",
		Indexes: []core.IndexSpec{{Name: "pk", Key: key, Buckets: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	row := func(k, v uint64) []byte {
		p := make([]byte, 16)
		binary.LittleEndian.PutUint64(p, k)
		binary.LittleEndian.PutUint64(p[8:], v)
		return p
	}
	for k := uint64(0); k < 10; k++ {
		db.LoadRow(tbl, row(k, k))
	}
	return db, tbl
}

func TestReadOnlyFacade(t *testing.T) {
	for _, scheme := range []core.Scheme{core.MVOptimistic, core.MVPessimistic, core.SingleVersion} {
		t.Run(scheme.String(), func(t *testing.T) {
			db, tbl := openLoaded(t, scheme)
			defer db.Close()

			tx := db.BeginReadOnly()
			r, ok, err := tx.Lookup(tbl, 0, 3, nil)
			if err != nil || !ok {
				t.Fatalf("lookup: ok=%v err=%v", ok, err)
			}
			if v := binary.LittleEndian.Uint64(r.Payload()[8:]); v != 3 {
				t.Fatalf("value %d, want 3", v)
			}
			if err := tx.Insert(tbl, make([]byte, 16)); err != core.ErrReadOnlyTx {
				t.Fatalf("Insert = %v, want ErrReadOnlyTx", err)
			}
			if err := tx.Update(tbl, r, make([]byte, 16)); err != core.ErrReadOnlyTx {
				t.Fatalf("Update = %v, want ErrReadOnlyTx", err)
			}
			if err := tx.Delete(tbl, r); err != core.ErrReadOnlyTx {
				t.Fatalf("Delete = %v, want ErrReadOnlyTx", err)
			}
			if _, err := tx.UpdateWhere(tbl, 0, 3, nil, func(old []byte) []byte { return old }); err != core.ErrReadOnlyTx {
				t.Fatalf("UpdateWhere = %v, want ErrReadOnlyTx", err)
			}
			if _, err := tx.DeleteWhere(tbl, 0, 3, nil); err != core.ErrReadOnlyTx {
				t.Fatalf("DeleteWhere = %v, want ErrReadOnlyTx", err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReadOnlyFastLaneCounters(t *testing.T) {
	db, tbl := openLoaded(t, core.MVOptimistic)
	defer db.Close()

	before := db.MV().Oracle().Current()
	for i := 0; i < 50; i++ {
		tx := db.Begin(core.WithReadOnly())
		if _, _, err := tx.Lookup(tbl, 0, uint64(i)%10, nil); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if after := db.MV().Oracle().Current(); after != before {
		t.Fatalf("read-only facade moved the counter: %d -> %d", before, after)
	}
	if s := db.MV().Stats(); s.ReadOnlyBegins != 50 {
		t.Fatalf("ReadOnlyBegins = %d, want 50", s.ReadOnlyBegins)
	}
}

// TestReadOnlySingleVersionReadStability pins the 1V semantics of
// WithReadOnly: the transaction must hold read locks (snapshot isolation is
// upgraded to repeatable read), so a concurrent writer cannot slip an
// update under a row the reader has seen. A read-only transaction at the
// 1V default (read committed) would let the update through.
func TestReadOnlySingleVersionReadStability(t *testing.T) {
	db, tbl := openLoaded(t, core.SingleVersion)
	defer db.Close()

	ro := db.BeginReadOnly()
	if _, ok, err := ro.Lookup(tbl, 0, 1, nil); err != nil || !ok {
		t.Fatalf("lookup: ok=%v err=%v", ok, err)
	}
	w := db.Begin()
	_, err := w.UpdateWhere(tbl, 0, 1, nil, func(old []byte) []byte {
		return append([]byte(nil), old...)
	})
	if err == nil {
		err = w.Commit()
	} else {
		_ = w.Abort()
	}
	if err == nil {
		t.Fatal("writer updated a row read-locked by a read-only transaction")
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchFacade(t *testing.T) {
	for _, scheme := range []core.Scheme{core.MVOptimistic, core.MVPessimistic, core.SingleVersion} {
		t.Run(scheme.String(), func(t *testing.T) {
			db, tbl := openLoaded(t, scheme)
			defer db.Close()

			b := db.BeginBatch(16, core.WithIsolation(core.ReadCommitted))
			defer b.Close()
			for i := 0; i < 40; i++ {
				tx := b.Begin()
				if i%4 == 0 {
					k := uint64(i % 10)
					if _, err := tx.UpdateWhere(tbl, 0, k, nil, func(old []byte) []byte {
						p := append([]byte(nil), old...)
						binary.LittleEndian.PutUint64(p[8:], binary.LittleEndian.Uint64(old[8:])+1)
						return p
					}); err != nil {
						tx.Abort()
						continue
					}
				} else if _, _, err := tx.Lookup(tbl, 0, uint64(i)%10, nil); err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil && scheme != core.SingleVersion {
					t.Fatalf("txn %d: %v", i, err)
				}
			}
		})
	}
}
