package core

import (
	"bytes"
	"encoding/binary"
	"io"
	"sync"
	"testing"

	"repro/internal/wal"
)

func pay(key, val uint64) []byte {
	p := make([]byte, 16)
	binary.LittleEndian.PutUint64(p, key)
	binary.LittleEndian.PutUint64(p[8:], val)
	return p
}

func keyOf(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }
func valOf(p []byte) uint64 { return binary.LittleEndian.Uint64(p[8:]) }

var allSchemes = []Scheme{SingleVersion, MVPessimistic, MVOptimistic}

func openTest(t *testing.T, scheme Scheme) (*Database, *Table) {
	t.Helper()
	db, err := Open(Config{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(TableSpec{
		Name:    "t",
		Indexes: []IndexSpec{{Name: "pk", Key: keyOf, Buckets: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, tbl
}

func TestCRUDAllSchemes(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			db, tbl := openTest(t, scheme)
			// Insert.
			tx := db.Begin()
			if err := tx.Insert(tbl, pay(1, 10)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			// Read.
			tx = db.Begin()
			row, ok, err := tx.Lookup(tbl, 0, 1, nil)
			if err != nil || !ok || valOf(row.Payload()) != 10 {
				t.Fatalf("lookup: ok=%v err=%v", ok, err)
			}
			// Update via handle.
			if err := tx.Update(tbl, row, pay(1, 20)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			// Verify and delete.
			tx = db.Begin()
			row, ok, _ = tx.Lookup(tbl, 0, 1, nil)
			if !ok || valOf(row.Payload()) != 20 {
				t.Fatalf("after update: ok=%v val=%d", ok, valOf(row.Payload()))
			}
			if err := tx.Delete(tbl, row); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			tx = db.Begin()
			if _, ok, _ := tx.Lookup(tbl, 0, 1, nil); ok {
				t.Fatal("row visible after delete")
			}
			tx.Commit()
			s := db.Stats()
			if s.Commits == 0 {
				t.Fatal("no commits counted")
			}
		})
	}
}

func TestScanPredicate(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			db, tbl := openTest(t, scheme)
			// Two rows with the same index key (same bucket via same key).
			db.LoadRow(tbl, pay(7, 1))
			db.LoadRow(tbl, pay(7, 2))
			tx := db.Begin()
			var vals []uint64
			err := tx.Scan(tbl, 0, 7, func(p []byte) bool { return valOf(p) == 2 }, func(r Row) bool {
				vals = append(vals, valOf(r.Payload()))
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(vals) != 1 || vals[0] != 2 {
				t.Fatalf("vals = %v", vals)
			}
			tx.Commit()
		})
	}
}

// The bank invariant: concurrent transfers preserve total balance under
// serializable isolation on every scheme.
func TestBankTransferInvariant(t *testing.T) {
	const accounts = 20
	const workers = 4
	const transfers = 200
	const initial = 1000

	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			db, tbl := openTest(t, scheme)
			for i := uint64(0); i < accounts; i++ {
				db.LoadRow(tbl, pay(i, initial))
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < transfers; i++ {
						from := uint64((w*31 + i*17) % accounts)
						to := uint64((w*13 + i*7 + 1) % accounts)
						if from == to {
							continue
						}
						transferOnce(db, tbl, from, to, 1)
					}
				}(w)
			}
			wg.Wait()
			// Sum must be unchanged.
			tx := db.Begin(WithIsolation(Serializable))
			var total uint64
			for i := uint64(0); i < accounts; i++ {
				row, ok, err := tx.Lookup(tbl, 0, i, nil)
				if err != nil || !ok {
					t.Fatalf("account %d: ok=%v err=%v", i, ok, err)
				}
				total += valOf(row.Payload())
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if total != accounts*initial {
				t.Fatalf("total = %d, want %d", total, accounts*initial)
			}
		})
	}
}

// transferOnce retries until the transfer commits.
func transferOnce(db *Database, tbl *Table, from, to uint64, amount uint64) {
	for attempt := 0; attempt < 100; attempt++ {
		tx := db.Begin(WithIsolation(Serializable))
		ok := func() bool {
			fromRow, found, err := tx.Lookup(tbl, 0, from, nil)
			if err != nil || !found {
				return false
			}
			toRow, found, err := tx.Lookup(tbl, 0, to, nil)
			if err != nil || !found {
				return false
			}
			fv, tv := valOf(fromRow.Payload()), valOf(toRow.Payload())
			if fv < amount {
				return true // nothing to transfer; commit empty
			}
			if err := tx.Update(tbl, fromRow, pay(from, fv-amount)); err != nil {
				return false
			}
			if err := tx.Update(tbl, toRow, pay(to, tv+amount)); err != nil {
				return false
			}
			return true
		}()
		if !ok {
			tx.Abort()
			continue
		}
		if err := tx.Commit(); err == nil {
			return
		}
	}
}

func TestMixedSchemesViaOptions(t *testing.T) {
	db, tbl := openTest(t, MVOptimistic)
	db.LoadRow(tbl, pay(1, 10))
	// A pessimistic transaction on an optimistic database.
	tx := db.Begin(WithScheme(MVPessimistic), WithIsolation(RepeatableRead))
	row, ok, err := tx.Lookup(tbl, 0, 1, nil)
	if err != nil || !ok {
		t.Fatalf("lookup: %v", err)
	}
	if err := tx.Update(tbl, row, pay(1, 11)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestLoggingProducesOrderedRecords(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			var buf bytes.Buffer
			var mu sync.Mutex
			sink := writerFunc(func(p []byte) (int, error) {
				mu.Lock()
				defer mu.Unlock()
				return buf.Write(p)
			})
			db, err := Open(Config{Scheme: scheme, LogSink: sink})
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := db.CreateTable(TableSpec{
				Name:    "t",
				Indexes: []IndexSpec{{Name: "pk", Key: keyOf, Buckets: 64}},
			})
			if err != nil {
				t.Fatal(err)
			}
			db.LoadRow(tbl, pay(1, 0))
			const n = 50
			for i := 1; i <= n; i++ {
				tx := db.Begin()
				if _, err := tx.UpdateWhere(tbl, 0, 1, nil, func([]byte) []byte {
					return pay(1, uint64(i))
				}); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			mu.Lock()
			recs, err := wal.ReadAll(bytes.NewReader(buf.Bytes()))
			mu.Unlock()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != n {
				t.Fatalf("log has %d records, want %d", len(recs), n)
			}
			// Single-threaded updates: end timestamps strictly increase.
			for i := 1; i < len(recs); i++ {
				if recs[i].EndTS <= recs[i-1].EndTS {
					t.Fatalf("log order violated: %d after %d", recs[i].EndTS, recs[i-1].EndTS)
				}
			}
		})
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

var _ io.Writer = writerFunc(nil)

func TestOpenUnknownScheme(t *testing.T) {
	if _, err := Open(Config{Scheme: Scheme(99)}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestWithIsolationOutOfRange(t *testing.T) {
	// Prebuilt option lookup must tolerate arbitrary levels (negative or
	// past the table) without panicking.
	for _, lvl := range []Isolation{Isolation(-1), Isolation(99)} {
		o := txOptions{}
		WithIsolation(lvl)(&o)
		if o.iso != lvl {
			t.Fatalf("WithIsolation(%d) set %d", lvl, o.iso)
		}
	}
}

func TestTxHandleFailsFastAfterCommit(t *testing.T) {
	db, err := Open(Config{Scheme: MVOptimistic})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(TableSpec{Name: "t", Indexes: []IndexSpec{{
		Name: "pk", Key: func(p []byte) uint64 { return uint64(p[0]) }, Buckets: 16,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert(tbl, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != ErrTxDone {
		t.Fatalf("second Commit = %v, want ErrTxDone", err)
	}
	if err := tx.Abort(); err != ErrTxDone {
		t.Fatalf("Abort after Commit = %v, want ErrTxDone", err)
	}
	if err := tx.Insert(tbl, []byte{2}); err != ErrTxDone {
		t.Fatalf("Insert after Commit = %v, want ErrTxDone", err)
	}
}
