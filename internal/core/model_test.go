package core

// Model-based differential testing: random single-transaction operation
// sequences are applied both to the engine and to a plain map model; after
// every commit the model and the engine must agree exactly, and after every
// abort the model must be unchanged. Runs across all schemes and isolation
// levels (single-threaded, so every isolation level must behave like
// serializable here).

import (
	"math/rand"
	"testing"
	"testing/quick"
)

type modelOp struct {
	kind byte // 0 read, 1 upsert, 2 delete, 3 scan-count
	key  uint64
	val  uint64
}

func applyModelSequence(t *testing.T, scheme Scheme, level Isolation, seed int64) bool {
	t.Helper()
	db, tbl := openTest(t, scheme)
	rng := rand.New(rand.NewSource(seed))
	const keys = 12

	model := make(map[uint64]uint64)
	for k := uint64(0); k < keys/2; k++ {
		v := rng.Uint64() % 1000
		db.LoadRow(tbl, pay(k, v))
		model[k] = v
	}

	for txi := 0; txi < 40; txi++ {
		tx := db.Begin(WithIsolation(level))
		pending := make(map[uint64]*uint64) // nil = delete
		failed := false
		nOps := 1 + rng.Intn(6)
		for op := 0; op < nOps && !failed; op++ {
			k := rng.Uint64() % keys
			cur := func() (uint64, bool) {
				if pv, ok := pending[k]; ok {
					if pv == nil {
						return 0, false
					}
					return *pv, true
				}
				v, ok := model[k]
				return v, ok
			}
			switch rng.Intn(4) {
			case 0: // read must match model ∪ pending
				row, ok, err := tx.Lookup(tbl, 0, k, nil)
				if err != nil {
					failed = true
					break
				}
				wantV, wantOK := cur()
				if ok != wantOK || (ok && valOf(row.Payload()) != wantV) {
					t.Fatalf("seed=%d %s/%s txi=%d: read k=%d got (%v,%v) want (%v,%v)",
						seed, scheme, level, txi, k, valOf(row.Payload()), ok, wantV, wantOK)
				}
			case 1: // upsert
				nv := rng.Uint64() % 1000
				row, ok, err := tx.Lookup(tbl, 0, k, nil)
				if err != nil {
					failed = true
					break
				}
				if ok {
					err = tx.Update(tbl, row, pay(k, nv))
				} else {
					err = tx.Insert(tbl, pay(k, nv))
				}
				if err != nil {
					failed = true
					break
				}
				v := nv
				pending[k] = &v
			case 2: // delete if present
				n, err := tx.DeleteWhere(tbl, 0, k, nil)
				if err != nil {
					failed = true
					break
				}
				_, wantOK := cur()
				if (n == 1) != wantOK {
					t.Fatalf("seed=%d %s/%s: delete k=%d removed %d rows, want present=%v",
						seed, scheme, level, k, n, wantOK)
				}
				if n == 1 {
					pending[k] = nil
				}
			case 3: // scan count over one key's bucket
				count := 0
				if err := tx.Scan(tbl, 0, k, nil, func(Row) bool { count++; return true }); err != nil {
					failed = true
					break
				}
				want := 0
				if _, ok := cur(); ok {
					want = 1
				}
				if count != want {
					t.Fatalf("seed=%d %s/%s: scan k=%d count=%d want %d",
						seed, scheme, level, k, count, want)
				}
			}
		}
		if failed {
			tx.Abort()
			continue // model unchanged
		}
		// Randomly abort some transactions: their effects must vanish.
		if rng.Intn(5) == 0 {
			tx.Abort()
			continue
		}
		if err := tx.Commit(); err != nil {
			continue // treated as abort
		}
		for k, pv := range pending {
			if pv == nil {
				delete(model, k)
			} else {
				model[k] = *pv
			}
		}
	}

	// Final audit: engine state equals the model exactly.
	audit := db.Begin(WithIsolation(SnapshotIsolation))
	for k := uint64(0); k < keys; k++ {
		row, ok, err := audit.Lookup(tbl, 0, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantV, wantOK := model[k]
		if ok != wantOK || (ok && valOf(row.Payload()) != wantV) {
			t.Fatalf("seed=%d %s/%s final: k=%d got (%v,%v) want (%v,%v)",
				seed, scheme, level, k, valOf(row.Payload()), ok, wantV, wantOK)
		}
	}
	if err := audit.Commit(); err != nil {
		t.Fatal(err)
	}
	return true
}

func TestQuickModelEquivalence(t *testing.T) {
	levels := []Isolation{ReadCommitted, SnapshotIsolation, RepeatableRead, Serializable}
	for _, scheme := range allSchemes {
		for _, level := range levels {
			scheme, level := scheme, level
			t.Run(scheme.String()+"/"+level.String(), func(t *testing.T) {
				f := func(seed int64) bool {
					return applyModelSequence(t, scheme, level, seed)
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
