package core

// Degraded read-only mode: after a latched log failure, the in-flight commit
// fails, new writes fail fast with ErrDegraded on every scheme, and reads —
// plain and read-only snapshot — keep serving.

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// brokenSink fails every Write once tripped; Sync fails once tripped too.
type brokenSink struct {
	mu       sync.Mutex
	writeErr error
	syncErr  error
	syncs    int
}

func (s *brokenSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writeErr != nil {
		return 0, s.writeErr
	}
	return len(p), nil
}

func (s *brokenSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncs++
	return s.syncErr
}

func (s *brokenSink) trip(write, sync error) {
	s.mu.Lock()
	s.writeErr, s.syncErr = write, sync
	s.mu.Unlock()
}

func (s *brokenSink) syncCalls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

func testDegradedEngine(t *testing.T, scheme Scheme, breakSink func(*brokenSink)) {
	sink := &brokenSink{}
	db, err := Open(Config{
		Scheme:      scheme,
		LogSink:     sink,
		Durability:  DurabilityFsync,
		LockTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(TableSpec{
		Name:    "t",
		Indexes: []IndexSpec{{Name: "pk", Key: keyOf, Buckets: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy phase: a committed row to read back later.
	tx := db.Begin()
	if err := tx.Insert(tbl, pay(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Degraded(); err != nil {
		t.Fatalf("healthy database reports degraded: %v", err)
	}

	// The disk dies; the in-flight commit must fail, not be acknowledged.
	breakSink(sink)
	tx = db.Begin()
	if err := tx.Insert(tbl, pay(2, 20)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit acknowledged after log failure")
	}
	if err := db.Degraded(); err == nil {
		t.Fatal("database not degraded after failed commit")
	}

	// New writes fail fast with ErrDegraded, before taking locks or space.
	tx = db.Begin()
	if err := tx.Insert(tbl, pay(3, 30)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Insert on degraded engine = %v, want ErrDegraded", err)
	}
	tx.Abort()

	// Reads keep serving — both a plain transaction and the read-only
	// snapshot fast lane — and the failed commit's effects are invisible.
	for _, ro := range []bool{false, true} {
		var rtx *Tx
		if ro {
			rtx = db.BeginReadOnly()
		} else {
			rtx = db.Begin()
		}
		row, ok, err := rtx.Lookup(tbl, 0, 1, nil)
		if err != nil || !ok || valOf(row.Payload()) != 10 {
			t.Fatalf("read (readonly=%v) on degraded engine: ok=%v err=%v", ro, ok, err)
		}
		if _, ok, _ := rtx.Lookup(tbl, 0, 2, nil); ok {
			t.Fatalf("aborted commit's row visible after degradation (readonly=%v)", ro)
		}
		if err := rtx.Commit(); err != nil {
			t.Fatalf("read-only commit on degraded engine: %v", err)
		}
	}
}

func TestDegradedOnWriteError(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			testDegradedEngine(t, scheme, func(s *brokenSink) {
				s.trip(errors.New("EIO: write failed"), nil)
			})
		})
	}
}

func TestDegradedOnFsyncError(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			sinkRef := make(chan *brokenSink, 1)
			testDegradedEngine(t, scheme, func(s *brokenSink) {
				sinkRef <- s
				s.trip(nil, errors.New("EIO: fsync failed"))
			})
			// The fsyncgate contract holds end to end: after the failed
			// fsync was latched, the engine never issued another one.
			s := <-sinkRef
			after := s.syncCalls()
			time.Sleep(5 * time.Millisecond)
			if s.syncCalls() != after {
				t.Fatal("fsync retried after a latched fsync failure")
			}
		})
	}
}
