package core

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/workload/seedtest"
)

// These tests exercise the combining-funnel oracle draws (ts.Funnel) through
// the full engine stack at GOMAXPROCS >= 4: enough processors that windowed
// draws actually combine with enrolled peers instead of degenerating to the
// solo fast path. Run under -race in CI, they are the concurrency witness
// for the funnel's handoff protocol; the history test below is the ordering
// witness — combined draws must remain indistinguishable from direct ones to
// the serializability checker.

// withGOMAXPROCS raises GOMAXPROCS to at least n for the duration of the
// test (never lowers it) and restores the old value afterwards.
func withGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(0)
	if old < n {
		runtime.GOMAXPROCS(n)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

// TestFunnelStressEngines hammers commit from many goroutines on every
// scheme — plain transactions interleaved with TxBatch streams (batch
// reserves go through the funnel's NextN) — and checks the properties the
// funnel must preserve end to end: commit stamps are globally unique,
// per-goroutine strictly increasing (a draw linearizes inside its own
// CommitTS call), and the funnel's accounting stays consistent.
func TestFunnelStressEngines(t *testing.T) {
	withGOMAXPROCS(t, 4)
	const (
		workers = 8
		rows    = 256
	)
	txns := 400
	if testing.Short() {
		txns = 120
	}
	for _, scheme := range allSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			db, err := Open(Config{Scheme: scheme, LockTimeout: 50 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			tbl, err := db.CreateTable(TableSpec{
				Name:    "t",
				Indexes: []IndexSpec{{Name: "pk", Key: keyOf, Buckets: 1 << 8}},
			})
			if err != nil {
				t.Fatal(err)
			}
			for k := uint64(0); k < rows; k++ {
				db.LoadRow(tbl, pay(k, k))
			}

			stamps := make([][]uint64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)*6151 + 17))
					var batch *TxBatch
					if w%2 == 0 {
						batch = db.BeginBatch(32)
						defer batch.Close()
					}
					for i := 0; i < txns; i++ {
						for {
							var tx *Tx
							if batch != nil {
								tx = batch.Begin()
							} else {
								tx = db.Begin()
							}
							k := rng.Uint64() % rows
							if _, err := tx.UpdateWhere(tbl, 0, k, nil, func(old []byte) []byte {
								return pay(k, valOf(old)+1)
							}); err != nil {
								tx.Abort()
								continue
							}
							end, err := tx.CommitTS()
							if err != nil {
								continue
							}
							if end != 0 {
								stamps[w] = append(stamps[w], end)
							}
							break
						}
					}
				}(w)
			}
			wg.Wait()

			seen := make(map[uint64]int)
			for w, ss := range stamps {
				for i, s := range ss {
					if i > 0 && s <= ss[i-1] {
						t.Fatalf("worker %d: stamp %d after %d — commit order not monotone", w, s, ss[i-1])
					}
					if prev, dup := seen[s]; dup {
						t.Fatalf("stamp %d issued to workers %d and %d", s, prev, w)
					}
					seen[s] = w
				}
			}
			fs := db.FunnelStats()
			if fs.Draws < fs.Physical || fs.Draws > fs.Physical+fs.Combined {
				t.Fatalf("funnel accounting inconsistent: %+v", fs)
			}
			t.Logf("%s: %d unique stamps, funnel %+v (ratio %.2f)", scheme, len(seen), fs, fs.Ratio())
		})
	}
}

// TestFunnelHistorySerializable re-runs the randomized serializable range
// workload with GOMAXPROCS raised to 4, where end-timestamp draws combine
// across concurrent committers. The range-aware checker replays every
// committed history in end-timestamp order, so a combined draw that broke
// the commit-order contract (a stamp issued out of order with a lock
// release or a conflicting commit) would surface as a serializability
// violation here.
func TestFunnelHistorySerializable(t *testing.T) {
	withGOMAXPROCS(t, 4)
	base := seedtest.Base(t, 7877)
	seeds := 2
	if testing.Short() {
		seeds = 1
	}
	for _, scheme := range allSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			for i := 0; i < seeds; i++ {
				runRandomRangeWorkload(t, scheme, seedtest.Derive(base, i))
			}
		})
	}
}
