package core

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"repro/internal/keyenc"
)

// The composite test schema: rows carry (id, grp, val); the primary index
// hashes the id, the secondary ordered index keys on the order-preserving
// composite (grp, id) — non-unique in its grp prefix, unique as a tuple.
var grpLayout = keyenc.MustLayout(keyenc.Field{Name: "grp", Bits: 16}, keyenc.Field{Name: "id", Bits: 48})

func compRow(id, grp, val uint64) []byte {
	p := make([]byte, 24)
	binary.LittleEndian.PutUint64(p, id)
	binary.LittleEndian.PutUint64(p[8:], grp)
	binary.LittleEndian.PutUint64(p[16:], val)
	return p
}

func compID(p []byte) uint64  { return binary.LittleEndian.Uint64(p) }
func compGrp(p []byte) uint64 { return binary.LittleEndian.Uint64(p[8:]) }
func compVal(p []byte) uint64 { return binary.LittleEndian.Uint64(p[16:]) }

func compKey(p []byte) uint64 { return grpLayout.MustEncode(compGrp(p), compID(p)) }

func openComposite(t *testing.T, scheme Scheme, timeout time.Duration) (*Database, *Table) {
	t.Helper()
	db, err := Open(Config{Scheme: scheme, LockTimeout: timeout})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(TableSpec{
		Name: "events",
		Indexes: []IndexSpec{
			{Name: "id", Key: compID, Buckets: 1 << 10},
			{Name: "grp", Key: compKey, Ordered: true, Composite: grpLayout},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, tbl
}

// TestScanPrefixBasic: prefix scans return exactly the rows of the group,
// in composite key order, on every engine; full-tuple and empty prefixes
// behave as point and full scans.
func TestScanPrefixBasic(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			db, tbl := openComposite(t, scheme, time.Second)
			// Three groups with interleaved ids.
			for id := uint64(0); id < 30; id++ {
				db.LoadRow(tbl, compRow(id, id%3, id*10))
			}
			tx := db.Begin()
			var ids []uint64
			err := tx.ScanPrefix(tbl, 1, []uint64{1}, nil, func(r Row) bool {
				if compGrp(r.Payload()) != 1 {
					t.Fatalf("group %d leaked into prefix-1 scan", compGrp(r.Payload()))
				}
				ids = append(ids, compID(r.Payload()))
				return true
			})
			if err != nil {
				t.Fatalf("ScanPrefix: %v", err)
			}
			if len(ids) != 10 {
				t.Fatalf("prefix scan returned %d rows: %v", len(ids), ids)
			}
			for i := 1; i < len(ids); i++ {
				if ids[i] <= ids[i-1] {
					t.Fatalf("ids out of order: %v", ids)
				}
			}
			// Full-tuple prefix pins one row.
			rows, err := tx.LookupPrefix(tbl, 1, []uint64{2, 5}, nil)
			if err != nil || len(rows) != 1 || compID(rows[0]) != 5 {
				t.Fatalf("full-tuple prefix: rows=%d err=%v", len(rows), err)
			}
			// Empty prefix scans the whole index.
			rows, err = tx.LookupPrefix(tbl, 1, nil, nil)
			if err != nil || len(rows) != 30 {
				t.Fatalf("empty prefix: rows=%d err=%v", len(rows), err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestScanPrefixGating: ScanPrefix demands a Composite layout; unordered
// composite indexes surface ErrUnordered from the range machinery; field
// overflow surfaces the keyenc error.
func TestScanPrefixGating(t *testing.T) {
	for _, scheme := range allSchemes {
		db, err := Open(Config{Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := db.CreateTable(TableSpec{
			Name: "events",
			Indexes: []IndexSpec{
				{Name: "id", Key: compID, Buckets: 64},
				// A composite HASH index: exact-tuple lookups work, prefix
				// scans cannot.
				{Name: "grp", Key: compKey, Buckets: 64, Composite: grpLayout},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		db.LoadRow(tbl, compRow(7, 3, 70))
		tx := db.Begin()
		// No layout on index 0.
		err = tx.ScanPrefix(tbl, 0, []uint64{1}, nil, func(Row) bool { return true })
		if !errors.Is(err, ErrNotComposite) {
			t.Fatalf("%v: ScanPrefix on plain index = %v, want ErrNotComposite", scheme, err)
		}
		// Layout but unordered.
		err = tx.ScanPrefix(tbl, 1, []uint64{3}, nil, func(Row) bool { return true })
		if !errors.Is(err, ErrUnordered) {
			t.Fatalf("%v: ScanPrefix on hash index = %v, want ErrUnordered", scheme, err)
		}
		// Field overflow.
		err = tx.ScanPrefix(tbl, 1, []uint64{1 << 20}, nil, func(Row) bool { return true })
		if !errors.Is(err, keyenc.ErrOverflow) {
			t.Fatalf("%v: overflowing prefix = %v, want keyenc.ErrOverflow", scheme, err)
		}
		// Exact-tuple point lookup through the composite hash index works.
		row, ok, err := tx.Lookup(tbl, 1, grpLayout.MustEncode(3, 7), nil)
		if err != nil || !ok || compVal(row.Payload()) != 70 {
			t.Fatalf("%v: composite hash lookup ok=%v err=%v", scheme, ok, err)
		}
		tx.Abort()
		db.Close()
	}
}

func prefixIDs(t *testing.T, tx *Tx, tbl *Table, grp uint64) []uint64 {
	t.Helper()
	var ids []uint64
	err := tx.ScanPrefix(tbl, 1, []uint64{grp}, nil, func(r Row) bool {
		ids = append(ids, compID(r.Payload()))
		return true
	})
	if err != nil {
		t.Fatalf("ScanPrefix: %v", err)
	}
	return ids
}

// TestCompositePrefixPhantomMVO: a serializable optimistic prefix scan is
// revalidated at commit; a concurrent insert into the scanned group aborts
// the scanner (the rescan finds the phantom).
func TestCompositePrefixPhantomMVO(t *testing.T) {
	db, tbl := openComposite(t, MVOptimistic, time.Second)
	for id := uint64(0); id < 10; id++ {
		db.LoadRow(tbl, compRow(id, id%2, 0))
	}
	t1 := db.Begin(WithIsolation(Serializable))
	if ids := prefixIDs(t, t1, tbl, 1); len(ids) != 5 {
		t.Fatalf("initial scan: %v", ids)
	}
	t2 := db.Begin()
	if err := t2.Insert(tbl, compRow(100, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err == nil {
		t.Fatal("MV/O scanner committed over a phantom insert into its scanned prefix")
	}
	// A group the scan did not cover does not abort the scanner.
	t3 := db.Begin(WithIsolation(Serializable))
	prefixIDs(t, t3, tbl, 1)
	t4 := db.Begin()
	if err := t4.Insert(tbl, compRow(101, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := t4.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatalf("MV/O scanner aborted by an insert outside its prefix: %v", err)
	}
}

// TestCompositePrefixPhantomMVL: a serializable pessimistic prefix scan
// range-locks the encoded prefix interval; a concurrent inserter into the
// group takes a wait-for dependency and its commit blocks until the
// scanner completes.
func TestCompositePrefixPhantomMVL(t *testing.T) {
	db, tbl := openComposite(t, MVPessimistic, time.Second)
	for id := uint64(0); id < 10; id++ {
		db.LoadRow(tbl, compRow(id, id%2, 0))
	}
	t1 := db.Begin(WithIsolation(Serializable))
	if ids := prefixIDs(t, t1, tbl, 1); len(ids) != 5 {
		t.Fatalf("initial scan: %v", ids)
	}
	committed := make(chan error, 1)
	go func() {
		t2 := db.Begin()
		if err := t2.Insert(tbl, compRow(100, 1, 1)); err != nil {
			t2.Abort()
			committed <- err
			return
		}
		committed <- t2.Commit()
	}()
	select {
	case err := <-committed:
		t.Fatalf("inserter committed (%v) while the prefix scan lock was held", err)
	case <-time.After(50 * time.Millisecond):
		// Still blocked: phantom delayed, as Section 4.2.2 requires.
	}
	// The scanner rereads a stable group, then commits and releases the
	// inserter.
	if ids := prefixIDs(t, t1, tbl, 1); len(ids) != 5 {
		t.Fatalf("scan became unstable: %v", ids)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("scanner commit: %v", err)
	}
	select {
	case err := <-committed:
		if err != nil {
			t.Fatalf("inserter failed after scanner committed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("inserter never unblocked")
	}
}

// TestCompositePrefixPhantom1V: the 1V scan holds a shared range lock over
// the encoded prefix interval to commit; the inserter's X point lock blocks
// inside Insert until the scanner releases.
func TestCompositePrefixPhantom1V(t *testing.T) {
	db, tbl := openComposite(t, SingleVersion, 5*time.Second)
	for id := uint64(0); id < 10; id++ {
		db.LoadRow(tbl, compRow(id, id%2, 0))
	}
	t1 := db.Begin(WithIsolation(Serializable))
	if ids := prefixIDs(t, t1, tbl, 1); len(ids) != 5 {
		t.Fatalf("initial scan: %v", ids)
	}
	inserted := make(chan error, 1)
	go func() {
		t2 := db.Begin()
		if err := t2.Insert(tbl, compRow(100, 1, 1)); err != nil {
			t2.Abort()
			inserted <- err
			return
		}
		inserted <- t2.Commit()
	}()
	select {
	case err := <-inserted:
		t.Fatalf("inserter finished (%v) while the S range lock was held", err)
	case <-time.After(50 * time.Millisecond):
		// Blocked on the X point lock, as intended.
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("scanner commit: %v", err)
	}
	select {
	case err := <-inserted:
		if err != nil {
			t.Fatalf("inserter failed after scanner released: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("inserter never unblocked")
	}
	// Final state: the group gained the row.
	t3 := db.Begin()
	if ids := prefixIDs(t, t3, tbl, 1); len(ids) != 6 {
		t.Fatalf("final group: %v", ids)
	}
	t3.Commit()
}
