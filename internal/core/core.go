// Package core is the public API of the storage engine library: a uniform
// Database/Tx interface over the three concurrency control mechanisms the
// paper evaluates — single-version locking (1V), multiversion pessimistic
// locking (MV/L) and multiversion optimistic validation (MV/O).
//
// A Database is created with a default scheme; with a multiversion database,
// individual transactions may override the scheme, because optimistic and
// pessimistic transactions coexist on one engine (Section 4.5). All four
// isolation levels of Section 2 are available (the single-version engine
// upgrades snapshot isolation to repeatable read).
//
//	db, _ := core.Open(core.Config{Scheme: core.MVOptimistic})
//	defer db.Close()
//	accounts, _ := db.CreateTable(core.TableSpec{
//		Name: "accounts",
//		Indexes: []core.IndexSpec{{Name: "id", Key: keyFn, Buckets: 1 << 16}},
//	})
//	tx := db.Begin(core.WithIsolation(core.Serializable))
//	...
//	if err := tx.Commit(); err != nil { /* aborted; maybe retry */ }
package core

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/iso"
	"repro/internal/keyenc"
	"repro/internal/mv"
	"repro/internal/storage"
	"repro/internal/sv"
	"repro/internal/ts"
	"repro/internal/wal"
)

// Scheme selects a concurrency control mechanism.
type Scheme int

const (
	// MVOptimistic is the multiversion optimistic scheme (MV/O, Section 3).
	MVOptimistic Scheme = iota
	// MVPessimistic is the multiversion locking scheme (MV/L, Section 4).
	MVPessimistic
	// SingleVersion is main-memory optimized single-version locking (1V,
	// Section 5).
	SingleVersion
)

// String returns the scheme label used in the paper's charts.
func (s Scheme) String() string {
	switch s {
	case MVOptimistic:
		return "MV/O"
	case MVPessimistic:
		return "MV/L"
	case SingleVersion:
		return "1V"
	default:
		return "Unknown"
	}
}

// Isolation levels, re-exported from package iso.
type Isolation = iso.Level

const (
	ReadCommitted     = iso.ReadCommitted
	SnapshotIsolation = iso.SnapshotIsolation
	RepeatableRead    = iso.RepeatableRead
	Serializable      = iso.Serializable
)

// IndexSpec describes one hash index.
type IndexSpec = storage.IndexSpec

// TableSpec describes a table and its indexes.
type TableSpec = storage.TableSpec

// Pred is a residual scan predicate; nil matches everything.
type Pred func(payload []byte) bool

// Durability levels for commit acknowledgements, re-exported from wal.
type Durability = wal.Durability

const (
	// DurabilityAsync acknowledges commits as soon as the redo record is
	// queued for group commit (the paper's measurement configuration).
	DurabilityAsync = wal.Async
	// DurabilityFlush acknowledges after the record's batch reached the log
	// sink; survives a process kill, not a power loss.
	DurabilityFlush = wal.Flush
	// DurabilityFsync acknowledges after the batch's per-group fsync; the
	// only level whose acknowledgement survives power loss.
	DurabilityFsync = wal.Fsync
)

// Config controls database construction.
type Config struct {
	// Scheme is the default concurrency control scheme for transactions.
	Scheme Scheme
	// LogSink, when non-nil, enables redo logging to the writer with
	// asynchronous group commit (the paper's experimental configuration).
	LogSink io.Writer
	// Durability selects the commit acknowledgement level (default
	// DurabilityAsync). DurabilityFsync requires a sink implementing
	// wal.Syncer (ckpt.Store, *os.File); otherwise it behaves as Flush.
	Durability Durability
	// SyncCommit makes commits wait for their log batch to be flushed.
	// Legacy equivalent of DurabilityFlush, honored when Durability is left
	// at the default.
	SyncCommit bool
	// LogBatch is the group-commit batch size (default 256).
	LogBatch int
	// LockTimeout bounds 1V lock waits (deadlock breaking); default 25ms.
	LockTimeout time.Duration
	// DeadlockInterval is the MV/L wait-for deadlock detection period;
	// 0 = default (2ms), negative disables the background detector.
	DeadlockInterval time.Duration
	// GCEvery runs cooperative MV garbage collection every N transactions
	// (default 64); negative disables it.
	GCEvery int
	// DisableSpeculation turns off speculative reads/ignores (ablation).
	DisableSpeculation bool
	// DisableEagerUpdates turns off MV/L eager updates (ablation).
	DisableEagerUpdates bool
}

// Database is a main-memory database instance backed by one engine.
type Database struct {
	cfg   Config
	log   *wal.Log
	mvEng *mv.Engine
	svEng *sv.Engine
}

// Table is a handle to a table of whichever engine backs the database.
type Table struct {
	name string
	mvT  *storage.Table
	svT  *sv.Table
	// layouts[i] is index i's composite key layout (nil for plain uint64
	// keys), cached from the IndexSpec so ScanPrefix can turn field
	// prefixes into encoded key ranges without touching the engine.
	layouts []*keyenc.Layout
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Layout returns index i's composite key layout, or nil when the index
// keys on a plain uint64.
func (t *Table) Layout(i int) *keyenc.Layout { return t.layouts[i] }

// Open creates a database.
func Open(cfg Config) (*Database, error) {
	db := &Database{cfg: cfg}
	if cfg.LogSink != nil {
		db.log = wal.Open(wal.Config{
			Sink:        cfg.LogSink,
			Durability:  cfg.Durability,
			Synchronous: cfg.SyncCommit,
			BatchSize:   cfg.LogBatch,
		})
	}
	switch cfg.Scheme {
	case SingleVersion:
		db.svEng = sv.NewEngine(sv.Config{Log: db.log, LockTimeout: cfg.LockTimeout})
	case MVOptimistic, MVPessimistic:
		db.mvEng = mv.NewEngine(mv.Config{
			Log:                 db.log,
			DeadlockInterval:    cfg.DeadlockInterval,
			GCEvery:             cfg.GCEvery,
			DisableSpeculation:  cfg.DisableSpeculation,
			DisableEagerUpdates: cfg.DisableEagerUpdates,
		})
	default:
		return nil, fmt.Errorf("core: unknown scheme %d", cfg.Scheme)
	}
	return db, nil
}

// Close stops background workers and closes the log.
func (db *Database) Close() error {
	if db.mvEng != nil {
		return db.mvEng.Close()
	}
	return db.svEng.Close()
}

// CreateTable registers a table.
func (db *Database) CreateTable(spec TableSpec) (*Table, error) {
	t := &Table{name: spec.Name, layouts: make([]*keyenc.Layout, len(spec.Indexes))}
	for i, is := range spec.Indexes {
		t.layouts[i] = is.Composite
	}
	var err error
	if db.mvEng != nil {
		t.mvT, err = db.mvEng.CreateTable(spec)
	} else {
		t.svT, err = db.svEng.CreateTable(spec)
	}
	if err != nil {
		return nil, err
	}
	return t, nil
}

// LoadRow bulk-loads a committed row outside any transaction. Not safe for
// concurrent use; intended for initial population.
func (db *Database) LoadRow(t *Table, payload []byte) {
	if db.mvEng != nil {
		db.mvEng.LoadRow(t.mvT, payload)
	} else {
		db.svEng.LoadRow(t.svT, payload)
	}
}

// MV exposes the underlying multiversion engine (nil for 1V databases); used
// by tests and diagnostics.
func (db *Database) MV() *mv.Engine { return db.mvEng }

// SV exposes the underlying single-version engine (nil for MV databases).
func (db *Database) SV() *sv.Engine { return db.svEng }

// WAL exposes the database's redo log, or nil when logging is disabled. The
// checkpointer uses it to flush and fence the log around a checkpoint.
func (db *Database) WAL() *wal.Log { return db.log }

// FunnelStats returns the timestamp-oracle combining funnel's counters: for
// MV databases the shared commit-timestamp funnel, for 1V databases the
// end-sequence funnel. Physical is the number of fetch-and-adds actually
// issued on the shared counter; Draws/Physical is the combining ratio.
func (db *Database) FunnelStats() ts.FunnelStats {
	if db.mvEng != nil {
		return db.mvEng.FunnelStats()
	}
	return db.svEng.FunnelStats()
}

// PinOverflows reports how many reader-pin acquisitions found every slot of
// the striped pin table occupied and fell back to a slower registered path
// (MV: read-only fast-lane registration; 1V: node-epoch entry). Persistent
// overflow on a healthy workload means the pin table is undersized for the
// machine's concurrency.
func (db *Database) PinOverflows() uint64 {
	if db.mvEng != nil {
		return db.mvEng.PinTableOverflows()
	}
	return db.svEng.PinTableOverflows()
}

// Degraded returns the latched log failure that flipped the database into
// degraded read-only mode, or nil while healthy. A degraded database keeps
// serving reads and read-only snapshots; new writes fail fast with
// ErrDegraded, and the in-flight commit that hit the failure was aborted.
// Degradation is permanent for the database's lifetime — recovery from a
// disk fault means restarting from the log and checkpoints, not ignoring
// the hole a failed fsync left.
func (db *Database) Degraded() error {
	if db.mvEng != nil {
		return db.mvEng.Degraded()
	}
	return db.svEng.Degraded()
}

// Capture streams a transactionally consistent snapshot of the given tables
// to fn and returns the stable timestamp S: the snapshot contains the
// effects of exactly the committed transactions with end timestamp (1V: end
// sequence) at most S. This is the engine-neutral checkpoint scan — the
// multiversion engines capture versions visible at the GC watermark under a
// reader pin, and the single-version engine runs a shared-lock capture
// transaction (see mv.Engine.Capture and sv.Engine.Capture for the two
// consistency arguments). The payload passed to fn is valid only during the
// callback. On the 1V engine a capture can time out against concurrent
// writers; callers retry.
func (db *Database) Capture(tables []*Table, fn func(t *Table, key uint64, payload []byte) error) (uint64, error) {
	if db.mvEng != nil {
		byEngine := make(map[*storage.Table]*Table, len(tables))
		mvTables := make([]*storage.Table, len(tables))
		for i, t := range tables {
			byEngine[t.mvT] = t
			mvTables[i] = t.mvT
		}
		return db.mvEng.Capture(mvTables, func(st *storage.Table, key uint64, payload []byte) error {
			return fn(byEngine[st], key, payload)
		})
	}
	byEngine := make(map[*sv.Table]*Table, len(tables))
	svTables := make([]*sv.Table, len(tables))
	for i, t := range tables {
		byEngine[t.svT] = t
		svTables[i] = t.svT
	}
	return db.svEng.Capture(svTables, func(st *sv.Table, key uint64, payload []byte) error {
		return fn(byEngine[st], key, payload)
	})
}

// CollectGarbage runs a bounded GC round on MV databases; it reports the
// number of versions reclaimed (always 0 for 1V: updates are in place).
func (db *Database) CollectGarbage(limit int) int {
	if db.mvEng != nil {
		return db.mvEng.CollectGarbage(limit)
	}
	return 0
}

// Stats merges engine counters into a uniform view.
type Stats struct {
	Commits           uint64
	Aborts            uint64
	WriteConflicts    uint64
	ValidationFails   uint64
	LockFailures      uint64
	LockTimeouts      uint64
	DeadlockVictims   uint64
	CascadingAborts   uint64
	SpeculativeReads  uint64
	VersionsRetired   uint64
	VersionsReclaimed uint64
}

// Stats returns a snapshot of the database's counters.
func (db *Database) Stats() Stats {
	if db.mvEng != nil {
		s := db.mvEng.Stats()
		return Stats{
			Commits:           s.Commits,
			Aborts:            s.Aborts,
			WriteConflicts:    s.WriteConflicts,
			ValidationFails:   s.ValidationFails,
			LockFailures:      s.LockFailures,
			DeadlockVictims:   s.DeadlockVictims,
			CascadingAborts:   s.CascadingAborts,
			SpeculativeReads:  s.SpeculativeReads,
			VersionsRetired:   s.VersionsRetired,
			VersionsReclaimed: s.VersionsReclaims,
		}
	}
	s := db.svEng.Stats()
	return Stats{Commits: s.Commits, Aborts: s.Aborts, LockTimeouts: s.LockTimeouts}
}

// LogStats returns the write-ahead log's activity counters — appended and
// flushed records, batches, bytes, and fsyncs issued (the group-commit
// amortization ratio is Appended/Syncs). Zero-valued when the database was
// opened without a log sink.
func (db *Database) LogStats() wal.LogStats {
	if db.log == nil {
		return wal.LogStats{}
	}
	return db.log.Stats()
}

// txOptions collects Begin options.
type txOptions struct {
	iso       Isolation
	scheme    Scheme
	hasScheme bool
	readOnly  bool
}

// TxOption configures a transaction at Begin.
type TxOption func(*txOptions)

// isoOptions holds one prebuilt option closure per isolation level so
// WithIsolation allocates nothing on the transaction hot path.
var isoOptions = [...]TxOption{
	iso.ReadCommitted:     func(o *txOptions) { o.iso = iso.ReadCommitted },
	iso.SnapshotIsolation: func(o *txOptions) { o.iso = iso.SnapshotIsolation },
	iso.RepeatableRead:    func(o *txOptions) { o.iso = iso.RepeatableRead },
	iso.Serializable:      func(o *txOptions) { o.iso = iso.Serializable },
}

// WithIsolation selects the isolation level (default ReadCommitted, the
// default level of the paper's experiments and of many commercial engines).
func WithIsolation(level Isolation) TxOption {
	if int(level) >= 0 && int(level) < len(isoOptions) && isoOptions[level] != nil {
		return isoOptions[level]
	}
	return func(o *txOptions) { o.iso = level }
}

// schemeOptions mirrors isoOptions for WithScheme.
var schemeOptions = [...]TxOption{
	MVOptimistic:  func(o *txOptions) { o.scheme = MVOptimistic; o.hasScheme = true },
	MVPessimistic: func(o *txOptions) { o.scheme = MVPessimistic; o.hasScheme = true },
	SingleVersion: func(o *txOptions) { o.scheme = SingleVersion; o.hasScheme = true },
}

// WithScheme overrides the concurrency control scheme for one transaction.
// Only meaningful on multiversion databases, where optimistic and
// pessimistic transactions can be mixed; ignored on 1V.
func WithScheme(s Scheme) TxOption {
	if int(s) >= 0 && int(s) < len(schemeOptions) && schemeOptions[s] != nil {
		return schemeOptions[s]
	}
	return func(o *txOptions) { o.scheme = s; o.hasScheme = true }
}

// readOnlyOption is the single prebuilt WithReadOnly closure (hot path,
// allocation-free like isoOptions).
var readOnlyOption TxOption = func(o *txOptions) { o.readOnly = true }

// WithReadOnly declares the transaction read-only with a transactionally
// consistent view. On a multiversion database this selects the
// registration-free snapshot fast lane: the transaction reads a consistent
// snapshot without incrementing the timestamp oracle or entering the
// transaction table (see mv.Engine.BeginReadOnly). On a single-version
// database it runs at snapshot isolation (upgraded to repeatable read by
// that engine), so reads are stable there too. Any mutation through a
// read-only transaction fails with ErrReadOnlyTx; any WithIsolation option
// is overridden.
func WithReadOnly() TxOption { return readOnlyOption }

// ErrUnsupported is returned for operations the backing engine cannot
// perform.
var ErrUnsupported = errors.New("core: operation unsupported by engine")

// ErrUnordered is returned when ScanRange is called on an index that was
// not declared Ordered in its IndexSpec.
var ErrUnordered = storage.ErrUnordered

// ErrNotComposite is returned when ScanPrefix is called on an index whose
// IndexSpec declared no Composite key layout.
var ErrNotComposite = errors.New("core: index has no composite key layout")

// ErrReadOnlyTx is returned when a mutation is attempted through a
// read-only transaction.
var ErrReadOnlyTx = mv.ErrReadOnlyTx

// ErrDegraded is returned by write paths after a latched log failure flipped
// the database into degraded read-only mode (see Database.Degraded).
var ErrDegraded = wal.ErrDegraded

// ErrTxDone is returned when operating on a transaction handle after Commit
// or Abort has returned (handles are pooled; see Tx).
var ErrTxDone = mv.ErrTxDone

// Tx is a transaction against a Database. A Tx must not be used after
// Commit or Abort returns; the handle clears its engine references on
// completion, so late calls always fail fast with ErrTxDone. The handle
// itself is deliberately not pooled — the engine-level transaction object
// underneath is, with quiescence-gated recycling, but reusing the public
// handle would let a retained stale pointer silently operate on another
// goroutine's transaction instead of erroring.
type Tx struct {
	db       *Database
	mvTx     *mv.Tx
	svTx     *sv.Tx
	readOnly bool
}

// Begin starts a transaction.
func (db *Database) Begin(opts ...TxOption) *Tx {
	o := txOptions{iso: ReadCommitted, scheme: db.cfg.Scheme}
	for _, fn := range opts {
		fn(&o)
	}
	tx := &Tx{db: db, readOnly: o.readOnly}
	if db.mvEng != nil {
		if o.readOnly {
			tx.mvTx = db.mvEng.BeginReadOnly()
			return tx
		}
		scheme := mv.Optimistic
		if o.scheme == MVPessimistic {
			scheme = mv.Pessimistic
		}
		tx.mvTx = db.mvEng.Begin(scheme, o.iso)
	} else {
		if o.readOnly {
			// Read-only transactions promise a transactionally consistent
			// view on every engine: the MV fast lane reads a snapshot, and
			// the 1V fast lane matches it with read stability (repeatable
			// read) while skipping both shared-sequence draws.
			tx.svTx = db.svEng.BeginReadOnly()
			return tx
		}
		tx.svTx = db.svEng.Begin(o.iso)
	}
	return tx
}

// BeginReadOnly starts a read-only snapshot transaction; shorthand for
// Begin(WithReadOnly()).
func (db *Database) BeginReadOnly() *Tx { return db.Begin(readOnlyOption) }

// release clears the engine transaction references so any later call on the
// handle reports ErrTxDone.
func (tx *Tx) release() {
	tx.db, tx.mvTx, tx.svTx = nil, nil, nil
}

// Row is a handle to a record found by Lookup or Scan, usable as the target
// of Update and Delete within the same transaction.
type Row struct {
	payload []byte
	mvV     *storage.Version
	svR     *sv.Record
}

// Payload returns the row's data as seen by the reading transaction. The
// slice must not be modified.
func (r Row) Payload() []byte { return r.payload }

// Valid reports whether the row references a record.
func (r Row) Valid() bool { return r.mvV != nil || r.svR != nil }

// Scan iterates visible rows in the named index with the given key, calling
// fn for each; fn returning false stops the scan. The payload passed to fn
// is only valid during the callback.
func (tx *Tx) Scan(t *Table, index int, key uint64, pred Pred, fn func(Row) bool) error {
	if tx.mvTx != nil {
		return tx.mvTx.Scan(t.mvT, index, key, mv.Pred(pred), func(v *storage.Version) bool {
			return fn(Row{payload: v.Payload, mvV: v})
		})
	}
	if tx.svTx == nil {
		return ErrTxDone
	}
	return tx.svTx.Scan(t.svT, index, key, sv.Pred(pred), func(r *sv.Record) bool {
		return fn(Row{payload: r.Payload(), svR: r})
	})
}

// ScanRange iterates visible rows whose keys in the named index fall in
// [lo, hi] (both inclusive), in ascending key order, calling fn for each; fn
// returning false stops the scan. The index must have been declared Ordered
// in its IndexSpec or ErrUnordered is returned. The payload passed to fn is
// only valid during the callback.
//
// Range scans carry full isolation semantics on every engine: under
// serializable isolation a concurrent insert into the scanned range is
// either aborted against (MV/O revalidates the range at commit), delayed
// (MV/L range locks force inserters to wait), or blocked outright (1V holds
// a shared range lock to commit) — see docs/indexes.md.
func (tx *Tx) ScanRange(t *Table, index int, lo, hi uint64, pred Pred, fn func(Row) bool) error {
	if tx.mvTx != nil {
		return tx.mvTx.ScanRange(t.mvT, index, lo, hi, mv.Pred(pred), func(v *storage.Version) bool {
			return fn(Row{payload: v.Payload, mvV: v})
		})
	}
	if tx.svTx == nil {
		return ErrTxDone
	}
	return tx.svTx.ScanRange(t.svT, index, lo, hi, sv.Pred(pred), func(r *sv.Record) bool {
		return fn(Row{payload: r.Payload(), svR: r})
	})
}

// ScanPrefix iterates visible rows whose composite key in the named index
// starts with the given field prefix, in ascending key order. The index
// must carry a Composite layout in its IndexSpec (ErrNotComposite) and be
// Ordered (ErrUnordered); prefix may name any leading subset of the
// layout's fields, down to none (full index scan) and up to all of them
// (exact tuple). The prefix is translated into the encoded key interval
// [lo, hi] covering exactly the matching tuples and delegated to ScanRange,
// so a prefix scan carries the same isolation semantics — under
// serializable isolation, a concurrent insert of a row with the scanned
// prefix is aborted against (MV/O), delayed (MV/L) or blocked (1V), making
// composite prefix scans phantom safe on every engine.
func (tx *Tx) ScanPrefix(t *Table, index int, prefix []uint64, pred Pred, fn func(Row) bool) error {
	if tx.mvTx == nil && tx.svTx == nil {
		return ErrTxDone
	}
	layout := t.layouts[index]
	if layout == nil {
		return ErrNotComposite
	}
	lo, hi, err := layout.PrefixRange(prefix...)
	if err != nil {
		return err
	}
	return tx.ScanRange(t, index, lo, hi, pred, fn)
}

// LookupPrefix returns a copy of every visible row whose composite key in
// the named index starts with prefix, in ascending key order. Convenience
// wrapper over ScanPrefix for small result sets.
func (tx *Tx) LookupPrefix(t *Table, index int, prefix []uint64, pred Pred) ([][]byte, error) {
	var out [][]byte
	err := tx.ScanPrefix(t, index, prefix, pred, func(r Row) bool {
		out = append(out, append([]byte(nil), r.payload...))
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LookupRange returns a copy of every visible row in [lo, hi] of the named
// ordered index, in ascending key order. Convenience wrapper over ScanRange
// for small result sets.
func (tx *Tx) LookupRange(t *Table, index int, lo, hi uint64, pred Pred) ([][]byte, error) {
	var out [][]byte
	err := tx.ScanRange(t, index, lo, hi, pred, func(r Row) bool {
		out = append(out, append([]byte(nil), r.payload...))
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Lookup returns the first visible row matching key and pred. The returned
// payload is a copy and remains valid after the call.
func (tx *Tx) Lookup(t *Table, index int, key uint64, pred Pred) (Row, bool, error) {
	var row Row
	err := tx.Scan(t, index, key, pred, func(r Row) bool {
		row = r
		row.payload = append([]byte(nil), r.payload...)
		return false
	})
	if err != nil {
		return Row{}, false, err
	}
	return row, row.Valid(), nil
}

// Insert adds a new record.
func (tx *Tx) Insert(t *Table, payload []byte) error {
	if tx.readOnly {
		return ErrReadOnlyTx
	}
	if tx.mvTx != nil {
		return tx.mvTx.Insert(t.mvT, payload)
	}
	if tx.svTx == nil {
		return ErrTxDone
	}
	return tx.svTx.Insert(t.svT, payload)
}

// Update replaces the record identified by row with newPayload.
func (tx *Tx) Update(t *Table, row Row, newPayload []byte) error {
	if tx.readOnly {
		return ErrReadOnlyTx
	}
	if tx.mvTx != nil {
		return tx.mvTx.Update(t.mvT, row.mvV, newPayload)
	}
	if tx.svTx == nil {
		return ErrTxDone
	}
	return tx.svTx.Update(t.svT, row.svR, newPayload)
}

// Delete removes the record identified by row.
func (tx *Tx) Delete(t *Table, row Row) error {
	if tx.readOnly {
		return ErrReadOnlyTx
	}
	if tx.mvTx != nil {
		return tx.mvTx.Delete(t.mvT, row.mvV)
	}
	if tx.svTx == nil {
		return ErrTxDone
	}
	return tx.svTx.Delete(t.svT, row.svR)
}

// UpdateWhere updates every visible row matching key and pred with mut(old),
// returning the number updated.
func (tx *Tx) UpdateWhere(t *Table, index int, key uint64, pred Pred, mut func(old []byte) []byte) (int, error) {
	if tx.readOnly {
		return 0, ErrReadOnlyTx
	}
	if tx.mvTx != nil {
		return tx.mvTx.UpdateWhere(t.mvT, index, key, mv.Pred(pred), mut)
	}
	if tx.svTx == nil {
		return 0, ErrTxDone
	}
	return tx.svTx.UpdateWhere(t.svT, index, key, sv.Pred(pred), mut)
}

// DeleteWhere deletes every visible row matching key and pred, returning the
// number deleted.
func (tx *Tx) DeleteWhere(t *Table, index int, key uint64, pred Pred) (int, error) {
	if tx.readOnly {
		return 0, ErrReadOnlyTx
	}
	if tx.mvTx != nil {
		return tx.mvTx.DeleteWhere(t.mvT, index, key, mv.Pred(pred))
	}
	if tx.svTx == nil {
		return 0, ErrTxDone
	}
	return tx.svTx.DeleteWhere(t.svT, index, key, sv.Pred(pred))
}

// Commit attempts to commit. A non-nil error means the transaction aborted
// (write-write conflict, validation failure, lock failure or timeout,
// dependency cascade, deadlock victim); the caller may retry with a fresh
// transaction. The handle must not be used after Commit returns.
func (tx *Tx) Commit() error {
	_, err := tx.CommitTS()
	return err
}

// CommitTS commits like Commit and additionally returns the transaction's
// serialization stamp: the multiversion end timestamp, or the 1V writer's
// end sequence number. A zero stamp with a nil error means the commit point
// is unordered (an MV fast commit, or a 1V transaction that wrote nothing);
// history checkers stamp those externally. The stamp is captured inside the
// engine's commit — engine transaction objects are pooled, so reading a
// timestamp off the engine transaction after Commit returns would race with
// recycling.
func (tx *Tx) CommitTS() (uint64, error) {
	if tx.mvTx != nil {
		end, err := tx.mvTx.CommitTS()
		tx.release()
		return end, err
	}
	if tx.svTx == nil {
		return 0, ErrTxDone
	}
	end, err := tx.svTx.CommitTS()
	tx.release()
	return end, err
}

// TxBatch is a facade over mv.TxBatch: a single-worker transaction stream
// that amortizes one timestamp-oracle draw and (for read-only
// sub-transactions) all transaction-table registrations over a block of n
// transactions. On a single-version database it degrades to plain Begins.
//
// At most one sub-transaction may be active at a time; finish it before the
// next Begin, and Close the batch when the stream ends.
type TxBatch struct {
	db   *Database
	mvB  *mv.TxBatch
	opts txOptions
}

// BeginBatch prepares a batch drawing timestamps in blocks of n. The
// options fix the scheme and isolation level for every sub-transaction
// (WithReadOnly is not meaningful here: use BeginReadOnly for snapshot
// readers, which are cheaper than any batch).
func (db *Database) BeginBatch(n int, opts ...TxOption) *TxBatch {
	o := txOptions{iso: ReadCommitted, scheme: db.cfg.Scheme}
	for _, fn := range opts {
		fn(&o)
	}
	b := &TxBatch{db: db, opts: o}
	if db.mvEng != nil {
		scheme := mv.Optimistic
		if o.scheme == MVPessimistic {
			scheme = mv.Pessimistic
		}
		b.mvB = db.mvEng.BeginBatch(scheme, o.iso, n)
	}
	return b
}

// Begin starts the next sub-transaction of the batch.
func (b *TxBatch) Begin() *Tx {
	if b.mvB != nil {
		return &Tx{db: b.db, mvTx: b.mvB.Begin()}
	}
	return &Tx{db: b.db, svTx: b.db.svEng.Begin(b.opts.iso)}
}

// Close releases the batch's resources. Every sub-transaction must already
// be finished.
func (b *TxBatch) Close() {
	if b.mvB != nil {
		b.mvB.Close()
	}
}

// Abort rolls the transaction back. The handle must not be used after Abort
// returns.
func (tx *Tx) Abort() error {
	if tx.mvTx != nil {
		err := tx.mvTx.Abort()
		tx.release()
		return err
	}
	if tx.svTx == nil {
		return ErrTxDone
	}
	err := tx.svTx.Abort()
	tx.release()
	return err
}
