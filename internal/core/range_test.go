package core

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"
)

func rtRow(key, val uint64) []byte {
	p := make([]byte, 24)
	binary.LittleEndian.PutUint64(p, key)
	binary.LittleEndian.PutUint64(p[8:], val)
	return p
}

func rtKey(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }

func openOrdered(t *testing.T, scheme Scheme) (*Database, *Table) {
	t.Helper()
	db, err := Open(Config{Scheme: scheme, LockTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(TableSpec{
		Name:    "rows",
		Indexes: []IndexSpec{{Name: "pk", Key: rtKey, Ordered: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, tbl
}

func rangeKeys(t *testing.T, tx *Tx, tbl *Table, lo, hi uint64) []uint64 {
	t.Helper()
	var keys []uint64
	err := tx.ScanRange(tbl, 0, lo, hi, nil, func(r Row) bool {
		keys = append(keys, rtKey(r.Payload()))
		return true
	})
	if err != nil {
		t.Fatalf("ScanRange: %v", err)
	}
	return keys
}

// TestCoreScanRange: the public range-scan API returns complete, ordered
// results on every engine at every isolation level.
func TestCoreScanRange(t *testing.T) {
	for _, scheme := range allSchemes {
		for _, level := range []Isolation{ReadCommitted, SnapshotIsolation, RepeatableRead, Serializable} {
			t.Run(scheme.String()+"/"+level.String(), func(t *testing.T) {
				db, tbl := openOrdered(t, scheme)
				for k := uint64(0); k < 100; k++ {
					db.LoadRow(tbl, rtRow(k, k))
				}
				tx := db.Begin(WithIsolation(level))
				keys := rangeKeys(t, tx, tbl, 25, 44)
				if len(keys) != 20 {
					t.Fatalf("got %d keys: %v", len(keys), keys)
				}
				for i, k := range keys {
					if k != uint64(25+i) {
						t.Fatalf("out of order: %v", keys)
					}
				}
				// LookupRange convenience copies rows out.
				rows, err := tx.LookupRange(tbl, 0, 98, 120, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(rows) != 2 {
					t.Fatalf("LookupRange returned %d rows", len(rows))
				}
				if err := tx.Commit(); err != nil {
					t.Fatalf("commit: %v", err)
				}
			})
		}
	}
}

// TestCoreScanRangeReadOnly: the registration-free read-only fast lane
// supports range scans on every engine.
func TestCoreScanRangeReadOnly(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			db, tbl := openOrdered(t, scheme)
			for k := uint64(0); k < 50; k++ {
				db.LoadRow(tbl, rtRow(k, k))
			}
			tx := db.BeginReadOnly()
			if keys := rangeKeys(t, tx, tbl, 10, 19); len(keys) != 10 {
				t.Fatalf("got %v", keys)
			}
			if err := tx.Insert(tbl, rtRow(99, 0)); !errors.Is(err, ErrReadOnlyTx) {
				t.Fatalf("Insert = %v, want ErrReadOnlyTx", err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCoreScanRangeUnordered(t *testing.T) {
	for _, scheme := range allSchemes {
		db, err := Open(Config{Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := db.CreateTable(TableSpec{
			Name:    "rows",
			Indexes: []IndexSpec{{Name: "pk", Key: rtKey, Buckets: 64}},
		})
		if err != nil {
			t.Fatal(err)
		}
		tx := db.Begin()
		errScan := tx.ScanRange(tbl, 0, 0, 10, nil, func(Row) bool { return true })
		if !errors.Is(errScan, ErrUnordered) {
			t.Fatalf("%v: err = %v, want ErrUnordered", scheme, errScan)
		}
		tx.Abort()
		db.Close()
	}
}

// TestCoreSerializableRangeNoPhantom is the cross-engine serializability
// property: within one serializable transaction, repeating a range scan
// never observes a phantom, regardless of how the engine enforces it (MV/O
// rescan-abort, MV/L wait-for dependencies, 1V blocking range locks). The
// inserter eventually lands the row; the scanner either commits having seen
// a stable range or aborts with a serialization failure.
func TestCoreSerializableRangeNoPhantom(t *testing.T) {
	for _, scheme := range allSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			db, tbl := openOrdered(t, scheme)
			for k := uint64(0); k < 30; k += 2 {
				db.LoadRow(tbl, rtRow(k, k))
			}

			t1 := db.Begin(WithIsolation(Serializable))
			first := rangeKeys(t, t1, tbl, 10, 20)
			if len(first) != 6 {
				t.Fatalf("initial scan: %v", first)
			}

			inserted := make(chan error, 1)
			go func() {
				t2 := db.Begin(WithIsolation(ReadCommitted))
				if err := t2.Insert(tbl, rtRow(15, 999)); err != nil {
					t2.Abort()
					inserted <- err
					return
				}
				inserted <- t2.Commit()
			}()
			time.Sleep(30 * time.Millisecond) // give the inserter a chance to run

			second := rangeKeys(t, t1, tbl, 10, 20)
			if len(second) != len(first) {
				t.Fatalf("phantom observed inside a serializable txn: %v -> %v", first, second)
			}
			_ = t1.Commit() // nil (scan held) or a serialization failure (MV/O) — both legal

			select {
			case err := <-inserted:
				if err != nil {
					t.Fatalf("inserter failed: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("inserter never completed")
			}

			t3 := db.Begin()
			if got := rangeKeys(t, t3, tbl, 10, 20); len(got) != 7 {
				t.Fatalf("final state: %v", got)
			}
			t3.Commit()
		})
	}
}
