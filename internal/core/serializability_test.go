package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/workload/seedtest"
)

// End timestamps for the checker: the MV engine exposes real end timestamps;
// the 1V engine orders commits with its own sequence. To get a uniform
// commit-order stamp for the history checker we serialize the
// commit-and-record step under a mutex per run, which preserves the engine's
// commit order without changing its concurrency behaviour before the commit
// point... except for 1V, where locks are held across commit. Instead, we
// exploit that both engines already expose a commit order: MV through
// Tx end timestamps and 1V through strict 2PL (any interleaving of lock
// points is serializable). We therefore stamp histories with a shared atomic
// counter taken while the transaction still holds its locks / before it
// releases visibility, which is exactly its serialization point:
//
//   - 1V: strict 2PL ⇒ the commit point is anywhere inside the locked
//     region; we stamp just before Commit().
//   - MV: the end timestamp is drawn at precommit; we stamp *after* Commit()
//     succeeds, which can reorder two non-conflicting transactions but never
//     two conflicting ones (conflicting MV transactions overlap only through
//     dependencies that force commit-order = end-order). For the checker
//     this is sufficient: reads/writes of non-conflicting transactions
//     commute in the model.
//
// To avoid relying on the subtle MV argument, the MV runs stamp with the
// engine's own end timestamp, which is exact. The timestamp is taken from
// Tx.CommitTS — reading it off the engine transaction after Commit returns
// is racy, because engine transaction objects are pooled and can be
// recycled (and restamped) by another worker's Begin before the read.

func runRandomSerializableWorkload(t *testing.T, scheme Scheme, seed int64) {
	t.Helper()
	const keys = 24
	const workers = 6
	const txPerWorker = 150

	db, tbl := openTest(t, scheme)
	initial := make(map[uint64]uint64, keys)
	for k := uint64(0); k < keys; k++ {
		db.LoadRow(tbl, pay(k, k*100))
		initial[k] = k * 100
	}

	var rec check.Recorder
	var commitSeq sync.Mutex
	var seq uint64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < txPerWorker; i++ {
				tx := db.Begin(WithIsolation(Serializable))
				var h check.Txn
				// Reads of keys this transaction already wrote observe its
				// own writes; they say nothing about isolation, so they are
				// not recorded for the checker.
				written := make(map[uint64]bool)
				record := func(k uint64, ok bool, row Row) {
					if written[k] {
						return
					}
					r := check.Read{Table: "t", Key: k, Found: ok}
					if ok {
						r.Value = valOf(row.Payload())
					}
					h.Reads = append(h.Reads, r)
				}
				nOps := 1 + rng.Intn(4)
				failed := false
				for op := 0; op < nOps && !failed; op++ {
					k := uint64(rng.Intn(keys))
					switch rng.Intn(4) {
					case 0, 1: // read
						row, ok, err := tx.Lookup(tbl, 0, k, nil)
						if err != nil {
							failed = true
							break
						}
						record(k, ok, row)
					case 2: // read-modify-write
						row, ok, err := tx.Lookup(tbl, 0, k, nil)
						if err != nil {
							failed = true
							break
						}
						record(k, ok, row)
						nv := rng.Uint64() % 1_000_000
						if ok {
							if err := tx.Update(tbl, row, pay(k, nv)); err != nil {
								failed = true
								break
							}
						} else {
							if err := tx.Insert(tbl, pay(k, nv)); err != nil {
								failed = true
								break
							}
						}
						written[k] = true
						h.Writes = append(h.Writes, check.Write{Table: "t", Key: k, Value: nv})
					case 3: // delete if present
						row, ok, err := tx.Lookup(tbl, 0, k, nil)
						if err != nil {
							failed = true
							break
						}
						record(k, ok, row)
						if ok {
							if err := tx.Delete(tbl, row); err != nil {
								failed = true
								break
							}
							written[k] = true
							h.Writes = append(h.Writes, check.Write{Table: "t", Op: check.WriteDelete, Key: k})
						}
					}
				}
				if failed {
					tx.Abort()
					continue
				}
				if scheme == SingleVersion {
					// Strict 2PL: stamp inside the locked region.
					commitSeq.Lock()
					seq++
					h.EndTS = seq
					if err := tx.Commit(); err != nil {
						commitSeq.Unlock()
						continue
					}
					commitSeq.Unlock()
					rec.Record(h)
				} else {
					end, err := tx.CommitTS()
					if err != nil {
						continue
					}
					h.EndTS = end
					rec.Record(h)
				}
			}
		}(w)
	}
	wg.Wait()

	history := rec.Txns()
	if len(history) < txPerWorker {
		t.Fatalf("only %d committed transactions recorded", len(history))
	}
	if err := check.Validate(initial, "t", history); err != nil {
		t.Fatalf("serializability violated by %s: %v", scheme, err)
	}
}

func TestSerializabilityRandomized(t *testing.T) {
	base := seedtest.Base(t, 997)
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	for _, scheme := range allSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			for i := 0; i < seeds; i++ {
				runRandomSerializableWorkload(t, scheme, seedtest.Derive(base, i))
			}
		})
	}
}

// TestSerializabilityMixedSchemes runs optimistic and pessimistic
// transactions concurrently on one MV engine and validates the combined
// history (peaceful coexistence, Section 4.5).
func TestSerializabilityMixedSchemes(t *testing.T) {
	const keys = 16
	const workers = 6
	const txPerWorker = 120

	db, tbl := openTest(t, MVOptimistic)
	initial := make(map[uint64]uint64, keys)
	for k := uint64(0); k < keys; k++ {
		db.LoadRow(tbl, pay(k, k))
		initial[k] = k
	}
	var rec check.Recorder
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 31))
			scheme := MVOptimistic
			if w%2 == 1 {
				scheme = MVPessimistic
			}
			for i := 0; i < txPerWorker; i++ {
				tx := db.Begin(WithIsolation(Serializable), WithScheme(scheme))
				var h check.Txn
				k := uint64(rng.Intn(keys))
				row, ok, err := tx.Lookup(tbl, 0, k, nil)
				if err != nil {
					tx.Abort()
					continue
				}
				r := check.Read{Table: "t", Key: k, Found: ok}
				if ok {
					r.Value = valOf(row.Payload())
				}
				h.Reads = append(h.Reads, r)
				if ok && rng.Intn(2) == 0 {
					nv := rng.Uint64() % 1_000_000
					if err := tx.Update(tbl, row, pay(k, nv)); err != nil {
						tx.Abort()
						continue
					}
					h.Writes = append(h.Writes, check.Write{Table: "t", Key: k, Value: nv})
				}
				end, err := tx.CommitTS()
				if err != nil {
					continue
				}
				h.EndTS = end
				rec.Record(h)
			}
		}(w)
	}
	wg.Wait()
	if err := check.Validate(initial, "t", rec.Txns()); err != nil {
		t.Fatalf("mixed-scheme serializability violated: %v", err)
	}
}
