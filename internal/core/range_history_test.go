package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/keyenc"
	"repro/internal/workload/seedtest"
)

// These tests close the loop the range-aware checker opens: randomized
// serializable workloads whose transactions interleave range scans with
// inserts, updates and deletes, with every committed scan's observed key
// set recorded and replayed by check.ValidateIndexed in end-timestamp
// order. A scan that missed a row the model holds at its serialization
// point — or saw one it does not — is a phantom the engine failed to
// prevent. The stamping protocol (1V: a shared sequence taken inside the
// strict-2PL locked region; MV: the engine's own end timestamp) is the one
// serializability_test.go documents.

// rhOpen builds the range-history schema: an ordered primary index plus an
// ordered non-unique composite secondary (grp, id) where grp is derived
// from the row's value — so updates migrate rows between groups and several
// rows share one encoded-prefix group at any time.
const rhGroups = 8

var rhLayout = keyenc.MustLayout(keyenc.Field{Name: "grp", Bits: 16}, keyenc.Field{Name: "id", Bits: 48})

func rhSecKey(p []byte) uint64 {
	return rhLayout.MustEncode(valOf(p)%rhGroups, keyOf(p))
}

// rhIndexers derives a live row's secondary key for the checker's model
// replay: the same (grp, id) encoding, computed from the model's
// (key, value) pair.
var rhIndexers = map[string]check.IndexKeyFn{
	"grp": func(key, value uint64) (uint64, bool) {
		return rhLayout.MustEncode(value%rhGroups, key), true
	},
}

func rhOpen(t *testing.T, scheme Scheme) (*Database, *Table) {
	t.Helper()
	db, err := Open(Config{Scheme: scheme, LockTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(TableSpec{
		Name: "t",
		Indexes: []IndexSpec{
			{Name: "pk", Key: keyOf, Ordered: true},
			{Name: "grp", Key: rhSecKey, Ordered: true, Composite: rhLayout},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, tbl
}

// runRandomRangeWorkload drives one randomized serializable range workload
// on the given scheme and validates the committed history with the
// range-aware checker. Each transaction records its scans and point reads
// BEFORE issuing any write, so recorded observations are all of committed
// state (reads of own writes say nothing about isolation).
func runRandomRangeWorkload(t *testing.T, scheme Scheme, seed int64) {
	t.Helper()
	const keys = 64
	const workers = 6
	const txPerWorker = 120

	db, tbl := rhOpen(t, scheme)
	initial := make(map[uint64]uint64, keys)
	for k := uint64(0); k < keys; k += 2 {
		v := k * 100
		db.LoadRow(tbl, pay(k, v))
		initial[k] = v
	}

	var rec check.Recorder
	var commitSeq sync.Mutex
	var seq uint64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < txPerWorker; i++ {
				tx := db.Begin(WithIsolation(Serializable))
				var h check.Txn
				failed := false

				// Phase 1: ranges. A primary-key range scan and/or a
				// composite prefix scan over one group, both recorded.
				nScans := 1 + rng.Intn(2)
				for s := 0; s < nScans && !failed; s++ {
					if rng.Intn(2) == 0 {
						lo := uint64(rng.Intn(keys))
						hi := lo + uint64(rng.Intn(16))
						rr := check.RangeRead{Table: "t", Lo: lo, Hi: hi}
						err := tx.ScanRange(tbl, 0, lo, hi, nil, func(r Row) bool {
							rr.Keys = append(rr.Keys, keyOf(r.Payload()))
							return true
						})
						if err != nil {
							failed = true
							break
						}
						h.RangeReads = append(h.RangeReads, rr)
					} else {
						g := uint64(rng.Intn(rhGroups))
						lo, hi := rhLayout.MustPrefixRange(g)
						rr := check.RangeRead{Table: "t", Index: "grp", Lo: lo, Hi: hi}
						err := tx.ScanPrefix(tbl, 1, []uint64{g}, nil, func(r Row) bool {
							rr.Keys = append(rr.Keys, rhSecKey(r.Payload()))
							return true
						})
						if err != nil {
							failed = true
							break
						}
						h.RangeReads = append(h.RangeReads, rr)
					}
				}

				// Phase 2: up to two write ops, each a recorded point read
				// followed by an insert, update or delete.
				written := make(map[uint64]bool)
				nWrites := rng.Intn(3)
				for op := 0; op < nWrites && !failed; op++ {
					k := uint64(rng.Intn(keys))
					row, ok, err := tx.Lookup(tbl, 0, k, nil)
					if err != nil {
						failed = true
						break
					}
					if !written[k] {
						r := check.Read{Table: "t", Key: k, Found: ok}
						if ok {
							r.Value = valOf(row.Payload())
						}
						h.Reads = append(h.Reads, r)
					}
					switch {
					case !ok:
						nv := rng.Uint64() % 1_000_000
						if err := tx.Insert(tbl, pay(k, nv)); err != nil {
							failed = true
							break
						}
						written[k] = true
						h.Writes = append(h.Writes, check.Write{Table: "t", Key: k, Value: nv})
					case rng.Intn(3) == 0:
						if err := tx.Delete(tbl, row); err != nil {
							failed = true
							break
						}
						written[k] = true
						h.Writes = append(h.Writes, check.Write{Table: "t", Op: check.WriteDelete, Key: k})
					default:
						nv := rng.Uint64() % 1_000_000
						if err := tx.Update(tbl, row, pay(k, nv)); err != nil {
							failed = true
							break
						}
						written[k] = true
						h.Writes = append(h.Writes, check.Write{Table: "t", Key: k, Value: nv})
					}
				}

				if failed {
					tx.Abort()
					continue
				}
				if scheme == SingleVersion {
					commitSeq.Lock()
					seq++
					h.EndTS = seq
					if err := tx.Commit(); err != nil {
						commitSeq.Unlock()
						continue
					}
					commitSeq.Unlock()
					rec.Record(h)
				} else {
					end, err := tx.CommitTS()
					if err != nil {
						continue
					}
					h.EndTS = end
					if h.EndTS == 0 {
						// Unreachable for serializable transactions holding
						// scans; guard so a protocol change fails loudly
						// instead of producing duplicate stamps.
						t.Errorf("serializable MV txn committed without an end timestamp")
						continue
					}
					rec.Record(h)
				}
			}
		}(w)
	}
	wg.Wait()

	history := rec.Txns()
	if len(history) < txPerWorker {
		t.Fatalf("only %d committed transactions recorded", len(history))
	}
	if err := check.ValidateIndexed(initial, "t", history, rhIndexers); err != nil {
		t.Fatalf("range serializability violated by %s: %v", scheme, err)
	}
}

// TestRangeHistorySerializable: randomized serializable range workloads on
// all three engines, committed histories replayed by the range-aware
// checker. This is the oracle the phantom regression tests sample: any
// scan/insert interleaving the engines let slip appears as a
// check.RangeViolation here.
func TestRangeHistorySerializable(t *testing.T) {
	base := seedtest.Base(t, 1013)
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	for _, scheme := range allSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			for i := 0; i < seeds; i++ {
				runRandomRangeWorkload(t, scheme, seedtest.Derive(base, i))
			}
		})
	}
}
