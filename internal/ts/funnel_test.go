package ts

import (
	"runtime"
	"sort"
	"sync"
	"testing"
)

// TestFunnelSequential: with a single goroutine the funnel behaves exactly
// like the bare oracle — every draw is direct, no batches form.
func TestFunnelSequential(t *testing.T) {
	var o Oracle
	f := NewFunnel(&o)
	if got := f.Next(); got != 1 {
		t.Fatalf("first draw = %d, want 1", got)
	}
	if got := f.NextN(10); got != 2 {
		t.Fatalf("block draw start = %d, want 2", got)
	}
	if got := f.Next(); got != 12 {
		t.Fatalf("draw after block = %d, want 12", got)
	}
	s := f.Stats()
	if s.Draws != 3 || s.Physical != 3 || s.Combined != 0 || s.Batches != 0 {
		t.Fatalf("sequential stats = %+v, want 3 draws, 3 physical, no combining", s)
	}
	if r := s.Ratio(); r != 1 {
		t.Fatalf("sequential ratio = %v, want 1", r)
	}
}

// TestFunnelCombineDeterministic forces one combining round by hand: with
// the funnel lock held, two goroutines enroll as waiters; the lock holder
// then runs a round and must serve both with a single fetch-and-add.
func TestFunnelCombineDeterministic(t *testing.T) {
	var o Oracle
	f := NewFunnel(&o)

	f.mu.Lock() // stand in for a draw in flight

	var wg sync.WaitGroup
	results := make([]uint64, 2)
	sizes := []uint64{1, 5}
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = f.NextN(sizes[i])
		}(i)
	}
	// Wait until both waiters are enrolled. Their TryLock always fails (we
	// hold the lock), so they cannot serve themselves.
	for {
		n := 0
		for w := f.head.Load(); w != nil; w = w.next {
			n++
		}
		if n == 2 {
			break
		}
		runtime.Gosched()
	}

	// Run the round as the combiner with a request of our own.
	start := f.combine(2, false) // combine unlocks f.mu
	wg.Wait()

	if start != 1 {
		t.Fatalf("combiner start = %d, want 1", start)
	}
	// One fetch-and-add covered 2 + 1 + 5 timestamps.
	if got := o.Current(); got != 8 {
		t.Fatalf("oracle after combined round = %d, want 8", got)
	}
	// The three ranges partition [1,8] without overlap.
	got := append([]uint64{start}, results...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if got[0] != 1 {
		t.Fatalf("ranges = %v, want to start at 1", got)
	}
	s := f.Stats()
	if s.Physical != 1 || s.Draws != 3 || s.Combined != 2 || s.Batches != 1 {
		t.Fatalf("combined stats = %+v, want 1 physical, 3 draws, 2 combined, 1 batch", s)
	}
	if r := s.Ratio(); r != 3 {
		t.Fatalf("ratio = %v, want 3", r)
	}
}

// TestFunnelWaiterSelfService: a waiter enrolled behind a stalled combiner
// must eventually serve itself once the lock frees — no draw may depend on
// another draw arriving.
func TestFunnelWaiterSelfService(t *testing.T) {
	var o Oracle
	f := NewFunnel(&o)

	f.mu.Lock()
	done := make(chan uint64)
	go func() { done <- f.Next() }()
	for f.head.Load() == nil {
		runtime.Gosched()
	}
	// Drop the lock WITHOUT running a round: the waiter must lock, drain
	// the stack (finding itself), and complete on its own.
	f.mu.Unlock()
	if got := <-done; got != 1 {
		t.Fatalf("self-served draw = %d, want 1", got)
	}
}

// TestFunnelStress: many goroutines drawing concurrently (mixed sizes) must
// receive globally unique, per-goroutine monotone ranges that never exceed
// the oracle, and the stats must account for every draw.
func TestFunnelStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	var o Oracle
	f := NewFunnel(&o)

	const workers = 8
	const draws = 5000
	type block struct{ start, n uint64 }
	blocks := make([][]block, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]block, 0, draws)
			for i := 0; i < draws; i++ {
				n := uint64(1 + (i+w)%3)
				s := f.NextN(n)
				mine = append(mine, block{s, n})
			}
			blocks[w] = mine
		}(w)
	}
	wg.Wait()

	var total uint64
	seen := make(map[uint64]bool)
	for w := range blocks {
		prev := uint64(0)
		for _, b := range blocks[w] {
			if b.start == 0 {
				t.Fatalf("worker %d drew start 0", w)
			}
			if b.start <= prev {
				t.Fatalf("worker %d: draw start %d not after previous block end %d", w, b.start, prev)
			}
			for v := b.start; v < b.start+b.n; v++ {
				if seen[v] {
					t.Fatalf("timestamp %d issued twice", v)
				}
				seen[v] = true
			}
			prev = b.start + b.n - 1
			total += b.n
		}
	}
	if cur := o.Current(); cur < total {
		t.Fatalf("oracle at %d but %d timestamps issued", cur, total)
	}
	s := f.Stats()
	if s.Draws != workers*draws {
		t.Fatalf("stats.Draws = %d, want %d", s.Draws, workers*draws)
	}
	// Every draw is either a physical fetch-and-add or rode one; a waiter
	// that self-serves counts in both, so the two sides bound Draws rather
	// than partitioning it exactly.
	if s.Draws < s.Physical || s.Draws > s.Physical+s.Combined {
		t.Fatalf("stats out of bounds: physical %d, combined %d, draws %d",
			s.Physical, s.Combined, s.Draws)
	}
	t.Logf("stress: %d draws, %d physical, %d combined in %d batches (ratio %.2f)",
		s.Draws, s.Physical, s.Combined, s.Batches, s.Ratio())
}
