package ts

import (
	"sync"
	"testing"
)

func TestNextMonotonic(t *testing.T) {
	var o Oracle
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		n := o.Next()
		if n <= prev {
			t.Fatalf("Next not monotonic: %d after %d", n, prev)
		}
		prev = n
	}
}

func TestFirstTimestampIsOne(t *testing.T) {
	var o Oracle
	if got := o.Next(); got != 1 {
		t.Fatalf("first timestamp = %d, want 1", got)
	}
}

func TestCurrentTracksNext(t *testing.T) {
	var o Oracle
	if o.Current() != 0 {
		t.Fatal("fresh oracle Current != 0")
	}
	n := o.Next()
	if o.Current() != n {
		t.Fatalf("Current = %d after Next = %d", o.Current(), n)
	}
}

func TestConcurrentUniqueness(t *testing.T) {
	var o Oracle
	const workers = 8
	const perWorker = 10000
	results := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]uint64, perWorker)
			for i := range out {
				out[i] = o.Next()
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool, workers*perWorker)
	for _, r := range results {
		for _, v := range r {
			if seen[v] {
				t.Fatalf("duplicate timestamp %d", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("expected %d unique, got %d", workers*perWorker, len(seen))
	}
}

func TestAdvanceTo(t *testing.T) {
	var o Oracle
	o.AdvanceTo(100)
	if o.Current() != 100 {
		t.Fatalf("Current = %d after AdvanceTo(100)", o.Current())
	}
	o.AdvanceTo(50) // must not go backwards
	if o.Current() != 100 {
		t.Fatalf("AdvanceTo went backwards: %d", o.Current())
	}
	if n := o.Next(); n != 101 {
		t.Fatalf("Next after AdvanceTo = %d, want 101", n)
	}
}

func TestNextN(t *testing.T) {
	var o Oracle
	first := o.NextN(10)
	if first != 1 {
		t.Fatalf("first block starts at %d, want 1", first)
	}
	if o.Current() != 10 {
		t.Fatalf("Current = %d after NextN(10), want 10", o.Current())
	}
	if n := o.Next(); n != 11 {
		t.Fatalf("Next after block = %d, want 11", n)
	}
	second := o.NextN(5)
	if second != 12 {
		t.Fatalf("second block starts at %d, want 12", second)
	}
}

func TestNextNConcurrentBlocksDisjoint(t *testing.T) {
	var o Oracle
	const workers = 8
	const blocks = 200
	const blockN = 7
	starts := make(chan uint64, workers*blocks)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < blocks; i++ {
				starts <- o.NextN(blockN)
			}
		}()
	}
	wg.Wait()
	close(starts)
	seen := make(map[uint64]bool)
	for s := range starts {
		for i := uint64(0); i < blockN; i++ {
			if seen[s+i] {
				t.Fatalf("timestamp %d issued twice", s+i)
			}
			seen[s+i] = true
		}
	}
}
