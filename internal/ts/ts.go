// Package ts provides the global timestamp oracle.
//
// Timestamps are drawn from a single, monotonically increasing counter
// (paper Section 2.4): a transaction acquires a unique timestamp by
// atomically reading and incrementing the counter. The same sequence is used
// for transaction IDs, begin timestamps, and end timestamps, so every drawn
// value is unique and totally ordered. This is the only critical section in
// the whole engine (Section 6) and it is a single atomic increment.
package ts

import "sync/atomic"

// Oracle is a monotonically increasing timestamp source. The zero value is
// ready to use; the first drawn timestamp is 1, so 0 never appears as a
// valid timestamp or transaction ID.
type Oracle struct {
	counter atomic.Uint64
}

// Next atomically draws the next timestamp.
func (o *Oracle) Next() uint64 {
	return o.counter.Add(1)
}

// NextN atomically reserves n consecutive timestamps and returns the first.
// A single fetch-and-add amortizes the shared-counter touch over a whole
// batch of transactions (one worker hands out ids start..start+n-1 itself).
// Unused tail ids are simply never issued; the sequence stays unique and
// monotone, which is all the protocol requires.
func (o *Oracle) NextN(n uint64) uint64 {
	return o.counter.Add(n) - n + 1
}

// Current returns the most recently drawn timestamp. It is used as the
// logical read time of read-committed transactions ("always read the latest
// committed version", Section 3.4) because every version committed so far
// has an end or begin timestamp at most Current().
func (o *Oracle) Current() uint64 {
	return o.counter.Load()
}

// AdvanceTo raises the counter to at least v. It is used by tests and by
// recovery to resume the sequence above all persisted timestamps.
func (o *Oracle) AdvanceTo(v uint64) {
	for {
		cur := o.counter.Load()
		if cur >= v {
			return
		}
		if o.counter.CompareAndSwap(cur, v) {
			return
		}
	}
}
