package ts

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// funnelHeat is the number of uncontended rounds the funnel tolerates before
// closing its combining window again. Contention (any failed TryLock, any
// round that served a waiter) resets the countdown; each solo round decays it
// by one. The value only trades how quickly the funnel reopens the direct
// fast path after a burst — correctness never depends on it.
const funnelHeat = 64

// funnelWaiter is one enrolled draw request, pooled and recycled. start is
// the handoff cell: 0 means "not served yet" (the oracle never issues 0), so
// a waiter spins on its own node — there is no shared completion flag.
type funnelWaiter struct {
	next  *funnelWaiter
	n     uint64
	start atomic.Uint64
}

// FunnelStats is a snapshot of a funnel's counters. All draws are eventually
// visible here: Draws counts logical requests served, Physical counts
// fetch-and-adds actually issued on the oracle, Combined counts draws that
// rode another goroutine's fetch-and-add, and Batches counts rounds that
// served more than the combiner itself.
type FunnelStats struct {
	Draws    uint64
	Physical uint64
	Combined uint64
	Batches  uint64
}

// Ratio is the combining ratio: logical draws per physical oracle touch.
// 1.0 means every draw paid its own fetch-and-add (no combining); higher is
// better under contention.
func (s FunnelStats) Ratio() float64 {
	if s.Physical == 0 {
		return 1
	}
	return float64(s.Draws) / float64(s.Physical)
}

// Funnel is a combining funnel over an Oracle: draws that arrive while
// another draw is in flight enroll in a combining slot, and the goroutine
// holding the funnel (the combiner) issues ONE Oracle.NextN fetch-and-add
// covering every enrolled request, handing each participant a distinct range
// of consecutive timestamps. The paper's single critical section (Section 6)
// is thereby touched once per *batch* of concurrent committers instead of
// once per committer.
//
// Correctness is inherited from NextN, not argued anew: a participant's
// timestamps come from a fetch-and-add that happens AFTER the participant
// called NextN (it enrolled first, and the combiner swaps the enrollment
// list closed before drawing) and BEFORE its NextN returns. The draw
// therefore linearizes somewhere inside the participant's own call, exactly
// like a direct Oracle.NextN — timestamps remain unique and monotone, and a
// draw is never reordered past anything the caller did before or after it.
// In particular the MV/L commit-ordering invariant (end timestamp drawn
// while locks are held, docs/indexes.md) is preserved: a transaction that
// was delayed by another's locks enters the funnel only after the delayer's
// draw returned, so it lands in a strictly later batch and receives a
// strictly larger timestamp. Contrast with pre-reserving end timestamps,
// which is unsafe precisely because it moves the draw OUTSIDE the call (see
// docs/perf.md, "End timestamps are never pre-reserved").
//
// Under low contention every TryLock succeeds and a draw costs one
// uncontended lock acquisition plus its own NextN — the 1-CPU fast path.
// After contention is observed, the combiner briefly yields ("combining
// window") before closing a batch so peer committers that are runnable on
// the same processor can enroll; the window decays away after funnelHeat
// uncontended rounds. Callers holding engine locks must use NextLocked,
// which never opens the window: a yield inside a locked region would extend
// every blocked transaction's wait, trading oracle throughput for lock
// latency exactly where it hurts.
// The struct is laid out in three cache-line groups (mvlint/padcheck): the
// combining words every committer hits (TryLock word, enroll stack, heat),
// the waiter pool, and the mu-protected statistics counters, so pool and
// counter traffic never invalidates the line the TryLock spin reads.
//
//mvlint:padded
type Funnel struct {
	// mu serializes combiners. Only TryLock is ever used, so a goroutine
	// never blocks in the runtime on it: losers enroll in the stack below.
	mu     sync.Mutex //mvlint:cacheline
	head   atomic.Pointer[funnelWaiter]
	heat   atomic.Int32
	oracle *Oracle
	_      [32]byte

	pool sync.Pool //mvlint:cacheline
	_    [24]byte

	// Counters are updated only while holding mu (every draw is completed by
	// some combiner), so the Adds are uncontended; atomics make the loads in
	// Stats safe.
	draws    atomic.Uint64 //mvlint:cacheline
	physical atomic.Uint64
	combined atomic.Uint64
	batches  atomic.Uint64
	_        [32]byte
}

// NewFunnel returns a funnel drawing from o.
func NewFunnel(o *Oracle) *Funnel {
	f := &Funnel{oracle: o}
	f.pool.New = func() any { return new(funnelWaiter) }
	return f
}

// Oracle returns the underlying oracle.
func (f *Funnel) Oracle() *Oracle { return f.oracle }

// Next draws one timestamp through the funnel. The caller must not be
// holding engine locks (see NextLocked).
func (f *Funnel) Next() uint64 { return f.NextN(1) }

// NextLocked draws one timestamp for a caller that is holding engine locks
// (an MV/L or 1V committer drawing its end timestamp inside its locked
// region). It never opens the combining window: yielding there would extend
// the caller's lock hold times and stall every transaction blocked on them.
// Such draws still combine opportunistically — they join batches formed by
// windowed draws or natural pile-ups, and they serve enrolled waiters when
// they win the lock.
func (f *Funnel) NextLocked() uint64 {
	if f.mu.TryLock() {
		return f.combine(1, false)
	}
	return f.enroll(1)
}

// NextN draws n consecutive timestamps through the funnel and returns the
// first. n must be at least 1. The caller must not be holding engine locks
// (see NextLocked).
func (f *Funnel) NextN(n uint64) uint64 {
	if f.mu.TryLock() {
		return f.combine(n, true)
	}
	return f.enroll(n)
}

// enroll publishes a draw request of size n on the combining stack and waits
// to be served, self-serving if the funnel frees up first.
func (f *Funnel) enroll(n uint64) uint64 {

	// A draw is in flight: enroll in its epoch and wait to be served. The
	// failed TryLock is the contention signal that (re)opens the combining
	// window.
	f.heat.Store(funnelHeat)
	w := f.pool.Get().(*funnelWaiter)
	w.n = n
	for {
		h := f.head.Load()
		w.next = h
		if f.head.CompareAndSwap(h, w) {
			break
		}
	}
	for {
		if s := w.start.Load(); s != 0 {
			w.start.Store(0)
			w.next = nil
			f.pool.Put(w)
			return s
		}
		// Self-service guarantees progress without parking: if the lock has
		// been dropped and nobody is coming, the waiter becomes the combiner
		// and serves the stack — including, possibly, its own node.
		if f.mu.TryLock() {
			f.combine(0, false)
		}
		runtime.Gosched()
	}
}

// combine runs one funnel round. The caller must hold f.mu; combine unlocks
// it. n is the combiner's own request size (0 for a waiter draining the
// stack on behalf of its peers), and the combiner's own timestamps are the
// FIRST n of the drawn block; the return value is their start (0 when n is
// 0 and nothing was requested by the combiner). window permits the yield
// below; lock-holding callers pass false.
//
//mvlint:locked
func (f *Funnel) combine(n uint64, window bool) uint64 {
	if window && f.heat.Load() > 0 {
		// Combining window: contention was seen recently, so yield once
		// before closing the batch. Runnable peer committers get scheduled,
		// fail TryLock (we hold it), and enroll — the point of the funnel.
		// On an uncontended engine heat is 0 and the draw goes straight
		// through.
		//mvlint:ignore lockedoracle the combining window IS a deliberate yield under mu (docs/perf.md); lock-holding callers pass window=false via NextLocked
		runtime.Gosched()
	}

	// Close the epoch: everything enrolled up to here shares one
	// fetch-and-add; later arrivals start a new epoch on a fresh stack. The
	// nil check keeps the solo fast path to a plain load — skipping the swap
	// cannot strand a waiter that enrolls right after it, because waiters
	// self-serve through TryLock once we release mu.
	var batch *funnelWaiter
	if f.head.Load() != nil {
		batch = f.head.Swap(nil)
	}
	total := n
	for w := batch; w != nil; w = w.next {
		total += w.n
	}
	var start uint64
	if total > 0 {
		start = f.oracle.NextN(total)
		f.physical.Add(1)
	}

	served := uint64(0)
	v := start + n
	for w := batch; w != nil; {
		// Read everything we need from the node BEFORE publishing its
		// start: the store hands the node back to its owner, who may
		// recycle it through the pool immediately.
		next := w.next
		wn := w.n
		w.start.Store(v)
		v += wn
		served++
		w = next
	}

	own := uint64(0)
	if n > 0 {
		own = 1
	}
	f.draws.Add(own + served)
	if served > 0 {
		f.combined.Add(served)
		f.batches.Add(1)
		f.heat.Store(funnelHeat)
	} else if h := f.heat.Load(); h > 0 {
		// Solo round: cool down toward the windowless direct path. The
		// unsynchronized load/store pair is benign — concurrent writers only
		// move heat between "open" values or reset it to funnelHeat.
		f.heat.Store(h - 1)
	}
	f.mu.Unlock()
	return start
}

// Stats returns a snapshot of the funnel's counters.
func (f *Funnel) Stats() FunnelStats {
	return FunnelStats{
		Draws:    f.draws.Load(),
		Physical: f.physical.Load(),
		Combined: f.combined.Load(),
		Batches:  f.batches.Load(),
	}
}
