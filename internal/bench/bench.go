// Package bench is the measurement harness that regenerates the paper's
// evaluation (Section 5): fixed-duration, fixed-multiprogramming-level runs
// of weighted transaction mixes against a database, reporting committed
// transactions per second exactly as the paper's figures and tables do.
//
// The paper limits the number of concurrently active transactions to the
// hardware thread count ("there is no need to overprovision threads"); here
// the multiprogramming level is the worker goroutine count.
package bench

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// TxFn is one transaction body. It issues operations on tx and returns the
// number of rows it read (used for read-throughput series) or an error, in
// which case the harness aborts the transaction and counts an abort.
type TxFn func(tx *core.Tx, rng *rand.Rand) (reads int, err error)

// TxType describes one transaction type in a mix.
type TxType struct {
	// Name labels the type in per-type results.
	Name string
	// Weight is the type's share when workers draw types randomly. Ignored
	// for pinned types.
	Weight int
	// Pinned dedicates exactly this many workers to the type (the long
	// reader experiments fix x workers to the reporting query). Pinned
	// workers run only this type.
	Pinned int
	// Isolation for transactions of this type.
	Isolation core.Isolation
	// Scheme optionally overrides the database's default scheme (mixing
	// optimistic and pessimistic transactions); nil means default.
	Scheme *core.Scheme
	// ReadOnly runs transactions of this type on the registration-free
	// snapshot fast lane (core.WithReadOnly). The body must not write.
	ReadOnly bool
	// Fn is the transaction body.
	Fn TxFn
}

// Options controls a run.
type Options struct {
	// Workers is the multiprogramming level (concurrently active
	// transactions).
	Workers int
	// Duration is the measured interval.
	Duration time.Duration
	// Warmup runs the workload unmeasured first.
	Warmup time.Duration
	// Seed makes key sequences reproducible across schemes.
	Seed int64
}

// TypeResult aggregates one transaction type.
type TypeResult struct {
	Commits uint64
	Aborts  uint64
	Reads   uint64
}

// Result is the outcome of a run.
type Result struct {
	Elapsed time.Duration
	Commits uint64
	Aborts  uint64
	Reads   uint64
	PerType map[string]TypeResult
	Stats   core.Stats
}

// TPS returns committed transactions per second.
func (r Result) TPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Commits) / r.Elapsed.Seconds()
}

// TypeTPS returns committed transactions per second for one type.
func (r Result) TypeTPS(name string) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.PerType[name].Commits) / r.Elapsed.Seconds()
}

// TypeReadsPerSec returns rows read per second by one type.
func (r Result) TypeReadsPerSec(name string) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.PerType[name].Reads) / r.Elapsed.Seconds()
}

// AbortRate returns the fraction of transactions that aborted.
func (r Result) AbortRate() float64 {
	total := r.Commits + r.Aborts
	if total == 0 {
		return 0
	}
	return float64(r.Aborts) / float64(total)
}

type typeCounters struct {
	commits atomic.Uint64
	aborts  atomic.Uint64
	reads   atomic.Uint64
}

// Run executes the mix at the requested multiprogramming level.
func Run(db *core.Database, types []TxType, opts Options) Result {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = 500 * time.Millisecond
	}

	// Assign pinned workers; the rest draw weighted types.
	assignment := make([]int, 0, opts.Workers) // index into types, -1 = weighted
	for ti, t := range types {
		for i := 0; i < t.Pinned && len(assignment) < opts.Workers; i++ {
			assignment = append(assignment, ti)
		}
	}
	for len(assignment) < opts.Workers {
		assignment = append(assignment, -1)
	}
	totalWeight := 0
	for _, t := range types {
		if t.Pinned == 0 {
			totalWeight += t.Weight
		}
	}

	counters := make([]typeCounters, len(types))
	var measuring atomic.Bool
	var stop atomic.Bool

	pick := func(rng *rand.Rand) int {
		if totalWeight <= 0 {
			return 0
		}
		w := rng.Intn(totalWeight)
		for ti := range types {
			if types[ti].Pinned > 0 {
				continue
			}
			w -= types[ti].Weight
			if w < 0 {
				return ti
			}
		}
		return len(types) - 1
	}

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)*7919))
			for !stop.Load() {
				ti := assignment[w]
				if ti < 0 {
					ti = pick(rng)
				}
				t := &types[ti]
				var tx *core.Tx
				if t.ReadOnly {
					tx = db.BeginReadOnly()
				} else {
					var txOpts []core.TxOption
					txOpts = append(txOpts, core.WithIsolation(t.Isolation))
					if t.Scheme != nil {
						txOpts = append(txOpts, core.WithScheme(*t.Scheme))
					}
					tx = db.Begin(txOpts...)
				}
				reads, err := t.Fn(tx, rng)
				if err != nil {
					_ = tx.Abort()
					if measuring.Load() {
						counters[ti].aborts.Add(1)
					}
					continue
				}
				if err := tx.Commit(); err != nil {
					if measuring.Load() {
						counters[ti].aborts.Add(1)
					}
					continue
				}
				if measuring.Load() {
					counters[ti].commits.Add(1)
					counters[ti].reads.Add(uint64(reads))
				}
			}
		}(w)
	}

	if opts.Warmup > 0 {
		time.Sleep(opts.Warmup)
	}
	measuring.Store(true)
	start := time.Now()
	time.Sleep(opts.Duration)
	measuring.Store(false)
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()

	res := Result{
		Elapsed: elapsed,
		PerType: make(map[string]TypeResult, len(types)),
		Stats:   db.Stats(),
	}
	for ti := range types {
		tr := TypeResult{
			Commits: counters[ti].commits.Load(),
			Aborts:  counters[ti].aborts.Load(),
			Reads:   counters[ti].reads.Load(),
		}
		res.PerType[types[ti].Name] = tr
		res.Commits += tr.Commits
		res.Aborts += tr.Aborts
		res.Reads += tr.Reads
	}
	return res
}
