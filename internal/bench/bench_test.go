package bench

import (
	"encoding/binary"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func pay(key, val uint64) []byte {
	p := make([]byte, 16)
	binary.LittleEndian.PutUint64(p, key)
	binary.LittleEndian.PutUint64(p[8:], val)
	return p
}

func keyOf(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }

func testDB(t *testing.T, scheme core.Scheme, rows uint64) (*core.Database, *core.Table) {
	t.Helper()
	db, err := core.Open(core.Config{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(core.TableSpec{
		Name:    "t",
		Indexes: []core.IndexSpec{{Name: "pk", Key: keyOf, Buckets: int(rows)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < rows; k++ {
		db.LoadRow(tbl, pay(k, 0))
	}
	t.Cleanup(func() { db.Close() })
	return db, tbl
}

func readTx(tbl *core.Table, rows uint64) TxFn {
	return func(tx *core.Tx, rng *rand.Rand) (int, error) {
		n := 0
		for i := 0; i < 5; i++ {
			k := rng.Uint64() % rows
			if err := tx.Scan(tbl, 0, k, nil, func(core.Row) bool { n++; return false }); err != nil {
				return n, err
			}
		}
		return n, nil
	}
}

func writeTx(tbl *core.Table, rows uint64) TxFn {
	return func(tx *core.Tx, rng *rand.Rand) (int, error) {
		k := rng.Uint64() % rows
		_, err := tx.UpdateWhere(tbl, 0, k, nil, func(old []byte) []byte {
			return pay(k, rng.Uint64())
		})
		return 0, err
	}
}

func TestRunBasic(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SingleVersion, core.MVPessimistic, core.MVOptimistic} {
		t.Run(scheme.String(), func(t *testing.T) {
			db, tbl := testDB(t, scheme, 1000)
			res := Run(db, []TxType{
				{Name: "read", Weight: 3, Isolation: core.ReadCommitted, Fn: readTx(tbl, 1000)},
				{Name: "write", Weight: 1, Isolation: core.ReadCommitted, Fn: writeTx(tbl, 1000)},
			}, Options{Workers: 4, Duration: 80 * time.Millisecond, Seed: 1})
			if res.Commits == 0 {
				t.Fatal("no commits")
			}
			if res.TPS() <= 0 {
				t.Fatal("TPS not positive")
			}
			if res.PerType["read"].Commits == 0 || res.PerType["write"].Commits == 0 {
				t.Fatalf("per-type commits: %+v", res.PerType)
			}
			if res.PerType["read"].Reads == 0 {
				t.Fatal("read counts not collected")
			}
			// Weighted mix: reads should dominate ~3:1.
			r := float64(res.PerType["read"].Commits)
			w := float64(res.PerType["write"].Commits)
			if r < w {
				t.Fatalf("weights ignored: reads=%v writes=%v", r, w)
			}
		})
	}
}

func TestPinnedWorkers(t *testing.T) {
	db, tbl := testDB(t, core.MVOptimistic, 1000)
	var longRuns atomic.Int64
	long := func(tx *core.Tx, rng *rand.Rand) (int, error) {
		longRuns.Add(1)
		time.Sleep(time.Millisecond)
		return 0, nil
	}
	res := Run(db, []TxType{
		{Name: "long", Pinned: 2, Isolation: core.SnapshotIsolation, Fn: long},
		{Name: "write", Weight: 1, Isolation: core.ReadCommitted, Fn: writeTx(tbl, 1000)},
	}, Options{Workers: 4, Duration: 200 * time.Millisecond, Seed: 1})
	if longRuns.Load() == 0 {
		t.Fatal("pinned type never ran")
	}
	if res.PerType["write"].Commits == 0 {
		t.Fatal("weighted type never ran")
	}
}

func TestAbortsCounted(t *testing.T) {
	db, tbl := testDB(t, core.MVOptimistic, 1)
	// All workers hammer one row: write-write conflicts guaranteed.
	res := Run(db, []TxType{
		{Name: "w", Weight: 1, Isolation: core.ReadCommitted, Fn: writeTx(tbl, 1)},
	}, Options{Workers: 8, Duration: 80 * time.Millisecond, Seed: 1})
	if res.Aborts == 0 {
		t.Fatal("expected write-write aborts on single-row hotspot")
	}
	if res.AbortRate() <= 0 || res.AbortRate() >= 1 {
		t.Fatalf("abort rate %v", res.AbortRate())
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{
		Elapsed: time.Second,
		Commits: 100,
		Aborts:  25,
		PerType: map[string]TypeResult{
			"a": {Commits: 60, Reads: 600},
			"b": {Commits: 40},
		},
	}
	if r.TPS() != 100 {
		t.Fatalf("TPS = %v", r.TPS())
	}
	if r.TypeTPS("a") != 60 {
		t.Fatalf("TypeTPS = %v", r.TypeTPS("a"))
	}
	if r.TypeReadsPerSec("a") != 600 {
		t.Fatalf("TypeReadsPerSec = %v", r.TypeReadsPerSec("a"))
	}
	if r.AbortRate() != 0.2 {
		t.Fatalf("AbortRate = %v", r.AbortRate())
	}
	var zero Result
	if zero.TPS() != 0 || zero.AbortRate() != 0 || zero.TypeTPS("x") != 0 {
		t.Fatal("zero-value helpers not safe")
	}
}
