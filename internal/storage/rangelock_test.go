package storage

import (
	"sync"
	"testing"
)

// TestRangeLockActivePublication is the regression test for the Acquire
// publication race: the active counter must change inside the critical
// section, so any observer holding the mutex sees count and table in
// agreement — an inserter that reads Active()==0 is then guaranteed no
// fully-acquired lock exists, and one that reads Active()>0 finds the
// holders under the mutex. (The old code incremented after Unlock, leaving
// a window where the lock was in the table but invisible to the fast path.)
func TestRangeLockActivePublication(t *testing.T) {
	var rl RangeLockTable
	var workers sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < 3000; i++ {
				lo := uint64(i % 16)
				rl.Acquire(lo, lo+4, uint64(w+1))
				rl.AppendHolders(nil, lo+2)
				rl.Release(lo, lo+4, uint64(w+1))
			}
		}(w)
	}
	// Checker: under the mutex, the counter and the table must agree.
	checker := make(chan struct{})
	go func() {
		defer close(checker)
		for {
			select {
			case <-done:
				return
			default:
			}
			rl.mu.Lock()
			a, n := int(rl.active.Load()), len(rl.locks)
			rl.mu.Unlock()
			if a != n {
				t.Errorf("active=%d but %d locks in table", a, n)
				return
			}
		}
	}()
	workers.Wait()
	close(done)
	<-checker
	if rl.Active() != 0 || len(rl.locks) != 0 {
		t.Fatalf("end state: active=%d locks=%d", rl.Active(), len(rl.locks))
	}
}

// TestBucketLockCountPublication: same invariant for the bucket-lock table —
// LockCount changes inside the holder-list critical section.
func TestBucketLockCountPublication(t *testing.T) {
	blt := NewBucketLockTable()
	var b Bucket
	var workers sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < 3000; i++ {
				blt.Acquire(&b, uint64(w+1))
				blt.AppendHolders(nil, &b)
				blt.Release(&b, uint64(w+1))
			}
		}(w)
	}
	checker := make(chan struct{})
	go func() {
		defer close(checker)
		s := blt.shard(&b)
		for {
			select {
			case <-done:
				return
			default:
			}
			s.mu.Lock()
			c, n := b.LockCount(), len(s.m[&b])
			s.mu.Unlock()
			if c != n {
				t.Errorf("LockCount=%d but %d holders listed", c, n)
				return
			}
		}
	}()
	workers.Wait()
	close(done)
	<-checker
	if b.LockCount() != 0 {
		t.Fatalf("end LockCount = %d", b.LockCount())
	}
}
