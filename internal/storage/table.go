package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// KeyFunc extracts the index key from a record payload. Payload layouts are
// application-defined; the engine only needs a 64-bit key per index.
type KeyFunc func(payload []byte) uint64

// IndexSpec describes one hash index of a table.
type IndexSpec struct {
	// Name identifies the index for lookups and diagnostics.
	Name string
	// Key extracts the index key from a payload.
	Key KeyFunc
	// Buckets is the hash table size; it is rounded up to a power of two.
	// The paper sizes hash tables so there are no collisions; callers should
	// pass at least the expected row count.
	Buckets int
}

// TableSpec describes a table and its indexes.
type TableSpec struct {
	Name    string
	Indexes []IndexSpec
}

// Table is a collection of versions reachable through one or more hash
// indexes. A table has no heap: records are always accessed via an index
// (Section 2.1).
type Table struct {
	Name    string
	indexes []*Index
	// arena recycles payload blocks for rows too large for the version's
	// inline buffer; blocks return to it when versions are recycled.
	arena PayloadArena
}

// Arena returns the table's payload slab arena.
func (t *Table) Arena() *PayloadArena { return &t.arena }

// NewTable builds a table from its spec.
func NewTable(spec TableSpec) (*Table, error) {
	if len(spec.Indexes) == 0 {
		return nil, fmt.Errorf("storage: table %q needs at least one index", spec.Name)
	}
	t := &Table{Name: spec.Name}
	for ord, is := range spec.Indexes {
		if is.Key == nil {
			return nil, fmt.Errorf("storage: table %q index %q has no key function", spec.Name, is.Name)
		}
		t.indexes = append(t.indexes, newIndex(ord, is))
	}
	return t, nil
}

// NumIndexes returns the number of indexes on the table.
func (t *Table) NumIndexes() int { return len(t.indexes) }

// Index returns the index with ordinal ord.
func (t *Table) Index(ord int) *Index { return t.indexes[ord] }

// IndexByName returns the index with the given name.
func (t *Table) IndexByName(name string) (*Index, bool) {
	for _, ix := range t.indexes {
		if ix.spec.Name == name {
			return ix, true
		}
	}
	return nil, false
}

// Insert links v into every index of the table, caching the index keys in
// the version. The version must have been allocated for this table's index
// count.
func (t *Table) Insert(v *Version) {
	for _, ix := range t.indexes {
		v.setKey(ix.ord, ix.spec.Key(v.Payload))
	}
	for _, ix := range t.indexes {
		ix.insert(v)
	}
}

// Unlink removes v from every index. It returns false if the version was
// already unlinked (the garbage collector calls this at most once per
// version, but defensive callers may race).
func (t *Table) Unlink(v *Version) bool {
	if !v.MarkUnlinked() {
		return false
	}
	for _, ix := range t.indexes {
		ix.unlink(v)
	}
	return true
}

// Index is a hash index over a table. Bucket chains are singly linked
// through the versions' per-index next pointers; readers follow them with
// atomic loads only.
type Index struct {
	ord     int
	spec    IndexSpec
	mask    uint64
	buckets []Bucket
}

func newIndex(ord int, spec IndexSpec) *Index {
	n := 1
	for n < spec.Buckets {
		n <<= 1
	}
	if n < 1 {
		n = 1
	}
	return &Index{ord: ord, spec: spec, mask: uint64(n - 1), buckets: make([]Bucket, n)}
}

// Ord returns the index ordinal within its table.
func (ix *Index) Ord() int { return ix.ord }

// Name returns the index name.
func (ix *Index) Name() string { return ix.spec.Name }

// NumBuckets returns the hash table size.
func (ix *Index) NumBuckets() int { return len(ix.buckets) }

// Key extracts this index's key from a payload.
func (ix *Index) Key(payload []byte) uint64 { return ix.spec.Key(payload) }

// mix is a 64-bit finalizer (splitmix64) spreading sequential keys across
// buckets.
func mix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}

// Bucket returns the bucket for key.
func (ix *Index) Bucket(key uint64) *Bucket {
	return &ix.buckets[mix(key)&ix.mask]
}

// BucketAt returns bucket i; scans over whole tables walk all buckets of one
// index (Section 2.1: "to scan a table, one simply scans all buckets of any
// index on the table").
func (ix *Index) BucketAt(i int) *Bucket { return &ix.buckets[i] }

func (ix *Index) insert(v *Version) {
	b := ix.Bucket(v.Key(ix.ord))
	b.mu.Lock()
	v.setNext(ix.ord, b.head.Load())
	b.head.Store(v)
	b.mu.Unlock()
}

func (ix *Index) unlink(v *Version) {
	b := ix.Bucket(v.Key(ix.ord))
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := b.head.Load()
	if cur == v {
		b.head.Store(v.Next(ix.ord))
		return
	}
	for cur != nil {
		next := cur.Next(ix.ord)
		if next == v {
			cur.setNext(ix.ord, v.Next(ix.ord))
			return
		}
		cur = next
	}
}

// Bucket is one hash chain head. Readers call Head and Version.Next with no
// locking; the mutex serializes inserts and unlinks only. lockCount is the
// bucket-lock counter of Section 4.1.2, stored in the bucket so scans can
// check for locks cheaply.
type Bucket struct {
	mu        sync.Mutex
	head      atomic.Pointer[Version]
	lockCount atomic.Int32
}

// Head returns the first version in the bucket chain.
func (b *Bucket) Head() *Version { return b.head.Load() }

// LockCount returns the number of bucket locks currently held.
func (b *Bucket) LockCount() int { return int(b.lockCount.Load()) }

// IncLocks increments the bucket lock counter.
func (b *Bucket) IncLocks() { b.lockCount.Add(1) }

// DecLocks decrements the bucket lock counter.
func (b *Bucket) DecLocks() { b.lockCount.Add(-1) }
