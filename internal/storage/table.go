package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/keyenc"
)

// KeyFunc extracts the index key from a record payload. Payload layouts are
// application-defined; the engine only needs a 64-bit key per index.
type KeyFunc func(payload []byte) uint64

// IndexSpec describes one index of a table.
type IndexSpec struct {
	// Name identifies the index for lookups and diagnostics.
	Name string
	// Key extracts the index key from a payload.
	Key KeyFunc
	// Ordered selects an ordered (range-scannable) index instead of a hash
	// index. Ordered indexes support ScanRange; Buckets is ignored.
	Ordered bool
	// Composite, when non-nil, documents the index key as an
	// order-preserving packed tuple (see keyenc.Layout): Key must return
	// Composite.Encode of the payload's fields. The engines below treat the
	// key as an opaque uint64 — packing is what keeps the skip list, the
	// version words and all three range-lock schemes unchanged — while the
	// layout lets the layers above (core.Tx.ScanPrefix) turn a field prefix
	// into an exact [lo, hi] scan or lock range. Meaningful with Ordered
	// (prefix scans need key order); legal on a hash index for exact-tuple
	// point lookups.
	Composite *keyenc.Layout
	// Buckets is the hash table size; it is rounded up to a power of two.
	// The paper sizes hash tables so there are no collisions; callers should
	// pass at least the expected row count.
	Buckets int
}

// TableSpec describes a table and its indexes.
type TableSpec struct {
	Name    string
	Indexes []IndexSpec
}

// ErrUnordered is returned when a range scan is attempted on an index that
// does not maintain key order (a hash index).
var ErrUnordered = errors.New("storage: index does not support range scans")

// Index is a table access method. Records are only reachable through
// indexes (Section 2.1); the engines never touch a version except through
// one of these.
//
// Two implementations exist: the hash index of the paper's prototype
// (point lookups, latch-free bucket-chain readers) and an ordered skip-list
// index that additionally supports range scans. Readers of either kind
// follow atomic pointers only; structural changes take short per-bucket
// latches (plus, for the ordered index, a per-index latch on first
// insertion of a new key).
type Index interface {
	// Ord is the index ordinal within its table: versions reached through
	// this index chain via their ord-th next pointer.
	Ord() int
	// Name returns the index name.
	Name() string
	// Ordered reports whether ScanRange is supported.
	Ordered() bool
	// Key extracts this index's key from a payload.
	Key(payload []byte) uint64
	// Lookup returns the bucket that holds versions with the given key, or
	// nil when no such bucket exists. A hash bucket also holds colliding
	// keys (callers filter on Version.Key); an ordered index's bucket holds
	// exactly one key, and Lookup returns nil for keys never inserted.
	Lookup(key uint64) *Bucket
	// Link inserts v at the head of its bucket chain. The version's cached
	// key for this index must already be set.
	Link(v *Version)
	// Unlink removes v from its bucket chain (garbage collection).
	Unlink(v *Version)
	// ScanRange returns a cursor over the buckets with keys in [lo, hi], in
	// ascending key order. A hash index returns ErrUnordered — every
	// unordered range attempt surfaces the error instead of silently
	// yielding an exhausted cursor.
	ScanRange(lo, hi uint64) (RangeCursor, error)
	// RangeLocks returns the index's range-lock table (phantom protection
	// for pessimistic serializable scans), or nil for hash indexes, whose
	// bucket locks cover absent keys physically.
	RangeLocks() *RangeLockTable
}

// RangeCursor iterates the buckets of an ordered index in ascending key
// order. Concurrent inserts of new keys may or may not be observed, exactly
// like new versions appearing in a hash bucket mid-scan — transactional
// consistency comes from the layers above (visibility, validation, locks),
// not the cursor. A cursor parked on a node the reclaimer has since swept
// keeps walking through the node's retained tower pointers; the node itself
// is not reset until the owning engine proves the cursor's holder has
// finished (MV: the GC watermark; 1V: the reader epoch — see
// docs/indexes.md, "Node reclamation").
type RangeCursor struct {
	node *SkipNode[Bucket]
	hi   uint64
}

// Next returns the next bucket and its key; ok is false when the cursor is
// exhausted.
func (c *RangeCursor) Next() (b *Bucket, key uint64, ok bool) {
	n := c.node
	if n == nil || n.Key() > c.hi {
		return nil, 0, false
	}
	c.node = n.Next()
	return &n.V, n.Key(), true
}

// Table is a collection of versions reachable through one or more indexes.
// A table has no heap: records are always accessed via an index
// (Section 2.1).
type Table struct {
	Name    string
	indexes []Index
	// arena recycles payload blocks for rows too large for the version's
	// inline buffer; blocks return to it when versions are recycled.
	arena PayloadArena
}

// Arena returns the table's payload slab arena.
func (t *Table) Arena() *PayloadArena { return &t.arena }

// NewTable builds a table from its spec.
func NewTable(spec TableSpec) (*Table, error) {
	if len(spec.Indexes) == 0 {
		return nil, fmt.Errorf("storage: table %q needs at least one index", spec.Name)
	}
	t := &Table{Name: spec.Name}
	for ord, is := range spec.Indexes {
		if is.Key == nil {
			return nil, fmt.Errorf("storage: table %q index %q has no key function", spec.Name, is.Name)
		}
		if is.Ordered {
			t.indexes = append(t.indexes, newOrderedIndex(ord, is))
		} else {
			t.indexes = append(t.indexes, newHashIndex(ord, is))
		}
	}
	return t, nil
}

// NumIndexes returns the number of indexes on the table.
func (t *Table) NumIndexes() int { return len(t.indexes) }

// Index returns the index with ordinal ord.
func (t *Table) Index(ord int) Index { return t.indexes[ord] }

// IndexByName returns the index with the given name.
func (t *Table) IndexByName(name string) (Index, bool) {
	for _, ix := range t.indexes {
		if ix.Name() == name {
			return ix, true
		}
	}
	return nil, false
}

// Insert links v into every index of the table, caching the index keys in
// the version. The version must have been allocated for this table's index
// count.
func (t *Table) Insert(v *Version) {
	for _, ix := range t.indexes {
		v.setKey(ix.Ord(), ix.Key(v.Payload))
	}
	for _, ix := range t.indexes {
		ix.Link(v)
	}
}

// Unlink removes v from every index. It returns false if the version was
// already unlinked (the garbage collector calls this at most once per
// version, but defensive callers may race).
func (t *Table) Unlink(v *Version) bool {
	if !v.MarkUnlinked() {
		return false
	}
	for _, ix := range t.indexes {
		ix.Unlink(v)
	}
	return true
}

// HashIndex is a hash index over a table. Bucket chains are singly linked
// through the versions' per-index next pointers; readers follow them with
// atomic loads only.
type HashIndex struct {
	ord     int
	spec    IndexSpec
	mask    uint64
	buckets []Bucket
}

func newHashIndex(ord int, spec IndexSpec) *HashIndex {
	n := 1
	for n < spec.Buckets {
		n <<= 1
	}
	if n < 1 {
		n = 1
	}
	return &HashIndex{ord: ord, spec: spec, mask: uint64(n - 1), buckets: make([]Bucket, n)}
}

// Ord returns the index ordinal within its table.
func (ix *HashIndex) Ord() int { return ix.ord }

// Name returns the index name.
func (ix *HashIndex) Name() string { return ix.spec.Name }

// Ordered reports range-scan support; hash indexes have none.
func (ix *HashIndex) Ordered() bool { return false }

// NumBuckets returns the hash table size.
func (ix *HashIndex) NumBuckets() int { return len(ix.buckets) }

// Key extracts this index's key from a payload.
func (ix *HashIndex) Key(payload []byte) uint64 { return ix.spec.Key(payload) }

// mix is a 64-bit finalizer (splitmix64) spreading sequential keys across
// buckets.
func mix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xBF58476D1CE4E5B9
	k ^= k >> 27
	k *= 0x94D049BB133111EB
	k ^= k >> 31
	return k
}

// Bucket returns the bucket for key.
func (ix *HashIndex) Bucket(key uint64) *Bucket {
	return &ix.buckets[mix(key)&ix.mask]
}

// Lookup returns the bucket covering key; for a hash index every key maps to
// a bucket, present or not.
func (ix *HashIndex) Lookup(key uint64) *Bucket { return ix.Bucket(key) }

// BucketAt returns bucket i; scans over whole tables walk all buckets of one
// index (Section 2.1: "to scan a table, one simply scans all buckets of any
// index on the table").
func (ix *HashIndex) BucketAt(i int) *Bucket { return &ix.buckets[i] }

// ScanRange on a hash index fails with ErrUnordered: hash buckets have no
// key order to iterate, and silently returning an exhausted cursor would
// let a miswired caller read "empty range" where the real answer is "this
// index cannot answer range queries".
func (ix *HashIndex) ScanRange(lo, hi uint64) (RangeCursor, error) {
	return RangeCursor{}, ErrUnordered
}

// RangeLocks returns nil: hash bucket locks cover absent keys physically, so
// no predicate-shaped lock table is needed.
func (ix *HashIndex) RangeLocks() *RangeLockTable { return nil }

// Link inserts v at the head of its bucket chain.
func (ix *HashIndex) Link(v *Version) {
	b := ix.Bucket(v.Key(ix.ord))
	b.mu.Lock()
	v.setNext(ix.ord, b.head.Load())
	b.head.Store(v)
	b.mu.Unlock()
}

// Unlink removes v from its bucket chain.
func (ix *HashIndex) Unlink(v *Version) {
	ix.Bucket(v.Key(ix.ord)).unlink(v, ix.ord)
}

// unlink removes v from b's chain; shared by both index kinds. It reports
// whether the chain is empty after the operation — the ordered index uses
// this to trigger node reclamation (a hash bucket is a fixed slot and
// ignores it).
func (b *Bucket) unlink(v *Version, ord int) (empty bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := b.head.Load()
	if cur == v {
		b.head.Store(v.Next(ord))
		return b.head.Load() == nil
	}
	for cur != nil {
		next := cur.Next(ord)
		if next == v {
			cur.setNext(ord, v.Next(ord))
			break
		}
		cur = next
	}
	return b.head.Load() == nil
}

// Bucket is one chain of versions: a hash bucket (all keys hashing there) or
// an ordered-index node's chain (exactly one key). Readers call Head and
// Version.Next with no locking; the mutex serializes inserts and unlinks
// only. lockCount is the bucket-lock counter of Section 4.1.2, stored in the
// bucket so scans can check for locks cheaply.
type Bucket struct {
	mu        sync.Mutex
	head      atomic.Pointer[Version]
	lockCount atomic.Int32
}

// Head returns the first version in the bucket chain.
func (b *Bucket) Head() *Version { return b.head.Load() }

// LockCount returns the number of bucket locks currently held.
func (b *Bucket) LockCount() int { return int(b.lockCount.Load()) }

// IncLocks increments the bucket lock counter.
func (b *Bucket) IncLocks() { b.lockCount.Add(1) }

// DecLocks decrements the bucket lock counter.
func (b *Bucket) DecLocks() { b.lockCount.Add(-1) }
