// Package storage implements the multiversion storage structures of
// Section 2: versioned records, tables with multiple hash indexes, and the
// bucket-lock table used by pessimistic serializable transactions.
//
// Records are only reachable through index lookups (Section 2.1). Every
// version carries a Begin and End word (see internal/field) and one hash
// chain pointer per index on its table, exactly like the record format of
// Figure 1. Readers traverse bucket chains without taking any latches;
// structural changes (insert, garbage-collection unlink) take a short
// per-bucket latch.
package storage

import (
	"sync/atomic"

	"repro/internal/field"
)

// InlinePayload is the size of a version's inline payload buffer: payloads
// at most this long are copied into the version itself, so small fixed-width
// records (the paper's 24-byte rows, every TATP row) need no separate
// payload allocation. Larger payloads are retained by reference.
const InlinePayload = 48

// Version is one version of a record. The payload is immutable after
// creation; updates create new versions (Section 2.3).
//
// The chain pointers and cached index keys for the first two indexes live
// inline in the struct — scans touch one cache line per version — with a
// spill slice for tables with more indexes.
//
// Versions may be pooled: after the garbage collector has unlinked a version
// from every index AND the watermark has passed the unlink time (so no
// transaction that could still reach it remains active), Reset rearms the
// object for a new record. All reader-reachable mutable words (begin, end,
// next pointers) are atomic, so recycling never races with stale readers.
type Version struct {
	begin atomic.Uint64
	end   atomic.Uint64
	// Payload is the record's user data. It must not be modified after the
	// version is installed in an index, and must not be retained past the
	// reading transaction's lifetime: it may point into the version's inline
	// buffer, which is reused when the version is recycled.
	Payload []byte

	next0, next1 atomic.Pointer[Version]
	key0, key1   uint64
	nextX        []atomic.Pointer[Version]
	keysX        []uint64

	// unlinked is set once the version has been removed from every index by
	// the garbage collector, guarding against double unlinks.
	unlinked atomic.Bool

	// arena and arenaBuf track a payload block borrowed from a table's slab
	// arena; VersionPool.Put returns the block when the version is recycled.
	arena    *PayloadArena
	arenaBuf []byte

	inline [InlinePayload]byte
}

// NewVersion allocates a version with room for chains in nindexes indexes.
// The Begin and End words start as the given values. Small payloads are
// copied into the version's inline buffer; larger ones are retained.
func NewVersion(payload []byte, nindexes int, begin, end uint64) *Version {
	v := &Version{}
	v.Reset(payload, nindexes, begin, end)
	return v
}

// Reset rearms a version for reuse: it installs the payload (copying small
// payloads into the inline buffer), sizes the spill chain slices for
// nindexes, clears every chain pointer and the unlinked flag, and stores the
// Begin and End words. The caller must guarantee the version is unreachable:
// unlinked from every index, with every transaction that might still hold a
// pointer terminated.
func (v *Version) Reset(payload []byte, nindexes int, begin, end uint64) {
	v.ResetIn(nil, payload, nindexes, begin, end)
}

// ResetIn is Reset with a payload arena: payloads too big for the inline
// buffer are copied into a slab block from a (per-table) arena instead of
// being retained by reference, so they are recycled with the version. A nil
// arena, or a payload the arena does not serve, retains the caller's slice
// as before.
func (v *Version) ResetIn(a *PayloadArena, payload []byte, nindexes int, begin, end uint64) {
	if v.arena != nil {
		// Rearmed without passing through VersionPool.Put: return the old
		// slab block first (the unreachability contract makes this safe).
		v.arena.Put(v.arenaBuf)
		v.arena, v.arenaBuf = nil, nil
	}
	switch {
	case len(payload) <= InlinePayload:
		v.Payload = v.inline[:len(payload)]
		copy(v.Payload, payload)
	case a != nil:
		if buf := a.Get(len(payload)); buf != nil {
			copy(buf, payload)
			v.arena, v.arenaBuf = a, buf
			v.Payload = buf
		} else {
			v.Payload = payload
		}
	default:
		v.Payload = payload
	}
	// Clear the whole spill capacity (not just the new length) so a pooled
	// version doesn't retain chain pointers from a previous table.
	spill := v.nextX[:cap(v.nextX)]
	for i := range spill {
		spill[i].Store(nil)
	}
	keys := v.keysX[:cap(v.keysX)]
	for i := range keys {
		keys[i] = 0
	}
	if nindexes > 2 {
		if cap(v.nextX) >= nindexes-2 {
			v.nextX = v.nextX[:nindexes-2]
			v.keysX = v.keysX[:nindexes-2]
		} else {
			v.nextX = make([]atomic.Pointer[Version], nindexes-2)
			v.keysX = make([]uint64, nindexes-2)
		}
	} else {
		v.nextX = v.nextX[:0]
		v.keysX = v.keysX[:0]
	}
	v.next0.Store(nil)
	v.next1.Store(nil)
	v.key0, v.key1 = 0, 0
	v.unlinked.Store(false)
	v.begin.Store(begin)
	v.end.Store(end)
}

// Begin loads the Begin word.
func (v *Version) Begin() uint64 { return v.begin.Load() }

// End loads the End word.
func (v *Version) End() uint64 { return v.end.Load() }

// SetBegin stores the Begin word. Only the transaction that owns the
// version (its creator) finalizes Begin, so a plain store suffices.
func (v *Version) SetBegin(w uint64) { v.begin.Store(w) }

// SetEnd stores the End word unconditionally. Used only during
// single-threaded setup and recovery; concurrent mutation goes through
// CASEnd.
func (v *Version) SetEnd(w uint64) { v.end.Store(w) }

// CASEnd atomically replaces the End word if it still equals old. All
// concurrent End-word transitions (write locking, read locking, lock
// release, timestamp finalization) go through this.
func (v *Version) CASEnd(old, new uint64) bool { return v.end.CompareAndSwap(old, new) }

// Next returns the successor of v in index ord's bucket chain.
func (v *Version) Next(ord int) *Version {
	switch ord {
	case 0:
		return v.next0.Load()
	case 1:
		return v.next1.Load()
	default:
		return v.nextX[ord-2].Load()
	}
}

// setNext stores the successor pointer; callers hold the bucket latch.
func (v *Version) setNext(ord int, n *Version) {
	switch ord {
	case 0:
		v.next0.Store(n)
	case 1:
		v.next1.Store(n)
	default:
		v.nextX[ord-2].Store(n)
	}
}

// Key returns the cached index key for index ord.
func (v *Version) Key(ord int) uint64 {
	switch ord {
	case 0:
		return v.key0
	case 1:
		return v.key1
	default:
		return v.keysX[ord-2]
	}
}

// setKey caches the index key; called once by Table.Insert before linking.
func (v *Version) setKey(ord int, k uint64) {
	switch ord {
	case 0:
		v.key0 = k
	case 1:
		v.key1 = k
	default:
		v.keysX[ord-2] = k
	}
}

// MarkUnlinked flips the version into the unlinked state, returning false if
// it was already unlinked.
func (v *Version) MarkUnlinked() bool { return v.unlinked.CompareAndSwap(false, true) }

// IsGarbage reports whether the version can never be visible again given the
// oldest active read time: its valid time ended before the watermark, or it
// belongs to an aborted transaction (begin infinity).
func (v *Version) IsGarbage(watermark uint64) bool {
	b := v.Begin()
	if field.IsTS(b) && field.TS(b) == field.Infinity {
		return true // aborted creator marked it invisible
	}
	e := v.End()
	return field.IsTS(e) && field.TS(e) <= watermark && field.TS(e) != field.Infinity
}
