// Package storage implements the multiversion storage structures of
// Section 2: versioned records, tables with multiple hash indexes, and the
// bucket-lock table used by pessimistic serializable transactions.
//
// Records are only reachable through index lookups (Section 2.1). Every
// version carries a Begin and End word (see internal/field) and one hash
// chain pointer per index on its table, exactly like the record format of
// Figure 1. Readers traverse bucket chains without taking any latches;
// structural changes (insert, garbage-collection unlink) take a short
// per-bucket latch.
package storage

import (
	"sync/atomic"

	"repro/internal/field"
)

// Version is one version of a record. The payload is immutable after
// creation; updates create new versions (Section 2.3).
//
// The chain pointers and cached index keys for the first two indexes live
// inline in the struct — scans touch one cache line per version — with a
// spill slice for tables with more indexes.
type Version struct {
	begin atomic.Uint64
	end   atomic.Uint64
	// Payload is the record's user data. It must not be modified after the
	// version is installed in an index.
	Payload []byte

	next0, next1 atomic.Pointer[Version]
	key0, key1   uint64
	nextX        []atomic.Pointer[Version]
	keysX        []uint64

	// unlinked is set once the version has been removed from every index by
	// the garbage collector, guarding against double unlinks.
	unlinked atomic.Bool
}

// NewVersion allocates a version with room for chains in nindexes indexes.
// The Begin and End words start as the given values.
func NewVersion(payload []byte, nindexes int, begin, end uint64) *Version {
	v := &Version{Payload: payload}
	if nindexes > 2 {
		v.nextX = make([]atomic.Pointer[Version], nindexes-2)
		v.keysX = make([]uint64, nindexes-2)
	}
	v.begin.Store(begin)
	v.end.Store(end)
	return v
}

// Begin loads the Begin word.
func (v *Version) Begin() uint64 { return v.begin.Load() }

// End loads the End word.
func (v *Version) End() uint64 { return v.end.Load() }

// SetBegin stores the Begin word. Only the transaction that owns the
// version (its creator) finalizes Begin, so a plain store suffices.
func (v *Version) SetBegin(w uint64) { v.begin.Store(w) }

// SetEnd stores the End word unconditionally. Used only during
// single-threaded setup and recovery; concurrent mutation goes through
// CASEnd.
func (v *Version) SetEnd(w uint64) { v.end.Store(w) }

// CASEnd atomically replaces the End word if it still equals old. All
// concurrent End-word transitions (write locking, read locking, lock
// release, timestamp finalization) go through this.
func (v *Version) CASEnd(old, new uint64) bool { return v.end.CompareAndSwap(old, new) }

// Next returns the successor of v in index ord's bucket chain.
func (v *Version) Next(ord int) *Version {
	switch ord {
	case 0:
		return v.next0.Load()
	case 1:
		return v.next1.Load()
	default:
		return v.nextX[ord-2].Load()
	}
}

// setNext stores the successor pointer; callers hold the bucket latch.
func (v *Version) setNext(ord int, n *Version) {
	switch ord {
	case 0:
		v.next0.Store(n)
	case 1:
		v.next1.Store(n)
	default:
		v.nextX[ord-2].Store(n)
	}
}

// Key returns the cached index key for index ord.
func (v *Version) Key(ord int) uint64 {
	switch ord {
	case 0:
		return v.key0
	case 1:
		return v.key1
	default:
		return v.keysX[ord-2]
	}
}

// setKey caches the index key; called once by Table.Insert before linking.
func (v *Version) setKey(ord int, k uint64) {
	switch ord {
	case 0:
		v.key0 = k
	case 1:
		v.key1 = k
	default:
		v.keysX[ord-2] = k
	}
}

// MarkUnlinked flips the version into the unlinked state, returning false if
// it was already unlinked.
func (v *Version) MarkUnlinked() bool { return v.unlinked.CompareAndSwap(false, true) }

// IsGarbage reports whether the version can never be visible again given the
// oldest active read time: its valid time ended before the watermark, or it
// belongs to an aborted transaction (begin infinity).
func (v *Version) IsGarbage(watermark uint64) bool {
	b := v.Begin()
	if field.IsTS(b) && field.TS(b) == field.Infinity {
		return true // aborted creator marked it invisible
	}
	e := v.End()
	return field.IsTS(e) && field.TS(e) <= watermark && field.TS(e) != field.Infinity
}
