package storage

import (
	"sync"
	"testing"
)

// always / never are quiescence predicates for single-threaded tests.
func always(uint64) bool { return true }

// stampOf adapts a fixed value to the stamp-drawing callback.
func stampOf(v uint64) func() uint64 { return func() uint64 { return v } }
func never(uint64) bool              { return false }

func listKeys[V any](s *SkipList[V]) []uint64 {
	var keys []uint64
	for n := s.Seek(0); n != nil; n = n.Next() {
		keys = append(keys, n.Key())
	}
	return keys
}

func TestSkipListMarkSweepFree(t *testing.T) {
	var s SkipList[int]
	for k := uint64(0); k < 10; k++ {
		s.GetOrCreate(k)
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	// Mark the even keys deleted (their "values" are conceptually empty).
	for k := uint64(0); k < 10; k += 2 {
		if !s.MarkDeleted(s.Get(k)) {
			t.Fatalf("MarkDeleted(%d) failed", k)
		}
	}
	if s.MarkDeleted(s.Get(1)); s.MarkDeleted(s.Get(1)) {
		t.Fatal("double MarkDeleted succeeded")
	}
	// Re-arm key 1: revive it (counts as live again).
	if !s.Revive(s.Get(1)) {
		t.Fatal("Revive of a marked node failed")
	}
	if s.Len() != 5 {
		t.Fatalf("Len after marks = %d, want 5 (odd keys)", s.Len())
	}
	if got := s.MarkedLen(); got != 6 {
		t.Fatalf("MarkedLen = %d, want 6 (5 even + stale key-1 entry)", got)
	}

	// Sweep: evens unlink; the revived key-1 entry is skipped.
	if swept := s.SweepMarked(stampOf(7), 0); swept != 5 {
		t.Fatalf("swept %d nodes, want 5", swept)
	}
	keys := listKeys(&s)
	want := []uint64{1, 3, 5, 7, 9}
	if len(keys) != len(want) {
		t.Fatalf("keys after sweep = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys after sweep = %v, want %v", keys, want)
		}
	}
	if s.Get(4) != nil {
		t.Fatal("Get found a swept node")
	}
	if s.DeadLen() != 5 {
		t.Fatalf("DeadLen = %d, want 5", s.DeadLen())
	}

	// Free gated on quiescence.
	if n := s.FreeDead(never, nil, 0); n != 0 {
		t.Fatalf("FreeDead(never) freed %d", n)
	}
	resets := 0
	if n := s.FreeDead(always, func(v *int) { *v = 0; resets++ }, 0); n != 5 {
		t.Fatalf("FreeDead(always) freed %d, want 5", n)
	}
	if resets != 5 || s.PoolLen() != 5 || s.DeadLen() != 0 {
		t.Fatalf("resets=%d pool=%d dead=%d, want 5/5/0", resets, s.PoolLen(), s.DeadLen())
	}

	// New keys reuse pooled nodes.
	createdBefore := s.Created()
	for k := uint64(100); k < 105; k++ {
		n := s.GetOrCreate(k)
		if n.Key() != k {
			t.Fatalf("reused node has key %d, want %d", n.Key(), k)
		}
	}
	if s.Created() != createdBefore {
		t.Fatalf("allocated %d new nodes with a full pool", s.Created()-createdBefore)
	}
	if s.Reused() != 5 || s.PoolLen() != 0 {
		t.Fatalf("Reused=%d PoolLen=%d, want 5/0", s.Reused(), s.PoolLen())
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
}

func TestSkipListReviveAfterSweepFails(t *testing.T) {
	var s SkipList[int]
	n := s.GetOrCreate(7)
	s.MarkDeleted(n)
	s.SweepMarked(stampOf(1), 0)
	if s.Revive(n) {
		t.Fatal("Revive succeeded on a dead node")
	}
	// A fresh GetOrCreate must produce a different, live node.
	n2 := s.GetOrCreate(7)
	if n2 == n {
		t.Fatal("GetOrCreate returned the dead node")
	}
	if n2.Key() != 7 || s.Len() != 1 {
		t.Fatalf("fresh node key=%d Len=%d", n2.Key(), s.Len())
	}
}

// TestSkipListCursorSurvivesSweep checks the parked-reader contract: a node
// that is swept while a reader holds it keeps its outgoing pointers, so the
// walk continues into (what were) its successors.
func TestSkipListCursorSurvivesSweep(t *testing.T) {
	var s SkipList[int]
	for k := uint64(0); k < 10; k++ {
		s.GetOrCreate(k)
	}
	cur := s.Get(4) // reader parks here
	s.MarkDeleted(s.Get(4))
	s.MarkDeleted(s.Get(5))
	s.SweepMarked(stampOf(1), 0)
	// The parked reader continues: 4 -> 5 (dead, pointers intact) -> 6 ...
	var walked []uint64
	for n := cur.Next(); n != nil; n = n.Next() {
		walked = append(walked, n.Key())
	}
	want := []uint64{5, 6, 7, 8, 9}
	if len(walked) != len(want) {
		t.Fatalf("walk from swept node = %v, want %v", walked, want)
	}
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("walk from swept node = %v, want %v", walked, want)
		}
	}
}

// TestSkipListChurnBounded cycles a shifting key domain through
// insert/mark/sweep/free and asserts the physical node population stays
// O(live window), not O(keys ever inserted).
func TestSkipListChurnBounded(t *testing.T) {
	var s SkipList[int]
	const (
		window = 64
		total  = 20_000
	)
	for i := 0; i < total; i++ {
		k := uint64(i)
		s.GetOrCreate(k)
		if i >= window {
			old := uint64(i - window)
			if n := s.Get(old); n != nil {
				s.MarkDeleted(n)
			}
		}
		if i%128 == 0 {
			s.SweepMarked(stampOf(uint64(i)), 0)
			s.FreeDead(always, func(v *int) { *v = 0 }, 0)
		}
	}
	s.SweepMarked(stampOf(total), 0)
	s.FreeDead(always, nil, 0)
	if s.Len() != window {
		t.Fatalf("Len = %d, want %d", s.Len(), window)
	}
	phys := len(listKeys(&s))
	if phys != window {
		t.Fatalf("%d nodes physically linked, want %d", phys, window)
	}
	// Node reuse must make heap allocation O(window), not O(total).
	if c := s.Created(); c > 4*window {
		t.Fatalf("allocated %d nodes for a %d-key window over %d inserts", c, window, total)
	}
	if s.Reused() == 0 {
		t.Fatal("pool was never reused")
	}
	if d, p := s.DeadLen(), s.PoolLen(); d+p > 4*window {
		t.Fatalf("dead=%d pooled=%d nodes retained, want O(window)", d, p)
	}
}

// TestSkipListConcurrentReclaim hammers creators, lock-free readers, and a
// reclaimer whose quiescence predicate is wired to the readers' actual
// lifetimes via a reader count (a stand-in for the engines' watermark/epoch
// mechanisms); -race checks the publication and reset protocols.
func TestSkipListConcurrentReclaim(t *testing.T) {
	var s SkipList[uint64]
	var readers sync.WaitGroup
	var mu sync.Mutex // serializes mark/sweep/free (the engines' chain latches)
	const keys = 256

	stop := make(chan struct{})
	// Reclaimer: marks a sliding band of keys, sweeps, frees only while no
	// reader is running (crude but correct quiescence).
	var reclaim sync.WaitGroup
	reclaim.Add(1)
	go func() {
		defer reclaim.Done()
		stamp := uint64(0)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			k := uint64(i % keys)
			if n := s.Get(k); n != nil {
				s.MarkDeleted(n)
			}
			stamp++
			s.SweepMarked(func() uint64 { stamp++; return stamp }, 8)
			mu.Unlock()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed*0x9E3779B97F4A7C15 + 1
			for i := 0; i < 3000; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				k := x % keys
				readers.Add(1)
				// Creator path: GetOrCreate + Revive under the "latch".
				mu.Lock()
				for {
					n := s.GetOrCreate(k)
					if s.Revive(n) {
						if n.Key() != k {
							t.Errorf("node key %d, want %d", n.Key(), k)
						}
						break
					}
				}
				mu.Unlock()
				// Reader path: short ordered walk, keys must ascend.
				prev := int64(-1)
				for n := s.Seek(x % keys); n != nil && prev < int64(n.Key()); n = n.Next() {
					prev = int64(n.Key())
				}
				readers.Done()
			}
		}(uint64(w))
	}
	wg.Wait()
	close(stop)
	reclaim.Wait()
	// All readers done: everything dead is quiescent now.
	s.FreeDead(always, func(v *uint64) { *v = 0 }, 0)
	// Structure must still be sorted and duplicate-free.
	seen := make(map[uint64]bool)
	prev := int64(-1)
	for n := s.Seek(0); n != nil; n = n.Next() {
		if int64(n.Key()) <= prev {
			t.Fatalf("out of order: %d after %d", n.Key(), prev)
		}
		if seen[n.Key()] {
			t.Fatalf("duplicate node %d", n.Key())
		}
		seen[n.Key()] = true
		prev = int64(n.Key())
	}
}
