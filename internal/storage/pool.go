package storage

import (
	"sync"
	"sync/atomic"
)

// VersionPool recycles Version objects so steady-state update traffic
// allocates no version headers and (for payloads up to InlinePayload bytes)
// no payload storage either.
//
// Safety contract: a version may be Put only once it is unreachable — the
// garbage collector has unlinked it from every index AND every transaction
// that was active at unlink time has terminated. The collector enforces this
// by holding unlinked versions on a deferred free list until the visibility
// watermark passes their unlink timestamp; see gc.Collector.
type VersionPool struct {
	pool   sync.Pool
	reuses atomic.Uint64
}

// Get returns a version initialized like NewVersion, reusing a recycled
// object when one is available.
func (p *VersionPool) Get(payload []byte, nindexes int, begin, end uint64) *Version {
	return p.GetIn(nil, payload, nindexes, begin, end)
}

// GetIn is Get with a payload arena (see Version.ResetIn): oversized
// payloads are copied into a slab block recycled with the version.
//
//mvlint:noalloc
func (p *VersionPool) GetIn(a *PayloadArena, payload []byte, nindexes int, begin, end uint64) *Version {
	if v, ok := p.pool.Get().(*Version); ok {
		p.reuses.Add(1)
		v.ResetIn(a, payload, nindexes, begin, end)
		return v
	}
	// Pool miss: the allocation lives in its own function so the recycled
	// fast path stays allocation free (mvlint/noalloc).
	v := newVersion()
	v.ResetIn(a, payload, nindexes, begin, end)
	return v
}

// newVersion is the pool-miss slow path. Marked noinline so the compiler
// cannot fold the allocation back into GetIn's fast path (and so the
// mvlint/noalloc escape attribution stays put).
//
//go:noinline
func newVersion() *Version {
	return &Version{}
}

// Put hands a quiesced version back for reuse. See the type comment for the
// safety contract.
//
//mvlint:noalloc
func (p *VersionPool) Put(v *Version) {
	if v == nil {
		return
	}
	// Drop the payload reference now: for large (non-inline) payloads this
	// releases the caller's buffer even while the version sits in the pool,
	// and arena blocks go back to their slab for the next oversized row.
	if v.arena != nil {
		v.arena.Put(v.arenaBuf)
		v.arena, v.arenaBuf = nil, nil
	}
	v.Payload = nil
	p.pool.Put(v)
}

// Reuses reports how many Gets were served from recycled versions.
func (p *VersionPool) Reuses() uint64 { return p.reuses.Load() }
