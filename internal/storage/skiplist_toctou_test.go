package storage

import (
	"sync/atomic"
	"testing"
)

// Regression tests for the lookup TOCTOU found by the multi-table soak
// harness: Get and Seek used to re-load the predecessor's level-0 pointer
// after the descent, and a concurrent insert of a key between the
// predecessor and the target rewrote that pointer between the two loads —
// turning a permanently linked key into a spurious miss (Get) or handing
// back a node below the requested bound (Seek). Both must act on the
// successor observed during the walk itself.

// churnNeighbor creates and reclaims key k in a tight loop, rewriting the
// level-0 pointer of k's predecessor on every round. The nodes are swept but
// never freed, so readers need no epoch protection here.
func churnNeighbor(s *SkipList[int], k uint64, rounds int, clock *atomic.Uint64) {
	stamp := func() uint64 { return clock.Add(1) }
	for i := 0; i < rounds; i++ {
		n := s.GetOrCreate(k)
		s.MarkDeleted(n)
		s.SweepMarked(stamp, 0)
	}
}

func TestSkipListGetSurvivesNeighborInsert(t *testing.T) {
	var s SkipList[int]
	const target = 100
	for k := uint64(10); k <= 200; k += 10 {
		s.GetOrCreate(k)
	}

	rounds := 200000
	if testing.Short() {
		rounds = 20000
	}
	var clock atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		churnNeighbor(&s, target-1, rounds, &clock)
	}()

	misses := 0
	for {
		select {
		case <-done:
			if misses > 0 {
				t.Fatalf("Get(%d) returned nil %d times; the key was linked throughout", target, misses)
			}
			return
		default:
		}
		if s.Get(target) == nil {
			misses++
		}
	}
}

func TestSkipListSeekHonorsLowerBound(t *testing.T) {
	var s SkipList[int]
	const lo = 100
	for k := uint64(10); k <= 200; k += 10 {
		s.GetOrCreate(k)
	}

	rounds := 200000
	if testing.Short() {
		rounds = 20000
	}
	var clock atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		churnNeighbor(&s, lo-1, rounds, &clock)
	}()

	below := 0
	for {
		select {
		case <-done:
			if below > 0 {
				t.Fatalf("Seek(%d) returned a key below the bound %d times", lo, below)
			}
			return
		default:
		}
		if n := s.Seek(lo); n == nil || n.Key() < lo {
			below++
		}
	}
}
