package storage

import (
	"sync"
	"sync/atomic"
)

// RangeLockTable is the ordered-index analogue of the bucket-lock table of
// Section 4.1.2: serializable pessimistic transactions lock the key range
// [lo, hi] they scan, and transactions inserting a new version whose key
// falls inside a locked range take a wait-for dependency on every holder —
// they may insert eagerly, but cannot precommit until the scanners have
// completed. A hash index can cover any key (absent keys still hash to some
// bucket); an ordered index cannot, so phantom protection for ranges — and
// for point scans of absent keys — must be predicate-shaped, keyed by the
// range itself rather than by a physical bucket.
//
// Locks never conflict with each other (any number of transactions can hold
// overlapping ranges); like bucket locks, they only force inserters into
// wait-for dependencies. The table is engine-agnostic: it publishes holder
// transaction IDs and leaves the dependency protocol to the caller.
type RangeLockTable struct {
	mu sync.Mutex
	// active mirrors len(locks) so inserters can skip the lock-table mutex
	// entirely when no range lock is held (the common case), exactly like
	// the per-bucket LockCount fast path.
	active atomic.Int32
	locks  []rangeLock
}

type rangeLock struct {
	lo, hi uint64
	txid   uint64
}

// Acquire records that txid holds a lock on [lo, hi]. Ranges are inclusive
// on both ends.
//
// The active counter is incremented inside the critical section, before the
// lock is appended: an inserter's Active()==0 fast path must never observe
// the lock in the table while the counter still reads zero, or it would skip
// the wait-for dependency on a scanner that has already finished acquiring —
// a phantom window. With the increment first, an inserter that loads a zero
// counter is guaranteed the scanner has not yet returned from Acquire, so
// the scanner's subsequent scan runs after the inserter's (already linked)
// version became reachable and sees it.
func (t *RangeLockTable) Acquire(lo, hi uint64, txid uint64) {
	t.mu.Lock()
	t.active.Add(1)
	t.locks = append(t.locks, rangeLock{lo, hi, txid})
	t.mu.Unlock()
}

// Release removes one [lo, hi] lock held by txid. Releasing a lock that is
// not held is a no-op.
func (t *RangeLockTable) Release(lo, hi uint64, txid uint64) {
	t.mu.Lock()
	for i := range t.locks {
		l := t.locks[i]
		if l.txid == txid && l.lo == lo && l.hi == hi {
			last := len(t.locks) - 1
			t.locks[i] = t.locks[last]
			t.locks = t.locks[:last]
			t.active.Add(-1)
			t.mu.Unlock()
			return
		}
	}
	t.mu.Unlock()
}

// Active returns the number of range locks currently held; inserters use it
// as a cheap "is anything locked at all?" check before taking the mutex.
func (t *RangeLockTable) Active() int { return int(t.active.Load()) }

// AppendHolders appends the IDs of transactions holding a range containing
// key to dst and returns the extended slice. A transaction holding several
// covering ranges appears once per range; callers dedupe by transaction the
// same way they do for bucket-lock holder lists.
func (t *RangeLockTable) AppendHolders(dst []uint64, key uint64) []uint64 {
	t.mu.Lock()
	for i := range t.locks {
		l := t.locks[i]
		if l.lo <= key && key <= l.hi {
			dst = append(dst, l.txid)
		}
	}
	t.mu.Unlock()
	return dst
}
