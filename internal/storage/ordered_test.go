package storage

import (
	"math/rand"
	"sync"
	"testing"
)

func newOrderedTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable(TableSpec{
		Name:    "t",
		Indexes: []IndexSpec{{Name: "pk", Key: keyOf, Ordered: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestSkipListOrdering(t *testing.T) {
	var s SkipList[int]
	keys := rand.New(rand.NewSource(1)).Perm(1000)
	for _, k := range keys {
		s.GetOrCreate(uint64(k)).V = k
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
	// Full in-order walk.
	prev := -1
	count := 0
	for n := s.Seek(0); n != nil; n = n.Next() {
		if int(n.Key()) <= prev {
			t.Fatalf("keys out of order: %d after %d", n.Key(), prev)
		}
		if n.V != int(n.Key()) {
			t.Fatalf("node %d has value %d", n.Key(), n.V)
		}
		prev = int(n.Key())
		count++
	}
	if count != 1000 {
		t.Fatalf("walked %d nodes, want 1000", count)
	}
	// Point hits and misses.
	if n := s.Get(500); n == nil || n.Key() != 500 {
		t.Fatal("Get(500) failed")
	}
	if n := s.Get(5000); n != nil {
		t.Fatal("Get(5000) found a ghost")
	}
	// Seek lands on the first key >= lo.
	if n := s.Seek(999); n == nil || n.Key() != 999 {
		t.Fatal("Seek(999) failed")
	}
	if n := s.Seek(1000); n != nil {
		t.Fatal("Seek past the end returned a node")
	}
	// Idempotent creation.
	if s.GetOrCreate(500) != s.Get(500) {
		t.Fatal("GetOrCreate returned a duplicate node")
	}
	if s.Len() != 1000 {
		t.Fatalf("Len after re-create = %d", s.Len())
	}
}

// TestSkipListConcurrent hammers concurrent creators and lock-free readers;
// -race verifies the publication protocol.
func TestSkipListConcurrent(t *testing.T) {
	var s SkipList[uint64]
	const (
		workers = 8
		perW    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				k := rng.Uint64() % 1000
				n := s.GetOrCreate(k)
				if n.Key() != k {
					t.Errorf("GetOrCreate(%d) returned node %d", k, n.Key())
					return
				}
				// Reader: short ordered walk from a random point.
				prev := int64(-1)
				for n := s.Seek(rng.Uint64() % 1000); n != nil && prev < int64(n.Key()); n = n.Next() {
					prev = int64(n.Key())
				}
			}
		}(w)
	}
	wg.Wait()
	// Final walk must be sorted and duplicate-free.
	seen := make(map[uint64]bool)
	prev := int64(-1)
	for n := s.Seek(0); n != nil; n = n.Next() {
		if int64(n.Key()) <= prev {
			t.Fatalf("out of order: %d after %d", n.Key(), prev)
		}
		if seen[n.Key()] {
			t.Fatalf("duplicate node %d", n.Key())
		}
		seen[n.Key()] = true
		prev = int64(n.Key())
	}
	if len(seen) != s.Len() {
		t.Fatalf("walk found %d nodes, Len says %d", len(seen), s.Len())
	}
}

func TestOrderedIndexLinkScan(t *testing.T) {
	tbl := newOrderedTable(t)
	ix := tbl.Index(0)
	if !ix.Ordered() {
		t.Fatal("index not ordered")
	}
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		tbl.Insert(NewVersion(pay(k), 1, 10, ^uint64(0)))
	}
	// Point lookups.
	if b := ix.Lookup(3); b == nil || b.Head() == nil || b.Head().Key(0) != 3 {
		t.Fatal("Lookup(3) failed")
	}
	if b := ix.Lookup(4); b != nil {
		t.Fatal("Lookup(4) returned a bucket for an absent key")
	}
	// Range cursor in order.
	var got []uint64
	cur, err := ix.ScanRange(2, 8)
	if err != nil {
		t.Fatalf("ScanRange: %v", err)
	}
	for {
		b, key, ok := cur.Next()
		if !ok {
			break
		}
		if b.Head() == nil {
			t.Fatalf("empty bucket for key %d", key)
		}
		got = append(got, key)
	}
	want := []uint64{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("ScanRange keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanRange keys = %v, want %v", got, want)
		}
	}
	// Inverted and empty ranges.
	if _, _, ok := func() (*Bucket, uint64, bool) {
		c, err := ix.ScanRange(8, 2)
		if err != nil {
			t.Fatalf("inverted ScanRange: %v", err)
		}
		return c.Next()
	}(); ok {
		t.Fatal("inverted range yielded a bucket")
	}
}

// TestHashIndexScanRangeUnordered: the uniform range-gating contract at
// the storage layer — a hash index's ScanRange surfaces ErrUnordered
// rather than silently returning an exhausted cursor, so no caller can
// mistake "this index cannot answer range queries" for "empty range".
// (The engine layers have their own cross-engine regression:
// core.TestCoreScanRangeUnordered.)
func TestHashIndexScanRangeUnordered(t *testing.T) {
	tbl := newTable(t, 64)
	tbl.Insert(NewVersion(pay(1), 1, 10, ^uint64(0)))
	cur, err := tbl.Index(0).ScanRange(0, 10)
	if err != ErrUnordered {
		t.Fatalf("hash ScanRange err = %v, want ErrUnordered", err)
	}
	if _, _, ok := cur.Next(); ok {
		t.Fatal("error cursor yielded a bucket")
	}
}

func TestOrderedIndexUnlink(t *testing.T) {
	tbl := newOrderedTable(t)
	versions := make([]*Version, 0, 10)
	for k := uint64(0); k < 10; k++ {
		v := NewVersion(pay(k%2), 1, 10, ^uint64(0)) // two keys, five versions each
		tbl.Insert(v)
		versions = append(versions, v)
	}
	for _, v := range versions[:5] {
		if !tbl.Unlink(v) {
			t.Fatal("unlink failed")
		}
	}
	// Unlinked versions are gone from the chains; nodes survive.
	n := 0
	cur, err := tbl.Index(0).ScanRange(0, 10)
	if err != nil {
		t.Fatalf("ScanRange: %v", err)
	}
	for {
		b, _, ok := cur.Next()
		if !ok {
			break
		}
		for v := b.Head(); v != nil; v = v.Next(0) {
			n++
		}
	}
	if n != 5 {
		t.Fatalf("%d versions linked after unlink, want 5", n)
	}
	if tbl.Unlink(versions[0]) {
		t.Fatal("double unlink succeeded")
	}
}

func TestRangeLockTable(t *testing.T) {
	var rl RangeLockTable
	if rl.Active() != 0 {
		t.Fatal("fresh table has active locks")
	}
	rl.Acquire(10, 20, 1)
	rl.Acquire(15, 30, 2)
	rl.Acquire(40, 50, 1)
	if rl.Active() != 3 {
		t.Fatalf("Active = %d, want 3", rl.Active())
	}
	holders := rl.AppendHolders(nil, 18)
	if len(holders) != 2 {
		t.Fatalf("holders(18) = %v, want two", holders)
	}
	if h := rl.AppendHolders(nil, 35); len(h) != 0 {
		t.Fatalf("holders(35) = %v, want none", h)
	}
	if h := rl.AppendHolders(nil, 40); len(h) != 1 || h[0] != 1 {
		t.Fatalf("holders(40) = %v, want [1]", h)
	}
	rl.Release(15, 30, 2)
	if h := rl.AppendHolders(nil, 18); len(h) != 1 || h[0] != 1 {
		t.Fatalf("holders(18) after release = %v, want [1]", h)
	}
	rl.Release(99, 99, 7) // not held: no-op
	if rl.Active() != 2 {
		t.Fatalf("Active = %d, want 2", rl.Active())
	}
}
