package storage

import (
	"sync"
	"sync/atomic"
)

// skipMaxLevel bounds skip-list tower height; 2^24 distinct keys stay within
// the expected O(log n) search cost.
const skipMaxLevel = 24

// Node lifecycle states. A node is born live, is marked deleted when the last
// entry of its value drains (the chain latch holder verifies emptiness), is
// swept to dead when the reclaimer unlinks it from every tower level, and is
// finally reset and pooled once the owner's quiescence mechanism proves no
// reader can still hold a pointer to it.
const (
	nodeLive uint32 = iota
	nodeDeleted
	nodeDead
)

// SkipNode is one key of a SkipList. The node embeds its value V by value so
// a key's payload (a Bucket for the multiversion ordered index, a record
// chain head for the single-version one) needs no extra allocation or
// indirection.
//
// Nodes are reclaimed in stages (see the state constants) so the index's
// footprint tracks live keys rather than every key ever inserted. A dead
// node keeps its tower pointers intact until it is freed: a reader parked on
// it can always continue the traversal into the live list. The key and value
// are rewritten only after the list's owner proves quiescence, so lock-free
// readers never observe a node changing identity under them.
type SkipNode[V any] struct {
	key uint64
	// V is the caller's per-key value, addressable via &n.V.
	V     V
	state atomic.Uint32
	next  []atomic.Pointer[SkipNode[V]]
}

// Key returns the node's index key.
func (n *SkipNode[V]) Key() uint64 { return n.key }

// Next returns the node's level-0 successor (the next larger key), or nil.
func (n *SkipNode[V]) Next() *SkipNode[V] { return n.next[0].Load() }

// deadSkipNode is an unlinked node awaiting quiescence, stamped with the
// owner-supplied epoch at sweep time.
type deadSkipNode[V any] struct {
	n     *SkipNode[V]
	stamp uint64
}

// SkipList is a concurrent skip list keyed by uint64. The zero value is an
// empty list ready for use.
//
// Readers (Get, Seek, Next traversal) are lock-free: they follow atomic
// pointers only and never block, matching the latch-free reader discipline
// of the hash index's bucket chains (Section 2.1). Node insertion is
// serialized by a mutex — creation happens once per live key, so the lock is
// off the steady-state update path, which only appends entries to an
// existing node's value.
//
// Node reclamation (MarkDeleted / SweepMarked / FreeDead) lets the list
// shrink when keys die: callers mark a node whose value drained, a periodic
// sweep unlinks marked nodes from the towers under the insertion latch, and
// quiesced dead nodes are reset and pooled for reuse by GetOrCreate. The
// list is agnostic about what "quiesced" means — the multiversion engine
// proves it with the GC watermark (no active transaction began before the
// unlink), the single-version engine with an explicit reader epoch
// (gc.Epoch). Both guarantee that no reader can still hold a pointer to a
// node by the time it is reset.
type SkipList[V any] struct {
	// headNext is the sentinel tower: headNext[lvl] is the first node of
	// level lvl.
	headNext [skipMaxLevel]atomic.Pointer[SkipNode[V]]
	// mu serializes structural changes: node insertion, tower unlink, and
	// the reuse pool.
	mu   sync.Mutex
	rng  uint64 // xorshift64 state, guarded by mu
	n    atomic.Int64
	pool []*SkipNode[V] // quiesced nodes ready for reuse; guarded by mu

	// reclaimMu guards the two reclamation queues. It nests inside mu (and
	// inside the owner's chain latches) and is never held across node
	// traversal.
	reclaimMu sync.Mutex
	marked    []*SkipNode[V]    // logically deleted, still linked
	dead      []deadSkipNode[V] // unlinked, awaiting quiescence (stamps ascend)

	created atomic.Uint64
	reused  atomic.Uint64
	freed   atomic.Uint64
}

// Len returns the number of live keys in the list (logically deleted nodes
// are not counted even while still physically linked).
func (s *SkipList[V]) Len() int { return int(s.n.Load()) }

// nextAt returns the level-lvl successor pointer of n, where nil n means the
// sentinel head.
func (s *SkipList[V]) nextAt(n *SkipNode[V], lvl int) *atomic.Pointer[SkipNode[V]] {
	if n == nil {
		return &s.headNext[lvl]
	}
	return &n.next[lvl]
}

// findPred descends from the top level, returning the rightmost node at
// level 0 whose key is < key (nil when the head is the predecessor). When
// preds is non-nil it records the predecessor at every level for linking.
//
//mvlint:noalloc
func (s *SkipList[V]) findPred(key uint64, preds *[skipMaxLevel]*SkipNode[V]) *SkipNode[V] {
	var cur *SkipNode[V]
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := s.nextAt(cur, lvl).Load()
			if nxt == nil || nxt.key >= key {
				break
			}
			cur = nxt
		}
		if preds != nil {
			preds[lvl] = cur
		}
	}
	return cur
}

// Get returns the node with exactly key, or nil. Lock-free. The node may be
// logically deleted (empty value); callers that intend to repopulate it must
// go through Revive.
//
// The hit test runs on the successor pointers loaded during the descent —
// never on a re-load of the predecessor's pointer afterwards. A re-load races
// concurrent inserts: between the walk's load (which saw the target and
// broke) and the re-load, an insert of a key in (pred.key, key) rewrites
// pred.next to the new intermediate node, and the equality check would turn a
// linked, reachable target into a spurious miss. Under two-phase locking
// that is a correctness bug, not a mere stale read: a reader holding a lock
// on key sees it vanish while inserts of *neighboring* keys proceed.
//
//mvlint:noalloc
func (s *SkipList[V]) Get(key uint64) *SkipNode[V] {
	var cur *SkipNode[V]
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := s.nextAt(cur, lvl).Load()
			if nxt == nil || nxt.key > key {
				break
			}
			if nxt.key == key {
				return nxt
			}
			cur = nxt
		}
	}
	return nil
}

// Seek returns the first node with key >= lo, or nil. Lock-free; the
// starting point of a range scan. Like Get, it returns the breaking
// successor observed by the level-0 walk itself: re-loading the
// predecessor's pointer after the walk races a concurrent insert of a key
// below lo and could hand the caller a node outside the requested range.
//
//mvlint:noalloc
func (s *SkipList[V]) Seek(lo uint64) *SkipNode[V] {
	var cur, first *SkipNode[V]
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := s.nextAt(cur, lvl).Load()
			if nxt == nil || nxt.key >= lo {
				first = nxt // level 0's break value is the answer
				break
			}
			cur = nxt
		}
	}
	return first
}

// GetOrCreate returns the node with key, linking a new (or pooled) one if
// absent. The returned node may be in the logically deleted state if a
// concurrent reclaimer marked it; callers that add entries must Revive it
// under their chain synchronization and retry on failure (the node was
// already unlinked, and the retry will create a fresh one).
func (s *SkipList[V]) GetOrCreate(key uint64) *SkipNode[V] {
	if n := s.Get(key); n != nil {
		return n
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var preds [skipMaxLevel]*SkipNode[V]
	s.findPred(key, &preds)
	if n := s.nextAt(preds[0], 0).Load(); n != nil && n.key == key {
		return n // lost the race to another creator
	}
	var n *SkipNode[V]
	if k := len(s.pool); k > 0 {
		// Reuse a quiesced node, keeping its tower height: heights were
		// drawn from the same geometric distribution, so reuse preserves it.
		n = s.pool[k-1]
		s.pool[k-1] = nil
		s.pool = s.pool[:k-1]
		n.key = key
		n.state.Store(nodeLive)
		s.reused.Add(1)
	} else {
		lvl := s.randomLevel()
		n = &SkipNode[V]{key: key, next: make([]atomic.Pointer[SkipNode[V]], lvl)}
		s.created.Add(1)
	}
	// Point the new node at its successors before publishing it, then link
	// bottom-up: a reader that finds the node at any level can always
	// continue the descent through it.
	lvl := len(n.next)
	for i := 0; i < lvl; i++ {
		n.next[i].Store(s.nextAt(preds[i], i).Load())
	}
	for i := 0; i < lvl; i++ {
		s.nextAt(preds[i], i).Store(n)
	}
	s.n.Add(1)
	return n
}

// MarkDeleted moves a live node to the logically deleted state and queues it
// for the sweeper. The caller must hold the synchronization that serializes
// mutation of n.V (the chain latch for the multiversion index, the exclusive
// key cover for the single-version one) and must have verified under it that
// the value is empty — the state machine guarantees that a deleted node's
// value stays empty until it is revived. Returns false if the node was not
// live (already marked, or already dead).
func (s *SkipList[V]) MarkDeleted(n *SkipNode[V]) bool {
	if !n.state.CompareAndSwap(nodeLive, nodeDeleted) {
		return false
	}
	s.n.Add(-1)
	s.reclaimMu.Lock()
	s.marked = append(s.marked, n)
	s.reclaimMu.Unlock()
	return true
}

// Revive returns a node to the live state so entries can be added to its
// value again. It succeeds if the node is live or logically deleted; it
// fails if the reclaimer already swept the node (dead), in which case the
// caller must retry GetOrCreate — the key's node has left the list and a
// fresh one is needed. The CAS arbitrates the race with SweepMarked: exactly
// one of revival and sweep wins.
func (s *SkipList[V]) Revive(n *SkipNode[V]) bool {
	for {
		switch n.state.Load() {
		case nodeLive:
			return true
		case nodeDeleted:
			if n.state.CompareAndSwap(nodeDeleted, nodeLive) {
				s.n.Add(1)
				return true
			}
		case nodeDead:
			return false
		}
	}
}

// SweepMarked unlinks up to max logically deleted nodes from every tower
// level (under the insertion latch, so structure changes stay serialized)
// and stamps them for deferred freeing. Marked nodes that were revived in
// the meantime are skipped.
//
// stamp is DRAWN AFTER THE UNLINKS — that ordering is load-bearing, exactly
// as for the version free list (gc.Collector stamps after Table.Unlink): a
// reader that can still hold a pointer to a swept node must have loaded that
// pointer before the unlink, hence before the stamp was drawn, hence its own
// begin timestamp / epoch pin is below the stamp and blocks quiescence. A
// stamp drawn before the unlink would let a reader slip in between — born
// after the stamp, traversing while the unlink happens — and be invisible to
// the quiescence test. The draw happens under the insertion latch, so
// concurrent sweeps enqueue in stamp order and the dead queue stays FIFO.
//
// A swept node keeps its outgoing tower pointers: a reader parked on it
// mid-scan continues into nodes that were its successors at unlink time
// (possibly other dead nodes, whose own pointers again lead back into the
// live list). Such a reader may miss keys inserted after the unlink — the
// same "concurrent inserts may or may not be observed" contract a live
// cursor already has.
func (s *SkipList[V]) SweepMarked(stamp func() uint64, max int) int {
	if max <= 0 {
		max = 1 << 30
	}
	s.reclaimMu.Lock()
	k := len(s.marked)
	s.reclaimMu.Unlock()
	if k == 0 {
		return 0
	}
	if k > max {
		k = max
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reclaimMu.Lock()
	if k > len(s.marked) {
		k = len(s.marked)
	}
	batch := make([]*SkipNode[V], k)
	copy(batch, s.marked[:k])
	m := copy(s.marked, s.marked[k:])
	clear(s.marked[m:])
	s.marked = s.marked[:m]
	s.reclaimMu.Unlock()

	swept := batch[:0]
	var preds [skipMaxLevel]*SkipNode[V]
	for _, n := range batch {
		if !n.state.CompareAndSwap(nodeDeleted, nodeDead) {
			continue // revived; it re-queues if its value drains again
		}
		s.findPred(n.key, &preds)
		for lvl := len(n.next) - 1; lvl >= 0; lvl-- {
			p := s.nextAt(preds[lvl], lvl)
			if p.Load() == n {
				p.Store(n.next[lvl].Load())
			}
		}
		swept = append(swept, n)
	}
	if len(swept) == 0 {
		return 0
	}
	st := stamp() // after every unlink above; see the contract in the doc comment
	s.reclaimMu.Lock()
	for _, n := range swept {
		s.dead = append(s.dead, deadSkipNode[V]{n, st})
	}
	s.reclaimMu.Unlock()
	return len(swept)
}

// FreeDead resets and pools up to max dead nodes whose stamp the quiesced
// predicate approves. quiesced is called under the reclamation lock, after
// the sweep that produced the entry (so its loads are ordered after the
// unlink stores): returning true asserts that no reader pinned or begun
// before the stamp remains, hence no pointer to the node survives anywhere.
// reset clears the node's embedded value; tower pointers and the key are
// cleared here so pooled nodes retain no references into the list.
func (s *SkipList[V]) FreeDead(quiesced func(stamp uint64) bool, reset func(*V), max int) int {
	if max <= 0 {
		max = 1 << 30
	}
	s.reclaimMu.Lock()
	k := 0
	for k < len(s.dead) && k < max && quiesced(s.dead[k].stamp) {
		k++
	}
	if k == 0 {
		s.reclaimMu.Unlock()
		return 0
	}
	batch := make([]*SkipNode[V], k)
	for i := 0; i < k; i++ {
		batch[i] = s.dead[i].n
	}
	m := copy(s.dead, s.dead[k:])
	clear(s.dead[m:])
	s.dead = s.dead[:m]
	s.reclaimMu.Unlock()

	for _, n := range batch {
		if reset != nil {
			reset(&n.V)
		}
		for i := range n.next {
			n.next[i].Store(nil)
		}
		n.key = 0
	}
	s.mu.Lock()
	s.pool = append(s.pool, batch...)
	s.mu.Unlock()
	s.freed.Add(uint64(k))
	return k
}

// MarkedLen returns the number of nodes awaiting sweep (diagnostics).
func (s *SkipList[V]) MarkedLen() int {
	s.reclaimMu.Lock()
	defer s.reclaimMu.Unlock()
	return len(s.marked)
}

// DeadLen returns the number of unlinked nodes awaiting quiescence.
func (s *SkipList[V]) DeadLen() int {
	s.reclaimMu.Lock()
	defer s.reclaimMu.Unlock()
	return len(s.dead)
}

// PoolLen returns the number of quiesced nodes ready for reuse.
func (s *SkipList[V]) PoolLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pool)
}

// Created returns the cumulative count of nodes allocated from the heap.
func (s *SkipList[V]) Created() uint64 { return s.created.Load() }

// Reused returns the cumulative count of GetOrCreate calls served from the
// reuse pool.
func (s *SkipList[V]) Reused() uint64 { return s.reused.Load() }

// Freed returns the cumulative count of nodes reset and pooled.
func (s *SkipList[V]) Freed() uint64 { return s.freed.Load() }

// randomLevel draws a tower height with P(level > k) = 2^-k; mu is held.
func (s *SkipList[V]) randomLevel() int {
	if s.rng == 0 {
		s.rng = 0x9E3779B97F4A7C15
	}
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	lvl := 1
	for x&1 == 1 && lvl < skipMaxLevel {
		lvl++
		x >>= 1
	}
	return lvl
}
