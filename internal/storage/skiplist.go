package storage

import (
	"sync"
	"sync/atomic"
)

// skipMaxLevel bounds skip-list tower height; 2^24 distinct keys stay within
// the expected O(log n) search cost.
const skipMaxLevel = 24

// SkipNode is one key of a SkipList. The node embeds its value V by value so
// a key's payload (a Bucket for the multiversion ordered index, a record
// chain head for the single-version one) needs no extra allocation or
// indirection.
//
// Nodes are immortal: once linked they are never removed, even when their
// value empties out (e.g. every version of the key was garbage collected).
// That keeps readers lock-free — a scan holding a node pointer can never
// observe it being freed or recycled — at the cost of retaining one node per
// distinct key ever inserted, which mirrors how the hash index retains its
// bucket array.
type SkipNode[V any] struct {
	key uint64
	// V is the caller's per-key value, addressable via &n.V.
	V    V
	next []atomic.Pointer[SkipNode[V]]
}

// Key returns the node's index key.
func (n *SkipNode[V]) Key() uint64 { return n.key }

// Next returns the node's level-0 successor (the next larger key), or nil.
func (n *SkipNode[V]) Next() *SkipNode[V] { return n.next[0].Load() }

// SkipList is a concurrent, insert-only skip list keyed by uint64. The zero
// value is an empty list ready for use.
//
// Readers (Get, Seek, Next traversal) are lock-free: they follow atomic
// pointers only and never block, matching the latch-free reader discipline
// of the hash index's bucket chains (Section 2.1). Node insertion is
// serialized by a mutex — creation happens once per distinct key, so the
// lock is off the steady-state update path, which only appends versions to
// an existing node's chain.
type SkipList[V any] struct {
	// headNext is the sentinel tower: headNext[lvl] is the first node of
	// level lvl.
	headNext [skipMaxLevel]atomic.Pointer[SkipNode[V]]
	mu       sync.Mutex
	rng      uint64 // xorshift64 state, guarded by mu
	n        atomic.Int64
}

// Len returns the number of distinct keys in the list.
func (s *SkipList[V]) Len() int { return int(s.n.Load()) }

// nextAt returns the level-lvl successor pointer of n, where nil n means the
// sentinel head.
func (s *SkipList[V]) nextAt(n *SkipNode[V], lvl int) *atomic.Pointer[SkipNode[V]] {
	if n == nil {
		return &s.headNext[lvl]
	}
	return &n.next[lvl]
}

// findPred descends from the top level, returning the rightmost node at
// level 0 whose key is < key (nil when the head is the predecessor). When
// preds is non-nil it records the predecessor at every level for linking.
func (s *SkipList[V]) findPred(key uint64, preds *[skipMaxLevel]*SkipNode[V]) *SkipNode[V] {
	var cur *SkipNode[V]
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := s.nextAt(cur, lvl).Load()
			if nxt == nil || nxt.key >= key {
				break
			}
			cur = nxt
		}
		if preds != nil {
			preds[lvl] = cur
		}
	}
	return cur
}

// Get returns the node with exactly key, or nil. Lock-free.
func (s *SkipList[V]) Get(key uint64) *SkipNode[V] {
	pred := s.findPred(key, nil)
	if n := s.nextAt(pred, 0).Load(); n != nil && n.key == key {
		return n
	}
	return nil
}

// Seek returns the first node with key >= lo, or nil. Lock-free; the
// starting point of a range scan.
func (s *SkipList[V]) Seek(lo uint64) *SkipNode[V] {
	pred := s.findPred(lo, nil)
	return s.nextAt(pred, 0).Load()
}

// GetOrCreate returns the node with key, linking a new one if absent.
func (s *SkipList[V]) GetOrCreate(key uint64) *SkipNode[V] {
	if n := s.Get(key); n != nil {
		return n
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var preds [skipMaxLevel]*SkipNode[V]
	s.findPred(key, &preds)
	if n := s.nextAt(preds[0], 0).Load(); n != nil && n.key == key {
		return n // lost the race to another creator
	}
	lvl := s.randomLevel()
	n := &SkipNode[V]{key: key, next: make([]atomic.Pointer[SkipNode[V]], lvl)}
	// Point the new node at its successors before publishing it, then link
	// bottom-up: a reader that finds the node at any level can always
	// continue the descent through it.
	for i := 0; i < lvl; i++ {
		n.next[i].Store(s.nextAt(preds[i], i).Load())
	}
	for i := 0; i < lvl; i++ {
		s.nextAt(preds[i], i).Store(n)
	}
	s.n.Add(1)
	return n
}

// randomLevel draws a tower height with P(level > k) = 2^-k; mu is held.
func (s *SkipList[V]) randomLevel() int {
	if s.rng == 0 {
		s.rng = 0x9E3779B97F4A7C15
	}
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	lvl := 1
	for x&1 == 1 && lvl < skipMaxLevel {
		lvl++
		x >>= 1
	}
	return lvl
}
