package storage

import (
	"sync"
	"sync/atomic"
)

const (
	// arenaMinClass is the smallest slab block: the first power of two above
	// InlinePayload (smaller payloads live inline in the version).
	arenaMinClass = 64
	// arenaMaxClass is the largest slab block; bigger payloads fall back to
	// the regular allocator and are not recycled.
	arenaMaxClass = 8 << 10
	// arenaChunk is the carve source: classes refill by slicing blocks out
	// of a chunk this large, so steady state does one big allocation per
	// ~chunk of payload bytes instead of one per row.
	arenaChunk = 64 << 10

	arenaClasses = 8 // 64, 128, 256, 512, 1024, 2048, 4096, 8192
)

// PayloadArena is a per-table slab allocator for row payloads larger than
// InlinePayload. Blocks are size-class segregated, carved from large chunks,
// and recycled together with their version: VersionPool.Put returns a
// version's arena block to the class free list, so steady-state update
// traffic on large rows allocates no payload storage.
//
// Safety follows the version recycle contract: a block is only returned
// once its version is quiesced (unlinked from every index and past the GC
// watermark), so no transaction that could still read the payload remains.
type PayloadArena struct {
	classes [arenaClasses]arenaClass
	reuses  atomic.Uint64
}

type arenaClass struct {
	mu sync.Mutex
	// free holds recycled blocks, each with cap == the class size.
	free [][]byte
	// chunk is the current carve source; refilled when exhausted.
	chunk []byte
}

// classFor returns the class index for a payload of n bytes, or -1 when the
// arena does not serve that size (inline-sized or above arenaMaxClass).
func classFor(n int) int {
	if n <= InlinePayload || n > arenaMaxClass {
		return -1
	}
	c, size := 0, arenaMinClass
	for size < n {
		size <<= 1
		c++
	}
	return c
}

// Get returns a block with len n from the appropriate size class, or nil
// when the arena does not serve n bytes (the caller then falls back to the
// regular allocator). The block's capacity is the class size, so Put can
// recover the class from cap alone.
func (a *PayloadArena) Get(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		return nil
	}
	size := arenaMinClass << ci
	c := &a.classes[ci]
	c.mu.Lock()
	if last := len(c.free) - 1; last >= 0 {
		b := c.free[last]
		c.free[last] = nil
		c.free = c.free[:last]
		c.mu.Unlock()
		a.reuses.Add(1)
		return b[:n]
	}
	if len(c.chunk) < size {
		n := arenaChunk
		if n < size {
			n = size
		}
		c.chunk = make([]byte, n)
	}
	b := c.chunk[:size:size]
	c.chunk = c.chunk[size:]
	c.mu.Unlock()
	return b[:n]
}

// Put recycles a block previously returned by Get. Blocks with a capacity
// that is not an exact class size are ignored (defensive: they cannot have
// come from the arena).
func (a *PayloadArena) Put(b []byte) {
	size := cap(b)
	if size < arenaMinClass || size > arenaMaxClass || size&(size-1) != 0 {
		return
	}
	ci := 0
	for s := arenaMinClass; s < size; s <<= 1 {
		ci++
	}
	c := &a.classes[ci]
	c.mu.Lock()
	c.free = append(c.free, b[:0:size])
	c.mu.Unlock()
}

// Reuses reports how many Gets were served from recycled blocks.
func (a *PayloadArena) Reuses() uint64 { return a.reuses.Load() }
