package storage

import (
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

const (
	// arenaMinClass is the smallest slab block: the first power of two above
	// InlinePayload (smaller payloads live inline in the version).
	arenaMinClass = 64
	// arenaMaxClass is the largest slab block; bigger payloads fall back to
	// the regular allocator and are not recycled.
	arenaMaxClass = 8 << 10
	// arenaChunk is the carve source: classes refill by slicing blocks out
	// of a chunk this large, so steady state does one big allocation per
	// ~chunk of payload bytes instead of one per row.
	arenaChunk = 64 << 10

	arenaClasses = 8 // 64, 128, 256, 512, 1024, 2048, 4096, 8192
)

// PayloadArena is a per-table slab allocator for row payloads larger than
// InlinePayload. Blocks are size-class segregated, carved from large chunks,
// and recycled together with their version: VersionPool.Put returns a
// version's arena block to its chunk's free list, so steady-state update
// traffic on large rows allocates no payload storage.
//
// Blocks are accounted to the chunk they were carved from. When every block
// of a fully-carved chunk has been returned, the chunk is released back to
// the allocator (one spare is kept per class to absorb oscillation), so a
// table whose large-row population shrinks does not pin its peak memory
// forever. The hot paths stay cheap regardless of chunk count: Get pops
// from a stack of chunks known to hold free blocks (O(1)), and Put finds
// the owning chunk by binary search over the address-sorted chunk list.
//
// Safety follows the version recycle contract: a block is only returned
// once its version is quiesced (unlinked from every index and past the GC
// watermark), so no transaction that could still read the payload remains.
type PayloadArena struct {
	classes  [arenaClasses]arenaClass
	reuses   atomic.Uint64
	released atomic.Uint64
}

// arenaChunkDesc tracks one chunk and the recycled blocks carved from it.
type arenaChunkDesc struct {
	buf        []byte
	start, end uintptr
	free       [][]byte // recycled blocks belonging to this chunk
	carved     int      // blocks handed out of this chunk so far
	capacity   int      // total blocks the chunk can yield
	off        int      // carve offset into buf
	// dead marks a released chunk; a stale avail entry skips it.
	dead bool
	// inAvail records that the chunk is on the class's avail stack, so a
	// chunk is pushed at most once per free-list refill.
	inAvail bool
}

type arenaClass struct {
	mu sync.Mutex
	// chunks is sorted by start address for O(log n) owner lookup in Put.
	chunks []*arenaChunkDesc
	// avail is a stack of chunks that (modulo staleness) hold free blocks.
	avail []*arenaChunkDesc
	// carve is the single partially-carved chunk, if any.
	carve *arenaChunkDesc
}

// classFor returns the class index for a payload of n bytes, or -1 when the
// arena does not serve that size (inline-sized or above arenaMaxClass).
func classFor(n int) int {
	if n <= InlinePayload || n > arenaMaxClass {
		return -1
	}
	c, size := 0, arenaMinClass
	for size < n {
		size <<= 1
		c++
	}
	return c
}

// Get returns a block with len n from the appropriate size class, or nil
// when the arena does not serve n bytes (the caller then falls back to the
// regular allocator). The block's capacity is the class size, so Put can
// recover the class from cap alone.
//
//mvlint:noalloc
func (a *PayloadArena) Get(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		return nil
	}
	size := arenaMinClass << ci
	c := &a.classes[ci]
	c.mu.Lock()
	// Serve from a recycled block first: pop the top available chunk.
	for last := len(c.avail) - 1; last >= 0; last = len(c.avail) - 1 {
		d := c.avail[last]
		if d.dead || len(d.free) == 0 {
			c.avail[last] = nil
			c.avail = c.avail[:last]
			d.inAvail = false
			continue
		}
		fl := len(d.free) - 1
		b := d.free[fl]
		d.free[fl] = nil
		d.free = d.free[:fl]
		if fl == 0 {
			c.avail[last] = nil
			c.avail = c.avail[:last]
			d.inAvail = false
		}
		c.mu.Unlock()
		a.reuses.Add(1)
		return b[:n]
	}
	// Carve from the current chunk, growing when exhausted. The grow path
	// lives in its own function so the steady-state Get stays allocation
	// free (mvlint/noalloc): a chunk is carved into capacity blocks before
	// the next make, so the amortized cost is size/arenaChunk allocations
	// per Get.
	d := c.carve
	if d == nil || len(d.buf)-d.off < size {
		d = c.growLocked(size)
	}
	b := d.buf[d.off : d.off+size : d.off+size]
	d.off += size
	d.carved++
	c.mu.Unlock()
	return b[:n]
}

// growLocked allocates a fresh chunk for size-class blocks, registers it in
// the address-sorted chunk index, and makes it the carve target. Caller
// holds c.mu.
func (c *arenaClass) growLocked(size int) *arenaChunkDesc {
	cn := arenaChunk
	if cn < size {
		cn = size
	}
	buf := make([]byte, cn)
	start := uintptr(unsafe.Pointer(unsafe.SliceData(buf)))
	d := &arenaChunkDesc{
		buf:      buf,
		start:    start,
		end:      start + uintptr(len(buf)),
		capacity: cn / size,
	}
	i := sort.Search(len(c.chunks), func(i int) bool { return c.chunks[i].start > start })
	c.chunks = append(c.chunks, nil)
	copy(c.chunks[i+1:], c.chunks[i:])
	c.chunks[i] = d
	c.carve = d
	return d
}

// Put recycles a block previously returned by Get. Blocks with a capacity
// that is not an exact class size, or that belong to no live chunk
// (defensive: they cannot have come from the arena), are ignored.
//
//mvlint:noalloc
func (a *PayloadArena) Put(b []byte) {
	size := cap(b)
	if size < arenaMinClass || size > arenaMaxClass || size&(size-1) != 0 {
		return
	}
	ci := 0
	for s := arenaMinClass; s < size; s <<= 1 {
		ci++
	}
	p := uintptr(unsafe.Pointer(unsafe.SliceData(b)))
	c := &a.classes[ci]
	c.mu.Lock()
	// Binary search for the owning chunk (first chunk with start > p, minus
	// one).
	i := sort.Search(len(c.chunks), func(i int) bool { return c.chunks[i].start > p }) - 1
	if i < 0 {
		c.mu.Unlock()
		return
	}
	d := c.chunks[i]
	if p >= d.end {
		c.mu.Unlock()
		return
	}
	d.free = append(d.free, b[:0:size])
	// A fully-carved chunk whose every block has come home is idle; release
	// it to the allocator unless it is the class's only one (keep one spare
	// so a drain/refill cycle doesn't thrash make()). A stale avail entry
	// may remain; Get skips it via the dead flag.
	if d.carved == d.capacity && len(d.free) == d.capacity && len(c.chunks) > 1 {
		copy(c.chunks[i:], c.chunks[i+1:])
		c.chunks[len(c.chunks)-1] = nil
		c.chunks = c.chunks[:len(c.chunks)-1]
		d.dead = true
		// Drop the buffer references now: a stale entry for d may linger on
		// the avail stack until the next Get on this class, and the 64 KB
		// must be collectable before then.
		d.buf = nil
		d.free = nil
		if c.carve == d {
			c.carve = nil
		}
		a.released.Add(1)
	} else if !d.inAvail {
		d.inAvail = true
		c.avail = append(c.avail, d)
	}
	c.mu.Unlock()
}

// Reuses reports how many Gets were served from recycled blocks.
func (a *PayloadArena) Reuses() uint64 { return a.reuses.Load() }

// ReleasedChunks reports how many fully-empty chunks were handed back to the
// allocator.
func (a *PayloadArena) ReleasedChunks() uint64 { return a.released.Load() }

// LiveChunks reports the number of chunks currently held across all classes
// (diagnostics and tests).
func (a *PayloadArena) LiveChunks() int {
	n := 0
	for i := range a.classes {
		c := &a.classes[i]
		c.mu.Lock()
		n += len(c.chunks)
		c.mu.Unlock()
	}
	return n
}
