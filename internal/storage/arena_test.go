package storage

import (
	"bytes"
	"testing"
)

func TestArenaClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{1, -1}, {InlinePayload, -1}, // inline-sized: not served
		{InlinePayload + 1, 0}, {64, 0}, {65, 1}, {128, 1},
		{129, 2}, {256, 2}, {4096, 6}, {4097, 7}, {8192, 7},
		{8193, -1}, // beyond the largest class
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestArenaGetPutReuse(t *testing.T) {
	var a PayloadArena
	b1 := a.Get(100)
	if len(b1) != 100 || cap(b1) != 128 {
		t.Fatalf("Get(100): len %d cap %d, want 100/128", len(b1), cap(b1))
	}
	a.Put(b1)
	b2 := a.Get(120)
	if len(b2) != 120 {
		t.Fatalf("Get(120) after Put: len %d", len(b2))
	}
	if &b1[:1][0] != &b2[:1][0] {
		t.Fatal("recycled Get did not reuse the freed block")
	}
	if a.Reuses() != 1 {
		t.Fatalf("Reuses = %d, want 1", a.Reuses())
	}
}

func TestArenaUnservedSizes(t *testing.T) {
	var a PayloadArena
	if b := a.Get(InlinePayload); b != nil {
		t.Fatal("arena served an inline-sized payload")
	}
	if b := a.Get(arenaMaxClass + 1); b != nil {
		t.Fatal("arena served an oversized payload")
	}
	// Put of a foreign block (non-class capacity) must be ignored, not panic.
	a.Put(make([]byte, 100))
	if b := a.Get(100); cap(b) != 128 || len(b) != 100 {
		t.Fatalf("foreign Put corrupted the class: len %d cap %d", len(b), cap(b))
	}
}

func TestVersionArenaPayloadRecycled(t *testing.T) {
	var a PayloadArena
	var p VersionPool
	payload := bytes.Repeat([]byte{0xAB}, 200)
	v := p.GetIn(&a, payload, 1, 1, 2)
	if !bytes.Equal(v.Payload, payload) {
		t.Fatal("arena-backed payload mismatch")
	}
	if &v.Payload[0] == &payload[0] {
		t.Fatal("large payload retained by reference despite arena")
	}
	// Mutating the caller's slice must not affect the version.
	payload[0] = 0xCD
	if v.Payload[0] != 0xAB {
		t.Fatal("version payload aliases the caller's buffer")
	}
	p.Put(v)
	// The block must have returned to the arena: next same-class Get reuses.
	if a.Reuses() != 0 {
		t.Fatalf("Reuses = %d before any Get", a.Reuses())
	}
	b := a.Get(200)
	if a.Reuses() != 1 {
		t.Fatalf("Put on version recycle did not return the block (reuses=%d)", a.Reuses())
	}
	_ = b
}

func TestVersionInlineStillInline(t *testing.T) {
	var a PayloadArena
	var p VersionPool
	small := []byte("hello")
	v := p.GetIn(&a, small, 1, 1, 2)
	if &v.Payload[0] != &v.inline[0] {
		t.Fatal("small payload not inlined when an arena is present")
	}
	p.Put(v)
}

// TestArenaChunkRelease verifies that fully-empty, fully-carved chunks are
// handed back to the allocator (minus one spare per class).
func TestArenaChunkRelease(t *testing.T) {
	var a PayloadArena
	const size = 1024             // class 4
	perChunk := arenaChunk / size // blocks per chunk
	nBlocks := perChunk * 3       // three full chunks
	blocks := make([][]byte, 0, nBlocks)
	for i := 0; i < nBlocks; i++ {
		blocks = append(blocks, a.Get(size))
	}
	if got := a.LiveChunks(); got != 3 {
		t.Fatalf("LiveChunks after carve = %d, want 3", got)
	}
	for _, b := range blocks {
		a.Put(b)
	}
	if got := a.ReleasedChunks(); got != 2 {
		t.Fatalf("ReleasedChunks = %d, want 2 (one spare retained)", got)
	}
	if got := a.LiveChunks(); got != 1 {
		t.Fatalf("LiveChunks after drain = %d, want 1", got)
	}
	// The spare still serves without a fresh allocation.
	b := a.Get(size)
	if b == nil {
		t.Fatal("spare chunk did not serve")
	}
	a.Put(b)
}

// TestArenaForeignPut verifies that blocks not carved from any live chunk
// are ignored rather than adopted.
func TestArenaForeignPut(t *testing.T) {
	var a PayloadArena
	foreign := make([]byte, 0, 128)
	a.Put(foreign)
	if n := a.Get(100); n == nil {
		t.Fatal("Get failed")
	} else if a.Reuses() != 0 {
		t.Fatal("foreign block was adopted into the free list")
	}
}
