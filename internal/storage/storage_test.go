package storage

import (
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/field"
)

func pay(key uint64) []byte {
	p := make([]byte, 8)
	binary.LittleEndian.PutUint64(p, key)
	return p
}

func keyOf(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }

func newTable(t *testing.T, buckets int) *Table {
	t.Helper()
	tbl, err := NewTable(TableSpec{
		Name:    "t",
		Indexes: []IndexSpec{{Name: "pk", Key: keyOf, Buckets: buckets}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(TableSpec{Name: "x"}); err == nil {
		t.Fatal("table without indexes accepted")
	}
	if _, err := NewTable(TableSpec{Name: "x", Indexes: []IndexSpec{{Name: "i"}}}); err == nil {
		t.Fatal("index without key func accepted")
	}
}

func TestInsertAndChainWalk(t *testing.T) {
	tbl := newTable(t, 4)
	for i := uint64(0); i < 100; i++ {
		tbl.Insert(NewVersion(pay(i), 1, field.FromTS(1), field.FromTS(field.Infinity)))
	}
	// All rows reachable through their buckets.
	ix := tbl.Index(0)
	found := 0
	for i := uint64(0); i < 100; i++ {
		for v := ix.Lookup(i).Head(); v != nil; v = v.Next(0) {
			if keyOf(v.Payload) == i {
				found++
				break
			}
		}
	}
	if found != 100 {
		t.Fatalf("found %d rows, want 100", found)
	}
}

func TestUnlink(t *testing.T) {
	tbl := newTable(t, 1) // single bucket: one long chain
	var versions []*Version
	for i := uint64(0); i < 10; i++ {
		v := NewVersion(pay(i), 1, field.FromTS(1), field.FromTS(field.Infinity))
		tbl.Insert(v)
		versions = append(versions, v)
	}
	// Unlink head, middle, tail.
	for _, i := range []int{9, 5, 0} {
		if !tbl.Unlink(versions[i]) {
			t.Fatalf("unlink %d failed", i)
		}
	}
	// Double unlink refused.
	if tbl.Unlink(versions[5]) {
		t.Fatal("double unlink succeeded")
	}
	remaining := 0
	for v := hashIx(tbl).BucketAt(0).Head(); v != nil; v = v.Next(0) {
		remaining++
	}
	if remaining != 7 {
		t.Fatalf("chain has %d, want 7", remaining)
	}
}

func TestBucketSizing(t *testing.T) {
	tbl := newTable(t, 1000)
	if n := hashIx(tbl).NumBuckets(); n != 1024 {
		t.Fatalf("buckets = %d, want 1024 (rounded to power of two)", n)
	}
}

func TestMultiIndex(t *testing.T) {
	tbl, err := NewTable(TableSpec{
		Name: "t",
		Indexes: []IndexSpec{
			{Name: "pk", Key: keyOf, Buckets: 16},
			{Name: "mod", Key: func(p []byte) uint64 { return keyOf(p) % 3 }, Buckets: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumIndexes() != 2 {
		t.Fatalf("NumIndexes = %d", tbl.NumIndexes())
	}
	if _, ok := tbl.IndexByName("mod"); !ok {
		t.Fatal("IndexByName failed")
	}
	if _, ok := tbl.IndexByName("nope"); ok {
		t.Fatal("IndexByName found ghost")
	}
	for i := uint64(0); i < 9; i++ {
		tbl.Insert(NewVersion(pay(i), 2, field.FromTS(1), field.FromTS(field.Infinity)))
	}
	// Scan secondary index for key%3 == 1: should find 1, 4, 7.
	ix := tbl.Index(1)
	got := map[uint64]bool{}
	for v := ix.Lookup(1).Head(); v != nil; v = v.Next(1) {
		if keyOf(v.Payload)%3 == 1 {
			got[keyOf(v.Payload)] = true
		}
	}
	for _, want := range []uint64{1, 4, 7} {
		if !got[want] {
			t.Fatalf("missing %d in secondary scan (got %v)", want, got)
		}
	}
}

func TestVersionWords(t *testing.T) {
	v := NewVersion(pay(1), 1, field.FromTS(5), field.FromTS(field.Infinity))
	if field.TS(v.Begin()) != 5 {
		t.Fatal("begin mismatch")
	}
	if !v.CASEnd(field.FromTS(field.Infinity), field.Lock(7, 0, false)) {
		t.Fatal("CASEnd failed")
	}
	if v.CASEnd(field.FromTS(field.Infinity), field.FromTS(9)) {
		t.Fatal("stale CASEnd succeeded")
	}
	v.SetBegin(field.FromTS(6))
	if field.TS(v.Begin()) != 6 {
		t.Fatal("SetBegin mismatch")
	}
}

func TestIsGarbage(t *testing.T) {
	// Committed old version: garbage once watermark passes its end.
	v := NewVersion(pay(1), 1, field.FromTS(5), field.FromTS(10))
	if v.IsGarbage(9) {
		t.Fatal("garbage before watermark")
	}
	if !v.IsGarbage(10) {
		t.Fatal("not garbage at watermark")
	}
	// Latest version: never garbage.
	latest := NewVersion(pay(1), 1, field.FromTS(5), field.FromTS(field.Infinity))
	if latest.IsGarbage(1 << 60) {
		t.Fatal("latest version garbage")
	}
	// Aborted creation (begin infinity): garbage immediately.
	ab := NewVersion(pay(1), 1, field.FromTS(field.Infinity), field.FromTS(field.Infinity))
	if !ab.IsGarbage(0) {
		t.Fatal("aborted version not garbage")
	}
	// Write-locked version: not garbage (End is a lock word).
	locked := NewVersion(pay(1), 1, field.FromTS(5), field.Lock(3, 0, false))
	if locked.IsGarbage(1 << 60) {
		t.Fatal("locked version garbage")
	}
}

func TestConcurrentInsertUnlinkRead(t *testing.T) {
	tbl := newTable(t, 8)
	const rounds = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers walk chains continuously.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := uint64(0); i < 8; i++ {
					for v := hashIx(tbl).BucketAt(int(i)).Head(); v != nil; v = v.Next(0) {
						_ = v.Payload
					}
				}
			}
		}()
	}
	// A writer inserts then unlinks.
	for i := 0; i < rounds; i++ {
		v := NewVersion(pay(uint64(i)), 1, field.FromTS(1), field.FromTS(2))
		tbl.Insert(v)
		if i%2 == 0 {
			tbl.Unlink(v)
		}
	}
	close(stop)
	wg.Wait()
}

func TestBucketLockTable(t *testing.T) {
	tbl := newTable(t, 8)
	blt := NewBucketLockTable()
	b := hashIx(tbl).BucketAt(0)
	blt.Acquire(b, 1)
	blt.Acquire(b, 2)
	if b.LockCount() != 2 {
		t.Fatalf("LockCount = %d", b.LockCount())
	}
	h := blt.Holders(b)
	if len(h) != 2 {
		t.Fatalf("Holders = %v", h)
	}
	blt.Release(b, 1)
	if b.LockCount() != 1 {
		t.Fatalf("LockCount = %d after release", b.LockCount())
	}
	if h := blt.Holders(b); len(h) != 1 || h[0] != 2 {
		t.Fatalf("Holders = %v", h)
	}
	// Releasing a non-held lock is a no-op.
	blt.Release(b, 99)
	if b.LockCount() != 1 {
		t.Fatal("no-op release changed count")
	}
	blt.Release(b, 2)
	if b.LockCount() != 0 || len(blt.Holders(b)) != 0 {
		t.Fatal("final release incomplete")
	}
}

func TestBucketLockTableConcurrent(t *testing.T) {
	tbl := newTable(t, 64)
	blt := NewBucketLockTable()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := hashIx(tbl).BucketAt(i % 64)
				blt.Acquire(b, uint64(w*1000+i))
				blt.Release(b, uint64(w*1000+i))
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < 64; i++ {
		if c := hashIx(tbl).BucketAt(i).LockCount(); c != 0 {
			t.Fatalf("bucket %d count %d after quiesce", i, c)
		}
	}
}

// Property: bucket routing is deterministic and within range.
func TestQuickBucketRouting(t *testing.T) {
	tbl := newTable(t, 1024)
	ix := tbl.Index(0)
	f := func(key uint64) bool {
		b1 := ix.Lookup(key)
		b2 := ix.Lookup(key)
		return b1 == b2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a version inserted into a table is always reachable via every
// index until unlinked, and never reachable after.
func TestQuickInsertReachable(t *testing.T) {
	tbl, _ := NewTable(TableSpec{
		Name: "t",
		Indexes: []IndexSpec{
			{Name: "pk", Key: keyOf, Buckets: 32},
			{Name: "half", Key: func(p []byte) uint64 { return keyOf(p) / 2 }, Buckets: 32},
		},
	})
	reach := func(v *Version, ord int) bool {
		key := tbl.Index(ord).Key(v.Payload)
		for c := tbl.Index(ord).Lookup(key).Head(); c != nil; c = c.Next(ord) {
			if c == v {
				return true
			}
		}
		return false
	}
	f := func(key uint64) bool {
		v := NewVersion(pay(key), 2, field.FromTS(1), field.FromTS(field.Infinity))
		tbl.Insert(v)
		if !reach(v, 0) || !reach(v, 1) {
			return false
		}
		tbl.Unlink(v)
		return !reach(v, 0) && !reach(v, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// hashIx returns the table's first index as a HashIndex (test helper for
// bucket-level access).
func hashIx(tbl *Table) *HashIndex { return tbl.Index(0).(*HashIndex) }
