package storage

// OrderedIndex is an ordered access method over a table: a concurrent
// skip list keyed by the index key, one bucket (version chain) per distinct
// key. It supports everything the hash index does plus ascending range
// scans, which is what opens range reads, ordered iteration and
// phantom-sensitive scan workloads to the engines (Section 2.1 only
// requires that records be reachable through *an* index; the paper's
// prototype used hash indexes, while Hekaton itself later added the
// Bw-tree for exactly this class of workloads).
//
// Concurrency model:
//   - Readers (point lookups, range cursors) are latch-free: skip-list
//     search follows atomic tower pointers, and bucket chains are the same
//     atomic version chains the hash index uses.
//   - Appending a version to an existing key's chain takes that bucket's
//     latch only — the steady-state update path.
//   - Inserting the first version of a brand-new key additionally takes the
//     skip list's insertion latch to link the new node.
//   - Nodes are reclaimed when their key dies: when garbage collection
//     unlinks the last version of a key, Unlink marks the node logically
//     deleted (under the bucket latch, so a concurrent Link cannot be
//     stranded); the engine's GC round sweeps marked nodes out of the tower
//     levels and defers the reset-and-reuse until the watermark proves no
//     transaction that could hold the node remains (docs/indexes.md,
//     "Node reclamation"). A cursor parked on a swept node keeps walking:
//     dead nodes retain their outgoing pointers until quiescence.
//
// Phantom protection cannot reuse bucket locks — a key never inserted has
// no bucket to lock — so the index carries a RangeLockTable that
// pessimistic serializable scans lock ranges in and inserters consult.
type OrderedIndex struct {
	ord    int
	spec   IndexSpec
	list   SkipList[Bucket]
	rlocks RangeLockTable
}

func newOrderedIndex(ord int, spec IndexSpec) *OrderedIndex {
	return &OrderedIndex{ord: ord, spec: spec}
}

// Ord returns the index ordinal within its table.
func (ix *OrderedIndex) Ord() int { return ix.ord }

// Name returns the index name.
func (ix *OrderedIndex) Name() string { return ix.spec.Name }

// Ordered reports range-scan support.
func (ix *OrderedIndex) Ordered() bool { return true }

// Key extracts this index's key from a payload.
func (ix *OrderedIndex) Key(payload []byte) uint64 { return ix.spec.Key(payload) }

// Keys returns the number of live distinct keys (diagnostics). After
// reclamation this tracks the live key population, not the cumulative
// number of keys ever inserted.
func (ix *OrderedIndex) Keys() int { return ix.list.Len() }

// Lookup returns the bucket holding versions with exactly key, or nil when
// the key has no node. A logically deleted node's (empty) bucket may be
// returned; its chain is empty, which reads identically to an absent key.
func (ix *OrderedIndex) Lookup(key uint64) *Bucket {
	if n := ix.list.Get(key); n != nil {
		return &n.V
	}
	return nil
}

// Link inserts v at the head of its key's chain, creating the skip-list
// node on first insertion of the key — or reviving a node the garbage
// collector marked deleted but has not yet swept. If the node lost the race
// with the sweeper (it is already unlinked), the insert retries and creates
// a fresh node: versions are never linked into an unreachable chain.
func (ix *OrderedIndex) Link(v *Version) {
	key := v.Key(ix.ord)
	for {
		n := ix.list.GetOrCreate(key)
		b := &n.V
		b.mu.Lock()
		if !ix.list.Revive(n) {
			b.mu.Unlock()
			continue // node already swept; a fresh node is needed
		}
		v.setNext(ix.ord, b.head.Load())
		b.head.Store(v)
		b.mu.Unlock()
		return
	}
}

// Unlink removes v from its key's chain. When the chain drains, the node is
// marked logically deleted (rechecked under the bucket latch, which
// serializes against Link's revival) and queued for the sweeper.
func (ix *OrderedIndex) Unlink(v *Version) {
	n := ix.list.Get(v.Key(ix.ord))
	if n == nil {
		return
	}
	b := &n.V
	if !b.unlink(v, ix.ord) {
		return
	}
	b.mu.Lock()
	if b.head.Load() == nil {
		ix.list.MarkDeleted(n)
	}
	b.mu.Unlock()
}

// SweepNodes unlinks up to max marked (logically deleted) nodes from the
// skip-list towers, stamping them with the caller's clock for deferred
// freeing. stamp is drawn after the unlinks (see SkipList.SweepMarked for
// why that ordering is load-bearing). The engine calls this from its GC
// round.
func (ix *OrderedIndex) SweepNodes(stamp func() uint64, max int) int {
	return ix.list.SweepMarked(stamp, max)
}

// FreeNodes resets and pools dead nodes whose stamp quiesced approves (for
// the multiversion engine: the GC watermark has passed the stamp and no
// collector is mid-traversal). Pooled nodes are reused by Link for new keys.
func (ix *OrderedIndex) FreeNodes(quiesced func(stamp uint64) bool, max int) int {
	return ix.list.FreeDead(quiesced, func(b *Bucket) {
		b.head.Store(nil)
		b.lockCount.Store(0)
	}, max)
}

// NodeStats reports reclamation diagnostics: nodes awaiting sweep, unlinked
// nodes awaiting quiescence, pooled nodes, and cumulative allocation/reuse
// counters.
func (ix *OrderedIndex) NodeStats() (marked, dead, pooled int, created, reused, freed uint64) {
	return ix.list.MarkedLen(), ix.list.DeadLen(), ix.list.PoolLen(),
		ix.list.Created(), ix.list.Reused(), ix.list.Freed()
}

// ScanRange returns a cursor over the buckets with keys in [lo, hi]
// inclusive, in ascending key order. An inverted range yields an exhausted
// cursor, not an error.
func (ix *OrderedIndex) ScanRange(lo, hi uint64) (RangeCursor, error) {
	if lo > hi {
		return RangeCursor{}, nil
	}
	return RangeCursor{node: ix.list.Seek(lo), hi: hi}, nil
}

// RangeLocks returns the index's range-lock table.
func (ix *OrderedIndex) RangeLocks() *RangeLockTable { return &ix.rlocks }
