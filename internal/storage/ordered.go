package storage

// OrderedIndex is an ordered access method over a table: a concurrent
// skip list keyed by the index key, one bucket (version chain) per distinct
// key. It supports everything the hash index does plus ascending range
// scans, which is what opens range reads, ordered iteration and
// phantom-sensitive scan workloads to the engines (Section 2.1 only
// requires that records be reachable through *an* index; the paper's
// prototype used hash indexes, while Hekaton itself later added the
// Bw-tree for exactly this class of workloads).
//
// Concurrency model:
//   - Readers (point lookups, range cursors) are latch-free: skip-list
//     search follows atomic tower pointers, and bucket chains are the same
//     atomic version chains the hash index uses.
//   - Appending a version to an existing key's chain takes that bucket's
//     latch only — the steady-state update path.
//   - Inserting the first version of a brand-new key additionally takes the
//     skip list's insertion latch to link the new node.
//   - Nodes are never removed: garbage collection unlinks versions from a
//     node's chain but leaves the (empty) node in place, so a concurrent
//     cursor can never step on freed memory. Version recycle safety is
//     identical to the hash index: chains are atomic, and versions are only
//     reused after the GC watermark proves quiescence.
//
// Phantom protection cannot reuse bucket locks — a key never inserted has
// no bucket to lock — so the index carries a RangeLockTable that
// pessimistic serializable scans lock ranges in and inserters consult.
type OrderedIndex struct {
	ord    int
	spec   IndexSpec
	list   SkipList[Bucket]
	rlocks RangeLockTable
}

func newOrderedIndex(ord int, spec IndexSpec) *OrderedIndex {
	return &OrderedIndex{ord: ord, spec: spec}
}

// Ord returns the index ordinal within its table.
func (ix *OrderedIndex) Ord() int { return ix.ord }

// Name returns the index name.
func (ix *OrderedIndex) Name() string { return ix.spec.Name }

// Ordered reports range-scan support.
func (ix *OrderedIndex) Ordered() bool { return true }

// Key extracts this index's key from a payload.
func (ix *OrderedIndex) Key(payload []byte) uint64 { return ix.spec.Key(payload) }

// Keys returns the number of distinct keys ever inserted (diagnostics).
func (ix *OrderedIndex) Keys() int { return ix.list.Len() }

// Lookup returns the bucket holding versions with exactly key, or nil when
// the key has never been inserted.
func (ix *OrderedIndex) Lookup(key uint64) *Bucket {
	if n := ix.list.Get(key); n != nil {
		return &n.V
	}
	return nil
}

// Link inserts v at the head of its key's chain, creating the skip-list
// node on first insertion of the key.
func (ix *OrderedIndex) Link(v *Version) {
	n := ix.list.GetOrCreate(v.Key(ix.ord))
	b := &n.V
	b.mu.Lock()
	v.setNext(ix.ord, b.head.Load())
	b.head.Store(v)
	b.mu.Unlock()
}

// Unlink removes v from its key's chain; the node itself stays.
func (ix *OrderedIndex) Unlink(v *Version) {
	if n := ix.list.Get(v.Key(ix.ord)); n != nil {
		n.V.unlink(v, ix.ord)
	}
}

// ScanRange returns a cursor over the buckets with keys in [lo, hi]
// inclusive, in ascending key order.
func (ix *OrderedIndex) ScanRange(lo, hi uint64) RangeCursor {
	if lo > hi {
		return RangeCursor{}
	}
	return RangeCursor{node: ix.list.Seek(lo), hi: hi}
}

// RangeLocks returns the index's range-lock table.
func (ix *OrderedIndex) RangeLocks() *RangeLockTable { return &ix.rlocks }
