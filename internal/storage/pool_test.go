package storage

import (
	"bytes"
	"testing"

	"repro/internal/field"
)

func TestVersionInlinePayloadCopied(t *testing.T) {
	src := []byte{1, 2, 3, 4}
	v := NewVersion(src, 1, field.FromTS(1), field.FromTS(field.Infinity))
	src[0] = 99 // caller reuses its buffer; the version must be unaffected
	if !bytes.Equal(v.Payload, []byte{1, 2, 3, 4}) {
		t.Fatalf("inline payload aliases the caller's buffer: %v", v.Payload)
	}
	big := make([]byte, InlinePayload+1)
	big[0] = 7
	vb := NewVersion(big, 1, field.FromTS(1), field.FromTS(field.Infinity))
	if &vb.Payload[0] != &big[0] {
		t.Fatal("oversized payload should be retained by reference, not copied")
	}
}

func TestVersionPoolReuse(t *testing.T) {
	var p VersionPool
	v1 := p.Get([]byte{1, 1, 1}, 3, field.FromTS(5), field.FromTS(field.Infinity))
	if v1.Key(2) != 0 || v1.Next(2) != nil {
		t.Fatal("fresh version has dirty spill slots")
	}
	v1.setKey(2, 42)
	v1.setNext(0, v1)
	v1.MarkUnlinked()
	p.Put(v1)
	v2 := p.Get([]byte{9, 9}, 1, field.FromTS(7), field.FromTS(9))
	if v2 != v1 {
		t.Skip("pool did not return the recycled object")
	}
	if !bytes.Equal(v2.Payload, []byte{9, 9}) {
		t.Fatalf("payload not reset: %v", v2.Payload)
	}
	if v2.Next(0) != nil {
		t.Fatal("chain pointer survived recycling")
	}
	if field.TS(v2.Begin()) != 7 || field.TS(v2.End()) != 9 {
		t.Fatalf("begin/end not reset: %d/%d", v2.Begin(), v2.End())
	}
	if !v2.MarkUnlinked() {
		t.Fatal("unlinked flag survived recycling")
	}
	if p.Reuses() == 0 {
		t.Fatal("reuse counter not incremented")
	}
}

func TestAppendHolders(t *testing.T) {
	blt := NewBucketLockTable()
	ix := &HashIndex{buckets: make([]Bucket, 1)}
	b := ix.BucketAt(0)
	blt.Acquire(b, 1)
	blt.Acquire(b, 2)
	buf := make([]uint64, 0, 8)
	got := blt.AppendHolders(buf[:0], b)
	if len(got) != 2 || &got[0] != &buf[:1][0] {
		t.Fatalf("AppendHolders did not reuse the caller's buffer: %v", got)
	}
	// A second call with the same buffer must not allocate or accumulate.
	got = blt.AppendHolders(got[:0], b)
	if len(got) != 2 {
		t.Fatalf("holders = %v", got)
	}
	blt.Release(b, 1)
	blt.Release(b, 2)
	if got = blt.AppendHolders(got[:0], b); len(got) != 0 {
		t.Fatalf("holders after release = %v", got)
	}
}
