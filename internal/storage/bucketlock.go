package storage

import (
	"sync"
	"unsafe"
)

const lockListShards = 64

// BucketLockTable stores the LockLists of Section 4.1.2: for every bucket
// with at least one bucket lock, the list of serializable transactions
// holding a lock on it. The LockCount lives in the bucket itself for a fast
// "is it locked at all?" check; the lists live here, keyed by bucket
// address, mirroring the paper's separate hash table of lock-list arrays.
type BucketLockTable struct {
	shards [lockListShards]lockListShard
}

type lockListShard struct {
	mu sync.Mutex
	m  map[*Bucket][]uint64
}

// NewBucketLockTable returns an empty lock-list table.
func NewBucketLockTable() *BucketLockTable {
	t := &BucketLockTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[*Bucket][]uint64)
	}
	return t
}

func (t *BucketLockTable) shard(b *Bucket) *lockListShard {
	// Hash the bucket address.
	h := uint64(uintptr(unsafe.Pointer(b))) * 0x9E3779B97F4A7C15
	return &t.shards[h>>58%lockListShards]
}

// Acquire adds txid to b's lock list and increments b's lock count. Multiple
// transactions can hold a lock on the same bucket. The count is incremented
// before the holder entry is appended (same publication order as
// RangeLockTable.Acquire): an inserter's LockCount()==0 fast path must never
// observe the holder list populated while the counter still reads zero.
func (t *BucketLockTable) Acquire(b *Bucket, txid uint64) {
	s := t.shard(b)
	s.mu.Lock()
	b.IncLocks()
	s.m[b] = append(s.m[b], txid)
	s.mu.Unlock()
}

// Release removes txid from b's lock list and decrements the lock count.
// Releasing a lock that is not held is a no-op.
func (t *BucketLockTable) Release(b *Bucket, txid uint64) {
	s := t.shard(b)
	s.mu.Lock()
	list := s.m[b]
	for i, id := range list {
		if id == txid {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			if len(list) == 0 {
				delete(s.m, b)
			} else {
				s.m[b] = list
			}
			b.DecLocks()
			s.mu.Unlock()
			return
		}
	}
	s.mu.Unlock()
}

// AppendHolders appends the transaction IDs holding locks on b to dst and
// returns the extended slice. Passing a reused buffer keeps the pessimistic
// insert path allocation-free.
func (t *BucketLockTable) AppendHolders(dst []uint64, b *Bucket) []uint64 {
	s := t.shard(b)
	s.mu.Lock()
	dst = append(dst, s.m[b]...)
	s.mu.Unlock()
	return dst
}

// Holders returns a snapshot of the transaction IDs holding locks on b.
func (t *BucketLockTable) Holders(b *Bucket) []uint64 {
	return t.AppendHolders(nil, b)
}
