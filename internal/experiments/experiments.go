package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/tatp"
	"repro/internal/workload"
)

// Schemes lists the three concurrency control mechanisms in the paper's
// presentation order.
var Schemes = []core.Scheme{core.SingleVersion, core.MVPessimistic, core.MVOptimistic}

// Config controls experiment scale. The paper's testbed (2-socket, 24
// hardware threads, 10M-row tables, minutes-long runs) does not fit a unit
// test; the defaults reproduce the workloads at laptop scale. Absolute
// throughput is not comparable to the paper; the relative behaviour of the
// three schemes is.
type Config struct {
	// NLarge is the row count standing in for the paper's 10,000,000-row
	// low-contention table.
	NLarge uint64
	// NSmall is the hotspot table size (the paper uses exactly 1,000).
	NSmall uint64
	// TATPSubscribers stands in for the paper's 20,000,000 subscribers.
	TATPSubscribers uint64
	// MaxMPL is the highest multiprogramming level (the paper's 24).
	MaxMPL int
	// MPLs is the multiprogramming-level sweep for the scalability figures.
	MPLs []int
	// ReadRatios is the x-axis of Figures 6 and 7 (percent read-only).
	ReadRatios []int
	// LongReaders is the x-axis of Figures 8 and 9 (count of long readers).
	LongReaders []int
	// Duration and Warmup control each measurement point.
	Duration time.Duration
	Warmup   time.Duration
	// Seed makes runs reproducible.
	Seed int64
	// Logging enables the asynchronous group-commit redo log (the paper's
	// configuration); records are encoded and discarded.
	Logging bool
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		NLarge:          200_000,
		NSmall:          1_000,
		TATPSubscribers: 100_000,
		MaxMPL:          24,
		MPLs:            []int{1, 2, 4, 6, 8, 12, 16, 20, 24},
		ReadRatios:      []int{0, 20, 40, 60, 80, 100},
		LongReaders:     []int{0, 1, 2, 4, 6, 12, 18, 24},
		Duration:        400 * time.Millisecond,
		Warmup:          100 * time.Millisecond,
		Seed:            1,
		Logging:         true,
	}
}

// TestConfig returns a small configuration for unit tests and smoke runs.
// It uses a moderate multiprogramming level: on machines with few hardware
// threads, very high MPLs inflate lock hold times across scheduler
// preemptions and distort the comparisons.
func TestConfig() Config {
	c := DefaultConfig()
	c.NLarge = 20_000
	c.TATPSubscribers = 5_000
	c.MaxMPL = 8
	c.MPLs = []int{1, 4, 8}
	c.ReadRatios = []int{0, 50, 100}
	c.LongReaders = []int{0, 2, 4}
	c.Duration = 300 * time.Millisecond
	c.Warmup = 75 * time.Millisecond
	return c
}

func (c Config) openDB(scheme core.Scheme) *core.Database {
	cfg := core.Config{Scheme: scheme}
	if c.Logging {
		cfg.LogSink = io.Discard
	}
	db, err := core.Open(cfg)
	if err != nil {
		panic(err) // schemes are enumerated internally; cannot fail
	}
	return db
}

// loadUniform creates and populates the homogeneous workload table.
func (c Config) loadUniform(scheme core.Scheme, n uint64) (*core.Database, *core.Table) {
	db := c.openDB(scheme)
	tbl, err := workload.Table(db, n)
	if err != nil {
		panic(err)
	}
	workload.Load(db, tbl, n)
	return db, tbl
}

// loadOrdered creates and populates the homogeneous workload table with an
// ordered (range-scannable) primary index.
func (c Config) loadOrdered(scheme core.Scheme, n uint64) (*core.Database, *core.Table) {
	db := c.openDB(scheme)
	tbl, err := workload.OrderedTable(db, n)
	if err != nil {
		panic(err)
	}
	workload.Load(db, tbl, n)
	return db, tbl
}

// updateMix is the Section 5.1 transaction: R=10 reads, W=2 writes.
func updateMix(tbl *core.Table, n uint64, level core.Isolation) bench.TxType {
	h := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: n}, R: 10, W: 2}
	return bench.TxType{Name: "update", Weight: 1, Isolation: level, Fn: h.Run}
}

// readOnlyMix is the Section 5.2.1 read transaction: R=10, W=0.
func readOnlyMix(tbl *core.Table, n uint64, level core.Isolation) bench.TxType {
	h := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: n}, R: 10, W: 0}
	return bench.TxType{Name: "read", Weight: 1, Isolation: level, Fn: h.Run}
}

// Fig4 reproduces Figure 4: transaction throughput vs multiprogramming level
// under low contention (R=10, W=2 on the large table, Read Committed).
func (c Config) Fig4() *Report {
	return c.scalability("Figure 4", "Scalability under low contention", c.NLarge)
}

// Fig5 reproduces Figure 5: the same sweep on a 1,000-row hotspot table.
func (c Config) Fig5() *Report {
	return c.scalability("Figure 5", "Scalability under high contention", c.NSmall)
}

func (c Config) scalability(id, title string, n uint64) *Report {
	rep := &Report{
		ID:      id,
		Title:   title + fmt.Sprintf(" (R=10, W=2, N=%d, Read Committed)", n),
		Columns: append([]string{"MPL"}, schemeLabels()...),
	}
	series := make([]Series, len(Schemes))
	for i, s := range Schemes {
		series[i].Label = s.String()
	}
	for _, mpl := range c.MPLs {
		row := []string{fmt.Sprint(mpl)}
		for i, scheme := range Schemes {
			db, tbl := c.loadUniform(scheme, n)
			res := bench.Run(db, []bench.TxType{updateMix(tbl, n, core.ReadCommitted)},
				bench.Options{Workers: mpl, Duration: c.Duration, Warmup: c.Warmup, Seed: c.Seed})
			db.Close()
			tps := res.TPS()
			series[i].X = append(series[i].X, float64(mpl))
			series[i].Y = append(series[i].Y, tps)
			row = append(row, f0(tps))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Series = series
	return rep
}

// Table3 reproduces Table 3: throughput at MPL 24 under Read Committed,
// Repeatable Read and Serializable, with the percentage drop relative to
// Read Committed.
func (c Config) Table3() *Report {
	rep := &Report{
		ID:    "Table 3",
		Title: fmt.Sprintf("Throughput at higher isolation levels (R=10, W=2, N=%d, MPL=%d)", c.NLarge, c.MaxMPL),
		Columns: []string{"Scheme", "RC tx/sec", "RR tx/sec", "RR %drop",
			"SER tx/sec", "SER %drop"},
	}
	levels := []core.Isolation{core.ReadCommitted, core.RepeatableRead, core.Serializable}
	for _, scheme := range Schemes {
		tps := make([]float64, len(levels))
		for li, level := range levels {
			db, tbl := c.loadUniform(scheme, c.NLarge)
			res := bench.Run(db, []bench.TxType{updateMix(tbl, c.NLarge, level)},
				bench.Options{Workers: c.MaxMPL, Duration: c.Duration, Warmup: c.Warmup, Seed: c.Seed})
			db.Close()
			tps[li] = res.TPS()
		}
		drop := func(i int) float64 {
			if tps[0] <= 0 {
				return 0
			}
			return (tps[0] - tps[i]) / tps[0]
		}
		rep.Rows = append(rep.Rows, []string{
			scheme.String(), f0(tps[0]), f0(tps[1]), pct(drop(1)), f0(tps[2]), pct(drop(2)),
		})
		rep.Series = append(rep.Series, Series{
			Label: scheme.String(),
			X:     []float64{0, 1, 2},
			Y:     tps,
		})
	}
	return rep
}

// Fig6 reproduces Figure 6: throughput as the share of short read-only
// transactions grows, low contention.
func (c Config) Fig6() *Report {
	return c.readMix("Figure 6", "Impact of short read-only transactions (low contention)", c.NLarge)
}

// Fig7 reproduces Figure 7: the same sweep on the hotspot table.
func (c Config) Fig7() *Report {
	return c.readMix("Figure 7", "Impact of short read-only transactions (high contention)", c.NSmall)
}

func (c Config) readMix(id, title string, n uint64) *Report {
	rep := &Report{
		ID:      id,
		Title:   title + fmt.Sprintf(" (N=%d, MPL=%d, Read Committed)", n, c.MaxMPL),
		Columns: append([]string{"%read-only"}, schemeLabels()...),
	}
	series := make([]Series, len(Schemes))
	for i, s := range Schemes {
		series[i].Label = s.String()
	}
	for _, ratio := range c.ReadRatios {
		row := []string{fmt.Sprint(ratio)}
		for i, scheme := range Schemes {
			db, tbl := c.loadUniform(scheme, n)
			up := updateMix(tbl, n, core.ReadCommitted)
			rd := readOnlyMix(tbl, n, core.ReadCommitted)
			up.Weight = 100 - ratio
			rd.Weight = ratio
			types := []bench.TxType{up, rd}
			res := bench.Run(db, types,
				bench.Options{Workers: c.MaxMPL, Duration: c.Duration, Warmup: c.Warmup, Seed: c.Seed})
			db.Close()
			tps := res.TPS()
			series[i].X = append(series[i].X, float64(ratio))
			series[i].Y = append(series[i].Y, tps)
			row = append(row, f0(tps))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Series = series
	return rep
}

// ReadMostly is a Figure-5-style read-mostly scenario (90% read-only
// snapshot transactions, 10% R=10/W=2 updates on the hotspot table) that
// exercises the registration-free read-only fast lane: for each MV scheme
// it reports throughput with the readers on the regular registered path and
// on the fast lane (BeginReadOnly — no oracle increment, no transaction-
// table entry). It has no counterpart figure in the paper; it isolates the
// shared-counter cost the paper's Section 6 identifies as the only
// unavoidable critical section.
func (c Config) ReadMostly() *Report {
	mvSchemes := []core.Scheme{core.MVPessimistic, core.MVOptimistic}
	rep := &Report{
		ID:      "Read-mostly",
		Title:   fmt.Sprintf("Read-mostly fast lane (90%% read-only R=10, 10%% update R=10/W=2, N=%d)", c.NSmall),
		Columns: []string{"MPL", "MV/L", "MV/L fast", "MV/O", "MV/O fast"},
	}
	series := make([]Series, 0, 2*len(mvSchemes))
	for _, s := range mvSchemes {
		series = append(series, Series{Label: s.String()}, Series{Label: s.String() + " fast"})
	}
	for _, mpl := range c.MPLs {
		row := []string{fmt.Sprint(mpl)}
		si := 0
		for _, scheme := range mvSchemes {
			for _, fast := range []bool{false, true} {
				db, tbl := c.loadUniform(scheme, c.NSmall)
				up := updateMix(tbl, c.NSmall, core.ReadCommitted)
				up.Weight = 10
				rd := readOnlyMix(tbl, c.NSmall, core.SnapshotIsolation)
				rd.Weight = 90
				rd.ReadOnly = fast
				res := bench.Run(db, []bench.TxType{up, rd},
					bench.Options{Workers: mpl, Duration: c.Duration, Warmup: c.Warmup, Seed: c.Seed})
				db.Close()
				tps := res.TPS()
				series[si].X = append(series[si].X, float64(mpl))
				series[si].Y = append(series[si].Y, tps)
				row = append(row, f0(tps))
				si++
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Series = series
	return rep
}

// RangeScan is a range-heavy scenario over an ordered primary index: 80% of
// transactions run 4 range scans of 100 consecutive keys, 20% run the
// R=10/W=2 update mix, per scheme and multiprogramming level. It has no
// counterpart figure in the paper (the prototype had only hash indexes); it
// measures what the ordered access method costs each scheme — MV cursors
// pay visibility checks per version, 1V pays range-lock admission — and is
// the regression anchor for the range-scan path (BENCH_prN.json "Range").
func (c Config) RangeScan() *Report {
	const span = 100
	rep := &Report{
		ID: "Range",
		Title: fmt.Sprintf("Range-heavy workload (ordered index, 80%% 4×%d-row scans, 20%% R=10/W=2 updates, N=%d, Read Committed)",
			span, c.NLarge),
		Columns: append([]string{"MPL"}, schemeLabels()...),
	}
	series := make([]Series, len(Schemes))
	for i, s := range Schemes {
		series[i].Label = s.String()
	}
	for _, mpl := range c.MPLs {
		row := []string{fmt.Sprint(mpl)}
		for i, scheme := range Schemes {
			db, tbl := c.loadOrdered(scheme, c.NLarge)
			rm := workload.RangeMix{
				Table: tbl, Dist: workload.Uniform{N: c.NLarge}, N: c.NLarge,
				Scans: 4, Span: span, W: 0,
			}
			up := workload.Homogeneous{Table: tbl, Dist: workload.Uniform{N: c.NLarge}, R: 10, W: 2}
			types := []bench.TxType{
				{Name: "range", Weight: 80, Isolation: core.ReadCommitted, Fn: rm.Run},
				{Name: "update", Weight: 20, Isolation: core.ReadCommitted, Fn: up.Run},
			}
			res := bench.Run(db, types,
				bench.Options{Workers: mpl, Duration: c.Duration, Warmup: c.Warmup, Seed: c.Seed})
			db.Close()
			tps := res.TPS()
			series[i].X = append(series[i].X, float64(mpl))
			series[i].Y = append(series[i].Y, tps)
			row = append(row, f0(tps))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Series = series
	return rep
}

// longReaderResults runs the Section 5.2.2 experiment once per x value and
// scheme, returning update tx/s and reader rows/s.
func (c Config) longReaderResults() (update, reads []Series) {
	update = make([]Series, len(Schemes))
	reads = make([]Series, len(Schemes))
	for i, s := range Schemes {
		update[i].Label = s.String()
		reads[i].Label = s.String()
	}
	rowsPerReader := c.NLarge / 10 // the paper's readers touch 10% of the table
	for _, x := range c.LongReaders {
		if x > c.MaxMPL {
			continue
		}
		for i, scheme := range Schemes {
			db, tbl := c.loadUniform(scheme, c.NLarge)
			// The paper's reporting queries are transactionally consistent
			// read-only transactions. Per Section 3.4, read-only
			// transactions needing a consistent view run under snapshot
			// isolation, which is serializable for them: on the MV engines
			// they read a snapshot without locks or validation; the 1V
			// engine upgrades SI to repeatable read and takes read locks
			// held to commit.
			long := bench.TxType{
				Name:      "long-read",
				Pinned:    x,
				Isolation: core.SnapshotIsolation,
				Fn: workload.LongReader{
					Table: tbl, N: c.NLarge, Rows: rowsPerReader,
				}.Run,
			}
			up := updateMix(tbl, c.NLarge, core.ReadCommitted)
			res := bench.Run(db, []bench.TxType{long, up},
				bench.Options{Workers: c.MaxMPL, Duration: c.Duration, Warmup: c.Warmup, Seed: c.Seed})
			db.Close()
			update[i].X = append(update[i].X, float64(x))
			update[i].Y = append(update[i].Y, res.TypeTPS("update"))
			reads[i].X = append(reads[i].X, float64(x))
			reads[i].Y = append(reads[i].Y, res.TypeReadsPerSec("long-read"))
		}
	}
	return update, reads
}

// Fig8And9 reproduces Figures 8 and 9 from the same runs: update throughput
// and read throughput as long read-only transactions are added.
func (c Config) Fig8And9() (*Report, *Report) {
	update, reads := c.longReaderResults()
	mk := func(id, title, unit string, series []Series) *Report {
		rep := &Report{
			ID:      id,
			Title:   title + fmt.Sprintf(" (N=%d, readers scan 10%%, MPL=%d)", c.NLarge, c.MaxMPL),
			Columns: append([]string{"long readers"}, schemeLabels()...),
			Series:  series,
		}
		if len(series) > 0 {
			for xi := range series[0].X {
				row := []string{fmt.Sprint(int(series[0].X[xi]))}
				for _, s := range series {
					row = append(row, f0(s.Y[xi]))
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
		_ = unit
		return rep
	}
	fig8 := mk("Figure 8", "Update throughput with long read transactions", "tx/s", update)
	fig9 := mk("Figure 9", "Read throughput with long read transactions", "rows/s", reads)
	return fig8, fig9
}

// Table4 reproduces Table 4: TATP throughput per scheme.
func (c Config) Table4() *Report {
	rep := &Report{
		ID:      "Table 4",
		Title:   fmt.Sprintf("TATP results (%d subscribers, Read Committed)", c.TATPSubscribers),
		Columns: []string{"Scheme", "Transactions per second", "Abort rate"},
	}
	var series Series
	series.Label = "TATP"
	for _, scheme := range Schemes {
		db := c.openDB(scheme)
		td, err := tatp.CreateTables(db, c.TATPSubscribers)
		if err != nil {
			panic(err)
		}
		td.Load(c.Seed)
		res := bench.Run(db, td.Mix(core.ReadCommitted),
			bench.Options{Workers: c.MaxMPL, Duration: c.Duration, Warmup: c.Warmup, Seed: c.Seed})
		db.Close()
		rep.Rows = append(rep.Rows, []string{scheme.String(), f0(res.TPS()), pct(res.AbortRate())})
		series.X = append(series.X, float64(len(series.X)))
		series.Y = append(series.Y, res.TPS())
	}
	rep.Series = []Series{series}
	return rep
}

func schemeLabels() []string {
	out := make([]string, len(Schemes))
	for i, s := range Schemes {
		out[i] = s.String()
	}
	return out
}

// All runs every experiment in paper order.
func (c Config) All() []*Report {
	var out []*Report
	out = append(out, c.Fig4(), c.Fig5(), c.Table3(), c.Fig6(), c.Fig7())
	f8, f9 := c.Fig8And9()
	out = append(out, f8, f9, c.Table4(), c.ReadMostly(), c.RangeScan())
	return out
}

// ByID runs the experiment with the given identifier (fig4, fig5, table3,
// fig6, fig7, fig8, fig9, table4, readmostly, range, all).
func (c Config) ByID(id string) ([]*Report, error) {
	switch id {
	case "fig4":
		return []*Report{c.Fig4()}, nil
	case "readmostly":
		return []*Report{c.ReadMostly()}, nil
	case "range":
		return []*Report{c.RangeScan()}, nil
	case "fig5":
		return []*Report{c.Fig5()}, nil
	case "table3":
		return []*Report{c.Table3()}, nil
	case "fig6":
		return []*Report{c.Fig6()}, nil
	case "fig7":
		return []*Report{c.Fig7()}, nil
	case "fig8", "fig9":
		f8, f9 := c.Fig8And9()
		if id == "fig8" {
			return []*Report{f8}, nil
		}
		return []*Report{f9}, nil
	case "table4":
		return []*Report{c.Table4()}, nil
	case "all":
		return c.All(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
}
