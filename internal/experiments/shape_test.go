package experiments

// Shape tests: run every experiment at reduced scale and assert the paper's
// qualitative findings — who wins under which workload, and how the picture
// changes as the workload shifts. Absolute throughput is machine dependent
// and is not asserted; the assertions use large tolerances because
// single-box runs are noisy.

import (
	"testing"
)

func testCfg(t *testing.T) Config {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment shape tests are long; skipped with -short")
	}
	return TestConfig()
}

func last(s Series) float64 {
	return s.Y[len(s.Y)-1]
}

func at(t *testing.T, s Series, x float64) float64 {
	t.Helper()
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i]
		}
	}
	t.Fatalf("series %s has no x=%v (xs=%v)", s.Label, x, s.X)
	return 0
}

func series(t *testing.T, r *Report, label string) Series {
	t.Helper()
	s, ok := r.SeriesByLabel(label)
	if !ok {
		t.Fatalf("%s: no series %q", r.ID, label)
	}
	return s
}

// Figure 4: everything commits at every multiprogramming level, and under
// low contention the single-version engine is competitive at MPL 1 (the
// paper's headline: 1V is cheap when transactions are short and contention
// is low).
func TestFig4Shape(t *testing.T) {
	cfg := testCfg(t)
	rep := cfg.Fig4()
	v1 := series(t, rep, "1V")
	mvo := series(t, rep, "MV/O")
	mvl := series(t, rep, "MV/L")
	for _, s := range []Series{v1, mvo, mvl} {
		for i, y := range s.Y {
			if y <= 0 {
				t.Fatalf("%s has zero throughput at MPL %v", s.Label, s.X[i])
			}
		}
	}
	// 1V is at least competitive with the MV schemes at MPL 1 (within
	// noise): the MV overhead of version management is real. Cross-engine
	// ratios are meaningless under the race detector's instrumentation.
	if !raceEnabled && at(t, v1, 1) < 0.6*at(t, mvo, 1) {
		t.Errorf("1V (%v) unexpectedly far below MV/O (%v) at MPL 1",
			at(t, v1, 1), at(t, mvo, 1))
	}
}

// Figure 5: the hotspot run still commits over the whole sweep for every
// scheme — no livelock, no collapse to zero.
func TestFig5Shape(t *testing.T) {
	cfg := testCfg(t)
	rep := cfg.Fig5()
	for _, label := range []string{"1V", "MV/L", "MV/O"} {
		s := series(t, rep, label)
		for i, y := range s.Y {
			if y <= 0 {
				t.Fatalf("%s has zero throughput at MPL %v under contention", label, s.X[i])
			}
		}
	}
}

// Table 3: higher isolation levels never increase throughput, and for the
// single-version engine serializability costs no more than repeatable read
// (the hash-key lock already protects against phantoms — the paper's 1.8%
// vs 1.8% observation).
func TestTable3Shape(t *testing.T) {
	cfg := testCfg(t)
	rep := cfg.Table3()
	for _, label := range []string{"1V", "MV/L", "MV/O"} {
		s := series(t, rep, label)
		rc, rr, ser := s.Y[0], s.Y[1], s.Y[2]
		if rc <= 0 || rr <= 0 || ser <= 0 {
			t.Fatalf("%s: zero throughput in %v", label, s.Y)
		}
		// Generous tolerances: separate measurement runs on a shared box
		// vary by tens of percent.
		if rr > rc*1.5 {
			t.Errorf("%s: repeatable read (%v) above read committed (%v)", label, rr, rc)
		}
		if ser > rr*1.6 {
			t.Errorf("%s: serializable (%v) above repeatable read (%v)", label, ser, rr)
		}
	}
	v1 := series(t, rep, "1V")
	rr, ser := v1.Y[1], v1.Y[2]
	if ser < 0.5*rr {
		t.Errorf("1V: serializable (%v) much worse than repeatable read (%v); hash-key locks should make them nearly equal", ser, rr)
	}
}

// Figures 6: as the share of read-only transactions grows, the gap between
// 1V and the MV schemes closes (the paper's Section 5.2.1 finding).
func TestFig6Shape(t *testing.T) {
	cfg := testCfg(t)
	rep := cfg.Fig6()
	v1 := series(t, rep, "1V")
	mvo := series(t, rep, "MV/O")
	gapAt := func(x float64) float64 {
		a, b := at(t, v1, x), at(t, mvo, x)
		if a <= 0 {
			t.Fatalf("1V zero at %v", x)
		}
		return (a - b) / a
	}
	if raceEnabled {
		return // cross-engine ratios are instrumentation artifacts under -race
	}
	if gapAt(100) > gapAt(0)+0.15 { // slack for cross-run noise
		t.Errorf("gap did not close: %0.2f at 0%% read-only vs %0.2f at 100%%",
			gapAt(0), gapAt(100))
	}
	// At 100% read-only the schemes are comparable.
	if at(t, mvo, 100) < 0.55*at(t, v1, 100) {
		t.Errorf("MV/O (%v) far below 1V (%v) on pure reads", at(t, mvo, 100), at(t, v1, 100))
	}
}

// Figure 7: under high contention everything still commits across the mix
// sweep and read-only work scales the totals up.
func TestFig7Shape(t *testing.T) {
	cfg := testCfg(t)
	rep := cfg.Fig7()
	for _, label := range []string{"1V", "MV/L", "MV/O"} {
		s := series(t, rep, label)
		for i, y := range s.Y {
			if y <= 0 {
				t.Fatalf("%s zero at ratio %v", label, s.X[i])
			}
		}
		if last(s) < s.Y[0] {
			t.Errorf("%s: pure read-only mix (%v) slower than pure updates (%v)", label, last(s), s.Y[0])
		}
	}
}

// Figures 8 and 9 — the paper's central result. A single long read-only
// transaction collapses 1V update throughput (the paper reports a 75% drop
// at x=1 and an 80x MV advantage at x=12); the MV engines keep updating.
// MV read throughput also stays ahead of 1V.
func TestFig8And9Shape(t *testing.T) {
	cfg := testCfg(t)
	fig8, fig9 := cfg.Fig8And9()

	v1 := series(t, fig8, "1V")
	mvl := series(t, fig8, "MV/L")
	mvo := series(t, fig8, "MV/O")

	// 1V collapses as soon as a long reader is present.
	base := v1.Y[0]
	withReaders := at(t, v1, v1.X[1])
	if base <= 0 {
		t.Fatal("1V zero update throughput with no readers")
	}
	if withReaders > 0.5*base {
		t.Errorf("1V update throughput did not collapse: %v -> %v", base, withReaders)
	}
	// The MV schemes dominate 1V once long readers are present.
	xmax := v1.X[len(v1.X)-1]
	v1Last := at(t, v1, xmax)
	for _, s := range []Series{mvl, mvo} {
		if at(t, s, xmax) < 5*v1Last {
			t.Errorf("%s update throughput (%v) not far above 1V (%v) with %v long readers",
				s.Label, at(t, s, xmax), v1Last, xmax)
		}
	}

	// Figure 9: MV read throughput beats 1V at the largest reader count.
	r1 := series(t, fig9, "1V")
	rl := series(t, fig9, "MV/L")
	ro := series(t, fig9, "MV/O")
	if at(t, rl, xmax) < 0.8*at(t, r1, xmax) || at(t, ro, xmax) < 0.8*at(t, r1, xmax) {
		t.Errorf("MV read throughput (MV/L %v, MV/O %v) below 1V (%v) at x=%v",
			at(t, rl, xmax), at(t, ro, xmax), at(t, r1, xmax), xmax)
	}
}

// Table 4: TATP runs on all schemes at the same order of magnitude with low
// abort rates, 1V in front (the paper: 4.2M vs 3.1M/3.1M).
func TestTable4Shape(t *testing.T) {
	cfg := testCfg(t)
	rep := cfg.Table4()
	s := rep.Series[0]
	if len(s.Y) != 3 {
		t.Fatalf("expected 3 schemes, got %d", len(s.Y))
	}
	min, max := s.Y[0], s.Y[0]
	for _, y := range s.Y {
		if y <= 0 {
			t.Fatal("zero TATP throughput")
		}
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	if max > 8*min {
		t.Errorf("TATP throughputs differ by more than 8x: %v", s.Y)
	}
}

// ByID covers the dispatcher.
func TestByID(t *testing.T) {
	cfg := TestConfig()
	if _, err := cfg.ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	// Run the cheapest experiment through the dispatcher for coverage.
	cfg.MPLs = []int{1}
	cfg.NSmall = 500
	if testing.Short() {
		t.Skip("skipped with -short")
	}
	reps, err := cfg.ByID("fig5")
	if err != nil || len(reps) != 1 {
		t.Fatalf("reps=%d err=%v", len(reps), err)
	}
	if len(reps[0].Rows) != 1 {
		t.Fatalf("rows=%d", len(reps[0].Rows))
	}
}

// Range: the range-heavy workload over the ordered index commits at every
// multiprogramming level on every scheme — the ordered access path neither
// livelocks nor collapses under concurrency.
func TestRangeShape(t *testing.T) {
	cfg := testCfg(t)
	rep := cfg.RangeScan()
	for _, label := range []string{"1V", "MV/L", "MV/O"} {
		s := series(t, rep, label)
		for i, y := range s.Y {
			if y <= 0 {
				t.Fatalf("%s has zero range-scan throughput at MPL %v", label, s.X[i])
			}
		}
	}
}
