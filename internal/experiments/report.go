// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5). Each experiment builds fresh databases for the
// three concurrency control schemes (1V, MV/L, MV/O), runs the paper's
// workload with the paper's parameters (scaled by configuration), and
// reports the same rows or series the paper shows.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Series is one line of a figure: a labelled y-value per x-value.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Report is the outcome of one experiment: a printable table plus raw series
// for the shape assertions.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Series  []Series
}

// SeriesByLabel returns the series with the given label.
func (r *Report) SeriesByLabel(label string) (Series, bool) {
	for _, s := range r.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}

// WriteTo renders the report as an aligned text table.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}
