//go:build race

package experiments

// raceEnabled reports whether the race detector is instrumenting this build.
// Cross-engine throughput-ratio assertions are skipped under the detector:
// instrumentation multiplies the cost of synchronization operations by an
// engine-dependent factor, so relative throughput no longer reflects the
// engines being compared. Structural assertions (non-zero throughput, every
// point commits) still run.
const raceEnabled = true
