package gc

import (
	"sync"
	"testing"
)

func TestPinsAcquireReleaseMin(t *testing.T) {
	var p ReaderPins
	p.Init(0)
	if m := p.Min(100); m != 100 {
		t.Fatalf("empty Min = %d, want bound 100", m)
	}
	a := p.Acquire(40)
	b := p.Acquire(60)
	if a < 0 || b < 0 {
		t.Fatalf("Acquire failed with free slots: %d %d", a, b)
	}
	if m := p.Min(100); m != 40 {
		t.Fatalf("Min = %d, want 40", m)
	}
	if m := p.Min(30); m != 30 {
		t.Fatalf("Min with smaller bound = %d, want 30", m)
	}
	p.Release(a)
	if m := p.Min(100); m != 60 {
		t.Fatalf("Min after release = %d, want 60", m)
	}
	p.Release(b)
	if m := p.Min(100); m != 100 {
		t.Fatalf("Min after all released = %d, want 100", m)
	}
}

func TestPinsZeroPromoted(t *testing.T) {
	var p ReaderPins
	p.Init(0)
	s := p.Acquire(0)
	if s < 0 {
		t.Fatal("Acquire(0) failed")
	}
	// The slot must not look free (value 0 is the free sentinel).
	if m := p.Min(100); m != 1 {
		t.Fatalf("Min = %d, want promoted pin 1", m)
	}
	p.Release(s)
}

func TestPinsOverflow(t *testing.T) {
	var p ReaderPins
	p.Init(0)
	slots := make([]int, 0, DefaultPinSlots)
	for i := 0; i < DefaultPinSlots; i++ {
		s := p.Acquire(uint64(i + 1))
		if s < 0 {
			t.Fatalf("Acquire %d failed before the table was full", i)
		}
		slots = append(slots, s)
	}
	if s := p.Acquire(999); s != -1 {
		t.Fatalf("Acquire on full table = %d, want -1", s)
	}
	if p.Overflows() != 1 {
		t.Fatalf("Overflows = %d, want 1", p.Overflows())
	}
	p.Release(slots[17])
	if s := p.Acquire(999); s < 0 {
		t.Fatal("Acquire after release failed")
	}
}

func TestPinsConcurrent(t *testing.T) {
	var p ReaderPins
	p.Init(0)
	const workers = 16
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rt := uint64(w*iters + i + 1)
				s := p.Acquire(rt)
				if s < 0 {
					continue // table momentarily full; acceptable
				}
				if m := p.Min(rt + 1000); m > rt {
					t.Errorf("Min = %d > own pin %d", m, rt)
				}
				p.Release(s)
			}
		}(w)
	}
	wg.Wait()
	if m := p.Min(42); m != 42 {
		t.Fatalf("Min after quiesce = %d, want 42", m)
	}
}
