package gc

import (
	"sync"
	"testing"
)

func TestPinsAcquireReleaseMin(t *testing.T) {
	var p ReaderPins
	p.Init(0)
	if p.Slots() < DefaultPinSlots {
		t.Fatalf("Slots = %d, want at least %d", p.Slots(), DefaultPinSlots)
	}
	if m := p.Min(100); m != 100 {
		t.Fatalf("empty Min = %d, want bound 100", m)
	}
	a := p.Acquire(40)
	b := p.Acquire(60)
	if a < 0 || b < 0 {
		t.Fatalf("Acquire failed with free slots: %d %d", a, b)
	}
	if m := p.Min(100); m != 40 {
		t.Fatalf("Min = %d, want 40", m)
	}
	if m := p.Min(30); m != 30 {
		t.Fatalf("Min with smaller bound = %d, want 30", m)
	}
	p.Release(a)
	if m := p.Min(100); m != 60 {
		t.Fatalf("Min after release = %d, want 60", m)
	}
	p.Release(b)
	if m := p.Min(100); m != 100 {
		t.Fatalf("Min after all released = %d, want 100", m)
	}
}

func TestPinsZeroPromoted(t *testing.T) {
	var p ReaderPins
	p.Init(0)
	s := p.Acquire(0)
	if s < 0 {
		t.Fatal("Acquire(0) failed")
	}
	// The slot must not look free (value 0 is the free sentinel).
	if m := p.Min(100); m != 1 {
		t.Fatalf("Min = %d, want promoted pin 1", m)
	}
	p.Release(s)
}

func TestPinsOverflow(t *testing.T) {
	var p ReaderPins
	p.Init(0)
	total := p.Slots()
	slots := make([]int, 0, total)
	for i := 0; i < total; i++ {
		s := p.Acquire(uint64(i + 1))
		if s < 0 {
			t.Fatalf("Acquire %d failed before the table was full", i)
		}
		slots = append(slots, s)
	}
	if s := p.Acquire(999); s != -1 {
		t.Fatalf("Acquire on full table = %d, want -1", s)
	}
	if p.Overflows() != 1 {
		t.Fatalf("Overflows = %d, want 1", p.Overflows())
	}
	p.Release(slots[17])
	if s := p.Acquire(999); s < 0 {
		t.Fatal("Acquire after release failed")
	}
}

// TestPinsDistinctSlots: every concurrent Acquire must claim a distinct
// slot, across whatever stripe layout Init chose for this machine.
func TestPinsDistinctSlots(t *testing.T) {
	var p ReaderPins
	p.Init(0)
	total := p.Slots()
	seen := make(map[int]bool, total)
	for i := 0; i < total; i++ {
		s := p.Acquire(uint64(i + 1))
		if s < 0 {
			t.Fatalf("Acquire %d overflowed with %d slots", i, total)
		}
		if seen[s] {
			t.Fatalf("slot %d claimed twice", s)
		}
		seen[s] = true
	}
}

// TestPinsHintAffinity: after a release, the very next acquire on the same
// goroutine (hence, absent migration, the same P) should get the released
// slot back through the hint pool.
func TestPinsHintAffinity(t *testing.T) {
	var p ReaderPins
	p.Init(0)
	s := p.Acquire(10)
	if s < 0 {
		t.Fatal("Acquire failed")
	}
	p.Release(s)
	// Not guaranteed by the API (the runtime may purge the pool or migrate
	// the goroutine), so observe rather than assert-fail hard: on a quiet
	// test process this reliably hits.
	s2 := p.Acquire(11)
	if s2 != s {
		t.Logf("hint missed: got slot %d after releasing %d (legal, but unexpected on an idle box)", s2, s)
	}
	p.Release(s2)
}

// TestPinsMinCacheInvalidation: a pin published after Min cached a stripe
// minimum must be visible to the next Min — the stamp bump on Acquire
// invalidates the cached entry.
func TestPinsMinCacheInvalidation(t *testing.T) {
	var p ReaderPins
	p.Init(0)
	a := p.Acquire(50)
	if m := p.Min(100); m != 50 {
		t.Fatalf("Min = %d, want 50", m)
	}
	// The second identical call is served from the cache.
	if m := p.Min(100); m != 50 {
		t.Fatalf("cached Min = %d, want 50", m)
	}
	b := p.Acquire(20) // bumps the stripe stamp: cache entry now stale
	if m := p.Min(100); m != 20 {
		t.Fatalf("Min after new pin = %d, want 20 (stale cache trusted?)", m)
	}
	p.Release(b)
	if m := p.Min(100); m != 50 {
		t.Fatalf("Min after release = %d, want 50", m)
	}
	p.Release(a)
}

func TestPinsConcurrent(t *testing.T) {
	var p ReaderPins
	p.Init(0)
	const workers = 16
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rt := uint64(w*iters + i + 1)
				s := p.Acquire(rt)
				if s < 0 {
					continue // table momentarily full; acceptable
				}
				if m := p.Min(rt + 1000); m > rt {
					t.Errorf("Min = %d > own pin %d", m, rt)
				}
				p.Release(s)
			}
		}(w)
	}
	wg.Wait()
	if m := p.Min(42); m != 42 {
		t.Fatalf("Min after quiesce = %d, want 42", m)
	}
}
