package gc

import "sync/atomic"

// Epoch is a lightweight epoch-based reclamation guard for lock-free readers
// that are invisible to the transaction-table watermark — the single-version
// engine's skip-list cursors (1V has no timestamps at all) and the
// multiversion collector's own index traversals (which run outside any
// transaction). It reuses the ReaderPins slot table: readers publish the
// epoch they entered under, reclaimers stamp unlinked nodes with an advanced
// epoch, and a stamped node may be freed only once every published pin
// exceeds its stamp.
//
// Protocol (all operations are Go atomics, hence sequentially consistent):
//
//	reader:    p := clock.Load() + 1      // pin value
//	           pins.Acquire(p)            // publish BEFORE any node access
//	           ... traverse ...
//	           pins.Release(slot)
//	reclaimer: unlink node from every level
//	           s := clock.Add(1)          // stamp, AFTER the unlink stores
//	           ... later ...
//	           free if Quiesced(s):  unpinned == 0 && pins.Min(clock) > s
//
// Safety: a reader whose pin the quiescence scan observed has p > s, so its
// clock load followed the Add that produced s, which in turn followed the
// unlink stores — the traversal can no longer reach the node. A reader the
// scan missed published its pin after the scan's slot load, so every one of
// its traversal loads is ordered after the unlink stores too. Either way no
// reader that can still reach the node survives a successful Quiesced(s).
//
// When the slot table overflows, Enter falls back to a plain counter of
// unpinned readers; any nonzero count blocks quiescence entirely (safe,
// just slower to reclaim).
type Epoch struct {
	clock    atomic.Uint64
	pins     ReaderPins
	unpinned atomic.Int64
}

// Init sizes the pin slot table (DefaultPinSlots when n <= 0). Must be
// called before the epoch is shared.
func (e *Epoch) Init(n int) { e.pins.Init(n) }

// Enter pins the current epoch and returns the slot to pass to Exit. A
// negative slot means the table was full and the reader is counted in the
// unpinned fallback instead.
func (e *Epoch) Enter() int {
	p := e.clock.Load() + 1
	slot := e.pins.Acquire(p)
	if slot < 0 {
		e.unpinned.Add(1)
	}
	return slot
}

// Exit releases a pin returned by Enter. The reader must have dropped every
// node pointer obtained while pinned.
func (e *Epoch) Exit(slot int) {
	if slot < 0 {
		e.unpinned.Add(-1)
		return
	}
	e.pins.Release(slot)
}

// Stamp advances the epoch and returns its new value. Reclaimers call this
// after unlinking a batch of nodes; the returned stamp tags the batch.
func (e *Epoch) Stamp() uint64 { return e.clock.Add(1) }

// Quiesced reports whether every reader that could hold a node stamped at
// stamp has exited: no unpinned-fallback reader is active and every
// published pin exceeds the stamp. Note that a stamp quiesces only after a
// later Stamp call (the bound is the current clock), giving each batch at
// least one full epoch of grace.
func (e *Epoch) Quiesced(stamp uint64) bool {
	if e.unpinned.Load() != 0 {
		return false
	}
	return e.pins.Min(e.clock.Load()) > stamp
}

// Clear reports whether no reader at all is currently pinned (and no
// unpinned-fallback reader is active). Owners whose primary quiescence proof
// lives elsewhere (the MV watermark) use this as the auxiliary gate for
// readers that proof cannot see.
func (e *Epoch) Clear() bool {
	if e.unpinned.Load() != 0 {
		return false
	}
	const maxU64 = ^uint64(0)
	return e.pins.Min(maxU64) == maxU64
}

// Overflows reports how many Enter calls fell back to the unpinned counter.
func (e *Epoch) Overflows() uint64 { return e.pins.Overflows() }
