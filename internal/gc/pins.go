package gc

import "sync/atomic"

// DefaultPinSlots is the reader-pin table size used when the engine is not
// configured otherwise. Overflow is handled by the caller (fall back to
// transaction-table registration), so the size only bounds the fast path,
// not correctness; production-scale reader counts can raise it via
// core.Config.ReaderPinSlots.
const DefaultPinSlots = 128

// pinSlot is one published read timestamp, padded to a cache line so
// neighbouring pins don't false-share under concurrent Acquire/Release.
type pinSlot struct {
	v atomic.Uint64
	_ [56]byte
}

// ReaderPins publishes the read timestamps of transactions that are NOT
// registered in the transaction table: read-only snapshot readers and
// lazily-registered batch transactions. The garbage collector folds the
// minimum pinned timestamp into its watermark, so versions (and pooled
// transaction objects) such a reader can still see are never recycled under
// it.
//
// Protocol (the ordering matters; Go atomics are sequentially consistent):
//
//	reader: p := oracle.Current()     // provisional pin
//	        slot := pins.Acquire(p)   // publish BEFORE choosing a read time
//	        rt := oracle.Current()    // actual read time, rt >= p
//	gc:     cur := oracle.Current()   // BEFORE scanning pins
//	        wm := pins.Min(min(tableMinima, cur))
//
// If the collector's scan observes the pin, wm <= p <= rt. If it misses the
// pin, the scan's load of the slot precedes the reader's store in the total
// order, so the collector's earlier Current() load precedes the reader's
// later one: rt >= cur >= wm. Either way wm <= rt, and a version is only
// garbage when its end timestamp is <= wm, which the reader (visibility
// requires rt < end) could never see. The same argument covers pointers the
// reader already holds: recycling a version or transaction object stamped at
// S requires wm > S, and S is always drawn after the pin value, so S >= p.
//
// Init sizes the slot table; an uninitialized ReaderPins has no slots, so
// every Acquire overflows into the registered fallback (safe, just slow).
type ReaderPins struct {
	slots []pinSlot
	next  atomic.Uint32
	full  atomic.Uint64
}

// Init sizes the pin table to n slots (DefaultPinSlots when n <= 0). It must
// be called before the table is shared; it is not safe to resize a table
// that readers are already using.
func (p *ReaderPins) Init(n int) {
	if n <= 0 {
		n = DefaultPinSlots
	}
	p.slots = make([]pinSlot, n)
}

// Slots returns the configured slot count.
func (p *ReaderPins) Slots() int { return len(p.slots) }

// Acquire claims a free slot, publishes rt in it, and returns the slot
// index, or -1 when every slot is occupied (the caller must then fall back
// to a mechanism the watermark can see, e.g. table registration). rt of 0
// (pristine oracle) is promoted to 1 so the slot never looks free; nothing
// is visible at read time 0, so the stricter pin is harmless.
func (p *ReaderPins) Acquire(rt uint64) int {
	n := uint32(len(p.slots))
	if n == 0 {
		p.full.Add(1)
		return -1
	}
	if rt == 0 {
		rt = 1
	}
	start := p.next.Add(1)
	for i := uint32(0); i < n; i++ {
		s := &p.slots[(start+i)%n].v
		if s.Load() == 0 && s.CompareAndSwap(0, rt) {
			return int((start + i) % n)
		}
	}
	p.full.Add(1)
	return -1
}

// Release frees a slot returned by Acquire. The owner must have finished
// every read that depended on the pin.
func (p *ReaderPins) Release(slot int) {
	p.slots[slot].v.Store(0)
}

// Min folds the pinned timestamps into bound: it returns the smallest
// occupied pin, or bound if no pin is smaller. The collector calls this
// AFTER loading the oracle (see the type comment for why the order matters).
func (p *ReaderPins) Min(bound uint64) uint64 {
	m := bound
	for i := range p.slots {
		if v := p.slots[i].v.Load(); v != 0 && v < m {
			m = v
		}
	}
	return m
}

// Overflows reports how many Acquire calls found every slot occupied.
func (p *ReaderPins) Overflows() uint64 { return p.full.Load() }
