package gc

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultPinSlots is the minimum total reader-pin capacity. The table is
// striped per processor (see ReaderPins), so the real capacity is the stripe
// count times the per-stripe slot count, never below this. Overflow is
// handled by the caller (fall back to transaction-table registration), so
// capacity only bounds the fast path, not correctness.
const DefaultPinSlots = 128

// minStripeSlots is the floor on slots per stripe: enough that a burst of
// readers migrating onto one processor rarely spills to a neighbour stripe.
const minStripeSlots = 8

// pinSlot is one published read timestamp, padded to a cache line so
// neighbouring pins don't false-share under concurrent Acquire/Release.
//
//mvlint:padded
type pinSlot struct {
	v atomic.Uint64 //mvlint:cacheline
	_ [56]byte
}

// stripeCache is an immutable (stamp, min) pair: the minimum pinned
// timestamp of a stripe's slots, valid exactly while the stripe's stamp
// still equals stamp. Immutability is what makes the cache safe under
// concurrent Min calls — a torn pair (one call's min with another's stamp)
// can never be observed, only a whole entry that is either current or
// provably stale.
type stripeCache struct {
	stamp uint64
	min   uint64 // ^uint64(0) when the stripe held no pins at stamp
}

// pinStripe is one processor's portion of the pin table. Acquire bumps stamp
// BEFORE and AFTER publishing a pin into a slot (a seqlock-style double bump;
// see the ReaderPins comment for why one bump is not enough); Release bumps
// it once, after clearing a slot. The padding keeps a stripe's hot word (the
// stamp, touched by every local Acquire/Release) off its neighbours' cache
// lines; the slots themselves are individually padded.
//
//mvlint:padded
type pinStripe struct {
	stamp atomic.Uint64 //mvlint:cacheline
	cache atomic.Pointer[stripeCache]
	slots []pinSlot
	_     [24]byte
}

// pinHint is a preallocated per-slot token circulated through a sync.Pool to
// give Acquire processor affinity: Release puts the freed slot's token into
// the pool, and sync.Pool's per-P caching hands it back to the next Acquire
// on the same processor, which reclaims the (likely still free, likely
// cache-hot) slot with a single CAS. Tokens are allocated once in Init, so
// the pool never allocates in steady state; losing tokens to the runtime's
// pool purge just means the next Acquire takes the cold path.
type pinHint struct{ slot int32 }

// ReaderPins publishes the read timestamps of transactions that are NOT
// registered in the transaction table: read-only snapshot readers and
// lazily-registered batch transactions. The garbage collector folds the
// minimum pinned timestamp into its watermark, so versions (and pooled
// transaction objects) such a reader can still see are never recycled under
// it.
//
// The table is striped into runtime.NumCPU padded stripes so concurrent
// readers on different processors publish into different cache lines, and
// the collector's Min can cache a per-stripe minimum instead of rescanning
// every slot each round.
//
// Publication protocol (the ordering matters; Go atomics are sequentially
// consistent):
//
//	reader: p := oracle.Current()     // provisional pin
//	        slot := pins.Acquire(p)   // stamp bump, publish, stamp bump —
//	                                  // all BEFORE choosing a read time
//	        rt := oracle.Current()    // actual read time, rt >= p
//	gc:     cur := oracle.Current()   // BEFORE scanning pins
//	        wm := pins.Min(min(tableMinima, cur))
//
// If the collector observes the pin — in a slot scan or through a cache
// entry whose scan saw the publish — then wm <= p <= rt. If a direct slot
// scan misses the pin, the slot load that missed it precedes the publish in
// the total order, so the collector's earlier Current() load precedes the
// reader's later one: rt >= cur >= wm. Either way wm <= rt, and a version is
// only garbage when its end timestamp is <= wm, which the reader (visibility
// requires rt < end) could never see. The same argument covers pointers the
// reader already holds: recycling a version or transaction object stamped at
// S requires wm > S, and S is always drawn after the pin value, so S >= p.
//
// The cache needs the SECOND stamp bump, after the publish. With only the
// pre-publish bump there is a poisoning interleaving: the reader bumps the
// stamp, Min loads the post-bump stamp, Min's slot scan runs before the
// publish lands and misses the pin, and the installed cache entry — stamped
// with the current value — keeps validating on every later call while the
// reader traverses, hiding its pin from the watermark indefinitely. The
// post-publish bump closes this: an entry whose scan missed a published pin
// carries a stamp the pin's second bump has already exceeded by the time
// Acquire returns, so it can only validate while the reader is still inside
// Acquire — at which point the reader holds no pointers and every load of
// its upcoming traversal follows the scan that missed it, which is exactly
// the scan-miss case above.
//
// Release clears the slot and then bumps the stripe stamp once; a cache
// entry that predates a release is merely conservative (it still contains
// the released pin), never unsafe.
//
// Init sizes the table; an uninitialized ReaderPins has no stripes, so every
// Acquire overflows into the registered fallback (safe, just slow).
type ReaderPins struct {
	stripes []pinStripe
	per     int // slots per stripe
	full    atomic.Uint64
	rr      atomic.Uint32 // cold-path stripe rotor (no hint available)
	hints   sync.Pool
	hintOf  []pinHint // one preallocated token per slot, indexed by slot
}

// Init sizes the pin table: runtime.NumCPU (rounded up to a power of two)
// stripes with total capacity at least max(n, DefaultPinSlots) slots. It
// must be called before the table is shared; it is not safe to resize a
// table that readers are already using.
func (p *ReaderPins) Init(n int) {
	ns := 1
	for ns < runtime.NumCPU() {
		ns <<= 1
	}
	if n <= 0 {
		n = DefaultPinSlots
	}
	per := (n + ns - 1) / ns
	if per < minStripeSlots {
		per = minStripeSlots
	}
	p.per = per
	p.stripes = make([]pinStripe, ns)
	slots := make([]pinSlot, ns*per)
	for i := range p.stripes {
		p.stripes[i].slots = slots[i*per : (i+1)*per : (i+1)*per]
	}
	p.hintOf = make([]pinHint, ns*per)
	for i := range p.hintOf {
		p.hintOf[i].slot = int32(i)
	}
	// p.hints needs no setup: tokens enter only through Release, and Get on
	// an empty pool returns nil (no New), which Acquire treats as "no hint".
}

// Slots returns the total slot capacity.
func (p *ReaderPins) Slots() int { return len(p.stripes) * p.per }

// Stripes returns the stripe count (diagnostics and tests).
func (p *ReaderPins) Stripes() int { return len(p.stripes) }

// Acquire claims a free slot, publishes rt in it, and returns the slot
// index, or -1 when every slot is occupied (the caller must then fall back
// to a mechanism the watermark can see, e.g. table registration). rt of 0
// (pristine oracle) is promoted to 1 so the slot never looks free; nothing
// is visible at read time 0, so the stricter pin is harmless.
//
//mvlint:noalloc
func (p *ReaderPins) Acquire(rt uint64) int {
	ns := len(p.stripes)
	if ns == 0 {
		p.full.Add(1)
		return -1
	}
	if rt == 0 {
		rt = 1
	}
	// Affinity fast path: the slot most recently released on this
	// processor, handed back by the pool's per-P cache.
	base := 0
	if h, _ := p.hints.Get().(*pinHint); h != nil && int(h.slot) < ns*p.per {
		i := int(h.slot)
		st := &p.stripes[i/p.per]
		st.stamp.Add(1) // BEFORE the publish; see the type comment
		s := &st.slots[i%p.per].v
		if s.Load() == 0 && s.CompareAndSwap(0, rt) {
			st.stamp.Add(1) // AFTER the publish; see the type comment
			return i
		}
		base = i / p.per // slot taken meanwhile: probe its stripe first
	} else {
		base = int(p.rr.Add(1)) & (ns - 1)
	}
	for off := 0; off < ns; off++ {
		si := (base + off) & (ns - 1)
		st := &p.stripes[si]
		st.stamp.Add(1) // covers every publish attempt in this stripe
		for j := range st.slots {
			s := &st.slots[j].v
			if s.Load() == 0 && s.CompareAndSwap(0, rt) {
				st.stamp.Add(1) // AFTER the publish; see the type comment
				return si*p.per + j
			}
		}
	}
	p.full.Add(1)
	return -1
}

// Release frees a slot returned by Acquire and recycles its affinity token.
// The owner must have finished every read that depended on the pin.
//
//mvlint:noalloc
func (p *ReaderPins) Release(slot int) {
	st := &p.stripes[slot/p.per]
	st.slots[slot%p.per].v.Store(0)
	st.stamp.Add(1)
	p.hints.Put(&p.hintOf[slot])
}

// Min folds the pinned timestamps into bound: it returns the smallest
// occupied pin, or bound if no pin is smaller. The collector calls this
// AFTER loading the oracle (see the type comment for why the order matters).
//
// Each stripe's scan result is cached against the stripe's stamp: a stripe
// untouched since the last scan is folded in O(1) from the cache, so on a
// many-core box a collection round reads one cache line per idle stripe
// instead of walking every slot. The cache entry is an immutable pair
// installed by CompareAndSwap, so racing Min calls can drop each other's
// entries (the next round rescans) but never mix one call's minimum with
// another's stamp.
func (p *ReaderPins) Min(bound uint64) uint64 {
	m := bound
	for i := range p.stripes {
		st := &p.stripes[i]
		s1 := st.stamp.Load() // BEFORE the slot scan
		c := st.cache.Load()
		if c == nil || c.stamp != s1 {
			sm := ^uint64(0)
			for j := range st.slots {
				if v := st.slots[j].v.Load(); v != 0 && v < sm {
					sm = v
				}
			}
			// Publish for the next round; losing the race just means a
			// rescan. A pin our scan missed finishes its post-publish stamp
			// bump before the pinning Acquire returns, so the entry stops
			// validating before that reader can hold any node pointer.
			nc := &stripeCache{stamp: s1, min: sm}
			st.cache.CompareAndSwap(c, nc)
			c = nc
		}
		if c.min < m {
			m = c.min
		}
	}
	return m
}

// Overflows reports how many Acquire calls found every slot occupied.
func (p *ReaderPins) Overflows() uint64 { return p.full.Load() }
