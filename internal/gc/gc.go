// Package gc reclaims obsolete versions (Section 2.3).
//
// Every update creates a new version, so old versions must be discarded once
// they are no longer visible to any transaction. A version is garbage when
// its end timestamp precedes the begin timestamp of the oldest active
// transaction (the watermark): no current transaction's logical read time
// can fall inside its valid interval, and future transactions read even
// later. Versions created by aborted transactions (begin = infinity) are
// garbage immediately.
//
// Collection is cooperative, as in the paper's prototype: transactions
// retire their replaced versions as part of postprocessing, and worker
// threads periodically call Collect to unlink a bounded amount of garbage
// from the indexes. The work is fully parallelizable; the retire queue is
// sharded to keep contention low.
package gc

import (
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

const queueShards = 16

type retired struct {
	table *storage.Table
	v     *storage.Version
}

// Collector tracks retired versions and unlinks them once they fall below
// the visibility watermark.
type Collector struct {
	// watermark returns the oldest logical read time any current or future
	// transaction can use (the minimum active begin timestamp, or the
	// current clock when idle).
	watermark func() uint64
	// clock returns the current value of the engine's timestamp counter;
	// optional, required only for recycling (SetRecycler).
	clock func() uint64
	// free receives versions that are safe to reuse: unlinked from every
	// index, with every transaction that was active at unlink time finished.
	free func(*storage.Version)

	// lastWM caches the watermark computed by the most recent Collect round,
	// so per-transaction bookkeeping (e.g. the engine's transaction-object
	// graveyard) reads one atomic instead of recomputing the minimum.
	lastWM atomic.Uint64

	shards   [queueShards]queueShard
	next     atomic.Uint64
	pending  atomic.Int64
	retireCt atomic.Uint64
	reclaim  atomic.Uint64

	// freeMu guards freeq: versions unlinked from the indexes, stamped with
	// the clock value at unlink, waiting for the watermark to pass so no
	// in-flight reader can still hold them.
	freeMu sync.Mutex
	freeq  []freeEntry
}

type freeEntry struct {
	v     *storage.Version
	stamp uint64
}

type queueShard struct {
	mu sync.Mutex
	q  []retired
}

// NewCollector creates a collector. watermark must be safe for concurrent
// use.
func NewCollector(watermark func() uint64) *Collector {
	return &Collector{watermark: watermark}
}

// SetRecycler enables version recycling: unlinked versions are stamped with
// clock() and handed to free once the watermark exceeds their stamp. Any
// transaction that could have reached the version through an index was
// active before the unlink, so its begin timestamp is below the stamp; when
// the watermark (minimum active begin) passes the stamp, no such transaction
// remains and the version can be reused. Must be called before the collector
// is shared.
func (c *Collector) SetRecycler(clock func() uint64, free func(*storage.Version)) {
	c.clock = clock
	c.free = free
}

// Watermark returns the watermark cached by the most recent Collect round
// (zero before the first round). Callers that only need a conservative
// bound — anything below it is quiesced — can use this instead of
// recomputing the minimum.
func (c *Collector) Watermark() uint64 { return c.lastWM.Load() }

// drainFree hands every quiesced free-list version to the recycler.
func (c *Collector) drainFree(wm uint64) {
	if c.free == nil {
		return
	}
	c.freeMu.Lock()
	n := 0
	for n < len(c.freeq) && c.freeq[n].stamp < wm {
		c.free(c.freeq[n].v)
		n++
	}
	if n > 0 {
		m := copy(c.freeq, c.freeq[n:])
		clear(c.freeq[m:])
		c.freeq = c.freeq[:m]
	}
	c.freeMu.Unlock()
}

// Retire hands a replaced or aborted version to the collector. The version's
// End word must already be finalized (a timestamp, or begin = infinity for
// aborted creations).
func (c *Collector) Retire(table *storage.Table, v *storage.Version) {
	i := c.next.Add(1) % queueShards
	s := &c.shards[i]
	s.mu.Lock()
	s.q = append(s.q, retired{table, v})
	s.mu.Unlock()
	c.retireCt.Add(1)
	c.pending.Add(1)
}

// Collect examines up to limit retired versions, unlinking those that are
// garbage and requeueing the rest. It returns the number reclaimed. Workers
// call this cooperatively between transactions.
func (c *Collector) Collect(limit int) int {
	// Compute the watermark once per round (O(shards) atomic loads), cache
	// it for other consumers, and release quiesced versions to the recycler
	// — even when no new garbage is pending, so read-mostly workloads still
	// advance recycling.
	wm := c.watermark()
	c.lastWM.Store(wm)
	c.drainFree(wm)
	if c.pending.Load() == 0 {
		return 0 // fast path for read-mostly workloads
	}
	if limit <= 0 {
		limit = 1 << 30
	}
	reclaimed := 0
	examined := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		q := s.q
		var keep []retired
		for len(q) > 0 && examined < limit {
			r := q[0]
			q = q[1:]
			examined++
			if r.v.IsGarbage(wm) {
				// Unlink outside the shard lock would be nicer, but unlink
				// latches individual buckets, so the critical section stays
				// short either way.
				if r.table.Unlink(r.v) {
					reclaimed++
					if c.free != nil {
						c.freeMu.Lock()
						c.freeq = append(c.freeq, freeEntry{r.v, c.clock()})
						c.freeMu.Unlock()
					}
				}
				c.pending.Add(-1)
			} else {
				keep = append(keep, r)
			}
		}
		s.q = append(keep, q...)
		s.mu.Unlock()
		if examined >= limit {
			break
		}
	}
	c.reclaim.Add(uint64(reclaimed))
	return reclaimed
}

// Pending returns the number of versions awaiting collection.
func (c *Collector) Pending() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.q)
		s.mu.Unlock()
	}
	return n
}

// Stats returns cumulative retire and reclaim counts.
func (c *Collector) Stats() (retired, reclaimed uint64) {
	return c.retireCt.Load(), c.reclaim.Load()
}
