package gc

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/field"
	"repro/internal/storage"
)

func pay(key uint64) []byte {
	p := make([]byte, 8)
	binary.LittleEndian.PutUint64(p, key)
	return p
}

func keyOf(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }

func newTable(t *testing.T) *storage.Table {
	t.Helper()
	tbl, err := storage.NewTable(storage.TableSpec{
		Name:    "t",
		Indexes: []storage.IndexSpec{{Name: "pk", Key: keyOf, Buckets: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func chainLen(tbl *storage.Table, key uint64) int {
	n := 0
	for v := tbl.Index(0).Lookup(key).Head(); v != nil; v = v.Next(0) {
		n++
	}
	return n
}

func TestCollectRespectsWatermark(t *testing.T) {
	tbl := newTable(t)
	var wm atomic.Uint64
	c := NewCollector(func() uint64 { return wm.Load() })

	// Three superseded versions ending at 10, 20, 30.
	for _, end := range []uint64{10, 20, 30} {
		v := storage.NewVersion(pay(1), 1, field.FromTS(end-5), field.FromTS(end))
		tbl.Insert(v)
		c.Retire(tbl, v)
	}
	wm.Store(5)
	if n := c.Collect(0); n != 0 {
		t.Fatalf("reclaimed %d below watermark", n)
	}
	wm.Store(20)
	if n := c.Collect(0); n != 2 {
		t.Fatalf("reclaimed %d, want 2 (ends 10 and 20)", n)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d", c.Pending())
	}
	wm.Store(1 << 60)
	if n := c.Collect(0); n != 1 {
		t.Fatalf("reclaimed %d, want 1", n)
	}
	if chainLen(tbl, 1) != 0 {
		t.Fatalf("chain length %d after full collection", chainLen(tbl, 1))
	}
	retired, reclaimed := c.Stats()
	if retired != 3 || reclaimed != 3 {
		t.Fatalf("stats = %d/%d", retired, reclaimed)
	}
}

func TestAbortedVersionsCollectImmediately(t *testing.T) {
	tbl := newTable(t)
	c := NewCollector(func() uint64 { return 0 })
	v := storage.NewVersion(pay(1), 1, field.FromTS(field.Infinity), field.FromTS(field.Infinity))
	tbl.Insert(v)
	c.Retire(tbl, v)
	if n := c.Collect(0); n != 1 {
		t.Fatalf("reclaimed %d, want 1 (aborted)", n)
	}
}

func TestCollectLimit(t *testing.T) {
	tbl := newTable(t)
	c := NewCollector(func() uint64 { return 1 << 60 })
	for i := 0; i < 100; i++ {
		v := storage.NewVersion(pay(uint64(i)), 1, field.FromTS(1), field.FromTS(2))
		tbl.Insert(v)
		c.Retire(tbl, v)
	}
	n := c.Collect(10)
	if n == 0 || n > 10 {
		t.Fatalf("limited collect reclaimed %d", n)
	}
	total := n
	for i := 0; i < 20 && total < 100; i++ {
		total += c.Collect(10)
	}
	if total != 100 {
		t.Fatalf("total reclaimed %d", total)
	}
}

func TestConcurrentRetireCollect(t *testing.T) {
	tbl := newTable(t)
	c := NewCollector(func() uint64 { return 1 << 60 })
	var wg sync.WaitGroup
	const workers, per = 4, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := storage.NewVersion(pay(uint64(w*per+i)), 1, field.FromTS(1), field.FromTS(2))
				tbl.Insert(v)
				c.Retire(tbl, v)
				if i%16 == 0 {
					c.Collect(32)
				}
			}
		}(w)
	}
	wg.Wait()
	for c.Pending() > 0 {
		if c.Collect(0) == 0 && c.Pending() > 0 {
			t.Fatalf("stuck with %d pending", c.Pending())
		}
	}
	_, reclaimed := c.Stats()
	if reclaimed != workers*per {
		t.Fatalf("reclaimed %d, want %d", reclaimed, workers*per)
	}
}
