package gc

import "testing"

func TestEpochQuiesce(t *testing.T) {
	var e Epoch
	e.Init(4)
	if !e.Clear() {
		t.Fatal("fresh epoch not clear")
	}

	// A stamp never quiesces in its own epoch (the bound is the clock).
	s1 := e.Stamp()
	if e.Quiesced(s1) {
		t.Fatal("stamp quiesced without a later epoch")
	}
	s2 := e.Stamp()
	if !e.Quiesced(s1) {
		t.Fatal("s1 not quiesced with no pins and a later epoch")
	}

	// A reader pinned before the next stamp blocks it.
	slot := e.Enter()
	if slot < 0 {
		t.Fatal("Enter overflowed a 4-slot table")
	}
	if e.Clear() {
		t.Fatal("Clear with an active pin")
	}
	s3 := e.Stamp()
	if e.Quiesced(s3) {
		t.Fatal("s3 quiesced under a pin published before it")
	}
	// s2 < pin value (clock was s2 when the reader entered, pin = s2+1 = s3),
	// so s2 is still blocked too: pin !> s2 is false? pin = s3 > s2, so s2
	// quiesces — the reader entered after s2's batch was unlinked.
	if !e.Quiesced(s2) {
		t.Fatal("s2 blocked by a reader that entered after it")
	}
	e.Exit(slot)
	if !e.Clear() {
		t.Fatal("exit did not release the pin")
	}
	e.Stamp() // s3 needs a later epoch before it can quiesce
	if !e.Quiesced(s3) {
		t.Fatal("s3 not quiesced after exit and a later epoch")
	}
}

func TestEpochOverflowFallback(t *testing.T) {
	var e Epoch
	e.Init(1)
	// The striped pin table has a per-stripe capacity floor, so fill it
	// completely before forcing the overflow path.
	total := e.pins.Slots()
	held := make([]int, 0, total)
	for i := 0; i < total; i++ {
		s := e.Enter()
		if s < 0 {
			t.Fatalf("Enter %d overflowed before the table was full", i)
		}
		held = append(held, s)
	}
	b := e.Enter() // table full: unpinned fallback
	if b >= 0 {
		t.Fatal("Enter got a slot in a full table")
	}
	if e.Overflows() != 1 {
		t.Fatalf("Overflows = %d, want 1", e.Overflows())
	}
	for _, s := range held {
		e.Exit(s)
	}
	s := e.Stamp()
	e.Stamp()
	if e.Quiesced(s) || e.Clear() {
		t.Fatal("unpinned reader did not block quiescence")
	}
	e.Exit(b)
	if !e.Quiesced(s) || !e.Clear() {
		t.Fatal("quiescence blocked after all readers exited")
	}
}
