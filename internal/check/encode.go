package check

// Wire codec for fuzzing the checker over encoded histories.
//
// FuzzValidateIndexed decodes arbitrary byte strings into multi-table
// histories and differentially validates them: the incremental checker and
// the O(model) rebuild reference must agree verdict-for-verdict. The format
// is deliberately total — any byte string decodes to some history — so the
// fuzzer explores the checker, not a parser's error paths.
//
// Layout: a stream of fixed-width ops over two tables ("a", "b") and two
// index key spaces ("" primary and "ix", value%16 over table keys). Keys
// are confined to [0, 48) and values to [0, 256) so collisions (the
// interesting cases: duplicate index keys, overwrites, delete/re-insert)
// are dense. Truncated trailing ops are dropped.
const (
	opInitial   = 0 // table, key, value: initial row (ignored once a txn began)
	opBegin     = 1 // delta: start txn at prev EndTS + delta (0 ⇒ duplicate-stamp path)
	opRead      = 2 // table, key, value, found
	opWrite     = 3 // table, key, value
	opDelete    = 4 // table, key
	opScan      = 5 // table, index, lo, span, n, then n observed keys
	opConstrain = 6 // class: attach a constraint (ignored once a txn began)
	numOps      = 7

	encKeys   = 48
	encTables = 2
)

func encTable(b byte) string {
	if b%encTables == 0 {
		return "a"
	}
	return "b"
}

func encTableByte(t string) byte {
	if t == "a" {
		return 0
	}
	return 1
}

// encIndexers is the fixed index universe of the codec: one non-unique
// secondary key space shared by both tables.
func encIndexers() map[string]IndexKeyFn {
	return map[string]IndexKeyFn{
		"ix": func(key, value uint64) (uint64, bool) { return value % 16, value%7 != 0 },
	}
}

// encConstraint builds the constraint selected by an opConstrain class byte.
// Fresh instances per call: constraints are stateful across one Validate.
func encConstraint(class byte) Constraint {
	switch class % 3 {
	case 0:
		return NewConservation("sum-a", []string{"a"},
			func(table string, key, value uint64) int64 { return int64(value) })
	case 1:
		return NewRefIntegrity("b-ref-a", "b", "a",
			func(childKey, childValue uint64) (uint64, bool) {
				return childValue % encKeys, childValue%5 != 0
			})
	default:
		return NewTxnRule("writes-capped", func(t *Txn, get Lookup) error {
			return nil // structurally trivial: exercises the hook, never fires
		})
	}
}

// decodeHistory decodes data into a History. Total: always returns a
// (possibly empty) history.
func decodeHistory(data []byte) *History {
	h := &History{
		Initial:  map[string]map[uint64]uint64{"a": {}, "b": {}},
		Indexers: encIndexers(),
	}
	var cur *Txn
	var endTS uint64
	i := 0
	take := func(n int) ([]byte, bool) {
		if i+n > len(data) {
			return nil, false
		}
		b := data[i : i+n]
		i += n
		return b, true
	}
	for i < len(data) {
		op := data[i] % numOps
		i++
		switch op {
		case opInitial:
			b, ok := take(3)
			if !ok {
				return h
			}
			if cur == nil {
				h.Initial[encTable(b[0])][uint64(b[1])%encKeys] = uint64(b[2])
			}
		case opBegin:
			b, ok := take(1)
			if !ok {
				return h
			}
			endTS += uint64(b[0]) % 4 // delta 0 keeps the previous stamp: duplicate-EndTS path
			h.Txns = append(h.Txns, Txn{EndTS: endTS})
			cur = &h.Txns[len(h.Txns)-1]
		case opRead:
			b, ok := take(4)
			if !ok {
				return h
			}
			if cur != nil {
				cur.Reads = append(cur.Reads, Read{
					Table: encTable(b[0]), Key: uint64(b[1]) % encKeys,
					Value: uint64(b[2]), Found: b[3]%2 == 1,
				})
			}
		case opWrite:
			b, ok := take(3)
			if !ok {
				return h
			}
			if cur != nil {
				cur.Writes = append(cur.Writes, Write{
					Table: encTable(b[0]), Key: uint64(b[1]) % encKeys, Value: uint64(b[2]),
				})
			}
		case opDelete:
			b, ok := take(2)
			if !ok {
				return h
			}
			if cur != nil {
				cur.Writes = append(cur.Writes, Write{
					Table: encTable(b[0]), Op: WriteDelete, Key: uint64(b[1]) % encKeys,
				})
			}
		case opScan:
			b, ok := take(5)
			if !ok {
				return h
			}
			n := int(b[4] % 8)
			keys, ok := take(n)
			if !ok {
				return h
			}
			if cur == nil {
				continue
			}
			index := ""
			if b[1]%2 == 1 {
				index = "ix"
			}
			lo := uint64(b[2]) % encKeys
			rr := RangeRead{Table: encTable(b[0]), Index: index, Lo: lo, Hi: lo + uint64(b[3])%16}
			for _, k := range keys {
				rr.Keys = append(rr.Keys, uint64(k)%encKeys)
			}
			cur.RangeReads = append(cur.RangeReads, rr)
		case opConstrain:
			b, ok := take(1)
			if !ok {
				return h
			}
			if cur == nil && len(h.Constraints) < 4 {
				h.Constraints = append(h.Constraints, encConstraint(b[0]))
			}
		}
	}
	return h
}

// encodeHistory is decodeHistory's inverse for histories inside the codec's
// universe (tables a/b, keys < 48, index "" or "ix"); used to seed the fuzz
// corpus from the mutation tests. Values are truncated to a byte.
func encodeHistory(h *History) []byte {
	var out []byte
	for _, table := range []string{"a", "b"} {
		for k, v := range h.Initial[table] {
			out = append(out, opInitial, encTableByte(table), byte(k), byte(v))
		}
	}
	for i := range h.Constraints {
		var class byte
		switch h.Constraints[i].(type) {
		case *Conservation:
			class = 0
		case *RefIntegrity:
			class = 1
		default:
			class = 2
		}
		out = append(out, opConstrain, class)
	}
	var prev uint64
	for i := range h.Txns {
		t := &h.Txns[i]
		delta := byte(1)
		if t.EndTS == prev {
			delta = 0
		}
		prev = t.EndTS
		out = append(out, opBegin, delta)
		for _, r := range t.Reads {
			found := byte(0)
			if r.Found {
				found = 1
			}
			out = append(out, opRead, encTableByte(r.Table), byte(r.Key), byte(r.Value), found)
		}
		for _, rr := range t.RangeReads {
			idx := byte(0)
			if rr.Index != "" {
				idx = 1
			}
			n := len(rr.Keys)
			if n > 7 {
				n = 7
			}
			out = append(out, opScan, encTableByte(rr.Table), idx, byte(rr.Lo), byte(rr.Hi-rr.Lo), byte(n))
			for _, k := range rr.Keys[:n] {
				out = append(out, byte(k))
			}
		}
		for _, w := range t.Writes {
			if w.Op == WriteDelete {
				out = append(out, opDelete, encTableByte(w.Table), byte(w.Key))
			} else {
				out = append(out, opWrite, encTableByte(w.Table), byte(w.Key), byte(w.Value))
			}
		}
	}
	return out
}
