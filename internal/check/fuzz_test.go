package check

import "testing"

// FuzzValidateIndexed differentially fuzzes the checker over encoded
// multi-table histories: whatever history the bytes decode to, the
// incremental checker and the O(model) rebuild reference must reach the
// same verdict, down to the error string. The corpus is seeded from the
// bank mutation cases (encoded through the codec) so the fuzzer starts at
// histories already known to exercise every violation class.
func FuzzValidateIndexed(f *testing.F) {
	for _, m := range bankMutations() {
		f.Add(encodeHistory(m.build()))
	}
	for seed := uint64(1); seed <= 2; seed++ {
		f.Add(encodeHistory(Synthetic(encKeys, 40, 8, seed)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e1 := decodeHistory(data).Validate()
		e2 := decodeHistory(data).ValidateRebuild()
		if errString(e1) != errString(e2) {
			t.Fatalf("checkers disagree on %x:\n fast: %v\n slow: %v", data, e1, e2)
		}
	})
}
