package check

import (
	"fmt"
)

// Lookup reads the replay model's pre-transaction state: the committed value
// of (table, key) just before the transaction under evaluation applies.
type Lookup func(table string, key uint64) (value uint64, ok bool)

// Constraint is a declared cross-table invariant validated during replay.
// The checker drives each constraint through the replay lifecycle:
//
//   - Init observes every initial row once, before replay (in no particular
//     order — implementations must be order-independent).
//   - Begin sees each transaction's full footprint with pre-state access,
//     before its writes apply: the hook for per-transaction structural rules
//     (balanced transfers, cross-table write coupling).
//   - Apply observes each write as it is applied, with the overwritten state,
//     so implementations can maintain their invariant incrementally instead
//     of rescanning the model.
//   - Check runs after each transaction's writes have applied; a non-nil
//     error is reported as a ConstraintViolation at that end timestamp.
//
// A Constraint instance accumulates replay state and must not be shared
// between or reused across Validate calls.
type Constraint interface {
	Name() string
	Init(table string, key, value uint64)
	Begin(t *Txn, get Lookup) error
	Apply(w Write, old uint64, hadOld bool)
	Check(endTS uint64) error
}

// ConstraintViolation reports a declared cross-table invariant failing at a
// serialization point of the replayed history.
type ConstraintViolation struct {
	EndTS      uint64
	Constraint string
	Detail     string
}

// Error implements error.
func (v *ConstraintViolation) Error() string {
	return fmt.Sprintf("check: txn@%d violates constraint %q: %s", v.EndTS, v.Constraint, v.Detail)
}

// Conservation asserts that the sum of amount(table, key, value) over every
// live row of the named tables is the same at every transaction boundary as
// it was in the initial state — the bank invariant: transfers move money,
// they never create or destroy it.
type Conservation struct {
	name   string
	tables map[string]bool
	amount func(table string, key, value uint64) int64
	sum    int64
	want   int64
	armed  bool
}

// NewConservation builds a Conservation constraint over the given tables.
// amount maps a row to its contribution (rows of other tables contribute
// nothing); the expected total is captured from the initial state.
func NewConservation(name string, tables []string, amount func(table string, key, value uint64) int64) *Conservation {
	ts := make(map[string]bool, len(tables))
	for _, t := range tables {
		ts[t] = true
	}
	return &Conservation{name: name, tables: ts, amount: amount}
}

// Name implements Constraint.
func (c *Conservation) Name() string { return c.name }

// Init implements Constraint.
func (c *Conservation) Init(table string, key, value uint64) {
	if c.tables[table] {
		c.sum += c.amount(table, key, value)
	}
}

// Begin implements Constraint; the first call latches the expected total.
func (c *Conservation) Begin(t *Txn, get Lookup) error {
	if !c.armed {
		c.want = c.sum
		c.armed = true
	}
	return nil
}

// Apply implements Constraint.
func (c *Conservation) Apply(w Write, old uint64, hadOld bool) {
	if !c.tables[w.Table] {
		return
	}
	if hadOld {
		c.sum -= c.amount(w.Table, w.Key, old)
	}
	if w.Op != WriteDelete {
		c.sum += c.amount(w.Table, w.Key, w.Value)
	}
}

// Check implements Constraint.
func (c *Conservation) Check(endTS uint64) error {
	if c.armed && c.sum != c.want {
		return fmt.Errorf("sum drifted to %d, initial state had %d", c.sum, c.want)
	}
	return nil
}

// RefIntegrity asserts the foreign-key shape "every child row has a parent":
// for every live row of the child table whose ref derivation says it
// references a parent key, a live row with that key must exist in the parent
// table at every transaction boundary. Maintained incrementally: parent
// existence, child references, and the orphan set are updated per write.
type RefIntegrity struct {
	name   string
	child  string
	parent string
	ref    func(childKey, childValue uint64) (parentKey uint64, ok bool)

	parents  map[uint64]struct{}
	refOf    map[uint64]uint64              // childKey -> referenced parentKey
	children map[uint64]map[uint64]struct{} // parentKey -> childKeys referencing it
	orphans  map[uint64]uint64              // childKey -> missing parentKey
}

// NewRefIntegrity builds a RefIntegrity constraint from child to parent.
// ref derives a child row's referenced parent key from its (key, value);
// ok=false exempts the row (a null foreign key). Child and parent must be
// distinct tables.
func NewRefIntegrity(name, child, parent string, ref func(childKey, childValue uint64) (uint64, bool)) *RefIntegrity {
	return &RefIntegrity{
		name: name, child: child, parent: parent, ref: ref,
		parents:  make(map[uint64]struct{}),
		refOf:    make(map[uint64]uint64),
		children: make(map[uint64]map[uint64]struct{}),
		orphans:  make(map[uint64]uint64),
	}
}

// Name implements Constraint.
func (c *RefIntegrity) Name() string { return c.name }

// Init implements Constraint.
func (c *RefIntegrity) Init(table string, key, value uint64) {
	c.apply(table, key, value, false)
}

// Begin implements Constraint.
func (c *RefIntegrity) Begin(t *Txn, get Lookup) error { return nil }

// Apply implements Constraint.
func (c *RefIntegrity) Apply(w Write, old uint64, hadOld bool) {
	c.apply(w.Table, w.Key, w.Value, w.Op == WriteDelete)
}

func (c *RefIntegrity) apply(table string, key, value uint64, del bool) {
	if table == c.parent {
		if del {
			if _, ok := c.parents[key]; ok {
				delete(c.parents, key)
				for ck := range c.children[key] {
					c.orphans[ck] = key
				}
			}
			return
		}
		if _, ok := c.parents[key]; !ok {
			c.parents[key] = struct{}{}
			for ck := range c.children[key] {
				delete(c.orphans, ck)
			}
		}
		return
	}
	if table != c.child {
		return
	}
	// Drop the child's previous reference (update or delete).
	if p, ok := c.refOf[key]; ok {
		delete(c.refOf, key)
		delete(c.orphans, key)
		if set := c.children[p]; set != nil {
			delete(set, key)
			if len(set) == 0 {
				delete(c.children, p)
			}
		}
	}
	if del {
		return
	}
	p, ok := c.ref(key, value)
	if !ok {
		return
	}
	c.refOf[key] = p
	set := c.children[p]
	if set == nil {
		set = make(map[uint64]struct{})
		c.children[p] = set
	}
	set[key] = struct{}{}
	if _, exists := c.parents[p]; !exists {
		c.orphans[key] = p
	}
}

// Check implements Constraint.
func (c *RefIntegrity) Check(endTS uint64) error {
	if len(c.orphans) == 0 {
		return nil
	}
	// Deterministic sample: the smallest orphaned child key.
	first := true
	var ck, pk uint64
	for k, p := range c.orphans {
		if first || k < ck {
			ck, pk = k, p
			first = false
		}
	}
	return fmt.Errorf("%d orphaned %s row(s); e.g. %s[%d] references missing %s[%d]",
		len(c.orphans), c.child, c.child, ck, c.parent, pk)
}

// TxnRule asserts a structural invariant of every transaction footprint —
// e.g. "account deltas sum to zero" or "a ledger write never travels
// without an accounts write". The rule sees the whole footprint and the
// model's pre-transaction state and is evaluated before the writes apply.
type TxnRule struct {
	name string
	rule func(t *Txn, get Lookup) error
}

// NewTxnRule builds a per-transaction footprint rule.
func NewTxnRule(name string, rule func(t *Txn, get Lookup) error) *TxnRule {
	return &TxnRule{name: name, rule: rule}
}

// Name implements Constraint.
func (c *TxnRule) Name() string { return c.name }

// Init implements Constraint.
func (c *TxnRule) Init(table string, key, value uint64) {}

// Begin implements Constraint.
func (c *TxnRule) Begin(t *Txn, get Lookup) error { return c.rule(t, get) }

// Apply implements Constraint.
func (c *TxnRule) Apply(w Write, old uint64, hadOld bool) {}

// Check implements Constraint.
func (c *TxnRule) Check(endTS uint64) error { return nil }
