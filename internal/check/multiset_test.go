package check

import (
	"math/rand"
	"sort"
	"testing"
)

// TestMultisetAgainstReference drives the treap with random add/remove/range
// ops and compares every range walk against a flat map-based reference.
func TestMultisetAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ms := newMultiset(42)
	ref := make(map[uint64]int)
	const domain = 64
	for op := 0; op < 20_000; op++ {
		k := rng.Uint64() % domain
		switch rng.Intn(3) {
		case 0:
			ms.add(k)
			ref[k]++
		case 1:
			removed := ms.remove(k)
			if removed != (ref[k] > 0) {
				t.Fatalf("op %d: remove(%d) = %v, reference has %d", op, k, removed, ref[k])
			}
			if ref[k] > 0 {
				ref[k]--
				if ref[k] == 0 {
					delete(ref, k)
				}
			}
		case 2:
			lo := rng.Uint64() % domain
			hi := lo + rng.Uint64()%16
			var got []uint64
			ms.ascendRange(lo, hi, func(key uint64, count int) bool {
				for i := 0; i < count; i++ {
					got = append(got, key)
				}
				return true
			})
			var want []uint64
			for key, count := range ref {
				if key >= lo && key <= hi {
					for i := 0; i < count; i++ {
						want = append(want, key)
					}
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("op %d: range [%d,%d] got %v want %v", op, lo, hi, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("op %d: range [%d,%d] got %v want %v", op, lo, hi, got, want)
				}
			}
		}
	}
}

// TestMultisetAscendStops: an early-stopping walk must not visit past the
// callback's false.
func TestMultisetAscendStops(t *testing.T) {
	ms := newMultiset(7)
	for k := uint64(0); k < 100; k++ {
		ms.add(k)
	}
	var seen int
	ms.ascendRange(0, 99, func(key uint64, count int) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Fatalf("walk visited %d keys after stop at 5", seen)
	}
}
