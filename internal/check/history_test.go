package check

import (
	"fmt"
	"strings"
	"testing"
)

// bankIndexers is the secondary index universe of the bank history: a
// partial index over value%16, excluding rows whose value is divisible by 7.
func bankIndexers() map[string]IndexKeyFn {
	return map[string]IndexKeyFn{
		"ix": func(key, value uint64) (uint64, bool) { return value % 16, value%7 != 0 },
	}
}

// bankHistory builds a known-good two-table history: accounts in "a"
// (initial balances 50+30+20) and a ledger in "b" recording each transfer's
// source account. Constraints attach per flag so a mutation aimed at one
// failure mode is not masked by an earlier-firing constraint.
//
//	t@10  transfer 15 from a[1] to a[2], ledger row b[10]=1
//	t@20  audit: primary + "ix" scans of "a", point reads of all balances
//	t@30  transfer 20 from a[3] to a[1], ledger row b[11]=3
//	t@40  close a[3]: delete its ledger row, then the account
//	t@50  final audit: scans of both tables, point reads
func bankHistory(cons, ref, rule bool) *History {
	h := &History{
		Initial: map[string]map[uint64]uint64{
			"a": {1: 50, 2: 30, 3: 20},
			"b": {},
		},
		Indexers: bankIndexers(),
	}
	if cons {
		h.Constraints = append(h.Constraints, NewConservation("bank-conservation", []string{"a"},
			func(table string, key, value uint64) int64 { return int64(value) }))
	}
	if ref {
		h.Constraints = append(h.Constraints, NewRefIntegrity("ledger-ref", "b", "a",
			func(childKey, childValue uint64) (uint64, bool) { return childValue, true }))
	}
	if rule {
		h.Constraints = append(h.Constraints, NewTxnRule("coupled-writes",
			func(t *Txn, get Lookup) error {
				var wroteA, wroteB bool
				for _, w := range t.Writes {
					switch w.Table {
					case "a":
						wroteA = true
					case "b":
						wroteB = true
					}
				}
				if wroteB && !wroteA {
					return fmt.Errorf("ledger write without an accounts write")
				}
				return nil
			}))
	}
	h.Txns = []Txn{
		{
			EndTS: 10,
			Reads: []Read{
				{Table: "a", Key: 1, Value: 50, Found: true},
				{Table: "a", Key: 2, Value: 30, Found: true},
			},
			Writes: []Write{
				{Table: "a", Key: 1, Value: 35},
				{Table: "a", Key: 2, Value: 45},
				{Table: "b", Key: 10, Value: 1},
			},
		},
		{
			EndTS: 20,
			Reads: []Read{
				{Table: "a", Key: 1, Value: 35, Found: true},
				{Table: "a", Key: 2, Value: 45, Found: true},
				{Table: "a", Key: 3, Value: 20, Found: true},
			},
			RangeReads: []RangeRead{
				{Table: "a", Lo: 0, Hi: 47, Keys: []uint64{1, 2, 3}},
				// a[1]=35 is excluded by the partial index (35%7==0);
				// a[2]=45 -> 13, a[3]=20 -> 4.
				{Table: "a", Index: "ix", Lo: 0, Hi: 15, Keys: []uint64{4, 13}},
			},
		},
		{
			EndTS: 30,
			Reads: []Read{
				{Table: "a", Key: 3, Value: 20, Found: true},
				{Table: "a", Key: 1, Value: 35, Found: true},
			},
			Writes: []Write{
				{Table: "a", Key: 3, Value: 0},
				{Table: "a", Key: 1, Value: 55},
				{Table: "b", Key: 11, Value: 3},
			},
		},
		{
			EndTS: 40,
			Reads: []Read{
				{Table: "a", Key: 3, Value: 0, Found: true},
			},
			Writes: []Write{
				{Table: "b", Op: WriteDelete, Key: 11},
				{Table: "a", Op: WriteDelete, Key: 3},
			},
		},
		{
			EndTS: 50,
			Reads: []Read{
				{Table: "a", Key: 1, Value: 55, Found: true},
				{Table: "a", Key: 2, Value: 45, Found: true},
			},
			RangeReads: []RangeRead{
				{Table: "a", Lo: 0, Hi: 47, Keys: []uint64{1, 2}},
				{Table: "b", Lo: 0, Hi: 47, Keys: []uint64{10}},
				// a[1]=55 -> 7, a[2]=45 -> 13.
				{Table: "a", Index: "ix", Lo: 0, Hi: 15, Keys: []uint64{7, 13}},
			},
		},
	}
	return h
}

// bankMutation is one corpus entry: a constraint selection, a mutation of
// the known-good history, and the verdict class both checkers must reach.
type bankMutation struct {
	name            string
	cons, ref, rule bool
	mutate          func(h *History)
	want            string // verdict kind: ok, read, range, constraint, error
	wantSub         string // required substring of the error, "" for ok
}

func (m *bankMutation) build() *History {
	h := bankHistory(m.cons, m.ref, m.rule)
	if m.mutate != nil {
		m.mutate(h)
	}
	return h
}

func bankMutations() []bankMutation {
	return []bankMutation{
		{
			name: "good", cons: true, ref: true, rule: true,
			want: "ok",
		},
		{
			// The transfer's credit leg vanishes: the audit's read of a[2]
			// sees a value the model never reached.
			name: "missing-key",
			mutate: func(h *History) {
				t := &h.Txns[0]
				t.Writes = append(t.Writes[:1], t.Writes[2:]...)
			},
			want: "read", wantSub: "a[2]",
		},
		{
			// The audit scan claims a row the model does not hold.
			name: "extra-key", cons: true, ref: true, rule: true,
			mutate: func(h *History) {
				rr := &h.Txns[1].RangeReads[0]
				rr.Keys = append(rr.Keys, 7)
			},
			want: "range", wantSub: "extra=[7]",
		},
		{
			// The audit reads a[1]'s pre-transfer balance.
			name: "stale-read", cons: true, ref: true, rule: true,
			mutate: func(h *History) {
				h.Txns[1].Reads[0].Value = 50
			},
			want: "read", wantSub: "a[1]",
		},
		{
			// The second transfer computes a[1]'s new balance from the
			// pre-history value (50+20) as if the first transfer's update
			// was lost; the final audit catches the divergence.
			name: "lost-update",
			mutate: func(h *History) {
				h.Txns[2].Writes[1].Value = 70
			},
			want: "read", wantSub: "txn@50",
		},
		{
			// Money from thin air: a new account appears with no debit.
			name: "conservation", cons: true,
			mutate: func(h *History) {
				h.Txns = append(h.Txns, Txn{
					EndTS:  60,
					Writes: []Write{{Table: "a", Key: 5, Value: 7}},
				})
			},
			want: "constraint", wantSub: `"bank-conservation"`,
		},
		{
			// A ledger row referencing an account that never existed.
			name: "ref-orphan-insert", ref: true,
			mutate: func(h *History) {
				h.Txns = append(h.Txns, Txn{
					EndTS:  60,
					Writes: []Write{{Table: "b", Key: 12, Value: 9}},
				})
			},
			want: "constraint", wantSub: `"ledger-ref"`,
		},
		{
			// Deleting an account strands its surviving ledger row.
			name: "ref-orphan-parent-delete", ref: true,
			mutate: func(h *History) {
				h.Txns = append(h.Txns, Txn{
					EndTS:  60,
					Writes: []Write{{Table: "a", Op: WriteDelete, Key: 1}},
				})
			},
			want: "constraint", wantSub: "b[10] references missing a[1]",
		},
		{
			// An orphan created and repaired inside one transaction is not
			// a violation: constraints hold at transaction boundaries only.
			name: "ref-fixed-same-txn", ref: true,
			mutate: func(h *History) {
				h.Txns = append(h.Txns, Txn{
					EndTS: 60,
					Writes: []Write{
						{Table: "b", Key: 12, Value: 9},
						{Table: "a", Key: 9, Value: 5},
					},
				})
			},
			want: "ok",
		},
		{
			// A ledger write travelling without its accounts write.
			name: "txn-rule", rule: true,
			mutate: func(h *History) {
				h.Txns = append(h.Txns, Txn{
					EndTS:  60,
					Writes: []Write{{Table: "b", Key: 12, Value: 1}},
				})
			},
			want: "constraint", wantSub: `"coupled-writes"`,
		},
		{
			name: "duplicate-endts", cons: true, ref: true, rule: true,
			mutate: func(h *History) {
				h.Txns[1].EndTS = 10
			},
			want: "error", wantSub: "duplicate end timestamp 10",
		},
		{
			name: "unknown-index",
			mutate: func(h *History) {
				h.Txns[1].RangeReads = append(h.Txns[1].RangeReads,
					RangeRead{Table: "a", Index: "nope", Lo: 0, Hi: 47})
			},
			want: "error", wantSub: `unknown index "nope"`,
		},
	}
}

func verdictKind(err error) string {
	switch err.(type) {
	case nil:
		return "ok"
	case *Violation:
		return "read"
	case *RangeViolation:
		return "range"
	case *ConstraintViolation:
		return "constraint"
	default:
		return "error"
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestBankMutations is the checker-can-fail proof: each seeded defect in the
// multi-table bank history must fire its specific violation class, and the
// incremental and rebuild checkers must agree verdict-for-verdict.
func TestBankMutations(t *testing.T) {
	for _, m := range bankMutations() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			fast := m.build().Validate()
			slow := m.build().ValidateRebuild()
			if got := verdictKind(fast); got != m.want {
				t.Fatalf("Validate verdict = %s (%v), want %s", got, fast, m.want)
			}
			if errString(fast) != errString(slow) {
				t.Fatalf("checkers disagree:\n fast: %v\n slow: %v", fast, slow)
			}
			if m.wantSub != "" && !strings.Contains(errString(fast), m.wantSub) {
				t.Fatalf("error %q does not contain %q", errString(fast), m.wantSub)
			}
		})
	}
}

// TestValidateIndexedCompat: the pre-existing single-table entry point must
// route through the multi-table checker unchanged.
func TestValidateIndexedCompat(t *testing.T) {
	initial := map[uint64]uint64{1: 10, 2: 14}
	txns := []Txn{{
		EndTS:      5,
		RangeReads: []RangeRead{{Table: "rows", Index: "mod", Lo: 0, Hi: 7, Keys: []uint64{2, 6}}},
	}}
	mod := map[string]IndexKeyFn{
		"mod": func(key, value uint64) (uint64, bool) { return value % 8, true },
	}
	if err := ValidateIndexed(initial, "rows", txns, mod); err != nil {
		t.Fatalf("valid history rejected: %v", err)
	}
	txns[0].RangeReads[0].Keys = []uint64{2}
	err := ValidateIndexed(initial, "rows", txns, mod)
	rv, ok := err.(*RangeViolation)
	if !ok || len(rv.Missing) != 1 || rv.Missing[0] != 6 {
		t.Fatalf("want missing=[6], got %v", err)
	}
}

// TestSyntheticDifferential validates generated histories on both paths and
// then tampers with a scan, requiring byte-identical rejection.
func TestSyntheticDifferential(t *testing.T) {
	tamper := func(h *History) bool {
		for i := range h.Txns {
			rr := &h.Txns[i].RangeReads[0]
			if len(rr.Keys) > 0 {
				rr.Keys = append(rr.Keys, rr.Keys[0]) // duplicate: an extra row
				return true
			}
		}
		return false
	}
	for seed := uint64(1); seed <= 3; seed++ {
		if err := Synthetic(256, 500, 16, seed).Validate(); err != nil {
			t.Fatalf("seed %d: incremental rejected valid history: %v", seed, err)
		}
		if err := Synthetic(256, 500, 16, seed).ValidateRebuild(); err != nil {
			t.Fatalf("seed %d: rebuild rejected valid history: %v", seed, err)
		}
		h1 := Synthetic(256, 500, 16, seed)
		h2 := Synthetic(256, 500, 16, seed)
		if !tamper(h1) || !tamper(h2) {
			t.Fatalf("seed %d: no scan to tamper with", seed)
		}
		e1, e2 := h1.Validate(), h2.ValidateRebuild()
		if e1 == nil || e2 == nil || e1.Error() != e2.Error() {
			t.Fatalf("seed %d: tampered verdicts disagree:\n fast: %v\n slow: %v", seed, e1, e2)
		}
		if _, ok := e1.(*RangeViolation); !ok {
			t.Fatalf("seed %d: want RangeViolation, got %T", seed, e1)
		}
	}
}

// TestEncodeDecodeRoundTrip: corpus histories inside the codec universe must
// survive encoding, and the decoded history must reach the same verdict kind
// class when the defect is structural (reads/writes/scans — constraint
// semantics are remapped by the codec and may differ).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range bankMutations() {
		if m.cons || m.ref || m.rule {
			continue // codec remaps constraints to its own fixed classes
		}
		m := m
		t.Run(m.name, func(t *testing.T) {
			orig := m.build()
			dec := decodeHistory(encodeHistory(orig))
			if len(dec.Txns) != len(orig.Txns) {
				t.Fatalf("round trip lost txns: %d -> %d", len(orig.Txns), len(dec.Txns))
			}
			e1, e2 := dec.Validate(), decodeHistory(encodeHistory(m.build())).ValidateRebuild()
			if errString(e1) != errString(e2) {
				t.Fatalf("decoded verdicts disagree:\n fast: %v\n slow: %v", e1, e2)
			}
		})
	}
}

func benchValidate(b *testing.B, rebuild bool) {
	h := Synthetic(4096, 4000, 32, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if rebuild {
			err = h.ValidateRebuild()
		} else {
			err = h.Validate()
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidateIncremental vs BenchmarkValidateRebuild is the checker
// micro-benchmark behind the PR's >=10x claim (see cmd/benchjson -checker).
func BenchmarkValidateIncremental(b *testing.B) { benchValidate(b, false) }

func BenchmarkValidateRebuild(b *testing.B) { benchValidate(b, true) }
