package check

// multiset is a sorted multiset of uint64 index keys backed by a treap:
// expected O(log n) add/remove and O(log n + k) in-order range iteration
// over k distinct keys. The replay loop maintains one per scanned
// (table, index) pair so a recorded range scan is validated against exactly
// the keys in [lo, hi] without rebuilding a view of the whole model — the
// upgrade the old checkRangeRead's O(model)-per-scan comment asked for.
//
// Priorities come from a deterministic splitmix64 stream seeded per
// multiset, so replaying the same history costs the same tree shape every
// time (reproducible benchmarks, no global rand dependence).
type multiset struct {
	root *msNode
	rng  uint64
}

type msNode struct {
	key   uint64
	prio  uint64
	count int
	l, r  *msNode
}

// splitmix64 advances one step of the splitmix64 sequence.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func newMultiset(seed uint64) *multiset {
	return &multiset{rng: seed}
}

func (m *multiset) nextPrio() uint64 {
	m.rng += 0x9e3779b97f4a7c15
	z := m.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// add inserts one occurrence of key.
func (m *multiset) add(key uint64) {
	m.root = m.insert(m.root, key)
}

func (m *multiset) insert(n *msNode, key uint64) *msNode {
	if n == nil {
		return &msNode{key: key, prio: m.nextPrio(), count: 1}
	}
	switch {
	case key == n.key:
		n.count++
	case key < n.key:
		n.l = m.insert(n.l, key)
		if n.l.prio > n.prio {
			n = rotRight(n)
		}
	default:
		n.r = m.insert(n.r, key)
		if n.r.prio > n.prio {
			n = rotLeft(n)
		}
	}
	return n
}

// remove deletes one occurrence of key; it reports whether an occurrence
// existed.
func (m *multiset) remove(key uint64) bool {
	var removed bool
	m.root, removed = removeNode(m.root, key)
	return removed
}

func removeNode(n *msNode, key uint64) (*msNode, bool) {
	if n == nil {
		return nil, false
	}
	var removed bool
	switch {
	case key < n.key:
		n.l, removed = removeNode(n.l, key)
	case key > n.key:
		n.r, removed = removeNode(n.r, key)
	default:
		if n.count > 1 {
			n.count--
			return n, true
		}
		return deleteRoot(n), true
	}
	return n, removed
}

// deleteRoot removes n itself by rotating it down until it is a leaf,
// preserving the heap property among the survivors.
func deleteRoot(n *msNode) *msNode {
	if n.l == nil {
		return n.r
	}
	if n.r == nil {
		return n.l
	}
	if n.l.prio > n.r.prio {
		n = rotRight(n)
		n.r = deleteRoot(n.r)
	} else {
		n = rotLeft(n)
		n.l = deleteRoot(n.l)
	}
	return n
}

func rotRight(n *msNode) *msNode {
	l := n.l
	n.l = l.r
	l.r = n
	return l
}

func rotLeft(n *msNode) *msNode {
	r := n.r
	n.r = r.l
	r.l = n
	return r
}

// ascendRange calls fn for each distinct key in [lo, hi] in ascending order
// with its multiplicity; fn returning false stops the walk.
func (m *multiset) ascendRange(lo, hi uint64, fn func(key uint64, count int) bool) {
	ascend(m.root, lo, hi, fn)
}

func ascend(n *msNode, lo, hi uint64, fn func(uint64, int) bool) bool {
	if n == nil {
		return true
	}
	if n.key > lo {
		if !ascend(n.l, lo, hi, fn) {
			return false
		}
	}
	if n.key >= lo && n.key <= hi {
		if !fn(n.key, n.count) {
			return false
		}
	}
	if n.key < hi {
		return ascend(n.r, lo, hi, fn)
	}
	return true
}
