package check

import (
	"fmt"
	"sort"
)

// History is a multi-table committed history plus everything needed to
// validate it: per-table initial state, the recorded transaction
// footprints, secondary-index key derivations, and declared cross-table
// constraints.
//
// Validate replays the transactions in end-timestamp order against a model
// database, verifying every recorded point read and range scan, evaluating
// every constraint at each transaction boundary, and returning the first
// violation (a *Violation, *RangeViolation or *ConstraintViolation) or nil.
//
// Range scans are validated against incrementally maintained per-
// (table, index) sorted multisets updated as writes replay: O(log n) per
// mutation and O(log n + k) per scan of k rows, instead of the old
// O(model)-per-scan view rebuild (kept as ValidateRebuild, the reference
// implementation the incremental path is differentially tested against).
//
// Constraints accumulate state during replay; build a fresh History (with
// fresh Constraint instances) per Validate call.
type History struct {
	// Initial holds the pre-history committed rows, keyed by table name.
	Initial map[string]map[uint64]uint64
	// Txns is the recorded history, in any order.
	Txns []Txn
	// Indexers maps a RangeRead.Index name to the function deriving a live
	// row's key in that index key space; the primary key space "" (index
	// key = row key) is always available. Index names are global across
	// tables — a scan is matched to the multiset of its (Table, Index) pair.
	Indexers map[string]IndexKeyFn
	// Constraints are the declared cross-table invariants.
	Constraints []Constraint
}

// Validate replays the history with incremental range-read checking.
func (h *History) Validate() error { return h.validate(false) }

// ValidateRebuild replays the history with the original O(model)-per-scan
// range-read checking: the expected key multiset of each scan is rebuilt by
// walking every model row. Retained as the reference implementation — the
// mutation corpus and FuzzValidateIndexed assert verdict-for-verdict
// agreement with Validate — and as the baseline of the checker
// micro-benchmark.
func (h *History) ValidateRebuild() error { return h.validate(true) }

// tableIndex identifies one scanned index key space.
type tableIndex struct {
	table string
	index string
}

// idxSet is one maintained multiset: the index key derivation plus the
// sorted multiset of keys currently live in that index.
type idxSet struct {
	name string
	fn   IndexKeyFn
	ms   *multiset
}

func identityKey(key, value uint64) (uint64, bool) { return key, true }

func (h *History) validate(rebuild bool) error {
	model := make(map[modelKey]uint64)
	for table, rows := range h.Initial {
		for k, v := range rows {
			model[modelKey{table, k}] = v
		}
	}

	ordered := make([]Txn, len(h.Txns))
	copy(ordered, h.Txns)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].EndTS < ordered[j].EndTS })
	for i := 1; i < len(ordered); i++ {
		if ordered[i].EndTS == ordered[i-1].EndTS {
			return fmt.Errorf("check: duplicate end timestamp %d", ordered[i].EndTS)
		}
	}

	// Build the incremental per-(table, index) multisets for every index key
	// space the history scans. A named index with no registered indexer gets
	// no multiset; the scan itself reports the unknown index during replay,
	// exactly as the rebuild path does.
	var sets map[tableIndex]*idxSet
	var setsByTable map[string][]*idxSet
	if !rebuild {
		sets = make(map[tableIndex]*idxSet)
		setsByTable = make(map[string][]*idxSet)
		for ti := range ordered {
			for ri := range ordered[ti].RangeReads {
				rr := &ordered[ti].RangeReads[ri]
				key := tableIndex{rr.Table, rr.Index}
				if _, dup := sets[key]; dup {
					continue
				}
				fn := IndexKeyFn(identityKey)
				if rr.Index != "" {
					var ok bool
					fn, ok = h.Indexers[rr.Index]
					if !ok {
						continue
					}
				}
				s := &idxSet{name: rr.Index, fn: fn,
					ms: newMultiset(splitmix64(uint64(len(sets)) + 0x6d765f636865636b))}
				sets[key] = s
				setsByTable[rr.Table] = append(setsByTable[rr.Table], s)
			}
		}
		for mk, v := range model {
			for _, s := range setsByTable[mk.table] {
				if ik, ok := s.fn(mk.key, v); ok {
					s.ms.add(ik)
				}
			}
		}
	}

	for _, c := range h.Constraints {
		for table, rows := range h.Initial {
			for k, v := range rows {
				c.Init(table, k, v)
			}
		}
	}
	get := func(table string, key uint64) (uint64, bool) {
		v, ok := model[modelKey{table, key}]
		return v, ok
	}

	var scratch rangeScratch
	for ti := range ordered {
		t := &ordered[ti]
		for _, r := range t.Reads {
			got, found := model[modelKey{r.Table, r.Key}]
			if found != r.Found || (found && got != r.Value) {
				return &Violation{EndTS: t.EndTS, Read: r, GotValue: got, GotFound: found}
			}
		}
		for i := range t.RangeReads {
			rr := &t.RangeReads[i]
			var err error
			if rebuild {
				err = checkRangeReadRebuild(model, t.EndTS, rr, h.Indexers, &scratch)
			} else {
				err = checkRangeReadIncremental(sets, t.EndTS, rr, h.Indexers, &scratch)
			}
			if err != nil {
				return err
			}
		}
		for _, c := range h.Constraints {
			if err := c.Begin(t, get); err != nil {
				return &ConstraintViolation{EndTS: t.EndTS, Constraint: c.Name(), Detail: err.Error()}
			}
		}
		for _, w := range t.Writes {
			mk := modelKey{w.Table, w.Key}
			old, hadOld := model[mk]
			if w.Op == WriteDelete {
				delete(model, mk)
			} else {
				model[mk] = w.Value
			}
			if !rebuild {
				for _, s := range setsByTable[w.Table] {
					if hadOld {
						if ik, ok := s.fn(w.Key, old); ok {
							s.ms.remove(ik)
						}
					}
					if w.Op != WriteDelete {
						if ik, ok := s.fn(w.Key, w.Value); ok {
							s.ms.add(ik)
						}
					}
				}
			}
			for _, c := range h.Constraints {
				c.Apply(w, old, hadOld)
			}
		}
		for _, c := range h.Constraints {
			if err := c.Check(t.EndTS); err != nil {
				return &ConstraintViolation{EndTS: t.EndTS, Constraint: c.Name(), Detail: err.Error()}
			}
		}
	}
	return nil
}

// rangeScratch holds the per-scan comparison buffers, reused across scans so
// a long replay does not reallocate them per recorded scan.
type rangeScratch struct {
	expect []uint64
	got    []uint64
}

func unknownIndexErr(endTS uint64, rr *RangeRead) error {
	return fmt.Errorf("check: txn@%d scanned unknown index %q of table %q (pass an indexer to ValidateIndexed)",
		endTS, rr.Index, rr.Table)
}

// checkRangeReadIncremental validates one recorded scan against the
// maintained multiset of its (table, index) pair: O(log n + k) for k
// expected rows.
func checkRangeReadIncremental(sets map[tableIndex]*idxSet, endTS uint64, rr *RangeRead, indexers map[string]IndexKeyFn, sc *rangeScratch) error {
	if rr.Index != "" {
		if _, ok := indexers[rr.Index]; !ok {
			return unknownIndexErr(endTS, rr)
		}
	}
	s := sets[tableIndex{rr.Table, rr.Index}]
	expect := sc.expect[:0]
	s.ms.ascendRange(rr.Lo, rr.Hi, func(key uint64, count int) bool {
		for i := 0; i < count; i++ {
			expect = append(expect, key)
		}
		return true
	})
	sc.expect = expect
	return diffRangeRead(endTS, rr, expect, sc)
}

// checkRangeReadRebuild is the original reference implementation: the
// expected multiset is rebuilt by walking every model row, because a
// secondary index key is a function of (key, value) and value changes on
// every replayed write — O(model size) per recorded scan.
func checkRangeReadRebuild(model map[modelKey]uint64, endTS uint64, rr *RangeRead, indexers map[string]IndexKeyFn, sc *rangeScratch) error {
	ikeyOf := IndexKeyFn(identityKey)
	if rr.Index != "" {
		fn, ok := indexers[rr.Index]
		if !ok {
			return unknownIndexErr(endTS, rr)
		}
		ikeyOf = fn
	}
	expect := sc.expect[:0]
	for mk, val := range model {
		if mk.table != rr.Table {
			continue
		}
		ik, ok := ikeyOf(mk.key, val)
		if !ok || ik < rr.Lo || ik > rr.Hi {
			continue
		}
		expect = append(expect, ik)
	}
	sort.Slice(expect, func(i, j int) bool { return expect[i] < expect[j] })
	sc.expect = expect
	return diffRangeRead(endTS, rr, expect, sc)
}

// diffRangeRead compares the sorted expected multiset against the scan's
// observed keys and reports any missing/extra rows.
func diffRangeRead(endTS uint64, rr *RangeRead, expect []uint64, sc *rangeScratch) error {
	got := append(sc.got[:0], rr.Keys...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sc.got = got
	var missing, extra []uint64
	i, j := 0, 0
	for i < len(expect) && j < len(got) {
		switch {
		case expect[i] == got[j]:
			i++
			j++
		case expect[i] < got[j]:
			missing = append(missing, expect[i])
			i++
		default:
			extra = append(extra, got[j])
			j++
		}
	}
	missing = append(missing, expect[i:]...)
	extra = append(extra, got[j:]...)
	if len(missing) > 0 || len(extra) > 0 {
		return &RangeViolation{EndTS: endTS, Scan: *rr, Missing: missing, Extra: extra}
	}
	return nil
}
