// Package check validates serializability of committed histories.
//
// The engine's serializability argument (Section 2) is that a transaction
// sees exactly the data it would see if all its reads were repeated at its
// end timestamp — i.e. committed transactions are serializable in end
// timestamp order. This checker replays a recorded history in that order
// against a model database and verifies every read: if transaction T read
// (key → value) and committed at end timestamp E, the model must hold
// exactly that value for the key when every transaction with a smaller end
// timestamp has been applied.
//
// Range scans are validated the same way: a recorded RangeRead carries the
// scanned index, the bounds [lo, hi] and the observed index-key set, and
// replay checks that set against the rows the model holds in the range at
// the transaction's serialization point. A committed serializable scan
// that missed a row the model holds — or observed one it does not — is a
// detected phantom (RangeViolation). Secondary-index scans are supported
// through ValidateIndexed, which takes per-index functions deriving a
// row's index key from its primary key and value.
//
// Integration tests run randomized concurrent workloads under serializable
// isolation on all three engines and feed the committed histories through
// Validate.
package check

import (
	"fmt"
	"sort"
	"sync"
)

// Read is one recorded read: the transaction observed Value for Key (or
// observed the key as absent when Found is false).
type Read struct {
	Table string
	Key   uint64
	Value uint64
	Found bool
}

// WriteOp distinguishes recorded writes.
type WriteOp uint8

const (
	// WriteUpsert sets the key to the value (insert or update).
	WriteUpsert WriteOp = iota
	// WriteDelete removes the key.
	WriteDelete
)

// Write is one recorded write.
type Write struct {
	Table string
	Op    WriteOp
	Key   uint64
	Value uint64
}

// RangeRead is one recorded range-scan read: over index Index of Table,
// the transaction observed exactly the index keys Keys (one entry per row
// returned, so a non-unique index may repeat a key) within [Lo, Hi]. The
// checker validates the observed key set against the rows the model holds
// in the range at the transaction's serialization point — a committed
// serializable scan that missed a row the model holds, or saw one it does
// not, is a detected phantom.
type RangeRead struct {
	Table string
	// Index names the scanned index's key space; "" is the primary key
	// space (index key = row key). Other names resolve through the
	// Indexers passed to ValidateIndexed.
	Index  string
	Lo, Hi uint64
	// Keys holds the index key of every row the scan returned.
	Keys []uint64
}

// Txn is the recorded footprint of one committed transaction.
type Txn struct {
	// EndTS is the commit (end) timestamp; it determines the serialization
	// order.
	EndTS  uint64
	Reads  []Read
	Writes []Write
	// RangeReads are the transaction's recorded range scans. Like Reads,
	// scans observing the transaction's own writes should not be recorded.
	RangeReads []RangeRead
}

type modelKey struct {
	table string
	key   uint64
}

// Violation describes a serializability failure.
type Violation struct {
	EndTS uint64
	Read  Read
	// GotValue and GotFound are the model's state at the read's
	// serialization point.
	GotValue uint64
	GotFound bool
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("check: txn@%d read %s[%d] = (%d, found=%v) but model has (%d, found=%v)",
		v.EndTS, v.Read.Table, v.Read.Key, v.Read.Value, v.Read.Found, v.GotValue, v.GotFound)
}

// RangeViolation describes a serializability failure of a range scan: at
// the scan's serialization point the model's key set over [Lo, Hi]
// disagrees with what the scan observed.
type RangeViolation struct {
	EndTS uint64
	Scan  RangeRead
	// Missing are index keys the model holds in the range but the scan did
	// not observe (a missed row — e.g. an insert the scan should have
	// seen). Extra are keys the scan observed but the model does not hold
	// (a phantom — e.g. an uncommitted or later insert leaking in). Both
	// are multisets: a key appears once per unmatched row.
	Missing []uint64
	Extra   []uint64
}

// Error implements error.
func (v *RangeViolation) Error() string {
	return fmt.Sprintf("check: txn@%d range scan %s/%s[%d,%d] missing=%v extra=%v",
		v.EndTS, v.Scan.Table, v.Scan.Index, v.Scan.Lo, v.Scan.Hi, v.Missing, v.Extra)
}

// IndexKeyFn derives a row's key in a secondary index from its primary key
// and value; ok=false excludes the row from that index (partial indexes).
type IndexKeyFn func(key, value uint64) (ikey uint64, ok bool)

// Validate replays txns in end-timestamp order over the initial state and
// verifies that every read matches the model. It returns the first violation
// found, or nil if the history is serializable in commit order. Range scans
// over the primary key space (RangeRead.Index == "") are validated too;
// histories with secondary-index scans need ValidateIndexed.
func Validate(initial map[uint64]uint64, initialTable string, txns []Txn) error {
	return ValidateIndexed(initial, initialTable, txns, nil)
}

// ValidateIndexed is Validate for histories whose range scans cover
// secondary index key spaces: indexers maps each RangeRead.Index name to
// the function deriving a live row's key in that index. The primary key
// space "" is always available (index key = row key) and need not be
// passed.
func ValidateIndexed(initial map[uint64]uint64, initialTable string, txns []Txn, indexers map[string]IndexKeyFn) error {
	model := make(map[modelKey]uint64, len(initial))
	for k, v := range initial {
		model[modelKey{initialTable, k}] = v
	}
	ordered := make([]Txn, len(txns))
	copy(ordered, txns)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].EndTS < ordered[j].EndTS })
	for i := 1; i < len(ordered); i++ {
		if ordered[i].EndTS == ordered[i-1].EndTS {
			return fmt.Errorf("check: duplicate end timestamp %d", ordered[i].EndTS)
		}
	}
	for _, t := range ordered {
		for _, r := range t.Reads {
			got, found := model[modelKey{r.Table, r.Key}]
			if found != r.Found || (found && got != r.Value) {
				v := &Violation{EndTS: t.EndTS, Read: r, GotValue: got, GotFound: found}
				return v
			}
		}
		for i := range t.RangeReads {
			if err := checkRangeRead(model, t.EndTS, &t.RangeReads[i], indexers); err != nil {
				return err
			}
		}
		for _, w := range t.Writes {
			mk := modelKey{w.Table, w.Key}
			if w.Op == WriteDelete {
				delete(model, mk)
			} else {
				model[mk] = w.Value
			}
		}
	}
	return nil
}

// checkRangeRead compares one recorded scan's observed key multiset against
// the model's rows in the range at this serialization point.
//
// Complexity: O(model size) per recorded scan — the expected multiset is
// rebuilt by walking every model row, because a secondary index key is a
// function of (key, value) and value changes on every replayed write. Fine
// for the randomized test histories (tens of keys, thousands of
// transactions); a long-running soak over large models would want
// incrementally-maintained per-index sorted multisets updated as writes
// replay.
func checkRangeRead(model map[modelKey]uint64, endTS uint64, rr *RangeRead, indexers map[string]IndexKeyFn) error {
	ikeyOf := func(key, value uint64) (uint64, bool) { return key, true }
	if rr.Index != "" {
		fn, ok := indexers[rr.Index]
		if !ok {
			return fmt.Errorf("check: txn@%d scanned unknown index %q of table %q (pass an indexer to ValidateIndexed)",
				endTS, rr.Index, rr.Table)
		}
		ikeyOf = fn
	}
	var expect []uint64
	for mk, val := range model {
		if mk.table != rr.Table {
			continue
		}
		ik, ok := ikeyOf(mk.key, val)
		if !ok || ik < rr.Lo || ik > rr.Hi {
			continue
		}
		expect = append(expect, ik)
	}
	got := append([]uint64(nil), rr.Keys...)
	sort.Slice(expect, func(i, j int) bool { return expect[i] < expect[j] })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	// Multiset difference over the two sorted slices.
	var missing, extra []uint64
	i, j := 0, 0
	for i < len(expect) && j < len(got) {
		switch {
		case expect[i] == got[j]:
			i++
			j++
		case expect[i] < got[j]:
			missing = append(missing, expect[i])
			i++
		default:
			extra = append(extra, got[j])
			j++
		}
	}
	missing = append(missing, expect[i:]...)
	extra = append(extra, got[j:]...)
	if len(missing) > 0 || len(extra) > 0 {
		return &RangeViolation{EndTS: endTS, Scan: *rr, Missing: missing, Extra: extra}
	}
	return nil
}

// Recorder collects transaction footprints from concurrent workers.
type Recorder struct {
	mu   sync.Mutex
	txns []Txn
}

// Record adds a committed transaction's footprint.
func (r *Recorder) Record(t Txn) {
	r.mu.Lock()
	r.txns = append(r.txns, t)
	r.mu.Unlock()
}

// Txns returns the recorded history.
func (r *Recorder) Txns() []Txn {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Txn, len(r.txns))
	copy(out, r.txns)
	return out
}
