// Package check validates serializability of committed histories.
//
// The engine's serializability argument (Section 2) is that a transaction
// sees exactly the data it would see if all its reads were repeated at its
// end timestamp — i.e. committed transactions are serializable in end
// timestamp order. This checker replays a recorded history in that order
// against a model database and verifies every read: if transaction T read
// (key → value) and committed at end timestamp E, the model must hold
// exactly that value for the key when every transaction with a smaller end
// timestamp has been applied.
//
// Range scans are validated the same way: a recorded RangeRead carries the
// scanned index, the bounds [lo, hi] and the observed index-key set, and
// replay checks that set against the rows the model holds in the range at
// the transaction's serialization point. A committed serializable scan
// that missed a row the model holds — or observed one it does not — is a
// detected phantom (RangeViolation). Secondary-index scans are supported
// through ValidateIndexed, which takes per-index functions deriving a
// row's index key from its primary key and value.
//
// Histories may span multiple tables. The History type carries per-table
// initial state plus declared cross-table constraints — bank-style
// conservation (Conservation), foreign-key shapes (RefIntegrity) and
// per-transaction footprint rules (TxnRule) — evaluated at every
// transaction boundary of the replay. Range scans are validated against
// incrementally maintained per-(table, index) sorted multisets (O(log n)
// per replayed mutation, O(log n + k) per scan); the original
// O(model)-per-scan view rebuild survives as History.ValidateRebuild, the
// reference implementation the incremental path is differentially tested
// and fuzzed against.
//
// Integration tests run randomized concurrent workloads under serializable
// isolation on all three engines and feed the committed histories through
// Validate; cmd/mvsoak does the same for hours at a time.
package check

import (
	"fmt"
	"sync"
)

// Read is one recorded read: the transaction observed Value for Key (or
// observed the key as absent when Found is false).
type Read struct {
	Table string
	Key   uint64
	Value uint64
	Found bool
}

// WriteOp distinguishes recorded writes.
type WriteOp uint8

const (
	// WriteUpsert sets the key to the value (insert or update).
	WriteUpsert WriteOp = iota
	// WriteDelete removes the key.
	WriteDelete
)

// Write is one recorded write.
type Write struct {
	Table string
	Op    WriteOp
	Key   uint64
	Value uint64
}

// RangeRead is one recorded range-scan read: over index Index of Table,
// the transaction observed exactly the index keys Keys (one entry per row
// returned, so a non-unique index may repeat a key) within [Lo, Hi]. The
// checker validates the observed key set against the rows the model holds
// in the range at the transaction's serialization point — a committed
// serializable scan that missed a row the model holds, or saw one it does
// not, is a detected phantom.
type RangeRead struct {
	Table string
	// Index names the scanned index's key space; "" is the primary key
	// space (index key = row key). Other names resolve through the
	// Indexers passed to ValidateIndexed.
	Index  string
	Lo, Hi uint64
	// Keys holds the index key of every row the scan returned.
	Keys []uint64
}

// Txn is the recorded footprint of one committed transaction.
type Txn struct {
	// EndTS is the commit (end) timestamp; it determines the serialization
	// order.
	EndTS  uint64
	Reads  []Read
	Writes []Write
	// RangeReads are the transaction's recorded range scans. Like Reads,
	// scans observing the transaction's own writes should not be recorded.
	RangeReads []RangeRead
}

type modelKey struct {
	table string
	key   uint64
}

// Violation describes a serializability failure.
type Violation struct {
	EndTS uint64
	Read  Read
	// GotValue and GotFound are the model's state at the read's
	// serialization point.
	GotValue uint64
	GotFound bool
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("check: txn@%d read %s[%d] = (%d, found=%v) but model has (%d, found=%v)",
		v.EndTS, v.Read.Table, v.Read.Key, v.Read.Value, v.Read.Found, v.GotValue, v.GotFound)
}

// RangeViolation describes a serializability failure of a range scan: at
// the scan's serialization point the model's key set over [Lo, Hi]
// disagrees with what the scan observed.
type RangeViolation struct {
	EndTS uint64
	Scan  RangeRead
	// Missing are index keys the model holds in the range but the scan did
	// not observe (a missed row — e.g. an insert the scan should have
	// seen). Extra are keys the scan observed but the model does not hold
	// (a phantom — e.g. an uncommitted or later insert leaking in). Both
	// are multisets: a key appears once per unmatched row.
	Missing []uint64
	Extra   []uint64
}

// Error implements error.
func (v *RangeViolation) Error() string {
	return fmt.Sprintf("check: txn@%d range scan %s/%s[%d,%d] missing=%v extra=%v",
		v.EndTS, v.Scan.Table, v.Scan.Index, v.Scan.Lo, v.Scan.Hi, v.Missing, v.Extra)
}

// IndexKeyFn derives a row's key in a secondary index from its primary key
// and value; ok=false excludes the row from that index (partial indexes).
type IndexKeyFn func(key, value uint64) (ikey uint64, ok bool)

// Validate replays txns in end-timestamp order over the initial state and
// verifies that every read matches the model. It returns the first violation
// found, or nil if the history is serializable in commit order. Range scans
// over the primary key space (RangeRead.Index == "") are validated too;
// histories with secondary-index scans need ValidateIndexed.
func Validate(initial map[uint64]uint64, initialTable string, txns []Txn) error {
	return ValidateIndexed(initial, initialTable, txns, nil)
}

// ValidateIndexed is Validate for histories whose range scans cover
// secondary index key spaces: indexers maps each RangeRead.Index name to
// the function deriving a live row's key in that index. The primary key
// space "" is always available (index key = row key) and need not be
// passed.
func ValidateIndexed(initial map[uint64]uint64, initialTable string, txns []Txn, indexers map[string]IndexKeyFn) error {
	h := History{
		Initial:  map[string]map[uint64]uint64{initialTable: initial},
		Txns:     txns,
		Indexers: indexers,
	}
	return h.Validate()
}

// Recorder collects transaction footprints from concurrent workers.
type Recorder struct {
	mu   sync.Mutex
	txns []Txn
}

// Record adds a committed transaction's footprint.
func (r *Recorder) Record(t Txn) {
	r.mu.Lock()
	r.txns = append(r.txns, t)
	r.mu.Unlock()
}

// Txns returns the recorded history.
func (r *Recorder) Txns() []Txn {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Txn, len(r.txns))
	copy(out, r.txns)
	return out
}
