// Package check validates serializability of committed histories.
//
// The engine's serializability argument (Section 2) is that a transaction
// sees exactly the data it would see if all its reads were repeated at its
// end timestamp — i.e. committed transactions are serializable in end
// timestamp order. This checker replays a recorded history in that order
// against a model database and verifies every read: if transaction T read
// (key → value) and committed at end timestamp E, the model must hold
// exactly that value for the key when every transaction with a smaller end
// timestamp has been applied.
//
// Integration tests run randomized concurrent workloads under serializable
// isolation on all three engines and feed the committed histories through
// Validate.
package check

import (
	"fmt"
	"sort"
	"sync"
)

// Read is one recorded read: the transaction observed Value for Key (or
// observed the key as absent when Found is false).
type Read struct {
	Table string
	Key   uint64
	Value uint64
	Found bool
}

// WriteOp distinguishes recorded writes.
type WriteOp uint8

const (
	// WriteUpsert sets the key to the value (insert or update).
	WriteUpsert WriteOp = iota
	// WriteDelete removes the key.
	WriteDelete
)

// Write is one recorded write.
type Write struct {
	Table string
	Op    WriteOp
	Key   uint64
	Value uint64
}

// Txn is the recorded footprint of one committed transaction.
type Txn struct {
	// EndTS is the commit (end) timestamp; it determines the serialization
	// order.
	EndTS  uint64
	Reads  []Read
	Writes []Write
}

type modelKey struct {
	table string
	key   uint64
}

// Violation describes a serializability failure.
type Violation struct {
	EndTS uint64
	Read  Read
	// GotValue and GotFound are the model's state at the read's
	// serialization point.
	GotValue uint64
	GotFound bool
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("check: txn@%d read %s[%d] = (%d, found=%v) but model has (%d, found=%v)",
		v.EndTS, v.Read.Table, v.Read.Key, v.Read.Value, v.Read.Found, v.GotValue, v.GotFound)
}

// Validate replays txns in end-timestamp order over the initial state and
// verifies that every read matches the model. It returns the first violation
// found, or nil if the history is serializable in commit order.
func Validate(initial map[uint64]uint64, initialTable string, txns []Txn) error {
	model := make(map[modelKey]uint64, len(initial))
	for k, v := range initial {
		model[modelKey{initialTable, k}] = v
	}
	ordered := make([]Txn, len(txns))
	copy(ordered, txns)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].EndTS < ordered[j].EndTS })
	for i := 1; i < len(ordered); i++ {
		if ordered[i].EndTS == ordered[i-1].EndTS {
			return fmt.Errorf("check: duplicate end timestamp %d", ordered[i].EndTS)
		}
	}
	for _, t := range ordered {
		for _, r := range t.Reads {
			got, found := model[modelKey{r.Table, r.Key}]
			if found != r.Found || (found && got != r.Value) {
				v := &Violation{EndTS: t.EndTS, Read: r, GotValue: got, GotFound: found}
				return v
			}
		}
		for _, w := range t.Writes {
			mk := modelKey{w.Table, w.Key}
			if w.Op == WriteDelete {
				delete(model, mk)
			} else {
				model[mk] = w.Value
			}
		}
	}
	return nil
}

// Recorder collects transaction footprints from concurrent workers.
type Recorder struct {
	mu   sync.Mutex
	txns []Txn
}

// Record adds a committed transaction's footprint.
func (r *Recorder) Record(t Txn) {
	r.mu.Lock()
	r.txns = append(r.txns, t)
	r.mu.Unlock()
}

// Txns returns the recorded history.
func (r *Recorder) Txns() []Txn {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Txn, len(r.txns))
	copy(out, r.txns)
	return out
}
