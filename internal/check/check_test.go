package check

import (
	"errors"
	"testing"
)

func TestValidHistory(t *testing.T) {
	initial := map[uint64]uint64{1: 10, 2: 20}
	txns := []Txn{
		{EndTS: 100,
			Reads:  []Read{{Table: "t", Key: 1, Value: 10, Found: true}},
			Writes: []Write{{Table: "t", Key: 1, Value: 11}}},
		{EndTS: 200,
			Reads:  []Read{{Table: "t", Key: 1, Value: 11, Found: true}, {Table: "t", Key: 2, Value: 20, Found: true}},
			Writes: []Write{{Table: "t", Op: WriteDelete, Key: 2}}},
		{EndTS: 300,
			Reads: []Read{{Table: "t", Key: 2, Found: false}}},
	}
	if err := Validate(initial, "t", txns); err != nil {
		t.Fatal(err)
	}
}

func TestStaleReadDetected(t *testing.T) {
	initial := map[uint64]uint64{1: 10}
	txns := []Txn{
		{EndTS: 100, Writes: []Write{{Table: "t", Key: 1, Value: 11}}},
		// This transaction serializes after the write but read the old value.
		{EndTS: 200, Reads: []Read{{Table: "t", Key: 1, Value: 10, Found: true}}},
	}
	err := Validate(initial, "t", txns)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %v, want Violation", err)
	}
	if v.EndTS != 200 || v.GotValue != 11 {
		t.Fatalf("violation = %+v", v)
	}
}

func TestGhostReadDetected(t *testing.T) {
	txns := []Txn{
		{EndTS: 100, Reads: []Read{{Table: "t", Key: 5, Value: 50, Found: true}}},
	}
	if err := Validate(nil, "t", txns); err == nil {
		t.Fatal("read of non-existent key accepted")
	}
}

func TestMissedInsertDetected(t *testing.T) {
	txns := []Txn{
		{EndTS: 100, Writes: []Write{{Table: "t", Key: 5, Value: 50}}},
		{EndTS: 200, Reads: []Read{{Table: "t", Key: 5, Found: false}}},
	}
	if err := Validate(nil, "t", txns); err == nil {
		t.Fatal("missed insert accepted")
	}
}

func TestDuplicateEndTimestampsRejected(t *testing.T) {
	txns := []Txn{{EndTS: 100}, {EndTS: 100}}
	if err := Validate(nil, "t", txns); err == nil {
		t.Fatal("duplicate end timestamps accepted")
	}
}

func TestOutOfOrderInputSorted(t *testing.T) {
	initial := map[uint64]uint64{1: 10}
	// Presented in reverse commit order; Validate must sort.
	txns := []Txn{
		{EndTS: 200, Reads: []Read{{Table: "t", Key: 1, Value: 11, Found: true}}},
		{EndTS: 100, Writes: []Write{{Table: "t", Key: 1, Value: 11}}},
	}
	if err := Validate(initial, "t", txns); err != nil {
		t.Fatal(err)
	}
}

func TestValidRangeHistory(t *testing.T) {
	initial := map[uint64]uint64{1: 10, 3: 30, 5: 50}
	txns := []Txn{
		{EndTS: 100,
			RangeReads: []RangeRead{{Table: "t", Lo: 0, Hi: 4, Keys: []uint64{1, 3}}},
			Writes:     []Write{{Table: "t", Key: 2, Value: 20}}},
		{EndTS: 200,
			RangeReads: []RangeRead{{Table: "t", Lo: 0, Hi: 4, Keys: []uint64{1, 2, 3}}},
			Writes:     []Write{{Table: "t", Op: WriteDelete, Key: 3}}},
		{EndTS: 300,
			RangeReads: []RangeRead{
				{Table: "t", Lo: 0, Hi: 4, Keys: []uint64{1, 2}},
				{Table: "t", Lo: 5, Hi: 9, Keys: []uint64{5}},
				{Table: "t", Lo: 6, Hi: 9, Keys: nil}, // empty range reads clean
			}},
	}
	if err := Validate(initial, "t", txns); err != nil {
		t.Fatal(err)
	}
}

// TestSeededPhantomDetected is the checker's own mutation test: starting
// from a history Validate accepts, seeding a fake phantom into a recorded
// range scan — an extra observed key the model does not hold, or dropping
// a key it does — must flip Validate to rejection. This is what proves the
// range-aware checker can actually fail.
func TestSeededPhantomDetected(t *testing.T) {
	initial := map[uint64]uint64{1: 10, 3: 30}
	good := func() []Txn {
		return []Txn{
			{EndTS: 100, Writes: []Write{{Table: "t", Key: 2, Value: 20}}},
			{EndTS: 200,
				RangeReads: []RangeRead{{Table: "t", Lo: 0, Hi: 9, Keys: []uint64{1, 2, 3}}}},
		}
	}
	if err := Validate(initial, "t", good()); err != nil {
		t.Fatalf("baseline history rejected: %v", err)
	}

	// Phantom: the scan observed key 7, which no committed transaction ever
	// wrote.
	phantom := good()
	phantom[1].RangeReads[0].Keys = []uint64{1, 2, 3, 7}
	err := Validate(initial, "t", phantom)
	var rv *RangeViolation
	if !errors.As(err, &rv) {
		t.Fatalf("seeded phantom accepted: err = %v", err)
	}
	if len(rv.Extra) != 1 || rv.Extra[0] != 7 || len(rv.Missing) != 0 {
		t.Fatalf("violation = %+v", rv)
	}

	// Missed row: the scan serializes after the insert of key 2 but did not
	// observe it.
	missed := good()
	missed[1].RangeReads[0].Keys = []uint64{1, 3}
	err = Validate(initial, "t", missed)
	if !errors.As(err, &rv) {
		t.Fatalf("missed row accepted: err = %v", err)
	}
	if len(rv.Missing) != 1 || rv.Missing[0] != 2 || len(rv.Extra) != 0 {
		t.Fatalf("violation = %+v", rv)
	}
}

// TestRangeReadStaleSnapshot: a scan that serializes after a delete but
// still observes the deleted row is rejected.
func TestRangeReadStaleSnapshot(t *testing.T) {
	initial := map[uint64]uint64{4: 40}
	txns := []Txn{
		{EndTS: 100, Writes: []Write{{Table: "t", Op: WriteDelete, Key: 4}}},
		{EndTS: 200, RangeReads: []RangeRead{{Table: "t", Lo: 0, Hi: 9, Keys: []uint64{4}}}},
	}
	var rv *RangeViolation
	if err := Validate(initial, "t", txns); !errors.As(err, &rv) {
		t.Fatalf("stale range read accepted: %v", err)
	}
}

// TestSecondaryIndexedRangeReads: range scans over a non-unique secondary
// key space, validated through a per-index key derivation. The secondary
// key is value % 4, so rows move between secondary keys as their values
// change and several rows may share one key.
func TestSecondaryIndexedRangeReads(t *testing.T) {
	secondary := map[string]IndexKeyFn{
		"grp": func(key, value uint64) (uint64, bool) { return value % 4, true },
	}
	initial := map[uint64]uint64{1: 1, 2: 5, 3: 2} // groups: 1→1, 2→1, 3→2
	txns := []Txn{
		{EndTS: 100,
			// Non-unique: keys 1 and 2 both map to group 1.
			RangeReads: []RangeRead{{Table: "t", Index: "grp", Lo: 1, Hi: 1, Keys: []uint64{1, 1}}},
			// Move key 2 to group 3.
			Writes: []Write{{Table: "t", Key: 2, Value: 7}}},
		{EndTS: 200,
			RangeReads: []RangeRead{
				{Table: "t", Index: "grp", Lo: 1, Hi: 2, Keys: []uint64{1, 2}},
				{Table: "t", Index: "grp", Lo: 3, Hi: 3, Keys: []uint64{3}},
			}},
	}
	if err := ValidateIndexed(initial, "t", txns, secondary); err != nil {
		t.Fatal(err)
	}

	// A duplicate miscount on a non-unique key is a violation too: group 1
	// holds two rows at ts 100, observing it once must fail.
	bad := []Txn{{EndTS: 100,
		RangeReads: []RangeRead{{Table: "t", Index: "grp", Lo: 1, Hi: 1, Keys: []uint64{1}}}}}
	var rv *RangeViolation
	if err := ValidateIndexed(initial, "t", bad, secondary); !errors.As(err, &rv) {
		t.Fatalf("duplicate undercount accepted: %v", err)
	}
}

func TestUnknownIndexRejected(t *testing.T) {
	txns := []Txn{{EndTS: 100,
		RangeReads: []RangeRead{{Table: "t", Index: "nope", Lo: 0, Hi: 9}}}}
	if err := Validate(nil, "t", txns); err == nil {
		t.Fatal("scan over unknown index accepted")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 100; i++ {
				r.Record(Txn{EndTS: uint64(w*1000 + i)})
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if len(r.Txns()) != 400 {
		t.Fatalf("recorded %d", len(r.Txns()))
	}
}
