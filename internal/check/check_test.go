package check

import (
	"errors"
	"testing"
)

func TestValidHistory(t *testing.T) {
	initial := map[uint64]uint64{1: 10, 2: 20}
	txns := []Txn{
		{EndTS: 100,
			Reads:  []Read{{Table: "t", Key: 1, Value: 10, Found: true}},
			Writes: []Write{{Table: "t", Key: 1, Value: 11}}},
		{EndTS: 200,
			Reads:  []Read{{Table: "t", Key: 1, Value: 11, Found: true}, {Table: "t", Key: 2, Value: 20, Found: true}},
			Writes: []Write{{Table: "t", Op: WriteDelete, Key: 2}}},
		{EndTS: 300,
			Reads: []Read{{Table: "t", Key: 2, Found: false}}},
	}
	if err := Validate(initial, "t", txns); err != nil {
		t.Fatal(err)
	}
}

func TestStaleReadDetected(t *testing.T) {
	initial := map[uint64]uint64{1: 10}
	txns := []Txn{
		{EndTS: 100, Writes: []Write{{Table: "t", Key: 1, Value: 11}}},
		// This transaction serializes after the write but read the old value.
		{EndTS: 200, Reads: []Read{{Table: "t", Key: 1, Value: 10, Found: true}}},
	}
	err := Validate(initial, "t", txns)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %v, want Violation", err)
	}
	if v.EndTS != 200 || v.GotValue != 11 {
		t.Fatalf("violation = %+v", v)
	}
}

func TestGhostReadDetected(t *testing.T) {
	txns := []Txn{
		{EndTS: 100, Reads: []Read{{Table: "t", Key: 5, Value: 50, Found: true}}},
	}
	if err := Validate(nil, "t", txns); err == nil {
		t.Fatal("read of non-existent key accepted")
	}
}

func TestMissedInsertDetected(t *testing.T) {
	txns := []Txn{
		{EndTS: 100, Writes: []Write{{Table: "t", Key: 5, Value: 50}}},
		{EndTS: 200, Reads: []Read{{Table: "t", Key: 5, Found: false}}},
	}
	if err := Validate(nil, "t", txns); err == nil {
		t.Fatal("missed insert accepted")
	}
}

func TestDuplicateEndTimestampsRejected(t *testing.T) {
	txns := []Txn{{EndTS: 100}, {EndTS: 100}}
	if err := Validate(nil, "t", txns); err == nil {
		t.Fatal("duplicate end timestamps accepted")
	}
}

func TestOutOfOrderInputSorted(t *testing.T) {
	initial := map[uint64]uint64{1: 10}
	// Presented in reverse commit order; Validate must sort.
	txns := []Txn{
		{EndTS: 200, Reads: []Read{{Table: "t", Key: 1, Value: 11, Found: true}}},
		{EndTS: 100, Writes: []Write{{Table: "t", Key: 1, Value: 11}}},
	}
	if err := Validate(initial, "t", txns); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 100; i++ {
				r.Record(Txn{EndTS: uint64(w*1000 + i)})
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if len(r.Txns()) != 400 {
		t.Fatalf("recorded %d", len(r.Txns()))
	}
}
