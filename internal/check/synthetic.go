package check

// Synthetic builds a valid-by-construction randomized history for checker
// benchmarks and corpora: a single table "t" of dense keys [0, rows), each
// transaction one primary-key range scan of up to span keys followed by two
// writes (upsert or delete). The generator tracks presence/values in flat
// arrays, so building the history is O(txns·span) — cheap even for
// histories far longer than the O(model)-per-scan checker could afford.
// The result is a pure function of the arguments.
func Synthetic(rows uint64, txns int, span uint64, seed uint64) *History {
	if span == 0 || span > rows {
		span = rows
	}
	present := make([]bool, rows)
	vals := make([]uint64, rows)
	initial := make(map[uint64]uint64, rows/2)
	for k := uint64(0); k < rows; k += 2 {
		present[k] = true
		vals[k] = k * 3
		initial[k] = k * 3
	}
	rng := seed
	next := func() uint64 {
		rng += 0x9e3779b97f4a7c15
		return splitmix64(rng)
	}
	h := &History{
		Initial: map[string]map[uint64]uint64{"t": initial},
		Txns:    make([]Txn, 0, txns),
	}
	for i := 0; i < txns; i++ {
		t := Txn{EndTS: uint64(i) + 1}
		lo := next() % rows
		hi := lo + next()%span
		if hi >= rows {
			hi = rows - 1
		}
		rr := RangeRead{Table: "t", Lo: lo, Hi: hi}
		for k := lo; k <= hi; k++ {
			if present[k] {
				rr.Keys = append(rr.Keys, k)
			}
		}
		t.RangeReads = append(t.RangeReads, rr)
		for w := 0; w < 2; w++ {
			k := next() % rows
			if present[k] && next()%4 == 0 {
				present[k] = false
				t.Writes = append(t.Writes, Write{Table: "t", Op: WriteDelete, Key: k})
			} else {
				v := next() % 1_000_000
				present[k] = true
				vals[k] = v
				t.Writes = append(t.Writes, Write{Table: "t", Key: k, Value: v})
			}
		}
		h.Txns = append(h.Txns, t)
	}
	return h
}
