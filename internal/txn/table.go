package txn

import (
	"math"
	"sync"
	"sync/atomic"
)

// atomicPaddedUint64 is an atomic uint64 padded out to a cache line so the
// 64 shard minima don't false-share when OldestBegin sweeps them.
//
//mvlint:padded
type atomicPaddedUint64 struct {
	v atomic.Uint64 //mvlint:cacheline
	_ [56]byte
}

func (a *atomicPaddedUint64) Load() uint64   { return a.v.Load() }
func (a *atomicPaddedUint64) Store(x uint64) { a.v.Store(x) }

const tableShards = 64

// noMin is the per-shard minimum sentinel for an empty shard. It is larger
// than any real timestamp (timestamps fit in 63 bits).
const noMin = math.MaxUint64

// Table is the transaction table: a sharded map from transaction ID to
// transaction object. Visibility checks look up the transactions whose IDs
// appear in version Begin/End words; a missing entry means the transaction
// has terminated and finalized its timestamps (Tables 1 and 2: "Terminated
// or not found: reread the field").
//
// The table also tracks the set of active transactions so the garbage
// collector can compute the oldest visible read time. Each shard caches the
// minimum begin timestamp of its entries, maintained on Register/Remove, so
// OldestBegin is O(shards) atomic loads instead of a locked walk of every
// entry — the watermark computation stays off the transaction hot path.
//
// Registration may be lazy: a transaction that has not yet published its ID
// into any shared state (version words, bucket-lock holder lists, commit or
// wait-for dependency sets) is invisible to every lookup, so it may defer
// Register until just before the first such publication — provided a
// gc.ReaderPins pin covers its read time in the meantime, since OldestBegin
// cannot see unregistered transactions.
type Table struct {
	shards [tableShards]tableShard
}

// tableShard puts the minimum first so the 64 minima form a stride-64
// array OldestBegin sweeps with one load per line, and pads the tail so
// one shard's lock/map traffic never lands on the next shard's minimum.
//
//mvlint:padded
type tableShard struct {
	// min is the smallest Begin among the shard's entries, or noMin when the
	// shard is empty. Written under mu; read with an atomic load by
	// OldestBegin.
	min atomicPaddedUint64 //mvlint:cacheline
	mu  sync.RWMutex       //mvlint:cacheline
	m   map[uint64]*Txn
	_   [32]byte
}

// NewTable returns an empty transaction table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*Txn)
		t.shards[i].min.Store(noMin)
	}
	return t
}

func (tt *Table) shard(id uint64) *tableShard {
	// IDs are sequential; mix them so neighbouring transactions spread
	// across shards.
	h := id * 0x9E3779B97F4A7C15
	return &tt.shards[h>>58%tableShards]
}

// Register inserts a transaction into the table.
func (tt *Table) Register(t *Txn) {
	s := tt.shard(t.ID())
	b := t.Begin()
	s.mu.Lock()
	s.m[t.ID()] = t
	if b < s.min.Load() {
		s.min.Store(b)
	}
	s.mu.Unlock()
}

// Lookup finds a transaction by ID. The second result is false if the
// transaction has terminated (or never existed).
func (tt *Table) Lookup(id uint64) (*Txn, bool) {
	s := tt.shard(id)
	s.mu.RLock()
	t, ok := s.m[id]
	s.mu.RUnlock()
	return t, ok
}

// Remove deletes a transaction from the table after postprocessing. The
// object itself may live on: stale pointers obtained before the removal can
// still be dereferenced (all shared fields are synchronized), they just
// observe the finalized state.
func (tt *Table) Remove(id uint64) {
	s := tt.shard(id)
	s.mu.Lock()
	t, ok := s.m[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.m, id)
	if t.Begin() == s.min.Load() {
		// The shard minimum left; rescan the (small) shard for the new one.
		newMin := uint64(noMin)
		for _, o := range s.m {
			if b := o.Begin(); b < newMin {
				newMin = b
			}
		}
		s.min.Store(newMin)
	}
	s.mu.Unlock()
}

// OldestBegin returns the smallest begin timestamp of any registered
// transaction, or fallback if the table is empty. Versions whose end
// timestamp is at or below this watermark are invisible to every current and
// future transaction and can be garbage collected.
func (tt *Table) OldestBegin(fallback uint64) uint64 {
	oldest := uint64(noMin)
	for i := range tt.shards {
		if m := tt.shards[i].min.Load(); m < oldest {
			oldest = m
		}
	}
	if oldest == noMin || oldest > fallback {
		return fallback
	}
	return oldest
}

// ForEach calls fn for every registered transaction. It is used by the
// deadlock detector to enumerate blocked transactions. fn must not call back
// into the table's locking methods for the same shard.
func (tt *Table) ForEach(fn func(*Txn)) {
	for i := range tt.shards {
		s := &tt.shards[i]
		s.mu.RLock()
		txns := make([]*Txn, 0, len(s.m))
		for _, t := range s.m {
			txns = append(txns, t)
		}
		s.mu.RUnlock()
		for _, t := range txns {
			fn(t)
		}
	}
}

// Len returns the number of registered transactions.
func (tt *Table) Len() int {
	n := 0
	for i := range tt.shards {
		s := &tt.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
