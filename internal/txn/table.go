package txn

import (
	"sync"
)

const tableShards = 64

// Table is the transaction table: a sharded map from transaction ID to
// transaction object. Visibility checks look up the transactions whose IDs
// appear in version Begin/End words; a missing entry means the transaction
// has terminated and finalized its timestamps (Tables 1 and 2: "Terminated
// or not found: reread the field").
//
// The table also tracks the set of active transactions so the garbage
// collector can compute the oldest visible read time.
type Table struct {
	shards [tableShards]tableShard
}

type tableShard struct {
	mu sync.RWMutex
	m  map[uint64]*Txn
}

// NewTable returns an empty transaction table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*Txn)
	}
	return t
}

func (tt *Table) shard(id uint64) *tableShard {
	// IDs are sequential; mix them so neighbouring transactions spread
	// across shards.
	h := id * 0x9E3779B97F4A7C15
	return &tt.shards[h>>58%tableShards]
}

// Register inserts a transaction into the table.
func (tt *Table) Register(t *Txn) {
	s := tt.shard(t.ID)
	s.mu.Lock()
	s.m[t.ID] = t
	s.mu.Unlock()
}

// Lookup finds a transaction by ID. The second result is false if the
// transaction has terminated (or never existed).
func (tt *Table) Lookup(id uint64) (*Txn, bool) {
	s := tt.shard(id)
	s.mu.RLock()
	t, ok := s.m[id]
	s.mu.RUnlock()
	return t, ok
}

// Remove deletes a transaction from the table after postprocessing. The
// object itself may live on: the garbage collector still needs its write
// set's old-version pointers.
func (tt *Table) Remove(id uint64) {
	s := tt.shard(id)
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

// OldestBegin returns the smallest begin timestamp of any registered
// transaction, or fallback if the table is empty. Versions whose end
// timestamp is at or below this watermark are invisible to every current and
// future transaction and can be garbage collected.
func (tt *Table) OldestBegin(fallback uint64) uint64 {
	oldest := fallback
	for i := range tt.shards {
		s := &tt.shards[i]
		s.mu.RLock()
		for _, t := range s.m {
			if t.Begin < oldest {
				oldest = t.Begin
			}
		}
		s.mu.RUnlock()
	}
	return oldest
}

// ForEach calls fn for every registered transaction. It is used by the
// deadlock detector to enumerate blocked transactions. fn must not call back
// into the table's locking methods for the same shard.
func (tt *Table) ForEach(fn func(*Txn)) {
	for i := range tt.shards {
		s := &tt.shards[i]
		s.mu.RLock()
		txns := make([]*Txn, 0, len(s.m))
		for _, t := range s.m {
			txns = append(txns, t)
		}
		s.mu.RUnlock()
		for _, t := range txns {
			fn(t)
		}
	}
}

// Len returns the number of registered transactions.
func (tt *Table) Len() int {
	n := 0
	for i := range tt.shards {
		s := &tt.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
