// Package txn implements transaction objects and the transaction table.
//
// A transaction moves through the states of Figure 2: Active during normal
// processing, Preparing once it has acquired an end timestamp, then
// Committed or Aborted, and finally Terminated when postprocessing is done
// and the object is removed from the transaction table. Other transactions
// consult the table to resolve Begin/End words that contain transaction IDs
// (Tables 1 and 2 of the paper).
//
// The package also implements the two dependency mechanisms:
//
//   - Commit dependencies (Section 2.7): T1 may commit only if T2 commits.
//     Implemented register-and-report: T1 registers with T2; T2 reports when
//     it resolves. Cascading aborts are possible.
//   - Wait-for dependencies (Section 4.2): T must wait before acquiring its
//     end timestamp. Read-lock releases and bucket-lock holders decrement
//     WaitForCounter; NoMoreWaitFors prevents starvation.
//
// All waits are consolidated just before commit; nothing here blocks during
// normal processing.
package txn

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// State is a transaction lifecycle state (Figure 2).
type State uint32

const (
	// Active transactions are in their normal processing phase.
	Active State = iota
	// Preparing transactions have acquired an end timestamp and are
	// validating, waiting for dependencies, and logging.
	Preparing
	// Committed transactions have durably committed but may not yet have
	// finalized the timestamps in their versions.
	Committed
	// Aborted transactions have failed; their new versions are garbage.
	Aborted
	// Terminated transactions have finished postprocessing. A terminated
	// transaction is removed from the transaction table, so readers observe
	// it as "not found" and reread the version word.
	Terminated
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Active:
		return "Active"
	case Preparing:
		return "Preparing"
	case Committed:
		return "Committed"
	case Aborted:
		return "Aborted"
	case Terminated:
		return "Terminated"
	default:
		return "Unknown"
	}
}

// ErrAborted is returned from wait points when the transaction has been told
// to abort (AbortNow), for example by a failed commit dependency or by the
// deadlock detector.
var ErrAborted = errors.New("txn: abort requested")

// Anonymous is the transaction ID of read-only snapshot readers that never
// enter the transaction table. Real IDs are drawn from the oracle and start
// at 1, so 0 can never appear in a version's Begin/End word: the visibility
// code's "is this my own write?" comparisons are trivially false for an
// anonymous reader, and no lookup of a real ID can ever resolve to one.
// Anonymous transactions must instead be covered by a gc.ReaderPins pin so
// the watermark respects their read time.
const Anonymous uint64 = 0

// DepResult is the outcome of registering a commit dependency.
type DepResult int

const (
	// DepAdded means the dependency was registered; the dependent's
	// CommitDepCounter has been incremented and will be decremented (or its
	// AbortNow flag set) when the target resolves.
	DepAdded DepResult = iota
	// DepCommitted means the target already committed; no dependency is
	// needed.
	DepCommitted
	// DepAborted means the target already aborted; the dependent must abort.
	DepAborted
)

// Txn is a transaction object. It carries only the scheme-independent
// machinery; engines embed it and add their read/scan/write sets.
//
// Txn objects may be pooled and recycled by the engine. Every field that a
// concurrent reader can reach through a stale pointer (obtained from the
// transaction table before the entry was removed) is either atomic or
// mutex-guarded, so Reset never races with late readers; see Reset for the
// logical-safety protocol on top of that.
type Txn struct {
	// id is the transaction's unique identifier, drawn from the global
	// timestamp counter. It fits in the 54-bit WriteLock field. Atomic so a
	// reader holding a stale pointer can revalidate it after Reset (IDs are
	// never reused, so id is also the object's incarnation tag).
	id atomic.Uint64
	// begin is the begin timestamp, assigned at creation or Reset.
	begin atomic.Uint64

	end   atomic.Uint64
	state atomic.Uint32

	// commitDepCounter counts unresolved incoming commit dependencies.
	commitDepCounter atomic.Int32
	abortNow         atomic.Bool

	mu   sync.Mutex
	cond sync.Cond

	// depsClosed is set (under mu) when the transaction resolves its
	// dependents; registrations arriving later consult the final state.
	depsClosed bool
	committed  bool
	// commitDepSet holds IDs of transactions that depend on this one
	// committing (the paper's CommitDepSet).
	commitDepSet []uint64

	// waitForCounter counts incoming wait-for dependencies (guarded by mu).
	waitForCounter int
	// noMoreWaitFors, once set, rejects new incoming wait-for dependencies
	// (guarded by mu). It is set when the transaction has drained its
	// wait-fors and is about to precommit, preventing starvation.
	noMoreWaitFors bool
	// outgoingReleased is set once outgoing wait-fors have been released, so
	// late registrations into waitingTxnList are refused (guarded by mu).
	outgoingReleased bool
	// waitingTxnList holds IDs of transactions that wait on this transaction
	// to complete (the paper's WaitingTxnList). They are released when this
	// transaction precommits or aborts.
	waitingTxnList []uint64

	// lockMu guards readLocks: the list of versions this transaction holds
	// read locks on. The owner appends and drains it; the deadlock detector
	// reads it concurrently to recover implicit wait-for edges
	// (Section 4.4, step 3).
	lockMu    sync.Mutex
	readLocks []*storage.Version
}

// New creates a transaction in the Active state with the given ID and begin
// timestamp. Engines should allocate both from the same oracle draw.
func New(id, begin uint64) *Txn {
	t := &Txn{}
	t.cond.L = &t.mu
	t.id.Store(id)
	t.begin.Store(begin)
	return t
}

// Reset re-initializes a terminated transaction object for reuse with a new
// identity. The caller must guarantee that the object has been removed from
// the transaction table AND that every transaction which could have looked it
// up has itself terminated (the engine defers reuse until the GC watermark
// passes the removal timestamp). The new id is published first: a late reader
// that revalidates the id after reading state/end words (see ID) will detect
// the recycle and treat the old transaction as terminated.
func (t *Txn) Reset(id, begin uint64) {
	t.id.Store(id)
	t.begin.Store(begin)
	t.end.Store(0)
	t.state.Store(uint32(Active))
	t.commitDepCounter.Store(0)
	t.abortNow.Store(false)
	t.mu.Lock()
	t.depsClosed = false
	t.committed = false
	t.commitDepSet = t.commitDepSet[:0]
	t.waitForCounter = 0
	t.noMoreWaitFors = false
	t.outgoingReleased = false
	t.waitingTxnList = t.waitingTxnList[:0]
	t.mu.Unlock()
	// The read-lock list was drained at end of normal processing; skip the
	// lock when it is already empty (reading len unsynchronized is fine: the
	// only writers are the previous owner, ordered by the recycle protocol,
	// and concurrent deadlock-detector access only reads).
	if len(t.readLocks) > 0 {
		t.lockMu.Lock()
		clear(t.readLocks)
		t.readLocks = t.readLocks[:0]
		t.lockMu.Unlock()
	}
}

// ID returns the transaction's unique identifier. Readers that obtained this
// object from the transaction table and then read its state or end timestamp
// should call ID again afterwards: a changed value means the object was
// recycled, so the transaction they looked up has terminated and the version
// word that named it must be reread.
func (t *Txn) ID() uint64 { return t.id.Load() }

// Begin returns the begin timestamp.
func (t *Txn) Begin() uint64 { return t.begin.Load() }

// State returns the current lifecycle state.
func (t *Txn) State() State { return State(t.state.Load()) }

// SetState transitions the lifecycle state. Transitions are stores of the
// new state; visibility checks tolerate any interleaving because they treat
// Terminated/not-found as "reread the word".
func (t *Txn) SetState(s State) { t.state.Store(uint32(s)) }

// End returns the end timestamp, or 0 if none has been assigned yet.
func (t *Txn) End() uint64 { return t.end.Load() }

// SetEnd assigns the end timestamp. It must be called exactly once, just
// before the transition to Preparing.
func (t *Txn) SetEnd(ts uint64) { t.end.Store(ts) }

// AbortRequested reports whether some other transaction (a failed commit
// dependency or the deadlock detector) has asked this transaction to abort.
func (t *Txn) AbortRequested() bool { return t.abortNow.Load() }

// RequestAbort sets the AbortNow flag and wakes the transaction if it is
// waiting. The owner notices at its next wait point or state check.
func (t *Txn) RequestAbort() {
	t.abortNow.Store(true)
	t.mu.Lock()
	t.cond.Broadcast()
	t.mu.Unlock()
}

// --- Commit dependencies (Section 2.7) ---

// RegisterDependent registers dep's commit dependency on t: dep may commit
// only if t commits. On DepAdded the dependent's counter was incremented; on
// DepAborted the caller must abort dep; on DepCommitted no dependency is
// needed.
func (t *Txn) RegisterDependent(dep *Txn) DepResult {
	t.mu.Lock()
	if t.depsClosed {
		committed := t.committed
		t.mu.Unlock()
		if committed {
			return DepCommitted
		}
		return DepAborted
	}
	dep.commitDepCounter.Add(1)
	t.commitDepSet = append(t.commitDepSet, dep.ID())
	t.mu.Unlock()
	return DepAdded
}

// CommitDepCount returns the number of unresolved commit dependencies.
func (t *Txn) CommitDepCount() int { return int(t.commitDepCounter.Load()) }

// ResolveDependents reports this transaction's outcome to every registered
// dependent. On commit their counters are decremented (waking them at zero);
// on abort their AbortNow flags are set, cascading the abort. Dependents
// that are no longer in the table have already aborted and are skipped.
func (t *Txn) ResolveDependents(committed bool, table *Table) {
	t.mu.Lock()
	t.depsClosed = true
	t.committed = committed
	// Once depsClosed is set no further registrations append, so the slice
	// can be read outside the lock and left in place for Reset to reuse.
	deps := t.commitDepSet
	t.mu.Unlock()
	for _, id := range deps {
		d, ok := table.Lookup(id)
		if !ok {
			continue // already aborted and terminated
		}
		if committed {
			if d.commitDepCounter.Add(-1) <= 0 {
				d.mu.Lock()
				d.cond.Broadcast()
				d.mu.Unlock()
			}
		} else {
			d.RequestAbort()
		}
	}
}

// WaitCommitDeps blocks until all commit dependencies are resolved. It
// returns ErrAborted if AbortNow was set, in which case the transaction must
// abort (a dependency failed). Note that a transaction with commit
// dependencies may not wait at all: dependencies are often resolved before
// it is ready to commit.
func (t *Txn) WaitCommitDeps() error {
	// Fast path: all registrations were performed by this transaction's own
	// goroutine (a dependent registers itself), so a zero counter means no
	// dependency is outstanding — no lock needed.
	if t.abortNow.Load() {
		return ErrAborted
	}
	if t.commitDepCounter.Load() <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.abortNow.Load() {
			return ErrAborted
		}
		if t.commitDepCounter.Load() <= 0 {
			return nil
		}
		t.cond.Wait()
	}
}

// --- Wait-for dependencies (Section 4.2) ---

// AddWaitFor installs an incoming wait-for dependency: t may not precommit
// until the dependency is released. It fails (returns false) if t no longer
// accepts dependencies (NoMoreWaitFors), in which case the caller must
// abort.
func (t *Txn) AddWaitFor() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.noMoreWaitFors {
		return false
	}
	t.waitForCounter++
	return true
}

// ReleaseWaitFor releases one incoming wait-for dependency, waking t if the
// counter reaches zero.
func (t *Txn) ReleaseWaitFor() {
	t.mu.Lock()
	t.waitForCounter--
	if t.waitForCounter <= 0 {
		t.cond.Broadcast()
	}
	t.mu.Unlock()
}

// WaitForCount returns the number of unresolved incoming wait-for
// dependencies. It is used by the deadlock detector.
func (t *Txn) WaitForCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.waitForCounter
}

// WaitWaitFors blocks until the wait-for counter drains, then atomically
// sets NoMoreWaitFors so no further dependencies can be installed, and
// returns. It returns ErrAborted if AbortNow was set while waiting (for
// example by the deadlock detector breaking a cycle).
func (t *Txn) WaitWaitFors() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.abortNow.Load() {
			return ErrAborted
		}
		if t.waitForCounter <= 0 {
			t.noMoreWaitFors = true
			return nil
		}
		t.cond.Wait()
	}
}

// RegisterWaiter records that waiter waits on t to complete (t's
// WaitingTxnList gains waiter). It returns false if t has already released
// its outgoing dependencies, meaning no dependency is needed: t has finished
// the phase the waiter cares about.
func (t *Txn) RegisterWaiter(waiter uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.outgoingReleased {
		return false
	}
	t.waitingTxnList = append(t.waitingTxnList, waiter)
	return true
}

// Waiters returns a snapshot of the IDs waiting on t. Used by the deadlock
// detector to build explicit wait-for edges.
func (t *Txn) Waiters() []uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint64, len(t.waitingTxnList))
	copy(out, t.waitingTxnList)
	return out
}

// ReleaseWaiters releases every transaction waiting on t: each one's
// WaitForCounter is decremented. Called when t precommits (acquires its end
// timestamp) or aborts. Subsequent RegisterWaiter calls return false.
func (t *Txn) ReleaseWaiters(table *Table) {
	t.mu.Lock()
	t.outgoingReleased = true
	// outgoingReleased blocks further registrations, so the slice can be
	// read outside the lock and left in place for Reset to reuse.
	waiters := t.waitingTxnList
	t.mu.Unlock()
	for _, id := range waiters {
		if w, ok := table.Lookup(id); ok {
			w.ReleaseWaitFor()
		}
	}
}

// Blocked reports whether the transaction is currently prevented from
// precommitting by incoming wait-for dependencies. The deadlock detector
// only considers transactions for which this is true.
func (t *Txn) Blocked() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.waitForCounter > 0 && !t.abortNow.Load()
}

// --- Read-lock bookkeeping (the ReadSet of Section 4) ---

// RecordReadLock remembers that the transaction holds a read lock on v.
func (t *Txn) RecordReadLock(v *storage.Version) {
	t.lockMu.Lock()
	t.readLocks = append(t.readLocks, v)
	t.lockMu.Unlock()
}

// DrainReadLocks moves the read-lock list into dst (reusing its capacity)
// and empties the list; the owner calls it when releasing all read locks at
// the end of normal processing.
func (t *Txn) DrainReadLocks(dst []*storage.Version) []*storage.Version {
	t.lockMu.Lock()
	dst = append(dst[:0], t.readLocks...)
	clear(t.readLocks)
	t.readLocks = t.readLocks[:0]
	t.lockMu.Unlock()
	return dst
}

// SnapshotReadLocks copies the current read-lock list for the deadlock
// detector.
func (t *Txn) SnapshotReadLocks() []*storage.Version {
	t.lockMu.Lock()
	out := make([]*storage.Version, len(t.readLocks))
	copy(out, t.readLocks)
	t.lockMu.Unlock()
	return out
}
