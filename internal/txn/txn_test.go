package txn

import (
	"sync"
	"testing"
	"time"
)

func newPair() (*Table, *Txn, *Txn) {
	tt := NewTable()
	t1 := New(1, 1)
	t2 := New(2, 2)
	tt.Register(t1)
	tt.Register(t2)
	return tt, t1, t2
}

func TestStateTransitions(t *testing.T) {
	tx := New(1, 1)
	if tx.State() != Active {
		t.Fatalf("initial state %v", tx.State())
	}
	for _, s := range []State{Preparing, Committed, Terminated} {
		tx.SetState(s)
		if tx.State() != s {
			t.Fatalf("state %v, want %v", tx.State(), s)
		}
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Active: "Active", Preparing: "Preparing", Committed: "Committed",
		Aborted: "Aborted", Terminated: "Terminated", State(99): "Unknown",
	}
	for s, str := range want {
		if s.String() != str {
			t.Fatalf("State(%d).String() = %q, want %q", s, s.String(), str)
		}
	}
}

func TestCommitDepResolveCommit(t *testing.T) {
	tt, t1, t2 := newPair()
	// t1 depends on t2.
	if res := t2.RegisterDependent(t1); res != DepAdded {
		t.Fatalf("RegisterDependent = %v", res)
	}
	if t1.CommitDepCount() != 1 {
		t.Fatalf("CommitDepCount = %d", t1.CommitDepCount())
	}
	done := make(chan error, 1)
	go func() { done <- t1.WaitCommitDeps() }()
	time.Sleep(5 * time.Millisecond)
	t2.ResolveDependents(true, tt)
	if err := <-done; err != nil {
		t.Fatalf("WaitCommitDeps = %v", err)
	}
	if t1.CommitDepCount() != 0 {
		t.Fatalf("CommitDepCount after resolve = %d", t1.CommitDepCount())
	}
}

func TestCommitDepResolveAbortCascades(t *testing.T) {
	tt, t1, t2 := newPair()
	t2.RegisterDependent(t1)
	done := make(chan error, 1)
	go func() { done <- t1.WaitCommitDeps() }()
	time.Sleep(5 * time.Millisecond)
	t2.ResolveDependents(false, tt)
	if err := <-done; err != ErrAborted {
		t.Fatalf("WaitCommitDeps = %v, want ErrAborted", err)
	}
	if !t1.AbortRequested() {
		t.Fatal("AbortNow not set on dependent")
	}
}

func TestRegisterAfterResolution(t *testing.T) {
	tt, t1, t2 := newPair()
	t2.ResolveDependents(true, tt)
	if res := t2.RegisterDependent(t1); res != DepCommitted {
		t.Fatalf("after commit: RegisterDependent = %v, want DepCommitted", res)
	}
	t3 := New(3, 3)
	tt.Register(t3)
	t3.ResolveDependents(false, tt)
	if res := t3.RegisterDependent(t1); res != DepAborted {
		t.Fatalf("after abort: RegisterDependent = %v, want DepAborted", res)
	}
}

func TestResolveSkipsMissingDependents(t *testing.T) {
	tt, t1, t2 := newPair()
	t2.RegisterDependent(t1)
	tt.Remove(t1.ID()) // t1 already aborted and terminated
	t2.ResolveDependents(true, tt)
	// No panic, no effect on t1 beyond its own responsibility.
}

func TestCommitDepNoWaitWhenResolvedEarly(t *testing.T) {
	tt, t1, t2 := newPair()
	t2.RegisterDependent(t1)
	t2.ResolveDependents(true, tt)
	// Dependency resolved before t1 is ready to commit: no wait at all.
	if err := t1.WaitCommitDeps(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitForLifecycle(t *testing.T) {
	_, t1, _ := newPair()
	if !t1.AddWaitFor() {
		t.Fatal("AddWaitFor failed on active txn")
	}
	if t1.WaitForCount() != 1 {
		t.Fatalf("WaitForCount = %d", t1.WaitForCount())
	}
	if !t1.Blocked() {
		t.Fatal("Blocked = false with pending wait-for")
	}
	done := make(chan error, 1)
	go func() { done <- t1.WaitWaitFors() }()
	time.Sleep(5 * time.Millisecond)
	t1.ReleaseWaitFor()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// NoMoreWaitFors now set: further installs fail.
	if t1.AddWaitFor() {
		t.Fatal("AddWaitFor succeeded after WaitWaitFors returned")
	}
}

func TestWaitWaitForsAbortBreaksWait(t *testing.T) {
	_, t1, _ := newPair()
	t1.AddWaitFor()
	done := make(chan error, 1)
	go func() { done <- t1.WaitWaitFors() }()
	time.Sleep(5 * time.Millisecond)
	t1.RequestAbort() // deadlock detector's victim path
	if err := <-done; err != ErrAborted {
		t.Fatalf("WaitWaitFors = %v, want ErrAborted", err)
	}
}

func TestRegisterWaiterAndRelease(t *testing.T) {
	tt, t1, t2 := newPair()
	// t2 waits on t1.
	if !t2.AddWaitFor() {
		t.Fatal("AddWaitFor failed")
	}
	if !t1.RegisterWaiter(t2.ID()) {
		t.Fatal("RegisterWaiter failed")
	}
	if w := t1.Waiters(); len(w) != 1 || w[0] != t2.ID() {
		t.Fatalf("Waiters = %v", w)
	}
	t1.ReleaseWaiters(tt)
	if t2.WaitForCount() != 0 {
		t.Fatalf("WaitForCount = %d after ReleaseWaiters", t2.WaitForCount())
	}
	// Late registration is refused once outgoing deps are released.
	if t1.RegisterWaiter(t2.ID()) {
		t.Fatal("RegisterWaiter succeeded after ReleaseWaiters")
	}
}

func TestWaitForCounterTransientNegative(t *testing.T) {
	_, t1, _ := newPair()
	// A release racing ahead of its matching add must not wedge the txn.
	t1.ReleaseWaitFor()
	t1.AddWaitFor()
	if err := t1.WaitWaitFors(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDependents(t *testing.T) {
	tt := NewTable()
	target := New(1, 1)
	tt.Register(target)
	const n = 32
	deps := make([]*Txn, n)
	for i := range deps {
		deps[i] = New(uint64(i+2), uint64(i+2))
		tt.Register(deps[i])
	}
	var wg sync.WaitGroup
	for _, d := range deps {
		wg.Add(1)
		go func(d *Txn) {
			defer wg.Done()
			if res := target.RegisterDependent(d); res == DepAdded {
				_ = d.WaitCommitDeps()
			}
		}(d)
	}
	time.Sleep(10 * time.Millisecond)
	target.ResolveDependents(true, tt)
	wg.Wait()
	for _, d := range deps {
		if d.CommitDepCount() != 0 {
			t.Fatalf("dependent %d count = %d", d.ID(), d.CommitDepCount())
		}
	}
}

func TestTableLookupRemove(t *testing.T) {
	tt := NewTable()
	tx := New(42, 42)
	tt.Register(tx)
	if got, ok := tt.Lookup(42); !ok || got != tx {
		t.Fatal("Lookup failed")
	}
	if tt.Len() != 1 {
		t.Fatalf("Len = %d", tt.Len())
	}
	tt.Remove(42)
	if _, ok := tt.Lookup(42); ok {
		t.Fatal("Lookup found removed txn")
	}
	if tt.Len() != 0 {
		t.Fatalf("Len = %d after remove", tt.Len())
	}
}

func TestReset(t *testing.T) {
	tt := NewTable()
	t1 := New(1, 1)
	t2 := New(2, 2)
	tt.Register(t1)
	tt.Register(t2)
	t2.RegisterDependent(t1) // dirty commitDepSet on t2, counter on t1
	t1.AddWaitFor()
	t1.RegisterWaiter(t2.ID())
	t1.RequestAbort()
	t1.SetEnd(9)
	t1.SetState(Terminated)
	tt.Remove(t1.ID())

	t1.Reset(50, 50)
	if t1.ID() != 50 || t1.Begin() != 50 {
		t.Fatalf("identity not reset: id=%d begin=%d", t1.ID(), t1.Begin())
	}
	if t1.State() != Active || t1.End() != 0 {
		t.Fatalf("lifecycle not reset: state=%v end=%d", t1.State(), t1.End())
	}
	if t1.AbortRequested() {
		t.Fatal("abortNow survived Reset")
	}
	if t1.CommitDepCount() != 0 || t1.WaitForCount() != 0 || len(t1.Waiters()) != 0 {
		t.Fatal("dependency state survived Reset")
	}
	// The reset object accepts fresh dependencies again.
	if !t1.AddWaitFor() {
		t.Fatal("AddWaitFor refused after Reset")
	}
	t1.ReleaseWaitFor()
	if err := t1.WaitWaitFors(); err != nil {
		t.Fatal(err)
	}
}

func TestOldestBeginShardMinChurn(t *testing.T) {
	tt := NewTable()
	// Register/remove in interleaved order so shard minima are repeatedly
	// invalidated and rebuilt.
	txs := make([]*Txn, 0, 200)
	for i := uint64(1); i <= 200; i++ {
		tx := New(i, i)
		txs = append(txs, tx)
		tt.Register(tx)
	}
	for i := 0; i < 200; i += 2 { // remove evens first
		tt.Remove(txs[i].ID())
	}
	if got := tt.OldestBegin(1 << 40); got != 2 {
		t.Fatalf("OldestBegin = %d, want 2", got)
	}
	for i := 1; i < 199; i += 2 {
		tt.Remove(txs[i].ID())
	}
	if got := tt.OldestBegin(1 << 40); got != 200 {
		t.Fatalf("OldestBegin = %d, want 200", got)
	}
	tt.Remove(200)
	if got := tt.OldestBegin(777); got != 777 {
		t.Fatalf("empty-table OldestBegin = %d, want fallback", got)
	}
}

func TestOldestBegin(t *testing.T) {
	tt := NewTable()
	if got := tt.OldestBegin(77); got != 77 {
		t.Fatalf("empty table OldestBegin = %d, want fallback 77", got)
	}
	for _, b := range []uint64{30, 10, 20} {
		tt.Register(New(b, b))
	}
	if got := tt.OldestBegin(100); got != 10 {
		t.Fatalf("OldestBegin = %d, want 10", got)
	}
	tt.Remove(10)
	if got := tt.OldestBegin(100); got != 20 {
		t.Fatalf("OldestBegin = %d, want 20", got)
	}
}

func TestForEach(t *testing.T) {
	tt := NewTable()
	for i := uint64(1); i <= 10; i++ {
		tt.Register(New(i, i))
	}
	seen := make(map[uint64]bool)
	tt.ForEach(func(tx *Txn) { seen[tx.ID()] = true })
	if len(seen) != 10 {
		t.Fatalf("ForEach visited %d", len(seen))
	}
}
