package keyenc

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestLayoutValidation(t *testing.T) {
	if _, err := NewLayout(); err == nil {
		t.Fatal("empty layout accepted")
	}
	if _, err := NewLayout(Field{"a", 0}); err == nil {
		t.Fatal("zero-width field accepted")
	}
	if _, err := NewLayout(Field{"a", 65}); err == nil {
		t.Fatal("65-bit field accepted")
	}
	if _, err := NewLayout(Field{"a", 40}, Field{"b", 25}); err == nil {
		t.Fatal("65 total bits accepted")
	}
	if _, err := NewLayout(Field{"a", 32}, Field{"b", 32}); err != nil {
		t.Fatalf("64 total bits rejected: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := MustLayout(Field{"region", 16}, Field{"user", 32}, Field{"seq", 16})
	cases := [][]uint64{
		{0, 0, 0},
		{1, 2, 3},
		{65535, 4294967295, 65535},
		{7, 0, 65535},
	}
	for _, vals := range cases {
		key, err := l.Encode(vals...)
		if err != nil {
			t.Fatalf("Encode(%v): %v", vals, err)
		}
		got := l.Decode(key)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("Decode(Encode(%v)) = %v", vals, got)
			}
			if f := l.FieldOf(key, i); f != vals[i] {
				t.Fatalf("FieldOf(%d) = %d, want %d", i, f, vals[i])
			}
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	l := MustLayout(Field{"a", 8}, Field{"b", 8})
	if _, err := l.Encode(1); !errors.Is(err, ErrArity) {
		t.Fatalf("arity err = %v", err)
	}
	if _, err := l.Encode(1, 2, 3); !errors.Is(err, ErrArity) {
		t.Fatalf("arity err = %v", err)
	}
	if _, err := l.Encode(256, 0); !errors.Is(err, ErrOverflow) {
		t.Fatalf("overflow err = %v", err)
	}
	if _, _, err := l.PrefixRange(0, 0, 0); !errors.Is(err, ErrArity) {
		t.Fatalf("prefix arity err = %v", err)
	}
	if _, _, err := l.PrefixRange(999); !errors.Is(err, ErrOverflow) {
		t.Fatalf("prefix overflow err = %v", err)
	}
}

func TestPrefixRange(t *testing.T) {
	l := MustLayout(Field{"grp", 16}, Field{"id", 48})
	lo, hi := l.MustPrefixRange(5)
	if want := uint64(5) << 48; lo != want {
		t.Fatalf("lo = %#x, want %#x", lo, want)
	}
	if want := uint64(5)<<48 | (uint64(1)<<48 - 1); hi != want {
		t.Fatalf("hi = %#x, want %#x", hi, want)
	}
	// Full-tuple prefix pins a single key.
	lo, hi = l.MustPrefixRange(5, 77)
	if lo != hi || lo != l.MustEncode(5, 77) {
		t.Fatalf("full prefix [%#x, %#x]", lo, hi)
	}
	// Empty prefix covers the whole key space of the layout.
	lo, hi = l.MustPrefixRange()
	if lo != 0 || hi != ^uint64(0) {
		t.Fatalf("empty prefix [%#x, %#x]", lo, hi)
	}
	// Narrow layout: empty prefix is bounded by the layout's total width.
	s := MustLayout(Field{"a", 4}, Field{"b", 4})
	lo, hi = s.MustPrefixRange()
	if lo != 0 || hi != 255 {
		t.Fatalf("8-bit layout empty prefix [%d, %d]", lo, hi)
	}
	// Adjacent prefixes tile the space without overlap.
	_, hi5 := l.MustPrefixRange(5)
	lo6, _ := l.MustPrefixRange(6)
	if hi5+1 != lo6 {
		t.Fatalf("prefix 5 ends %#x, prefix 6 starts %#x", hi5, lo6)
	}
}

func TestStringAndAccessors(t *testing.T) {
	l := MustLayout(Field{"grp", 16}, Field{"id", 48})
	if l.String() != "(grp:16, id:48)" {
		t.Fatalf("String = %q", l.String())
	}
	if l.NumFields() != 2 || l.Field(1).Name != "id" || l.Bits() != 64 {
		t.Fatal("accessors wrong")
	}
	if l.FieldMax(0) != 65535 {
		t.Fatalf("FieldMax = %d", l.FieldMax(0))
	}
}

// quickLayout is the shared property-test layout; widths deliberately
// uneven and summing below 64 to exercise the unused-high-bits case.
var quickLayout = MustLayout(Field{"a", 12}, Field{"b", 31}, Field{"c", 9})

func clampVals(l *Layout, raw [3]uint64) []uint64 {
	vals := make([]uint64, 3)
	for i := range vals {
		vals[i] = raw[i] & l.FieldMax(i)
	}
	return vals
}

// TestQuickRoundTrip: Decode(Encode(t)) == t for arbitrary in-range tuples.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw [3]uint64) bool {
		vals := clampVals(quickLayout, raw)
		key, err := quickLayout.Encode(vals...)
		if err != nil {
			return false
		}
		got := quickLayout.Decode(key)
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func tupleLess(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// TestQuickOrderPreserving: a < b lexicographically ⇔ Encode(a) < Encode(b).
func TestQuickOrderPreserving(t *testing.T) {
	f := func(rawA, rawB [3]uint64) bool {
		a := clampVals(quickLayout, rawA)
		b := clampVals(quickLayout, rawB)
		ka := quickLayout.MustEncode(a...)
		kb := quickLayout.MustEncode(b...)
		return tupleLess(a, b) == (ka < kb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPrefixRangeMembership: a key falls inside PrefixRange(p...) iff
// its tuple starts with p.
func TestQuickPrefixRangeMembership(t *testing.T) {
	f := func(raw [3]uint64, rawPrefix uint64, plen uint8) bool {
		vals := clampVals(quickLayout, raw)
		n := int(plen) % 4 // 0..3 prefix fields
		prefix := make([]uint64, n)
		for i := range prefix {
			// Half the time probe with the tuple's own field value so the
			// in-range case is actually generated.
			if rawPrefix&(1<<i) != 0 {
				prefix[i] = vals[i]
			} else {
				prefix[i] = (rawPrefix >> (8 * i)) & quickLayout.FieldMax(i)
			}
		}
		lo, hi, err := quickLayout.PrefixRange(prefix...)
		if err != nil {
			return false
		}
		key := quickLayout.MustEncode(vals...)
		inRange := lo <= key && key <= hi
		matches := true
		for i := range prefix {
			if vals[i] != prefix[i] {
				matches = false
				break
			}
		}
		return inRange == matches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
