// Package keyenc is the order-preserving key-encoding layer: composite
// (multi-field) tuples packed into the engines' 64-bit index-key space.
//
// The paper's prototype keys everything by a single uint64 (Section 2's
// hash indexes never compare keys, and the ordered skip-list index of
// docs/indexes.md compares them as plain integers). Rather than widen the
// key type through every layer — version words, lock tables, cursors — a
// Layout packs a tuple of unsigned fields into one uint64 such that
// tuple order and integer order coincide:
//
//	(a1, b1) < (a2, b2) lexicographically  ⇔  Encode(a1,b1) < Encode(a2,b2)
//
// Everything underneath (storage.KeyFunc, the skip list, all three
// range-lock schemes) therefore works unchanged: a composite prefix scan
// is just a ScanRange over the encoded [lo, hi] interval, and a composite
// phantom lock is just a range lock on that interval.
//
// The packing is big-endian by field: the first field occupies the most
// significant bits. Field widths are fixed per layout and documented at the
// index, which is the classic fixed-width tuple encoding (cf. FoundationDB
// tuples or Qserv's packed object/chunk ids — variable-width encodings
// preserve order too, but fixed widths keep Encode/Decode branch-free and
// make prefix ranges exact bit masks).
package keyenc

import (
	"errors"
	"fmt"
	"strings"
)

// Field describes one field of a composite key: a name (for diagnostics)
// and its width in bits. A field of width w holds values in [0, 2^w).
type Field struct {
	Name string
	Bits uint
}

// Layout is an immutable order-preserving packing of a fixed tuple shape
// into a uint64. The zero Layout is invalid; construct with NewLayout.
type Layout struct {
	fields []Field
	// shift[i] is how far field i's value is shifted left in the packed
	// word; mask[i] is the field's maximum value (2^Bits - 1).
	shift []uint
	mask  []uint64
	total uint
}

// Errors returned by Layout operations.
var (
	ErrArity    = errors.New("keyenc: wrong number of field values")
	ErrOverflow = errors.New("keyenc: field value exceeds its declared width")
)

// NewLayout builds a layout from the given fields. The widths must each be
// in [1, 64] and sum to at most 64.
func NewLayout(fields ...Field) (*Layout, error) {
	if len(fields) == 0 {
		return nil, errors.New("keyenc: layout needs at least one field")
	}
	var total uint
	for _, f := range fields {
		if f.Bits < 1 || f.Bits > 64 {
			return nil, fmt.Errorf("keyenc: field %q width %d outside [1, 64]", f.Name, f.Bits)
		}
		total += f.Bits
	}
	if total > 64 {
		return nil, fmt.Errorf("keyenc: field widths sum to %d bits, max 64", total)
	}
	l := &Layout{
		fields: append([]Field(nil), fields...),
		shift:  make([]uint, len(fields)),
		mask:   make([]uint64, len(fields)),
		total:  total,
	}
	at := total
	for i, f := range fields {
		at -= f.Bits
		l.shift[i] = at
		if f.Bits == 64 {
			l.mask[i] = ^uint64(0)
		} else {
			l.mask[i] = (uint64(1) << f.Bits) - 1
		}
	}
	return l, nil
}

// MustLayout is NewLayout, panicking on error; for package-level layouts of
// hand-written widths.
func MustLayout(fields ...Field) *Layout {
	l, err := NewLayout(fields...)
	if err != nil {
		panic(err)
	}
	return l
}

// NumFields returns the number of fields in the layout.
func (l *Layout) NumFields() int { return len(l.fields) }

// Field returns field i's description.
func (l *Layout) Field(i int) Field { return l.fields[i] }

// FieldMax returns the largest value field i can hold (2^Bits - 1).
func (l *Layout) FieldMax(i int) uint64 { return l.mask[i] }

// Bits returns the total packed width. Encoded keys use the low Bits()
// bits; the unused high bits are always zero, so keys from the same layout
// compare correctly and never collide with the unused space above.
func (l *Layout) Bits() uint { return l.total }

// String renders the layout shape, e.g. "(region:16, user:32, seq:16)".
func (l *Layout) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range l.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", f.Name, f.Bits)
	}
	b.WriteByte(')')
	return b.String()
}

// Encode packs one value per field into a single key. It returns ErrArity
// when the value count does not match the layout and ErrOverflow when a
// value does not fit its field's width.
func (l *Layout) Encode(vals ...uint64) (uint64, error) {
	if len(vals) != len(l.fields) {
		return 0, fmt.Errorf("%w: layout %s got %d values", ErrArity, l, len(vals))
	}
	var key uint64
	for i, v := range vals {
		if v > l.mask[i] {
			return 0, fmt.Errorf("%w: field %q value %d > max %d", ErrOverflow, l.fields[i].Name, v, l.mask[i])
		}
		key |= v << l.shift[i]
	}
	return key, nil
}

// MustEncode is Encode, panicking on error; for values known to fit (loop
// indices, modular group numbers).
func (l *Layout) MustEncode(vals ...uint64) uint64 {
	key, err := l.Encode(vals...)
	if err != nil {
		panic(err)
	}
	return key
}

// Decode unpacks a key into one value per field.
func (l *Layout) Decode(key uint64) []uint64 {
	return l.DecodeInto(make([]uint64, len(l.fields)), key)
}

// DecodeInto unpacks key into dst (which must have NumFields elements) and
// returns it; the allocation-free form of Decode.
func (l *Layout) DecodeInto(dst []uint64, key uint64) []uint64 {
	for i := range l.fields {
		dst[i] = (key >> l.shift[i]) & l.mask[i]
	}
	return dst
}

// FieldOf extracts field i's value from a packed key.
func (l *Layout) FieldOf(key uint64, i int) uint64 {
	return (key >> l.shift[i]) & l.mask[i]
}

// PrefixRange returns the inclusive key interval [lo, hi] covering exactly
// the tuples whose first len(prefix) fields equal prefix: the remaining
// fields range from all-zeros to all-ones. An empty prefix covers the whole
// layout. Scanning an ordered index over [lo, hi] is a composite prefix
// scan, and range-locking [lo, hi] is a composite prefix lock.
func (l *Layout) PrefixRange(prefix ...uint64) (lo, hi uint64, err error) {
	if len(prefix) > len(l.fields) {
		return 0, 0, fmt.Errorf("%w: layout %s got %d prefix values", ErrArity, l, len(prefix))
	}
	for i, v := range prefix {
		if v > l.mask[i] {
			return 0, 0, fmt.Errorf("%w: field %q value %d > max %d", ErrOverflow, l.fields[i].Name, v, l.mask[i])
		}
		lo |= v << l.shift[i]
	}
	// The suffix fields span shift[last-prefix-field]... i.e. everything
	// below the last prefix field's low edge.
	var suffixBits uint
	if len(prefix) < len(l.fields) {
		suffixBits = l.shift[len(prefix)] + l.fields[len(prefix)].Bits
	}
	if suffixBits == 64 {
		return 0, ^uint64(0), nil
	}
	hi = lo | ((uint64(1) << suffixBits) - 1)
	return lo, hi, nil
}

// MustPrefixRange is PrefixRange, panicking on error.
func (l *Layout) MustPrefixRange(prefix ...uint64) (lo, hi uint64) {
	lo, hi, err := l.PrefixRange(prefix...)
	if err != nil {
		panic(err)
	}
	return lo, hi
}
