package keyenc

import (
	"testing"
	"testing/quick"
)

func TestRangesCoverExactly(t *testing.T) {
	cases := []struct {
		lo, hi uint64
		n      int
	}{
		{0, 99, 4},
		{0, 99, 7},
		{10, 10, 3},
		{0, ^uint64(0), 8},
		{5, 6, 4},
		{0, 2, 1},
	}
	for _, c := range cases {
		parts := Ranges(c.lo, c.hi, c.n)
		if len(parts) == 0 {
			t.Fatalf("Ranges(%d,%d,%d) empty", c.lo, c.hi, c.n)
		}
		if parts[0].Lo != c.lo || parts[len(parts)-1].Hi != c.hi {
			t.Fatalf("Ranges(%d,%d,%d) = %v: ends wrong", c.lo, c.hi, c.n, parts)
		}
		for i := 1; i < len(parts); i++ {
			if parts[i].Lo != parts[i-1].Hi+1 {
				t.Fatalf("Ranges(%d,%d,%d) = %v: gap at %d", c.lo, c.hi, c.n, parts, i)
			}
		}
		if len(parts) > c.n {
			t.Fatalf("Ranges(%d,%d,%d): %d parts > n", c.lo, c.hi, c.n, len(parts))
		}
	}
	if Ranges(5, 4, 3) != nil {
		t.Fatal("inverted range should be nil")
	}
}

func TestPartitionOf(t *testing.T) {
	parts := Ranges(100, 999, 5)
	for key := uint64(100); key <= 999; key += 13 {
		p := PartitionOf(parts, key)
		if key < parts[p].Lo || key > parts[p].Hi {
			t.Fatalf("key %d assigned to %v", key, parts[p])
		}
	}
	// Out-of-range keys clamp to the nearest partition.
	if PartitionOf(parts, 5) != 0 {
		t.Fatal("low key should clamp to first partition")
	}
	if PartitionOf(parts, 5000) != len(parts)-1 {
		t.Fatal("high key should clamp to last partition")
	}
}

func TestPartitionOfQuick(t *testing.T) {
	f := func(lo, hi, key uint64, n uint8) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		parts := Ranges(lo, hi, int(n%16)+1)
		p := PartitionOf(parts, key)
		if p < 0 || p >= len(parts) {
			return false
		}
		if key >= lo && key <= hi {
			return key >= parts[p].Lo && key <= parts[p].Hi
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyspaceMax(t *testing.T) {
	l := MustLayout(Field{Name: "a", Bits: 16}, Field{Name: "b", Bits: 8})
	if got := l.KeyspaceMax(); got != (1<<24)-1 {
		t.Fatalf("KeyspaceMax = %d", got)
	}
	full := MustLayout(Field{Name: "k", Bits: 64})
	if got := full.KeyspaceMax(); got != ^uint64(0) {
		t.Fatalf("full-width KeyspaceMax = %d", got)
	}
}
