package keyenc

import "testing"

// fuzzLayout mirrors the workload's secondary-index shape: a group field
// over a wide id field, with spare high bits left unused.
var fuzzLayout = MustLayout(Field{"grp", 10}, Field{"id", 40})

// FuzzEncodeOrder fuzzes the core ordering contract on pairs of tuples:
// Encode round-trips, order is preserved in both directions, and prefix
// ranges contain exactly the keys whose tuples carry the prefix.
func FuzzEncodeOrder(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1), uint64(2), uint64(1), uint64(3))
	f.Add(uint64(5), uint64(0), uint64(5), ^uint64(0))
	f.Add(uint64(1023), uint64(1)<<40-1, uint64(1023), uint64(0))
	f.Add(uint64(511), uint64(12345), uint64(512), uint64(12345))
	f.Fuzz(func(t *testing.T, ga, ia, gb, ib uint64) {
		ga &= fuzzLayout.FieldMax(0)
		ia &= fuzzLayout.FieldMax(1)
		gb &= fuzzLayout.FieldMax(0)
		ib &= fuzzLayout.FieldMax(1)

		ka, err := fuzzLayout.Encode(ga, ia)
		if err != nil {
			t.Fatalf("Encode(%d, %d): %v", ga, ia, err)
		}
		kb := fuzzLayout.MustEncode(gb, ib)

		if got := fuzzLayout.Decode(ka); got[0] != ga || got[1] != ia {
			t.Fatalf("Decode(%#x) = %v, want [%d %d]", ka, got, ga, ia)
		}

		wantLess := ga < gb || (ga == gb && ia < ib)
		if (ka < kb) != wantLess {
			t.Fatalf("order broken: (%d,%d)=%#x vs (%d,%d)=%#x", ga, ia, ka, gb, ib, kb)
		}
		if (ka == kb) != (ga == gb && ia == ib) {
			t.Fatalf("equality broken: (%d,%d)=%#x vs (%d,%d)=%#x", ga, ia, ka, gb, ib, kb)
		}

		lo, hi, err := fuzzLayout.PrefixRange(ga)
		if err != nil {
			t.Fatalf("PrefixRange(%d): %v", ga, err)
		}
		if !(lo <= ka && ka <= hi) {
			t.Fatalf("key (%d,%d) outside its own prefix range [%#x, %#x]", ga, ia, lo, hi)
		}
		if inB := lo <= kb && kb <= hi; inB != (gb == ga) {
			t.Fatalf("key (%d,%d) in prefix-%d range = %v", gb, ib, ga, inB)
		}
	})
}
