package keyenc

// Range is one inclusive key interval [Lo, Hi] of a partitioning.
type Range struct {
	Lo, Hi uint64
}

// Ranges splits the inclusive key interval [lo, hi] into n contiguous,
// near-equal subranges covering it exactly. It is the checkpoint partitioning
// primitive: streaming a table's rows into per-range files lets recovery
// restore partitions in parallel, and an ordered index whose keys come from a
// Layout partitions on encoded-tuple order, so each partition is itself a
// contiguous tuple range. n is clamped to the number of distinct keys; lo > hi
// yields nil.
func Ranges(lo, hi uint64, n int) []Range {
	if lo > hi || n < 1 {
		if lo > hi {
			return nil
		}
		n = 1
	}
	span := hi - lo // inclusive span minus one; hi-lo+1 can overflow
	if span != ^uint64(0) && uint64(n) > span+1 {
		n = int(span + 1)
	}
	out := make([]Range, 0, n)
	step := span/uint64(n) + 1 // ceil((span+1)/n) without overflow
	cur := lo
	for i := 0; i < n; i++ {
		r := Range{Lo: cur}
		if i == n-1 || hi-cur < step {
			r.Hi = hi
			out = append(out, r)
			break
		}
		r.Hi = cur + step - 1
		out = append(out, r)
		cur = r.Hi + 1
	}
	return out
}

// PartitionOf returns the index of the partition of parts whose range covers
// key, clamping keys outside the covered interval to the nearest end. parts
// must be non-empty, contiguous and ascending (as built by Ranges).
func PartitionOf(parts []Range, key uint64) int {
	lo, hi := 0, len(parts)-1
	if key <= parts[0].Hi {
		return 0
	}
	if key >= parts[hi].Lo {
		return hi
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case key < parts[mid].Lo:
			hi = mid - 1
		case key > parts[mid].Hi:
			lo = mid + 1
		default:
			return mid
		}
	}
	return lo
}

// KeyspaceMax returns the largest encoded key the layout can produce: all
// fields at their maxima. Checkpoint partitioning uses it as the default
// upper bound for composite primary indexes, so partitions split the used
// key space instead of the full 64-bit space.
func (l *Layout) KeyspaceMax() uint64 {
	if l.total == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << l.total) - 1
}
