package wal

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"syscall"
)

// File is the handle the durability layer holds on a live log segment: the
// subset of *os.File it actually uses. Production code passes *os.File
// straight through; tests substitute a *FaultFile to inject byte-granularity
// disk faults without touching the code under test.
type File interface {
	io.Writer
	Syncer
	io.Closer
}

// Backing is what a FaultFile wraps: a File that can also be truncated to a
// byte offset and sought, because both fsync failure and power loss are
// modelled as a suffix of the file disappearing — and after dropping the
// suffix the write position must move back with it, or the next write would
// leave a hole. *os.File satisfies it.
type Backing interface {
	File
	io.Seeker
	Truncate(size int64) error
}

// The FaultFile fault points (FaultFileWriteErr, FaultFileShortWrite,
// FaultFileENOSPC, FaultFileSyncErr, FaultFileCrash) are declared in the
// central fault-point registry in faults.go. Arm them on the Faults registry
// the FaultFile was built with; each fires at byte granularity inside a
// single Write or Sync call.

// ErrInjected is the sentinel wrapped by every error a FaultFile invents;
// match with errors.Is to distinguish injected faults from real I/O errors.
var ErrInjected = errors.New("wal: injected fault")

// ErrCrashed is returned by every FaultFile operation after a simulated
// power loss: the device is gone, nothing succeeds, nothing is acknowledged.
var ErrCrashed = fmt.Errorf("wal: simulated power loss: %w", ErrInjected)

// FaultFile wraps a Backing file and injects disk faults at byte
// granularity, driven by the same Faults countdown registry the store-level
// crash points use. It tracks two offsets: size (bytes handed to the
// backing file) and synced (the last successful fsync barrier). Faults and
// crashes only ever destroy bytes above the barrier — which is exactly the
// honesty contract the Fsync durability level is tested against.
type FaultFile struct {
	mu     sync.Mutex
	f      Backing
	faults *Faults
	size   int64
	synced int64
	closed bool
	crash  bool
}

// NewFaultFile wraps f. The registry may be shared with store-level fault
// points; a nil registry yields a transparent pass-through.
func NewFaultFile(f Backing, faults *Faults) *FaultFile {
	return &FaultFile{f: f, faults: faults}
}

// Write appends p, unless a fault fires inside it.
func (w *FaultFile) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.crash {
		return 0, ErrCrashed
	}
	if w.faults.Fire(FaultFileWriteErr) {
		return 0, fmt.Errorf("write %s: %w", FaultFileWriteErr, ErrInjected)
	}
	if w.faults.Fire(FaultFileShortWrite) {
		n := w.writePrefix(p)
		return n, io.ErrShortWrite
	}
	if w.faults.Fire(FaultFileENOSPC) {
		n := w.writePrefix(p)
		return n, syscall.ENOSPC
	}
	if w.faults.Fire(FaultFileCrash) {
		// Power cut mid-write: a prefix of this buffer made it to the page
		// cache, then half of the unsynced region — an arbitrary, possibly
		// mid-record offset — survived to the platter.
		w.writePrefix(p)
		w.crashLocked((w.size - w.synced) / 2)
		return 0, ErrCrashed
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	if err != nil {
		return n, err
	}
	return n, nil
}

// writePrefix writes the first half of p (at least one byte when p is
// non-empty) to the backing file, for torn-write faults.
func (w *FaultFile) writePrefix(p []byte) int {
	n := len(p) / 2
	if n == 0 && len(p) > 0 {
		n = 1
	}
	m, _ := w.f.Write(p[:n])
	w.size += int64(m)
	return m
}

// Sync advances the fsync barrier, unless a fault fires.
func (w *FaultFile) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.crash {
		return ErrCrashed
	}
	if w.faults.Fire(FaultFileSyncErr) {
		// fsyncgate: the failure is reported exactly once and the dirty
		// pages are gone. The file remains usable — which is the trap: a
		// retried fsync here would succeed and prove nothing.
		w.discardTo(w.synced)
		return fmt.Errorf("sync %s: %w", FaultFileSyncErr, ErrInjected)
	}
	if w.faults.Fire(FaultFileCrash) {
		w.crashLocked(0)
		return ErrCrashed
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.synced = w.size
	return nil
}

// Close closes the backing file. It works even after a crash so harnesses
// can release the descriptor and reopen the directory for recovery.
func (w *FaultFile) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// Crash simulates a power loss now: at most keep bytes of the unsynced
// region survive (clamped to [0, unsynced]), everything above is discarded,
// and every subsequent operation returns ErrCrashed. Harnesses call it
// directly to place a torn tail at an arbitrary byte offset.
func (w *FaultFile) Crash(keep int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.crash {
		return nil
	}
	return w.crashLocked(keep)
}

func (w *FaultFile) crashLocked(keep int64) error {
	if keep < 0 {
		keep = 0
	}
	if unsynced := w.size - w.synced; keep > unsynced {
		keep = unsynced
	}
	w.crash = true
	return w.discardTo(w.synced + keep)
}

// discardTo truncates the backing file to off and moves the write position
// with it, so the file models lost bytes, not a zero-filled hole.
func (w *FaultFile) discardTo(off int64) error {
	w.size = off
	if err := w.f.Truncate(off); err != nil {
		return err
	}
	_, err := w.f.Seek(off, io.SeekStart)
	return err
}

// Crashed reports whether a simulated power loss has occurred.
func (w *FaultFile) Crashed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.crash
}

// Offsets returns the written size and the fsync barrier, for tests
// asserting exactly which bytes a fault destroyed.
func (w *FaultFile) Offsets() (size, synced int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size, w.synced
}
