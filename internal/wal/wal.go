// Package wal implements the redo log of Sections 2.4 and 3.2.
//
// To commit, a transaction writes its new versions (and the keys of deleted
// versions) to a log record carrying its end timestamp. Commit order is
// determined by end timestamps, which are included in the records, so
// multiple log streams on different devices can be used.
//
// The experimental configuration of the paper (Section 5) writes log records
// asynchronously with group commit: transactions do not wait for log I/O,
// and records are submitted in batches, which is how the evaluation isolates
// concurrency-control effects from I/O. That is the default mode here; a
// synchronous mode that waits for the flush is available for durability
// experiments.
package wal

import (
	"errors"
	"io"
	"sync"
	"time"
)

// Op identifies a logged operation.
type Op uint8

const (
	// OpInsert logs a brand-new record version.
	OpInsert Op = iota + 1
	// OpUpdate logs the after-image of an updated record. The paper logs the
	// difference between old and new versions plus 8 bytes of metadata; we
	// log the after-image, which is the same information for fixed 24-byte
	// payloads.
	OpUpdate
	// OpDelete logs a unique key identifying the deleted version
	// (Section 3.2: "deletes are logged by writing a unique key").
	OpDelete
)

// Entry is one operation inside a transaction's log record.
type Entry struct {
	Table string
	Op    Op
	// Key is the record's primary index key (used for deletes and for
	// locating records at recovery).
	Key uint64
	// Payload is the after-image for inserts and updates; nil for deletes.
	Payload []byte
}

// Record is a transaction's redo log record. Append encodes it immediately,
// so callers may reuse the Record, its Ops slice, and the payload buffers the
// entries point at as soon as Append returns.
type Record struct {
	TxID  uint64
	EndTS uint64
	Ops   []Entry
}

// chunk is one encoded record in flight to the flusher. Buffers are pooled:
// encoding a record on the hot path allocates nothing in steady state.
type chunk struct {
	buf  []byte
	done chan struct{} // closed when flushed (synchronous mode)
}

// Config controls the log.
type Config struct {
	// Sink receives the encoded batches. If nil, records are encoded and
	// discarded (the measurement configuration: bandwidth is modelled but no
	// device is written).
	Sink io.Writer
	// Synchronous makes Append wait for the record's batch to be flushed.
	Synchronous bool
	// BatchSize is the maximum number of records per group-commit batch.
	BatchSize int
	// FlushInterval bounds how long a record may sit unflushed.
	FlushInterval time.Duration
	// BufferedRecords sizes the submission queue; Append blocks when full
	// (natural backpressure at extreme rates).
	BufferedRecords int
}

// Log is a group-commit redo log.
type Log struct {
	cfg     Config
	ch      chan *chunk
	flush   chan chan struct{}
	done    chan struct{}
	bufPool sync.Pool

	mu       sync.Mutex
	closed   bool
	err      error
	appended uint64
	flushed  uint64
	batches  uint64
	bytes    uint64
}

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: log closed")

// Open starts the log's flusher goroutine.
func Open(cfg Config) *Log {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = time.Millisecond
	}
	if cfg.BufferedRecords <= 0 {
		cfg.BufferedRecords = 1 << 14
	}
	l := &Log{
		cfg:   cfg,
		ch:    make(chan *chunk, cfg.BufferedRecords),
		flush: make(chan chan struct{}),
		done:  make(chan struct{}),
	}
	l.bufPool.New = func() any { return new(chunk) }
	go l.run()
	return l
}

// Append submits a record for group commit. The record is encoded before
// Append returns, so the caller may immediately reuse the record and any
// payload buffers it references. In asynchronous mode Append returns as soon
// as the encoded record is queued; in synchronous mode it waits until the
// record's batch has reached the sink.
func (l *Log) Append(r *Record) error {
	c := l.bufPool.Get().(*chunk)
	c.buf = EncodeRecord(c.buf[:0], r)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		c.done = nil
		l.bufPool.Put(c)
		return ErrClosed
	}
	if err := l.err; err != nil {
		// The sink failed: the log is no longer durable, so acknowledging
		// further appends would be a lie. Surface the first flush error from
		// every subsequent Append (commit paths treat this as an abort).
		l.mu.Unlock()
		c.done = nil
		l.bufPool.Put(c)
		return err
	}
	l.appended++
	l.mu.Unlock()
	if l.cfg.Synchronous {
		c.done = make(chan struct{})
	}
	done := c.done
	l.ch <- c
	if done != nil {
		<-done
		l.mu.Lock()
		err := l.err
		l.mu.Unlock()
		return err
	}
	return nil
}

// Flush blocks until every record appended before the call has been written
// to the sink.
func (l *Log) Flush() error {
	ack := make(chan struct{})
	select {
	case l.flush <- ack:
		<-ack
	case <-l.done:
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes and stops the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.ch)
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stats reports log activity counters.
func (l *Log) Stats() (appended, flushed, batches, bytes uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended, l.flushed, l.batches, l.bytes
}

func (l *Log) run() {
	defer close(l.done)
	var batch []*chunk
	var buf []byte
	timer := time.NewTimer(l.cfg.FlushInterval)
	defer timer.Stop()

	flushBatch := func() {
		if len(batch) == 0 {
			return
		}
		// Records were encoded at Append; concatenate the frames so the sink
		// sees one write per group-commit batch, as before.
		buf = buf[:0]
		for _, c := range batch {
			buf = append(buf, c.buf...)
		}
		var err error
		if l.cfg.Sink != nil {
			_, err = l.cfg.Sink.Write(buf)
		}
		l.mu.Lock()
		if err != nil && l.err == nil {
			l.err = err
		}
		l.flushed += uint64(len(batch))
		l.batches++
		l.bytes += uint64(len(buf))
		l.mu.Unlock()
		for _, c := range batch {
			if c.done != nil {
				close(c.done)
				c.done = nil
			}
			l.bufPool.Put(c)
		}
		clear(batch)
		batch = batch[:0]
	}

	for {
		select {
		case c, ok := <-l.ch:
			if !ok {
				flushBatch()
				return
			}
			batch = append(batch, c)
			if len(batch) >= l.cfg.BatchSize {
				flushBatch()
			}
		case <-timer.C:
			flushBatch()
			timer.Reset(l.cfg.FlushInterval)
		case ack := <-l.flush:
			// Drain whatever is already queued, then flush.
			for {
				select {
				case c, ok := <-l.ch:
					if !ok {
						flushBatch()
						close(ack)
						return
					}
					batch = append(batch, c)
					continue
				default:
				}
				break
			}
			flushBatch()
			close(ack)
		}
	}
}
