// Package wal implements the redo log of Sections 2.4 and 3.2.
//
// To commit, a transaction writes its new versions (and the keys of deleted
// versions) to a log record carrying its end timestamp. Commit order is
// determined by end timestamps, which are included in the records, so
// multiple log streams on different devices can be used.
//
// The experimental configuration of the paper (Section 5) writes log records
// asynchronously with group commit: transactions do not wait for log I/O,
// and records are submitted in batches, which is how the evaluation isolates
// concurrency-control effects from I/O. That is the default mode here; a
// synchronous mode that waits for the flush is available for durability
// experiments.
package wal

import (
	"errors"
	"io"
	"sync"
	"time"
)

// Op identifies a logged operation.
type Op uint8

const (
	// OpInsert logs a brand-new record version.
	OpInsert Op = iota + 1
	// OpUpdate logs the after-image of an updated record. The paper logs the
	// difference between old and new versions plus 8 bytes of metadata; we
	// log the after-image, which is the same information for fixed 24-byte
	// payloads.
	OpUpdate
	// OpDelete logs a unique key identifying the deleted version
	// (Section 3.2: "deletes are logged by writing a unique key").
	OpDelete
)

// Entry is one operation inside a transaction's log record.
type Entry struct {
	Table string
	Op    Op
	// Key is the record's primary index key (used for deletes and for
	// locating records at recovery).
	Key uint64
	// Payload is the after-image for inserts and updates; nil for deletes.
	Payload []byte
}

// Record is a transaction's redo log record. Append encodes it immediately,
// so callers may reuse the Record, its Ops slice, and the payload buffers the
// entries point at as soon as Append returns.
type Record struct {
	TxID  uint64
	EndTS uint64
	Ops   []Entry
}

// chunk is one encoded record in flight to the flusher. Buffers are pooled:
// encoding a record on the hot path allocates nothing in steady state.
type chunk struct {
	buf  []byte
	done chan struct{} // closed when flushed (synchronous mode)
	err  error         // this batch's outcome; valid once done is closed
}

// Durability selects what a commit acknowledgement promises: how far a
// record has travelled when Append returns.
type Durability int

const (
	// Async acknowledges as soon as the encoded record is queued for group
	// commit (the paper's measurement configuration: commit is decoupled
	// from log I/O entirely).
	Async Durability = iota
	// Flush acknowledges after the record's batch has been written to the
	// sink. The bytes may still sit in the OS page cache: a process kill
	// cannot lose them, a power loss can.
	Flush
	// Fsync acknowledges after the record's batch has been written AND the
	// sink's Sync has confirmed the bytes stable — one fsync per
	// group-commit batch, amortized over every record in it. This is the
	// only level whose acknowledgement survives power loss.
	Fsync
)

// String returns the level name used in docs and benchmarks.
func (d Durability) String() string {
	switch d {
	case Flush:
		return "flush"
	case Fsync:
		return "fsync"
	default:
		return "async"
	}
}

// Syncer is implemented by sinks that can force written bytes to stable
// storage (os.File, ckpt.Store). At Fsync durability the flusher calls Sync
// once per batch; a sink without Sync silently caps the level at Flush.
type Syncer interface {
	Sync() error
}

// Config controls the log.
type Config struct {
	// Sink receives the encoded batches. If nil, records are encoded and
	// discarded (the measurement configuration: bandwidth is modelled but no
	// device is written).
	Sink io.Writer
	// Durability selects the acknowledgement level (default Async).
	Durability Durability
	// Synchronous is the legacy name for Durability >= Flush; it is honored
	// when Durability is left at Async.
	Synchronous bool
	// BatchSize is the maximum number of records per group-commit batch.
	BatchSize int
	// FlushInterval bounds how long a record may sit unflushed.
	FlushInterval time.Duration
	// BufferedRecords sizes the submission queue; Append blocks when full
	// (natural backpressure at extreme rates).
	BufferedRecords int
}

// LogStats reports log activity counters.
type LogStats struct {
	Appended uint64 // records accepted by Append
	Flushed  uint64 // records written to the sink
	Batches  uint64 // group-commit batches written
	Bytes    uint64 // bytes handed to the sink
	Syncs    uint64 // per-batch sink fsyncs (Fsync durability only)
}

// Log is a group-commit redo log.
type Log struct {
	cfg     Config
	syncer  Syncer // cfg.Sink when it can fsync and cfg.Durability is Fsync
	ch      chan *chunk
	flush   chan chan struct{}
	done    chan struct{}
	bufPool sync.Pool
	senders sync.WaitGroup // Appends between queue admission and channel send

	mu       sync.Mutex
	closed   bool
	err      error
	appended uint64
	flushed  uint64
	batches  uint64
	bytes    uint64
	syncs    uint64
}

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: log closed")

// ErrDegraded is returned by engine write paths after a latched log or sink
// failure has flipped the database into degraded read-only mode: reads and
// read-only snapshots keep serving, new writes fail fast. It lives here
// because wal is the one package every engine imports; core re-exports it.
var ErrDegraded = errors.New("engine degraded: log failure, read-only mode")

// Open starts the log's flusher goroutine.
func Open(cfg Config) *Log {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = time.Millisecond
	}
	if cfg.BufferedRecords <= 0 {
		cfg.BufferedRecords = 1 << 14
	}
	if cfg.Durability == Async && cfg.Synchronous {
		cfg.Durability = Flush
	}
	l := &Log{
		cfg:   cfg,
		ch:    make(chan *chunk, cfg.BufferedRecords),
		flush: make(chan chan struct{}),
		done:  make(chan struct{}),
	}
	if cfg.Durability == Fsync {
		if s, ok := cfg.Sink.(Syncer); ok {
			l.syncer = s
		}
	}
	l.bufPool.New = func() any { return new(chunk) }
	go l.run()
	return l
}

// Append submits a record for group commit. The record is encoded before
// Append returns, so the caller may immediately reuse the record and any
// payload buffers it references. At Async durability Append returns as soon
// as the encoded record is queued; at Flush it waits until the record's
// batch has reached the sink; at Fsync it additionally waits for the batch's
// fsync, so a nil return is a durable-commit promise.
func (l *Log) Append(r *Record) error {
	c := l.bufPool.Get().(*chunk)
	c.buf = EncodeRecord(c.buf[:0], r)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		c.done = nil
		l.bufPool.Put(c)
		return ErrClosed
	}
	if err := l.err; err != nil {
		// The sink failed: the log is no longer durable, so acknowledging
		// further appends would be a lie. Surface the first flush error from
		// every subsequent Append (commit paths treat this as an abort).
		l.mu.Unlock()
		c.done = nil
		l.bufPool.Put(c)
		return err
	}
	l.appended++
	// The sender count is raised while closed is false, under mu; Close sets
	// closed first and waits for this count before closing the channel, so
	// the send below can never hit a closed channel.
	l.senders.Add(1)
	l.mu.Unlock()
	if l.cfg.Durability != Async {
		c.done = make(chan struct{})
	}
	done := c.done
	l.ch <- c
	l.senders.Done()
	if done != nil {
		// The flusher hands the chunk back through the done close; the
		// error on it is THIS batch's outcome, not the global latch — a
		// record that was written and fsynced is acknowledged as durable
		// even if a later batch has already failed by the time this
		// goroutine wakes up. Reporting the global error here would abort
		// a transaction whose record is durably in the log, and recovery
		// would resurrect it behind the caller's back.
		<-done
		err := c.err
		c.done, c.err = nil, nil
		l.bufPool.Put(c)
		return err
	}
	return nil
}

// Flush blocks until every record appended before the call has been written
// to the sink.
func (l *Log) Flush() error {
	ack := make(chan struct{})
	select {
	case l.flush <- ack:
		<-ack
	case <-l.done:
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes and stops the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	// Appends that passed the closed check are still between queue admission
	// and their channel send; wait them out before closing the channel (no
	// new senders can start: closed is set).
	l.senders.Wait()
	close(l.ch)
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stats reports log activity counters.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LogStats{
		Appended: l.appended,
		Flushed:  l.flushed,
		Batches:  l.batches,
		Bytes:    l.bytes,
		Syncs:    l.syncs,
	}
}

// Err returns the latched flusher error: the first sink write or fsync
// failure observed. A non-nil Err means the log stopped accepting appends
// and the engine above it should degrade (see ErrDegraded).
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *Log) run() {
	defer close(l.done)
	var batch []*chunk
	var buf []byte
	timer := time.NewTimer(l.cfg.FlushInterval)
	defer timer.Stop()

	flushBatch := func() {
		if len(batch) == 0 {
			return
		}
		// Records were encoded at Append; concatenate the frames so the sink
		// sees one write per group-commit batch, as before.
		buf = buf[:0]
		for _, c := range batch {
			buf = append(buf, c.buf...)
		}
		l.mu.Lock()
		err := l.err
		l.mu.Unlock()
		broken := err != nil
		var synced bool
		// Once any write or fsync has failed the log is dead: no further
		// bytes go to the sink and — critically — no fsync is ever retried.
		// After a failed fsync the kernel may have dropped the dirty pages
		// and cleared the error (the fsyncgate semantics), so a later
		// "successful" fsync would prove nothing about the lost bytes;
		// retrying just converts data loss into silent data loss.
		if !broken {
			if l.cfg.Sink != nil {
				_, err = l.cfg.Sink.Write(buf)
			}
			if err == nil && l.syncer != nil {
				err = l.syncer.Sync()
				synced = err == nil
			}
		}
		l.mu.Lock()
		if err != nil && l.err == nil {
			l.err = err
		}
		l.flushed += uint64(len(batch))
		l.batches++
		l.bytes += uint64(len(buf))
		if synced {
			l.syncs++
		}
		l.mu.Unlock()
		for _, c := range batch {
			if c.done != nil {
				// Synchronous append: publish this batch's outcome (in drain
				// mode that is the latched error — the record never reached
				// the sink) and hand the chunk to the waiting appender, who
				// recycles it after reading err.
				c.err = err
				close(c.done)
			} else {
				l.bufPool.Put(c)
			}
		}
		clear(batch)
		batch = batch[:0]
	}

	for {
		select {
		case c, ok := <-l.ch:
			if !ok {
				flushBatch()
				return
			}
			batch = append(batch, c)
			if len(batch) >= l.cfg.BatchSize {
				flushBatch()
			}
		case <-timer.C:
			flushBatch()
			timer.Reset(l.cfg.FlushInterval)
		case ack := <-l.flush:
			// Drain whatever is already queued, then flush.
			for {
				select {
				case c, ok := <-l.ch:
					if !ok {
						flushBatch()
						close(ack)
						return
					}
					batch = append(batch, c)
					continue
				default:
				}
				break
			}
			flushBatch()
			close(ack)
		}
	}
}
