package wal

import "sync"

// Faults is a crash-injection registry: named fault points armed with a
// countdown. Durability code (the log sink, the checkpoint writer) calls
// Fire(point) at each crash-relevant step; the call reports true exactly once,
// when the armed countdown for that point reaches zero. Production paths pass
// a nil *Faults, which never fires, so injection costs one nil check.
//
// The registry lives in package wal because the log sink is the innermost
// fault site; internal/ckpt shares the same registry for its checkpoint-side
// points, so one harness can seed a whole crash scenario.
type Faults struct {
	mu   sync.Mutex
	arms map[string]int
}

// NewFaults returns an empty registry with every point disarmed.
func NewFaults() *Faults {
	return &Faults{arms: make(map[string]int)}
}

// Arm schedules fault point to fire on its (after+1)-th Fire call. Re-arming
// replaces any previous schedule for the point.
func (f *Faults) Arm(point string, after int) {
	f.mu.Lock()
	f.arms[point] = after
	f.mu.Unlock()
}

// Disarm removes any schedule for point.
func (f *Faults) Disarm(point string) {
	f.mu.Lock()
	delete(f.arms, point)
	f.mu.Unlock()
}

// Fire records one hit of the fault point and reports whether the fault
// triggers now. A nil registry never fires.
func (f *Faults) Fire(point string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n, armed := f.arms[point]
	if !armed {
		return false
	}
	if n > 0 {
		f.arms[point] = n - 1
		return false
	}
	delete(f.arms, point)
	return true
}
