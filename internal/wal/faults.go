package wal

import "sync"

// Faults is a crash-injection registry: named fault points armed with a
// countdown. Durability code (the log sink, the checkpoint writer) calls
// Fire(point) at each crash-relevant step; the call reports true exactly once,
// when the armed countdown for that point reaches zero. Production paths pass
// a nil *Faults, which never fires, so injection costs one nil check.
//
// The registry lives in package wal because the log sink is the innermost
// fault site; internal/ckpt shares the same registry for its checkpoint-side
// points, so one harness can seed a whole crash scenario.
type Faults struct {
	mu   sync.Mutex
	arms map[string]int
}

// The central fault-point registry: every name ever passed to Arm or Fire,
// across the whole tree, is declared here. mvlint's faultpoint analyzer
// enforces membership, so a typo'd point can never arm a fault that never
// fires and silently turn a crash scenario into a no-crash run. When adding
// a fault point, declare it in this block and reference the constant (or an
// alias of it, like ckpt.FaultWALTear) at the arm/hit sites.
//
//mvlint:faultregistry
const (
	// FaultFileWriteErr fails a Write outright: no bytes reach the file and
	// the caller sees ErrInjected. Models a transient I/O error.
	FaultFileWriteErr = "file.writeerr"
	// FaultFileShortWrite writes only a prefix of the buffer and returns
	// io.ErrShortWrite with the short count — a torn frame mid-batch.
	FaultFileShortWrite = "file.shortwrite"
	// FaultFileENOSPC writes a prefix of the buffer and returns
	// syscall.ENOSPC: the disk filled mid-batch.
	FaultFileENOSPC = "file.enospc"
	// FaultFileSyncErr fails a Sync and drops every byte written since the
	// last successful sync — the fsyncgate semantics: the kernel reports the
	// failure once, discards the dirty pages, and a retried fsync would
	// falsely succeed over the hole. The file itself keeps working.
	FaultFileSyncErr = "file.syncerr"
	// FaultFileCrash is a power loss. During a Write it lets half of the
	// buffer reach the file, then discards half of whatever sits past the
	// last fsync barrier (a torn, partially-persisted page cache); during a
	// Sync it discards everything past the barrier. Either way the device is
	// then gone: every later operation returns ErrCrashed, so nothing can be
	// acknowledged after the lights went out.
	FaultFileCrash = "file.crash"
	// FaultWALTear tears a group-commit batch mid-write in the checkpoint
	// store's live segment: a prefix reaches the file, then the store
	// freezes (see ckpt.FaultWALTear).
	FaultWALTear = "wal.tear"
	// FaultWALFreeze freezes the checkpoint store after a batch fully
	// reaches the segment but before the commit is acknowledged.
	FaultWALFreeze = "wal.freeze"
	// FaultCkptPartition tears a checkpoint partition-file write and
	// freezes: a crash in the middle of checkpoint capture.
	FaultCkptPartition = "ckpt.partition"
	// FaultCkptManifest freezes after the manifest file is written but
	// before the CURRENT pointer flips to it.
	FaultCkptManifest = "ckpt.manifest"
)

// NewFaults returns an empty registry with every point disarmed.
func NewFaults() *Faults {
	return &Faults{arms: make(map[string]int)}
}

// Arm schedules fault point to fire on its (after+1)-th Fire call. Re-arming
// replaces any previous schedule for the point.
func (f *Faults) Arm(point string, after int) {
	f.mu.Lock()
	f.arms[point] = after
	f.mu.Unlock()
}

// Disarm removes any schedule for point.
func (f *Faults) Disarm(point string) {
	f.mu.Lock()
	delete(f.arms, point)
	f.mu.Unlock()
}

// Fire records one hit of the fault point and reports whether the fault
// triggers now. A nil registry never fires.
func (f *Faults) Fire(point string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n, armed := f.arms[point]
	if !armed {
		return false
	}
	if n > 0 {
		f.arms[point] = n - 1
		return false
	}
	delete(f.arms, point)
	return true
}
