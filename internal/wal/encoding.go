package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record wire format (little endian):
//
//	u32  frame length (bytes after this field)
//	u32  CRC-32C of the frame body
//	u64  txid
//	u64  end timestamp
//	u32  op count
//	ops: u8 op, u8 table name length, name bytes, u64 key,
//	     u32 payload length, payload bytes
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeRecord appends r's wire encoding to buf and returns the extended
// slice. It is the single encoding entry point, shared by the log's Append
// path and by checkpoint-time segment compaction, which rewrites surviving
// records into fresh segments.
func EncodeRecord(buf []byte, r *Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	buf = append(buf, 0, 0, 0, 0) // crc placeholder
	body := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, r.TxID)
	buf = binary.LittleEndian.AppendUint64(buf, r.EndTS)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Ops)))
	for i := range r.Ops {
		e := &r.Ops[i]
		buf = append(buf, byte(e.Op))
		if len(e.Table) > 255 {
			panic("wal: table name too long")
		}
		buf = append(buf, byte(len(e.Table)))
		buf = append(buf, e.Table...)
		buf = binary.LittleEndian.AppendUint64(buf, e.Key)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Payload)))
		buf = append(buf, e.Payload...)
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	crc := crc32.Checksum(buf[body:], castagnoli)
	binary.LittleEndian.PutUint32(buf[start+4:], crc)
	return buf
}

// ErrCorrupt reports a checksum or framing failure while reading a log.
var ErrCorrupt = errors.New("wal: corrupt record")

// Segment header (optional, versioned): 8 magic bytes and a little-endian
// u32 format version. Streams produced before the header existed start
// directly with a record frame; the reader auto-detects both, so old logs
// still decode. Detection is unambiguous — the magic's first four bytes,
// read as a frame length, exceed maxFrame by orders of magnitude.
const (
	segMagic = "MVWALSEG"
	// SegmentVersion is the current segment format version.
	SegmentVersion = 1
	segHeaderLen   = len(segMagic) + 4
)

// maxFrame bounds a single record frame (256 MiB). A larger claimed length
// is framing corruption, not a record.
const maxFrame = 1 << 28

// SegmentHeader returns the encoded header new segments start with.
func SegmentHeader() []byte {
	h := make([]byte, 0, segHeaderLen)
	h = append(h, segMagic...)
	return binary.LittleEndian.AppendUint32(h, SegmentVersion)
}

// Reader decodes a log stream one record at a time. It tolerates a torn
// final record — a crash can stop the sink mid-write, leaving a partial
// frame — by treating an unexpected end of stream as the end of the log and
// reporting the dangling byte count through Truncated. Checksum mismatches
// and impossible frame lengths are corruption, not tearing, and fail hard
// with ErrCorrupt.
type Reader struct {
	r         io.Reader
	version   uint32
	started   bool
	truncated int64
	hdr       [segHeaderLen]byte
}

// NewReader returns a streaming decoder for r. The segment header, if
// present, is consumed on the first Next call.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r}
}

// Truncated returns the number of torn trailing bytes discarded so far.
func (d *Reader) Truncated() int64 { return d.truncated }

// Version returns the stream's segment format version (0 for headerless
// legacy streams); valid after the first Next call.
func (d *Reader) Version() uint32 { return d.version }

// start consumes the optional segment header. It reports (false, err) when
// the stream ends inside the prelude: err is io.EOF for a clean empty stream
// and for a torn prelude (counted in Truncated), or a hard error.
func (d *Reader) start() (bool, error) {
	d.started = true
	n, err := io.ReadFull(d.r, d.hdr[:4])
	if err == io.EOF {
		return false, io.EOF
	}
	if err == io.ErrUnexpectedEOF {
		// Fewer than 4 bytes exist: too short for a frame length or a magic,
		// so this is a torn tail in either format.
		d.truncated += int64(n)
		return false, io.EOF
	}
	if err != nil {
		return false, err
	}
	if string(d.hdr[:4]) != segMagic[:4] {
		return true, nil // legacy headerless stream; hdr[:4] is a frame length
	}
	n, err = io.ReadFull(d.r, d.hdr[4:])
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		d.truncated += int64(4 + n)
		return false, io.EOF
	}
	if err != nil {
		return false, err
	}
	if string(d.hdr[:len(segMagic)]) != segMagic {
		return false, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	d.version = binary.LittleEndian.Uint32(d.hdr[len(segMagic):])
	if d.version != SegmentVersion {
		return false, fmt.Errorf("wal: unsupported segment version %d", d.version)
	}
	// The header was consumed; the next frame length must be read fresh.
	n, err = io.ReadFull(d.r, d.hdr[:4])
	if err == io.EOF {
		return false, io.EOF
	}
	if err == io.ErrUnexpectedEOF {
		d.truncated += int64(n)
		return false, io.EOF
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Next returns the next record. It returns io.EOF at the end of the stream —
// including a torn tail, which additionally increments Truncated — and
// ErrCorrupt for checksum or framing failures.
func (d *Reader) Next() (*Record, error) {
	if !d.started {
		ok, err := d.start()
		if !ok {
			return nil, err
		}
		// d.hdr[:4] already holds the first frame length.
	} else {
		n, err := io.ReadFull(d.r, d.hdr[:4])
		if err == io.EOF {
			return nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			d.truncated += int64(n)
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
	}
	length := binary.LittleEndian.Uint32(d.hdr[:4])
	if length < 4+20 || length > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d out of range", ErrCorrupt, length)
	}
	frame := make([]byte, length)
	n, err := io.ReadFull(d.r, frame)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		d.truncated += int64(4 + n)
		return nil, io.EOF
	}
	if err != nil {
		return nil, err
	}
	crc := binary.LittleEndian.Uint32(frame[:4])
	body := frame[4:]
	if crc32.Checksum(body, castagnoli) != crc {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return decodeBody(body)
}

// ReadAll decodes every record from an encoded log stream, in write order.
// Like Reader, it tolerates a torn final record, returning the well-formed
// prefix; callers that need the torn byte count use Reader directly.
func ReadAll(r io.Reader) ([]*Record, error) {
	var out []*Record
	d := NewReader(r)
	for {
		rec, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func decodeBody(b []byte) (*Record, error) {
	if len(b) < 20 {
		return nil, fmt.Errorf("%w: short body", ErrCorrupt)
	}
	rec := &Record{
		TxID:  binary.LittleEndian.Uint64(b[0:8]),
		EndTS: binary.LittleEndian.Uint64(b[8:16]),
	}
	n := binary.LittleEndian.Uint32(b[16:20])
	b = b[20:]
	for i := uint32(0); i < n; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("%w: short op header", ErrCorrupt)
		}
		var e Entry
		e.Op = Op(b[0])
		nameLen := int(b[1])
		b = b[2:]
		if len(b) < nameLen+12 {
			return nil, fmt.Errorf("%w: short op", ErrCorrupt)
		}
		e.Table = string(b[:nameLen])
		b = b[nameLen:]
		e.Key = binary.LittleEndian.Uint64(b[:8])
		payLen := int(binary.LittleEndian.Uint32(b[8:12]))
		b = b[12:]
		if len(b) < payLen {
			return nil, fmt.Errorf("%w: short payload", ErrCorrupt)
		}
		if payLen > 0 {
			e.Payload = append([]byte(nil), b[:payLen]...)
		}
		b = b[payLen:]
		rec.Ops = append(rec.Ops, e)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return rec, nil
}
