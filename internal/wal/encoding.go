package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record wire format (little endian):
//
//	u32  frame length (bytes after this field)
//	u32  CRC-32C of the frame body
//	u64  txid
//	u64  end timestamp
//	u32  op count
//	ops: u8 op, u8 table name length, name bytes, u64 key,
//	     u32 payload length, payload bytes
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func appendRecord(buf []byte, r *Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	buf = append(buf, 0, 0, 0, 0) // crc placeholder
	body := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, r.TxID)
	buf = binary.LittleEndian.AppendUint64(buf, r.EndTS)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Ops)))
	for i := range r.Ops {
		e := &r.Ops[i]
		buf = append(buf, byte(e.Op))
		if len(e.Table) > 255 {
			panic("wal: table name too long")
		}
		buf = append(buf, byte(len(e.Table)))
		buf = append(buf, e.Table...)
		buf = binary.LittleEndian.AppendUint64(buf, e.Key)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Payload)))
		buf = append(buf, e.Payload...)
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	crc := crc32.Checksum(buf[body:], castagnoli)
	binary.LittleEndian.PutUint32(buf[start+4:], crc)
	return buf
}

// ErrCorrupt reports a checksum or framing failure while reading a log.
var ErrCorrupt = errors.New("wal: corrupt record")

// ReadAll decodes every record from an encoded log stream, in write order.
// It is used by recovery audits and tests.
func ReadAll(r io.Reader) ([]*Record, error) {
	var out []*Record
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:4]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		length := binary.LittleEndian.Uint32(hdr[:4])
		if length < 4+20 {
			return out, fmt.Errorf("%w: frame length %d too small", ErrCorrupt, length)
		}
		frame := make([]byte, length)
		if _, err := io.ReadFull(r, frame); err != nil {
			return out, fmt.Errorf("%w: truncated frame: %v", ErrCorrupt, err)
		}
		crc := binary.LittleEndian.Uint32(frame[:4])
		body := frame[4:]
		if crc32.Checksum(body, castagnoli) != crc {
			return out, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		}
		rec, err := decodeBody(body)
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func decodeBody(b []byte) (*Record, error) {
	if len(b) < 20 {
		return nil, fmt.Errorf("%w: short body", ErrCorrupt)
	}
	rec := &Record{
		TxID:  binary.LittleEndian.Uint64(b[0:8]),
		EndTS: binary.LittleEndian.Uint64(b[8:16]),
	}
	n := binary.LittleEndian.Uint32(b[16:20])
	b = b[20:]
	for i := uint32(0); i < n; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("%w: short op header", ErrCorrupt)
		}
		var e Entry
		e.Op = Op(b[0])
		nameLen := int(b[1])
		b = b[2:]
		if len(b) < nameLen+12 {
			return nil, fmt.Errorf("%w: short op", ErrCorrupt)
		}
		e.Table = string(b[:nameLen])
		b = b[nameLen:]
		e.Key = binary.LittleEndian.Uint64(b[:8])
		payLen := int(binary.LittleEndian.Uint32(b[8:12]))
		b = b[12:]
		if len(b) < payLen {
			return nil, fmt.Errorf("%w: short payload", ErrCorrupt)
		}
		if payLen > 0 {
			e.Payload = append([]byte(nil), b[:payLen]...)
		}
		b = b[payLen:]
		rec.Ops = append(rec.Ops, e)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return rec, nil
}
