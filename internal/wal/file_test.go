package wal

// The FaultFile fault matrix: each test injects one byte-granularity disk
// fault into a segment being written through a FaultFile and asserts the
// reader-side policy holds — torn tails (unsynced bytes destroyed at any
// offset) decode to the well-formed prefix with the loss counted, and a CRC
// mismatch inside the stream still fails hard with ErrCorrupt.

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// newFaultSegment creates a real temp-file segment wrapped in a FaultFile
// and writes the segment header through it.
func newFaultSegment(t *testing.T, faults *Faults) (*FaultFile, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seg.log")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ff := NewFaultFile(f, faults)
	if _, err := ff.Write(SegmentHeader()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ff.Close() })
	return ff, path
}

func frame(t *testing.T, id uint64) []byte {
	t.Helper()
	return EncodeRecord(nil, testRecord(id, id))
}

// readSegment decodes the segment, returning the records and the torn-tail
// byte count; any error other than clean EOF fails the test.
func readSegment(t *testing.T, path string) ([]*Record, int64) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d := NewReader(f)
	var recs []*Record
	for {
		rec, err := d.Next()
		if err == io.EOF {
			return recs, d.Truncated()
		}
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		recs = append(recs, rec)
	}
}

func TestFaultFileWriteError(t *testing.T) {
	faults := NewFaults()
	ff, path := newFaultSegment(t, faults)
	if _, err := ff.Write(frame(t, 1)); err != nil {
		t.Fatal(err)
	}
	faults.Arm(FaultFileWriteErr, 0)
	n, err := ff.Write(frame(t, 2))
	if n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = (%d, %v), want (0, ErrInjected)", n, err)
	}
	// The fault was transient at the file layer (the log above latches it);
	// a later write still lands and the stream stays well-formed.
	if _, err := ff.Write(frame(t, 3)); err != nil {
		t.Fatal(err)
	}
	if err := ff.Sync(); err != nil {
		t.Fatal(err)
	}
	recs, torn := readSegment(t, path)
	if len(recs) != 2 || recs[0].TxID != 1 || recs[1].TxID != 3 || torn != 0 {
		t.Fatalf("recovered %d records, torn=%d", len(recs), torn)
	}
}

func TestFaultFileShortWriteMidFrame(t *testing.T) {
	faults := NewFaults()
	ff, path := newFaultSegment(t, faults)
	if _, err := ff.Write(frame(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ff.Sync(); err != nil {
		t.Fatal(err)
	}
	faults.Arm(FaultFileShortWrite, 0)
	fr := frame(t, 2)
	n, err := ff.Write(fr)
	if err != io.ErrShortWrite || n >= len(fr) {
		t.Fatalf("Write = (%d, %v), want short count and ErrShortWrite", n, err)
	}
	ff.Close()
	// The torn frame is a tolerated tail, not corruption.
	recs, torn := readSegment(t, path)
	if len(recs) != 1 || recs[0].TxID != 1 {
		t.Fatalf("recovered %d records, want just txn 1", len(recs))
	}
	if torn != int64(n) {
		t.Fatalf("torn = %d bytes, want the short prefix %d", torn, n)
	}
}

func TestFaultFileENOSPCMidBatch(t *testing.T) {
	faults := NewFaults()
	ff, path := newFaultSegment(t, faults)
	if _, err := ff.Write(frame(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ff.Sync(); err != nil {
		t.Fatal(err)
	}
	// One group-commit batch of three frames, disk full partway in.
	batch := append(append(frame(t, 2), frame(t, 3)...), frame(t, 4)...)
	faults.Arm(FaultFileENOSPC, 0)
	n, err := ff.Write(batch)
	if !errors.Is(err, syscall.ENOSPC) || n >= len(batch) {
		t.Fatalf("Write = (%d, %v), want partial count and ENOSPC", n, err)
	}
	ff.Close()
	recs, torn := readSegment(t, path)
	// The batch prefix may contain whole frames (decoded) plus a torn one
	// (counted); nothing may be corrupt and txn 1 must survive.
	if len(recs) < 1 || recs[0].TxID != 1 {
		t.Fatalf("recovered %d records, first=%+v", len(recs), recs)
	}
	for i, rec := range recs {
		if rec.TxID != uint64(i+1) {
			t.Fatalf("record %d has TxID %d", i, rec.TxID)
		}
	}
	if whole := int64(len(frame(t, 1))); torn >= whole || (n > 0 && len(recs) == 1 && torn == 0) {
		t.Fatalf("torn = %d, inconsistent with a mid-batch tear", torn)
	}
}

func TestFaultFileSyncErrorThenCrash(t *testing.T) {
	faults := NewFaults()
	ff, path := newFaultSegment(t, faults)
	if _, err := ff.Write(frame(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ff.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := ff.Write(frame(t, 2)); err != nil {
		t.Fatal(err)
	}
	faults.Arm(FaultFileSyncErr, 0)
	if err := ff.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync = %v, want ErrInjected", err)
	}
	// fsyncgate: the dirty bytes (txn 2) are gone and the failure was
	// reported exactly once — the file keeps accepting writes and syncs.
	if size, synced := ff.Offsets(); size != synced {
		t.Fatalf("unsynced bytes survived the failed fsync: size=%d synced=%d", size, synced)
	}
	if _, err := ff.Write(frame(t, 3)); err != nil {
		t.Fatal(err)
	}
	if err := ff.Sync(); err != nil {
		t.Fatalf("retried fsync reported %v — the false-success trap is the point", err)
	}
	if err := ff.Crash(0); err != nil {
		t.Fatal(err)
	}
	recs, torn := readSegment(t, path)
	if len(recs) != 2 || recs[0].TxID != 1 || recs[1].TxID != 3 {
		t.Fatalf("recovered %v, want txns 1 and 3 (2 was dropped by the failed fsync)", recs)
	}
	if torn != 0 {
		t.Fatalf("torn = %d after crash at a frame boundary", torn)
	}
}

// TestFaultFileCrashAtEveryOffset places the power-loss cut at every byte
// offset of the unsynced region and asserts the reader policy at each:
// synced records always survive, the unsynced frame appears only when fully
// persisted, and no cut point ever reads as corruption.
func TestFaultFileCrashAtEveryOffset(t *testing.T) {
	fr2 := frame(t, 2)
	for keep := int64(0); keep <= int64(len(fr2)); keep++ {
		faults := NewFaults()
		ff, path := newFaultSegment(t, faults)
		if _, err := ff.Write(frame(t, 1)); err != nil {
			t.Fatal(err)
		}
		if err := ff.Sync(); err != nil {
			t.Fatal(err)
		}
		if _, err := ff.Write(fr2); err != nil {
			t.Fatal(err)
		}
		if err := ff.Crash(keep); err != nil {
			t.Fatal(err)
		}
		if _, err := ff.Write(frame(t, 3)); !errors.Is(err, ErrCrashed) {
			t.Fatalf("keep=%d: post-crash Write = %v, want ErrCrashed", keep, err)
		}
		if err := ff.Sync(); !errors.Is(err, ErrCrashed) {
			t.Fatalf("keep=%d: post-crash Sync = %v, want ErrCrashed", keep, err)
		}
		recs, torn := readSegment(t, path)
		want := 1
		if keep == int64(len(fr2)) {
			want = 2
		}
		if len(recs) != want || recs[0].TxID != 1 {
			t.Fatalf("keep=%d: recovered %d records, want %d", keep, len(recs), want)
		}
		if want == 1 && torn != keep {
			t.Fatalf("keep=%d: torn = %d, want the whole kept prefix", keep, torn)
		}
	}
}

func TestFaultFileCrashDuringWrite(t *testing.T) {
	faults := NewFaults()
	ff, path := newFaultSegment(t, faults)
	if _, err := ff.Write(frame(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ff.Sync(); err != nil {
		t.Fatal(err)
	}
	faults.Arm(FaultFileCrash, 0)
	if _, err := ff.Write(frame(t, 2)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Write during power loss = %v, want ErrCrashed", err)
	}
	if !ff.Crashed() {
		t.Fatal("file not marked crashed")
	}
	recs, _ := readSegment(t, path)
	if len(recs) != 1 || recs[0].TxID != 1 {
		t.Fatalf("synced txn 1 must survive the mid-write power loss; got %v", recs)
	}
}

// TestCorruptionStillFailsHard guards the other half of the policy: a flipped
// bit inside the synced region is not a torn tail and must surface as
// ErrCorrupt, fault layer or no fault layer.
func TestCorruptionStillFailsHard(t *testing.T) {
	ff, path := newFaultSegment(t, NewFaults())
	if _, err := ff.Write(frame(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ff.Write(frame(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := ff.Sync(); err != nil {
		t.Fatal(err)
	}
	ff.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(SegmentHeader())+10] ^= 0x40 // inside the first frame's body
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = ReadAll(f)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadAll = %v, want ErrCorrupt", err)
	}
}
