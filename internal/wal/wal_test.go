package wal

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func testRecord(txid, end uint64) *Record {
	return &Record{
		TxID:  txid,
		EndTS: end,
		Ops: []Entry{
			{Table: "accounts", Op: OpUpdate, Key: txid * 10, Payload: []byte("payload")},
			{Table: "accounts", Op: OpDelete, Key: txid*10 + 1},
		},
	}
}

func TestAppendFlushRead(t *testing.T) {
	var buf bytes.Buffer
	l := Open(Config{Sink: &buf})
	for i := uint64(1); i <= 10; i++ {
		if err := l.Append(testRecord(i, i*2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("read %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.TxID != uint64(i+1) || r.EndTS != uint64(i+1)*2 {
			t.Fatalf("record %d = %+v", i, r)
		}
		if len(r.Ops) != 2 || r.Ops[0].Table != "accounts" ||
			string(r.Ops[0].Payload) != "payload" || r.Ops[1].Op != OpDelete {
			t.Fatalf("record %d ops = %+v", i, r.Ops)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSynchronousAppendWaitsForFlush(t *testing.T) {
	var buf bytes.Buffer
	l := Open(Config{Sink: &buf, Synchronous: true, BatchSize: 1})
	if err := l.Append(testRecord(1, 2)); err != nil {
		t.Fatal(err)
	}
	// The record must already be in the sink when Append returns.
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
	l.Close()
}

func TestCloseRejectsAppends(t *testing.T) {
	l := Open(Config{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(1, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal("double close errored")
	}
}

func TestGroupCommitBatches(t *testing.T) {
	var buf bytes.Buffer
	l := Open(Config{Sink: &buf, BatchSize: 8, FlushInterval: time.Hour})
	for i := uint64(1); i <= 64; i++ {
		if err := l.Append(testRecord(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	appended, flushed, batches, bytesOut := l.Stats()
	if appended != 64 || flushed != 64 {
		t.Fatalf("appended=%d flushed=%d", appended, flushed)
	}
	if batches >= 64 {
		t.Fatalf("batches = %d, expected grouping", batches)
	}
	if bytesOut == 0 {
		t.Fatal("no bytes written")
	}
	l.Close()
}

func TestConcurrentAppend(t *testing.T) {
	var buf bytes.Buffer
	l := Open(Config{Sink: &buf})
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(testRecord(uint64(w*per+i+1), 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != workers*per {
		t.Fatalf("read %d, want %d", len(recs), workers*per)
	}
	seen := make(map[uint64]bool)
	for _, r := range recs {
		if seen[r.TxID] {
			t.Fatalf("duplicate txid %d", r.TxID)
		}
		seen[r.TxID] = true
	}
	l.Close()
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	l := Open(Config{Sink: &buf, Synchronous: true, BatchSize: 1})
	l.Append(testRecord(1, 1))
	l.Close()
	b := buf.Bytes()
	b[len(b)-1] ^= 0xFF // flip a payload byte
	if _, err := ReadAll(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	l := Open(Config{Sink: &buf, Synchronous: true, BatchSize: 1})
	l.Append(testRecord(1, 1))
	l.Close()
	b := buf.Bytes()
	if _, err := ReadAll(bytes.NewReader(b[:len(b)-3])); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDeltaEncodingBandwidth(t *testing.T) {
	// Section 5: each update produces a log record storing the new image
	// plus ~8 bytes of metadata; verify framing overhead stays modest for
	// 24-byte rows.
	var buf bytes.Buffer
	l := Open(Config{Sink: &buf, BatchSize: 64})
	const n = 1000
	for i := uint64(0); i < n; i++ {
		l.Append(&Record{TxID: i + 1, EndTS: i + 1, Ops: []Entry{
			{Table: "t", Op: OpUpdate, Key: i, Payload: make([]byte, 24)},
		}})
	}
	l.Flush()
	_, _, _, total := l.Stats()
	perRecord := float64(total) / n
	if perRecord > 100 {
		t.Fatalf("per-record bytes = %.1f, framing too heavy", perRecord)
	}
	l.Close()
}

// Property: encode/decode round-trips arbitrary records.
func TestQuickRoundTrip(t *testing.T) {
	f := func(txid, end uint64, key uint64, payload []byte, table string, op uint8) bool {
		if len(table) > 255 {
			table = table[:255]
		}
		rec := &Record{TxID: txid, EndTS: end, Ops: []Entry{{
			Table:   table,
			Op:      Op(op%3 + 1),
			Key:     key,
			Payload: payload,
		}}}
		buf := appendRecord(nil, rec)
		got, err := ReadAll(bytes.NewReader(buf))
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		return g.TxID == txid && g.EndTS == end && len(g.Ops) == 1 &&
			g.Ops[0].Table == table && g.Ops[0].Key == key &&
			g.Ops[0].Op == Op(op%3+1) &&
			bytes.Equal(g.Ops[0].Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
