package wal

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func testRecord(txid, end uint64) *Record {
	return &Record{
		TxID:  txid,
		EndTS: end,
		Ops: []Entry{
			{Table: "accounts", Op: OpUpdate, Key: txid * 10, Payload: []byte("payload")},
			{Table: "accounts", Op: OpDelete, Key: txid*10 + 1},
		},
	}
}

func TestAppendFlushRead(t *testing.T) {
	var buf bytes.Buffer
	l := Open(Config{Sink: &buf})
	for i := uint64(1); i <= 10; i++ {
		if err := l.Append(testRecord(i, i*2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("read %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.TxID != uint64(i+1) || r.EndTS != uint64(i+1)*2 {
			t.Fatalf("record %d = %+v", i, r)
		}
		if len(r.Ops) != 2 || r.Ops[0].Table != "accounts" ||
			string(r.Ops[0].Payload) != "payload" || r.Ops[1].Op != OpDelete {
			t.Fatalf("record %d ops = %+v", i, r.Ops)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSynchronousAppendWaitsForFlush(t *testing.T) {
	var buf bytes.Buffer
	l := Open(Config{Sink: &buf, Synchronous: true, BatchSize: 1})
	if err := l.Append(testRecord(1, 2)); err != nil {
		t.Fatal(err)
	}
	// The record must already be in the sink when Append returns.
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
	l.Close()
}

func TestCloseRejectsAppends(t *testing.T) {
	l := Open(Config{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(1, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal("double close errored")
	}
}

func TestGroupCommitBatches(t *testing.T) {
	var buf bytes.Buffer
	l := Open(Config{Sink: &buf, BatchSize: 8, FlushInterval: time.Hour})
	for i := uint64(1); i <= 64; i++ {
		if err := l.Append(testRecord(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appended != 64 || st.Flushed != 64 {
		t.Fatalf("appended=%d flushed=%d", st.Appended, st.Flushed)
	}
	if st.Batches >= 64 {
		t.Fatalf("batches = %d, expected grouping", st.Batches)
	}
	if st.Bytes == 0 {
		t.Fatal("no bytes written")
	}
	l.Close()
}

func TestConcurrentAppend(t *testing.T) {
	var buf bytes.Buffer
	l := Open(Config{Sink: &buf})
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(testRecord(uint64(w*per+i+1), 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != workers*per {
		t.Fatalf("read %d, want %d", len(recs), workers*per)
	}
	seen := make(map[uint64]bool)
	for _, r := range recs {
		if seen[r.TxID] {
			t.Fatalf("duplicate txid %d", r.TxID)
		}
		seen[r.TxID] = true
	}
	l.Close()
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	l := Open(Config{Sink: &buf, Synchronous: true, BatchSize: 1})
	l.Append(testRecord(1, 1))
	l.Close()
	b := buf.Bytes()
	b[len(b)-1] ^= 0xFF // flip a payload byte
	if _, err := ReadAll(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTornTailTolerated(t *testing.T) {
	var buf bytes.Buffer
	l := Open(Config{Sink: &buf, Synchronous: true, BatchSize: 1})
	l.Append(testRecord(1, 1))
	l.Append(testRecord(2, 2))
	l.Close()
	b := buf.Bytes()
	// Tear the final record mid-frame: a crashed sink write. The reader must
	// return the well-formed prefix and account for the dangling bytes.
	for cut := 1; cut < 8; cut++ {
		torn := b[:len(b)-cut]
		recs, err := ReadAll(bytes.NewReader(torn))
		if err != nil {
			t.Fatalf("cut %d: err = %v, want torn tail tolerated", cut, err)
		}
		if len(recs) != 1 || recs[0].TxID != 1 {
			t.Fatalf("cut %d: recs = %+v, want exactly record 1", cut, recs)
		}
		d := NewReader(bytes.NewReader(torn))
		n := 0
		for {
			if _, err := d.Next(); err != nil {
				if !errors.Is(err, io.EOF) {
					t.Fatalf("cut %d: Next err = %v", cut, err)
				}
				break
			}
			n++
		}
		if n != 1 {
			t.Fatalf("cut %d: streamed %d records, want 1", cut, n)
		}
		if want := int64(len(b)/2 - cut); d.Truncated() != want {
			t.Fatalf("cut %d: truncated = %d, want %d", cut, d.Truncated(), want)
		}
	}
	// A tear inside the 4-byte length prefix is tolerated too.
	half := b[:len(b)/2+2]
	recs, err := ReadAll(bytes.NewReader(half))
	if err != nil || len(recs) != 1 {
		t.Fatalf("prefix tear: recs=%d err=%v", len(recs), err)
	}
}

func TestSegmentHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(SegmentHeader())
	buf.Write(EncodeRecord(nil, testRecord(7, 9)))
	d := NewReader(bytes.NewReader(buf.Bytes()))
	rec, err := d.Next()
	if err != nil || rec.TxID != 7 || rec.EndTS != 9 {
		t.Fatalf("rec=%+v err=%v", rec, err)
	}
	if d.Version() != SegmentVersion {
		t.Fatalf("version = %d, want %d", d.Version(), SegmentVersion)
	}
	if _, err := d.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}

	// Legacy streams carry no header and must still decode (version 0).
	legacy := NewReader(bytes.NewReader(EncodeRecord(nil, testRecord(3, 4))))
	rec, err = legacy.Next()
	if err != nil || rec.TxID != 3 {
		t.Fatalf("legacy rec=%+v err=%v", rec, err)
	}
	if legacy.Version() != 0 {
		t.Fatalf("legacy version = %d, want 0", legacy.Version())
	}

	// A header-only segment is a clean empty log.
	empty := NewReader(bytes.NewReader(SegmentHeader()))
	if _, err := empty.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty segment: want EOF, got %v", err)
	}
	if empty.Truncated() != 0 {
		t.Fatalf("empty segment truncated = %d", empty.Truncated())
	}
}

// errSink fails every write after the first n bytes worth of calls.
type errSink struct {
	mu    sync.Mutex
	fails bool
	err   error
}

func (s *errSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fails {
		return 0, s.err
	}
	return len(p), nil
}

func TestFlusherErrorPropagates(t *testing.T) {
	sink := &errSink{err: errors.New("disk gone")}
	l := Open(Config{Sink: sink, BatchSize: 1, FlushInterval: time.Millisecond})
	if err := l.Append(testRecord(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	sink.fails = true
	sink.mu.Unlock()
	if err := l.Append(testRecord(2, 2)); err != nil {
		t.Fatal(err) // queued before the failure is observed
	}
	if err := l.Flush(); err == nil {
		t.Fatal("Flush reported success after sink failure")
	}
	// The stored error must now surface from asynchronous Appends too: the
	// log can no longer promise durability, so acks would be lies.
	deadline := time.Now().Add(time.Second)
	for {
		if err := l.Append(testRecord(3, 3)); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async Append kept succeeding after sink failure")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err == nil {
		t.Fatal("Close reported success after sink failure")
	}
}

func TestFaultsCountdown(t *testing.T) {
	f := NewFaults()
	//mvlint:ignore faultpoint scratch point exercising the countdown mechanism itself, not a real fault site
	f.Arm("p", 2)
	fired := 0
	for i := 0; i < 10; i++ {
		//mvlint:ignore faultpoint scratch point exercising the countdown mechanism itself, not a real fault site
		if f.Fire("p") {
			fired++
			if i != 2 {
				t.Fatalf("fired on hit %d, want 2", i)
			}
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly once", fired)
	}
	//mvlint:ignore faultpoint scratch point exercising the countdown mechanism itself, not a real fault site
	if f.Fire("unarmed") {
		t.Fatal("unarmed point fired")
	}
	var nilF *Faults
	//mvlint:ignore faultpoint scratch point exercising the nil-registry path, not a real fault site
	if nilF.Fire("p") {
		t.Fatal("nil registry fired")
	}
}

func TestDeltaEncodingBandwidth(t *testing.T) {
	// Section 5: each update produces a log record storing the new image
	// plus ~8 bytes of metadata; verify framing overhead stays modest for
	// 24-byte rows.
	var buf bytes.Buffer
	l := Open(Config{Sink: &buf, BatchSize: 64})
	const n = 1000
	for i := uint64(0); i < n; i++ {
		l.Append(&Record{TxID: i + 1, EndTS: i + 1, Ops: []Entry{
			{Table: "t", Op: OpUpdate, Key: i, Payload: make([]byte, 24)},
		}})
	}
	l.Flush()
	perRecord := float64(l.Stats().Bytes) / n
	if perRecord > 100 {
		t.Fatalf("per-record bytes = %.1f, framing too heavy", perRecord)
	}
	l.Close()
}

// Property: encode/decode round-trips arbitrary records.
func TestQuickRoundTrip(t *testing.T) {
	f := func(txid, end uint64, key uint64, payload []byte, table string, op uint8) bool {
		if len(table) > 255 {
			table = table[:255]
		}
		rec := &Record{TxID: txid, EndTS: end, Ops: []Entry{{
			Table:   table,
			Op:      Op(op%3 + 1),
			Key:     key,
			Payload: payload,
		}}}
		buf := EncodeRecord(nil, rec)
		got, err := ReadAll(bytes.NewReader(buf))
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		return g.TxID == txid && g.EndTS == end && len(g.Ops) == 1 &&
			g.Ops[0].Table == table && g.Ops[0].Key == key &&
			g.Ops[0].Op == Op(op%3+1) &&
			bytes.Equal(g.Ops[0].Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
