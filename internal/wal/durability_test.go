package wal

// Durability-level and lifecycle-race tests for the group-commit log: the
// Fsync acknowledgement contract (ack follows the batch fsync, amortized),
// the fsyncgate policy (a failed fsync is latched fatal and never retried),
// and the Append/Close race regression.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// syncSink is an in-memory sink that separates written from synced bytes
// and can fail its Sync exactly once.
type syncSink struct {
	mu       sync.Mutex
	written  int
	synced   int
	syncs    int
	failNext bool
	err      error
}

func (s *syncSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.written += len(p)
	return len(p), nil
}

func (s *syncSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncs++
	if s.failNext {
		s.failNext = false
		return s.err
	}
	s.synced = s.written
	return nil
}

func (s *syncSink) counts() (written, synced, syncs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written, s.synced, s.syncs
}

func TestFsyncDurabilityAcks(t *testing.T) {
	sink := &syncSink{}
	l := Open(Config{Sink: sink, Durability: Fsync, BatchSize: 8, FlushInterval: time.Hour})
	var wg sync.WaitGroup
	const n = 64
	for i := uint64(1); i <= n; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			if err := l.Append(testRecord(i, i)); err != nil {
				t.Error(err)
				return
			}
			// The acknowledgement promise: at the instant Append returns,
			// this record's bytes are at or below the sink's sync barrier.
			written, synced, _ := sink.counts()
			if synced == 0 || synced > written {
				t.Errorf("acked with synced=%d written=%d", synced, written)
			}
		}(i)
	}
	wg.Wait()
	st := l.Stats()
	if st.Syncs == 0 || st.Syncs != st.Batches {
		t.Fatalf("syncs=%d batches=%d, want one fsync per batch", st.Syncs, st.Batches)
	}
	if st.Syncs >= n {
		t.Fatalf("%d fsyncs for %d records: group commit amortized nothing", st.Syncs, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, syncs := sink.counts()
	if uint64(syncs) != st.Syncs {
		t.Fatalf("sink saw %d syncs, log counted %d", syncs, st.Syncs)
	}
}

func TestFsyncCappedWithoutSyncer(t *testing.T) {
	// A sink with no Sync method silently caps Fsync at Flush semantics.
	sink := &errSink{}
	l := Open(Config{Sink: sink, Durability: Fsync, BatchSize: 1})
	if err := l.Append(testRecord(1, 1)); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Syncs != 0 {
		t.Fatalf("syncs=%d on a sink that cannot sync", st.Syncs)
	}
	l.Close()
}

func TestFsyncErrorLatchedNeverRetried(t *testing.T) {
	sink := &syncSink{failNext: true, err: errors.New("EIO: lost page writeback")}
	l := Open(Config{Sink: sink, Durability: Fsync, BatchSize: 1, FlushInterval: time.Millisecond})
	if err := l.Append(testRecord(1, 1)); !errors.Is(err, sink.err) {
		t.Fatalf("Append during failed fsync = %v, want the fsync error", err)
	}
	if err := l.Err(); !errors.Is(err, sink.err) {
		t.Fatalf("Err() = %v", err)
	}
	_, _, before := sink.counts()
	if before != 1 {
		t.Fatalf("%d sync attempts before latch, want 1", before)
	}
	// Everything after the latch fails fast and — per the fsyncgate policy —
	// the sink's Sync is NEVER called again: a retry would falsely succeed
	// over dropped pages.
	for i := uint64(2); i < 10; i++ {
		if err := l.Append(testRecord(i, i)); !errors.Is(err, sink.err) {
			t.Fatalf("Append %d after latch = %v", i, err)
		}
	}
	l.Flush()
	l.Close()
	if _, _, after := sink.counts(); after != before {
		t.Fatalf("sink.Sync called %d more times after a failed fsync", after-before)
	}
}

// TestAppendCloseRace is the regression test for the send-on-closed-channel
// panic: Append used to check closed under mu but send on l.ch after
// unlocking, so a concurrent Close could close the channel mid-send. Run
// with -race; before the fix this panicked within a handful of rounds.
func TestAppendCloseRace(t *testing.T) {
	for round := 0; round < 200; round++ {
		l := Open(Config{Sink: &errSink{}, BatchSize: 4, FlushInterval: time.Microsecond})
		var closed atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for i := uint64(1); ; i++ {
					if err := l.Append(testRecord(i, i)); err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("Append: %v", err)
						}
						if !closed.Load() {
							t.Error("ErrClosed before Close ran")
						}
						return
					}
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				l.Flush()
			}
		}()
		closed.Store(true)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if err := l.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
}
