package recovery_test

// The crash-injection suite: concurrent serializable workloads on all three
// engines are killed at seeded fault points — a torn group-commit batch, a
// freeze between flush and commit acknowledgement, a crash mid-checkpoint-
// partition, a crash after the manifest but before CURRENT flips, and a
// chopped log tail — then recovered from the surviving checkpoint + log and
// validated with the range-aware history checker.
//
// Every transaction inserts a unique marker row in a dedicated table in the
// same transaction as its data operations. A transaction whose commit
// acknowledgement raced the crash has an unknown outcome; because the log
// record (and the checkpoint) are atomic per transaction, the marker's
// presence in the recovered database decides it: marker present <=> the
// whole transaction is durable. The recovered history — definite commits,
// plus unknowns resolved durable, plus one final transaction reading
// everything back — must be serializable against the initial state.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/wal"
	"repro/internal/workload"
)

const (
	crashKeys    = 96
	crashGroups  = 8
	crashWorkers = 4
	crashTxns    = 150
)

func crashSecKey(p []byte) uint64 {
	return workload.SecondaryLayout.MustEncode(workload.RowVal(p)%crashGroups, workload.RowKey(p))
}

var crashIndexers = map[string]check.IndexKeyFn{
	"grp": func(key, value uint64) (uint64, bool) {
		return workload.SecondaryLayout.MustEncode(value%crashGroups, key), true
	},
}

// outcome is one committed-as-far-as-we-know transaction: its recorded
// footprint, its marker key, and whether the commit acknowledgement was
// observed strictly before the crash.
type outcome struct {
	h        check.Txn
	marker   uint64
	definite bool
}

func crashSchema(t *testing.T, db *core.Database) (rows, marks *core.Table) {
	t.Helper()
	rows, err := workload.SecondaryTable(db, crashKeys, crashGroups)
	if err != nil {
		t.Fatal(err)
	}
	marks, err = db.CreateTable(core.TableSpec{
		Name:    "marks",
		Indexes: []core.IndexSpec{{Name: "pk", Key: workload.RowKey, Buckets: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows, marks
}

func crashSpecs(rows, marks *core.Table) []ckpt.TableSpec {
	return []ckpt.TableSpec{
		{Table: rows, Partitions: 3, Lo: 0, Hi: crashKeys - 1},
		{Table: marks, Partitions: 2, Lo: 0, Hi: uint64(crashWorkers+1) << 40},
	}
}

func runCrashScenario(t *testing.T, scheme core.Scheme, fault string) {
	dir := t.TempDir()
	store, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(core.Config{
		Scheme:      scheme,
		LogSink:     store,
		SyncCommit:  true,
		LockTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, marks := crashSchema(t, db)

	// Logged initial load (LoadRow bypasses the log, so go through
	// transactions): even keys, value = key*100.
	initial := make(map[uint64]uint64)
	for base := uint64(0); base < crashKeys; base += 32 {
		tx := db.Begin()
		for k := base; k < base+32 && k < crashKeys; k += 2 {
			v := k * 100
			if err := tx.Insert(rows, workload.Row(k, v)); err != nil {
				t.Fatal(err)
			}
			initial[k] = v
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// A pre-crash checkpoint, so most scenarios recover checkpoint + tail.
	cp := ckpt.New(db, store, crashSpecs(rows, marks), ckpt.Options{})
	if _, err := cp.Run(); err != nil {
		t.Fatal(err)
	}

	f := wal.NewFaults()
	switch fault {
	case "wal.tear":
		f.Arm(ckpt.FaultWALTear, 5)
	case "wal.freeze":
		f.Arm(ckpt.FaultWALFreeze, 5)
	case "ckpt.partition":
		f.Arm(ckpt.FaultPartWrite, 1)
	case "ckpt.manifest":
		f.Arm(ckpt.FaultManifest, 0)
	case "chop":
		// No armed fault: a manual freeze, then tail bytes dropped.
	default:
		t.Fatalf("unknown fault %q", fault)
	}
	store.SetFaults(f)

	var (
		mu       sync.Mutex
		outcomes []outcome
	)
	var wg sync.WaitGroup
	for w := 0; w < crashWorkers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*7919 + 1))
			for i := 0; i < crashTxns && !store.Frozen(); i++ {
				marker := uint64(id+1)<<40 | uint64(i)
				h, ok := runCrashTxn(db, rows, marks, rng, marker)
				if !ok {
					continue
				}
				mu.Lock()
				outcomes = append(outcomes, outcome{h: h, marker: marker, definite: !store.Frozen()})
				mu.Unlock()
			}
		}(w)
	}

	// Mid-workload checkpoints: the vehicle for the ckpt.* faults, and for
	// the others a live streaming checkpoint racing the crash.
	for i := 0; i < 20 && !store.Frozen(); i++ {
		time.Sleep(2 * time.Millisecond)
		cp.Run() // errors (lock timeouts, injected freeze) are part of the scenario
	}
	if fault == "chop" {
		store.Freeze()
	}
	wg.Wait()
	if !store.Frozen() {
		t.Fatalf("fault %s never fired", fault)
	}
	db.Close()
	store.Close()
	if fault == "chop" {
		if err := store.ChopTail(13); err != nil {
			t.Fatal(err)
		}
	}

	// Recover into a fresh database (no log: replaying recovery transactions
	// into a new log would re-append old history).
	store2, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	db2, err := core.Open(core.Config{Scheme: scheme, LockTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows2, marks2 := crashSchema(t, db2)
	st, err := recovery.Recover(db2, recovery.TableSet{"rows": rows2, "marks": marks2},
		store2, recovery.Options{Workers: 4})
	if err != nil {
		t.Fatalf("recovery after %s: %v", fault, err)
	}

	// Resolve outcomes by marker presence, build the durable history.
	var history []check.Txn
	var maxEnd uint64
	rtx := db2.Begin(core.WithIsolation(core.SnapshotIsolation))
	for _, o := range outcomes {
		_, durable, err := rtx.Lookup(marks2, 0, o.marker, nil)
		if err != nil {
			t.Fatal(err)
		}
		if o.definite && !durable && fault != "chop" {
			// ChopTail deliberately destroys acknowledged bytes; every other
			// scenario promised durability for acknowledged commits.
			t.Errorf("%s: definite txn@%d (marker %#x) lost by recovery", fault, o.h.EndTS, o.marker)
		}
		if durable {
			history = append(history, o.h)
			if o.h.EndTS > maxEnd {
				maxEnd = o.h.EndTS
			}
		}
	}
	rtx.Commit()

	// One final transaction reading everything back from the recovered
	// database joins the history: if recovery lost, duplicated or reordered
	// any durable effect, the checker sees it as a serializability
	// violation of this read.
	final := check.Txn{EndTS: maxEnd + 1}
	ftx := db2.Begin(core.WithIsolation(core.SnapshotIsolation))
	for k := uint64(0); k < crashKeys; k++ {
		row, ok, err := ftx.Lookup(rows2, 0, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		r := check.Read{Table: "rows", Key: k, Found: ok}
		if ok {
			r.Value = workload.RowVal(row.Payload())
		}
		final.Reads = append(final.Reads, r)
	}
	for g := uint64(0); g < crashGroups; g++ {
		lo, hi := workload.SecondaryLayout.MustPrefixRange(g)
		rr := check.RangeRead{Table: "rows", Index: "grp", Lo: lo, Hi: hi}
		err := ftx.ScanPrefix(rows2, 1, []uint64{g}, nil, func(r core.Row) bool {
			rr.Keys = append(rr.Keys, crashSecKey(r.Payload()))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		final.RangeReads = append(final.RangeReads, rr)
	}
	ftx.Commit()
	history = append(history, final)

	if err := check.ValidateIndexed(initial, "rows", history, crashIndexers); err != nil {
		t.Fatalf("%s on %s: recovered history not serializable: %v\nrecovery stats: %+v",
			fault, scheme, err, st)
	}
	if len(history) < 2 {
		t.Fatalf("%s: degenerate scenario, only %d durable transactions", fault, len(history))
	}
}

// runCrashTxn executes one serializable workload transaction: a recorded
// group scan, a recorded point read, one write (insert, update or delete),
// and the marker insert. It returns the footprint and whether the commit
// succeeded.
func runCrashTxn(db *core.Database, rows, marks *core.Table, rng *rand.Rand, marker uint64) (check.Txn, bool) {
	tx := db.Begin(core.WithIsolation(core.Serializable))
	var h check.Txn

	g := rng.Uint64() % crashGroups
	lo, hi := workload.SecondaryLayout.MustPrefixRange(g)
	rr := check.RangeRead{Table: "rows", Index: "grp", Lo: lo, Hi: hi}
	if err := tx.ScanPrefix(rows, 1, []uint64{g}, nil, func(r core.Row) bool {
		rr.Keys = append(rr.Keys, crashSecKey(r.Payload()))
		return true
	}); err != nil {
		tx.Abort()
		return h, false
	}
	h.RangeReads = append(h.RangeReads, rr)

	rk := rng.Uint64() % crashKeys
	row, ok, err := tx.Lookup(rows, 0, rk, nil)
	if err != nil {
		tx.Abort()
		return h, false
	}
	r := check.Read{Table: "rows", Key: rk, Found: ok}
	if ok {
		r.Value = workload.RowVal(row.Payload())
	}
	h.Reads = append(h.Reads, r)

	wk := rng.Uint64() % crashKeys
	wrow, wok, err := tx.Lookup(rows, 0, wk, nil)
	if err != nil {
		tx.Abort()
		return h, false
	}
	switch {
	case !wok:
		nv := rng.Uint64() % 1_000_000
		if err := tx.Insert(rows, workload.Row(wk, nv)); err != nil {
			tx.Abort()
			return h, false
		}
		h.Writes = append(h.Writes, check.Write{Table: "rows", Key: wk, Value: nv})
	case rng.Intn(5) == 0:
		if err := tx.Delete(rows, wrow); err != nil {
			tx.Abort()
			return h, false
		}
		h.Writes = append(h.Writes, check.Write{Table: "rows", Op: check.WriteDelete, Key: wk})
	default:
		nv := rng.Uint64() % 1_000_000
		if err := tx.Update(rows, wrow, workload.Row(wk, nv)); err != nil {
			tx.Abort()
			return h, false
		}
		h.Writes = append(h.Writes, check.Write{Table: "rows", Key: wk, Value: nv})
	}

	if err := tx.Insert(marks, workload.Row(marker, 1)); err != nil {
		tx.Abort()
		return h, false
	}
	h.Writes = append(h.Writes, check.Write{Table: "marks", Key: marker, Value: 1})

	end, err := tx.CommitTS()
	if err != nil || end == 0 {
		return h, false
	}
	h.EndTS = end
	return h, true
}

func TestCrashRecovery(t *testing.T) {
	schemes := []core.Scheme{core.SingleVersion, core.MVPessimistic, core.MVOptimistic}
	faults := []string{"wal.tear", "wal.freeze", "ckpt.partition", "ckpt.manifest", "chop"}
	if testing.Short() {
		// One scheme still covers every fault's recovery path; the full
		// scheme × fault matrix is the long-mode/CI sweep.
		schemes = schemes[:1]
	}
	for _, scheme := range schemes {
		for _, fault := range faults {
			scheme, fault := scheme, fault
			t.Run(scheme.String()+"/"+fault, func(t *testing.T) {
				runCrashScenario(t, scheme, fault)
			})
		}
	}
}
