package recovery

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/wal"
)

func pay(key, val uint64) []byte {
	p := make([]byte, 16)
	binary.LittleEndian.PutUint64(p, key)
	binary.LittleEndian.PutUint64(p[8:], val)
	return p
}

func keyOf(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }
func valOf(p []byte) uint64 { return binary.LittleEndian.Uint64(p[8:]) }

// syncBuffer is a concurrency-safe log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

func newLoggedDB(t *testing.T, scheme core.Scheme) (*core.Database, *core.Table, *syncBuffer) {
	t.Helper()
	sink := &syncBuffer{}
	db, err := core.Open(core.Config{Scheme: scheme, LogSink: sink})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(core.TableSpec{
		Name:    "t",
		Indexes: []core.IndexSpec{{Name: "pk", Key: keyOf, Buckets: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl, sink
}

func newEmptyDB(t *testing.T) (*core.Database, *core.Table) {
	t.Helper()
	db, err := core.Open(core.Config{Scheme: core.MVOptimistic})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(core.TableSpec{
		Name:    "t",
		Indexes: []core.IndexSpec{{Name: "pk", Key: keyOf, Buckets: 1 << 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, tbl
}

// scanAll reads every live row into a map.
func scanAll(t *testing.T, db *core.Database, tbl *core.Table, maxKey uint64) map[uint64]uint64 {
	t.Helper()
	out := make(map[uint64]uint64)
	tx := db.Begin(core.WithIsolation(core.SnapshotIsolation))
	for k := uint64(0); k <= maxKey; k++ {
		row, ok, err := tx.Lookup(tbl, 0, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			out[k] = valOf(row.Payload())
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestReplayRebuildsState(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SingleVersion, core.MVPessimistic, core.MVOptimistic} {
		t.Run(scheme.String(), func(t *testing.T) {
			db, tbl, sink := newLoggedDB(t, scheme)
			// A little history: inserts, updates, deletes.
			for i := uint64(0); i < 20; i++ {
				tx := db.Begin()
				if err := tx.Insert(tbl, pay(i, i)); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			for i := uint64(0); i < 20; i += 2 {
				tx := db.Begin()
				if _, err := tx.UpdateWhere(tbl, 0, i, nil, func(old []byte) []byte {
					return pay(i, valOf(old)+100)
				}); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			for i := uint64(0); i < 20; i += 5 {
				tx := db.Begin()
				if _, err := tx.DeleteWhere(tbl, 0, i, nil); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			want := scanAll(t, db, tbl, 25)
			if err := db.Close(); err != nil { // flushes the log
				t.Fatal(err)
			}

			// Rebuild from the log into a fresh database.
			db2, tbl2 := newEmptyDB(t)
			st, err := Replay(db2, TableSet{"t": tbl2}, bytes.NewReader(sink.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if st.Records != 20+10+4 {
				t.Fatalf("replayed %d records, want 34", st.Records)
			}
			got := scanAll(t, db2, tbl2, 25)
			if len(got) != len(want) {
				t.Fatalf("recovered %d rows, want %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("key %d = %d, want %d", k, got[k], v)
				}
			}
		})
	}
}

func TestReplayConcurrentHistory(t *testing.T) {
	// Concurrent writers produce an interleaved log; replay must still
	// converge to the same final state because end timestamps order it.
	db, tbl, sink := newLoggedDB(t, core.MVOptimistic)
	for i := uint64(0); i < 32; i++ {
		tx := db.Begin()
		if err := tx.Insert(tbl, pay(i, 0)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := uint64((w*53 + i*13) % 32)
				tx := db.Begin()
				if _, err := tx.UpdateWhere(tbl, 0, k, nil, func(old []byte) []byte {
					return pay(k, valOf(old)+1)
				}); err != nil {
					tx.Abort()
					continue
				}
				_ = tx.Commit()
			}
		}(w)
	}
	wg.Wait()
	want := scanAll(t, db, tbl, 32)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The audit passes (every committed txn exactly once)...
	if _, err := Audit(bytes.NewReader(sink.Bytes())); err != nil {
		t.Fatal(err)
	}
	// ...and replay converges.
	db2, tbl2 := newEmptyDB(t)
	if _, err := Replay(db2, TableSet{"t": tbl2}, bytes.NewReader(sink.Bytes())); err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, db2, tbl2, 32)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d = %d, want %d", k, got[k], v)
		}
	}
}

func TestReplayShuffledStreams(t *testing.T) {
	// Commit ordering is determined by end timestamps carried in records,
	// so multiple log streams can be merged in any order (Section 3.2).
	db, tbl, sink := newLoggedDB(t, core.MVOptimistic)
	for i := uint64(0); i < 10; i++ {
		tx := db.Begin()
		if err := tx.Insert(tbl, pay(1000+i, i)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	tx := db.Begin()
	if _, err := tx.UpdateWhere(tbl, 0, 1005, nil, func([]byte) []byte { return pay(1005, 999) }); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	want := scanAll(t, db, tbl, 1010)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := wal.ReadAll(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Reverse the stream to simulate an adversarial merge order.
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		recs[i], recs[j] = recs[j], recs[i]
	}
	db2, tbl2 := newEmptyDB(t)
	if _, err := ReplayRecords(db2, TableSet{"t": tbl2}, recs); err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, db2, tbl2, 1010)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d = %d, want %d", k, got[k], v)
		}
	}
	if got[1005] != 999 {
		t.Fatalf("update lost in shuffled replay: %d", got[1005])
	}
}

func TestReplayUnknownTable(t *testing.T) {
	db, tbl, sink := newLoggedDB(t, core.MVOptimistic)
	tx := db.Begin()
	if err := tx.Insert(tbl, pay(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, _ := newEmptyDB(t)
	if _, err := Replay(db2, TableSet{}, bytes.NewReader(sink.Bytes())); err == nil {
		t.Fatal("replay into missing table accepted")
	}
}

func TestOracleAdvancedPastRecoveredTimestamps(t *testing.T) {
	db, tbl, sink := newLoggedDB(t, core.MVOptimistic)
	tx := db.Begin()
	if err := tx.Insert(tbl, pay(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, tbl2 := newEmptyDB(t)
	st, err := Replay(db2, TableSet{"t": tbl2}, bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if cur := db2.MV().Oracle().Current(); cur <= st.MaxEndTS {
		t.Fatalf("oracle at %d, want past %d", cur, st.MaxEndTS)
	}
}

func TestAuditDetectsDuplicates(t *testing.T) {
	rec := &wal.Record{TxID: 1, EndTS: 7, Ops: []wal.Entry{{Table: "t", Op: wal.OpInsert, Key: 1, Payload: pay(1, 1)}}}
	var buf bytes.Buffer
	l := wal.Open(wal.Config{Sink: &buf, Synchronous: true, BatchSize: 1})
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	dup := *rec
	if err := l.Append(&dup); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := Audit(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("duplicate end timestamp not detected")
	}
}
