package recovery_test

// Equivalence tests for the recovery paths: checkpoint + tail must
// reconstruct exactly what full-log replay reconstructs, and parallel
// partition restore must be indistinguishable from sequential.

import (
	"io"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/wal"
	"repro/internal/workload"
)

// readSegment decodes one log segment with the torn-tail-tolerant reader.
func readSegment(t *testing.T, path string) []*wal.Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d := wal.NewReader(f)
	var recs []*wal.Record
	for {
		rec, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// buildWorkloadStore runs a concurrent SecondaryMix workload against a
// logged database, takes a streaming checkpoint mid-run (KeepLog, so the
// full log survives for replay comparison), and returns the store directory
// plus the live database for never-crashed comparison. Callers close db.
func buildWorkloadStore(t *testing.T, dir string, keepLog bool) (*core.Database, *core.Table, *ckpt.Store) {
	t.Helper()
	const n, groups = 128, 8
	store, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(core.Config{
		Scheme:      core.MVOptimistic,
		LogSink:     store,
		SyncCommit:  true,
		LockTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := workload.SecondaryTable(db, n, groups)
	if err != nil {
		t.Fatal(err)
	}
	// Logged initial load.
	tx := db.Begin()
	for k := uint64(0); k < n; k++ {
		if err := tx.Insert(tbl, workload.Row(k, k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	mix := workload.SecondaryMix{Table: tbl, Dist: workload.Uniform{N: n}, N: n, Groups: groups, Scans: 1, W: 2}
	cp := ckpt.New(db, store, []ckpt.TableSpec{{Table: tbl, Partitions: 4, Lo: 0, Hi: n - 1}},
		ckpt.Options{KeepLog: keepLog})
	run := func(seed int64, txns int) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < txns; i++ {
			tx := db.Begin(core.WithIsolation(core.Serializable))
			if _, err := mix.Run(tx, rng); err != nil {
				tx.Abort()
				continue
			}
			tx.Commit()
		}
	}
	run(1, 200)
	if _, err := cp.Run(); err != nil {
		t.Fatal(err)
	}
	run(2, 200) // post-checkpoint history: the log tail
	return db, tbl, store
}

// state captures a database's externally observable content: the primary
// rows and every group's secondary-prefix scan result in index order.
type state struct {
	Rows   map[uint64]uint64
	Groups [][]uint64
}

func captureState(t *testing.T, db *core.Database, tbl *core.Table) state {
	t.Helper()
	const n, groups = 128, 8
	st := state{Rows: make(map[uint64]uint64)}
	tx := db.Begin(core.WithIsolation(core.SnapshotIsolation))
	for k := uint64(0); k < n; k++ {
		row, ok, err := tx.Lookup(tbl, 0, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			st.Rows[k] = workload.RowVal(row.Payload())
		}
	}
	for g := uint64(0); g < groups; g++ {
		var keys []uint64
		err := tx.ScanPrefix(tbl, 1, []uint64{g}, nil, func(r core.Row) bool {
			keys = append(keys, workload.RowKey(r.Payload()))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		st.Groups = append(st.Groups, keys)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return st
}

func recoverState(t *testing.T, dir string, opts recovery.Options) (state, recovery.Stats) {
	t.Helper()
	store, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	db, err := core.Open(core.Config{Scheme: core.MVOptimistic})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := workload.SecondaryTable(db, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	st, err := recovery.Recover(db, recovery.TableSet{"rows": tbl}, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	return captureState(t, db, tbl), st
}

// TestSecondaryMixRecoveryMatchesTwin recovers a SecondaryMix workload and
// compares primary rows and every ScanPrefix against the never-crashed
// database — the secondary non-unique ordered index must come back
// identical, in order (satellite of the recovery rewrite).
func TestSecondaryMixRecoveryMatchesTwin(t *testing.T) {
	dir := t.TempDir()
	db, tbl, store := buildWorkloadStore(t, dir, false)
	twin := captureState(t, db, tbl)
	db.Close()
	store.Close()

	got, st := recoverState(t, dir, recovery.Options{Workers: 4})
	if !reflect.DeepEqual(twin, got) {
		t.Fatalf("recovered state diverges from never-crashed twin\nstats %+v", st)
	}
	if st.RowsRestored == 0 || st.CheckpointTS == 0 {
		t.Fatalf("expected checkpoint-based recovery, stats %+v", st)
	}
}

// TestCheckpointTailMatchesFullReplay keeps the full log alongside the
// checkpoint (KeepLog) and recovers both ways: checkpoint + filtered tail,
// and pure log replay with no checkpoint. The two databases must agree
// exactly — the acceptance bar for checkpoint consistency.
func TestCheckpointTailMatchesFullReplay(t *testing.T) {
	dir := t.TempDir()
	db, _, store := buildWorkloadStore(t, dir, true)
	db.Close()
	store.Close()

	viaCkpt, st := recoverState(t, dir, recovery.Options{Workers: 4})
	if st.CheckpointTS == 0 || st.SkippedRecords == 0 {
		t.Fatalf("KeepLog should leave below-checkpoint records to skip, stats %+v", st)
	}

	// Full replay: same segments, checkpoint ignored.
	store2, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	db2, err := core.Open(core.Config{Scheme: core.MVOptimistic})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := workload.SecondaryTable(db2, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := store2.SegmentPaths()
	if err != nil {
		t.Fatal(err)
	}
	var recs []*wal.Record
	for _, p := range paths {
		recs = append(recs, readSegment(t, p)...)
	}
	if _, err := recovery.ReplayRecords(db2, recovery.TableSet{"rows": tbl2}, recs); err != nil {
		t.Fatal(err)
	}
	viaReplay := captureState(t, db2, tbl2)

	if !reflect.DeepEqual(viaCkpt, viaReplay) {
		t.Fatal("checkpoint+tail recovery diverges from full-log replay")
	}
}

// TestParallelMatchesSequential recovers the same store with one worker and
// with four; the results must be identical.
func TestParallelMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	db, _, store := buildWorkloadStore(t, dir, false)
	db.Close()
	store.Close()

	seq, sst := recoverState(t, dir, recovery.Options{Workers: 1})
	par, pst := recoverState(t, dir, recovery.Options{Workers: 4})
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel recovery diverges from sequential")
	}
	if sst.RowsRestored != pst.RowsRestored || sst.TailRecords != pst.TailRecords {
		t.Fatalf("stats diverge: sequential %+v parallel %+v", sst, pst)
	}
}
