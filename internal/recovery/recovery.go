// Package recovery rebuilds database state from a checkpoint plus the redo
// log tail, or from the log alone.
//
// The engine's commit protocol (Section 2.4 / 3.2) writes each committing
// transaction's new versions — and the keys of its deleted versions — to a
// redo record carrying the transaction's end timestamp. Because commit order
// is determined by end timestamps embedded in the records, recovery is
// order-insensitive at the stream level: records are merged by end timestamp
// and replayed; multiple log streams can simply be concatenated.
//
// With a checkpoint, recovery restores the manifest's partition files
// concurrently (each partition covers a disjoint primary-key range, so
// restores cannot conflict on rows), then replays only records with end
// timestamp above the checkpoint's stable timestamp. Records at or below it
// are filtered out — that is what makes checkpointing and log truncation
// independently crash-safe: truncation that did not happen yet only leaves
// redundant records the filter drops.
//
// Replay applies each record keyed by the records' primary-index key: an
// insert creates the row, an update replaces it, a delete removes it.
// Secondary and non-unique ordered indexes are rebuilt as a side effect of
// going through ordinary transactions. The timestamp oracle and the
// single-version sequence counters are advanced past the largest recovered
// timestamp so new transactions order after everything recovered.
package recovery

import (
	"container/heap"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/wal"
)

// TableSet maps table names (as they appear in log records and checkpoint
// manifests) to the rebuilt database's table handles.
type TableSet map[string]*core.Table

// Stats summarizes a recovery pass.
type Stats struct {
	Records  int // log records applied
	Inserts  int
	Updates  int
	Deletes  int
	MaxEndTS uint64

	// Log tail accounting.
	SegmentsRead   int   // log segments scanned
	TailRecords    int   // records above the checkpoint's stable timestamp
	SkippedRecords int   // records dropped by the stable-timestamp filter
	TruncatedBytes int64 // torn-tail bytes discarded by the tolerant reader

	// Checkpoint accounting (zero when recovering from the log alone).
	CheckpointSeq      uint64
	CheckpointTS       uint64
	RowsRestored       int
	PartitionsRestored int

	Elapsed time.Duration
}

// Options tunes Recover.
type Options struct {
	// Workers bounds the partition-restore pool (default 4).
	Workers int
	// BatchRows is the number of checkpoint rows inserted per transaction
	// during restore (default 256).
	BatchRows int
}

// Replay reads the encoded log from r and applies it to db. Tables must
// already have been created (schema is not logged, as in the paper's
// prototype). Each table's primary index (ordinal 0) must be a unique key —
// the same property the paper's delete logging relies on ("deletes are
// logged by writing a unique key"). A torn final record is tolerated and
// reported in Stats.TruncatedBytes.
func Replay(db *core.Database, tables TableSet, r io.Reader) (Stats, error) {
	var st Stats
	d := wal.NewReader(r)
	var recs []*wal.Record
	for {
		rec, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		recs = append(recs, rec)
	}
	st.TruncatedBytes = d.Truncated()
	rst, err := ReplayRecords(db, tables, recs)
	rst.TruncatedBytes = st.TruncatedBytes
	return rst, err
}

// ReplayRecords applies already-decoded records (e.g. merged from several
// streams) in end-timestamp order.
func ReplayRecords(db *core.Database, tables TableSet, recs []*wal.Record) (Stats, error) {
	var st Stats
	ordered := make([]*wal.Record, len(recs))
	copy(ordered, recs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].EndTS < ordered[j].EndTS })

	for _, rec := range ordered {
		if err := applyRecord(db, tables, rec, &st); err != nil {
			return st, err
		}
	}
	advanceSequences(db, st.MaxEndTS)
	return st, nil
}

// applyRecord replays one committed transaction's redo record inside one
// recovery transaction, keeping replay atomic per original transaction.
func applyRecord(db *core.Database, tables TableSet, rec *wal.Record, st *Stats) error {
	if rec.EndTS > st.MaxEndTS {
		st.MaxEndTS = rec.EndTS
	}
	tx := db.Begin(core.WithIsolation(core.ReadCommitted))
	for _, op := range rec.Ops {
		tbl, ok := tables[op.Table]
		if !ok {
			_ = tx.Abort()
			return fmt.Errorf("recovery: record for unknown table %q", op.Table)
		}
		switch op.Op {
		case wal.OpInsert:
			if err := tx.Insert(tbl, op.Payload); err != nil {
				_ = tx.Abort()
				return fmt.Errorf("recovery: insert %s[%d]: %w", op.Table, op.Key, err)
			}
			st.Inserts++
		case wal.OpUpdate:
			row, found, err := tx.Lookup(tbl, 0, op.Key, nil)
			if err != nil {
				_ = tx.Abort()
				return fmt.Errorf("recovery: lookup %s[%d]: %w", op.Table, op.Key, err)
			}
			if found {
				err = tx.Update(tbl, row, op.Payload)
			} else {
				// The row may predate the log's beginning — the checkpoint
				// holds its base image, or (log-only recovery) there is no
				// base at all: materialize it.
				err = tx.Insert(tbl, op.Payload)
			}
			if err != nil {
				_ = tx.Abort()
				return fmt.Errorf("recovery: update %s[%d]: %w", op.Table, op.Key, err)
			}
			st.Updates++
		case wal.OpDelete:
			if _, err := tx.DeleteWhere(tbl, 0, op.Key, nil); err != nil {
				_ = tx.Abort()
				return fmt.Errorf("recovery: delete %s[%d]: %w", op.Table, op.Key, err)
			}
			st.Deletes++
		default:
			_ = tx.Abort()
			return fmt.Errorf("recovery: unknown op %d", op.Op)
		}
	}
	if err := tx.Commit(); err != nil {
		return fmt.Errorf("recovery: commit of txn@%d: %w", rec.EndTS, err)
	}
	st.Records++
	return nil
}

// advanceSequences moves every engine clock past maxEndTS so new work orders
// strictly after everything recovered.
func advanceSequences(db *core.Database, maxEndTS uint64) {
	if maxEndTS == 0 {
		return
	}
	if db.MV() != nil {
		db.MV().Oracle().AdvanceTo(maxEndTS + 1)
	}
	if db.SV() != nil {
		db.SV().AdvanceSequences(maxEndTS)
	}
}

// Recover rebuilds db from a durability store: the latest published
// checkpoint's partitions restored concurrently, then the log tail replayed
// in end-timestamp order. With no published checkpoint it degenerates to a
// full-log replay over every segment. Tables must exist and be empty.
func Recover(db *core.Database, tables TableSet, store *ckpt.Store, opts Options) (Stats, error) {
	start := time.Now()
	var st Stats
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.BatchRows <= 0 {
		opts.BatchRows = 256
	}

	man, dir, err := store.LatestManifest()
	if err != nil {
		return st, err
	}
	if man != nil {
		st.CheckpointSeq = man.Seq
		st.CheckpointTS = man.StableTS
		if err := restoreCheckpoint(db, tables, man, dir, opts, &st); err != nil {
			return st, err
		}
	}

	tail, err := readTail(store, st.CheckpointTS, &st)
	if err != nil {
		return st, err
	}
	for tail.Len() > 0 {
		rec := heap.Pop(tail).(*wal.Record)
		if err := applyRecord(db, tables, rec, &st); err != nil {
			return st, err
		}
	}

	max := st.MaxEndTS
	if st.CheckpointTS > max {
		max = st.CheckpointTS
	}
	advanceSequences(db, max)
	st.Elapsed = time.Since(start)
	return st, nil
}

// restoreCheckpoint loads every manifest partition through a bounded worker
// pool. Partitions cover disjoint primary-key ranges, so two workers never
// touch the same row; on the single-version engine distinct keys can still
// hash-collide on a bucket lock, so a failed batch (lock timeout) is retried
// — its transaction aborted cleanly, the rows not yet applied.
func restoreCheckpoint(db *core.Database, tables TableSet, man *ckpt.Manifest, dir string, opts Options, st *Stats) error {
	type job struct {
		tbl  *core.Table
		path string
		info ckpt.PartInfo
	}
	var jobs []job
	for _, tm := range man.Tables {
		tbl, ok := tables[tm.Name]
		if !ok {
			return fmt.Errorf("recovery: checkpoint has unknown table %q", tm.Name)
		}
		for _, p := range tm.Parts {
			if p.Rows == 0 {
				continue
			}
			jobs = append(jobs, job{tbl: tbl, path: dir + string(os.PathSeparator) + p.File, info: p})
		}
	}

	workers := opts.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 0 {
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		rows     int
		parts    int
	)
	ch := make(chan job)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				n, err := restorePartition(db, j.tbl, j.path, j.info, opts.BatchRows)
				if err != nil {
					fail(err)
					continue
				}
				mu.Lock()
				rows += n
				parts++
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		ch <- j
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	st.RowsRestored = rows
	st.PartitionsRestored = parts
	return nil
}

// restorePartition streams one partition file into the table in batched
// insert transactions.
func restorePartition(db *core.Database, tbl *core.Table, path string, info ckpt.PartInfo, batchRows int) (int, error) {
	var (
		batch [][]byte
		total int
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		const retries = 16
		var err error
		for attempt := 0; attempt < retries; attempt++ {
			err = func() error {
				tx := db.Begin(core.WithIsolation(core.ReadCommitted))
				for _, payload := range batch {
					if err := tx.Insert(tbl, payload); err != nil {
						_ = tx.Abort()
						return err
					}
				}
				return tx.Commit()
			}()
			if err == nil {
				total += len(batch)
				batch = batch[:0]
				return nil
			}
			time.Sleep(time.Duration(attempt+1) * time.Millisecond)
		}
		return fmt.Errorf("recovery: restoring %s into %s: %w", path, tbl.Name(), err)
	}
	err := ckpt.ReadPartition(path, info, func(key uint64, payload []byte) error {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		batch = append(batch, cp)
		if len(batch) >= batchRows {
			return flush()
		}
		return nil
	})
	if err != nil {
		return total, err
	}
	if err := flush(); err != nil {
		return total, err
	}
	return total, nil
}

// recHeap is a min-heap of records ordered by end timestamp, merging the
// per-segment streams for tail replay.
type recHeap []*wal.Record

func (h recHeap) Len() int            { return len(h) }
func (h recHeap) Less(i, j int) bool  { return h[i].EndTS < h[j].EndTS }
func (h recHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *recHeap) Push(x interface{}) { *h = append(*h, x.(*wal.Record)) }
func (h *recHeap) Pop() interface{} {
	old := *h
	n := len(old)
	rec := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return rec
}

// readTail scans every log segment with the torn-tail-tolerant reader,
// keeping only records above the checkpoint's stable timestamp. Group
// commit interleaves end timestamps within a segment, so the tail is merged
// through a heap rather than assumed sorted; the stable-timestamp filter
// during the scan is what bounds its size to the post-checkpoint window.
func readTail(store *ckpt.Store, ckptTS uint64, st *Stats) (*recHeap, error) {
	paths, err := store.SegmentPaths()
	if err != nil {
		return nil, err
	}
	h := &recHeap{}
	heap.Init(h)
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		d := wal.NewReader(f)
		for {
			rec, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("recovery: reading %s: %w", path, err)
			}
			if rec.EndTS <= ckptTS {
				st.SkippedRecords++
				continue
			}
			heap.Push(h, rec)
		}
		st.TruncatedBytes += d.Truncated()
		st.SegmentsRead++
		f.Close()
	}
	st.TailRecords = h.Len()
	return h, nil
}

// Audit verifies a log stream against the exactly-once property: every end
// timestamp appears once, strictly increasing after sorting, with no zero
// timestamps. It returns the number of records checked.
func Audit(r io.Reader) (int, error) {
	recs, err := wal.ReadAll(r)
	if err != nil {
		return 0, err
	}
	seen := make(map[uint64]bool, len(recs))
	for _, rec := range recs {
		if rec.EndTS == 0 {
			return len(recs), fmt.Errorf("recovery: record with zero end timestamp (txid %d)", rec.TxID)
		}
		if seen[rec.EndTS] {
			return len(recs), fmt.Errorf("recovery: duplicate end timestamp %d", rec.EndTS)
		}
		seen[rec.EndTS] = true
	}
	return len(recs), nil
}
