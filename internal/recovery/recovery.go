// Package recovery rebuilds database state from the redo log.
//
// The engine's commit protocol (Section 2.4 / 3.2) writes each committing
// transaction's new versions — and the keys of its deleted versions — to a
// redo record carrying the transaction's end timestamp. Because commit order
// is determined by end timestamps embedded in the records, recovery is
// order-insensitive at the stream level: records are sorted by end timestamp
// and replayed; multiple log streams can simply be concatenated.
//
// Replay applies each record against the rebuilt tables keyed by the
// records' primary-index key: an insert creates the row, an update replaces
// it, a delete removes it. The timestamp oracle is advanced past the largest
// recovered timestamp so new transactions order after everything recovered.
package recovery

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/wal"
)

// TableSet maps table names (as they appear in log records) to the rebuilt
// database's table handles.
type TableSet map[string]*core.Table

// Stats summarizes a recovery pass.
type Stats struct {
	Records  int
	Inserts  int
	Updates  int
	Deletes  int
	MaxEndTS uint64
}

// Replay reads the encoded log from r and applies it to db. Tables must
// already have been created (schema is not logged, as in the paper's
// prototype). Each table's primary index (ordinal 0) must be a unique key —
// the same property the paper's delete logging relies on ("deletes are
// logged by writing a unique key").
func Replay(db *core.Database, tables TableSet, r io.Reader) (Stats, error) {
	var st Stats
	recs, err := wal.ReadAll(r)
	if err != nil {
		return st, err
	}
	return ReplayRecords(db, tables, recs)
}

// ReplayRecords applies already-decoded records (e.g. merged from several
// streams) in end-timestamp order.
func ReplayRecords(db *core.Database, tables TableSet, recs []*wal.Record) (Stats, error) {
	var st Stats
	ordered := make([]*wal.Record, len(recs))
	copy(ordered, recs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].EndTS < ordered[j].EndTS })

	for _, rec := range ordered {
		if rec.EndTS > st.MaxEndTS {
			st.MaxEndTS = rec.EndTS
		}
		// One recovery transaction per log record keeps replay atomic per
		// original transaction.
		tx := db.Begin(core.WithIsolation(core.ReadCommitted))
		for _, op := range rec.Ops {
			tbl, ok := tables[op.Table]
			if !ok {
				tx.Abort()
				return st, fmt.Errorf("recovery: record for unknown table %q", op.Table)
			}
			switch op.Op {
			case wal.OpInsert:
				if err := tx.Insert(tbl, op.Payload); err != nil {
					tx.Abort()
					return st, fmt.Errorf("recovery: insert %s[%d]: %w", op.Table, op.Key, err)
				}
				st.Inserts++
			case wal.OpUpdate:
				row, found, err := tx.Lookup(tbl, 0, op.Key, nil)
				if err != nil {
					tx.Abort()
					return st, fmt.Errorf("recovery: lookup %s[%d]: %w", op.Table, op.Key, err)
				}
				if found {
					err = tx.Update(tbl, row, op.Payload)
				} else {
					// The row may predate the log's beginning (no checkpoint
					// in this prototype): materialize it.
					err = tx.Insert(tbl, op.Payload)
				}
				if err != nil {
					tx.Abort()
					return st, fmt.Errorf("recovery: update %s[%d]: %w", op.Table, op.Key, err)
				}
				st.Updates++
			case wal.OpDelete:
				if _, err := tx.DeleteWhere(tbl, 0, op.Key, nil); err != nil {
					tx.Abort()
					return st, fmt.Errorf("recovery: delete %s[%d]: %w", op.Table, op.Key, err)
				}
				st.Deletes++
			default:
				tx.Abort()
				return st, fmt.Errorf("recovery: unknown op %d", op.Op)
			}
		}
		if err := tx.Commit(); err != nil {
			return st, fmt.Errorf("recovery: commit of txn@%d: %w", rec.EndTS, err)
		}
		st.Records++
	}

	// New work must order after everything recovered.
	if db.MV() != nil {
		db.MV().Oracle().AdvanceTo(st.MaxEndTS + 1)
	}
	return st, nil
}

// Audit verifies a log stream against the exactly-once property: every end
// timestamp appears once, strictly increasing after sorting, with no zero
// timestamps. It returns the number of records checked.
func Audit(r io.Reader) (int, error) {
	recs, err := wal.ReadAll(r)
	if err != nil {
		return 0, err
	}
	seen := make(map[uint64]bool, len(recs))
	for _, rec := range recs {
		if rec.EndTS == 0 {
			return len(recs), fmt.Errorf("recovery: record with zero end timestamp (txid %d)", rec.TxID)
		}
		if seen[rec.EndTS] {
			return len(recs), fmt.Errorf("recovery: duplicate end timestamp %d", rec.EndTS)
		}
		seen[rec.EndTS] = true
	}
	return len(recs), nil
}
