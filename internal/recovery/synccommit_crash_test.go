package recovery_test

// The synchronous-commit crash suite: the honesty test for the Fsync
// durability level. Unlike the freeze-model suite in crash_test.go — where a
// commit acknowledgement racing the crash has an *unknown* outcome — here
// every acknowledgement is a promise: Append returns only after the batch
// fsync, so a commit that returned nil MUST survive any fault the disk can
// throw. The store runs under the byte-granularity fault model
// (StoreOptions.Faults wraps the live segment in a wal.FaultFile): power loss
// discards everything past the last fsync barrier plus an arbitrary torn
// prefix, a failed fsync silently drops the dirty bytes (fsyncgate), write
// faults tear a batch mid-frame. After the fault the engine degrades to
// read-only; recovery from the surviving bytes must contain every
// acknowledged transaction — except under "chop", which deliberately
// destroys acknowledged tail bytes — and the history must validate.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/wal"
	"repro/internal/workload"
)

const (
	syncWorkers = 4
	syncTxns    = 80
)

func runSyncCommitScenario(t *testing.T, scheme core.Scheme, fault string) {
	dir := t.TempDir()
	f := wal.NewFaults()
	store, err := ckpt.OpenStoreWith(dir, ckpt.StoreOptions{Faults: f})
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(core.Config{
		Scheme:      scheme,
		LogSink:     store,
		Durability:  core.DurabilityFsync,
		LockTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, marks := crashSchema(t, db)

	// Logged initial load: even keys, value = key*100 (same shape as the
	// freeze-model suite, so the same checker setup applies).
	initial := make(map[uint64]uint64)
	for base := uint64(0); base < crashKeys; base += 32 {
		tx := db.Begin()
		for k := base; k < base+32 && k < crashKeys; k += 2 {
			v := k * 100
			if err := tx.Insert(rows, workload.Row(k, v)); err != nil {
				t.Fatal(err)
			}
			initial[k] = v
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	cp := ckpt.New(db, store, crashSpecs(rows, marks), ckpt.Options{})
	if _, err := cp.Run(); err != nil {
		t.Fatal(err)
	}

	// Arm the disk fault only now: the load and the first checkpoint ran on a
	// healthy disk, the workload below runs into the fault. Countdown units
	// are Fire calls on the live segment — one Write and one Sync per
	// group-commit batch.
	switch fault {
	case "powerloss":
		f.Arm(wal.FaultFileCrash, 9)
	case "syncerr":
		f.Arm(wal.FaultFileSyncErr, 5)
	case "enospc":
		f.Arm(wal.FaultFileENOSPC, 5)
	case "shortwrite":
		f.Arm(wal.FaultFileShortWrite, 5)
	case "writeerr":
		f.Arm(wal.FaultFileWriteErr, 5)
	case "chop":
		// No fault: the workload completes, then acknowledged tail bytes are
		// destroyed behind the store's back.
	default:
		t.Fatalf("unknown fault %q", fault)
	}

	// Two outcome classes. Acked: CommitTS returned nil after the batch
	// fsync — definite, MUST survive. Refused: CommitTS returned an error
	// and the engine aborted the transaction; the store rolls torn batches
	// back, so a refused commit must NOT survive — except under power loss,
	// where the process dies mid-cleanup and a fully-persisted frame in the
	// kept torn tail legitimately resurrects (the marker decides, exactly
	// like the freeze-model suite's unknown outcomes).
	var (
		mu       sync.Mutex
		acked    []outcome
		refused  []outcome
		attempts int
	)
	var wg sync.WaitGroup
	for w := 0; w < syncWorkers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)*6173 + 11))
			for i := 0; i < syncTxns && db.Degraded() == nil; i++ {
				marker := uint64(id+1)<<40 | uint64(i)
				h, ok := runSyncTxn(db, rows, marks, rng, marker)
				mu.Lock()
				attempts++
				switch {
				case ok:
					acked = append(acked, outcome{h: h, marker: marker, definite: true})
				case h.EndTS != 0 && len(h.Writes) > 0:
					refused = append(refused, outcome{h: h, marker: marker})
				}
				mu.Unlock()
			}
		}(w)
	}
	// Checkpoints race the fault, exercising rotation and compaction under
	// the byte-fault model; errors after the latch are part of the scenario.
	for i := 0; i < 12 && db.Degraded() == nil; i++ {
		time.Sleep(2 * time.Millisecond)
		cp.Run()
	}
	wg.Wait()
	if fault != "chop" {
		if db.Degraded() == nil {
			t.Fatalf("fault %s never fired (%d commits attempted)", fault, attempts)
		}
	} else if err := db.Degraded(); err != nil {
		t.Fatalf("chop scenario degraded before the chop: %v", err)
	}
	db.Close() // flushes; on a dead disk the close error is the latched fault
	store.Close()
	if fault == "chop" {
		if err := store.ChopTail(13); err != nil {
			t.Fatal(err)
		}
	}

	// Recover into a fresh database (no log: recovery must not re-append).
	store2, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	db2, err := core.Open(core.Config{Scheme: scheme, LockTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows2, marks2 := crashSchema(t, db2)
	st, err := recovery.Recover(db2, recovery.TableSet{"rows": rows2, "marks": marks2},
		store2, recovery.Options{Workers: 4})
	if err != nil {
		t.Fatalf("recovery after %s: %v", fault, err)
	}

	// The acceptance gates. Every acknowledged commit is present ("chop"
	// destroyed acknowledged bytes on purpose and is exempt; its survivors
	// still join the history). Every refused commit is absent — the store
	// rolled its torn batch back — except under power loss, where a refused
	// frame that fully persisted before the cut legitimately resurrects and
	// joins the history at the end timestamp CommitTS reported.
	var history []check.Txn
	var maxEnd uint64
	lost, resurrected := 0, 0
	rtx := db2.Begin(core.WithIsolation(core.SnapshotIsolation))
	for _, o := range acked {
		_, durable, err := rtx.Lookup(marks2, 0, o.marker, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !durable {
			lost++
			if fault != "chop" {
				t.Errorf("%s: acknowledged txn@%d (marker %#x) lost by recovery",
					fault, o.h.EndTS, o.marker)
			}
			continue
		}
		history = append(history, o.h)
		if o.h.EndTS > maxEnd {
			maxEnd = o.h.EndTS
		}
	}
	for _, o := range refused {
		_, durable, err := rtx.Lookup(marks2, 0, o.marker, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !durable {
			continue
		}
		if fault != "powerloss" {
			t.Errorf("%s: refused txn@%d (marker %#x) resurrected by recovery",
				fault, o.h.EndTS, o.marker)
			continue
		}
		resurrected++
		history = append(history, o.h)
		if o.h.EndTS > maxEnd {
			maxEnd = o.h.EndTS
		}
	}
	rtx.Commit()

	// One final transaction reads everything back; the checker treats any
	// recovery loss, duplication or reordering as a serializability violation
	// of this read.
	final := check.Txn{EndTS: maxEnd + 1}
	ftx := db2.Begin(core.WithIsolation(core.SnapshotIsolation))
	for k := uint64(0); k < crashKeys; k++ {
		row, ok, err := ftx.Lookup(rows2, 0, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		r := check.Read{Table: "rows", Key: k, Found: ok}
		if ok {
			r.Value = workload.RowVal(row.Payload())
		}
		final.Reads = append(final.Reads, r)
	}
	for g := uint64(0); g < crashGroups; g++ {
		lo, hi := workload.SecondaryLayout.MustPrefixRange(g)
		rr := check.RangeRead{Table: "rows", Index: "grp", Lo: lo, Hi: hi}
		err := ftx.ScanPrefix(rows2, 1, []uint64{g}, nil, func(r core.Row) bool {
			rr.Keys = append(rr.Keys, crashSecKey(r.Payload()))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		final.RangeReads = append(final.RangeReads, rr)
	}
	ftx.Commit()
	history = append(history, final)

	if err := check.ValidateIndexed(initial, "rows", history, crashIndexers); err != nil {
		t.Fatalf("%s on %s: recovered history not serializable: %v\nrecovery stats: %+v",
			fault, scheme, err, st)
	}
	if len(history) < 3 {
		t.Fatalf("%s: degenerate scenario, only %d durable transactions (%d acked, %d lost)",
			fault, len(history)-1, len(acked), lost)
	}
	t.Logf("%s on %s: %d attempted, %d acknowledged, %d refused, %d lost, %d resurrected, stats %+v",
		fault, scheme, attempts, len(acked), len(refused), lost, resurrected, st)
}

// runSyncTxn is runCrashTxn with one difference needed by the strict ack
// contract: when the commit is refused by a log failure, the end timestamp
// CommitTS drew travels back in h.EndTS, so a power-loss resurrection of the
// transaction can be placed in the history.
func runSyncTxn(db *core.Database, rows, marks *core.Table, rng *rand.Rand, marker uint64) (check.Txn, bool) {
	tx := db.Begin(core.WithIsolation(core.Serializable))
	var h check.Txn

	g := rng.Uint64() % crashGroups
	lo, hi := workload.SecondaryLayout.MustPrefixRange(g)
	rr := check.RangeRead{Table: "rows", Index: "grp", Lo: lo, Hi: hi}
	if err := tx.ScanPrefix(rows, 1, []uint64{g}, nil, func(r core.Row) bool {
		rr.Keys = append(rr.Keys, crashSecKey(r.Payload()))
		return true
	}); err != nil {
		tx.Abort()
		return h, false
	}
	h.RangeReads = append(h.RangeReads, rr)

	rk := rng.Uint64() % crashKeys
	row, ok, err := tx.Lookup(rows, 0, rk, nil)
	if err != nil {
		tx.Abort()
		return h, false
	}
	r := check.Read{Table: "rows", Key: rk, Found: ok}
	if ok {
		r.Value = workload.RowVal(row.Payload())
	}
	h.Reads = append(h.Reads, r)

	wk := rng.Uint64() % crashKeys
	wrow, wok, err := tx.Lookup(rows, 0, wk, nil)
	if err != nil {
		tx.Abort()
		return h, false
	}
	switch {
	case !wok:
		nv := rng.Uint64() % 1_000_000
		if err := tx.Insert(rows, workload.Row(wk, nv)); err != nil {
			tx.Abort()
			return h, false
		}
		h.Writes = append(h.Writes, check.Write{Table: "rows", Key: wk, Value: nv})
	case rng.Intn(5) == 0:
		if err := tx.Delete(rows, wrow); err != nil {
			tx.Abort()
			return h, false
		}
		h.Writes = append(h.Writes, check.Write{Table: "rows", Op: check.WriteDelete, Key: wk})
	default:
		nv := rng.Uint64() % 1_000_000
		if err := tx.Update(rows, wrow, workload.Row(wk, nv)); err != nil {
			tx.Abort()
			return h, false
		}
		h.Writes = append(h.Writes, check.Write{Table: "rows", Key: wk, Value: nv})
	}

	if err := tx.Insert(marks, workload.Row(marker, 1)); err != nil {
		tx.Abort()
		return h, false
	}
	h.Writes = append(h.Writes, check.Write{Table: "marks", Key: marker, Value: 1})

	end, err := tx.CommitTS()
	h.EndTS = end // non-zero with an error ⇒ the log refused a drawn commit
	return h, err == nil && end != 0
}

func TestSyncCommitCrashRecovery(t *testing.T) {
	schemes := []core.Scheme{core.SingleVersion, core.MVPessimistic, core.MVOptimistic}
	faults := []string{"powerloss", "syncerr", "enospc", "shortwrite", "writeerr", "chop"}
	if testing.Short() {
		// One scheme still covers every fault's durability path; the full
		// scheme × fault matrix is the long-mode/CI sweep.
		schemes = schemes[:1]
	}
	for _, scheme := range schemes {
		for _, fault := range faults {
			scheme, fault := scheme, fault
			t.Run(scheme.String()+"/"+fault, func(t *testing.T) {
				runSyncCommitScenario(t, scheme, fault)
			})
		}
	}
}
