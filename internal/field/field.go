// Package field encodes and decodes the 64-bit Begin and End words stored
// in every version header.
//
// The paper (Section 2.3, Section 4.1.1) overloads these words: most of the
// time they hold a 63-bit commit timestamp, but while a transaction is
// operating on the version they hold the transaction's ID, and under the
// pessimistic scheme the End word additionally embeds the record lock:
//
//	bit 63      ContentType     0 = timestamp, 1 = transaction ID / lock word
//	bits 0..62  Timestamp       when ContentType = 0
//
// A tagged Begin word holds a 63-bit transaction ID. A tagged End word is
// always interpreted as a record-lock word with the exact layout of
// Section 4.1.1:
//
//	bit 62      NoMoreReadLocks  no further read locks accepted
//	bits 54..61 ReadLockCount    number of read locks (max 255)
//	bits 0..53  WriteLock        ID of the write-locking transaction, or
//	                             NoWriter (all ones) if none
//
// An optimistic transaction that "stores its transaction ID in the End
// field" is represented as a lock word with zero read locks and the
// transaction ID in WriteLock; this is what makes optimistic and pessimistic
// transactions mutually compatible (Section 4.5).
package field

const (
	tagBit = uint64(1) << 63

	// Infinity is the largest representable timestamp. A version whose End
	// word is Infinity is the latest version of its record.
	Infinity = uint64(1)<<63 - 1

	// NoWriter is the WriteLock field value meaning "no write lock held".
	NoWriter = uint64(1)<<54 - 1

	// MaxTxID is the largest transaction ID that fits in the 54-bit
	// WriteLock field.
	MaxTxID = NoWriter - 1

	// MaxReadLocks is the capacity of the 8-bit ReadLockCount field.
	MaxReadLocks = 255

	noMoreBit    = uint64(1) << 62
	readersShift = 54
	readersMask  = uint64(0xFF) << readersShift
	writerMask   = NoWriter
)

// FromTS returns the word encoding of timestamp ts.
// ts must be at most Infinity.
func FromTS(ts uint64) uint64 {
	if ts > Infinity {
		panic("field: timestamp overflows 63 bits")
	}
	return ts
}

// IsTS reports whether w holds a plain timestamp.
func IsTS(w uint64) bool { return w&tagBit == 0 }

// TS extracts the timestamp from a word for which IsTS is true.
func TS(w uint64) uint64 { return w &^ tagBit }

// FromTxID returns the Begin-word encoding of transaction ID id.
func FromTxID(id uint64) uint64 {
	if id > MaxTxID {
		panic("field: transaction ID overflows 54 bits")
	}
	return tagBit | id
}

// TxID extracts the transaction ID from a tagged Begin word.
func TxID(w uint64) uint64 { return w &^ tagBit }

// Lock constructs an End-word record lock.
func Lock(writer uint64, readers int, noMore bool) uint64 {
	if writer != NoWriter && writer > MaxTxID {
		panic("field: writer ID overflows 54 bits")
	}
	if readers < 0 || readers > MaxReadLocks {
		panic("field: read lock count out of range")
	}
	w := tagBit | writer&writerMask | uint64(readers)<<readersShift
	if noMore {
		w |= noMoreBit
	}
	return w
}

// IsLock reports whether w is a lock word (equivalently, a tagged End word).
func IsLock(w uint64) bool { return w&tagBit != 0 }

// Writer returns the WriteLock field of lock word w. The result is NoWriter
// when no transaction holds the write lock.
func Writer(w uint64) uint64 { return w & writerMask }

// HasWriter reports whether lock word w carries a write lock.
func HasWriter(w uint64) bool { return w&writerMask != NoWriter }

// Readers returns the ReadLockCount field of lock word w.
func Readers(w uint64) int { return int((w & readersMask) >> readersShift) }

// NoMoreReadLocks reports whether the starvation-prevention flag is set.
func NoMoreReadLocks(w uint64) bool { return w&noMoreBit != 0 }

// WithWriter returns w with the WriteLock field replaced by writer.
func WithWriter(w, writer uint64) uint64 {
	if writer != NoWriter && writer > MaxTxID {
		panic("field: writer ID overflows 54 bits")
	}
	return w&^writerMask | writer&writerMask
}

// WithReaders returns w with the ReadLockCount field replaced by readers.
func WithReaders(w uint64, readers int) uint64 {
	if readers < 0 || readers > MaxReadLocks {
		panic("field: read lock count out of range")
	}
	return w&^readersMask | uint64(readers)<<readersShift
}

// WithNoMore returns w with the NoMoreReadLocks flag set to noMore.
func WithNoMore(w uint64, noMore bool) uint64 {
	if noMore {
		return w | noMoreBit
	}
	return w &^ noMoreBit
}
