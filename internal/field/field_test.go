package field

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimestampRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 42, Infinity - 1, Infinity}
	for _, ts := range cases {
		w := FromTS(ts)
		if !IsTS(w) {
			t.Fatalf("FromTS(%d) not recognized as timestamp", ts)
		}
		if IsLock(w) {
			t.Fatalf("FromTS(%d) recognized as lock", ts)
		}
		if got := TS(w); got != ts {
			t.Fatalf("TS(FromTS(%d)) = %d", ts, got)
		}
	}
}

func TestTimestampOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for timestamp > Infinity")
		}
	}()
	FromTS(Infinity + 1)
}

func TestTxIDRoundTrip(t *testing.T) {
	cases := []uint64{1, 7, MaxTxID}
	for _, id := range cases {
		w := FromTxID(id)
		if IsTS(w) {
			t.Fatalf("FromTxID(%d) recognized as timestamp", id)
		}
		if got := TxID(w); got != id {
			t.Fatalf("TxID(FromTxID(%d)) = %d", id, got)
		}
	}
}

func TestTxIDOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for txid > MaxTxID")
		}
	}()
	FromTxID(MaxTxID + 1)
}

func TestLockWordFields(t *testing.T) {
	w := Lock(12345, 17, true)
	if !IsLock(w) || IsTS(w) {
		t.Fatal("lock word not recognized")
	}
	if Writer(w) != 12345 {
		t.Fatalf("Writer = %d", Writer(w))
	}
	if !HasWriter(w) {
		t.Fatal("HasWriter = false")
	}
	if Readers(w) != 17 {
		t.Fatalf("Readers = %d", Readers(w))
	}
	if !NoMoreReadLocks(w) {
		t.Fatal("NoMoreReadLocks = false")
	}
}

func TestLockNoWriter(t *testing.T) {
	w := Lock(NoWriter, 3, false)
	if HasWriter(w) {
		t.Fatal("HasWriter should be false for NoWriter")
	}
	if Writer(w) != NoWriter {
		t.Fatalf("Writer = %d, want NoWriter", Writer(w))
	}
	if Readers(w) != 3 {
		t.Fatalf("Readers = %d", Readers(w))
	}
}

func TestWithWriterPreservesOtherFields(t *testing.T) {
	w := Lock(NoWriter, 200, true)
	w2 := WithWriter(w, 999)
	if Writer(w2) != 999 || Readers(w2) != 200 || !NoMoreReadLocks(w2) {
		t.Fatalf("WithWriter corrupted fields: writer=%d readers=%d nomore=%v",
			Writer(w2), Readers(w2), NoMoreReadLocks(w2))
	}
	w3 := WithWriter(w2, NoWriter)
	if HasWriter(w3) || Readers(w3) != 200 || !NoMoreReadLocks(w3) {
		t.Fatal("clearing writer corrupted fields")
	}
}

func TestWithReadersPreservesOtherFields(t *testing.T) {
	w := Lock(777, 0, false)
	w2 := WithReaders(w, MaxReadLocks)
	if Writer(w2) != 777 || Readers(w2) != MaxReadLocks || NoMoreReadLocks(w2) {
		t.Fatal("WithReaders corrupted fields")
	}
}

func TestWithNoMorePreservesOtherFields(t *testing.T) {
	w := Lock(777, 42, false)
	w2 := WithNoMore(w, true)
	if Writer(w2) != 777 || Readers(w2) != 42 || !NoMoreReadLocks(w2) {
		t.Fatal("WithNoMore(true) corrupted fields")
	}
	w3 := WithNoMore(w2, false)
	if w3 != Lock(777, 42, false) {
		t.Fatal("WithNoMore(false) did not invert")
	}
}

func TestReadersOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for readers > MaxReadLocks")
		}
	}()
	Lock(1, MaxReadLocks+1, false)
}

// Property: a lock word round-trips every combination of fields exactly.
func TestQuickLockRoundTrip(t *testing.T) {
	f := func(writer uint64, readers uint8, noMore bool) bool {
		w := writer % (MaxTxID + 2) // includes NoWriter
		if w == MaxTxID+1 {
			w = NoWriter
		}
		lw := Lock(w, int(readers), noMore)
		return IsLock(lw) &&
			Writer(lw) == w &&
			Readers(lw) == int(readers) &&
			NoMoreReadLocks(lw) == noMore
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: field mutators are independent — updating one field never
// changes the others, in any order.
func TestQuickFieldIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		writer := rng.Uint64() % (MaxTxID + 1)
		readers := int(rng.Uint64() % (MaxReadLocks + 1))
		noMore := rng.Intn(2) == 0
		w := Lock(writer, readers, noMore)
		switch rng.Intn(3) {
		case 0:
			nw := rng.Uint64() % (MaxTxID + 1)
			w = WithWriter(w, nw)
			writer = nw
		case 1:
			nr := int(rng.Uint64() % (MaxReadLocks + 1))
			w = WithReaders(w, nr)
			readers = nr
		case 2:
			noMore = !noMore
			w = WithNoMore(w, noMore)
		}
		if Writer(w) != writer || Readers(w) != readers || NoMoreReadLocks(w) != noMore {
			t.Fatalf("iteration %d: field corruption", i)
		}
	}
}

// Property: timestamps and transaction IDs occupy disjoint word spaces.
func TestQuickTagDisjoint(t *testing.T) {
	f := func(x uint64) bool {
		ts := x % (Infinity + 1)
		id := x % (MaxTxID + 1)
		return IsTS(FromTS(ts)) && !IsTS(FromTxID(id)) && FromTS(ts) != FromTxID(id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
