// Package deadlock detects cycles among wait-for dependencies (Section 4.4).
//
// Commit dependencies never deadlock (an older transaction never waits on a
// younger one), but wait-for dependencies can. The detector builds a
// wait-for graph from the currently blocked transactions — explicit edges
// from WaitingTxnLists, implicit edges from read-locked versions — finds
// strongly connected components with Tarjan's algorithm, re-verifies each
// candidate cycle (the graph is built while processing continues, so false
// deadlocks are possible), and aborts the youngest member of each real
// cycle.
package deadlock

// Graph is a directed wait-for graph: Edges[a] lists the transactions a is
// waiting for... precisely, an edge from T2 to T1 means T2 waits for T1 to
// complete, matching the paper's construction.
type Graph struct {
	Nodes []uint64
	Edges map[uint64][]uint64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{Edges: make(map[uint64][]uint64)}
}

// AddNode registers a blocked transaction.
func (g *Graph) AddNode(id uint64) {
	if _, ok := g.Edges[id]; !ok {
		g.Nodes = append(g.Nodes, id)
		g.Edges[id] = nil
	}
}

// Contains reports whether id is a node in the graph.
func (g *Graph) Contains(id uint64) bool {
	_, ok := g.Edges[id]
	return ok
}

// AddEdge adds an edge from waiter to holder: waiter waits for holder. Both
// endpoints must already be nodes; edges to non-nodes are dropped, because
// only blocked transactions can participate in a deadlock.
func (g *Graph) AddEdge(waiter, holder uint64) {
	if !g.Contains(waiter) || !g.Contains(holder) {
		return
	}
	g.Edges[waiter] = append(g.Edges[waiter], holder)
}

// Cycles returns the strongly connected components with more than one
// member, plus single nodes with a self-loop. Each returned component is a
// candidate deadlock.
func (g *Graph) Cycles() [][]uint64 {
	sccs := tarjan(g)
	var out [][]uint64
	for _, comp := range sccs {
		if len(comp) > 1 {
			out = append(out, comp)
			continue
		}
		id := comp[0]
		for _, to := range g.Edges[id] {
			if to == id {
				out = append(out, comp)
				break
			}
		}
	}
	return out
}

// tarjan computes strongly connected components iteratively (Tarjan 1972,
// reference [25] of the paper). An iterative formulation avoids deep
// recursion on large graphs.
func tarjan(g *Graph) [][]uint64 {
	type frame struct {
		node uint64
		edge int
	}
	index := make(map[uint64]int, len(g.Nodes))
	lowlink := make(map[uint64]int, len(g.Nodes))
	onStack := make(map[uint64]bool, len(g.Nodes))
	var stack []uint64
	var sccs [][]uint64
	next := 0

	for _, root := range g.Nodes {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{node: root}}
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			edges := g.Edges[f.node]
			if f.edge < len(edges) {
				to := edges[f.edge]
				f.edge++
				if _, seen := index[to]; !seen {
					index[to] = next
					lowlink[to] = next
					next++
					stack = append(stack, to)
					onStack[to] = true
					frames = append(frames, frame{node: to})
				} else if onStack[to] && index[to] < lowlink[f.node] {
					lowlink[f.node] = index[to]
				}
				continue
			}
			// All edges done: pop the frame.
			n := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].node
				if lowlink[n] < lowlink[p] {
					lowlink[p] = lowlink[n]
				}
			}
			if lowlink[n] == index[n] {
				var comp []uint64
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == n {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}
