package deadlock

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func graphOf(edges map[uint64][]uint64) *Graph {
	g := NewGraph()
	for n := range edges {
		g.AddNode(n)
	}
	for n, tos := range edges {
		for _, to := range tos {
			g.AddNode(to)
			g.AddEdge(n, to)
		}
	}
	return g
}

func TestNoCycle(t *testing.T) {
	g := graphOf(map[uint64][]uint64{1: {2}, 2: {3}, 3: nil})
	if c := g.Cycles(); len(c) != 0 {
		t.Fatalf("cycles = %v", c)
	}
}

func TestSimpleCycle(t *testing.T) {
	g := graphOf(map[uint64][]uint64{1: {2}, 2: {1}})
	c := g.Cycles()
	if len(c) != 1 || len(c[0]) != 2 {
		t.Fatalf("cycles = %v", c)
	}
}

func TestSelfLoop(t *testing.T) {
	g := graphOf(map[uint64][]uint64{1: {1}})
	if c := g.Cycles(); len(c) != 1 || len(c[0]) != 1 {
		t.Fatalf("cycles = %v", c)
	}
}

func TestTwoDisjointCycles(t *testing.T) {
	g := graphOf(map[uint64][]uint64{
		1: {2}, 2: {1},
		3: {4}, 4: {5}, 5: {3},
		6: {1}, // dangling edge into a cycle
	})
	c := g.Cycles()
	if len(c) != 2 {
		t.Fatalf("cycles = %v", c)
	}
	sizes := []int{len(c[0]), len(c[1])}
	sort.Ints(sizes)
	if sizes[0] != 2 || sizes[1] != 3 {
		t.Fatalf("cycle sizes = %v", sizes)
	}
}

func TestEdgesToNonNodesDropped(t *testing.T) {
	g := NewGraph()
	g.AddNode(1)
	g.AddEdge(1, 99) // 99 is not blocked: ignored
	g.AddEdge(99, 1)
	if c := g.Cycles(); len(c) != 0 {
		t.Fatalf("cycles = %v", c)
	}
}

func TestLargeChainNoOverflow(t *testing.T) {
	// The iterative Tarjan must handle deep graphs.
	g := NewGraph()
	const n = 100000
	for i := uint64(0); i < n; i++ {
		g.AddNode(i)
	}
	for i := uint64(0); i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	g.AddEdge(n-1, 0) // close the loop
	c := g.Cycles()
	if len(c) != 1 || len(c[0]) != n {
		t.Fatalf("expected one giant cycle, got %d components", len(c))
	}
}

func TestRandomGraphsAgainstNaive(t *testing.T) {
	// Compare cycle participation against a naive reachability check.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		edges := make(map[uint64][]uint64)
		for i := 0; i < n; i++ {
			edges[uint64(i)] = nil
		}
		for e := 0; e < n*2; e++ {
			a, b := uint64(rng.Intn(n)), uint64(rng.Intn(n))
			edges[a] = append(edges[a], b)
		}
		g := graphOf(edges)
		inCycle := make(map[uint64]bool)
		for _, comp := range g.Cycles() {
			for _, id := range comp {
				inCycle[id] = true
			}
		}
		// Naive: node is in a cycle iff it can reach itself via >= 1 edge.
		for i := 0; i < n; i++ {
			if reachesSelf(edges, uint64(i)) != inCycle[uint64(i)] {
				t.Fatalf("trial %d node %d: naive=%v tarjan=%v (edges %v)",
					trial, i, reachesSelf(edges, uint64(i)), inCycle[uint64(i)], edges)
			}
		}
	}
}

func reachesSelf(edges map[uint64][]uint64, start uint64) bool {
	seen := make(map[uint64]bool)
	var stack []uint64
	stack = append(stack, edges[start]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == start {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, edges[n]...)
	}
	return false
}

// fakeSource scripts a deadlock scenario for the detector.
type fakeSource struct {
	graph   *Graph
	blocked map[uint64]bool
	ends    map[uint64]uint64
	aborted []uint64
}

func (f *fakeSource) Snapshot() *Graph            { return f.graph }
func (f *fakeSource) StillBlocked(id uint64) bool { return f.blocked[id] }
func (f *fakeSource) EndTimestampOf(id uint64) uint64 {
	return f.ends[id]
}
func (f *fakeSource) Abort(id uint64) { f.aborted = append(f.aborted, id) }

func TestDetectorAbortsYoungest(t *testing.T) {
	f := &fakeSource{
		graph:   graphOf(map[uint64][]uint64{1: {2}, 2: {1}}),
		blocked: map[uint64]bool{1: true, 2: true},
		ends:    map[uint64]uint64{1: 10, 2: 20},
	}
	d := NewDetector(f, time.Hour)
	if n := d.RunOnce(); n != 1 {
		t.Fatalf("victims = %d", n)
	}
	if len(f.aborted) != 1 || f.aborted[0] != 2 {
		t.Fatalf("aborted %v, want youngest (2)", f.aborted)
	}
}

func TestDetectorSkipsFalseDeadlock(t *testing.T) {
	f := &fakeSource{
		graph:   graphOf(map[uint64][]uint64{1: {2}, 2: {1}}),
		blocked: map[uint64]bool{1: true, 2: false}, // 2 moved on
		ends:    map[uint64]uint64{1: 10, 2: 20},
	}
	d := NewDetector(f, time.Hour)
	if n := d.RunOnce(); n != 0 {
		t.Fatalf("victims = %d for dissolved cycle", n)
	}
	if len(f.aborted) != 0 {
		t.Fatalf("aborted %v", f.aborted)
	}
}

func TestDetectorBackground(t *testing.T) {
	f := &fakeSource{
		graph:   graphOf(map[uint64][]uint64{1: {2}, 2: {1}}),
		blocked: map[uint64]bool{1: true, 2: true},
		ends:    map[uint64]uint64{1: 10, 2: 20},
	}
	d := NewDetector(f, time.Millisecond)
	d.Start()
	d.Start() // idempotent
	deadline := time.Now().Add(time.Second)
	for d.Victims() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	d.Stop()
	d.Stop() // idempotent
	if d.Victims() == 0 {
		t.Fatal("background detector found no victims")
	}
}
