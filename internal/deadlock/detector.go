package deadlock

import (
	"sync"
	"time"
)

// Source provides the detector's view of the running system. The engine
// implements it; the indirection keeps this package free of engine types.
type Source interface {
	// Snapshot builds the current wait-for graph: nodes are transactions
	// that have completed normal processing and are blocked on wait-for
	// dependencies; edges come from explicit WaitingTxnLists and implicit
	// read-lock dependencies.
	Snapshot() *Graph
	// StillBlocked re-verifies that a transaction remains blocked. The graph
	// is built while processing continues, so a candidate cycle may contain
	// transactions that have since unblocked (a false deadlock).
	StillBlocked(id uint64) bool
	// EndTimestampOf returns the transaction's end timestamp (0 if none) so
	// the detector can pick the youngest member of a cycle as the victim.
	EndTimestampOf(id uint64) uint64
	// Abort asks the transaction to abort, breaking the cycle.
	Abort(id uint64)
}

// Detector periodically scans for deadlocks. Detection is expected to be
// infrequent (Section 4.1.1), so a background sweep with a modest interval
// is appropriate.
type Detector struct {
	src      Source
	interval time.Duration

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	victims uint64
}

// NewDetector creates a detector polling src every interval.
func NewDetector(src Source, interval time.Duration) *Detector {
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	return &Detector{src: src, interval: interval}
}

// Start launches the background sweep. It is a no-op if already running.
func (d *Detector) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stop != nil {
		return
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go d.loop(d.stop, d.done)
}

// Stop halts the background sweep and waits for it to exit.
func (d *Detector) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Victims returns the number of transactions aborted to break deadlocks.
func (d *Detector) Victims() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.victims
}

func (d *Detector) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			n := d.RunOnce()
			if n > 0 {
				d.mu.Lock()
				d.victims += uint64(n)
				d.mu.Unlock()
			}
		}
	}
}

// RunOnce performs a single detection pass and returns the number of victims
// aborted. Exported so tests and cooperative callers can drive detection
// synchronously.
func (d *Detector) RunOnce() int {
	g := d.src.Snapshot()
	if len(g.Nodes) < 1 {
		return 0
	}
	victims := 0
	for _, comp := range g.Cycles() {
		// Verify the deadlock is real: every participant must still be
		// blocked. If any has moved on, the cycle has dissolved.
		real := true
		for _, id := range comp {
			if !d.src.StillBlocked(id) {
				real = false
				break
			}
		}
		if !real {
			continue
		}
		// Abort the youngest member (largest end timestamp): it has done the
		// least downstream work and other transactions are least likely to
		// depend on it.
		victim := comp[0]
		victimEnd := d.src.EndTimestampOf(victim)
		for _, id := range comp[1:] {
			if e := d.src.EndTimestampOf(id); e > victimEnd {
				victim, victimEnd = id, e
			}
		}
		d.src.Abort(victim)
		victims++
	}
	return victims
}
