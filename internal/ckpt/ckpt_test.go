package ckpt_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/wal"
	"repro/internal/workload"
)

const nKeys = 400

func openDB(t *testing.T, scheme core.Scheme, store *ckpt.Store) (*core.Database, *core.Table) {
	t.Helper()
	cfg := core.Config{Scheme: scheme, SyncCommit: true}
	if store != nil {
		cfg.LogSink = store
	}
	db, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := workload.Table(db, nKeys)
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

// mutate runs a deterministic little history: inserts, updates, deletes.
func mutate(t *testing.T, db *core.Database, tbl *core.Table, lo, hi uint64) {
	t.Helper()
	const batch = 40
	commit := func(tx *core.Tx) {
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for base := lo; base < hi; base += batch {
		tx := db.Begin()
		for k := base; k < base+batch && k < hi; k++ {
			if err := tx.Insert(tbl, workload.Row(k, k)); err != nil {
				t.Fatal(err)
			}
		}
		commit(tx)
	}
	tx := db.Begin()
	for k := lo; k < hi; k += 3 {
		if _, err := tx.UpdateWhere(tbl, 0, k, nil, func(old []byte) []byte {
			return workload.Row(k, workload.RowVal(old)+1000)
		}); err != nil {
			t.Fatal(err)
		}
	}
	commit(tx)
	tx = db.Begin()
	for k := lo; k < hi; k += 7 {
		if _, err := tx.DeleteWhere(tbl, 0, k, nil); err != nil {
			t.Fatal(err)
		}
	}
	commit(tx)
}

func dump(t *testing.T, db *core.Database, tbl *core.Table) map[uint64]uint64 {
	t.Helper()
	out := make(map[uint64]uint64)
	tx := db.Begin(core.WithIsolation(core.SnapshotIsolation))
	for k := uint64(0); k < nKeys; k++ {
		row, ok, err := tx.Lookup(tbl, 0, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			out[k] = workload.RowVal(row.Payload())
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return out
}

func diffStates(t *testing.T, want, got map[uint64]uint64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for k, v := range want {
		if gv, ok := got[k]; !ok || gv != v {
			t.Fatalf("%s: key %d = %d,%v want %d", label, k, gv, ok, v)
		}
	}
}

func recoverInto(t *testing.T, scheme core.Scheme, dir string, opts recovery.Options) (map[uint64]uint64, recovery.Stats) {
	t.Helper()
	store, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	db, tbl := openDB(t, scheme, nil)
	defer db.Close()
	st, err := recovery.Recover(db, recovery.TableSet{"rows": tbl}, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	return dump(t, db, tbl), st
}

func schemes() []core.Scheme {
	return []core.Scheme{core.SingleVersion, core.MVPessimistic, core.MVOptimistic}
}

func TestCheckpointRoundTrip(t *testing.T) {
	for _, scheme := range schemes() {
		t.Run(scheme.String(), func(t *testing.T) {
			dir := t.TempDir()
			store, err := ckpt.OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			db, tbl := openDB(t, scheme, store)

			mutate(t, db, tbl, 0, nKeys/2)
			cp := ckpt.New(db, store, []ckpt.TableSpec{
				{Table: tbl, Partitions: 4, Lo: 0, Hi: nKeys - 1},
			}, ckpt.Options{})
			cst, err := cp.Run()
			if err != nil {
				t.Fatal(err)
			}
			if cst.StableTS == 0 || cst.Rows == 0 || cst.Partitions != 4 {
				t.Fatalf("checkpoint stats %+v", cst)
			}
			// Post-checkpoint history becomes the log tail.
			mutate(t, db, tbl, nKeys/2, nKeys)
			want := dump(t, db, tbl)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			if err := store.Close(); err != nil {
				t.Fatal(err)
			}

			got, rst := recoverInto(t, scheme, dir, recovery.Options{})
			diffStates(t, want, got, "recovered")
			if rst.CheckpointTS != cst.StableTS {
				t.Errorf("recovered checkpoint TS %d, want %d", rst.CheckpointTS, cst.StableTS)
			}
			if rst.RowsRestored == 0 || rst.TailRecords == 0 {
				t.Errorf("recovery stats %+v", rst)
			}
		})
	}
}

// TestCheckpointTruncatesLog verifies CompactBelow actually reclaims log
// space and that recovery afterwards still matches.
func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	store, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, tbl := openDB(t, core.MVOptimistic, store)
	mutate(t, db, tbl, 0, nKeys)
	before := logBytes(t, store)
	cp := ckpt.New(db, store, []ckpt.TableSpec{{Table: tbl, Lo: 0, Hi: nKeys - 1}}, ckpt.Options{})
	cst, err := cp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cst.ReclaimedBytes == 0 {
		t.Fatal("truncation reclaimed nothing")
	}
	after := logBytes(t, store)
	if after >= before {
		t.Fatalf("log grew: %d -> %d bytes", before, after)
	}
	want := dump(t, db, tbl)
	db.Close()
	store.Close()
	got, rst := recoverInto(t, core.MVOptimistic, dir, recovery.Options{})
	diffStates(t, want, got, "post-truncation recovery")
	if rst.TailRecords != 0 {
		t.Errorf("expected empty tail after quiescent checkpoint, got %d records", rst.TailRecords)
	}
}

func logBytes(t *testing.T, store *ckpt.Store) int64 {
	t.Helper()
	paths, err := store.SegmentPaths()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestCrashMidPartition arms the partition-write fault: the checkpoint dies
// half-way through a partition file, no manifest publishes, and recovery
// falls back to full-log replay.
func TestCrashMidPartition(t *testing.T) {
	dir := t.TempDir()
	store, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, tbl := openDB(t, core.SingleVersion, store)
	mutate(t, db, tbl, 0, nKeys)
	want := dump(t, db, tbl)

	f := wal.NewFaults()
	f.Arm(ckpt.FaultPartWrite, 1)
	store.SetFaults(f)
	cp := ckpt.New(db, store, []ckpt.TableSpec{{Table: tbl, Lo: 0, Hi: nKeys - 1}}, ckpt.Options{})
	if _, err := cp.Run(); err != ckpt.ErrFrozen {
		t.Fatalf("Run = %v, want ErrFrozen", err)
	}
	if !store.Frozen() {
		t.Fatal("store should be frozen")
	}
	db.Close()
	store.Close()

	got, rst := recoverInto(t, core.SingleVersion, dir, recovery.Options{})
	diffStates(t, want, got, "after mid-partition crash")
	if rst.CheckpointTS != 0 || rst.RowsRestored != 0 {
		t.Errorf("no checkpoint should be visible, stats %+v", rst)
	}
}

// TestCrashBeforeCurrent arms the manifest fault: the checkpoint is fully
// written but CURRENT never flips, so recovery ignores it and replays the
// whole log.
func TestCrashBeforeCurrent(t *testing.T) {
	dir := t.TempDir()
	store, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, tbl := openDB(t, core.MVPessimistic, store)
	mutate(t, db, tbl, 0, nKeys)
	want := dump(t, db, tbl)

	f := wal.NewFaults()
	f.Arm(ckpt.FaultManifest, 0)
	store.SetFaults(f)
	cp := ckpt.New(db, store, []ckpt.TableSpec{{Table: tbl, Lo: 0, Hi: nKeys - 1}}, ckpt.Options{})
	if _, err := cp.Run(); err != ckpt.ErrFrozen {
		t.Fatalf("Run = %v, want ErrFrozen", err)
	}
	db.Close()
	store.Close()

	// The manifest exists on disk but is unpublished.
	store2, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man, _, err := store2.LatestManifest(); err != nil || man != nil {
		t.Fatalf("LatestManifest = %v, %v; want nil, nil", man, err)
	}
	store2.Close()

	got, _ := recoverInto(t, core.MVPessimistic, dir, recovery.Options{})
	diffStates(t, want, got, "after pre-CURRENT crash")
}

// TestPartitionCRCDetected flips a payload byte in a published partition
// file and expects recovery to refuse it.
func TestPartitionCRCDetected(t *testing.T) {
	dir := t.TempDir()
	store, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, tbl := openDB(t, core.MVOptimistic, store)
	mutate(t, db, tbl, 0, nKeys)
	cp := ckpt.New(db, store, []ckpt.TableSpec{{Table: tbl, Lo: 0, Hi: nKeys - 1}}, ckpt.Options{})
	if _, err := cp.Run(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	store.Close()

	store2, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	man, ckdir, err := store2.LatestManifest()
	if err != nil || man == nil {
		t.Fatalf("LatestManifest: %v, %v", man, err)
	}
	store2.Close()
	var victim string
	for _, p := range man.Tables[0].Parts {
		if p.Rows > 0 {
			victim = filepath.Join(ckdir, p.File)
			break
		}
	}
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	store3, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	db2, tbl2 := openDB(t, core.MVOptimistic, nil)
	defer db2.Close()
	if _, err := recovery.Recover(db2, recovery.TableSet{"rows": tbl2}, store3, recovery.Options{}); err == nil {
		t.Fatal("recovery accepted a corrupted partition")
	}
}

// TestBackgroundCheckpointer exercises Start/Stop under a live write load.
func TestBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	store, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	db, tbl := openDB(t, core.MVOptimistic, store)
	cp := ckpt.New(db, store, []ckpt.TableSpec{{Table: tbl, Lo: 0, Hi: nKeys - 1}}, ckpt.Options{})
	cp.Start(2 * 1e6) // 2ms
	mutate(t, db, tbl, 0, nKeys)
	cp.Stop()
	// One final foreground checkpoint so the published one is deterministic.
	if _, err := cp.Run(); err != nil {
		t.Fatal(err)
	}
	want := dump(t, db, tbl)
	db.Close()
	store.Close()
	got, _ := recoverInto(t, core.MVOptimistic, dir, recovery.Options{})
	diffStates(t, want, got, "background checkpoints")
}
