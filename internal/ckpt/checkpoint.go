package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/keyenc"
	"repro/internal/wal"
)

// TableSpec tells the checkpointer how to partition one table's snapshot.
type TableSpec struct {
	Table *core.Table
	// Partitions is the number of key-range partition files (default 4).
	Partitions int
	// Lo, Hi bound the expected primary-key range (inclusive). Leaving both
	// zero derives Hi from the table's primary key layout. Keys outside the
	// bound still land in the nearest partition — the hint only balances
	// file sizes, it never loses rows.
	Lo, Hi uint64
}

// Options tunes Checkpointer.Run.
type Options struct {
	// Retries bounds capture retries; the single-version engine's capture
	// acquires locks and can time out against concurrent writers (default 8).
	Retries int
	// KeepLog disables log truncation after the checkpoint publishes. Tests
	// use it to compare checkpoint+tail recovery against full-log replay.
	KeepLog bool
}

// Stats summarizes one checkpoint.
type Stats struct {
	Seq             uint64
	StableTS        uint64
	Rows            uint64
	Bytes           uint64
	Partitions      int
	ReclaimedBytes  int64
	CaptureAttempts int
	Elapsed         time.Duration
}

// Checkpointer streams checkpoints of a database into a Store. One Run:
//
//  1. capture a consistent snapshot at stable timestamp S, streaming rows
//     into partition files by primary-key range (keyenc.PartitionOf);
//  2. flush the log and rotate the live segment, so every record with end
//     timestamp <= S is in a sealed segment;
//  3. fsync the partition files, then publish manifest and CURRENT
//     (each an atomic temp-file rename);
//  4. truncate the log below S (CompactBelow).
//
// A crash anywhere in that sequence is safe: before the CURRENT flip,
// recovery sees the previous checkpoint (or none) plus the full log; after
// it, tail records at or below S that truncation had not yet dropped are
// filtered out by recovery's timestamp check.
type Checkpointer struct {
	db    *core.Database
	store *Store
	specs []TableSpec
	opts  Options

	stop chan struct{}
	done chan struct{}

	hmu    sync.Mutex
	health Health
}

// Health is the background checkpointer's status, surfaced instead of dying
// silently: transient capture failures are retried with bounded backoff and
// counted here; a latched sink failure (the store can no longer promise
// durability) is Fatal and stops further attempts.
type Health struct {
	// Runs counts completed Run attempts by the background loop.
	Runs uint64
	// Failures counts attempts that returned an error.
	Failures uint64
	// Consecutive counts failures since the last success; it drives the
	// backoff and resets to zero on success.
	Consecutive int
	// LastErr is the most recent attempt's error, nil after a success.
	LastErr error
	// Fatal, once non-nil, means checkpointing has permanently stopped:
	// the store latched a write/fsync failure or froze at a crash point.
	Fatal error
	// LastStableTS is the stable timestamp of the last published checkpoint.
	LastStableTS uint64
	// LastSuccess is when that checkpoint published.
	LastSuccess time.Time
}

// Health returns a snapshot of the background loop's status.
func (c *Checkpointer) Health() Health {
	c.hmu.Lock()
	defer c.hmu.Unlock()
	return c.health
}

// record folds one background Run outcome into the health snapshot.
func (c *Checkpointer) record(stats Stats, err error) {
	c.hmu.Lock()
	defer c.hmu.Unlock()
	c.health.Runs++
	if err == nil {
		c.health.Consecutive = 0
		c.health.LastErr = nil
		c.health.LastStableTS = stats.StableTS
		c.health.LastSuccess = time.Now()
		return
	}
	c.health.Failures++
	c.health.Consecutive++
	c.health.LastErr = err
	// A latched store failure or an injected freeze/power loss cannot heal:
	// latch it as fatal so the loop stops burning capture attempts against a
	// sink that will never accept them.
	if serr := c.store.Err(); serr != nil {
		c.health.Fatal = serr
	} else if errors.Is(err, ErrFrozen) || errors.Is(err, wal.ErrCrashed) {
		c.health.Fatal = err
	}
}

// New returns a Checkpointer over the given tables.
func New(db *core.Database, store *Store, specs []TableSpec, opts Options) *Checkpointer {
	if opts.Retries <= 0 {
		opts.Retries = 8
	}
	return &Checkpointer{db: db, store: store, specs: specs, opts: opts}
}

// Run takes one checkpoint. It returns ErrFrozen if an injected crash fired
// anywhere along the way.
func (c *Checkpointer) Run() (Stats, error) {
	start := time.Now()
	var stats Stats
	if c.store.Frozen() {
		return stats, ErrFrozen
	}
	seq := c.store.nextCkptSeq()
	dirName := fmt.Sprintf("ckpt-%06d", seq)
	dir := filepath.Join(c.store.Dir(), dirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return stats, err
	}

	// Precompute each table's partition ranges and a routing entry.
	type route struct {
		spec    TableSpec
		parts   []keyenc.Range
		writers []*partWriter
	}
	routes := make(map[*core.Table]*route, len(c.specs))
	tables := make([]*core.Table, 0, len(c.specs))
	for _, spec := range c.specs {
		n := spec.Partitions
		if n <= 0 {
			n = 4
		}
		lo, hi := spec.Lo, spec.Hi
		if lo == 0 && hi == 0 {
			hi = ^uint64(0)
			if l := spec.Table.Layout(0); l != nil {
				hi = l.KeyspaceMax()
			}
		}
		parts := keyenc.Ranges(lo, hi, n)
		if parts == nil {
			return stats, fmt.Errorf("ckpt: table %s: invalid key range [%d,%d]", spec.Table.Name(), lo, hi)
		}
		routes[spec.Table] = &route{spec: spec, parts: parts}
		tables = append(tables, spec.Table)
	}

	// Capture with retry: each attempt recreates the partition files
	// (os.Create truncates), so a failed attempt leaves no stale rows.
	var stableTS uint64
	for attempt := 0; ; attempt++ {
		stats.CaptureAttempts = attempt + 1
		openErr := func() error {
			for _, rt := range routes {
				rt.writers = make([]*partWriter, len(rt.parts))
				for i := range rt.parts {
					path := filepath.Join(dir, partFileName(rt.spec.Table.Name(), i))
					w, err := newPartWriter(c.store, path)
					if err != nil {
						return err
					}
					rt.writers[i] = w
				}
			}
			return nil
		}()
		if openErr != nil {
			return stats, openErr
		}
		s, err := c.db.Capture(tables, func(t *core.Table, key uint64, payload []byte) error {
			rt := routes[t]
			return rt.writers[keyenc.PartitionOf(rt.parts, key)].add(key, payload)
		})
		if err == nil {
			stableTS = s
			break
		}
		for _, rt := range routes {
			for _, w := range rt.writers {
				w.abandon()
			}
		}
		if attempt+1 >= c.opts.Retries || c.store.Frozen() {
			return stats, fmt.Errorf("ckpt: capture failed after %d attempts: %w", attempt+1, err)
		}
		time.Sleep(time.Duration(attempt+1) * time.Millisecond)
	}
	stats.StableTS = stableTS
	stats.Seq = seq

	// Make every record at or below S durable in a sealed segment before the
	// checkpoint that supersedes them can publish.
	if w := c.db.WAL(); w != nil {
		if err := w.Flush(); err != nil && !c.store.Frozen() {
			return stats, err
		}
	}
	if err := c.store.Rotate(); err != nil {
		return stats, err
	}

	// Finalize partitions and assemble the manifest in spec order.
	man := &Manifest{Seq: seq, StableTS: stableTS}
	for _, spec := range c.specs {
		rt := routes[spec.Table]
		tm := TableManifest{Name: spec.Table.Name()}
		for i, w := range rt.writers {
			rows, bytes, crc, err := w.finish(c.store)
			if err != nil {
				return stats, err
			}
			tm.Parts = append(tm.Parts, PartInfo{
				File:  partFileName(spec.Table.Name(), i),
				Lo:    rt.parts[i].Lo,
				Hi:    rt.parts[i].Hi,
				Rows:  rows,
				Bytes: bytes,
				CRC:   crc,
			})
			stats.Rows += rows
			stats.Bytes += bytes
			stats.Partitions++
		}
		man.Tables = append(man.Tables, tm)
	}

	if err := c.store.publishCheckpoint(dirName, man); err != nil {
		return stats, err
	}
	if !c.opts.KeepLog {
		reclaimed, err := c.store.CompactBelow(stableTS)
		if err != nil {
			return stats, err
		}
		stats.ReclaimedBytes = reclaimed
	}
	if c.store.Frozen() {
		return stats, ErrFrozen
	}
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// Start launches a background loop checkpointing every interval until Stop.
// Transient failures (capture lock timeouts, partition I/O that may clear)
// are retried with exponential backoff bounded at 16× the interval; a fatal
// condition (latched sink failure, injected freeze or power loss) stops
// further attempts and is reported by Health — the loop never dies silently
// and never hammers a dead disk.
func (c *Checkpointer) Start(interval time.Duration) {
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		maxWait := 16 * interval
		wait := interval
		timer := time.NewTimer(wait)
		defer timer.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-timer.C:
			}
			if c.Health().Fatal != nil {
				// Nothing left to retry; stay alive (Health keeps serving)
				// until Stop.
				timer.Reset(maxWait)
				continue
			}
			stats, err := c.Run()
			c.record(stats, err)
			if err == nil {
				wait = interval
			} else {
				wait = min(wait*2, maxWait)
			}
			timer.Reset(wait)
		}
	}()
}

// Stop halts the background loop started by Start and waits for it.
func (c *Checkpointer) Stop() {
	if c.stop == nil {
		return
	}
	close(c.stop)
	<-c.done
	c.stop = nil
}

func partFileName(table string, i int) string {
	return fmt.Sprintf("%s.p%02d.ckpt", table, i)
}
