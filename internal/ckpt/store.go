// Package ckpt implements the durability subsystem around the redo log:
// a segmented on-disk log store, streaming checkpoints of committed state
// partitioned by primary-key range, and log truncation below the checkpoint's
// stable timestamp. Package recovery consumes the same store to restore
// checkpoint partitions in parallel and replay only the log tail.
//
// The store doubles as the crash-injection surface: a wal.Faults registry
// can arm named fault points (torn batch write, freeze between flush and
// ack, partial partition write, crash before the manifest pointer flips),
// and once any fault fires the store freezes — every subsequent write is
// silently discarded, which models a killed process whose acknowledgements
// after the crash point never happened. See docs/durability.md.
package ckpt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/wal"
)

// Fault points understood by the store. Arm them on the wal.Faults registry
// passed to SetFaults.
const (
	// FaultWALTear tears a group-commit batch mid-write: a prefix of the
	// batch reaches the segment, then the store freezes. The tail of the
	// batch — typically mid-record — is the torn tail recovery tolerates.
	FaultWALTear = "wal.tear"
	// FaultWALFreeze freezes after a batch fully reaches the segment: the
	// kill lands between the flush and later commit acknowledgements.
	FaultWALFreeze = "wal.freeze"
	// FaultPartWrite tears a checkpoint partition write and freezes: a crash
	// mid-checkpoint, before the manifest exists.
	FaultPartWrite = "ckpt.partition"
	// FaultManifest freezes after the manifest file is written but before
	// CURRENT flips to it: the checkpoint is complete on disk yet invisible,
	// so recovery uses the previous checkpoint (or none).
	FaultManifest = "ckpt.manifest"
)

// ErrFrozen is returned by operations refused because the store froze at an
// injected crash point.
var ErrFrozen = fmt.Errorf("ckpt: store frozen (simulated crash)")

// Store is a durability directory: numbered write-ahead-log segments (the
// live one receives group-commit batches via Write, making the store a
// core.Config.LogSink), checkpoint directories, and a CURRENT pointer naming
// the latest published checkpoint.
type Store struct {
	dir    string
	faults *wal.Faults

	mu      sync.Mutex
	frozen  atomic.Bool
	seg     *os.File
	segPath string
	segSeq  uint64
	ckptSeq uint64
}

// OpenStore opens (creating if needed) a store rooted at dir and starts a
// fresh live segment after any existing ones — reopening after a crash never
// appends to a possibly-torn segment.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.log", &n); err == nil && n > s.segSeq {
			s.segSeq = n
		}
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%d", &n); err == nil && n > s.ckptSeq {
			s.ckptSeq = n
		}
	}
	if err := s.openSegmentLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// SetFaults attaches a crash-injection registry. Call before any load runs.
func (s *Store) SetFaults(f *wal.Faults) { s.faults = f }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) openSegmentLocked() error {
	s.segSeq++
	s.segPath = filepath.Join(s.dir, fmt.Sprintf("wal-%06d.log", s.segSeq))
	f, err := os.OpenFile(s.segPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(wal.SegmentHeader()); err != nil {
		f.Close()
		return err
	}
	s.seg = f
	return nil
}

// Write appends one group-commit batch to the live segment (io.Writer for
// wal.Log). Batches never straddle segments: rotation only happens between
// Write calls, under the same mutex. A frozen store reports success and
// discards the bytes — the modelled process is dead; nothing it "wrote"
// after the crash point exists.
func (s *Store) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen.Load() {
		return len(p), nil
	}
	if s.faults.Fire(FaultWALTear) {
		n := len(p) / 2
		if n == 0 && len(p) > 0 {
			n = 1
		}
		s.seg.Write(p[:n])
		s.seg.Sync()
		s.frozen.Store(true)
		return len(p), nil
	}
	if s.faults.Fire(FaultWALFreeze) {
		s.seg.Write(p)
		s.seg.Sync()
		s.frozen.Store(true)
		return len(p), nil
	}
	n, err := s.seg.Write(p)
	if err != nil {
		return n, err
	}
	return len(p), nil
}

// Rotate seals the live segment (fsync + close) and starts the next one.
// The checkpointer rotates after flushing the log so that every record at
// or below the stable timestamp lives in sealed segments, which truncation
// may rewrite.
func (s *Store) Rotate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen.Load() {
		return nil
	}
	if err := s.seg.Sync(); err != nil {
		return err
	}
	if err := s.seg.Close(); err != nil {
		return err
	}
	return s.openSegmentLocked()
}

// Freeze stops all future writes, modelling the crash instant. Load workers
// poll Frozen after each commit: an acknowledgement observed after the
// freeze may or may not be durable.
func (s *Store) Freeze() { s.frozen.Store(true) }

// Frozen reports whether the store froze.
func (s *Store) Frozen() bool { return s.frozen.Load() }

// Close fsyncs and closes the live segment. A frozen store's segment is
// closed without syncing (the sync would model I/O the dead process never
// issued; the bytes already written remain readable).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	if !s.frozen.Load() {
		s.seg.Sync()
	}
	err := s.seg.Close()
	s.seg = nil
	return err
}

// ChopTail truncates the live segment by n bytes: the "drop tail bytes"
// crash. It acts directly on the file — harness scalpel, not a store write —
// so it works on a frozen store.
func (s *Store) ChopTail(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fi, err := os.Stat(s.segPath)
	if err != nil {
		return err
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(s.segPath, size)
}

// SegmentPaths returns every log segment in sequence order, sealed segments
// first, the live one last.
func (s *Store) SegmentPaths() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.log", &n); err == nil {
			paths = append(paths, filepath.Join(s.dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// CompactBelow rewrites sealed segments dropping every record with end
// timestamp at or below stable — the log truncation step of a checkpoint:
// those transactions' effects are in the checkpoint, so replaying them would
// be redundant (recovery filters on the stable timestamp anyway; truncation
// is what bounds log growth). Segments left empty are removed. The rewrite
// is atomic per segment (temp file + rename), so a crash mid-compaction
// leaves each segment either intact or fully compacted — both replay
// correctly. It returns the number of log bytes reclaimed.
func (s *Store) CompactBelow(stable uint64) (int64, error) {
	if s.frozen.Load() {
		return 0, ErrFrozen
	}
	paths, err := s.SegmentPaths()
	if err != nil {
		return 0, err
	}
	var reclaimed int64
	for _, path := range paths {
		if path == s.segPath {
			continue // never rewrite the live segment
		}
		n, err := s.compactSegment(path, stable)
		if err != nil {
			return reclaimed, err
		}
		reclaimed += n
	}
	return reclaimed, nil
}

func (s *Store) compactSegment(path string, stable uint64) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return 0, err
	}
	var keep []*wal.Record
	dropped := 0
	d := wal.NewReader(f)
	for {
		rec, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return 0, fmt.Errorf("ckpt: compacting %s: %w", path, err)
		}
		if rec.EndTS <= stable {
			dropped++
			continue
		}
		keep = append(keep, rec)
	}
	f.Close()
	if dropped == 0 {
		return 0, nil
	}
	if len(keep) == 0 {
		if err := os.Remove(path); err != nil {
			return 0, err
		}
		return fi.Size(), nil
	}
	tmp := path + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	buf := wal.SegmentHeader()
	for _, rec := range keep {
		buf = wal.EncodeRecord(buf, rec)
	}
	if _, err := out.Write(buf); err != nil {
		out.Close()
		return 0, err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return 0, err
	}
	if err := out.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	return fi.Size() - int64(len(buf)), nil
}

// nextCkptSeq reserves the next checkpoint sequence number.
func (s *Store) nextCkptSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ckptSeq++
	return s.ckptSeq
}

// faultFile routes a checkpoint file's writes through the store's
// freeze/fault state so a crash can land mid-partition.
type faultFile struct {
	s     *Store
	f     *os.File
	point string
}

func (w *faultFile) Write(p []byte) (int, error) {
	if w.s.frozen.Load() {
		return len(p), nil
	}
	if w.s.faults.Fire(w.point) {
		n := len(p) / 2
		if n == 0 && len(p) > 0 {
			n = 1
		}
		w.f.Write(p[:n])
		w.f.Sync()
		w.s.Freeze()
		return len(p), nil
	}
	return w.f.Write(p)
}

// publishCheckpoint writes the manifest into the checkpoint directory and
// flips CURRENT to it. Both steps are write-temp-then-rename, so CURRENT
// always names a directory whose manifest is complete; the FaultManifest
// point freezes between the two renames, leaving a complete but unpublished
// checkpoint.
func (s *Store) publishCheckpoint(dirName string, man *Manifest) error {
	if s.frozen.Load() {
		return ErrFrozen
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	manPath := filepath.Join(s.dir, dirName, "manifest.json")
	if err := writeFileSync(manPath, raw); err != nil {
		return err
	}
	if s.faults.Fire(FaultManifest) {
		s.Freeze()
		return ErrFrozen
	}
	if s.frozen.Load() {
		return ErrFrozen
	}
	return writeFileSync(filepath.Join(s.dir, "CURRENT"), []byte(dirName+"\n"))
}

// writeFileSync writes data to path atomically: temp file, fsync, rename.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LatestManifest returns the most recently published checkpoint's manifest
// and directory path, or (nil, "", nil) when no checkpoint has been
// published.
func (s *Store) LatestManifest() (*Manifest, string, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, "CURRENT"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", nil
		}
		return nil, "", err
	}
	dirName := strings.TrimSpace(string(raw))
	dir := filepath.Join(s.dir, dirName)
	manRaw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, "", fmt.Errorf("ckpt: CURRENT names %s but its manifest is unreadable: %w", dirName, err)
	}
	var man Manifest
	if err := json.Unmarshal(manRaw, &man); err != nil {
		return nil, "", fmt.Errorf("ckpt: manifest in %s: %w", dirName, err)
	}
	return &man, dir, nil
}
